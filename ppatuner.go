// Package ppatuner is the public API of the PPATuner reproduction: a
// Pareto-driven physical-design tool-parameter auto-tuner built on transfer
// Gaussian processes (Geng, Xu et al., "PPATuner: Pareto-driven Tool
// Parameter Auto-tuning in Physical Design via Gaussian Process Transfer
// Learning", DAC 2022).
//
// The package re-exports the stable surface of the internal packages:
//
//   - the tool-parameter model (Space, Config) and the Table 1 benchmark
//     spaces;
//   - the physical-design flow simulator that stands in for the commercial
//     tool (RunFlow, SmallMAC, LargeMAC);
//   - the offline benchmarks of the paper (Source1 … Target2) and dataset
//     generation;
//   - the PPATuner engine itself (NewTuner) plus the four prior-art
//     baselines used in the paper's comparison;
//   - the multi-objective metrics (Hypervolume error, ADRS) and the
//     experiment harness that regenerates Table 2, Table 3 and Figure 3.
//
// A minimal tuning session over one of the built-in benchmarks:
//
//	ds, _ := ppatuner.Target2()
//	pool := ds.UnitX()
//	objs := ds.Objectives([]ppatuner.Metric{ppatuner.Power, ppatuner.Delay})
//	tn, _ := ppatuner.NewTuner(pool,
//		func(i int) ([]float64, error) { return objs[i], nil },
//		ppatuner.TunerOptions{NumObjectives: 2, Rng: rand.New(rand.NewSource(1))})
//	res, _ := tn.Run()
//
// To tune a real tool instead, supply an Evaluator that invokes it (see
// examples/customtool).
package ppatuner

import (
	"ppatuner/internal/benchdata"
	"ppatuner/internal/clock"
	"ppatuner/internal/core"
	"ppatuner/internal/eval"
	"ppatuner/internal/gp"
	"ppatuner/internal/param"
	"ppatuner/internal/pareto"
	"ppatuner/internal/pdtool"
	"ppatuner/internal/pdtool/chaos"
	"ppatuner/internal/robust"
)

// ---- Parameter spaces (Table 1) ----

// Space is an ordered set of tunable tool parameters.
type Space = param.Space

// Config is one parameter configuration in a Space.
type Config = param.Config

// Param describes one tunable tool parameter.
type Param = param.Param

// Parameter kinds.
const (
	Float = param.Float
	Int   = param.Int
	Enum  = param.Enum
	Bool  = param.Bool
)

// NewSpace builds a validated parameter space.
func NewSpace(name string, params []Param) (*Space, error) { return param.NewSpace(name, params) }

// The paper's Table 1 benchmark spaces.
var (
	Source1Space = param.Source1Space
	Target1Space = param.Target1Space
	Source2Space = param.Source2Space
	Target2Space = param.Target2Space
)

// ---- Flow simulator (the "PD tool") ----

// QoR is the post-layout quality of results (power mW, delay ns, area µm²).
type QoR = pdtool.QoR

// Metric names one QoR axis.
type Metric = pdtool.Metric

// The three QoR metrics of interest.
const (
	Power = pdtool.Power
	Delay = pdtool.Delay
	Area  = pdtool.Area
)

// Design is a benchmark circuit.
type Design = pdtool.Design

// SmallMAC and LargeMAC return the built-in benchmark designs (panicking on
// a failed build); NewSmallMAC and NewLargeMAC are the error-returning
// variants for library embedders.
var (
	SmallMAC    = pdtool.SmallMAC
	LargeMAC    = pdtool.LargeMAC
	NewSmallMAC = pdtool.NewSmallMAC
	NewLargeMAC = pdtool.NewLargeMAC
)

// FlowReport carries per-stage diagnostics of a flow run.
type FlowReport = pdtool.Report

// RunFlow executes the physical-design flow for one configuration and
// returns its QoR (deterministic in its inputs).
func RunFlow(d *Design, cfg Config) (QoR, *FlowReport, error) { return pdtool.Run(d, cfg) }

// ---- Offline benchmarks ----

// Dataset is an offline benchmark: configurations with golden QoR.
type Dataset = benchdata.Dataset

// DatasetPoint is one benchmark entry.
type DatasetPoint = benchdata.Point

// GenOptions controls dataset generation.
type GenOptions = benchdata.GenOptions

// GenerateDataset samples and evaluates a fresh benchmark dataset.
func GenerateDataset(name string, s *Space, d *Design, opt GenOptions) (*Dataset, error) {
	return benchdata.Generate(name, s, d, opt)
}

// The paper's four benchmarks (built on first use, cached per process).
var (
	Source1 = benchdata.Source1
	Target1 = benchdata.Target1
	Source2 = benchdata.Source2
	Target2 = benchdata.Target2
)

// ---- The tuner ----

// Evaluator returns the golden QoR objective vector of pool candidate i —
// the abstraction of one PD-tool invocation.
type Evaluator = core.Evaluator

// TunerOptions configures PPATuner; see core.Options for field docs.
type TunerOptions = core.Options

// TunerResult is the tuning outcome.
type TunerResult = core.Result

// Tuner is the PPATuner engine.
type Tuner = core.Tuner

// Candidate classification statuses.
const (
	Undecided = core.Undecided
	Dropped   = core.Dropped
	ParetoOpt = core.Pareto
)

// Covariance families for the GP surrogates.
const (
	RBF      = gp.RBF
	Matern52 = gp.Matern52
)

// NewTuner builds a PPATuner over a candidate pool of normalised parameter
// points.
func NewTuner(pool [][]float64, e Evaluator, opt TunerOptions) (*Tuner, error) {
	return core.New(pool, e, opt)
}

// TransferFactor exposes Eq. (7): the cross-task correlation implied by the
// Gamma dissimilarity parameters (a, b).
var TransferFactor = gp.TransferFactor

// GPSpec selects the surrogate implementation behind the tuner: the zero
// value is the exact O(n³) transfer GP; Sparse selects the O(n·m²)
// inducing-point approximation. Set TunerOptions.GP (or HarnessRunOpts.GP)
// to switch; see DESIGN.md, "Sparse GP approximation".
type GPSpec = gp.Spec

// DefaultSparseM is the inducing budget used by the "sparse" spec shorthand.
const DefaultSparseM = gp.DefaultSparseM

// ParseGPSpec parses the -gp command-line syntax: "exact", "sparse" or
// "sparse:<m>".
var ParseGPSpec = gp.ParseSpec

// ---- Fault-tolerant evaluation ----
//
// Real PD tools fail: licences drop, runs hang, adapters crash, QoR reports
// come back corrupted. ResilientEvaluator hardens any Evaluator against all
// of that; EvalCheckpoint makes runs crash-safe; the chaos Injector lets you
// rehearse the failure paths. See DESIGN.md, "Fault tolerance".

// ResilientEvaluator wraps an Evaluator with deadlines, bounded retries,
// panic recovery, QoR validation and a failure policy. Pass its Evaluate
// method to NewTuner.
type ResilientEvaluator = robust.Evaluator

// ResilientOptions configures a ResilientEvaluator.
type ResilientOptions = robust.Options

// FailurePolicy decides the fate of a candidate that exhausts its retries.
type FailurePolicy = robust.FailurePolicy

// The three failure policies.
const (
	PolicyRetry = robust.PolicyRetry
	PolicySkip  = robust.PolicySkip
	PolicyAbort = robust.PolicyAbort
)

// ParseFailurePolicy maps the CLI spelling ("retry", "skip", "abort") to a
// FailurePolicy.
var ParseFailurePolicy = robust.ParsePolicy

// FailureLog collects per-attempt failure events across a run.
type FailureLog = robust.FailureLog

// FailureEvent is one recorded evaluation failure.
type FailureEvent = robust.Event

// NewResilientEvaluator builds a fault-tolerant evaluator around a
// context-aware tool function; WrapEvaluator lifts a plain Evaluator.
var (
	NewResilientEvaluator = robust.New
	WrapEvaluator         = robust.Wrap
)

// ErrSkipCandidate marks a terminal per-candidate evaluation failure that
// the tuner survives: the candidate is marked Failed (see TunerResult's
// FailedIdx) and the PAL loop continues.
var ErrSkipCandidate = core.ErrSkipCandidate

// EvalCheckpoint is a crash-safe JSON cache of tool observations: wrap the
// evaluator with it and a killed run, restarted with the same seed, replays
// paid-for tool runs from disk instead of re-invoking the tool.
type EvalCheckpoint = robust.Checkpoint

// NewCheckpoint builds an empty checkpoint; LoadCheckpoint restores one
// (a missing file yields an empty checkpoint, serving fresh start and
// resume alike). Schema v2 files additionally carry the tuner's serialised
// RNG-source state and iteration count; v1 files load transparently.
var (
	NewCheckpoint  = robust.NewCheckpoint
	LoadCheckpoint = robust.LoadCheckpoint
)

// CampaignCheckpoint is the crash-safe store behind resumable table
// regeneration: completed (space × method × seed) cells plus the mid-run
// observations, RNG state and iteration count of cells in flight.
type CampaignCheckpoint = robust.CampaignCheckpoint

// CampaignCellResult is one completed campaign cell as persisted.
type CampaignCellResult = robust.CampaignCell

// NewCampaignCheckpoint builds an empty campaign checkpoint;
// LoadCampaignCheckpoint restores one (a missing file yields an empty
// checkpoint, serving fresh start and resume alike).
var (
	NewCampaignCheckpoint  = robust.NewCampaignCheckpoint
	LoadCampaignCheckpoint = robust.LoadCampaignCheckpoint
)

// PCGSource is a math/rand/v2 PCG generator adapted to math/rand's
// Source64, with serialisable state (encoding.BinaryMarshaler) — the
// random source that makes mid-run RNG state checkpointable. Plumb one
// through TunerOptions.Src and snapshot it with Tuner.RandState.
type PCGSource = core.PCGSource

// NewPCGSource builds a PCGSource from two seed words.
var NewPCGSource = core.NewPCGSource

// ChaosInjector deterministically injects tool faults (transient errors,
// hangs, panics, corrupted QoR) into an evaluator — the test harness for
// every failure path above.
type ChaosInjector = chaos.Injector

// ChaosOptions configures a ChaosInjector; ChaosRates sets the per-attempt
// injection probabilities.
type (
	ChaosOptions = chaos.Options
	ChaosRates   = chaos.Rates
)

// NewChaos builds a chaos injector.
var NewChaos = chaos.New

// OutageSchedule describes time-correlated downtime windows (periodic
// licence-server maintenance, bursty farm preemption) on the injector's
// virtual timeline, composable with the i.i.d. ChaosRates; OutageWindow is
// one downtime interval. Set ChaosOptions.Outage to inject them.
type (
	OutageSchedule = chaos.Schedule
	OutageWindow   = chaos.Window
)

// ErrToolOutage is the injected correlated-outage failure: every attempt
// inside a downtime window fails with an error wrapping it. It carries the
// Outage() bool marker that IsOutageError (and the circuit breaker) detect,
// so real tool adapters can mark their own licence-server errors the same
// way without depending on the chaos package.
var ErrToolOutage = chaos.ErrOutage

// ParseOutageSchedule reads the CLI "PERIOD/DOWN" outage spelling (e.g.
// "60s/10s"); "" and "off" are the disabled schedule.
var ParseOutageSchedule = chaos.ParseSchedule

// IsOutageError reports whether an error is marked as a correlated
// infrastructure outage (any error in its chain implements Outage() bool
// returning true).
var IsOutageError = robust.IsOutage

// CircuitBreaker converts per-call failures into a run-level "the
// infrastructure is down" signal: consecutive transient failures (or a
// single outage-marked one) trip it open, evaluations pause — bounded by
// MaxOutage — instead of burning per-candidate retry budgets, and a
// half-open probe re-admits work. Share one breaker per run via
// ResilientOptions.Breaker and, for parked campaign scheduling, via
// Campaign.Breaker.
type (
	CircuitBreaker        = robust.Breaker
	CircuitBreakerOptions = robust.BreakerOptions
	CircuitBreakerState   = robust.BreakerState
)

// The circuit breaker's positions.
const (
	BreakerClosed   = robust.BreakerClosed
	BreakerOpen     = robust.BreakerOpen
	BreakerHalfOpen = robust.BreakerHalfOpen
)

// NewCircuitBreaker builds a circuit breaker.
var NewCircuitBreaker = robust.NewBreaker

// ErrBreakerOpen is the scheduling signal a Park-mode breaker returns while
// refusing evaluations; ErrOutageDeadline reports an outage episode that
// outlived CircuitBreakerOptions.MaxOutage.
var (
	ErrBreakerOpen    = robust.ErrBreakerOpen
	ErrOutageDeadline = robust.ErrOutageDeadline
)

// Clock abstracts wall-clock access (now/sleep) for everything in the
// fault-tolerance stack; RealClock is the wall clock, and NewFakeClock
// builds the deterministic test clock that makes outage scenarios run in
// microseconds.
type Clock = clock.Clock

// FakeClock is the deterministic jump-ahead Clock for tests.
type FakeClock = clock.Fake

// RealClock returns the wall clock; NewFakeClock a deterministic fake.
var (
	RealClock    = clock.Real
	NewFakeClock = clock.NewFake
)

// ---- Multi-objective metrics ----

// Dominates reports Pareto dominance (minimisation).
var Dominates = pareto.Dominates

// ParetoFront returns the non-dominated subset of the points.
var ParetoFront = pareto.FrontPoints

// Hypervolume computes the dominated hyper-volume against a reference point.
var Hypervolume = pareto.Hypervolume

// HVError computes the hyper-volume error of Eq. (2).
var HVError = pareto.HVError

// ADRS computes the average distance from reference set of Eq. (3).
var ADRS = pareto.ADRS

// ReferencePoint derives a hyper-volume reference point from a point cloud.
var ReferencePoint = pareto.ReferencePoint

// ---- Experiment harness (Tables 2–3, Figure 3) ----

// Harness re-exports the experiment harness package-level API.
type (
	// Scenario couples a source and target benchmark.
	Scenario = eval.Scenario
	// ObjSpace is one of the paper's objective spaces.
	ObjSpace = eval.ObjSpace
	// HarnessTable is a regenerated comparison table.
	HarnessTable = eval.Table
	// HarnessMethod identifies one of the five compared tuners.
	HarnessMethod = eval.Method
	// HarnessRunOpts carries optional harness knobs (evaluator middleware,
	// engine workers, a checkpointable random source).
	HarnessRunOpts = eval.RunOpts
	// Campaign is a resumable, parallel table regeneration: every
	// (space × method × seed) cell is an independent work unit executed
	// concurrently and, with a CampaignCheckpoint attached, persisted so a
	// killed run resumes bit-identically.
	Campaign = eval.Campaign
	// CampaignUnit is one campaign work item.
	CampaignUnit = eval.Unit
	// CampaignUnitResult is one unit's scored outcome.
	CampaignUnitResult = eval.UnitResult
	// TableReport is the machine-readable (TABLES.json) form of a table.
	TableReport = eval.TableReport
)

// Harness functions.
var (
	ScenarioOne = eval.ScenarioOne
	ScenarioTwo = eval.ScenarioTwo
	ObjSpaces   = eval.Spaces
	Methods     = eval.Methods
	BuildTable  = eval.BuildTable
	Figure3     = eval.Figure3
	Figure3Opts = eval.Figure3Opts
)
