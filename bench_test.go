// Benchmarks regenerating every table and figure of the paper's evaluation
// section, plus ablations over PPATuner's design choices. Each benchmark
// reports the paper's quality indicators (hyper-volume error, ADRS, tool
// runs) as custom metrics so `go test -bench` output doubles as the
// reproduction record:
//
//	BenchmarkTable1Stats       — Table 1 (parameter statistics)
//	BenchmarkTable2_*          — Table 2, one per objective space (Target1)
//	BenchmarkTable3_*          — Table 3, one per objective space (Target2)
//	BenchmarkFigure3           — Figure 3 (power-delay fronts on Target2)
//	BenchmarkAblation*         — transfer on/off, δ, τ, source size, batch
//	BenchmarkFlow*             — raw simulator throughput
package ppatuner_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ppatuner"
	"ppatuner/internal/core"
	"ppatuner/internal/eval"
	"ppatuner/internal/gp"
	"ppatuner/internal/gpbench"
	"ppatuner/internal/pareto"
)

// ---- GP hot-path micro-suite (shared with cmd/bench, which emits
// BENCH_gp.json so the perf trajectory is machine-readable per PR) ----

func BenchmarkFitRefit(b *testing.B)    { gpbench.FitRefit(b) }
func BenchmarkPredictPool(b *testing.B) { gpbench.PredictPool(b) }
func BenchmarkAddTarget(b *testing.B)   { gpbench.AddTarget(b) }

// Scale suite: the same hot paths at n ∈ {200, 1000, 5000} for the exact GP
// and the sparse:64 inducing-point surrogate. The exact rows stop at
// gpbench.ExactScaleMax — one O(n³) refit at n=5000 takes minutes, which is
// exactly the regime the sparse path exists for.
func benchScale(b *testing.B, fn func(*testing.B, int, gp.Spec)) {
	b.Helper()
	for _, n := range gpbench.ScaleSizes {
		for _, spec := range []gp.Spec{{}, gpbench.SparseScaleSpec} {
			if !spec.Sparse && n > gpbench.ExactScaleMax {
				continue
			}
			b.Run(fmt.Sprintf("n%d/%s", n, spec), func(b *testing.B) { fn(b, n, spec) })
		}
	}
}

func BenchmarkFitScale(b *testing.B)         { benchScale(b, gpbench.FitScale) }
func BenchmarkPredictPoolScale(b *testing.B) { benchScale(b, gpbench.PredictPoolScale) }
func BenchmarkAddTargetScale(b *testing.B)   { benchScale(b, gpbench.AddTargetScale) }

// BenchmarkTable1Stats regenerates the Table 1 parameter statistics.
func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range []*ppatuner.Space{
			ppatuner.Source1Space(), ppatuner.Target1Space(),
			ppatuner.Source2Space(), ppatuner.Target2Space(),
		} {
			if len(s.Stats()) != s.Dim() {
				b.Fatalf("%s: stats rows != dim", s.Name)
			}
		}
	}
}

// benchTableSpace runs all five methods on one scenario/objective-space cell
// and reports each method's indicators.
func benchTableSpace(b *testing.B, mk func() (*ppatuner.Scenario, error), spaceIdx int) {
	b.Helper()
	s, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	space := ppatuner.ObjSpaces()[spaceIdx]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		for _, m := range ppatuner.Methods() {
			out, err := eval.RunMethod(m, s, space, seed)
			if err != nil {
				b.Fatalf("%s: %v", m, err)
			}
			hv, adrs := eval.Score(s, space, out)
			b.ReportMetric(hv, fmt.Sprintf("hv-%s", shortName(m)))
			b.ReportMetric(adrs, fmt.Sprintf("adrs-%s", shortName(m)))
			b.ReportMetric(float64(out.Runs), fmt.Sprintf("runs-%s", shortName(m)))
		}
	}
}

func shortName(m ppatuner.HarnessMethod) string {
	switch m {
	case eval.TCAD19:
		return "TCAD19"
	case eval.MLCAD19:
		return "MLCAD19"
	case eval.DAC19:
		return "DAC19"
	case eval.ASPDAC20:
		return "ASPDAC20"
	default:
		return "PPATuner"
	}
}

func BenchmarkTable2_AreaDelay(b *testing.B)      { benchTableSpace(b, ppatuner.ScenarioOne, 0) }
func BenchmarkTable2_PowerDelay(b *testing.B)     { benchTableSpace(b, ppatuner.ScenarioOne, 1) }
func BenchmarkTable2_AreaPowerDelay(b *testing.B) { benchTableSpace(b, ppatuner.ScenarioOne, 2) }

func BenchmarkTable3_AreaDelay(b *testing.B)      { benchTableSpace(b, ppatuner.ScenarioTwo, 0) }
func BenchmarkTable3_PowerDelay(b *testing.B)     { benchTableSpace(b, ppatuner.ScenarioTwo, 1) }
func BenchmarkTable3_AreaPowerDelay(b *testing.B) { benchTableSpace(b, ppatuner.ScenarioTwo, 2) }

// BenchmarkFigure3 regenerates the Figure 3 fronts and reports their sizes
// and the learned front's ADRS to the golden one.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		golden, learned, err := ppatuner.Figure3(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(golden) == 0 || len(learned) == 0 {
			b.Fatal("empty front")
		}
		b.ReportMetric(float64(len(golden)), "golden-points")
		b.ReportMetric(float64(len(learned)), "learned-points")
		b.ReportMetric(pareto.ADRS(golden, learned), "adrs")
	}
}

// ---- Ablations (Scenario Two, power-delay: the cheapest full-size cell) ----

// ablationRun executes PPATuner with overrides and reports quality.
func ablationRun(b *testing.B, name string, seed int64, mutate func(*core.Options)) {
	b.Helper()
	s, err := ppatuner.ScenarioTwo()
	if err != nil {
		b.Fatal(err)
	}
	space := ppatuner.ObjSpaces()[1]
	pool := s.Target.UnitX()
	objVecs := s.Target.Objectives(space.Metrics)
	ev := func(i int) ([]float64, error) { return objVecs[i], nil }
	rng := rand.New(rand.NewSource(seed))

	// Source slice identical to the harness protocol.
	srcIdx := rng.Perm(s.Source.N())[:s.SourceN]
	var sx [][]float64
	sy := make([][]float64, len(space.Metrics))
	for _, j := range srcIdx {
		p := s.Source.Points[j]
		sx = append(sx, p.Config.EncodeInto(s.Target.Space))
		for k, m := range space.Metrics {
			sy[k] = append(sy[k], p.QoR.Get(m))
		}
	}
	opt := core.Options{
		NumObjectives: len(space.Metrics),
		SourceX:       sx,
		SourceY:       sy,
		InitTarget:    14,
		MaxIter:       51,
		DeltaFrac:     0.02,
		Tau:           9,
		ARD:           true,
		FitMaxEvals:   400,
		Rng:           rng,
	}
	mutate(&opt)
	tn, err := core.New(pool, ev, opt)
	if err != nil {
		b.Fatal(err)
	}
	res, err := tn.Run()
	if err != nil {
		b.Fatal(err)
	}
	hv, adrs := eval.Score(s, space, &eval.Outcome{ParetoIdx: res.ParetoIdx, Runs: res.Runs})
	b.ReportMetric(hv, "hv-"+name)
	b.ReportMetric(adrs, "adrs-"+name)
	b.ReportMetric(float64(res.Runs), "runs-"+name)
}

// BenchmarkAblationTransfer isolates the transfer kernel (Eq. 7): identical
// loop with and without the 200 source points.
func BenchmarkAblationTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		ablationRun(b, "with", seed, func(o *core.Options) {})
		ablationRun(b, "without", seed, func(o *core.Options) { o.SourceX, o.SourceY = nil, nil })
	}
}

// BenchmarkAblationDelta sweeps the relaxation coefficient δ (Eq. 11/12),
// the user's precision-vs-runs controller.
func BenchmarkAblationDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		for _, df := range []float64{0.01, 0.05, 0.15} {
			name := fmt.Sprintf("delta%.2f", df)
			ablationRun(b, name, seed, func(o *core.Options) { o.DeltaFrac = df })
		}
	}
}

// BenchmarkAblationTau sweeps the uncertainty-region scaling τ (Eq. 9).
func BenchmarkAblationTau(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		for _, tau := range []float64{2.25, 4, 9} {
			name := fmt.Sprintf("tau%.2g", tau)
			ablationRun(b, name, seed, func(o *core.Options) { o.Tau = tau })
		}
	}
}

// BenchmarkAblationSourceSize sweeps the amount of historical data feeding
// the transfer kernel.
func BenchmarkAblationSourceSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		for _, n := range []int{50, 100, 200} {
			name := fmt.Sprintf("src%d", n)
			ablationRun(b, name, seed, func(o *core.Options) {
				o.SourceX = o.SourceX[:n]
				for k := range o.SourceY {
					o.SourceY[k] = o.SourceY[k][:n]
				}
			})
		}
	}
}

// BenchmarkAblationBatch compares single selection with the licence-parallel
// batch mode of Sec. 3.3.
func BenchmarkAblationBatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seed := int64(i + 1)
		ablationRun(b, "batch1", seed, func(o *core.Options) { o.Batch = 1 })
		ablationRun(b, "batch4", seed, func(o *core.Options) { o.Batch = 4 })
	}
}

// ---- Raw flow-simulator throughput ----

func benchFlow(b *testing.B, design *ppatuner.Design, space *ppatuner.Space) {
	b.Helper()
	u := make([]float64, space.Dim())
	for i := range u {
		u[i] = 0.5
	}
	cfg := space.MustConfig(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ppatuner.RunFlow(design, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowSmallMAC(b *testing.B) { benchFlow(b, ppatuner.SmallMAC(), ppatuner.Target1Space()) }
func BenchmarkFlowLargeMAC(b *testing.B) { benchFlow(b, ppatuner.LargeMAC(), ppatuner.Target2Space()) }
