package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTreeFitsStepFunction(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		v := float64(i) / 100
		x = append(x, []float64{v})
		if v < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 3)
		}
	}
	tr, err := FitTree(x, y, TreeOptions{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p := tr.Predict([]float64{0.2}); math.Abs(p-1) > 1e-9 {
		t.Errorf("Predict(0.2) = %g, want 1", p)
	}
	if p := tr.Predict([]float64{0.9}); math.Abs(p-3) > 1e-9 {
		t.Errorf("Predict(0.9) = %g, want 3", p)
	}
	if tr.Importance[0] <= 0 {
		t.Error("split feature got no importance")
	}
}

func TestTreeDepthLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64()})
		y = append(y, rng.NormFloat64())
	}
	tr, err := FitTree(x, y, TreeOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	var depth func(n *Node) int
	depth = func(n *Node) int {
		if n.IsLeaf() {
			return 0
		}
		l, r := depth(n.Left), depth(n.Right)
		if r > l {
			l = r
		}
		return 1 + l
	}
	if d := depth(tr.Root); d > 3 {
		t.Errorf("tree depth %d > 3", d)
	}
}

func TestTreeConstantTarget(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{5, 5, 5, 5}
	tr, err := FitTree(x, y, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.IsLeaf() {
		t.Error("constant target grew splits")
	}
	if p := tr.Predict([]float64{9}); p != 5 {
		t.Errorf("Predict = %g, want 5", p)
	}
}

func TestTreeErrors(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeOptions{}); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1, 2}, TreeOptions{}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestBoostFitsSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(x []float64) float64 { return math.Sin(4*x[0]) + x[1]*x[1] }
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	b, err := FitBoost(xs, ys, BoostOptions{Rounds: 120, LearningRate: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	var mse float64
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d := b.Predict(x) - f(x)
		mse += d * d
	}
	mse /= 100
	if mse > 0.02 {
		t.Errorf("boost test MSE = %g, want < 0.02", mse)
	}
}

func TestBoostImportanceFindsRelevantFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// y depends only on feature 1 out of 4.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 250; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		ys = append(ys, 3*x[1]+0.01*rng.NormFloat64())
	}
	b, err := FitBoost(xs, ys, BoostOptions{Rounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	imp := b.Importance()
	if len(imp) != 4 {
		t.Fatalf("importance length %d", len(imp))
	}
	for f, v := range imp {
		if f == 1 {
			if v < 0.8 {
				t.Errorf("relevant feature importance %g, want > 0.8", v)
			}
		} else if v > 0.1 {
			t.Errorf("irrelevant feature %d importance %g", f, v)
		}
	}
	// Importances are normalised.
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sum = %g, want 1", sum)
	}
}

func TestBoostConstantTarget(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{2, 2, 2}
	b, err := FitBoost(x, y, BoostOptions{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p := b.Predict([]float64{5}); math.Abs(p-2) > 1e-9 {
		t.Errorf("Predict = %g, want 2", p)
	}
}

// Property: tree predictions at training points never have worse SSE than
// the constant (mean) model.
func TestQuickTreeBeatsMean(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		var xs [][]float64
		var ys []float64
		for i := 0; i < n; i++ {
			xs = append(xs, []float64{rng.Float64(), rng.Float64()})
			ys = append(ys, rng.NormFloat64())
		}
		tr, err := FitTree(xs, ys, TreeOptions{MaxDepth: 5})
		if err != nil {
			return false
		}
		var m float64
		for _, v := range ys {
			m += v
		}
		m /= float64(n)
		var sseTree, sseMean float64
		for i := range xs {
			d := tr.Predict(xs[i]) - ys[i]
			sseTree += d * d
			e := m - ys[i]
			sseMean += e * e
		}
		return sseTree <= sseMean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
