// Package tree implements CART regression trees and least-squares gradient
// boosting with feature-importance extraction — the model family behind the
// ASPDAC'20 FIST baseline ("feature-importance sampling and tree-based
// method for automatic design flow parameter tuning").
package tree

import (
	"fmt"
	"math"
	"sort"
)

// Node is one node of a regression tree.
type Node struct {
	// Leaf prediction.
	Value float64
	// Split: feature index and threshold; Left covers x[Feature] <= Threshold.
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Tree is a fitted regression tree with importance bookkeeping.
type Tree struct {
	Root *Node
	// Importance[f] is the total squared-error reduction from splits on
	// feature f.
	Importance []float64
}

// TreeOptions bounds tree growth.
type TreeOptions struct {
	MaxDepth    int // default 4
	MinSamples  int // minimum samples to attempt a split (default 4)
	MinGain     float64
	NumFeatures int // required: dimensionality of x
}

func (o *TreeOptions) setDefaults() {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 4
	}
	if o.MinSamples <= 1 {
		o.MinSamples = 4
	}
}

// FitTree grows a CART regression tree on (x, y).
func FitTree(x [][]float64, y []float64, opt TreeOptions) (*Tree, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("tree: %d inputs, %d outputs", len(x), len(y))
	}
	if opt.NumFeatures <= 0 {
		opt.NumFeatures = len(x[0])
	}
	opt.setDefaults()
	t := &Tree{Importance: make([]float64, opt.NumFeatures)}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t.Root = t.grow(x, y, idx, opt, 0)
	return t, nil
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	var s float64
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func (t *Tree) grow(x [][]float64, y []float64, idx []int, opt TreeOptions, depth int) *Node {
	node := &Node{Value: mean(y, idx), Feature: -1}
	if depth >= opt.MaxDepth || len(idx) < opt.MinSamples {
		return node
	}
	parentSSE := sse(y, idx)
	if parentSSE <= 1e-12 {
		return node
	}
	bestGain := opt.MinGain
	bestF, bestThr := -1, 0.0
	order := make([]int, len(idx))
	for f := 0; f < opt.NumFeatures; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		// Prefix sums over the sorted order for O(n) split evaluation.
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, i := range order {
			sumR += y[i]
			sumSqR += y[i] * y[i]
		}
		nL := 0
		nR := len(order)
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			sumL += y[i]
			sumSqL += y[i] * y[i]
			sumR -= y[i]
			sumSqR -= y[i] * y[i]
			nL++
			nR--
			if x[order[k]][f] == x[order[k+1]][f] {
				continue // no valid threshold between equal values
			}
			sseL := sumSqL - sumL*sumL/float64(nL)
			sseR := sumSqR - sumR*sumR/float64(nR)
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				bestF = f
				bestThr = (x[order[k]][f] + x[order[k+1]][f]) / 2
			}
		}
	}
	if bestF < 0 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestF] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	t.Importance[bestF] += bestGain
	node.Feature = bestF
	node.Threshold = bestThr
	node.Left = t.grow(x, y, left, opt, depth+1)
	node.Right = t.grow(x, y, right, opt, depth+1)
	return node
}

// Predict evaluates the tree at x.
func (t *Tree) Predict(x []float64) float64 {
	n := t.Root
	for !n.IsLeaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value
}

// Boost is a least-squares gradient-boosted ensemble.
type Boost struct {
	base  float64
	trees []*Tree
	rate  float64
	dim   int
}

// BoostOptions configures gradient boosting.
type BoostOptions struct {
	Rounds       int     // number of trees (default 60)
	LearningRate float64 // shrinkage (default 0.1)
	Tree         TreeOptions
}

func (o *BoostOptions) setDefaults() {
	if o.Rounds <= 0 {
		o.Rounds = 60
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.1
	}
}

// FitBoost trains the ensemble on (x, y).
func FitBoost(x [][]float64, y []float64, opt BoostOptions) (*Boost, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("tree: boost: %d inputs, %d outputs", len(x), len(y))
	}
	opt.setDefaults()
	opt.Tree.NumFeatures = len(x[0])
	b := &Boost{rate: opt.LearningRate, dim: len(x[0])}
	var base float64
	for _, v := range y {
		base += v
	}
	b.base = base / float64(len(y))
	resid := make([]float64, len(y))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = b.base
	}
	for r := 0; r < opt.Rounds; r++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tr, err := FitTree(x, resid, opt.Tree)
		if err != nil {
			return nil, err
		}
		b.trees = append(b.trees, tr)
		improved := false
		for i := range pred {
			d := b.rate * tr.Predict(x[i])
			pred[i] += d
			if math.Abs(d) > 1e-12 {
				improved = true
			}
		}
		if !improved {
			break // residuals exhausted
		}
	}
	return b, nil
}

// Predict evaluates the ensemble at x.
func (b *Boost) Predict(x []float64) float64 {
	out := b.base
	for _, tr := range b.trees {
		out += b.rate * tr.Predict(x)
	}
	return out
}

// Importance aggregates normalised feature importances over the ensemble.
func (b *Boost) Importance() []float64 {
	imp := make([]float64, b.dim)
	for _, tr := range b.trees {
		for f, v := range tr.Importance {
			imp[f] += v
		}
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for f := range imp {
			imp[f] /= total
		}
	}
	return imp
}
