// Package clock is the single sanctioned wall-clock access point for the
// fault-tolerance stack (internal/robust, internal/pdtool/chaos). Everything
// that waits — injected hangs, retry backoff, circuit-breaker dwell times,
// outage-window arithmetic — goes through a Clock value, so tests substitute
// a deterministic Fake and an "outage" that would stall a real run for
// minutes executes in microseconds. The ppalint determinism policy documents
// this package as the audited exemption; the numerical packages must not
// import it.
package clock

import (
	"context"
	"sync"
	"time"
)

// Clock supplies time to the resilience layer. Implementations must be safe
// for concurrent use.
type Clock interface {
	// Now returns the current instant on this clock's timeline.
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock's timeline or ctx is
	// done, returning nil on elapse and ctx.Err() on cancellation. d <= 0
	// returns immediately.
	Sleep(ctx context.Context, d time.Duration) error
}

// Real returns the wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Fake is a deterministic test clock on a virtual timeline: Sleep advances
// the timeline by the requested duration and returns immediately, so code
// that "waits out" an outage window runs in microseconds of real time. The
// zero value starts at the zero time.Time; NewFake picks the origin.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	sleeps int
}

// NewFake builds a fake clock whose timeline starts at origin.
func NewFake(origin time.Time) *Fake { return &Fake{now: origin} }

// Now returns the current virtual instant.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep advances the virtual timeline by d and returns. A done context wins
// over the advance, mirroring the real clock's cancellation contract.
func (f *Fake) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.sleeps++
	f.mu.Unlock()
	return nil
}

// Advance moves the timeline forward by d without counting as a sleep
// (manual test control). Negative d is ignored: the timeline is monotonic.
func (f *Fake) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// Sleeps reports how many Sleep calls advanced the timeline — tests assert
// that waiting code paths actually waited (virtually) rather than spinning.
func (f *Fake) Sleeps() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sleeps
}
