package clock

import (
	"context"
	"testing"
	"time"
)

func TestFakeSleepAdvancesVirtualTime(t *testing.T) {
	origin := time.Unix(0, 0)
	f := NewFake(origin)
	start := time.Now()
	if err := f.Sleep(context.Background(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if real := time.Since(start); real > time.Second {
		t.Fatalf("fake sleep took %v of real time", real)
	}
	if got := f.Now().Sub(origin); got != 30*time.Second {
		t.Fatalf("virtual elapsed = %v, want 30s", got)
	}
	if f.Sleeps() != 1 {
		t.Fatalf("sleeps = %d, want 1", f.Sleeps())
	}
}

func TestFakeSleepHonoursCancelledContext(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Sleep(ctx, time.Minute); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := f.Now(); !got.Equal(time.Unix(0, 0)) {
		t.Fatalf("cancelled sleep advanced the timeline to %v", got)
	}
}

func TestFakeAdvanceIsMonotonic(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	f.Advance(5 * time.Second)
	f.Advance(-time.Hour)
	if got := f.Now(); !got.Equal(time.Unix(105, 0)) {
		t.Fatalf("now = %v, want 105s", got)
	}
	if f.Sleeps() != 0 {
		t.Fatalf("Advance counted as a sleep")
	}
}

func TestRealSleepElapsesAndCancels(t *testing.T) {
	c := Real()
	if err := c.Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("short sleep: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if err := c.Sleep(ctx, 10*time.Second); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Now().IsZero() {
		t.Fatal("real clock returned the zero time")
	}
}

func TestSleepZeroReturnsImmediately(t *testing.T) {
	for _, c := range []Clock{Real(), NewFake(time.Unix(0, 0))} {
		if err := c.Sleep(context.Background(), 0); err != nil {
			t.Fatalf("%T zero sleep: %v", c, err)
		}
		if err := c.Sleep(context.Background(), -time.Second); err != nil {
			t.Fatalf("%T negative sleep: %v", c, err)
		}
	}
}
