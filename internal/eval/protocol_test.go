package eval

import (
	"math/rand"
	"testing"

	"ppatuner/internal/pdtool"
)

// TestScenarioBudgetsMatchPaperBands: the per-method budgets encode the
// paper's reported run counts (Tables 2 and 3) — a regression guard on the
// experimental protocol itself. Building the scenarios is expensive, so the
// budgets are duplicated here rather than pulled from ScenarioOne().
func TestScenarioBudgetsMatchPaperBands(t *testing.T) {
	one := map[Method]int{TCAD19: 510, MLCAD19: 400, DAC19: 600, ASPDAC20: 400, PPATuner: 260}
	two := map[Method]int{TCAD19: 95, MLCAD19: 70, DAC19: 130, ASPDAC20: 70, PPATuner: 65}
	// Paper bands (±10%): Table 2 runs 508/400/600/400/252; Table 3 runs
	// 92/70/131/70/62.
	paper1 := map[Method]float64{TCAD19: 508, MLCAD19: 400, DAC19: 600, ASPDAC20: 400, PPATuner: 252}
	paper2 := map[Method]float64{TCAD19: 92, MLCAD19: 70, DAC19: 131, ASPDAC20: 70, PPATuner: 62}
	for m, b := range one {
		if f := float64(b) / paper1[m]; f < 0.9 || f > 1.1 {
			t.Errorf("Scenario One %s budget %d outside ±10%% of paper's %g", m, b, paper1[m])
		}
	}
	for m, b := range two {
		if f := float64(b) / paper2[m]; f < 0.9 || f > 1.1 {
			t.Errorf("Scenario Two %s budget %d outside ±10%% of paper's %g", m, b, paper2[m])
		}
	}
}

// TestSourceSliceEncodesIntoTargetSpace: the historical data fed to transfer
// methods must be expressed in target-space coordinates.
func TestSourceSliceEncodesIntoTargetSpace(t *testing.T) {
	s := miniScenario(t)
	rng := rand.New(rand.NewSource(9)) // same protocol as RunMethod
	x, y := sourceSlice(s, []pdtool.Metric{pdtool.Power, pdtool.Delay}, rng)
	if len(x) != s.SourceN {
		t.Fatalf("source slice has %d points, want %d", len(x), s.SourceN)
	}
	if len(y) != 2 || len(y[0]) != s.SourceN {
		t.Fatalf("source outputs shape wrong")
	}
	dim := s.Target.Space.Dim()
	for i, xi := range x {
		if len(xi) != dim {
			t.Fatalf("source point %d has dim %d, want target dim %d", i, len(xi), dim)
		}
	}
	for k := range y {
		for _, v := range y[k] {
			if v <= 0 {
				t.Fatal("non-positive QoR in source slice")
			}
		}
	}
}

// TestScoreEmptyOutcome: an empty prediction scores worst-case, not NaN.
func TestScoreEmptyOutcome(t *testing.T) {
	s := miniScenario(t)
	hv, adrs := Score(s, Spaces()[0], &Outcome{})
	if hv != 1 {
		t.Errorf("empty outcome HV error = %g, want 1", hv)
	}
	if adrs <= 0 {
		t.Errorf("empty outcome ADRS = %g, want > 0 (infinite)", adrs)
	}
}

// TestRunMethodDeterministicPerSeed: the harness itself must not introduce
// nondeterminism.
func TestRunMethodDeterministicPerSeed(t *testing.T) {
	s := miniScenario(t)
	space := Spaces()[1]
	for _, m := range []Method{PPATuner, MLCAD19} {
		a, err := RunMethod(m, s, space, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunMethod(m, s, space, 7)
		if err != nil {
			t.Fatal(err)
		}
		if a.Runs != b.Runs || len(a.ParetoIdx) != len(b.ParetoIdx) {
			t.Errorf("%s: nondeterministic across identical seeds", m)
		}
	}
}
