package eval

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"ppatuner/internal/robust"
)

// frontSorted reports whether pts is in the lexicographic order GoldenFront
// and OutcomeFront promise.
func frontSorted(pts [][]float64) bool {
	for i := 1; i < len(pts); i++ {
		a, b := pts[i-1], pts[i]
		for k := range a {
			if a[k] != b[k] {
				if a[k] > b[k] {
					return false
				}
				break
			}
		}
	}
	return true
}

func TestGoldenFront(t *testing.T) {
	s := miniScenario(t)
	sp := Spaces()[0]
	f := GoldenFront(s, sp)
	if len(f) == 0 {
		t.Fatal("empty golden front")
	}
	for i, p := range f {
		if len(p) != len(sp.Metrics) {
			t.Fatalf("point %d has %d objectives, want %d", i, len(p), len(sp.Metrics))
		}
	}
	if !frontSorted(f) {
		t.Fatal("golden front is not lexicographically sorted")
	}
	if !reflect.DeepEqual(f, GoldenFront(s, sp)) {
		t.Fatal("GoldenFront is not deterministic")
	}
}

func TestOutcomeFront(t *testing.T) {
	s := miniScenario(t)
	sp := Spaces()[0]
	out, err := RunMethod(TCAD19, s, sp, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := OutcomeFront(s, sp, out)
	if len(f) == 0 {
		t.Fatal("empty learned front")
	}
	if len(f) > len(out.ParetoIdx) {
		t.Fatalf("front has %d points from %d predictions — filtering added points", len(f), len(out.ParetoIdx))
	}
	if !frontSorted(f) {
		t.Fatal("learned front is not lexicographically sorted")
	}
}

// TestCampaignOnUnit proves the callback sees every fresh unit exactly once
// with its scored result, and that checkpoint-replayed units skip it — the
// invariant the job server's manifest writes build on.
func TestCampaignOnUnit(t *testing.T) {
	s := miniScenario(t)
	path := filepath.Join(t.TempDir(), "c.ckpt.json")
	ck, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]UnitResult{}
	c := &Campaign{
		Scenario: s, Seeds: []int64{1},
		Spaces: Spaces()[:1], Methods: []Method{TCAD19, DAC19},
		Checkpoint: ck,
		OnUnit: func(u Unit, res UnitResult, out *Outcome) error {
			if out == nil || out.Runs != res.Runs {
				t.Errorf("OnUnit outcome/result mismatch for %+v", u)
			}
			seen[string(u.Method)] = res
			return nil
		},
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("OnUnit saw %d units, want 2", len(seen))
	}

	// Resume against the completed checkpoint: every unit replays from it,
	// so the callback must stay silent.
	ck2, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	c2 := &Campaign{
		Scenario: s, Seeds: []int64{1},
		Spaces: Spaces()[:1], Methods: []Method{TCAD19, DAC19},
		Checkpoint: ck2,
		OnUnit:     func(Unit, UnitResult, *Outcome) error { calls++; return nil },
	}
	if _, err := c2.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("OnUnit fired %d times on a fully replayed campaign", calls)
	}
}

// TestCampaignGate proves the gate stops a campaign at the next unit
// boundary (the graceful-drain path) and that completed units are never
// gated on resume.
func TestCampaignGate(t *testing.T) {
	s := miniScenario(t)
	path := filepath.Join(t.TempDir(), "c.ckpt.json")
	ck, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	drain := errors.New("draining")
	started := 0
	c := &Campaign{
		Scenario: s, Seeds: []int64{1},
		Spaces: Spaces()[:1], Methods: []Method{TCAD19, DAC19},
		Checkpoint: ck,
		Gate: func(Unit) error {
			started++
			if started > 1 {
				return drain
			}
			return nil
		},
	}
	if _, err := c.Run(); !errors.Is(err, drain) {
		t.Fatalf("gated campaign returned %v, want the gate error", err)
	}

	// Resume with an always-open gate: the completed first unit replays
	// without consulting it, the second runs fresh, and the campaign
	// finishes.
	ck2, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	gated := 0
	c2 := &Campaign{
		Scenario: s, Seeds: []int64{1},
		Spaces: Spaces()[:1], Methods: []Method{TCAD19, DAC19},
		Checkpoint: ck2,
		Gate:       func(Unit) error { gated++; return nil },
	}
	if _, err := c2.Run(); err != nil {
		t.Fatal(err)
	}
	if gated != 1 {
		t.Fatalf("resume gated %d units, want 1 (completed units bypass the gate)", gated)
	}
}
