package eval

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"ppatuner/internal/core"
	"ppatuner/internal/par"
	"ppatuner/internal/robust"
)

// Unit is one independent work item of a table campaign: a single
// (objective space, method, seed) tuning run on the campaign's scenario.
// Units are what the parallel scheduler distributes and what the campaign
// checkpoint keys progress by.
type Unit struct {
	SpaceIdx int
	Method   Method
	Seed     int64
}

// UnitResult is one unit's scored outcome. It crosses the shard wire
// protocol inside Msg.Result, so the json tags are wire format and locked
// by the wirecompat analyzer; it is never persisted to checkpoint files
// (CampaignCell is the durable form), which is why adding the explicit tags
// was a compatible change — both ends of the wire are always the same
// binary.
type UnitResult struct {
	HV   float64 `json:"hv"`
	ADRS float64 `json:"adrs"`
	Runs int     `json:"runs"`
}

// Campaign is a resumable, parallel table-regeneration run: it enumerates
// every (space × method × seed) cell of a comparison table as an
// independent unit, executes the units via internal/par's deterministic
// fork-join, and — when a Checkpoint is attached — persists each completed
// unit plus the mid-run state (observations, RNG-source state, iteration
// count) of units in flight. Results are assembled from a per-unit slice
// in enumeration order, so any Workers value produces a bit-identical
// Table; a resumed campaign skips completed units entirely and replays
// partial ones from their recorded state.
//
// Every unit derives its random stream from a PCG seeded by (seed, unit
// key), independent of the other units — which is both what makes the
// units order-free under parallel execution and what makes their RNG state
// individually checkpointable.
type Campaign struct {
	Scenario *Scenario
	Seeds    []int64
	// Spaces/Methods restrict the table's axes; nil means the paper's full
	// Spaces()/Methods() sets.
	Spaces  []ObjSpace
	Methods []Method
	// Workers bounds how many units run concurrently; <= 1 runs serially.
	// Purely a wall-clock knob: the assembled table is bit-identical for
	// any value.
	Workers int
	// Checkpoint, when non-nil, makes the campaign crash-safe and
	// resumable. Load it with robust.LoadCampaignCheckpoint so an existing
	// file resumes.
	Checkpoint *robust.CampaignCheckpoint
	// Breaker, when non-nil, makes the campaign outage-tolerant: it must be
	// the same circuit breaker the Wrap middleware's robust.Evaluator uses
	// (built with BreakerOptions.Park = true). A unit whose evaluation hits
	// the open breaker fails with robust.ErrBreakerOpen; instead of failing
	// the campaign, the scheduler parks the unit (persisting the mark when
	// a Checkpoint is attached), waits out the outage via
	// Breaker.AwaitRecovery — bounded by the breaker's MaxOutage deadline —
	// and requeues the parked units in enumeration order. Parked units keep
	// their partial checkpoint state, so requeueing replays the paid-for
	// observations and the final table is bit-identical to a fault-free
	// run.
	Breaker *robust.Breaker
	// Opts is the base harness configuration applied to every unit (Wrap
	// middleware, engine workers). Opts.Src is ignored: each unit supplies
	// its own checkpointable source.
	Opts RunOpts
	// WrapUnit, when non-nil, wraps each unit's evaluator with the unit's
	// identity in hand — the hook for per-unit instrumentation (call
	// counters in tests, per-unit chaos). It composes innermost, beneath
	// the checkpoint cache, so it sees only fresh tool invocations, never
	// replayed observations.
	WrapUnit func(Unit, core.Evaluator) core.Evaluator
	// Gate, when non-nil, is consulted immediately before each unit starts
	// (completed units replayed from the checkpoint are never gated). A
	// non-nil error fails the unit with that error and thereby aborts the
	// campaign — the pause hook job-level schedulers (cmd/ppaserved) use to
	// drain a campaign at the next unit boundary: already-running units
	// keep streaming observations into the checkpoint, so nothing paid for
	// is lost and the campaign resumes exactly where it stopped.
	Gate func(Unit) error
	// OnUnit, when non-nil, observes each unit's scored outcome the moment
	// the unit finishes — after scoring, before the completion is recorded
	// in the checkpoint. A crash between the callback and the checkpoint
	// write re-runs the unit on resume and replays the callback with
	// bit-identical data (units are deterministic), so durable per-unit
	// side effects (the server's job manifest) stay consistent without
	// two-phase commit. Units already completed in the checkpoint are
	// skipped without a callback: whatever OnUnit persisted for them
	// persisted before their completion did. A non-nil error fails the
	// unit.
	OnUnit func(Unit, UnitResult, *Outcome) error
}

func (c *Campaign) spaces() []ObjSpace {
	if c.Spaces != nil {
		return c.Spaces
	}
	return Spaces()
}

func (c *Campaign) methods() []Method {
	if c.Methods != nil {
		return c.Methods
	}
	return Methods()
}

// Units enumerates the campaign's work items in deterministic order:
// space-major, then method, then seed — the order Run indexes results by.
func (c *Campaign) Units() []Unit {
	spaces, methods := c.spaces(), c.methods()
	units := make([]Unit, 0, len(spaces)*len(methods)*len(c.Seeds))
	for si := range spaces {
		for _, m := range methods {
			for _, seed := range c.Seeds {
				units = append(units, Unit{SpaceIdx: si, Method: m, Seed: seed})
			}
		}
	}
	return units
}

// UnitKey is the stable checkpoint identity of a unit: scenario, space,
// method and seed spelled out, so a checkpoint file is self-describing and
// one file can hold several tables' campaigns.
func (c *Campaign) UnitKey(u Unit) string {
	return fmt.Sprintf("%s|%s|%s|seed=%d", c.Scenario.Name, c.spaces()[u.SpaceIdx].Name, u.Method, u.Seed)
}

// unitSalt folds a unit key into the second PCG seed word, decorrelating
// the per-unit random streams that share a seed.
func unitSalt(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Figure3Source is the seed-derived checkpointable random source behind
// Figure3Opts, exported so cmd/fig3 can snapshot its state for resume.
func Figure3Source(seed int64) *core.PCGSource {
	return core.NewPCGSource(uint64(seed), unitSalt("Figure 3"))
}

// Run executes every unit (skipping ones the checkpoint has completed) and
// assembles the comparison table. The first unit error in enumeration
// order aborts the campaign — deterministically, regardless of which
// worker hit it first; mid-run state persisted before the error is kept,
// so a fixed and re-run campaign resumes rather than restarts. With a
// Breaker attached, units that hit an open breaker are parked and requeued
// after recovery instead of aborting — see the Breaker field.
func (c *Campaign) Run() (*Table, error) {
	if c.Scenario == nil {
		return nil, fmt.Errorf("eval: campaign has no scenario")
	}
	if len(c.Seeds) == 0 {
		return nil, fmt.Errorf("eval: campaign has no seeds")
	}
	units := c.Units()
	results := make([]UnitResult, len(units))
	errs := make([]error, len(units))
	pending := make([]int, len(units))
	for x := range pending {
		pending[x] = x
	}
	for len(pending) > 0 {
		idx := pending
		par.Do(c.Workers, len(idx), func(lo, hi int) {
			for x := lo; x < hi; x++ {
				results[idx[x]], errs[idx[x]] = c.runUnit(units[idx[x]])
			}
		})
		// Partition this round's outcomes in enumeration order: breaker
		// refusals park the unit; anything else aborts the campaign.
		var parked []int
		for _, x := range idx {
			if errs[x] == nil {
				continue
			}
			if c.Breaker != nil && errors.Is(errs[x], robust.ErrBreakerOpen) {
				parked = append(parked, x)
				continue
			}
			return nil, c.unitError(units[x], errs[x])
		}
		if len(parked) == 0 {
			break
		}
		for _, x := range parked {
			if c.Checkpoint != nil {
				if err := c.Checkpoint.Park(c.UnitKey(units[x])); err != nil {
					return nil, c.unitError(units[x], err)
				}
			}
		}
		// Wait out the outage (bounded by the breaker's MaxOutage
		// deadline), then requeue the parked units in enumeration order.
		if err := c.Breaker.AwaitRecovery(context.Background()); err != nil {
			return nil, c.unitError(units[parked[0]], err)
		}
		for _, x := range parked {
			if c.Checkpoint != nil {
				if err := c.Checkpoint.Unpark(c.UnitKey(units[x])); err != nil {
					return nil, c.unitError(units[x], err)
				}
			}
			errs[x] = nil
		}
		pending = parked
	}
	return c.Assemble(results), nil
}

// Assemble reduces per-unit results — indexed in Units() enumeration order —
// to the comparison table, accumulating in seed order so the reduction is
// bit-identical however and wherever the units actually ran. It is the
// single assembly path for in-process campaigns and the distributed
// coordinator alike.
func (c *Campaign) Assemble(results []UnitResult) *Table {
	t := &Table{Scenario: c.Scenario, Methods: c.methods(), Spaces: c.spaces()}
	nm, nseed := len(t.Methods), len(c.Seeds)
	for si := range t.Spaces {
		rows := make([]Row, nm)
		for mi := range t.Methods {
			base := (si*nm + mi) * nseed
			rows[mi] = aggregate(t.Methods[mi], results[base:base+nseed])
		}
		t.Rows = append(t.Rows, rows)
	}
	return t
}

// unitError labels a unit failure with the cell it came from.
func (c *Campaign) unitError(u Unit, err error) error {
	return fmt.Errorf("eval: %s / %s / %s / seed %d: %w",
		c.Scenario.Name, c.spaces()[u.SpaceIdx].Name, u.Method, u.Seed, err)
}

// runUnit executes one unit, consulting and feeding the checkpoint.
func (c *Campaign) runUnit(u Unit) (UnitResult, error) {
	key := c.UnitKey(u)
	ck := c.Checkpoint
	if ck != nil {
		if cell, ok := ck.Done(key); ok {
			return UnitResult{HV: cell.HV, ADRS: cell.ADRS, Runs: cell.Runs}, nil
		}
	}
	if c.Gate != nil {
		if err := c.Gate(u); err != nil {
			return UnitResult{}, err
		}
	}
	src := core.NewPCGSource(uint64(u.Seed), unitSalt(key))
	if ck != nil {
		if state, _ := ck.PartialRandState(key); state != nil {
			// A crashed run left mid-unit state: restore the exact RNG
			// state it started from. The replayed observations below then
			// reproduce its draws bit-for-bit, independent of how the seed
			// maps to a generator today.
			if err := src.UnmarshalBinary(state); err != nil {
				return UnitResult{}, err
			}
		} else {
			state, err := src.MarshalBinary()
			if err != nil {
				return UnitResult{}, err
			}
			if err := ck.StartCell(key, state); err != nil {
				return UnitResult{}, err
			}
		}
	}
	opts := c.Opts
	opts.Src = src
	prev, wrapUnit := c.Opts.Wrap, c.WrapUnit
	// Middleware order, innermost first: per-unit hook (sees only real
	// tool invocations) -> checkpoint cache (replays paid-for
	// observations) -> the campaign-wide Wrap (fault-tolerance layers
	// belong outside the cache so retries re-enter the miss path).
	opts.Wrap = func(ev core.Evaluator) core.Evaluator {
		if wrapUnit != nil {
			ev = wrapUnit(u, ev)
		}
		if ck != nil {
			ev = ck.WrapCell(key, ev)
		}
		if prev != nil {
			ev = prev(ev)
		}
		return ev
	}
	space := c.spaces()[u.SpaceIdx]
	out, err := RunMethodOpts(u.Method, c.Scenario, space, u.Seed, opts)
	if err != nil {
		return UnitResult{}, err
	}
	hv, adrs := Score(c.Scenario, space, out)
	res := UnitResult{HV: hv, ADRS: adrs, Runs: out.Runs}
	if c.OnUnit != nil {
		if err := c.OnUnit(u, res, out); err != nil {
			return UnitResult{}, err
		}
	}
	if ck != nil {
		if err := ck.Complete(key, robust.CampaignCell{HV: hv, ADRS: adrs, Runs: out.Runs}); err != nil {
			return UnitResult{}, err
		}
	}
	return res, nil
}

// aggregate reduces one cell's per-seed results to mean ± sample standard
// deviation, accumulating in seed order so the reduction is bit-identical
// however the units were scheduled.
func aggregate(m Method, rs []UnitResult) Row {
	row := Row{Method: m}
	n := float64(len(rs))
	for _, r := range rs {
		row.HV += r.HV
		row.ADRS += r.ADRS
		row.Runs += float64(r.Runs)
	}
	row.HV /= n
	row.ADRS /= n
	row.Runs /= n
	if len(rs) > 1 {
		var vh, va, vr float64
		for _, r := range rs {
			dh := r.HV - row.HV
			da := r.ADRS - row.ADRS
			dr := float64(r.Runs) - row.Runs
			vh += dh * dh
			va += da * da
			vr += dr * dr
		}
		denom := n - 1
		row.HVStd = math.Sqrt(vh / denom)
		row.ADRSStd = math.Sqrt(va / denom)
		row.RunsStd = math.Sqrt(vr / denom)
	}
	return row
}
