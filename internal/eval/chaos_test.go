package eval

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ppatuner/internal/benchdata"
	"ppatuner/internal/core"
	"ppatuner/internal/pareto"
	"ppatuner/internal/pdtool"
	"ppatuner/internal/pdtool/chaos"
	"ppatuner/internal/robust"
)

var (
	t2Once sync.Once
	t2Data *benchdata.Dataset
	t2Err  error
)

// target2 builds the paper's Target2 benchmark once for the whole package
// (727 LargeMAC flow runs — the expensive part of these tests).
func target2(t *testing.T) *benchdata.Dataset {
	t.Helper()
	t2Once.Do(func() { t2Data, t2Err = benchdata.Target2() })
	if t2Err != nil {
		t.Fatal(t2Err)
	}
	return t2Data
}

// hvOf scores a result's Pareto prediction against the dataset's golden front.
func hvOf(objVecs [][]float64, paretoIdx []int) float64 {
	golden := pareto.FrontPoints(objVecs)
	ref := pareto.ReferencePoint(objVecs, 0.10)
	approx := make([][]float64, 0, len(paretoIdx))
	for _, i := range paretoIdx {
		approx = append(approx, objVecs[i])
	}
	return pareto.HVError(golden, pareto.FrontPoints(approx), ref)
}

// TestChaosTuningWithinNoiseOnTarget2 is the headline acceptance test: with a
// >=20% transient-failure rate plus occasional hangs injected into the tool,
// a full tuning run on the Target2 benchmark (Batch > 1, concurrent workers)
// must complete and land a hyper-volume error within noise of the fault-free
// run.
func TestChaosTuningWithinNoiseOnTarget2(t *testing.T) {
	if testing.Short() {
		t.Skip("Target2 generation is slow; skipped under -short")
	}
	ds := target2(t)
	metrics := []pdtool.Metric{pdtool.Power, pdtool.Delay}
	pool := ds.UnitX()
	objVecs := ds.Objectives(metrics)

	run := func(wrap func(core.Evaluator) core.Evaluator) *core.Result {
		t.Helper()
		var eval core.Evaluator = func(i int) ([]float64, error) { return objVecs[i], nil }
		if wrap != nil {
			eval = wrap(eval)
		}
		tn, err := core.New(pool, eval, core.Options{
			NumObjectives: 2,
			InitTarget:    15,
			MaxIter:       50,
			Batch:         3,
			Workers:       3,
			Rng:           rand.New(rand.NewSource(77)),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tn.Run()
		if err != nil {
			t.Fatalf("tuning run failed: %v", err)
		}
		return res
	}

	clean := run(nil)
	cleanHV := hvOf(objVecs, clean.ParetoIdx)

	inj, err := chaos.New(chaos.Options{
		Seed:    99,
		Rates:   chaos.Rates{Transient: 0.22, Hang: 0.03},
		HangFor: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	flog := &robust.FailureLog{}
	faulty := run(func(eval core.Evaluator) core.Evaluator {
		re, err := robust.Wrap(nil, inj.Wrap(eval), robust.Options{
			Timeout:       25 * time.Millisecond,
			MaxRetries:    5,
			Backoff:       time.Millisecond,
			Policy:        robust.PolicySkip,
			NumObjectives: 2,
			Sleep:         func(time.Duration) {}, // keep the test fast
			Log:           flog,
		})
		if err != nil {
			t.Fatal(err)
		}
		return re.Evaluate
	})

	c := inj.Counts()
	if c.Transient == 0 {
		t.Error("no transient failures injected — the test is not exercising retries")
	}
	if c.Hang == 0 {
		t.Error("no hangs injected — the test is not exercising the deadline")
	}
	if faulty.Runs == 0 || len(faulty.ParetoIdx) == 0 {
		t.Fatalf("faulty run produced no result: %d runs, %d Pareto", faulty.Runs, len(faulty.ParetoIdx))
	}
	faultyHV := hvOf(objVecs, faulty.ParetoIdx)
	// The chaotic run explores a slightly different trajectory (retries and
	// the odd skipped candidate), so exact equality is not expected — but the
	// quality must stay within run-to-run noise of the fault-free result.
	const noise = 0.08
	if faultyHV > cleanHV+noise {
		t.Errorf("HV error under chaos = %.4f, fault-free = %.4f: degradation beyond noise (%.2f)",
			faultyHV, cleanHV, noise)
	}
	t.Logf("fault-free HV error %.4f; chaos HV error %.4f; injections %+v; failures: %s",
		cleanHV, faultyHV, c, flog.Summary())
}

// TestCheckpointCrashResumeIdenticalPareto kills a checkpointed run partway
// through and resumes it in a "fresh process": the resumed run must reach the
// exact Pareto set of an uninterrupted run, replaying persisted observations
// instead of re-invoking the tool.
func TestCheckpointCrashResumeIdenticalPareto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, dim = 100, 4
	pool := make([][]float64, n)
	for i := range pool {
		pool[i] = make([]float64, dim)
		for d := range pool[i] {
			pool[i][d] = rng.Float64()
		}
	}
	obj := func(i int) []float64 {
		x := pool[i]
		return []float64{
			x[0]*x[0] + 0.4*x[1] + 0.1*x[2],
			(1-x[0])*(1-x[0]) + 0.3*x[3] + 0.1*x[1],
		}
	}
	newTuner := func(eval core.Evaluator) *core.Tuner {
		t.Helper()
		tn, err := core.New(pool, eval, core.Options{
			NumObjectives: 2,
			InitTarget:    10,
			MaxIter:       30,
			Rng:           rand.New(rand.NewSource(6)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return tn
	}

	// Reference: uninterrupted run.
	ref, err := newTuner(func(i int) ([]float64, error) { return obj(i), nil }).Run()
	if err != nil {
		t.Fatal(err)
	}

	// Crash run: the tool dies for good after 18 calls; the checkpoint has
	// persisted everything observed up to that point.
	path := filepath.Join(t.TempDir(), "run.ckpt.json")
	ckpt := robust.NewCheckpoint(path)
	boom := errors.New("simulated crash: tool host went down")
	calls := 0
	crashEval := ckpt.Wrap(func(i int) ([]float64, error) {
		if calls++; calls > 18 {
			return nil, boom
		}
		return obj(i), nil
	})
	if _, err := newTuner(crashEval).Run(); !errors.Is(err, boom) {
		t.Fatalf("crash run err = %v, want the simulated crash", err)
	}

	// Resume in a "fresh process": reload the file, same seed, count how many
	// times the tool is actually re-invoked.
	resumed, err := robust.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Len() == 0 {
		t.Fatal("checkpoint file holds no observations")
	}
	fresh := 0
	res, err := newTuner(resumed.Wrap(func(i int) ([]float64, error) {
		fresh++
		return obj(i), nil
	})).Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(res.ParetoIdx) != len(ref.ParetoIdx) {
		t.Fatalf("resumed Pareto set size %d, reference %d", len(res.ParetoIdx), len(ref.ParetoIdx))
	}
	for k := range ref.ParetoIdx {
		if res.ParetoIdx[k] != ref.ParetoIdx[k] {
			t.Fatalf("resumed ParetoIdx %v differs from reference %v", res.ParetoIdx, ref.ParetoIdx)
		}
	}
	if fresh >= ref.Runs {
		t.Errorf("resume re-invoked the tool %d times for a %d-run trajectory: nothing was replayed", fresh, ref.Runs)
	}
	hits, _ := resumed.Stats()
	if hits != resumed.Len() && hits == 0 {
		t.Errorf("no checkpoint hits on resume (hits=%d, stored=%d)", hits, resumed.Len())
	}
	t.Logf("reference %d tool runs; resume replayed %d from checkpoint, %d fresh", ref.Runs, hits, fresh)
}

// TestRunMethodOptsFullFaultStack drives the harness entry point with the
// complete middleware chain — chaos injection under a checkpoint cache under
// the resilience layer — on the fast mini scenario.
func TestRunMethodOptsFullFaultStack(t *testing.T) {
	s := miniScenario(t)
	space := Spaces()[0] // Area-Delay
	inj, err := chaos.New(chaos.Options{Seed: 41, Rates: chaos.Rates{Transient: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := robust.NewCheckpoint("") // in-memory
	wrap := func(eval core.Evaluator) core.Evaluator {
		re, err := robust.Wrap(nil, ckpt.Wrap(inj.Wrap(eval)), robust.Options{
			MaxRetries:    4,
			Backoff:       time.Millisecond,
			Policy:        robust.PolicySkip,
			NumObjectives: len(space.Metrics),
			Sleep:         func(time.Duration) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		return re.Evaluate
	}
	out, err := RunMethodOpts(PPATuner, s, space, 9, RunOpts{Wrap: wrap})
	if err != nil {
		t.Fatalf("fault-stack run failed: %v", err)
	}
	if len(out.ParetoIdx) == 0 || out.Runs == 0 {
		t.Fatalf("degenerate outcome: %+v", out)
	}
	hv, adrs := Score(s, space, out)
	if hv < 0 || hv > 1 || adrs < 0 {
		t.Errorf("scores out of range: hv=%g adrs=%g", hv, adrs)
	}
	if inj.Counts().Transient == 0 {
		t.Error("chaos injected nothing at a 25% rate")
	}
	if ckpt.Len() == 0 {
		t.Error("checkpoint cached nothing")
	}
}
