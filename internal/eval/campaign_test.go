package eval

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"ppatuner/internal/core"
	"ppatuner/internal/robust"
)

// The campaign's parallelism is purely a wall-clock knob: any Workers value
// must assemble a byte-identical table.
func TestCampaignWorkersBitIdentical(t *testing.T) {
	s := miniScenario(t)
	build := func(workers int) string {
		t.Helper()
		c := &Campaign{
			Scenario: s,
			Seeds:    []int64{1, 2},
			Spaces:   Spaces()[1:2], // Power-Delay
			Workers:  workers,
		}
		tbl, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tbl.Format()
	}
	serial := build(1)
	for _, w := range []int{3, 8} {
		if got := build(w); got != serial {
			t.Fatalf("workers=%d table differs from serial:\n%s\n----\n%s", w, got, serial)
		}
	}
}

// Killing a campaign mid-PPATuner-run and resuming from the checkpoint must
// reproduce the uninterrupted tables byte-for-byte, with the interrupted
// unit's paid-for observations replayed rather than re-bought and completed
// cells never re-executed.
func TestCampaignCrashResumeEquivalence(t *testing.T) {
	s := miniScenario(t)
	seeds := []int64{1}
	spaces := Spaces()[1:2]
	methods := []Method{PPATuner}

	// Uninterrupted reference, no checkpoint at all.
	ref := &Campaign{Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods}
	refTbl, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := refTbl.Format()

	// Crash after 10 fresh tool calls — past the 8 warm-up evaluations, so
	// the checkpoint holds genuine mid-run state.
	path := filepath.Join(t.TempDir(), "campaign.json")
	ck, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := errors.New("simulated crash")
	calls := 0
	crashing := &Campaign{
		Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods,
		Checkpoint: ck,
		WrapUnit: func(u Unit, ev core.Evaluator) core.Evaluator {
			return func(i int) ([]float64, error) {
				if calls >= 10 {
					return nil, fmt.Errorf("tool down: %w", crashAt)
				}
				calls++
				return ev(i)
			}
		},
	}
	if _, err := crashing.Run(); !errors.Is(err, crashAt) {
		t.Fatalf("crashing campaign returned %v, want the simulated crash", err)
	}
	if calls != 10 {
		t.Fatalf("evaluator saw %d calls before the crash, want 10", calls)
	}

	// The file on disk carries the unit's start RNG state and observations.
	re, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	key := crashing.UnitKey(Unit{SpaceIdx: 0, Method: PPATuner, Seed: seeds[0]})
	state, iters := re.PartialRandState(key)
	if state == nil {
		t.Fatal("no RNG state persisted for the interrupted unit")
	}
	if iters != 10 {
		t.Fatalf("checkpoint recorded %d fresh evaluations, want 10", iters)
	}

	// Resume: same campaign, fresh process (fresh checkpoint load), no
	// fault. The replayed observations must cover everything paid for, the
	// fresh calls must start where the crashed run stopped, and the table
	// must match the uninterrupted reference exactly.
	freshCalls := 0
	resumed := &Campaign{
		Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods,
		Checkpoint: re,
		WrapUnit: func(u Unit, ev core.Evaluator) core.Evaluator {
			return func(i int) ([]float64, error) {
				freshCalls++
				return ev(i)
			}
		},
	}
	tbl, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Format(); got != want {
		t.Fatalf("resumed table differs from uninterrupted run:\n%s\n----\n%s", got, want)
	}
	replayed, fresh := re.Stats()
	if replayed != 10 {
		t.Errorf("resume replayed %d observations, want 10", replayed)
	}
	if fresh != freshCalls {
		t.Errorf("checkpoint counted %d fresh evaluations, evaluator saw %d", fresh, freshCalls)
	}
	if freshCalls == 0 {
		t.Error("resume made no fresh calls; the unit cannot have finished at call 10")
	}

	// Re-running against the now-complete checkpoint must not touch the
	// evaluator at all: completed cells are skipped, not replayed.
	finished, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	rerunCalls := 0
	rerun := &Campaign{
		Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods,
		Checkpoint: finished,
		WrapUnit: func(u Unit, ev core.Evaluator) core.Evaluator {
			return func(i int) ([]float64, error) {
				rerunCalls++
				return ev(i)
			}
		},
	}
	tbl2, err := rerun.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rerunCalls != 0 {
		t.Errorf("full-checkpoint rerun made %d evaluator calls, want 0", rerunCalls)
	}
	if got := tbl2.Format(); got != want {
		t.Fatalf("full-checkpoint rerun differs:\n%s\n----\n%s", got, want)
	}
}

// A checkpointed campaign and a plain one produce identical tables: the
// checkpoint changes durability, never numbers.
func TestCampaignCheckpointIsTransparent(t *testing.T) {
	s := miniScenario(t)
	seeds := []int64{2}
	spaces := Spaces()[0:1]
	methods := []Method{MLCAD19, PPATuner}

	plain := &Campaign{Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods}
	ptbl, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaign.json")
	ck, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := &Campaign{Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods, Checkpoint: ck}
	ctbl, err := ckpt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ptbl.Format() != ctbl.Format() {
		t.Fatalf("checkpointed table differs from plain:\n%s\n----\n%s", ctbl.Format(), ptbl.Format())
	}
	if ck.Cells() != len(seeds)*len(spaces)*len(methods) {
		t.Errorf("checkpoint holds %d cells, want %d", ck.Cells(), len(seeds)*len(spaces)*len(methods))
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := (&Campaign{Seeds: []int64{1}}).Run(); err == nil {
		t.Error("campaign without scenario accepted")
	}
	if _, err := (&Campaign{Scenario: miniScenario(t)}).Run(); err == nil {
		t.Error("campaign without seeds accepted")
	}
}

// Units enumerates space-major, then method, then seed — the order Run
// indexes results by and UnitKey is stable under.
func TestCampaignUnitsOrderAndKeys(t *testing.T) {
	c := &Campaign{
		Scenario: miniScenario(t),
		Seeds:    []int64{1, 2},
		Spaces:   Spaces()[0:2],
		Methods:  []Method{TCAD19, PPATuner},
	}
	units := c.Units()
	if len(units) != 8 {
		t.Fatalf("%d units, want 8", len(units))
	}
	first, last := units[0], units[7]
	if first.SpaceIdx != 0 || first.Method != TCAD19 || first.Seed != 1 {
		t.Errorf("first unit = %+v", first)
	}
	if last.SpaceIdx != 1 || last.Method != PPATuner || last.Seed != 2 {
		t.Errorf("last unit = %+v", last)
	}
	seen := map[string]bool{}
	for _, u := range units {
		key := c.UnitKey(u)
		if seen[key] {
			t.Fatalf("duplicate unit key %q", key)
		}
		seen[key] = true
	}
}
