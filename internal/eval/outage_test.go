package eval

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ppatuner/internal/clock"
	"ppatuner/internal/core"
	"ppatuner/internal/pdtool"
	"ppatuner/internal/pdtool/chaos"
	"ppatuner/internal/robust"
)

// outageStack wires the campaign-wide middleware for an outage scenario:
// chaos injection (with a downtime schedule on the fake clock) under the
// resilience layer sharing the campaign's circuit breaker.
func outageStack(inj *chaos.Injector, b *robust.Breaker, fc clock.Clock, flog *robust.FailureLog) func(core.Evaluator) core.Evaluator {
	return func(eval core.Evaluator) core.Evaluator {
		re, err := robust.Wrap(nil, inj.Wrap(eval), robust.Options{
			MaxRetries: 3,
			Backoff:    time.Millisecond,
			Policy:     robust.PolicySkip,
			Clock:      fc,
			Sleep:      func(time.Duration) {},
			Breaker:    b,
			Log:        flog,
		})
		if err != nil {
			panic(err) // option error; campaign workers run off the test goroutine
		}
		return re.Evaluate
	}
}

// A campaign driven through a licence-server downtime window must trip the
// breaker, park and requeue the affected units, and still produce a table
// and a final checkpoint file byte-identical to the chaos-free run: an
// outage stretches (virtual) wall-clock time, never results.
func TestCampaignOutageParkRequeueBitIdentical(t *testing.T) {
	s := miniScenario(t)
	seeds := []int64{1}
	spaces := Spaces()[1:2] // Power-Delay
	methods := []Method{MLCAD19, PPATuner}

	// Fault-free checkpointed reference.
	refPath := filepath.Join(t.TempDir(), "ref.json")
	refCk, err := robust.LoadCampaignCheckpoint(refPath)
	if err != nil {
		t.Fatal(err)
	}
	var refCalls atomic.Int64
	ref := &Campaign{
		Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods,
		Checkpoint: refCk,
		WrapUnit: func(u Unit, ev core.Evaluator) core.Evaluator {
			return func(i int) ([]float64, error) { refCalls.Add(1); return ev(i) }
		},
	}
	refTbl, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := refTbl.Format()
	wantBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	// Outage run: the licence server is down for the first 30 virtual
	// seconds — every unit's opening evaluations fail together.
	fc := clock.NewFake(time.Unix(0, 0))
	inj, err := chaos.New(chaos.Options{
		Outage: chaos.Schedule{Windows: []chaos.Window{{Start: 0, End: 30 * time.Second}}},
		Clock:  fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	flog := &robust.FailureLog{}
	b := robust.NewBreaker(robust.BreakerOptions{
		Threshold:  3,
		RetryAfter: time.Second,
		MaxOutage:  10 * time.Minute,
		Park:       true,
		Clock:      fc,
		Log:        flog,
	})
	path := filepath.Join(t.TempDir(), "outage.json")
	ck, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	c := &Campaign{
		Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods,
		Workers:    2,
		Checkpoint: ck,
		Breaker:    b,
		Opts:       RunOpts{Wrap: outageStack(inj, b, fc, flog)},
		WrapUnit: func(u Unit, ev core.Evaluator) core.Evaluator {
			return func(i int) ([]float64, error) { calls.Add(1); return ev(i) }
		},
	}
	start := time.Now()
	tbl, err := c.Run()
	if err != nil {
		t.Fatalf("outage campaign failed: %v", err)
	}
	if real := time.Since(start); real > 30*time.Second {
		t.Errorf("outage campaign took %v of real time; the fake clock should absorb the downtime", real)
	}

	if got := tbl.Format(); got != want {
		t.Fatalf("outage table differs from fault-free run:\n%s\n----\n%s", got, want)
	}
	gotBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Errorf("final checkpoint bytes differ from the fault-free run:\n%s\n----\n%s", gotBytes, wantBytes)
	}
	if calls.Load() != refCalls.Load() {
		t.Errorf("outage run made %d fresh tool calls, fault-free made %d — the outage must not buy or lose observations",
			calls.Load(), refCalls.Load())
	}
	if inj.Counts().Outage == 0 {
		t.Error("no outage faults injected — the window never fired")
	}
	if b.Trips() == 0 {
		t.Error("breaker never tripped")
	}
	if b.State() != robust.BreakerClosed {
		t.Errorf("breaker left %v, want closed", b.State())
	}
	if flog.Outages() == 0 || flog.BreakerTransitions() == 0 {
		t.Errorf("failure log missing outage machinery: %s", flog.Summary())
	}
	if len(ck.Parked()) != 0 {
		t.Errorf("units still parked after completion: %v", ck.Parked())
	}
	t.Logf("outage run: %d injected outages, %d trips, log: %s", inj.Counts().Outage, b.Trips(), flog.Summary())
}

// A campaign killed mid-outage (the outage outlives MaxOutage, so the
// process aborts with parked marks and partial state on disk — the moral
// equivalent of a SIGKILL inside the window) must resume after the outage
// lifts into exactly the fault-free table and checkpoint bytes.
func TestCampaignKilledDuringOutageResumesIdentical(t *testing.T) {
	s := miniScenario(t)
	seeds := []int64{2}
	spaces := Spaces()[0:1] // Area-Delay
	methods := []Method{PPATuner}

	// Fault-free checkpointed reference.
	refPath := filepath.Join(t.TempDir(), "ref.json")
	refCk, err := robust.LoadCampaignCheckpoint(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refCalls := 0
	ref := &Campaign{
		Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods,
		Checkpoint: refCk,
		WrapUnit: func(u Unit, ev core.Evaluator) core.Evaluator {
			return func(i int) ([]float64, error) { refCalls++; return ev(i) }
		},
	}
	refTbl, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := refTbl.Format()
	wantBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: an hour-long outage against a 30-second MaxOutage. The
	// campaign parks its unit, waits, gives up at the deadline and dies
	// with the parked mark persisted.
	fc := clock.NewFake(time.Unix(0, 0))
	inj, err := chaos.New(chaos.Options{
		Outage: chaos.Schedule{Windows: []chaos.Window{{Start: 0, End: time.Hour}}},
		Clock:  fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := robust.NewBreaker(robust.BreakerOptions{
		Threshold:  1,
		RetryAfter: time.Second,
		MaxOutage:  30 * time.Second,
		Park:       true,
		Clock:      fc,
	})
	path := filepath.Join(t.TempDir(), "campaign.json")
	ck, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	killedCalls := 0
	killed := &Campaign{
		Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods,
		Checkpoint: ck,
		Breaker:    b,
		Opts:       RunOpts{Wrap: outageStack(inj, b, fc, nil)},
		WrapUnit: func(u Unit, ev core.Evaluator) core.Evaluator {
			return func(i int) ([]float64, error) { killedCalls++; return ev(i) }
		},
	}
	if _, err := killed.Run(); !errors.Is(err, robust.ErrOutageDeadline) {
		t.Fatalf("killed campaign returned %v, want ErrOutageDeadline", err)
	}
	if killedCalls != 0 {
		t.Fatalf("the tool saw %d calls through an hour-long outage, want 0", killedCalls)
	}

	// The file on disk records why the unit is incomplete.
	re, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if parked := re.Parked(); len(parked) != 1 {
		t.Fatalf("checkpoint parked marks = %v, want exactly the interrupted unit", parked)
	}

	// Resume in a "fresh process" after the licence server came back: no
	// chaos, fresh breaker. The parked unit re-runs like any incomplete
	// unit and the campaign finishes identically to fault-free.
	freshCalls := 0
	resumed := &Campaign{
		Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods,
		Checkpoint: re,
		WrapUnit: func(u Unit, ev core.Evaluator) core.Evaluator {
			return func(i int) ([]float64, error) { freshCalls++; return ev(i) }
		},
	}
	tbl, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Format(); got != want {
		t.Fatalf("resumed table differs from fault-free run:\n%s\n----\n%s", got, want)
	}
	if freshCalls != refCalls {
		t.Errorf("resume made %d fresh calls, fault-free made %d", freshCalls, refCalls)
	}
	gotBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Errorf("final checkpoint bytes differ from the fault-free run (parked marks must clear on completion)")
	}
}

// TestTarget2OutageCampaignBitIdentical is the acceptance run on the
// paper's Target2 benchmark: a PPATuner campaign with a downtime window
// injected mid-flight — breaker trips, the cell parks and requeues — must
// reproduce the chaos-disabled observations, table cells and checkpoint
// byte-for-byte.
func TestTarget2OutageCampaignBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("Target2 generation is slow; skipped under -short")
	}
	ds := target2(t)
	s := &Scenario{
		Name: "Target2", Source: ds, Target: ds,
		SourceN: 60, InitFrac: 0.02,
		Budgets: map[Method]int{PPATuner: 40},
	}
	seeds := []int64{1}
	spaces := []ObjSpace{{Name: "Power-Delay", Metrics: []pdtool.Metric{pdtool.Power, pdtool.Delay}}}
	methods := []Method{PPATuner}

	refPath := filepath.Join(t.TempDir(), "ref.json")
	refCk, err := robust.LoadCampaignCheckpoint(refPath)
	if err != nil {
		t.Fatal(err)
	}
	ref := &Campaign{Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods, Checkpoint: refCk}
	refTbl, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := refTbl.Format()
	wantBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	fc := clock.NewFake(time.Unix(0, 0))
	inj, err := chaos.New(chaos.Options{
		Outage: chaos.Schedule{Windows: []chaos.Window{{Start: 0, End: time.Minute}}},
		Clock:  fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	flog := &robust.FailureLog{}
	b := robust.NewBreaker(robust.BreakerOptions{
		Threshold:  1,
		RetryAfter: 2 * time.Second,
		MaxOutage:  10 * time.Minute,
		Park:       true,
		Clock:      fc,
		Log:        flog,
	})
	path := filepath.Join(t.TempDir(), "outage.json")
	ck, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	c := &Campaign{
		Scenario: s, Seeds: seeds, Spaces: spaces, Methods: methods,
		Checkpoint: ck,
		Breaker:    b,
		Opts:       RunOpts{Wrap: outageStack(inj, b, fc, flog)},
	}
	tbl, err := c.Run()
	if err != nil {
		t.Fatalf("Target2 outage campaign failed: %v", err)
	}
	if got := tbl.Format(); got != want {
		t.Fatalf("Target2 outage table differs from chaos-disabled:\n%s\n----\n%s", got, want)
	}
	gotBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Error("Target2 final checkpoint bytes differ from the chaos-disabled run")
	}
	if b.Trips() == 0 || inj.Counts().Outage == 0 {
		t.Errorf("outage machinery idle: %d trips, counts %+v", b.Trips(), inj.Counts())
	}
	t.Logf("Target2 outage acceptance: %d injected outages, %d trips, log: %s",
		inj.Counts().Outage, b.Trips(), flog.Summary())
}
