package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"ppatuner/internal/core"
)

// Ablation runs PPATuner on a scenario/objective-space with one option
// mutated, for the design-choice studies DESIGN.md calls out (transfer
// on/off, δ, τ, source size, batch). It is the programmatic counterpart of
// the BenchmarkAblation* benchmarks.
func Ablation(s *Scenario, space ObjSpace, seed int64, mutate func(*core.Options)) (Row, error) {
	rng := rand.New(rand.NewSource(seed))
	pool := s.Target.UnitX()
	objVecs := s.Target.Objectives(space.Metrics)
	ev := func(i int) ([]float64, error) { return objVecs[i], nil }
	sx, sy := sourceSlice(s, space.Metrics, rng)
	init := int(s.InitFrac * float64(s.Target.N()))
	if init < 5 {
		init = 5
	}
	opt := core.Options{
		NumObjectives: len(space.Metrics),
		SourceX:       sx,
		SourceY:       sy,
		InitTarget:    init,
		MaxIter:       s.Budgets[PPATuner] - init,
		DeltaFrac:     0.02,
		Tau:           9,
		ARD:           true,
		FitMaxEvals:   400,
		Rng:           rng,
	}
	mutate(&opt)
	tn, err := core.New(pool, ev, opt)
	if err != nil {
		return Row{}, err
	}
	res, err := tn.Run()
	if err != nil {
		return Row{}, err
	}
	hv, adrs := Score(s, space, &Outcome{ParetoIdx: res.ParetoIdx, Runs: res.Runs})
	return Row{Method: PPATuner, HV: hv, ADRS: adrs, Runs: float64(res.Runs)}, nil
}

// AblationReport runs a named set of option variants over seeds and formats
// the comparison.
func AblationReport(s *Scenario, space ObjSpace, seeds []int64, variants []struct {
	Name   string
	Mutate func(*core.Options)
}) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation on %s / %s (avg over %d seeds)\n", s.Name, space.Name, len(seeds))
	fmt.Fprintf(&b, "%-16s %8s %8s %8s\n", "variant", "HV", "ADRS", "Runs")
	for _, v := range variants {
		var row Row
		for _, seed := range seeds {
			r, err := Ablation(s, space, seed, v.Mutate)
			if err != nil {
				return "", fmt.Errorf("eval: ablation %s: %w", v.Name, err)
			}
			row.HV += r.HV
			row.ADRS += r.ADRS
			row.Runs += r.Runs
		}
		n := float64(len(seeds))
		fmt.Fprintf(&b, "%-16s %8.4f %8.4f %8.1f\n", v.Name, row.HV/n, row.ADRS/n, row.Runs/n)
	}
	return b.String(), nil
}
