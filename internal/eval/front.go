package eval

import (
	"sort"

	"ppatuner/internal/pareto"
)

// GoldenFront returns the target benchmark's golden Pareto front in the
// given objective space, sorted lexicographically by objective vector — the
// reference series a tuning job's learned fronts are judged against. The
// result is a pure function of the scenario and space, so serving layers
// may compute it once per job and persist it.
func GoldenFront(s *Scenario, space ObjSpace) [][]float64 {
	return sortFront(pareto.FrontPoints(s.Target.Objectives(space.Metrics)))
}

// OutcomeFront maps one run's predicted Pareto set to its objective
// vectors, dominance-filters it (the same filtering Score applies before
// measuring HV error and ADRS), and sorts it lexicographically — the
// stable, comparable wire form of a unit's learned front.
func OutcomeFront(s *Scenario, space ObjSpace, out *Outcome) [][]float64 {
	objVecs := s.Target.Objectives(space.Metrics)
	approx := make([][]float64, 0, len(out.ParetoIdx))
	for _, i := range out.ParetoIdx {
		approx = append(approx, objVecs[i])
	}
	return sortFront(pareto.FrontPoints(approx))
}

// sortFront orders front points lexicographically by objective values, so
// the serialised series is independent of pool index order.
func sortFront(pts [][]float64) [][]float64 {
	sort.Slice(pts, func(a, b int) bool {
		for k := range pts[a] {
			if pts[a][k] != pts[b][k] {
				return pts[a][k] < pts[b][k]
			}
		}
		return false
	})
	return pts
}
