// Package eval is the experiment harness that regenerates the paper's
// evaluation: it wires the offline benchmarks into every tuner (PPATuner and
// the four prior-art baselines), measures hyper-volume error (Eq. 2), ADRS
// (Eq. 3) and tool runs, and formats Table 2, Table 3 and the Figure 3
// Pareto-front series.
package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"ppatuner/internal/baselines/fist"
	"ppatuner/internal/baselines/lcbbo"
	"ppatuner/internal/baselines/pal"
	"ppatuner/internal/baselines/recsys"
	"ppatuner/internal/benchdata"
	"ppatuner/internal/core"
	"ppatuner/internal/gp"
	"ppatuner/internal/pareto"
	"ppatuner/internal/pdtool"
	"ppatuner/internal/sample"
)

// ObjSpace is one of the paper's objective spaces.
type ObjSpace struct {
	Name    string
	Metrics []pdtool.Metric
}

// Spaces lists the three QoR spaces of Tables 2 and 3.
func Spaces() []ObjSpace {
	return []ObjSpace{
		{Name: "Area-Delay", Metrics: []pdtool.Metric{pdtool.Area, pdtool.Delay}},
		{Name: "Power-Delay", Metrics: []pdtool.Metric{pdtool.Power, pdtool.Delay}},
		{Name: "Area-Power-Delay", Metrics: []pdtool.Metric{pdtool.Area, pdtool.Power, pdtool.Delay}},
	}
}

// Method identifies a tuner.
type Method string

// The five tuners of the comparison.
const (
	PPATuner Method = "PPATuner"
	TCAD19   Method = "TCAD'19"
	MLCAD19  Method = "MLCAD'19"
	DAC19    Method = "DAC'19"
	ASPDAC20 Method = "ASPDAC'20"
)

// Methods returns the comparison order used in the paper's tables.
func Methods() []Method {
	return []Method{TCAD19, MLCAD19, DAC19, ASPDAC20, PPATuner}
}

// Scenario couples a source and a target benchmark (the paper's Scenario
// One: Source1→Target1; Scenario Two: Source2→Target2).
type Scenario struct {
	Name           string
	Source, Target *benchdata.Dataset
	// SourceN is how many historical points feed transfer (paper: 200).
	SourceN int
	// InitFrac is the target-task initialisation fraction (paper: ≤5%).
	InitFrac float64
	// Budgets assigns fixed tool-run budgets to the fixed-budget baselines
	// and iteration caps to the self-stopping ones.
	Budgets map[Method]int
}

// The standard scenarios' stable names: checkpoint keys, wire-form unit
// specs and the StandardScenario resolver all spell them identically.
const (
	ScenarioOneName = "Scenario One (Source1 -> Target1)"
	ScenarioTwoName = "Scenario Two (Source2 -> Target2)"
)

// ScenarioOne builds Source1→Target1 with the paper's budgets.
func ScenarioOne() (*Scenario, error) {
	src, err := benchdata.Source1()
	if err != nil {
		return nil, err
	}
	tgt, err := benchdata.Target1()
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name: ScenarioOneName, Source: src, Target: tgt,
		SourceN: 200, InitFrac: 0.01,
		Budgets: map[Method]int{TCAD19: 510, MLCAD19: 400, DAC19: 600, ASPDAC20: 400, PPATuner: 260},
	}, nil
}

// ScenarioTwo builds Source2→Target2 with the paper's budgets.
func ScenarioTwo() (*Scenario, error) {
	src, err := benchdata.Source2()
	if err != nil {
		return nil, err
	}
	tgt, err := benchdata.Target2()
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name: ScenarioTwoName, Source: src, Target: tgt,
		SourceN: 200, InitFrac: 0.02,
		Budgets: map[Method]int{TCAD19: 95, MLCAD19: 70, DAC19: 130, ASPDAC20: 70, PPATuner: 65},
	}, nil
}

// Row is one table cell: seed-averaged metrics plus their run-to-run
// noise.
type Row struct {
	Method Method
	HV     float64
	ADRS   float64
	Runs   float64
	// HVStd/ADRSStd/RunsStd are the sample standard deviations over the
	// seeds (0 when a single seed was run) — the noise bars behind the
	// means above.
	HVStd   float64
	ADRSStd float64
	RunsStd float64
}

// Outcome is a single tuning run's result.
type Outcome struct {
	ParetoIdx []int
	Runs      int
}

// sourceSlice draws the scenario's historical source data, re-encoded into
// the target space's normalised coordinates (the source and target tasks
// tune the same physical knobs over different ranges, so transfer must align
// them by physical value, not by each space's own unit coordinates).
func sourceSlice(s *Scenario, objs []pdtool.Metric, rng *rand.Rand) (x [][]float64, y [][]float64) {
	idx := sample.Indices(rng, s.Source.N(), s.SourceN)
	y = make([][]float64, len(objs))
	for _, i := range idx {
		p := s.Source.Points[i]
		x = append(x, p.Config.EncodeInto(s.Target.Space))
		for k, m := range objs {
			y[k] = append(y[k], p.QoR.Get(m))
		}
	}
	return x, y
}

// RunOpts carries optional harness knobs for RunMethodOpts.
type RunOpts struct {
	// Wrap, when non-nil, wraps the pool evaluator before it reaches the
	// tuner — the hook for fault-tolerance middleware (robust.Evaluator,
	// checkpoint caches, chaos injection).
	Wrap func(core.Evaluator) core.Evaluator
	// Workers bounds the PPATuner engine's concurrency (surrogate fits,
	// region sweeps, batched evaluator calls); see core.Options.Workers.
	// 0 keeps the engine's default. Results are identical for any value —
	// the parallel sections are deterministic — so this is purely a
	// wall-clock knob.
	Workers int
	// Src, when non-nil, replaces the default seed-derived generator
	// (rand.New(rand.NewSource(seed))) as the run's random source. Sources
	// with serialisable state (core.PCGSource) make the RNG state
	// checkpointable, so a resumed run restores the exact generator state
	// instead of re-deriving it from the seed. nil keeps legacy callers
	// bit-for-bit unchanged.
	Src rand.Source
	// GP selects the PPATuner surrogate implementation (zero value: exact GP;
	// see gp.ParseSpec for the -gp command-line syntax). Only the PPATuner
	// arm consumes it — the baselines have no surrogate to swap.
	GP gp.Spec
}

// RunMethod executes one tuner on one scenario and objective space.
func RunMethod(m Method, s *Scenario, space ObjSpace, seed int64) (*Outcome, error) {
	return RunMethodOpts(m, s, space, seed, RunOpts{})
}

// RunMethodOpts is RunMethod with harness options.
func RunMethodOpts(m Method, s *Scenario, space ObjSpace, seed int64, opts RunOpts) (*Outcome, error) {
	var rng *rand.Rand
	if opts.Src != nil {
		rng = rand.New(opts.Src)
	} else {
		rng = rand.New(rand.NewSource(seed))
	}
	pool := s.Target.UnitX()
	objVecs := s.Target.Objectives(space.Metrics)
	var eval core.Evaluator = func(i int) ([]float64, error) { return objVecs[i], nil }
	if opts.Wrap != nil {
		eval = opts.Wrap(eval)
	}
	init := int(s.InitFrac * float64(s.Target.N()))
	if init < 5 {
		init = 5
	}
	budget := s.Budgets[m]

	switch m {
	case PPATuner:
		sx, sy := sourceSlice(s, space.Metrics, rng)
		tn, err := core.New(pool, eval, core.Options{
			NumObjectives: len(space.Metrics),
			SourceX:       sx,
			SourceY:       sy,
			InitTarget:    init,
			MaxIter:       budget - init,
			// Harness settings: τ = 4 (±2σ regions), δ at the default 2% of
			// range (the paper calls δ the user's precision controller), ARD
			// lengthscales so the surrogate can discover which of the 9–12
			// knobs interact.
			DeltaFrac:   0.02,
			Tau:         9,
			ARD:         true,
			FitMaxEvals: 400,
			GP:          opts.GP,
			Workers:     opts.Workers,
			Rng:         rng,
			Src:         opts.Src,
		})
		if err != nil {
			return nil, err
		}
		res, err := tn.Run()
		if err != nil {
			return nil, err
		}
		return &Outcome{ParetoIdx: res.ParetoIdx, Runs: res.Runs}, nil
	case TCAD19:
		res, err := pal.Run(pool, eval, pal.Options{
			NumObjectives: len(space.Metrics),
			InitTarget:    init,
			MaxIter:       budget - init,
			Rng:           rng,
		})
		if err != nil {
			return nil, err
		}
		return &Outcome{ParetoIdx: res.ParetoIdx, Runs: res.Runs}, nil
	case MLCAD19:
		res, err := lcbbo.Run(pool, eval, lcbbo.Options{
			NumObjectives: len(space.Metrics),
			Budget:        budget,
			Rng:           rng,
		})
		if err != nil {
			return nil, err
		}
		return &Outcome{ParetoIdx: res.ParetoIdx, Runs: res.Runs}, nil
	case DAC19:
		res, err := recsys.Run(pool, eval, recsys.Options{
			NumObjectives: len(space.Metrics),
			Budget:        budget,
			Rng:           rng,
		})
		if err != nil {
			return nil, err
		}
		return &Outcome{ParetoIdx: res.ParetoIdx, Runs: res.Runs}, nil
	case ASPDAC20:
		sx, sy := sourceSlice(s, space.Metrics, rng)
		res, err := fist.Run(pool, eval, fist.Options{
			NumObjectives: len(space.Metrics),
			Budget:        budget,
			SourceX:       sx,
			SourceY:       sy,
			Rng:           rng,
		})
		if err != nil {
			return nil, err
		}
		return &Outcome{ParetoIdx: res.ParetoIdx, Runs: res.Runs}, nil
	default:
		return nil, fmt.Errorf("eval: unknown method %q", m)
	}
}

// Score measures an outcome against the target benchmark's golden front.
func Score(s *Scenario, space ObjSpace, out *Outcome) (hvErr, adrs float64) {
	objVecs := s.Target.Objectives(space.Metrics)
	golden := pareto.FrontPoints(objVecs)
	ref := pareto.ReferencePoint(objVecs, 0.10)
	approx := make([][]float64, 0, len(out.ParetoIdx))
	for _, i := range out.ParetoIdx {
		approx = append(approx, objVecs[i])
	}
	// The paper feeds predicted Pareto configurations back through the tool;
	// equivalently we score the golden vectors of the predicted set, after
	// dominance filtering.
	approx = pareto.FrontPoints(approx)
	return pareto.HVError(golden, approx, ref), pareto.ADRS(golden, approx)
}

// Cell runs a method over several seeds and aggregates the metrics (mean
// plus sample standard deviation). It is a single-method, single-space
// Campaign, so the per-seed results — and the PCG random streams behind
// them — are identical to the matching cells of a full table campaign.
func Cell(m Method, s *Scenario, space ObjSpace, seeds []int64) (Row, error) {
	c := &Campaign{Scenario: s, Seeds: seeds, Spaces: []ObjSpace{space}, Methods: []Method{m}}
	tbl, err := c.Run()
	if err != nil {
		return Row{Method: m}, err
	}
	return tbl.Rows[0][0], nil
}

// Table holds all rows of one comparison table.
type Table struct {
	Scenario *Scenario
	// Methods and Spaces are the axes the rows were built over; nil means
	// the full Methods()/Spaces() sets (legacy tables).
	Methods []Method
	Spaces  []ObjSpace
	// Rows[spaceIdx][methodIdx]
	Rows [][]Row
}

func (t *Table) methodList() []Method {
	if t.Methods != nil {
		return t.Methods
	}
	return Methods()
}

func (t *Table) spaceList() []ObjSpace {
	if t.Spaces != nil {
		return t.Spaces
	}
	return Spaces()
}

// BuildTable regenerates one of the paper's comparison tables: a serial,
// uncheckpointed Campaign over the full method and objective-space axes.
func BuildTable(s *Scenario, seeds []int64) (*Table, error) {
	return (&Campaign{Scenario: s, Seeds: seeds}).Run()
}

// Averages returns per-method averages over the objective spaces, in
// method order.
func (t *Table) Averages() []Row {
	methods := t.methodList()
	avg := make([]Row, len(methods))
	for mi, m := range methods {
		avg[mi].Method = m
		for si := range t.Rows {
			avg[mi].HV += t.Rows[si][mi].HV
			avg[mi].ADRS += t.Rows[si][mi].ADRS
			avg[mi].Runs += t.Rows[si][mi].Runs
		}
		n := float64(len(t.Rows))
		avg[mi].HV /= n
		avg[mi].ADRS /= n
		avg[mi].Runs /= n
	}
	return avg
}

// Format renders the table in the paper's layout (methods as column groups,
// objective spaces as rows, plus Average and Ratio rows). Per-space cells
// carry the seed mean ± sample standard deviation, so run-to-run noise is
// visible next to every number.
func (t *Table) Format() string {
	var b strings.Builder
	methods := t.methodList()
	fmt.Fprintf(&b, "%s\n", t.Scenario.Name)
	fmt.Fprintf(&b, "%-18s", "Multi-objective")
	for _, m := range methods {
		fmt.Fprintf(&b, " | %-9s HV           ADRS         Runs", m)
	}
	b.WriteByte('\n')
	spaces := t.spaceList()
	for si, rows := range t.Rows {
		fmt.Fprintf(&b, "%-18s", spaces[si].Name)
		for _, r := range rows {
			fmt.Fprintf(&b, " | %9s %.3f±%.3f  %.3f±%.3f  %4.0f±%-3.0f", "", r.HV, r.HVStd, r.ADRS, r.ADRSStd, r.Runs, r.RunsStd)
		}
		b.WriteByte('\n')
	}
	avg := t.Averages()
	fmt.Fprintf(&b, "%-18s", "Average")
	for _, r := range avg {
		fmt.Fprintf(&b, " | %9s %-11.3f  %-11.3f  %-8.1f", "", r.HV, r.ADRS, r.Runs)
	}
	b.WriteByte('\n')
	// Ratio row: each method's average relative to PPATuner's.
	var ppa Row
	for _, r := range avg {
		if r.Method == PPATuner {
			ppa = r
		}
	}
	fmt.Fprintf(&b, "%-18s", "Ratio")
	for _, r := range avg {
		fmt.Fprintf(&b, " | %9s %-11.3f  %-11.3f  %-8.3f", "", safeDiv(r.HV, ppa.HV), safeDiv(r.ADRS, ppa.ADRS), safeDiv(r.Runs, ppa.Runs))
	}
	b.WriteByte('\n')
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Figure3 runs PPATuner on Scenario Two in power–delay space and returns the
// golden Pareto front and the learned front, each sorted by delay — the two
// series of the paper's Figure 3.
func Figure3(seed int64) (golden, learned [][]float64, err error) {
	return Figure3Opts(seed, RunOpts{})
}

// Figure3Opts is Figure3 with harness options (evaluator middleware, engine
// workers, a checkpointable random source). A nil opts.Src is replaced with
// a seed-derived core.PCGSource so the run's RNG state is always
// exportable for crash-safe resume.
func Figure3Opts(seed int64, opts RunOpts) (golden, learned [][]float64, err error) {
	s, err := ScenarioTwo()
	if err != nil {
		return nil, nil, err
	}
	space := Spaces()[1] // Power-Delay
	if opts.Src == nil {
		opts.Src = Figure3Source(seed)
	}
	out, err := RunMethodOpts(PPATuner, s, space, seed, opts)
	if err != nil {
		return nil, nil, err
	}
	objVecs := s.Target.Objectives(space.Metrics)
	golden = pareto.FrontPoints(objVecs)
	for _, i := range out.ParetoIdx {
		learned = append(learned, objVecs[i])
	}
	learned = pareto.FrontPoints(learned)
	byDelay := func(pts [][]float64) {
		sort.Slice(pts, func(a, b int) bool { return pts[a][1] < pts[b][1] })
	}
	byDelay(golden)
	byDelay(learned)
	return golden, learned, nil
}
