package eval

// TableReport is the machine-readable form of one comparison table — the
// per-table payload of cmd/tables' TABLES.json artifact. Every cell
// carries the seed mean and the sample standard deviation, so downstream
// tooling (the nightly CI pipeline, regression dashboards) can judge a
// shift against run-to-run noise instead of eyeballing text tables.
type TableReport struct {
	Name     string        `json:"name"`
	Scenario string        `json:"scenario"`
	Seeds    []int64       `json:"seeds"`
	Spaces   []SpaceReport `json:"spaces"`
	Averages []RowReport   `json:"averages"`
}

// SpaceReport is one objective space's row of method results.
type SpaceReport struct {
	Space string      `json:"space"`
	Rows  []RowReport `json:"rows"`
}

// RowReport is one table cell.
type RowReport struct {
	Method  string  `json:"method"`
	HV      float64 `json:"hv"`
	HVStd   float64 `json:"hv_std"`
	ADRS    float64 `json:"adrs"`
	ADRSStd float64 `json:"adrs_std"`
	Runs    float64 `json:"runs"`
	RunsStd float64 `json:"runs_std"`
}

func rowReport(r Row) RowReport {
	return RowReport{
		Method:  string(r.Method),
		HV:      r.HV,
		HVStd:   r.HVStd,
		ADRS:    r.ADRS,
		ADRSStd: r.ADRSStd,
		Runs:    r.Runs,
		RunsStd: r.RunsStd,
	}
}

// Report flattens the table into its machine-readable form.
func (t *Table) Report(name string, seeds []int64) TableReport {
	rep := TableReport{
		Name:     name,
		Scenario: t.Scenario.Name,
		Seeds:    append([]int64(nil), seeds...),
	}
	spaces := t.spaceList()
	for si, rows := range t.Rows {
		sr := SpaceReport{Space: spaces[si].Name}
		for _, r := range rows {
			sr.Rows = append(sr.Rows, rowReport(r))
		}
		rep.Spaces = append(rep.Spaces, sr)
	}
	for _, r := range t.Averages() {
		rep.Averages = append(rep.Averages, rowReport(r))
	}
	return rep
}
