package eval

import (
	"testing"

	"ppatuner/internal/robust"
)

func TestUnitSpecKeyMatchesCampaignUnitKey(t *testing.T) {
	s := miniScenario(t)
	c := &Campaign{Scenario: s, Seeds: []int64{1, 2}, Spaces: Spaces()[:2], Methods: []Method{PPATuner, DAC19}}
	for _, u := range c.Units() {
		if got, want := c.Spec(u).Key(), c.UnitKey(u); got != want {
			t.Fatalf("Spec(%+v).Key() = %q, UnitKey = %q", u, got, want)
		}
	}
}

func TestSpaceByName(t *testing.T) {
	for _, want := range Spaces() {
		got, err := SpaceByName(want.Name)
		if err != nil || got.Name != want.Name || len(got.Metrics) != len(want.Metrics) {
			t.Fatalf("SpaceByName(%q) = %+v, %v", want.Name, got, err)
		}
	}
	if _, err := SpaceByName("Delay-Only"); err == nil {
		t.Fatal("unknown space should error")
	}
}

func TestStandardScenarioUnknown(t *testing.T) {
	if _, err := StandardScenario("Mini"); err == nil {
		t.Fatal("unknown scenario should error")
	}
}

// TestExecuteUnitMatchesCampaign proves the wire-form execution path is the
// in-process one: for every unit of a mini campaign, ExecuteUnit from a
// fresh state reproduces Campaign.Run's cell bit-for-bit, and resuming from
// streamed observations midway through reproduces it again.
func TestExecuteUnitMatchesCampaign(t *testing.T) {
	s := miniScenario(t)
	c := &Campaign{Scenario: s, Seeds: []int64{1}, Spaces: Spaces()[:1], Methods: []Method{DAC19, PPATuner}}
	table, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}

	units := c.Units()
	results := make([]UnitResult, len(units))
	for i, u := range units {
		spec := c.Spec(u)
		space, err := SpaceByName(spec.Space)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []robust.Observation
		res, end, err := ExecuteUnit(s, space, spec, nil, nil, RunOpts{}, func(o robust.Observation) error {
			streamed = append(streamed, o)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(end) == 0 {
			t.Fatal("no end state returned")
		}
		if len(streamed) == 0 {
			t.Fatal("no observations streamed")
		}
		results[i] = res

		// A "reclaimed" rerun: fresh start state, the first half of the
		// streamed observations as replay. It must neither re-stream the
		// replayed half nor change the result.
		start, err := UnitStartState(spec)
		if err != nil {
			t.Fatal(err)
		}
		replay := streamed[:len(streamed)/2]
		fresh := 0
		res2, end2, err := ExecuteUnit(s, space, spec, start, replay, RunOpts{}, func(o robust.Observation) error {
			for _, r := range replay {
				if r.Index == o.Index {
					t.Fatalf("replayed index %d streamed again", o.Index)
				}
			}
			fresh++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if res2 != res {
			t.Fatalf("resumed unit %s: result %+v != %+v", spec.Key(), res2, res)
		}
		if string(end2) != string(end) {
			t.Fatalf("resumed unit %s: end state differs", spec.Key())
		}
		if fresh == 0 && len(streamed) > 1 {
			t.Fatalf("resumed unit %s streamed nothing fresh", spec.Key())
		}
	}

	// The assembled table from ExecuteUnit results matches Campaign.Run's.
	if got, want := c.Assemble(results).Format(), table.Format(); got != want {
		t.Fatalf("assembled table differs:\n%s\n--- want ---\n%s", got, want)
	}
}

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		spec string
		want []int64
		ok   bool
	}{
		{"3", []int64{1, 2, 3}, true},
		{"1,2,5", []int64{1, 2, 5}, true},
		{"7,", []int64{7}, true},
		{"0", nil, false},
		{"x", nil, false},
		{",", nil, false},
	}
	for _, tc := range cases {
		got, err := ParseSeeds(tc.spec)
		if tc.ok != (err == nil) {
			t.Errorf("ParseSeeds(%q) error = %v, want ok=%v", tc.spec, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseSeeds(%q) = %v, want %v", tc.spec, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseSeeds(%q) = %v, want %v", tc.spec, got, tc.want)
				break
			}
		}
	}
}
