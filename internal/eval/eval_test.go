package eval

import (
	"math"
	"strings"
	"sync"
	"testing"

	"ppatuner/internal/benchdata"
	"ppatuner/internal/param"
	"ppatuner/internal/pdtool"
)

var (
	miniOnce sync.Once
	miniScn  *Scenario
	miniErr  error
)

// miniScenario is a scaled-down Scenario Two: same spaces and designs, far
// fewer points, so harness tests stay fast (paper-sized runs live in the
// benchmarks).
func miniScenario(t *testing.T) *Scenario {
	t.Helper()
	miniOnce.Do(func() {
		src, err := benchdata.Generate("mini-src", param.Source2Space(), pdtool.SmallMAC(), benchdata.GenOptions{Points: 120, Seed: 51})
		if err != nil {
			miniErr = err
			return
		}
		tgt, err := benchdata.Generate("mini-tgt", param.Target2Space(), pdtool.SmallMAC(), benchdata.GenOptions{Points: 100, Seed: 52})
		if err != nil {
			miniErr = err
			return
		}
		miniScn = &Scenario{
			Name: "Mini", Source: src, Target: tgt,
			SourceN: 60, InitFrac: 0.08,
			Budgets: map[Method]int{TCAD19: 40, MLCAD19: 30, DAC19: 45, ASPDAC20: 30, PPATuner: 35},
		}
	})
	if miniErr != nil {
		t.Fatal(miniErr)
	}
	return miniScn
}

func TestSpacesAndMethods(t *testing.T) {
	sp := Spaces()
	if len(sp) != 3 {
		t.Fatalf("%d objective spaces, want 3", len(sp))
	}
	if sp[2].Name != "Area-Power-Delay" || len(sp[2].Metrics) != 3 {
		t.Errorf("third space wrong: %+v", sp[2])
	}
	ms := Methods()
	if len(ms) != 5 || ms[len(ms)-1] != PPATuner {
		t.Errorf("methods = %v, want 5 ending in PPATuner", ms)
	}
}

func TestRunMethodAllMethods(t *testing.T) {
	s := miniScenario(t)
	space := Spaces()[1] // Power-Delay
	for _, m := range Methods() {
		out, err := RunMethod(m, s, space, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(out.ParetoIdx) == 0 {
			t.Errorf("%s: empty Pareto set", m)
		}
		if out.Runs <= 0 || out.Runs > s.Target.N() {
			t.Errorf("%s: runs = %d", m, out.Runs)
		}
		hv, adrs := Score(s, space, out)
		if math.IsNaN(hv) || math.IsInf(hv, 0) || hv < 0 || hv > 1 {
			t.Errorf("%s: hv error = %g", m, hv)
		}
		if math.IsNaN(adrs) || adrs < 0 {
			t.Errorf("%s: ADRS = %g", m, adrs)
		}
	}
}

func TestRunMethodUnknown(t *testing.T) {
	s := miniScenario(t)
	if _, err := RunMethod(Method("nope"), s, Spaces()[0], 1); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestScorePerfectApproximation(t *testing.T) {
	s := miniScenario(t)
	space := Spaces()[0]
	out := &Outcome{ParetoIdx: s.Target.GoldenFrontIndices(space.Metrics)}
	hv, adrs := Score(s, space, out)
	if hv > 1e-9 || adrs > 1e-9 {
		t.Errorf("golden set scored (%g, %g), want (0, 0)", hv, adrs)
	}
}

func TestCellAveragesSeeds(t *testing.T) {
	s := miniScenario(t)
	row, err := Cell(MLCAD19, s, Spaces()[0], []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if row.Method != MLCAD19 || row.Runs <= 0 {
		t.Errorf("row = %+v", row)
	}
}

func TestBuildTableAndFormat(t *testing.T) {
	s := miniScenario(t)
	tbl, err := BuildTable(s, []int64{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("table has %d space rows", len(tbl.Rows))
	}
	for _, rows := range tbl.Rows {
		if len(rows) != 5 {
			t.Fatalf("row has %d methods", len(rows))
		}
	}
	avg := tbl.Averages()
	if len(avg) != 5 {
		t.Fatalf("averages length %d", len(avg))
	}
	text := tbl.Format()
	for _, want := range []string{"PPATuner", "TCAD'19", "MLCAD'19", "DAC'19", "ASPDAC'20", "Average", "Ratio", "Area-Power-Delay"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

// TestPPATunerCompetitiveOnMini: on the miniature scenario PPATuner must not
// be grossly worse than the weakest baseline — a cheap guard for the
// relative ordering that the full-size benchmarks validate properly.
func TestPPATunerCompetitiveOnMini(t *testing.T) {
	s := miniScenario(t)
	space := Spaces()[1]
	rowP, err := Cell(PPATuner, s, space, []int64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	// On a 100-point pool any method with half the pool as budget can find
	// the whole front, so compare against an absolute quality bar instead of
	// the baselines.
	if rowP.HV > 0.15 {
		t.Errorf("PPATuner HV %.3f on the mini scenario, want <= 0.15", rowP.HV)
	}
	if rowP.ADRS > 0.15 {
		t.Errorf("PPATuner ADRS %.3f on the mini scenario, want <= 0.15", rowP.ADRS)
	}
}

func TestSafeDiv(t *testing.T) {
	if safeDiv(4, 2) != 2 || safeDiv(1, 0) != 0 {
		t.Error("safeDiv wrong")
	}
}
