package eval

import (
	"fmt"
	"strconv"
	"strings"

	"ppatuner/internal/core"
	"ppatuner/internal/robust"
)

// UnitSpec is the wire form of one campaign work unit: scenario, space and
// method by name plus the seed — everything a worker process needs to
// reconstruct the unit, with no pointers into the coordinator's memory. Its
// Key matches Campaign.UnitKey, so specs, checkpoint entries and lease
// records all index the same identity.
type UnitSpec struct {
	Scenario string `json:"scenario"`
	Space    string `json:"space"`
	Method   Method `json:"method"`
	Seed     int64  `json:"seed"`
}

// Key is the unit's stable checkpoint identity (same spelling as
// Campaign.UnitKey).
func (s UnitSpec) Key() string {
	return fmt.Sprintf("%s|%s|%s|seed=%d", s.Scenario, s.Space, s.Method, s.Seed)
}

// Spec exports a unit in wire form.
func (c *Campaign) Spec(u Unit) UnitSpec {
	return UnitSpec{
		Scenario: c.Scenario.Name,
		Space:    c.spaces()[u.SpaceIdx].Name,
		Method:   u.Method,
		Seed:     u.Seed,
	}
}

// SpaceByName resolves one of the paper's objective spaces from its table
// heading — the inverse of ObjSpace.Name for wire-form units.
func SpaceByName(name string) (ObjSpace, error) {
	for _, s := range Spaces() {
		if s.Name == name {
			return s, nil
		}
	}
	return ObjSpace{}, fmt.Errorf("eval: unknown objective space %q", name)
}

// StandardScenario rebuilds one of the paper's scenarios from its name —
// the worker-side resolver for wire-form units. Scenario construction
// regenerates the benchmark datasets, so resolve once per process and reuse.
func StandardScenario(name string) (*Scenario, error) {
	switch name {
	case ScenarioOneName:
		return ScenarioOne()
	case ScenarioTwoName:
		return ScenarioTwo()
	}
	return nil, fmt.Errorf("eval: unknown scenario %q", name)
}

// UnitStartState is the serialised state of the fresh per-unit random
// source — what a unit's RNG looks like before its first draw. The
// coordinator records it via StartCell when first granting a unit, and a
// worker granted a unit with no recorded state derives the same bytes
// itself, so both sides agree without shipping generators around.
func UnitStartState(spec UnitSpec) ([]byte, error) {
	return core.NewPCGSource(uint64(spec.Seed), unitSalt(spec.Key())).MarshalBinary()
}

// ExecuteUnit runs one wire-form unit to completion: the worker-process
// counterpart of Campaign.runUnit. The unit's random source is restored
// from randState (nil starts fresh from the seed), replay observations
// answer their pool indices without touching the tool — bit-for-bit the
// draws a crashed or pre-empted holder already paid for — and every fresh
// valid observation is reported through onFresh before the run proceeds,
// so the caller can stream it to the coordinator. Middleware composes as
// in Campaign.runUnit: the replay cache sits inside base.Wrap, so
// fault-tolerance retries re-enter the cache-miss path and invalid vectors
// are passed up (never cached, never streamed). Returns the scored result
// and the source's serialised end state.
func ExecuteUnit(sc *Scenario, space ObjSpace, spec UnitSpec, randState []byte, replay []robust.Observation, base RunOpts, onFresh func(robust.Observation) error) (UnitResult, []byte, error) {
	src := core.NewPCGSource(uint64(spec.Seed), unitSalt(spec.Key()))
	if randState != nil {
		if err := src.UnmarshalBinary(randState); err != nil {
			return UnitResult{}, nil, err
		}
	}
	cache := make(map[int][]float64, len(replay))
	for _, o := range replay {
		if _, dup := cache[o.Index]; dup {
			continue
		}
		cache[o.Index] = append([]float64(nil), o.QoR...)
	}
	opts := base
	opts.Src = src
	prev := base.Wrap
	opts.Wrap = func(ev core.Evaluator) core.Evaluator {
		cached := func(i int) ([]float64, error) {
			if y, ok := cache[i]; ok {
				return append([]float64(nil), y...), nil
			}
			y, err := ev(i)
			if err != nil {
				return nil, err
			}
			if robust.ValidateVector(y, 0) != nil {
				return y, nil
			}
			cache[i] = append([]float64(nil), y...)
			if onFresh != nil {
				if err := onFresh(robust.Observation{Index: i, QoR: append([]float64(nil), y...)}); err != nil {
					return nil, err
				}
			}
			return y, nil
		}
		if prev != nil {
			return prev(core.Evaluator(cached))
		}
		return cached
	}
	out, err := RunMethodOpts(spec.Method, sc, space, spec.Seed, opts)
	if err != nil {
		return UnitResult{}, nil, err
	}
	hv, adrs := Score(sc, space, out)
	end, err := src.MarshalBinary()
	if err != nil {
		return UnitResult{}, nil, err
	}
	return UnitResult{HV: hv, ADRS: adrs, Runs: out.Runs}, end, nil
}

// ParseSeeds accepts a count ("3" → seeds 1..3) or an explicit list
// ("1,2,5"; "7," is the single seed 7) — the shared CLI spelling of
// cmd/tables and cmd/ppacoord.
func ParseSeeds(spec string) ([]int64, error) {
	spec = strings.TrimSpace(spec)
	if strings.Contains(spec, ",") {
		var seeds []int64
		for _, part := range strings.Split(spec, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			s, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("seed %q is not an integer", part)
			}
			seeds = append(seeds, s)
		}
		if len(seeds) == 0 {
			return nil, fmt.Errorf("seed list %q is empty", spec)
		}
		return seeds, nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("-seeds wants a count >= 1 or a comma-separated list, got %q", spec)
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds, nil
}
