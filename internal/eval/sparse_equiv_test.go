package eval

import (
	"math"
	"testing"

	"ppatuner/internal/gp"
)

// TestSparseCampaignMatchesExact is the tentpole acceptance check at the
// campaign level: a PPATuner seed sweep run with the sparse:64 surrogate must
// land statistically on the exact GP's front quality — mean hyper-volume
// error and ADRS within a small envelope of each other, and both under the
// same absolute quality bars the exact solver meets on this scenario.
func TestSparseCampaignMatchesExact(t *testing.T) {
	s := miniScenario(t)
	space := Spaces()[1] // Power-Delay
	seeds := []int64{5, 6, 7}

	sweep := func(spec gp.Spec) (meanHV, meanADRS float64) {
		for _, seed := range seeds {
			out, err := RunMethodOpts(PPATuner, s, space, seed, RunOpts{GP: spec})
			if err != nil {
				t.Fatalf("%v seed %d: %v", spec, seed, err)
			}
			hv, adrs := Score(s, space, out)
			if math.IsNaN(hv) || math.IsNaN(adrs) {
				t.Fatalf("%v seed %d: NaN score", spec, seed)
			}
			meanHV += hv
			meanADRS += adrs
		}
		n := float64(len(seeds))
		return meanHV / n, meanADRS / n
	}

	exHV, exADRS := sweep(gp.Spec{})
	spHV, spADRS := sweep(gp.Spec{Sparse: true, M: 64})
	t.Logf("exact:     mean HV err %.4f, mean ADRS %.4f", exHV, exADRS)
	t.Logf("sparse:64: mean HV err %.4f, mean ADRS %.4f", spHV, spADRS)

	// Absolute bars: both surrogates must produce competitive fronts.
	for _, c := range []struct {
		name   string
		hv, ad float64
	}{{"exact", exHV, exADRS}, {"sparse:64", spHV, spADRS}} {
		if c.hv > 0.15 {
			t.Errorf("%s: mean HV error %.4f exceeds 0.15", c.name, c.hv)
		}
		if c.ad > 0.15 {
			t.Errorf("%s: mean ADRS %.4f exceeds 0.15", c.name, c.ad)
		}
	}
	// Equivalence envelope: the sparse sweep may not drift away from exact by
	// more than the scenario's seed-to-seed noise scale.
	if d := math.Abs(exHV - spHV); d > 0.08 {
		t.Errorf("mean HV error differs by %.4f between exact and sparse:64 (want <= 0.08)", d)
	}
	if d := math.Abs(exADRS - spADRS); d > 0.08 {
		t.Errorf("mean ADRS differs by %.4f between exact and sparse:64 (want <= 0.08)", d)
	}
}
