package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"ppatuner/internal/clock"
)

// ReconnOptions configures Connect.
type ReconnOptions struct {
	// Dial establishes one coordinator connection. Connect and every
	// reconnection round call it anew; a closure may rotate through
	// several addresses (primary first, standby next) across calls.
	Dial func() (Conn, error)
	// Backoff paces redial attempts within one outage.
	Backoff Backoff
	// MaxDown bounds one continuous outage: when no dial has succeeded
	// for this long, the connection fails permanently (default 2m). Set
	// it past the standby's takeover window, or workers give up before
	// the new primary starts listening.
	MaxDown time.Duration
	// Clock paces backoff sleeps; defaults to the wall clock.
	Clock clock.Clock
}

// Reconn is a Conn that survives coordinator fail-over. On any transport
// error it redials (capped exponential backoff, deterministic jitter),
// re-handshakes — a hello naming the lease the worker still holds, so the
// new coordinator re-attaches it instead of double-granting the unit — and
// re-streams every observation and result the old coordinator never
// acknowledged. The coordinator's index-deduplicated merge and
// duplicate-result discard make the re-stream idempotent, so a worker
// driven through a Reconn produces byte-identical campaign state no matter
// how many coordinators died under it.
//
// Reconn tracks the session state it needs by watching the traffic pass
// through: the hello Send becomes the re-handshake template, a grant Recv
// records the held lease, and welcome/ack messages are consumed here (they
// are connection bookkeeping, not worker work — RunWorker never sees
// them).
type Reconn struct {
	opt ReconnOptions
	ctx context.Context

	// reMu single-flights reconnection: the first goroutine to hit a dead
	// conn rebuilds it while later ones queue behind the mutex and then
	// discover a fresh conn version.
	reMu sync.Mutex

	mu        sync.Mutex
	conn      Conn
	version   int
	closed    bool
	hello     Msg
	heldKey   string
	heldEpoch uint64
	gen       uint64
	unacked   []Msg
}

// Connect dials the coordinator, retrying with the backoff policy until
// MaxDown elapses — so a worker started before its coordinator listens
// simply waits for it — and returns the self-healing connection.
func Connect(ctx context.Context, opt ReconnOptions) (*Reconn, error) {
	if opt.Dial == nil {
		return nil, errors.New("shard: Connect requires a Dial function")
	}
	if opt.Clock == nil {
		opt.Clock = clock.Real()
	}
	if opt.MaxDown <= 0 {
		opt.MaxDown = 2 * time.Minute
	}
	r := &Reconn{opt: opt, ctx: ctx}
	c, err := r.establish(false)
	if err != nil {
		return nil, err
	}
	r.conn = c
	r.version = 1
	return r, nil
}

// Generation returns the coordinator generation from the most recent
// welcome (zero before any welcome arrives).
func (r *Reconn) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Send transmits m, transparently reconnecting on failure. Observations
// and results are buffered until the coordinator acknowledges them; a
// reconnection re-streams the buffer as part of the handshake, so a Send
// that returns nil is guaranteed delivered to *some* coordinator
// generation eventually or the connection fails permanently.
func (r *Reconn) Send(m Msg) error {
	r.note(m)
	for {
		conn, version, err := r.current()
		if err != nil {
			return err
		}
		if err := conn.Send(m); err == nil {
			return nil
		}
		if _, _, err := r.reconnect(version); err != nil {
			return err
		}
		switch m.Type {
		case MsgObs, MsgResult:
			// Already re-streamed by the reconnect handshake.
			return nil
		case MsgHello:
			// The handshake re-introduced the worker.
			return nil
		case MsgHeartbeat:
			// Stale the moment the old conn died; the next tick renews.
			return nil
		default:
			// Anything else (fail reports) retries on the new conn.
		}
	}
}

// Recv returns the next message from the current coordinator, redialling
// through connection loss. Welcome and acknowledgement messages are
// consumed internally.
func (r *Reconn) Recv() (Msg, error) {
	for {
		conn, version, err := r.current()
		if err != nil {
			return Msg{}, err
		}
		m, err := conn.Recv()
		if err != nil {
			if _, _, rerr := r.reconnect(version); rerr != nil {
				return Msg{}, rerr
			}
			continue
		}
		switch m.Type {
		case MsgWelcome:
			r.mu.Lock()
			r.gen = m.Generation
			r.mu.Unlock()
		case MsgObsAck:
			r.ackObs(m.Key, m.Index)
		case MsgResultAck:
			r.ackResult(m.Key)
		case MsgGrant:
			r.mu.Lock()
			r.heldKey, r.heldEpoch = m.Key, m.Epoch
			r.mu.Unlock()
			return m, nil
		default:
			return m, nil
		}
	}
}

// Close tears the connection down for good; no further reconnection.
func (r *Reconn) Close() error {
	r.mu.Lock()
	r.closed = true
	conn := r.conn
	r.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

// note updates session bookkeeping from an outbound message.
func (r *Reconn) note(m Msg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch m.Type {
	case MsgHello:
		r.hello = m
	case MsgObs, MsgResult:
		r.unacked = append(r.unacked, m)
	case MsgFail:
		if r.heldKey == m.Key {
			r.heldKey, r.heldEpoch = "", 0
		}
	}
}

// ackObs drops one acknowledged observation from the retransmit buffer.
func (r *Reconn) ackObs(key string, index int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, m := range r.unacked {
		if m.Type == MsgObs && m.Key == key && m.Obs != nil && m.Obs.Index == index {
			r.unacked = append(r.unacked[:i], r.unacked[i+1:]...)
			return
		}
	}
}

// ackResult drops everything buffered for the unit — the coordinator has
// durably handled its result, so neither the result nor any straggler
// observation needs retransmitting — and releases the held lease.
func (r *Reconn) ackResult(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.unacked[:0]
	for _, m := range r.unacked {
		if m.Key != key {
			kept = append(kept, m)
		}
	}
	r.unacked = kept
	if r.heldKey == key {
		r.heldKey, r.heldEpoch = "", 0
	}
}

// current returns the live conn and its version.
func (r *Reconn) current() (Conn, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, 0, io.ErrClosedPipe
	}
	return r.conn, r.version, nil
}

// reconnect replaces a dead conn (identified by the version the caller
// saw) with a freshly dialled, re-handshaken one. Single-flighted: callers
// racing in behind the first just observe the bumped version and return
// the new conn.
func (r *Reconn) reconnect(failedVersion int) (Conn, int, error) {
	r.reMu.Lock()
	defer r.reMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, 0, io.ErrClosedPipe
	}
	if r.version > failedVersion {
		c, v := r.conn, r.version
		r.mu.Unlock()
		return c, v, nil
	}
	old := r.conn
	r.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	//ppalint:allow lockio reMu IS the single-flight: exactly one caller may dial/backoff at a time, the rest block here until the winner installs the new conn
	conn, err := r.establish(true)
	if err != nil {
		r.mu.Lock()
		r.closed = true
		r.mu.Unlock()
		return nil, 0, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		_ = conn.Close()
		return nil, 0, io.ErrClosedPipe
	}
	r.conn = conn
	r.version++
	v := r.version
	r.mu.Unlock()
	return conn, v, nil
}

// establish dials until a connection (optionally including the
// re-handshake) succeeds, pacing attempts with the backoff policy and
// giving up after MaxDown of continuous failure. Called with reMu held
// during reconnection; Connect calls it before the Reconn is shared.
func (r *Reconn) establish(handshake bool) (Conn, error) {
	clk := r.opt.Clock
	start := clk.Now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if down := clk.Now().Sub(start); down >= r.opt.MaxDown {
				return nil, fmt.Errorf("shard: coordinator unreachable for %v (last error: %v)", down, lastErr)
			}
			if err := clk.Sleep(r.ctx, r.opt.Backoff.Delay(attempt-1)); err != nil {
				return nil, err
			}
		}
		r.mu.Lock()
		closed := r.closed
		r.mu.Unlock()
		if closed {
			return nil, io.ErrClosedPipe
		}
		c, err := r.opt.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		if !handshake {
			return c, nil
		}
		if err := r.sendHandshake(c); err != nil {
			lastErr = err
			_ = c.Close()
			continue
		}
		return c, nil
	}
}

// sendHandshake re-introduces the worker to a fresh coordinator: the
// original hello extended with the lease it still holds, then the unacked
// observation/result backlog in original send order.
func (r *Reconn) sendHandshake(c Conn) error {
	r.mu.Lock()
	hello := r.hello
	hello.Type = MsgHello
	hello.Key, hello.Epoch = r.heldKey, r.heldEpoch
	backlog := append([]Msg(nil), r.unacked...)
	r.mu.Unlock()
	if err := c.Send(hello); err != nil {
		return err
	}
	for _, m := range backlog {
		if err := c.Send(m); err != nil {
			return err
		}
	}
	return nil
}
