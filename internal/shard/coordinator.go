package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ppatuner/internal/clock"
	"ppatuner/internal/eval"
	"ppatuner/internal/robust"
)

// ErrDeposed reports that a newer coordinator generation adopted the
// campaign checkpoint while this coordinator was running: its fenced write
// was rejected, so it must stop coordinating — the standby that deposed it
// owns the campaign now. The rejected write was never applied; the only
// state this coordinator loses is wall-clock time.
var ErrDeposed = errors.New("shard: coordinator deposed by a newer generation")

// Options configures a Coordinator.
type Options struct {
	// Campaign defines the work: scenario, seeds, spaces, methods, and —
	// when set — the CampaignCheckpoint results merge into (nil keeps an
	// in-memory one, useful in tests). Campaign.Workers and Campaign.Opts
	// are ignored: execution happens in the worker processes, under their
	// own RunOpts.
	Campaign *eval.Campaign
	// LeaseTTL is how long a grant lives without a heartbeat renewal
	// (default 30s). A worker that goes silent for a full TTL loses the
	// unit to the park-and-requeue path.
	LeaseTTL time.Duration
	// RequeueDelay holds a breaker-parked unit out of the grant queue after
	// its worker reported an open breaker (default LeaseTTL/4), so a
	// worker-side outage isn't replayed against the next worker instantly.
	RequeueDelay time.Duration
	// Clock paces lease deadlines; defaults to the wall clock. Tests install
	// a clock.Fake so every expiry scenario resolves in microseconds.
	Clock clock.Clock
	// Log, when non-nil, receives every lease transition (granted, expired,
	// reclaimed, zombie rejected, merged) as a structured KindLease event.
	Log *robust.FailureLog
	// AdoptLeases re-arms the checkpoint's persisted lease records as
	// active leases (recorded epoch and holder, fresh TTL) instead of
	// queueing those units for an immediate re-grant — standby takeover.
	// The worker holding the unit either reconnects (its hello re-attaches
	// it and its result completes the unit under the re-armed epoch) or
	// stays gone (the TTL expires and the unit requeues as usual). The
	// default, false, is the boot-resume behaviour: only the epoch
	// high-water marks are restored and every incomplete unit queues.
	AdoptLeases bool
	// Beacon, when non-nil, is announced (generation + advancing sequence
	// number) every BeaconEvery while Run is live, so a standby watching
	// the file can tell a healthy primary from a dead one.
	Beacon *Beacon
	// BeaconEvery paces beacon announcements (default LeaseTTL/3).
	BeaconEvery time.Duration
}

func (o *Options) setDefaults() {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.RequeueDelay <= 0 {
		o.RequeueDelay = o.LeaseTTL / 4
	}
	if o.Clock == nil {
		o.Clock = clock.Real()
	}
	if o.BeaconEvery <= 0 {
		o.BeaconEvery = o.LeaseTTL / 3
	}
}

// workerState is the coordinator's view of one connected worker.
type workerState struct {
	conn  Conn
	id    string
	key   string // leased unit key; "" when idle
	alive bool
	hello bool
}

// event is one item on the coordinator's single event stream: a message
// from a worker, or (err != nil) its connection dying.
type event struct {
	conn Conn
	msg  Msg
	err  error
}

// Coordinator runs a campaign by leasing its units to worker processes and
// merging their streamed progress into the single campaign checkpoint. One
// event-loop goroutine owns every piece of state; per-connection reader
// goroutines only ferry messages onto the loop's channel.
//
// The merge rules make the outcome schedule-independent:
//
//   - observations are epoch-agnostic: even a stale lease's observations
//     are merged (deduplicated by pool index — per-unit determinism makes
//     re-derived values identical), so every reclaim round strictly grows
//     the unit's replay prefix;
//   - a result is accepted iff its epoch equals the unit's last-granted
//     epoch and the unit is not already done. A late result from an
//     expired-but-never-superseded lease is still the truth; one from a
//     superseded lease is a zombie and is discarded.
type Coordinator struct {
	opt    Options
	ck     *robust.CampaignCheckpoint
	ledger *Ledger
	// gen is the checkpoint generation this coordinator writes under
	// (zero when the checkpoint was never adopted); welcomes carry it.
	gen uint64

	units    []eval.Unit
	keys     []string
	specs    []eval.UnitSpec
	idxByKey map[string]int

	results   []eval.UnitResult
	done      []bool
	remaining int

	queue     []int
	notBefore map[int]time.Time
	workers   []*workerState
}

// New builds a coordinator for the campaign.
func New(opt Options) (*Coordinator, error) {
	if opt.Campaign == nil || opt.Campaign.Scenario == nil {
		return nil, fmt.Errorf("shard: coordinator has no campaign scenario")
	}
	if len(opt.Campaign.Seeds) == 0 {
		return nil, fmt.Errorf("shard: coordinator campaign has no seeds")
	}
	opt.setDefaults()
	co := &Coordinator{
		opt:       opt,
		ck:        opt.Campaign.Checkpoint,
		ledger:    NewLedger(),
		idxByKey:  map[string]int{},
		notBefore: map[int]time.Time{},
	}
	if co.ck == nil {
		co.ck = robust.NewCampaignCheckpoint("")
	}
	co.gen = co.ck.Generation()
	c := opt.Campaign
	co.units = c.Units()
	co.results = make([]eval.UnitResult, len(co.units))
	co.done = make([]bool, len(co.units))
	leases := co.ck.LeaseRecords()
	now := opt.Clock.Now()
	for i, u := range co.units {
		key := c.UnitKey(u)
		co.keys = append(co.keys, key)
		co.specs = append(co.specs, c.Spec(u))
		co.idxByKey[key] = i
		if cell, ok := co.ck.Done(key); ok {
			co.results[i] = eval.UnitResult{HV: cell.HV, ADRS: cell.ADRS, Runs: cell.Runs}
			co.done[i] = true
			continue
		}
		co.remaining++
		if lr, held := leases[key]; opt.AdoptLeases && held && lr.Holder != "" {
			// Takeover: the unit is out with a worker that may still be
			// computing. Re-arm its lease instead of queueing a re-grant;
			// expiry requeues it if the worker never resurfaces.
			co.ledger.RestoreActive(key, lr.Epoch, lr.Holder, now, opt.LeaseTTL)
			co.logLease("lease adopted: %s epoch %d held by %s (TTL re-armed)", key, lr.Epoch, lr.Holder)
			continue
		}
		co.queue = append(co.queue, i)
	}
	// Epoch high-water marks restore for every recorded key — including
	// units of other campaigns sharing the checkpoint file — so re-grants
	// always advance past anything ever granted.
	for key, lr := range leases {
		co.ledger.Restore(key, lr.Epoch)
	}
	return co, nil
}

// Stats returns the lease-machinery counters. Read it after Run returns.
func (co *Coordinator) Stats() Stats { return co.ledger.Stats() }

// Run drives the campaign to completion: workers arriving on conns are
// registered (each must lead with a hello), units are leased out, progress
// is merged, and the assembled table is returned once every unit is done.
// The first hard unit failure aborts deterministically; breaker-parked
// failures, lease expiries and worker deaths requeue instead. Workers still
// connected at the end are sent a shutdown message. A closed conns channel
// stops registration but not the campaign.
func (co *Coordinator) Run(ctx context.Context, conns <-chan Conn) (*eval.Table, error) {
	events := make(chan event, 64)
	// readersDone releases every per-connection reader goroutine when Run
	// returns: a reader parked on an events send would otherwise leak once
	// the loop stops draining, and shutdownWorkers closes the conns so no
	// reader stays parked in Recv either.
	readersDone := make(chan struct{})
	defer close(readersDone)
	defer co.shutdownWorkers()

	// Announce liveness while the loop runs: a standby watching the beacon
	// promotes only after the sequence number stops advancing. The
	// goroutine is joined before Run returns, so a finished (or deposed)
	// coordinator stops announcing promptly.
	if co.opt.Beacon != nil {
		bctx, bcancel := context.WithCancel(ctx)
		var bwg sync.WaitGroup
		bwg.Add(1)
		go func() {
			defer bwg.Done()
			for {
				// Best-effort: an announce failure must not kill the
				// campaign, and silence only errs toward a takeover —
				// which fencing makes safe.
				_ = co.opt.Beacon.Announce(co.gen)
				if co.opt.Clock.Sleep(bctx, co.opt.BeaconEvery) != nil {
					return
				}
			}
		}()
		defer bwg.Wait()
		defer bcancel()
	}

	var alarmCancel context.CancelFunc
	var alarmAt time.Time
	alarmCh := make(chan struct{}, 1)
	defer func() {
		if alarmCancel != nil {
			alarmCancel()
		}
	}()

	for co.remaining > 0 {
		now := co.opt.Clock.Now()
		if err := co.expire(now); err != nil {
			return nil, co.asDeposed(err)
		}
		if err := co.assign(now); err != nil {
			return nil, co.asDeposed(err)
		}
		if co.remaining == 0 {
			break
		}
		// Arm the expiry alarm for the next decision point: the earliest
		// active-lease deadline, or — when an idle worker is waiting on a
		// requeue-delayed unit — the earliest notBefore. No wake target
		// means the next event must come from a worker; sleep on the
		// channels alone.
		if at, ok := co.nextWake(); ok && (alarmCancel == nil || !at.Equal(alarmAt)) {
			if alarmCancel != nil {
				alarmCancel()
			}
			alarmCancel = co.armAlarm(ctx, at.Sub(now), alarmCh)
			alarmAt = at
		} else if !ok && alarmCancel != nil {
			alarmCancel()
			alarmCancel = nil
		}

		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-alarmCh:
			// Expiries are processed at the top of the loop.
			if alarmCancel != nil {
				alarmCancel()
				alarmCancel = nil
			}
		case c, ok := <-conns:
			if !ok {
				conns = nil
				continue
			}
			w := &workerState{conn: c, alive: true}
			co.workers = append(co.workers, w)
			go func(c Conn) {
				for {
					m, err := c.Recv()
					select {
					case events <- event{conn: c, msg: m, err: err}:
					case <-readersDone:
						return
					}
					if err != nil {
						return
					}
				}
			}(c)
		case ev := <-events:
			if err := co.handle(ev); err != nil {
				return nil, co.asDeposed(err)
			}
		}
	}
	return co.opt.Campaign.Assemble(co.results), nil
}

// armAlarm starts a cancellable goroutine that signals ch after d on the
// coordinator clock and returns its cancel function.
func (co *Coordinator) armAlarm(ctx context.Context, d time.Duration, ch chan<- struct{}) context.CancelFunc {
	actx, cancel := context.WithCancel(ctx)
	go func() {
		if co.opt.Clock.Sleep(actx, d) == nil {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	}()
	return cancel
}

// nextWake picks the earliest instant at which the loop must act without a
// worker event arriving.
func (co *Coordinator) nextWake() (time.Time, bool) {
	at, ok := co.ledger.NextDeadline()
	if co.idleWorker() != nil {
		for _, idx := range co.queue {
			nb, delayed := co.notBefore[idx]
			if !delayed {
				continue
			}
			if !ok || nb.Before(at) {
				at, ok = nb, true
			}
		}
	}
	return at, ok
}

// expire reclaims every lease whose deadline passed, through the
// park-and-requeue path.
func (co *Coordinator) expire(now time.Time) error {
	for _, key := range co.ledger.Expired(now) {
		co.ledger.Reclaim(key)
		if err := co.requeue(key, now, 0); err != nil {
			return err
		}
		co.logLease("lease expired; unit %s parked and requeued", key)
	}
	return nil
}

// requeue parks key and returns it to the grant queue, optionally not
// before now+delay. The holding worker, if any, stays marked busy: a silent
// worker is presumed wedged until it reports or its connection dies, so it
// is never double-booked.
func (co *Coordinator) requeue(key string, now time.Time, delay time.Duration) error {
	idx, ok := co.idxByKey[key]
	if !ok || co.done[idx] {
		return nil
	}
	if err := co.ck.Park(key); err != nil {
		return err
	}
	for _, q := range co.queue {
		if q == idx {
			return nil
		}
	}
	co.queue = append(co.queue, idx)
	sort.Ints(co.queue)
	if delay > 0 {
		co.notBefore[idx] = now.Add(delay)
	}
	return nil
}

// idleWorker returns a registered, alive, unleased worker (first-connected
// first, so grant order is deterministic given an arrival order).
func (co *Coordinator) idleWorker() *workerState {
	for _, w := range co.workers {
		if w.alive && w.hello && w.key == "" {
			return w
		}
	}
	return nil
}

// assign grants eligible queued units to idle workers.
func (co *Coordinator) assign(now time.Time) error {
	for {
		w := co.idleWorker()
		if w == nil {
			return nil
		}
		pos := -1
		for i, idx := range co.queue {
			if nb, delayed := co.notBefore[idx]; delayed && now.Before(nb) {
				continue
			}
			pos = i
			break
		}
		if pos < 0 {
			return nil
		}
		idx := co.queue[pos]
		co.queue = append(co.queue[:pos], co.queue[pos+1:]...)
		delete(co.notBefore, idx)
		if err := co.grant(w, idx, now); err != nil {
			return err
		}
	}
}

// grant leases unit idx to worker w: epoch from the ledger, lease record
// and start state into the checkpoint, grant message (with the replay
// prefix) onto the wire.
func (co *Coordinator) grant(w *workerState, idx int, now time.Time) error {
	key := co.keys[idx]
	epoch := co.ledger.Grant(key, w.id, now, co.opt.LeaseTTL)
	if err := co.ck.Lease(key, epoch, w.id); err != nil {
		return err
	}
	if err := co.ck.Unpark(key); err != nil {
		return err
	}
	state, _ := co.ck.PartialRandState(key)
	if state == nil {
		var err error
		state, err = eval.UnitStartState(co.specs[idx])
		if err != nil {
			return err
		}
		if err := co.ck.StartCell(key, state); err != nil {
			return err
		}
	}
	w.key = key
	co.logLease("lease granted: %s epoch %d to %s", key, epoch, w.id)
	err := w.conn.Send(Msg{
		Type:        MsgGrant,
		Key:         key,
		Epoch:       epoch,
		Unit:        &co.specs[idx],
		LeaseMillis: co.opt.LeaseTTL.Milliseconds(),
		RandState:   state,
		Replay:      co.ck.PartialObservations(key),
	})
	if err != nil {
		// The reader goroutine will deliver the death event; reclaim now so
		// the unit doesn't wait out a full TTL on a connection known dead.
		return co.workerLost(w, co.opt.Clock.Now())
	}
	return nil
}

// handle processes one worker event on the loop goroutine.
func (co *Coordinator) handle(ev event) error {
	w := co.workerFor(ev.conn)
	if w == nil {
		return nil
	}
	now := co.opt.Clock.Now()
	if ev.err != nil {
		return co.workerLost(w, now)
	}
	msg := ev.msg
	switch msg.Type {
	case MsgHello:
		w.hello = true
		w.id = msg.Worker
		if w.id == "" {
			w.id = fmt.Sprintf("worker-%d", co.workerIndex(w))
		}
		// A reconnecting worker names the lease it believes it holds. When
		// the ledger agrees — same epoch, same holder, still active — the
		// worker re-attaches and keeps computing; the unit is never
		// double-granted. Any disagreement (expired and re-granted, or a
		// different holder) is ignored: the worker's eventual result is
		// rejected as a zombie and it idles back into the grant pool.
		if msg.Key != "" {
			if epoch, holder, ok := co.ledger.Current(msg.Key); ok && epoch == msg.Epoch && holder == w.id {
				w.key = msg.Key
				co.ledger.Renew(msg.Key, msg.Epoch, now, co.opt.LeaseTTL)
				co.logLease("worker %s re-attached to %s epoch %d", w.id, msg.Key, epoch)
			} else {
				co.logLease("re-hello from %s for %s epoch %d ignored (lease not current)", w.id, msg.Key, msg.Epoch)
			}
		}
		if err := w.conn.Send(Msg{Type: MsgWelcome, Generation: co.gen}); err != nil {
			return co.workerLost(w, now)
		}
	case MsgObs:
		idx, ok := co.idxByKey[msg.Key]
		if !ok || msg.Obs == nil {
			return nil
		}
		if !co.done[idx] {
			if msg.Epoch != co.ledger.LastEpoch(msg.Key) {
				co.ledger.CountZombieObs()
			}
			if err := co.ck.AddPartialObservation(msg.Key, *msg.Obs); err != nil {
				return fmt.Errorf("shard: merging observation from %s: %w", w.id, err)
			}
		}
		// Acknowledge even observations for already-done units: the worker
		// only needs to know it can drop the retransmit buffer entry.
		if err := w.conn.Send(Msg{Type: MsgObsAck, Key: msg.Key, Index: msg.Obs.Index}); err != nil {
			return co.workerLost(w, now)
		}
	case MsgHeartbeat:
		co.ledger.Renew(msg.Key, msg.Epoch, now, co.opt.LeaseTTL)
	case MsgResult:
		if err := co.mergeResult(w, msg); err != nil {
			return err
		}
		// Accepted, duplicate and zombie results are acknowledged alike:
		// in every case the worker is done retransmitting this unit.
		if err := w.conn.Send(Msg{Type: MsgResultAck, Key: msg.Key, Epoch: msg.Epoch}); err != nil {
			return co.workerLost(w, now)
		}
	case MsgFail:
		return co.unitFailed(w, msg, now)
	}
	return nil
}

// mergeResult applies the late-result rule and completes the unit when the
// result is current.
func (co *Coordinator) mergeResult(w *workerState, msg Msg) error {
	if w.key == msg.Key {
		w.key = ""
	}
	idx, ok := co.idxByKey[msg.Key]
	if !ok || msg.Result == nil {
		return nil
	}
	if co.done[idx] {
		co.ledger.CountDuplicate()
		co.logLease("duplicate result discarded: %s epoch %d from %s", msg.Key, msg.Epoch, w.id)
		return nil
	}
	if msg.Epoch != co.ledger.LastEpoch(msg.Key) {
		co.ledger.CountZombieResult()
		co.logLease("zombie result rejected: %s epoch %d from %s (current %d)", msg.Key, msg.Epoch, w.id, co.ledger.LastEpoch(msg.Key))
		return nil
	}
	res := *msg.Result
	co.results[idx] = res
	co.done[idx] = true
	co.remaining--
	co.ledger.Release(msg.Key)
	co.dropFromQueue(idx)
	if err := co.ck.Complete(msg.Key, robust.CampaignCell{HV: res.HV, ADRS: res.ADRS, Runs: res.Runs}); err != nil {
		return err
	}
	co.logLease("result merged: %s epoch %d from %s", msg.Key, msg.Epoch, w.id)
	return nil
}

// unitFailed handles a worker's fail report: breaker refusals park and
// requeue (with the requeue delay), anything else aborts the campaign.
func (co *Coordinator) unitFailed(w *workerState, msg Msg, now time.Time) error {
	if w.key == msg.Key {
		w.key = ""
	}
	idx, ok := co.idxByKey[msg.Key]
	if !ok || co.done[idx] {
		return nil
	}
	if !msg.Parked {
		return fmt.Errorf("shard: unit %s failed on %s: %s", msg.Key, w.id, msg.Error)
	}
	if msg.Epoch == co.ledger.LastEpoch(msg.Key) {
		co.ledger.Release(msg.Key)
	}
	if err := co.requeue(msg.Key, now, co.opt.RequeueDelay); err != nil {
		return err
	}
	co.logLease("unit %s parked by %s (breaker open); requeued", msg.Key, w.id)
	return nil
}

// workerLost marks a worker dead and reclaims its lease immediately — the
// connection can deliver no result, so waiting out the TTL buys nothing.
func (co *Coordinator) workerLost(w *workerState, now time.Time) error {
	if !w.alive {
		return nil
	}
	w.alive = false
	if w.key == "" {
		return nil
	}
	key := w.key
	w.key = ""
	if _, holder, ok := co.ledger.Current(key); ok && holder == w.id {
		co.ledger.ReclaimLost(key)
		if err := co.requeue(key, now, 0); err != nil {
			return err
		}
		co.logLease("worker %s lost; unit %s parked and requeued", w.id, key)
	}
	return nil
}

// dropFromQueue removes idx from the pending queue (a late-but-current
// result can complete a unit that expiry already requeued).
func (co *Coordinator) dropFromQueue(idx int) {
	for i, q := range co.queue {
		if q == idx {
			co.queue = append(co.queue[:i], co.queue[i+1:]...)
			break
		}
	}
	delete(co.notBefore, idx)
}

func (co *Coordinator) workerFor(c Conn) *workerState {
	for _, w := range co.workers {
		if w.conn == c {
			return w
		}
	}
	return nil
}

func (co *Coordinator) workerIndex(w *workerState) int {
	for i, ws := range co.workers {
		if ws == w {
			return i
		}
	}
	return -1
}

// shutdownWorkers broadcasts shutdown to every live worker, then closes
// every connection: the close unblocks the reader goroutines still parked
// in Recv, so Run leaves no goroutine behind even when a worker never
// acknowledges the shutdown.
func (co *Coordinator) shutdownWorkers() {
	for _, w := range co.workers {
		if w.alive {
			_ = w.conn.Send(Msg{Type: MsgShutdown})
		}
	}
	for _, w := range co.workers {
		_ = w.conn.Close()
	}
}

// asDeposed recognises a fenced checkpoint write — a standby adopted the
// campaign out from under this coordinator — and labels the abort as a
// deposition, logging it as a lease event. Everything else passes through.
func (co *Coordinator) asDeposed(err error) error {
	if !errors.Is(err, robust.ErrFenced) {
		return err
	}
	co.logLease("deposed: fenced checkpoint write rejected, standing down: %v", err)
	return fmt.Errorf("%w: %v", ErrDeposed, err)
}

// logLease records one lease-machinery transition in the failure log.
func (co *Coordinator) logLease(format string, args ...any) {
	co.opt.Log.Record(robust.Event{
		Index:   -1,
		Attempt: -1,
		Kind:    robust.KindLease,
		Err:     fmt.Sprintf(format, args...),
	})
}
