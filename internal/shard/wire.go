// Package shard distributes eval.Campaign work units across OS processes.
//
// A coordinator enumerates the campaign's (space × method × seed) units and
// grants time-bounded leases over a line-delimited JSON protocol; workers
// run one unit at a time through the existing resilient evaluator, stream
// each fresh observation back as it is paid for, and ship the unit's scored
// result plus serialised RNG end state for merge into the single
// CampaignCheckpoint. Worker death, heartbeat loss and lease expiry all
// reclaim the unit through the campaign's park-and-requeue path;
// renew/reclaim races are resolved by monotonically increasing lease
// epochs, so a zombie worker's late result is detected and discarded.
//
// Because every unit's random stream is derived from (seed, unit key) and
// observations merge idempotently, the merged checkpoint and the assembled
// table are byte-identical to a one-process run at any worker count and
// under any kill schedule: worker death stretches wall-clock time, never
// results.
package shard

import (
	"ppatuner/internal/eval"
	"ppatuner/internal/robust"
)

// MsgType tags one protocol message.
type MsgType string

const (
	// MsgHello introduces a worker (worker → coordinator): Worker names it.
	// A reconnecting worker also carries Key and Epoch — the lease it
	// believes it still holds — and the coordinator re-attaches it when the
	// ledger agrees, so the unit is neither double-granted nor forfeited.
	MsgHello MsgType = "hello"
	// MsgWelcome answers a hello (coordinator → worker): Generation is the
	// coordinator's checkpoint-fencing generation, so a worker knows which
	// incarnation of the control plane it is speaking to.
	MsgWelcome MsgType = "welcome"
	// MsgGrant leases a unit to a worker (coordinator → worker): Key, Epoch,
	// Unit, LeaseMillis, the RNG state to start from and the observations to
	// replay.
	MsgGrant MsgType = "grant"
	// MsgObs streams one fresh observation (worker → coordinator): Key,
	// Epoch, Obs.
	MsgObs MsgType = "obs"
	// MsgObsAck acknowledges a merged (or knowingly discarded) observation
	// (coordinator → worker): Key, Index. A reconnecting worker re-streams
	// only unacknowledged observations; the index-deduplicated merge makes
	// any overlap idempotent.
	MsgObsAck MsgType = "obs_ack"
	// MsgResultAck acknowledges a handled result (coordinator → worker):
	// Key, Epoch. Receipt clears the worker's retransmit buffer for the
	// unit.
	MsgResultAck MsgType = "result_ack"
	// MsgHeartbeat renews a lease (worker → coordinator): Key, Epoch.
	MsgHeartbeat MsgType = "heartbeat"
	// MsgResult completes a unit (worker → coordinator): Key, Epoch, Result,
	// RandEnd.
	MsgResult MsgType = "result"
	// MsgFail reports a unit failure (worker → coordinator): Key, Epoch,
	// Error; Parked marks a breaker refusal (park and requeue, don't abort).
	MsgFail MsgType = "fail"
	// MsgShutdown tells a worker to exit (coordinator → worker).
	MsgShutdown MsgType = "shutdown"
)

// Msg is the single wire envelope; which fields are set depends on Type.
// One JSON object per line, no framing beyond the newline.
type Msg struct {
	Type        MsgType              `json:"type"`
	Worker      string               `json:"worker,omitempty"`
	Key         string               `json:"key,omitempty"`
	Epoch       uint64               `json:"epoch,omitempty"`
	Unit        *eval.UnitSpec       `json:"unit,omitempty"`
	LeaseMillis int64                `json:"lease_millis,omitempty"`
	RandState   []byte               `json:"rand_state,omitempty"`
	Replay      []robust.Observation `json:"replay,omitempty"`
	Obs         *robust.Observation  `json:"obs,omitempty"`
	Result      *eval.UnitResult     `json:"result,omitempty"`
	RandEnd     []byte               `json:"rand_end,omitempty"`
	Error       string               `json:"error,omitempty"`
	Parked      bool                 `json:"parked,omitempty"`
	// Generation is the coordinator's checkpoint-fencing generation
	// (welcome messages).
	Generation uint64 `json:"generation,omitempty"`
	// Index names the acknowledged observation (obs_ack messages). The
	// zero value means pool index 0 — JSON omits it, and the zero-value
	// default on decode round-trips it correctly.
	Index int `json:"index,omitempty"`
}

// Conn is one coordinator↔worker message stream. Send must be safe for
// concurrent use (a worker heartbeats while its evaluation streams
// observations); Recv is called from a single goroutine per side. Closing
// unblocks a pending Recv with an error.
type Conn interface {
	Send(Msg) error
	Recv() (Msg, error)
	Close() error
}
