package shard

import (
	"testing"
	"time"
)

func TestLedgerEpochsMonotonic(t *testing.T) {
	l := NewLedger()
	t0 := time.Unix(0, 0)
	e1 := l.Grant("u", "a", t0, 10*time.Second)
	if e1 != 1 {
		t.Fatalf("first epoch = %d, want 1", e1)
	}
	l.Reclaim("u")
	e2 := l.Grant("u", "b", t0, 10*time.Second)
	if e2 != 2 {
		t.Fatalf("epoch after reclaim = %d, want 2", e2)
	}
	if l.LastEpoch("u") != 2 {
		t.Fatalf("LastEpoch = %d, want 2", l.LastEpoch("u"))
	}
	l.Release("u")
	if l.LastEpoch("u") != 2 {
		t.Fatal("Release must keep the epoch high-water mark")
	}
	if e3 := l.Grant("u", "c", t0, 10*time.Second); e3 != 3 {
		t.Fatalf("epoch after release = %d, want 3", e3)
	}
}

func TestLedgerRestoreRaisesHighWaterMark(t *testing.T) {
	l := NewLedger()
	l.Restore("u", 7)
	l.Restore("u", 3) // never lowers
	if e := l.Grant("u", "a", time.Unix(0, 0), time.Second); e != 8 {
		t.Fatalf("epoch after restore = %d, want 8", e)
	}
}

func TestLedgerRenew(t *testing.T) {
	l := NewLedger()
	t0 := time.Unix(100, 0)
	e := l.Grant("u", "a", t0, 10*time.Second)
	if !l.Renew("u", e, t0.Add(8*time.Second), 10*time.Second) {
		t.Fatal("current-epoch renew should succeed")
	}
	// Renewed: no expiry at t0+15s (deadline moved to t0+18s).
	if keys := l.Expired(t0.Add(15 * time.Second)); len(keys) != 0 {
		t.Fatalf("expired after renew = %v", keys)
	}
	if keys := l.Expired(t0.Add(18 * time.Second)); len(keys) != 1 || keys[0] != "u" {
		t.Fatalf("expired at deadline = %v", keys)
	}
	// Stale-epoch renew is ignored and counted.
	if l.Renew("u", e+1, t0, 10*time.Second) {
		t.Fatal("stale renew should fail")
	}
	l.Reclaim("u")
	if l.Renew("u", e, t0, 10*time.Second) {
		t.Fatal("renew of reclaimed lease should fail")
	}
	st := l.Stats()
	if st.Renewed != 1 || st.StaleHeartbeats != 2 || st.Expired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLedgerExpiredSorted(t *testing.T) {
	l := NewLedger()
	t0 := time.Unix(0, 0)
	l.Grant("b", "w", t0, time.Second)
	l.Grant("a", "w", t0, time.Second)
	l.Grant("c", "w", t0, time.Hour)
	keys := l.Expired(t0.Add(2 * time.Second))
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("expired = %v, want [a b]", keys)
	}
	if at, ok := l.NextDeadline(); !ok || !at.Equal(t0.Add(time.Second)) {
		t.Fatalf("NextDeadline = %v, %v", at, ok)
	}
}

func TestLedgerHoldings(t *testing.T) {
	l := NewLedger()
	t0 := time.Unix(0, 0)
	l.Grant("u2", "a", t0, time.Second)
	l.Grant("u1", "a", t0, time.Second)
	l.Grant("u3", "b", t0, time.Second)
	if h := l.Holdings("a"); len(h) != 2 || h[0] != "u1" || h[1] != "u2" {
		t.Fatalf("Holdings(a) = %v", h)
	}
	if _, holder, ok := l.Current("u3"); !ok || holder != "b" {
		t.Fatalf("Current(u3) holder = %q, %v", holder, ok)
	}
	l.ReclaimLost("u3")
	if _, _, ok := l.Current("u3"); ok {
		t.Fatal("u3 should be reclaimed")
	}
	if l.Stats().WorkersLost != 1 {
		t.Fatalf("WorkersLost = %d", l.Stats().WorkersLost)
	}
}

func TestLedgerRestoreActiveAdoptsLease(t *testing.T) {
	l := NewLedger()
	t0 := time.Unix(100, 0)
	l.RestoreActive("u1", 4, "w2", t0, 30*time.Second)

	// The adopted lease is current at the recorded epoch and holder, so
	// the surviving worker's re-hello and eventual result pass the
	// current-epoch check unchanged.
	epoch, holder, ok := l.Current("u1")
	if !ok || epoch != 4 || holder != "w2" {
		t.Fatalf("Current = (%d, %q, %v), want (4, w2, true)", epoch, holder, ok)
	}
	if at, ok := l.NextDeadline(); !ok || !at.Equal(t0.Add(30*time.Second)) {
		t.Fatalf("deadline = (%v, %v), want re-armed TTL from adoption", at, ok)
	}
	if st := l.Stats(); st.Adopted != 1 {
		t.Fatalf("stats = %+v, want Adopted 1", st)
	}

	// Epoch high-water restored too: if the worker never resurfaces, the
	// TTL expires and the re-grant advances past the adopted epoch.
	if got := l.Expired(t0.Add(31 * time.Second)); len(got) != 1 || got[0] != "u1" {
		t.Fatalf("Expired = %v, want [u1]", got)
	}
	l.Reclaim("u1")
	if e := l.Grant("u1", "w3", t0.Add(32*time.Second), 30*time.Second); e != 5 {
		t.Fatalf("re-grant epoch = %d, want 5 (past the adopted 4)", e)
	}
}
