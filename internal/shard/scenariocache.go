package shard

import (
	"sync"

	"ppatuner/internal/eval"
)

// scenEntry is one cache slot; once ensures a scenario builds exactly once
// even with concurrent resolvers.
type scenEntry struct {
	once sync.Once
	sc   *eval.Scenario
	err  error
}

// ScenarioCache memoises scenario resolution across RunWorker sessions by
// the scenario identity carried in UnitSpec.Scenario. Building a scenario
// regenerates its benchmark datasets (~30s of synthesis and characterisation
// per scenario), which RunWorker already avoids repeating *within* one
// session; this cache extends that across sessions, so a worker that
// rejoins after a coordinator fail-over — or serves several campaigns
// under -rejoin — pays the regeneration exactly once per scenario for the
// life of the process.
type ScenarioCache struct {
	resolve func(name string) (*eval.Scenario, error)
	mu      sync.Mutex
	entries map[string]*scenEntry
}

// NewScenarioCache wraps resolve (nil defaults to eval.StandardScenario)
// in a process-lifetime cache. Pass the cache's Resolve as
// WorkerOptions.Scenario.
func NewScenarioCache(resolve func(name string) (*eval.Scenario, error)) *ScenarioCache {
	if resolve == nil {
		resolve = eval.StandardScenario
	}
	return &ScenarioCache{resolve: resolve, entries: map[string]*scenEntry{}}
}

// Resolve returns the cached scenario, building it on first use. Failures
// are not cached: the entry is evicted so a later attempt retries (the
// waiters of the failed round all see the error).
func (c *ScenarioCache) Resolve(name string) (*eval.Scenario, error) {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		e = &scenEntry{}
		c.entries[name] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.sc, e.err = c.resolve(name) })
	if e.err != nil {
		c.mu.Lock()
		if c.entries[name] == e {
			delete(c.entries, name)
		}
		c.mu.Unlock()
		return nil, e.err
	}
	return e.sc, nil
}
