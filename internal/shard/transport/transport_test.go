package transport

import (
	"context"
	"io"
	"net"
	"testing"
	"time"

	"ppatuner/internal/clock"
	"ppatuner/internal/eval"
	"ppatuner/internal/pdtool/chaos"
	"ppatuner/internal/robust"
	"ppatuner/internal/shard"
)

func sampleMsg() shard.Msg {
	return shard.Msg{
		Type:        shard.MsgGrant,
		Key:         "Scenario|space|M|seed=1",
		Epoch:       3,
		Unit:        &eval.UnitSpec{Scenario: "S", Space: "sp", Method: eval.PPATuner, Seed: 1},
		LeaseMillis: 30000,
		RandState:   []byte{1, 2, 3},
		Replay:      []robust.Observation{{Index: 0, QoR: []float64{1, 2, 3}}},
	}
}

func TestStreamRoundTrip(t *testing.T) {
	r1, w1 := io.Pipe()
	r2, w2 := io.Pipe()
	a := Stream(r1, w2)
	b := Stream(r2, w1)
	want := sampleMsg()
	go func() {
		if err := a.Send(want); err != nil {
			t.Error(err)
		}
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.Key != want.Key || got.Epoch != want.Epoch ||
		got.Unit == nil || *got.Unit != *want.Unit ||
		len(got.Replay) != 1 || got.Replay[0].Index != 0 || len(got.Replay[0].QoR) != 3 {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	a.Close()
	if _, err := b.Recv(); err == nil {
		t.Fatal("recv after peer close should fail")
	}
}

func TestLoopbackDrainsInFlightAfterClose(t *testing.T) {
	a, b := Loopback()
	if err := a.Send(shard.Msg{Type: shard.MsgResult, Key: "u"}); err != nil {
		t.Fatal(err)
	}
	// A "kill" just after a result must not retroactively unsend it.
	a.Close()
	m, err := b.Recv()
	if err != nil || m.Key != "u" {
		t.Fatalf("in-flight message lost after close: %+v, %v", m, err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("drained conn should report EOF, got %v", err)
	}
	if err := b.Send(shard.Msg{Type: shard.MsgHeartbeat}); err != io.ErrClosedPipe {
		t.Fatalf("send on closed conn = %v, want ErrClosedPipe", err)
	}
}

func TestDialListen(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	conns, closeL, addr, err := Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeL()
	if _, _, err := net.SplitHostPort(addr); err != nil {
		t.Fatalf("bad listener addr %q: %v", addr, err)
	}
	worker, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()
	coord := <-conns
	defer coord.Close()
	if err := worker.Send(shard.Msg{Type: shard.MsgHello, Worker: "w"}); err != nil {
		t.Fatal(err)
	}
	m, err := coord.Recv()
	if err != nil || m.Type != shard.MsgHello || m.Worker != "w" {
		t.Fatalf("hello over TCP = %+v, %v", m, err)
	}
}

func TestFaultDropsHeartbeatsAndDuplicatesResults(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	workerSide, coordRaw := Loopback()
	coord := Fault(coordRaw, chaos.ProcFaults{
		DropHeartbeats:   []chaos.Window{{Start: 0, End: time.Hour}},
		DuplicateResults: true,
	}, fc)

	// Heartbeats inside the drop window vanish; the next message through is
	// the result, delivered twice.
	for i := 0; i < 3; i++ {
		if err := workerSide.Send(shard.Msg{Type: shard.MsgHeartbeat, Epoch: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := workerSide.Send(shard.Msg{Type: shard.MsgResult, Key: "u", Epoch: 9}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m, err := coord.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != shard.MsgResult || m.Key != "u" || m.Epoch != 9 {
			t.Fatalf("delivery %d = %+v, want the result", i, m)
		}
	}

	// Outside the window heartbeats flow again.
	fc.Advance(2 * time.Hour)
	if err := workerSide.Send(shard.Msg{Type: shard.MsgHeartbeat, Epoch: 7}); err != nil {
		t.Fatal(err)
	}
	m, err := coord.Recv()
	if err != nil || m.Type != shard.MsgHeartbeat || m.Epoch != 7 {
		t.Fatalf("post-window heartbeat = %+v, %v", m, err)
	}
}

// TestFaultCloseDoesNotUnsendResults pins the close semantics of the Fault
// wrapper over a Loopback pair: a result sent just before the worker dies
// must still arrive — delayed, and twice when duplication is on — before the
// close surfaces as EOF. Neither layer may retroactively unsend it.
func TestFaultCloseDoesNotUnsendResults(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	workerSide, coordRaw := Loopback()
	coord := Fault(coordRaw, chaos.ProcFaults{
		ResultDelay:      30 * time.Second,
		DuplicateResults: true,
	}, fc)

	// The worker reports a result and is killed immediately after.
	if err := workerSide.Send(shard.Msg{Type: shard.MsgResult, Key: "u", Epoch: 4}); err != nil {
		t.Fatal(err)
	}
	workerSide.Close()

	// First delivery: the in-flight frame survives the close and still pays
	// the configured delay on the virtual clock.
	m, err := coord.Recv()
	if err != nil || m.Type != shard.MsgResult || m.Key != "u" || m.Epoch != 4 {
		t.Fatalf("first delivery after close = %+v, %v", m, err)
	}
	if got := fc.Now(); !got.Equal(time.Unix(30, 0)) {
		t.Fatalf("result delay not applied across close: virtual now = %v", got)
	}

	// Second delivery: the duplicate queued inside the fault wrapper must not
	// be eaten by the dead underlying conn.
	m, err = coord.Recv()
	if err != nil || m.Key != "u" || m.Epoch != 4 {
		t.Fatalf("duplicate lost after close: %+v, %v", m, err)
	}

	// Only once both deliveries have drained does the close surface.
	if _, err := coord.Recv(); err != io.EOF {
		t.Fatalf("drained faulted conn should report EOF, got %v", err)
	}

	// Close forwards through the wrapper and the pair stays consistent.
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if err := coord.Send(shard.Msg{Type: shard.MsgShutdown}); err != io.ErrClosedPipe {
		t.Fatalf("send on closed faulted conn = %v, want ErrClosedPipe", err)
	}
}

// TestFaultDuplicateSurvivesMidStreamClose closes the worker between the
// original delivery and the duplicate: the pending copy inside the wrapper
// must still be handed out before EOF.
func TestFaultDuplicateSurvivesMidStreamClose(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	workerSide, coordRaw := Loopback()
	coord := Fault(coordRaw, chaos.ProcFaults{DuplicateResults: true}, fc)

	if err := workerSide.Send(shard.Msg{Type: shard.MsgResult, Key: "v"}); err != nil {
		t.Fatal(err)
	}
	m, err := coord.Recv()
	if err != nil || m.Key != "v" {
		t.Fatalf("original delivery = %+v, %v", m, err)
	}

	workerSide.Close()

	m, err = coord.Recv()
	if err != nil || m.Key != "v" {
		t.Fatalf("duplicate after mid-stream close = %+v, %v", m, err)
	}
	if _, err := coord.Recv(); err != io.EOF {
		t.Fatalf("want EOF after duplicate drained, got %v", err)
	}
}

func TestFaultDelaysResultsOnClock(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	workerSide, coordRaw := Loopback()
	coord := Fault(coordRaw, chaos.ProcFaults{ResultDelay: 42 * time.Second}, fc)
	if err := workerSide.Send(shard.Msg{Type: shard.MsgResult, Key: "u"}); err != nil {
		t.Fatal(err)
	}
	before := fc.Sleeps()
	if _, err := coord.Recv(); err != nil {
		t.Fatal(err)
	}
	if fc.Sleeps() != before+1 {
		t.Fatalf("result delivery should sleep once on the fault clock, sleeps %d -> %d", before, fc.Sleeps())
	}
	if got := fc.Now(); !got.Equal(time.Unix(42, 0)) {
		t.Fatalf("virtual time after delayed delivery = %v", got)
	}
}
