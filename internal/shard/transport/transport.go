// Package transport carries the shard wire protocol over real channels:
// stdio pipes for locally spawned workers, TCP for remote ones, in-memory
// pairs for tests, plus a fault-injecting wrapper that replays
// chaos.ProcFaults scenarios (heartbeat loss, delayed and duplicated
// delivery) against a coordinator deterministically. It is the shard
// subsystem's only non-deterministic layer — everything above it is pure
// bookkeeping on an injected clock.
package transport

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"

	"ppatuner/internal/clock"
	"ppatuner/internal/pdtool/chaos"
	"ppatuner/internal/shard"
)

// streamConn frames Msgs as line-delimited JSON over a byte stream.
type streamConn struct {
	sendMu  sync.Mutex
	enc     *json.Encoder
	dec     *json.Decoder
	closers []io.Closer
}

// Stream builds a Conn over a read and a write stream (each optionally an
// io.Closer; Close closes whichever are).
func Stream(r io.Reader, w io.Writer) shard.Conn {
	c := &streamConn{enc: json.NewEncoder(w), dec: json.NewDecoder(r)}
	if rc, ok := r.(io.Closer); ok {
		c.closers = append(c.closers, rc)
	}
	if wc, ok := w.(io.Closer); ok && any(w) != any(r) {
		c.closers = append(c.closers, wc)
	}
	return c
}

func (c *streamConn) Send(m shard.Msg) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	// Holding sendMu across the encode is this mutex's entire purpose:
	// concurrent Sends must serialise whole frames or the JSON lines
	// interleave and corrupt the stream. Nothing else ever takes sendMu, so
	// the blocked party is only ever another Send on the same conn.
	//ppalint:allow lockio sendMu exists to serialise whole-frame writes; no other path takes it
	return c.enc.Encode(&m)
}

func (c *streamConn) Recv() (shard.Msg, error) {
	var m shard.Msg
	if err := c.dec.Decode(&m); err != nil {
		return shard.Msg{}, err
	}
	return m, nil
}

func (c *streamConn) Close() error {
	var first error
	for _, cl := range c.closers {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// chanConn is one side of an in-memory pair.
type chanConn struct {
	send   chan<- shard.Msg
	recv   <-chan shard.Msg
	done   chan struct{}
	closed *sync.Once
}

const loopbackDepth = 256

// Loopback builds an in-memory connection pair: what one side Sends, the
// other Recvs. Closing either side unblocks both (Recv returns io.EOF), so
// tests sever a "worker process" with one call.
func Loopback() (shard.Conn, shard.Conn) {
	ab := make(chan shard.Msg, loopbackDepth)
	ba := make(chan shard.Msg, loopbackDepth)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &chanConn{send: ab, recv: ba, done: done, closed: once}
	b := &chanConn{send: ba, recv: ab, done: done, closed: once}
	return a, b
}

func (c *chanConn) Send(m shard.Msg) error {
	// Check done first: with buffer space free, a plain two-way select would
	// pick either ready case at random and let a Send slip through after Close.
	select {
	case <-c.done:
		return io.ErrClosedPipe
	default:
	}
	select {
	case <-c.done:
		return io.ErrClosedPipe
	case c.send <- m:
		return nil
	}
}

func (c *chanConn) Recv() (shard.Msg, error) {
	// Drain messages already in flight even after close, so a kill delivered
	// "just after" a result does not retroactively unsend it.
	select {
	case m := <-c.recv:
		return m, nil
	default:
	}
	select {
	case <-c.done:
		return shard.Msg{}, io.EOF
	case m := <-c.recv:
		return m, nil
	}
}

func (c *chanConn) Close() error {
	c.closed.Do(func() { close(c.done) })
	return nil
}

// Dial connects to a coordinator's TCP listener.
func Dial(addr string) (shard.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return Stream(conn, conn), nil
}

// Listen accepts worker connections on addr, forwarding each as a Conn on
// the returned channel until ctx is done or the listener fails. The
// returned close function stops the listener.
func Listen(ctx context.Context, addr string) (<-chan shard.Conn, func() error, string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, "", fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	conns := make(chan shard.Conn)
	go func() {
		defer close(conns)
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			select {
			case conns <- Stream(c, c):
			case <-ctx.Done():
				c.Close()
				return
			}
		}
	}()
	return conns, l.Close, l.Addr().String(), nil
}

// Spawn starts a worker subprocess speaking the protocol on its
// stdin/stdout (stderr passes through for diagnostics) and returns the
// coordinator-side Conn. The caller owns the process: Wait it after the
// campaign, or kill it to simulate worker death — its lease is reclaimed
// like any other.
func Spawn(bin string, args ...string) (shard.Conn, *exec.Cmd, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, nil, fmt.Errorf("transport: spawn %s: %w", bin, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, fmt.Errorf("transport: spawn %s: %w", bin, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, fmt.Errorf("transport: spawn %s: %w", bin, err)
	}
	return Stream(stdout, stdin), cmd, nil
}

// faultConn wraps the coordinator side of a Conn and injects delivery
// faults on the virtual timeline: heartbeats vanish inside the configured
// windows, results arrive late and (optionally) twice. Send passes through
// untouched — the faults model the worker→coordinator path, where the
// interesting races live.
type faultConn struct {
	shard.Conn
	faults  chaos.ProcFaults
	clk     clock.Clock
	start   time.Time
	pending []shard.Msg
}

// Fault wraps conn with delivery faults driven by clk's virtual timeline
// (elapsed time is measured from the moment Fault is called).
func Fault(conn shard.Conn, faults chaos.ProcFaults, clk clock.Clock) shard.Conn {
	return &faultConn{Conn: conn, faults: faults, clk: clk, start: clk.Now()}
}

func (c *faultConn) Recv() (shard.Msg, error) {
	for {
		if len(c.pending) > 0 {
			m := c.pending[0]
			c.pending = c.pending[1:]
			return m, nil
		}
		m, err := c.Conn.Recv()
		if err != nil {
			return shard.Msg{}, err
		}
		switch m.Type {
		case shard.MsgHeartbeat:
			if c.faults.DropHeartbeat(c.clk.Now().Sub(c.start)) {
				continue
			}
		case shard.MsgResult:
			if d := c.faults.ResultDelay; d > 0 {
				_ = c.clk.Sleep(context.Background(), d)
			}
			if c.faults.DuplicateResults {
				c.pending = append(c.pending, m)
			}
		}
		return m, nil
	}
}
