package shard_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppatuner/internal/clock"
	"ppatuner/internal/eval"
	"ppatuner/internal/pdtool/chaos"
	"ppatuner/internal/robust"
	"ppatuner/internal/shard"
	"ppatuner/internal/shard/transport"
)

// oneUnitCampaign builds a single-unit campaign over the given checkpoint.
func oneUnitCampaign(t *testing.T, ck *robust.CampaignCheckpoint) *eval.Campaign {
	t.Helper()
	return &eval.Campaign{
		Scenario: miniScenario(t), Seeds: []int64{1},
		Spaces: eval.Spaces()[:1], Methods: []eval.Method{eval.DAC19},
		Checkpoint: ck,
	}
}

// oneUnitReference runs the single-unit campaign single-process against a
// checkpoint file and returns the table text and final checkpoint bytes.
func oneUnitReference(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.json")
	ck, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	table, err := oneUnitCampaign(t, ck).Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return table.Format(), data
}

// TestSplitBrainWriterDeposed is the protocol-level fencing proof: a
// standby adopts the checkpoint while the primary still holds a granted
// unit; the primary's next merge is rejected by the fence, it stands down
// with ErrDeposed, and the checkpoint bytes are untouched. The standby
// then adopts the lease, re-attaches the surviving worker, and finishes
// the campaign to results identical to a single-process run.
func TestSplitBrainWriterDeposed(t *testing.T) {
	wantTable, wantCk := oneUnitReference(t)

	path := filepath.Join(t.TempDir(), "fo.json")
	ck1, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	gen1, err := ck1.Adopt()
	if err != nil {
		t.Fatal(err)
	}
	co1, err := shard.New(shard.Options{Campaign: oneUnitCampaign(t, ck1), LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	conns1 := make(chan shard.Conn, 1)
	aCoord, a := transport.Loopback()
	conns1 <- aCoord
	primaryDone := make(chan error, 1)
	go func() {
		_, err := co1.Run(ctx, conns1)
		primaryDone <- err
	}()

	mustSend(t, a, shard.Msg{Type: shard.MsgHello, Worker: "a"})
	w := mustRecv(t, a, shard.MsgWelcome)
	if w.Generation != gen1 {
		t.Fatalf("welcome generation = %d, want %d", w.Generation, gen1)
	}
	g := mustRecv(t, a, shard.MsgGrant)

	// The standby adopts mid-unit: from here every write by the old
	// primary must bounce.
	ck2, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := ck2.Adopt()
	if err != nil {
		t.Fatal(err)
	}
	if gen2 <= gen1 {
		t.Fatalf("standby generation %d not above primary's %d", gen2, gen1)
	}
	fenced, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The worker (oblivious to the takeover) reports its result to the old
	// primary. The merge's checkpoint write is fenced; the primary stands
	// down instead of applying it.
	res, end, err := eval.ExecuteUnit(miniScenario(t), eval.Spaces()[0], *g.Unit, g.RandState, g.Replay, eval.RunOpts{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, a, shard.Msg{Type: shard.MsgResult, Key: g.Key, Epoch: g.Epoch, Result: &res, RandEnd: end})
	runErr := <-primaryDone
	if !errors.Is(runErr, shard.ErrDeposed) {
		t.Fatalf("deposed primary returned %v, want ErrDeposed", runErr)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(fenced) {
		t.Fatalf("deposed primary's write reached the checkpoint:\n%s\n--- want ---\n%s", after, fenced)
	}

	// The standby adopts the persisted lease and the worker re-attaches
	// with its held (key, epoch): the unit is never double-granted, and
	// the same result now lands under the current epoch.
	co2, err := shard.New(shard.Options{Campaign: oneUnitCampaign(t, ck2), LeaseTTL: time.Minute, AdoptLeases: true})
	if err != nil {
		t.Fatal(err)
	}
	conns2 := make(chan shard.Conn, 1)
	a2Coord, a2 := transport.Loopback()
	conns2 <- a2Coord
	standbyDone := make(chan error, 1)
	var table *eval.Table
	go func() {
		tbl, err := co2.Run(ctx, conns2)
		table = tbl
		standbyDone <- err
	}()
	mustSend(t, a2, shard.Msg{Type: shard.MsgHello, Worker: "a", Key: g.Key, Epoch: g.Epoch})
	if w := mustRecv(t, a2, shard.MsgWelcome); w.Generation != gen2 {
		t.Fatalf("standby welcome generation = %d, want %d", w.Generation, gen2)
	}
	mustSend(t, a2, shard.Msg{Type: shard.MsgResult, Key: g.Key, Epoch: g.Epoch, Result: &res, RandEnd: end})
	if err := <-standbyDone; err != nil {
		t.Fatal(err)
	}
	st := co2.Stats()
	if st.Adopted != 1 {
		t.Fatalf("standby stats = %+v, want 1 adopted lease", st)
	}
	if st.Granted != 0 {
		t.Fatalf("standby stats = %+v, want 0 grants (the unit was re-attached, not re-granted)", st)
	}
	if got := table.Format(); got != wantTable {
		t.Fatalf("post-takeover table differs:\n%s\n--- want ---\n%s", got, wantTable)
	}
	if err := ck2.Retire(); err != nil {
		t.Fatal(err)
	}
	gotCk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCk) != string(wantCk) {
		t.Fatalf("post-takeover checkpoint differs:\n%s\n--- want ---\n%s", gotCk, wantCk)
	}
}

// TestDelayedResultAfterTakeoverFenced delivers the worker's result to the
// OLD primary late — through transport.Fault's result delay — so it
// arrives after the standby has adopted. The stale delivery must depose
// the primary, not corrupt the campaign.
func TestDelayedResultAfterTakeoverFenced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fo.json")
	ck1, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ck1.Adopt(); err != nil {
		t.Fatal(err)
	}
	co1, err := shard.New(shard.Options{Campaign: oneUnitCampaign(t, ck1), LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The primary's side of the conn delays result delivery by a second of
	// real time — long enough for the standby to adopt first.
	conns1 := make(chan shard.Conn, 1)
	aCoord, a := transport.Loopback()
	conns1 <- transport.Fault(aCoord, chaos.ProcFaults{ResultDelay: time.Second}, clock.Real())
	primaryDone := make(chan error, 1)
	go func() {
		_, err := co1.Run(ctx, conns1)
		primaryDone <- err
	}()

	mustSend(t, a, shard.Msg{Type: shard.MsgHello, Worker: "a"})
	g := mustRecv(t, a, shard.MsgGrant)
	res, end, err := eval.ExecuteUnit(miniScenario(t), eval.Spaces()[0], *g.Unit, g.RandState, g.Replay, eval.RunOpts{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Result enters the (slow) pipe first; adoption races it and wins —
	// the adopt is a couple of local file operations against a one-second
	// delivery delay.
	mustSend(t, a, shard.Msg{Type: shard.MsgResult, Key: g.Key, Epoch: g.Epoch, Result: &res, RandEnd: end})
	ck2, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ck2.Adopt(); err != nil {
		t.Fatal(err)
	}
	fenced, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	runErr := <-primaryDone
	if !errors.Is(runErr, shard.ErrDeposed) {
		t.Fatalf("primary processing a delayed result after takeover returned %v, want ErrDeposed", runErr)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(fenced) {
		t.Fatal("delayed result reached the checkpoint through a deposed primary")
	}
}

// foDialer routes worker dials to the live coordinator's conns channel.
// Until failover it also tracks the coordinator-side conns it minted, so
// the test can sever them all at once — the loopback equivalent of the
// primary being SIGKILLed (every TCP connection it held dies with it).
type foDialer struct {
	mu      sync.Mutex
	target  chan<- shard.Conn
	primary []shard.Conn
	obsSeen atomic.Int32
	enough  chan struct{}
	once    sync.Once
	want    int32
}

// obsWatch counts worker observations flowing coordinator-ward, so the
// test can time the kill for "mid-campaign, with progress streamed".
type obsWatch struct {
	shard.Conn
	d *foDialer
}

func (o *obsWatch) Recv() (shard.Msg, error) {
	m, err := o.Conn.Recv()
	if err == nil && m.Type == shard.MsgObs {
		if o.d.obsSeen.Add(1) >= o.d.want {
			o.d.once.Do(func() { close(o.d.enough) })
		}
	}
	return m, err
}

func (d *foDialer) dial() (shard.Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	coordSide, workerSide := transport.Loopback()
	watched := &obsWatch{Conn: coordSide, d: d}
	if d.primary != nil {
		d.primary = append(d.primary, watched)
	}
	select {
	case d.target <- watched:
		return workerSide, nil
	default:
		return nil, fmt.Errorf("coordinator connection backlog full")
	}
}

// failover atomically redirects future dials to the standby's channel and
// severs every primary-era connection.
func (d *foDialer) failover(standby chan<- shard.Conn) {
	d.mu.Lock()
	old := d.primary
	d.primary = nil
	d.target = standby
	d.mu.Unlock()
	for _, c := range old {
		_ = c.Close()
	}
}

// TestStandbyTakeoverCampaignIdentity is the mini-campaign fail-over
// proof: three reconnecting workers run a campaign under a primary that is
// "SIGKILLed" mid-flight (all its connections severed, no shutdown
// broadcast, its coordinator loop cancelled). The workers redial into a
// standby that adopts the checkpoint and the persisted leases, and the
// final table and checkpoint bytes are identical to an undisturbed
// single-process run.
func TestStandbyTakeoverCampaignIdentity(t *testing.T) {
	wantTable, wantCk := referenceRun(t)

	path := filepath.Join(t.TempDir(), "fo.json")
	ck1, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	gen1, err := ck1.Adopt()
	if err != nil {
		t.Fatal(err)
	}
	co1, err := shard.New(shard.Options{Campaign: miniCampaign2(t, ck1), LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	conns1 := make(chan shard.Conn, 16)
	d := &foDialer{target: conns1, primary: []shard.Conn{}, enough: make(chan struct{}), want: 5}

	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	primaryDone := make(chan error, 1)
	go func() {
		_, err := co1.Run(pctx, conns1)
		primaryDone <- err
	}()

	var wg sync.WaitGroup
	workerErrs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r, err := shard.Connect(ctx, shard.ReconnOptions{
				Dial:    d.dial,
				Backoff: shard.Backoff{Base: 20 * time.Millisecond, Cap: 200 * time.Millisecond, Salt: fmt.Sprintf("w%d", id)},
				MaxDown: time.Minute,
			})
			if err != nil {
				workerErrs <- fmt.Errorf("worker %d connect: %w", id, err)
				return
			}
			workerErrs <- shard.RunWorker(ctx, r, shard.WorkerOptions{
				ID:       fmt.Sprintf("w%d", id),
				Scenario: resolveMini(t),
			})
		}(i)
	}

	// Wait for real progress (observations streamed, leases held), then
	// kill the primary: sever its connections and cancel its loop without
	// any shutdown broadcast reaching a worker.
	select {
	case <-d.enough:
	case <-time.After(2 * time.Minute):
		t.Fatal("no observations flowed before the kill window")
	}
	conns2 := make(chan shard.Conn, 16)
	d.failover(conns2)
	pcancel()
	<-primaryDone // error is expected (cancelled or lost workers); the point is it stopped

	// The standby adopts checkpoint and leases, the workers' Reconns
	// redial into it, and the campaign completes.
	ck2, err := robust.LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := ck2.Adopt()
	if err != nil {
		t.Fatal(err)
	}
	if gen2 <= gen1 {
		t.Fatalf("standby generation %d not above primary's %d", gen2, gen1)
	}
	co2, err := shard.New(shard.Options{Campaign: miniCampaign2(t, ck2), LeaseTTL: 30 * time.Second, AdoptLeases: true})
	if err != nil {
		t.Fatal(err)
	}
	table, err := co2.Run(ctx, conns2)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(workerErrs)
	for err := range workerErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := table.Format(); got != wantTable {
		t.Fatalf("post-failover table differs:\n%s\n--- want ---\n%s", got, wantTable)
	}
	if err := ck2.Retire(); err != nil {
		t.Fatal(err)
	}
	gotCk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCk) != string(wantCk) {
		t.Fatalf("post-failover checkpoint differs:\n%s\n--- want ---\n%s", gotCk, wantCk)
	}
	if st := co2.Stats(); st.Adopted == 0 {
		t.Fatalf("standby stats = %+v, want adopted leases (the kill struck mid-unit)", st)
	}
}

// miniCampaign2 is miniCampaign with an injected checkpoint handle (the
// fail-over tests need two handles over one file).
func miniCampaign2(t *testing.T, ck *robust.CampaignCheckpoint) *eval.Campaign {
	t.Helper()
	return &eval.Campaign{
		Scenario: miniScenario(t),
		Seeds:    []int64{1, 2},
		Spaces:   eval.Spaces()[:1],
		Methods:  []eval.Method{eval.DAC19, eval.PPATuner},
		Checkpoint: ck,
	}
}
