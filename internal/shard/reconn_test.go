package shard

import (
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"ppatuner/internal/clock"
	"ppatuner/internal/eval"
	"ppatuner/internal/robust"
)

// scriptConn is a scripted in-memory Conn: sends are recorded (and fail
// once broken), receives drain a queue then fail.
type scriptConn struct {
	mu     sync.Mutex
	sent   []Msg
	inbox  []Msg
	broken bool
	closed bool
}

func (c *scriptConn) Send(m Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken || c.closed {
		return io.ErrClosedPipe
	}
	c.sent = append(c.sent, m)
	return nil
}

func (c *scriptConn) Recv() (Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.inbox) > 0 {
		m := c.inbox[0]
		c.inbox = c.inbox[1:]
		return m, nil
	}
	return Msg{}, io.EOF
}

func (c *scriptConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *scriptConn) breakNow() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
}

func (c *scriptConn) sentMsgs() []Msg {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Msg(nil), c.sent...)
}

// dialScript returns conns in order; when exhausted it fails.
func dialScript(conns ...*scriptConn) func() (Conn, error) {
	i := 0
	return func() (Conn, error) {
		if i >= len(conns) {
			return nil, errors.New("no more conns")
		}
		c := conns[i]
		i++
		return c, nil
	}
}

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Salt: "w1"}
	for attempt := 0; attempt < 12; attempt++ {
		d1 := b.Delay(attempt)
		d2 := b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: %v != %v — jitter must be deterministic", attempt, d1, d2)
		}
		full := 100 * time.Millisecond << uint(attempt)
		if full > time.Second || attempt > 10 {
			full = time.Second
		}
		if d1 < full/2 || d1 >= full {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, full/2, full)
		}
	}
	if (Backoff{Salt: "a"}).Delay(3) == (Backoff{Salt: "b"}).Delay(3) {
		t.Fatal("distinct salts produced identical jitter — fleet would redial in lockstep")
	}
}

func TestReconnResendsUnackedOnReconnect(t *testing.T) {
	c1 := &scriptConn{}
	c2 := &scriptConn{}
	r, err := Connect(context.Background(), ReconnOptions{
		Dial:    dialScript(c1, c2),
		Backoff: Backoff{Base: time.Millisecond, Cap: time.Millisecond},
		Clock:   clock.NewFake(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	hello := Msg{Type: MsgHello, Worker: "w1"}
	obs0 := Msg{Type: MsgObs, Key: "k", Epoch: 1, Obs: &robust.Observation{Index: 0}}
	obs1 := Msg{Type: MsgObs, Key: "k", Epoch: 1, Obs: &robust.Observation{Index: 1}}
	for _, m := range []Msg{hello, obs0, obs1} {
		if err := r.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	c1.breakNow()
	// The next send fails over. It is noted into the retransmit buffer
	// before the wire attempt, so the handshake on c2 re-introduces the
	// worker and re-streams all three observations in original order —
	// including the one whose send triggered the reconnect.
	if err := r.Send(Msg{Type: MsgObs, Key: "k", Epoch: 1, Obs: &robust.Observation{Index: 2}}); err != nil {
		t.Fatal(err)
	}
	got := c2.sentMsgs()
	if len(got) != 4 {
		t.Fatalf("handshake sent %d messages, want 4 (hello + 3 unacked): %+v", len(got), got)
	}
	if got[0].Type != MsgHello || got[0].Worker != "w1" {
		t.Fatalf("handshake did not lead with the hello: %+v", got[0])
	}
	for i, m := range got[1:] {
		if m.Type != MsgObs || m.Obs == nil || m.Obs.Index != i {
			t.Fatalf("backlog message %d = %+v, want obs index %d", i, m, i)
		}
	}
}

func TestReconnAcksTrimRetransmitBuffer(t *testing.T) {
	c1 := &scriptConn{inbox: []Msg{
		{Type: MsgWelcome, Generation: 7},
		{Type: MsgObsAck, Key: "k", Index: 0},
		{Type: MsgResultAck, Key: "k", Epoch: 1},
		{Type: MsgGrant, Key: "k2", Epoch: 2},
	}}
	r, err := Connect(context.Background(), ReconnOptions{
		Dial:  dialScript(c1),
		Clock: clock.NewFake(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Send(Msg{Type: MsgHello, Worker: "w"})
	_ = r.Send(Msg{Type: MsgObs, Key: "k", Epoch: 1, Obs: &robust.Observation{Index: 0}})
	_ = r.Send(Msg{Type: MsgObs, Key: "k", Epoch: 1, Obs: &robust.Observation{Index: 1}})
	_ = r.Send(Msg{Type: MsgResult, Key: "k", Epoch: 1})

	// Recv consumes welcome and both acks internally and surfaces only the
	// grant. The obs ack trims index 0; the result ack trims everything
	// left for the unit.
	m, err := r.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgGrant || m.Key != "k2" {
		t.Fatalf("Recv surfaced %+v, want the grant", m)
	}
	if g := r.Generation(); g != 7 {
		t.Fatalf("Generation() = %d, want 7 from the welcome", g)
	}
	r.mu.Lock()
	n, heldKey, heldEpoch := len(r.unacked), r.heldKey, r.heldEpoch
	r.mu.Unlock()
	if n != 0 {
		t.Fatalf("unacked buffer = %d entries after full ack, want 0", n)
	}
	if heldKey != "k2" || heldEpoch != 2 {
		t.Fatalf("held lease = (%q, %d), want (k2, 2) from the grant", heldKey, heldEpoch)
	}
}

func TestReconnRehandshakeNamesHeldLease(t *testing.T) {
	c1 := &scriptConn{inbox: []Msg{{Type: MsgGrant, Key: "unit-a", Epoch: 3}}}
	c2 := &scriptConn{inbox: []Msg{{Type: MsgShutdown}}}
	r, err := Connect(context.Background(), ReconnOptions{
		Dial:    dialScript(c1, c2),
		Backoff: Backoff{Base: time.Millisecond},
		Clock:   clock.NewFake(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Send(Msg{Type: MsgHello, Worker: "w"})
	if m, err := r.Recv(); err != nil || m.Type != MsgGrant {
		t.Fatalf("Recv = %+v, %v; want the grant", m, err)
	}
	// c1 dies (inbox empty → EOF); Recv reconnects through c2, whose
	// handshake hello must carry the held lease so the new coordinator
	// re-attaches instead of double-granting.
	if m, err := r.Recv(); err != nil || m.Type != MsgShutdown {
		t.Fatalf("Recv after reconnect = %+v, %v; want the shutdown from c2", m, err)
	}
	got := c2.sentMsgs()
	if len(got) == 0 || got[0].Type != MsgHello {
		t.Fatalf("no handshake hello on the replacement conn: %+v", got)
	}
	if got[0].Key != "unit-a" || got[0].Epoch != 3 || got[0].Worker != "w" {
		t.Fatalf("re-hello = %+v, want Worker=w Key=unit-a Epoch=3", got[0])
	}
}

func TestReconnGivesUpAfterMaxDown(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	dead := func() (Conn, error) { return nil, errors.New("refused") }
	_, err := Connect(context.Background(), ReconnOptions{
		Dial:    dead,
		Backoff: Backoff{Base: time.Second, Cap: time.Second},
		MaxDown: 5 * time.Second,
		Clock:   fc,
	})
	if err == nil {
		t.Fatal("Connect against a dead coordinator must eventually fail")
	}
	if fc.Now().Sub(time.Unix(0, 0)) < 5*time.Second {
		t.Fatalf("gave up after only %v of virtual downtime, want >= MaxDown", fc.Now().Sub(time.Unix(0, 0)))
	}
}

func TestScenarioCacheResolvesOncePerName(t *testing.T) {
	var mu sync.Mutex
	calls := map[string]int{}
	failFirst := true
	c := NewScenarioCache(func(name string) (*eval.Scenario, error) {
		mu.Lock()
		calls[name]++
		mu.Unlock()
		if name == "flaky" && failFirst {
			failFirst = false
			return nil, errors.New("transient resolution failure")
		}
		return &eval.Scenario{Name: name}, nil
	})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Resolve("mini"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if calls["mini"] != 1 {
		t.Fatalf("8 concurrent resolves built the scenario %d times, want 1", calls["mini"])
	}
	s1, _ := c.Resolve("mini")
	s2, _ := c.Resolve("mini")
	if s1 != s2 {
		t.Fatal("repeated resolves returned different scenario instances")
	}

	// Errors are not cached: the failed entry is evicted, the retry
	// rebuilds.
	if _, err := c.Resolve("flaky"); err == nil {
		t.Fatal("first flaky resolve should fail")
	}
	if s, err := c.Resolve("flaky"); err != nil || s == nil {
		t.Fatalf("retry after failure = (%v, %v), want success", s, err)
	}
	if calls["flaky"] != 2 {
		t.Fatalf("flaky resolved %d times, want 2 (failure then success)", calls["flaky"])
	}
}
