package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"ppatuner/internal/clock"
	"ppatuner/internal/eval"
	"ppatuner/internal/robust"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// ID names the worker in grants, lease records and log lines. Empty is
	// allowed; the coordinator assigns a positional name.
	ID string
	// Scenario resolves a wire-form scenario name to the built scenario;
	// defaults to eval.StandardScenario. Resolved scenarios are cached per
	// RunWorker call (construction regenerates benchmark datasets).
	Scenario func(name string) (*eval.Scenario, error)
	// Space resolves a wire-form space name; defaults to eval.SpaceByName.
	Space func(name string) (eval.ObjSpace, error)
	// Run is the base harness configuration applied to every unit — the
	// place to hang the resilient-evaluator middleware (robust retries,
	// breaker, chaos under test). Run.Src is ignored: each unit restores
	// its own source from the grant.
	Run eval.RunOpts
	// HeartbeatEvery paces lease renewals while a unit computes. Zero
	// derives a third of the granted lease TTL.
	HeartbeatEvery time.Duration
	// Clock paces heartbeats; defaults to the wall clock.
	Clock clock.Clock
}

// RunWorker serves one coordinator connection: hello, then a grant/report
// loop until shutdown or connection loss (io.EOF is a clean exit — the
// coordinator went away after the campaign finished). One unit runs at a
// time; while it computes, a heartbeat goroutine renews the lease, and
// every fresh observation is streamed the moment the evaluator pays for
// it, so a later SIGKILL forfeits only wall-clock time — never results.
//
// Receiving runs on a dedicated goroutine for the whole session, not just
// between units: the coordinator acknowledges every observation and
// result (and a Reconn uses those acks to trim its retransmit buffer), so
// inbound traffic must drain while a unit computes or long units would
// stall both sides' send windows. RunWorker closes conn on return to
// release that goroutine.
//
// Unit failures are reported, not returned: a breaker refusal
// (robust.ErrBreakerOpen) ships as a parked failure for the coordinator to
// requeue, anything else as a hard failure for it to abort on. RunWorker
// itself only fails on transport errors.
func RunWorker(ctx context.Context, conn Conn, opt WorkerOptions) error {
	if opt.Scenario == nil {
		opt.Scenario = eval.StandardScenario
	}
	if opt.Space == nil {
		opt.Space = eval.SpaceByName
	}
	if opt.Clock == nil {
		opt.Clock = clock.Real()
	}
	if err := conn.Send(Msg{Type: MsgHello, Worker: opt.ID}); err != nil {
		return err
	}

	msgs := make(chan Msg)
	errc := make(chan error, 1)
	readerDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			m, err := conn.Recv()
			if err != nil {
				select {
				case errc <- err:
				case <-readerDone:
				}
				return
			}
			select {
			case msgs <- m:
			case <-readerDone:
				return
			}
		}
	}()
	// LIFO: close the conn first (unblocks a Recv in flight), then release
	// the reader's channel sends, then join it.
	defer wg.Wait()
	defer close(readerDone)
	defer conn.Close()

	scenarios := map[string]*eval.Scenario{}
	for {
		select {
		case <-ctx.Done():
			return nil
		case err := <-errc:
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || ctx.Err() != nil {
				return nil
			}
			return err
		case msg := <-msgs:
			switch msg.Type {
			case MsgShutdown:
				return nil
			case MsgGrant:
				if err := runGrant(ctx, conn, opt, scenarios, msg); err != nil {
					return err
				}
			default:
				// Unknown types are ignored for forward compatibility.
			}
		}
	}
}

// runGrant executes one granted unit and reports its outcome.
func runGrant(ctx context.Context, conn Conn, opt WorkerOptions, scenarios map[string]*eval.Scenario, msg Msg) error {
	if msg.Unit == nil {
		return fmt.Errorf("shard: grant for %s carries no unit", msg.Key)
	}
	// Heartbeats start before scenario resolution: building a scenario
	// regenerates benchmark datasets, which can outlast a lease TTL on its
	// own — the lease must stay renewed through it.
	every := opt.HeartbeatEvery
	if every <= 0 {
		every = time.Duration(msg.LeaseMillis) * time.Millisecond / 3
	}
	if every <= 0 {
		every = 10 * time.Second
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if opt.Clock.Sleep(hbCtx, every) != nil {
				return
			}
			if conn.Send(Msg{Type: MsgHeartbeat, Key: msg.Key, Epoch: msg.Epoch}) != nil {
				return
			}
		}
	}()
	defer wg.Wait()
	defer stopHB()

	sc, ok := scenarios[msg.Unit.Scenario]
	if !ok {
		var err error
		sc, err = opt.Scenario(msg.Unit.Scenario)
		if err != nil {
			return conn.Send(Msg{Type: MsgFail, Key: msg.Key, Epoch: msg.Epoch, Error: err.Error()})
		}
		scenarios[msg.Unit.Scenario] = sc
	}
	space, err := opt.Space(msg.Unit.Space)
	if err != nil {
		return conn.Send(Msg{Type: MsgFail, Key: msg.Key, Epoch: msg.Epoch, Error: err.Error()})
	}

	res, end, runErr := eval.ExecuteUnit(sc, space, *msg.Unit, msg.RandState, msg.Replay, opt.Run, func(o robust.Observation) error {
		return conn.Send(Msg{Type: MsgObs, Key: msg.Key, Epoch: msg.Epoch, Obs: &o})
	})
	if runErr != nil {
		return conn.Send(Msg{
			Type:   MsgFail,
			Key:    msg.Key,
			Epoch:  msg.Epoch,
			Error:  runErr.Error(),
			Parked: errors.Is(runErr, robust.ErrBreakerOpen),
		})
	}
	return conn.Send(Msg{Type: MsgResult, Key: msg.Key, Epoch: msg.Epoch, Result: &res, RandEnd: end})
}
