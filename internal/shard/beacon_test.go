package shard

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"ppatuner/internal/clock"
)

func TestBeaconAnnounceAdvancesAndContinuesSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.beacon")
	b1 := NewBeacon(path)
	for i := 0; i < 3; i++ {
		if err := b1.Announce(1); err != nil {
			t.Fatal(err)
		}
	}
	st, ok, err := b1.Read()
	if err != nil || !ok {
		t.Fatalf("Read = (%+v, %v, %v)", st, ok, err)
	}
	if st.Generation != 1 || st.Seq != 3 {
		t.Fatalf("state = %+v, want gen 1 seq 3", st)
	}

	// A promoted standby's first announce continues the deposed primary's
	// sequence instead of restarting it — a later standby must never
	// mistake a seq reset for progress.
	b2 := NewBeacon(path)
	if err := b2.Announce(2); err != nil {
		t.Fatal(err)
	}
	st, _, _ = b2.Read()
	if st.Generation != 2 || st.Seq != 4 {
		t.Fatalf("state after takeover announce = %+v, want gen 2 seq 4", st)
	}
}

func TestBeaconMuteSilencesAnnouncements(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.beacon")
	b := NewBeacon(path)
	if err := b.Announce(1); err != nil {
		t.Fatal(err)
	}
	before, _, _ := b.Read()
	b.Mute()
	if err := b.Announce(1); err != nil {
		t.Fatal(err)
	}
	after, _, _ := b.Read()
	if after != before {
		t.Fatalf("muted announce changed the beacon: %+v -> %+v", before, after)
	}
}

func TestBeaconWatchPromotesOnSilence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.beacon")
	b := NewBeacon(path)
	fc := clock.NewFake(time.Unix(0, 0))
	// No beacon file at all: the primary died before its first announce.
	// The takeover clock runs from the start of the watch.
	if err := b.Watch(context.Background(), fc, time.Second, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if elapsed := fc.Now().Sub(time.Unix(0, 0)); elapsed < 10*time.Second {
		t.Fatalf("promoted after only %v of virtual silence, want >= 10s", elapsed)
	}
}

func TestBeaconWatchHonoursCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.beacon")
	b := NewBeacon(path)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Watch(ctx, clock.NewFake(time.Unix(0, 0)), time.Second, time.Hour); err == nil {
		t.Fatal("cancelled watch returned nil — would promote spuriously")
	}
}

// announceClock announces the beacon on each of its first n sleeps — a
// deterministic stand-in for a healthy primary running concurrently with
// the standby's watch.
type announceClock struct {
	*clock.Fake
	beacon *Beacon
	left   int
}

func (a *announceClock) Sleep(ctx context.Context, d time.Duration) error {
	if a.left > 0 {
		a.left--
		if err := a.beacon.Announce(1); err != nil {
			return err
		}
	}
	return a.Fake.Sleep(ctx, d)
}

func TestBeaconWatchDefersToLivePrimary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.beacon")
	b := NewBeacon(path)
	origin := time.Unix(0, 0)
	ac := &announceClock{Fake: clock.NewFake(origin), beacon: NewBeacon(path), left: 20}
	if err := b.Watch(context.Background(), ac, time.Second, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// 20 polls saw progress (each resets the silence window), then 5 more
	// of silence: promotion can only have happened after ~25 virtual
	// seconds, proving announcements defer the takeover.
	if elapsed := ac.Now().Sub(origin); elapsed < 25*time.Second {
		t.Fatalf("promoted after %v despite a live primary announcing for 20s", elapsed)
	}
}
