package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"ppatuner/internal/clock"
)

// BeaconState is one liveness announcement: the announcing coordinator's
// checkpoint generation and a sequence number that advances on every
// announce. Staleness is decided by the sequence standing still, not by
// file mtimes — content-based detection works identically under the fake
// clock and across filesystems with coarse timestamps.
type BeaconState struct {
	Generation uint64 `json:"generation"`
	Seq        uint64 `json:"seq"`
}

// Beacon is a primary coordinator's heartbeat file. The primary announces
// into it on the coordinator clock; a standby watches it and promotes once
// the sequence number has been still for its takeover window. The file is
// advisory — fencing on the checkpoint, not the beacon, is what makes a
// mistimed takeover safe; the beacon only decides when to try.
type Beacon struct {
	path  string
	mu    sync.Mutex
	seq   uint64
	muted bool
}

// NewBeacon builds a beacon persisting announcements to path.
func NewBeacon(path string) *Beacon {
	return &Beacon{path: path}
}

// Announce writes the next liveness record (atomic rename, like every
// other state file). The first announce continues the sequence recorded on
// disk, so a promoted standby's announcements advance past the deposed
// primary's rather than restarting a sequence the next standby might
// mistake for progress. A muted beacon silently announces nothing.
func (b *Beacon) Announce(gen uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.muted {
		return nil
	}
	if b.seq == 0 {
		if st, ok, _ := b.read(); ok {
			b.seq = st.Seq
		}
	}
	b.seq++
	data, err := json.Marshal(BeaconState{Generation: gen, Seq: b.seq})
	if err != nil {
		return fmt.Errorf("shard: encode beacon: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(b.path), filepath.Base(b.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("shard: write beacon: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("shard: write beacon: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("shard: write beacon: %w", err)
	}
	if err := os.Rename(tmp.Name(), b.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("shard: write beacon: %w", err)
	}
	return nil
}

// Mute stops all future announcements — the chaos hook behind split-brain
// schedules: a muted primary looks dead to the standby while it keeps
// serving its workers and writing the checkpoint, which is exactly the
// scenario checkpoint fencing exists to make survivable.
func (b *Beacon) Mute() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.muted = true
}

// Read returns the current announcement, with ok=false when no beacon file
// exists yet.
func (b *Beacon) Read() (BeaconState, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.read()
}

func (b *Beacon) read() (BeaconState, bool, error) {
	data, err := os.ReadFile(b.path)
	if os.IsNotExist(err) {
		return BeaconState{}, false, nil
	}
	if err != nil {
		return BeaconState{}, false, fmt.Errorf("shard: read beacon: %w", err)
	}
	var st BeaconState
	if err := json.Unmarshal(data, &st); err != nil {
		return BeaconState{}, false, fmt.Errorf("shard: parse beacon %s: %w", b.path, err)
	}
	return st, true, nil
}

// Watch polls the beacon every `every` tick of clk and returns nil once
// the announcement has not changed for staleAfter — the standby's cue to
// adopt the checkpoint and promote. A missing beacon counts as silence
// (the primary may have died before its first announce), so the takeover
// clock runs from the start of the watch. Context cancellation returns
// ctx.Err(). Read errors are treated as silence too: a half-written or
// unreadable beacon must not wedge the standby forever.
func (b *Beacon) Watch(ctx context.Context, clk clock.Clock, every, staleAfter time.Duration) error {
	if every <= 0 {
		every = staleAfter / 8
	}
	if every <= 0 {
		every = time.Second
	}
	last, _, _ := b.Read()
	lastChange := clk.Now()
	for {
		if err := clk.Sleep(ctx, every); err != nil {
			return err
		}
		if st, ok, err := b.Read(); err == nil && ok && st != last {
			last, lastChange = st, clk.Now()
			continue
		}
		if clk.Now().Sub(lastChange) >= staleAfter {
			return nil
		}
	}
}
