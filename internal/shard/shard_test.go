package shard_test

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ppatuner/internal/benchdata"
	"ppatuner/internal/clock"
	"ppatuner/internal/eval"
	"ppatuner/internal/param"
	"ppatuner/internal/pdtool"
	"ppatuner/internal/pdtool/chaos"
	"ppatuner/internal/robust"
	"ppatuner/internal/shard"
	"ppatuner/internal/shard/transport"
)

var (
	miniOnce sync.Once
	miniScn  *eval.Scenario
	miniErr  error
)

// miniScenario mirrors the eval package's test scenario: same designs, few
// points, so distributed campaigns run in seconds.
func miniScenario(t *testing.T) *eval.Scenario {
	t.Helper()
	miniOnce.Do(func() {
		src, err := benchdata.Generate("mini-src", param.Source2Space(), pdtool.SmallMAC(), benchdata.GenOptions{Points: 120, Seed: 51})
		if err != nil {
			miniErr = err
			return
		}
		tgt, err := benchdata.Generate("mini-tgt", param.Target2Space(), pdtool.SmallMAC(), benchdata.GenOptions{Points: 100, Seed: 52})
		if err != nil {
			miniErr = err
			return
		}
		miniScn = &eval.Scenario{
			Name: "Mini", Source: src, Target: tgt,
			SourceN: 60, InitFrac: 0.08,
			Budgets: map[eval.Method]int{eval.TCAD19: 40, eval.MLCAD19: 30, eval.DAC19: 45, eval.ASPDAC20: 30, eval.PPATuner: 35},
		}
	})
	if miniErr != nil {
		t.Fatal(miniErr)
	}
	return miniScn
}

func resolveMini(t *testing.T) func(string) (*eval.Scenario, error) {
	return func(name string) (*eval.Scenario, error) {
		if name != "Mini" {
			return nil, fmt.Errorf("unknown scenario %q", name)
		}
		return miniScenario(t), nil
	}
}

// miniCampaign builds the campaign under test; ckPath == "" keeps the
// checkpoint in memory.
func miniCampaign(t *testing.T, ckPath string) *eval.Campaign {
	t.Helper()
	c := &eval.Campaign{
		Scenario: miniScenario(t),
		Seeds:    []int64{1, 2},
		Spaces:   eval.Spaces()[:1],
		Methods:  []eval.Method{eval.DAC19, eval.PPATuner},
	}
	if ckPath != "" {
		ck, err := robust.LoadCampaignCheckpoint(ckPath)
		if err != nil {
			t.Fatal(err)
		}
		c.Checkpoint = ck
	}
	return c
}

// referenceRun executes the campaign single-process with a checkpoint file
// and returns the formatted table plus the final checkpoint bytes.
func referenceRun(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.json")
	c := miniCampaign(t, path)
	table, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return table.Format(), data
}

// startWorkers launches n in-process workers on loopback conns, optionally
// wrapping each coordinator-side conn.
func startWorkers(t *testing.T, ctx context.Context, conns chan<- shard.Conn, n int, wrap func(i int, c shard.Conn) shard.Conn) {
	t.Helper()
	for i := 0; i < n; i++ {
		coordSide, workerSide := transport.Loopback()
		if wrap != nil {
			coordSide = wrap(i, coordSide)
		}
		conns <- coordSide
		go func(id int, c shard.Conn) {
			_ = shard.RunWorker(ctx, c, shard.WorkerOptions{
				ID:       fmt.Sprintf("w%d", id),
				Scenario: resolveMini(t),
			})
		}(i, workerSide)
	}
}

// TestDistributedFaultFreeIdentity is the base proof: a coordinator with
// three workers produces a table and a final checkpoint file byte-identical
// to the single-process run.
func TestDistributedFaultFreeIdentity(t *testing.T) {
	wantTable, wantCk := referenceRun(t)

	path := filepath.Join(t.TempDir(), "dist.json")
	c := miniCampaign(t, path)
	var log robust.FailureLog
	co, err := shard.New(shard.Options{Campaign: c, LeaseTTL: 30 * time.Second, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	conns := make(chan shard.Conn, 3)
	startWorkers(t, ctx, conns, 3, nil)
	table, err := co.Run(ctx, conns)
	if err != nil {
		t.Fatal(err)
	}
	if got := table.Format(); got != wantTable {
		t.Fatalf("distributed table differs from single-process:\n%s\n--- want ---\n%s", got, wantTable)
	}
	gotCk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCk) != string(wantCk) {
		t.Fatalf("distributed checkpoint differs from single-process:\n%s\n--- want ---\n%s", gotCk, wantCk)
	}
	st := co.Stats()
	if st.Granted < 4 {
		t.Fatalf("stats = %+v, want at least one grant per unit", st)
	}
	if log.LeaseEvents() == 0 {
		t.Fatal("no lease events recorded in the failure log")
	}
}

// killConn severs the connection after a fixed number of worker sends —
// a deterministic stand-in for SIGKILL mid-unit.
type killConn struct {
	shard.Conn
	mu        sync.Mutex
	remaining int
}

func (k *killConn) Send(m shard.Msg) error {
	k.mu.Lock()
	k.remaining--
	dead := k.remaining < 0
	k.mu.Unlock()
	if dead {
		k.Conn.Close()
		return io.ErrClosedPipe
	}
	return k.Conn.Send(m)
}

// TestDistributedWorkerDeathIdentity kills one worker mid-unit (after it
// has streamed observations) and proves the output is still byte-identical:
// the reclaimed unit's replay prefix carries the dead worker's paid-for
// observations into the re-grant.
func TestDistributedWorkerDeathIdentity(t *testing.T) {
	wantTable, wantCk := referenceRun(t)

	path := filepath.Join(t.TempDir(), "dist.json")
	c := miniCampaign(t, path)
	co, err := shard.New(shard.Options{Campaign: c, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	conns := make(chan shard.Conn, 3)
	startWorkers(t, ctx, conns, 2, nil)
	// The third worker dies after hello + 4 observations: mid-unit, with
	// progress already streamed. Its kill counter wraps the worker side, so
	// the severed connection looks like a SIGKILL to the coordinator. The
	// other two workers finish the campaign.
	coordSide, workerSide := transport.Loopback()
	conns <- coordSide
	go func() {
		_ = shard.RunWorker(ctx, &killConn{Conn: workerSide, remaining: 5}, shard.WorkerOptions{
			ID:       "doomed",
			Scenario: resolveMini(t),
		})
	}()
	table, err := co.Run(ctx, conns)
	if err != nil {
		t.Fatal(err)
	}
	if got := table.Format(); got != wantTable {
		t.Fatalf("table after worker death differs:\n%s\n--- want ---\n%s", got, wantTable)
	}
	gotCk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCk) != string(wantCk) {
		t.Fatalf("checkpoint after worker death differs:\n%s\n--- want ---\n%s", gotCk, wantCk)
	}
	if st := co.Stats(); st.WorkersLost == 0 {
		t.Fatalf("stats = %+v, want a lost worker", st)
	}
}

// TestDistributedDuplicatedDelayedResultsIdentity delivers every result
// late and twice; merge idempotence keeps the output byte-identical.
func TestDistributedDuplicatedDelayedResultsIdentity(t *testing.T) {
	wantTable, wantCk := referenceRun(t)

	path := filepath.Join(t.TempDir(), "dist.json")
	c := miniCampaign(t, path)
	faults := chaos.ProcFaults{ResultDelay: 2 * time.Millisecond, DuplicateResults: true}
	co, err := shard.New(shard.Options{Campaign: c, LeaseTTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	conns := make(chan shard.Conn, 2)
	startWorkers(t, ctx, conns, 2, func(i int, cs shard.Conn) shard.Conn {
		return transport.Fault(cs, faults, clock.Real())
	})
	table, err := co.Run(ctx, conns)
	if err != nil {
		t.Fatal(err)
	}
	if got := table.Format(); got != wantTable {
		t.Fatalf("table under duplicated delivery differs:\n%s\n--- want ---\n%s", got, wantTable)
	}
	gotCk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCk) != string(wantCk) {
		t.Fatalf("checkpoint under duplicated delivery differs")
	}
	if st := co.Stats(); st.Duplicates == 0 {
		t.Fatalf("stats = %+v, want duplicate results observed", st)
	}
}

// TestZombieResultRejected scripts the renew/reclaim race end to end on a
// virtual clock: worker A goes silent, its lease expires, the unit is
// re-granted to B, and A's late result under the stale epoch is rejected
// while B's is merged. The output still matches the single-process run.
func TestZombieResultRejected(t *testing.T) {
	s := miniScenario(t)
	ref := &eval.Campaign{Scenario: s, Seeds: []int64{1}, Spaces: eval.Spaces()[:1], Methods: []eval.Method{eval.DAC19}}
	wantTable, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}

	fc := clock.NewFake(time.Unix(0, 0))
	var log robust.FailureLog
	c := &eval.Campaign{Scenario: s, Seeds: []int64{1}, Spaces: eval.Spaces()[:1], Methods: []eval.Method{eval.DAC19}}
	co, err := shard.New(shard.Options{Campaign: c, LeaseTTL: 5 * time.Second, Clock: fc, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	conns := make(chan shard.Conn, 2)

	aCoord, a := transport.Loopback()
	bCoord, b := transport.Loopback()
	conns <- aCoord

	var table *eval.Table
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		table, runErr = co.Run(ctx, conns)
	}()

	// A introduces itself and receives the grant, then goes silent (no
	// heartbeats): on the fake clock the lease expires immediately.
	mustSend(t, a, shard.Msg{Type: shard.MsgHello, Worker: "a"})
	grantA := mustRecv(t, a, shard.MsgGrant)

	// B arrives; the expired unit is re-granted to it under the next epoch.
	conns <- bCoord
	mustSend(t, b, shard.Msg{Type: shard.MsgHello, Worker: "b"})
	grantB := mustRecv(t, b, shard.MsgGrant)
	if grantB.Epoch <= grantA.Epoch {
		t.Fatalf("re-grant epoch %d not above original %d", grantB.Epoch, grantA.Epoch)
	}

	// A wakes up and delivers a (correct!) result under its stale epoch —
	// the zombie. It must be rejected. B stays silent, so its lease expires
	// too; rejecting the zombie idles A, and the unit comes back to A under
	// a third epoch.
	res, end, err := eval.ExecuteUnit(s, eval.Spaces()[0], *grantA.Unit, grantA.RandState, grantA.Replay, eval.RunOpts{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, a, shard.Msg{Type: shard.MsgResult, Key: grantA.Key, Epoch: grantA.Epoch, Result: &res, RandEnd: end})

	grantA2 := mustRecv(t, a, shard.MsgGrant)
	if grantA2.Epoch <= grantB.Epoch {
		t.Fatalf("third grant epoch %d not above %d", grantA2.Epoch, grantB.Epoch)
	}
	// Under the current epoch the same result is merged.
	mustSend(t, a, shard.Msg{Type: shard.MsgResult, Key: grantA2.Key, Epoch: grantA2.Epoch, Result: &res, RandEnd: end})

	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if got := table.Format(); got != wantTable.Format() {
		t.Fatalf("table after zombie rejection differs:\n%s\n--- want ---\n%s", got, wantTable.Format())
	}
	st := co.Stats()
	if st.ZombieResults != 1 {
		t.Fatalf("stats = %+v, want exactly one zombie result", st)
	}
	if st.Expired == 0 {
		t.Fatalf("stats = %+v, want an expired lease", st)
	}
	if log.LeaseEvents() == 0 {
		t.Fatal("zombie rejection left no lease events")
	}
}

// TestParkedFailureRequeues scripts a worker-side breaker refusal: the unit
// parks, waits out the requeue delay on the virtual clock, re-grants, and
// completes.
func TestParkedFailureRequeues(t *testing.T) {
	s := miniScenario(t)
	fc := clock.NewFake(time.Unix(0, 0))
	var log robust.FailureLog
	c := &eval.Campaign{Scenario: s, Seeds: []int64{1}, Spaces: eval.Spaces()[:1], Methods: []eval.Method{eval.DAC19}}
	co, err := shard.New(shard.Options{Campaign: c, LeaseTTL: time.Minute, RequeueDelay: 10 * time.Second, Clock: fc, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	conns := make(chan shard.Conn, 1)
	aCoord, a := transport.Loopback()
	conns <- aCoord

	var table *eval.Table
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		table, runErr = co.Run(ctx, conns)
	}()

	mustSend(t, a, shard.Msg{Type: shard.MsgHello, Worker: "a"})
	g1 := mustRecv(t, a, shard.MsgGrant)
	mustSend(t, a, shard.Msg{Type: shard.MsgFail, Key: g1.Key, Epoch: g1.Epoch, Error: robust.ErrBreakerOpen.Error(), Parked: true})

	// The requeue delay passes on the virtual clock and the unit comes back.
	g2 := mustRecv(t, a, shard.MsgGrant)
	if g2.Key != g1.Key || g2.Epoch <= g1.Epoch {
		t.Fatalf("re-grant = %+v after %+v", g2, g1)
	}
	res, end, err := eval.ExecuteUnit(s, eval.Spaces()[0], *g2.Unit, g2.RandState, g2.Replay, eval.RunOpts{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, a, shard.Msg{Type: shard.MsgResult, Key: g2.Key, Epoch: g2.Epoch, Result: &res, RandEnd: end})

	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}
	if table == nil {
		t.Fatal("no table")
	}
	if st := co.Stats(); st.Granted != 2 {
		t.Fatalf("stats = %+v, want 2 grants", st)
	}
}

// TestHardFailureAborts: a non-parked unit failure aborts the campaign with
// a labelled error.
func TestHardFailureAborts(t *testing.T) {
	s := miniScenario(t)
	c := &eval.Campaign{Scenario: s, Seeds: []int64{1}, Spaces: eval.Spaces()[:1], Methods: []eval.Method{eval.DAC19}}
	co, err := shard.New(shard.Options{Campaign: c, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	conns := make(chan shard.Conn, 1)
	aCoord, a := transport.Loopback()
	conns <- aCoord
	done := make(chan error, 1)
	go func() {
		_, err := co.Run(ctx, conns)
		done <- err
	}()
	mustSend(t, a, shard.Msg{Type: shard.MsgHello, Worker: "a"})
	g := mustRecv(t, a, shard.MsgGrant)
	mustSend(t, a, shard.Msg{Type: shard.MsgFail, Key: g.Key, Epoch: g.Epoch, Error: "tool exploded"})
	if err := <-done; err == nil {
		t.Fatal("hard failure should abort the campaign")
	}
}

func mustSend(t *testing.T, c shard.Conn, m shard.Msg) {
	t.Helper()
	if err := c.Send(m); err != nil {
		t.Fatal(err)
	}
}

// mustRecv reads messages until one of the wanted type arrives (shutdown
// and unexpected types fail the test).
func mustRecv(t *testing.T, c shard.Conn, want shard.MsgType) shard.Msg {
	t.Helper()
	for {
		m, err := c.Recv()
		if err != nil {
			t.Fatalf("recv waiting for %s: %v", want, err)
		}
		if m.Type == want {
			return m
		}
		if m.Type == shard.MsgShutdown {
			t.Fatalf("got shutdown while waiting for %s", want)
		}
	}
}
