package shard

import (
	"sort"
	"time"
)

// Stats counts the coordinator's lease machinery events. They describe the
// road, not the destination: any Stats value is compatible with the same
// byte-identical final table.
type Stats struct {
	// Granted counts lease grants (first grants and re-grants alike).
	Granted int
	// Renewed counts heartbeat renewals of active leases.
	Renewed int
	// Expired counts leases reclaimed because their deadline passed without
	// a renewal.
	Expired int
	// WorkersLost counts leases reclaimed because the holder's connection
	// died.
	WorkersLost int
	// ZombieResults counts completed-unit results rejected because their
	// epoch was superseded by a re-grant.
	ZombieResults int
	// ZombieObs counts observations that arrived under a stale epoch and
	// were merged anyway (paid-for truth — merging them is what guarantees
	// each reclaim round makes progress).
	ZombieObs int
	// Duplicates counts results for already-completed units (retransmits).
	Duplicates int
	// StaleHeartbeats counts renewals ignored because the lease they named
	// was no longer current.
	StaleHeartbeats int
	// Adopted counts persisted leases re-armed as active by a standby
	// taking over a deposed coordinator's checkpoint.
	Adopted int
}

// lease is one active grant.
type lease struct {
	epoch    uint64
	holder   string
	deadline time.Time
}

// Ledger is the coordinator's lease book: which units are out on lease, to
// whom, under which epoch, and until when. It is pure bookkeeping — every
// method takes the current time explicitly and touches no clock, so the
// renew/reclaim race rules are unit-testable with plain values. Not safe
// for concurrent use; the coordinator's single event loop owns it.
type Ledger struct {
	active map[string]*lease
	// epochs is the per-key high-water mark, surviving reclaims (and, via
	// restore, coordinator restarts): grants only ever move it up, which is
	// what makes a zombie's late result detectable.
	epochs map[string]uint64
	stats  Stats
}

// NewLedger builds an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{active: map[string]*lease{}, epochs: map[string]uint64{}}
}

// Restore raises a key's epoch high-water mark (checkpoint recovery). It
// never lowers it.
func (l *Ledger) Restore(key string, epoch uint64) {
	if epoch > l.epochs[key] {
		l.epochs[key] = epoch
	}
}

// RestoreActive re-arms a persisted lease as active under its recorded
// epoch and holder, with a fresh TTL from now — standby takeover. Unlike
// Grant it does not advance the epoch: the worker out there still computes
// under the recorded one, and re-arming (rather than re-granting) is what
// lets its eventual result pass the current-epoch check. The high-water
// mark is raised like Restore.
func (l *Ledger) RestoreActive(key string, epoch uint64, holder string, now time.Time, ttl time.Duration) {
	l.Restore(key, epoch)
	l.active[key] = &lease{epoch: epoch, holder: holder, deadline: now.Add(ttl)}
	l.stats.Adopted++
}

// Grant leases key to holder until now+ttl and returns the new epoch —
// always strictly above every epoch ever granted for the key.
func (l *Ledger) Grant(key, holder string, now time.Time, ttl time.Duration) uint64 {
	epoch := l.epochs[key] + 1
	l.epochs[key] = epoch
	l.active[key] = &lease{epoch: epoch, holder: holder, deadline: now.Add(ttl)}
	l.stats.Granted++
	return epoch
}

// Renew extends key's lease to now+ttl iff the named epoch is the active
// one; a stale renewal (expired or superseded lease) is counted and ignored.
func (l *Ledger) Renew(key string, epoch uint64, now time.Time, ttl time.Duration) bool {
	ls, ok := l.active[key]
	if !ok || ls.epoch != epoch {
		l.stats.StaleHeartbeats++
		return false
	}
	ls.deadline = now.Add(ttl)
	l.stats.Renewed++
	return true
}

// Current returns the active lease epoch for key, if one is out.
func (l *Ledger) Current(key string) (epoch uint64, holder string, ok bool) {
	ls, found := l.active[key]
	if !found {
		return 0, "", false
	}
	return ls.epoch, ls.holder, true
}

// LastEpoch returns the key's epoch high-water mark (0 if never granted).
// A result is current iff it carries this epoch and the unit is not done —
// an expired-but-never-superseded lease's result is still the truth.
func (l *Ledger) LastEpoch(key string) uint64 { return l.epochs[key] }

// Expired returns the keys (sorted, for deterministic requeue order) whose
// active lease deadline is at or before now.
func (l *Ledger) Expired(now time.Time) []string {
	var keys []string
	for key, ls := range l.active {
		if !ls.deadline.After(now) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}

// NextDeadline returns the earliest active-lease deadline, if any lease is
// out — what the coordinator arms its expiry alarm for.
func (l *Ledger) NextDeadline() (time.Time, bool) {
	keys := make([]string, 0, len(l.active))
	for key := range l.active {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var min time.Time
	found := false
	for _, key := range keys {
		if d := l.active[key].deadline; !found || d.Before(min) {
			min, found = d, true
		}
	}
	return min, found
}

// Reclaim drops key's active lease after expiry, counting it. The epoch
// high-water mark stays.
func (l *Ledger) Reclaim(key string) {
	if _, ok := l.active[key]; ok {
		delete(l.active, key)
		l.stats.Expired++
	}
}

// ReclaimLost drops key's active lease because its holder's connection
// died, counting it separately from deadline expiries.
func (l *Ledger) ReclaimLost(key string) {
	if _, ok := l.active[key]; ok {
		delete(l.active, key)
		l.stats.WorkersLost++
	}
}

// Release drops key's active lease without counting a reclaim (the unit
// completed or the campaign is shutting down).
func (l *Ledger) Release(key string) { delete(l.active, key) }

// Holdings returns the sorted keys holder currently has on lease (one, for
// well-behaved workers; the type doesn't enforce it).
func (l *Ledger) Holdings(holder string) []string {
	var keys []string
	for key, ls := range l.active {
		if ls.holder == holder {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}

// Stats returns the counters so far.
func (l *Ledger) Stats() Stats { return l.stats }

// CountZombieResult, CountZombieObs and CountDuplicate record merge-time
// outcomes the ledger itself cannot see (the coordinator decides them
// against the done set).
func (l *Ledger) CountZombieResult() { l.stats.ZombieResults++ }

// CountZombieObs records a stale-epoch observation that was merged anyway.
func (l *Ledger) CountZombieObs() { l.stats.ZombieObs++ }

// CountDuplicate records a result for an already-completed unit.
func (l *Ledger) CountDuplicate() { l.stats.Duplicates++ }
