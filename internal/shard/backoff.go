package shard

import (
	"encoding/binary"
	"hash/fnv"
	"time"
)

// Backoff is a capped exponential backoff with deterministic jitter: the
// delay for attempt n doubles from Base up to Cap, scaled into [1/2, 1) by
// a hash of (Salt, n). Deterministic, not random, for the same reason
// everything else in this package is: a reconnection storm is a scenario
// tests must replay exactly, and the package-level no-global-rand policy
// holds. Distinct salts (worker IDs) still de-synchronise a fleet the way
// random jitter would.
type Backoff struct {
	// Base is the first retry delay (default 250ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 5s).
	Cap time.Duration
	// Salt individualises the jitter stream — pass the worker ID so
	// workers that lost the same coordinator at the same instant do not
	// redial in lockstep.
	Salt string
}

// Delay returns the pause before retry attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	ceil := b.Cap
	if ceil <= 0 {
		ceil = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(b.Salt))
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(attempt))
	_, _ = h.Write(n[:])
	frac := float64(h.Sum64()%1024) / 1024 // [0, 1)
	half := d / 2
	return half + time.Duration(float64(half)*frac)
}
