package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDoCoversExactlyOnce: every index in [0, n) is visited exactly once for
// any worker count, including workers > n, zero, and negative.
func TestDoCoversExactlyOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 8, 100} {
		for _, n := range []int{0, 1, 2, 5, 16, 97} {
			hits := make([]int32, n)
			Do(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad range [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestDoSerialOnCallingGoroutine: workers <= 1 must not spawn goroutines —
// fn runs inline, so callers may use non-thread-safe state.
func TestDoSerialOnCallingGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	ran := false
	Do(1, 10, func(lo, hi int) {
		ran = true
		if lo != 0 || hi != 10 {
			t.Errorf("serial range [%d,%d), want [0,10)", lo, hi)
		}
	})
	if !ran {
		t.Fatal("fn never ran")
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine count grew %d -> %d on serial path", before, after)
	}
}

// TestDoRangesAreOrderedAndContiguous: the ranges tile [0, n) in order with
// no gaps, which is what lets sharded sweeps match serial element order.
func TestDoRangesAreOrderedAndContiguous(t *testing.T) {
	const n = 103
	var mu sync.Mutex
	var ranges [][2]int
	Do(4, n, func(lo, hi int) {
		mu.Lock()
		ranges = append(ranges, [2]int{lo, hi})
		mu.Unlock()
	})
	if len(ranges) > 4 {
		t.Fatalf("got %d ranges for 4 workers", len(ranges))
	}
	covered := make([]bool, n)
	for _, r := range ranges {
		for i := r[0]; i < r[1]; i++ {
			if covered[i] {
				t.Fatalf("index %d covered twice", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d never covered", i)
		}
	}
}
