// Package par provides the bounded fork-join helper behind the tuner's
// multicore paths. Work is split into contiguous index ranges, one per
// worker, so a parallel run touches exactly the same elements in exactly the
// same per-element order as a serial one — callers that write only to
// disjoint per-index slots therefore produce bit-identical results for any
// worker count, which is the determinism contract the tuner's tests pin.
package par

import "sync"

// Do partitions [0, n) into at most `workers` contiguous ranges and calls
// fn(lo, hi) for each, concurrently when workers > 1. fn must be safe to run
// concurrently with itself on disjoint ranges. workers <= 1 (or n <= 1) runs
// fn(0, n) on the calling goroutine with zero overhead.
func Do(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
