// Package analysis is a small, dependency-free analysis framework modelled
// on the public API shape of golang.org/x/tools/go/analysis. The repo's
// lint suite (cmd/ppalint) machine-checks the determinism and
// numerical-safety invariants that PR 2 established — serial==parallel
// bit-identity, seeded reproducibility, checked Cholesky factorisations —
// so regressions are caught by CI instead of by reviewers.
//
// x/tools itself is deliberately not a dependency: the module is built and
// linted in hermetic environments with no module proxy, so the framework,
// the loader, and the analysistest harness are reimplemented here on the
// standard library (go/ast, go/types, go/importer) alone. The types below
// keep x/tools' field names so the analyzers could be ported to the real
// framework with minimal churn if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check. It mirrors the x/tools Analyzer
// struct: Name appears in diagnostics and in //ppalint:allow suppressions,
// Doc is shown by `ppalint help`, and Run reports findings via pass.Report.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver applies the
	// //ppalint:allow suppression filter after the analyzer returns.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned within pass.Fset.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// InTestFile reports whether pos lies in a _test.go file. Several analyzers
// exempt test files: the determinism contract binds the tuner's hot paths,
// not test scaffolding, and the race+shuffle CI job covers test hygiene.
func InTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
