// Fixture for the mustcheck analyzer: discarded errors from the curated
// mat/robust APIs are flagged; checked errors and non-curated calls pass.
package a

import (
	"ppatuner/internal/gp"
	"ppatuner/internal/mat"
	"ppatuner/internal/robust"
)

func bad(a *mat.Matrix, c *mat.Cholesky, ck *robust.Checkpoint) {
	mat.NewCholesky(a)              // want `mat.NewCholesky discards its error`
	c.Extend(nil)                   // want `mat.Cholesky.Extend discards its error`
	c.FactorizePacked(nil, 0, 0, 1) // want `mat.Cholesky.FactorizePacked discards its error`
	defer ck.Save()                 // want `defer robust.Checkpoint.Save discards its error`
	go ck.Add(0, nil)               // want `go robust.Checkpoint.Add discards its error`
	f, _ := mat.NewCholesky(a)      // want `mat.NewCholesky assigns its error to _`
	_ = f
	_, _, _ = mat.SolveSPD(a, nil) // want `mat.SolveSPD assigns its error to _`
	robust.LoadCheckpoint("x")     // want `robust.LoadCheckpoint discards its error`
}

func badLease(ck *robust.CampaignCheckpoint) {
	ck.Lease("u", 1, "w")                               // want `robust.CampaignCheckpoint.Lease discards its error`
	ck.ReleaseLease("u")                                // want `robust.CampaignCheckpoint.ReleaseLease discards its error`
	ck.AddPartialObservation("u", robust.Observation{}) // want `robust.CampaignCheckpoint.AddPartialObservation discards its error`
}

func goodLease(ck *robust.CampaignCheckpoint) error {
	if err := ck.Lease("u", 1, "w"); err != nil {
		return err
	}
	_ = ck.LeaseHolder("u") // no error result and not curated: fine.
	return ck.AddPartialObservation("u", robust.Observation{})
}

func good(a *mat.Matrix, c *mat.Cholesky, ck *robust.Checkpoint) error {
	f, err := mat.NewCholesky(a)
	if err != nil {
		return err
	}
	_ = f.Solve(nil) // Solve returns no error and is not curated: fine.
	_ = ck.Len()
	if err := c.Extend(nil); err != nil {
		return err
	}
	if _, _, err := mat.SolveSPD(a, nil); err != nil {
		return err
	}
	return ck.Save()
}

func badInducing(x [][]float64) {
	gp.SelectInducing(x, nil, 4, 0)           // want `gp.SelectInducing discards its error`
	idx, _ := gp.SelectInducing(x, nil, 4, 0) // want `gp.SelectInducing assigns its error to _`
	_ = idx
}

func goodInducing(x [][]float64) ([]int, error) {
	idx, err := gp.SelectInducing(x, []float64{1}, 4, 9)
	if err != nil {
		return nil, err
	}
	return idx, nil
}
