// Stub of the real internal/gp surface: only the signatures the
// mustcheck analyzer resolves against matter here.
package gp

func SelectInducing(x [][]float64, lens []float64, m int, seed uint64) ([]int, error) {
	return nil, nil
}
