// Stub of the real internal/mat surface: only the signatures the
// mustcheck analyzer resolves against matter here.
package mat

type Matrix struct{}

type Cholesky struct{}

func NewCholesky(a *Matrix) (*Cholesky, error) { return nil, nil }

func CholeskyWithJitter(a *Matrix, jitter float64, maxAttempts int) (*Cholesky, error) {
	return nil, nil
}

func SolveSPD(a *Matrix, b []float64) ([]float64, *Cholesky, error) { return nil, nil, nil }

func (c *Cholesky) Extend(newRows [][]float64) error { return nil }

func (c *Cholesky) FactorizePacked(a []float64, n int, jitter float64, maxAttempts int) error {
	return nil
}

func (c *Cholesky) Solve(b []float64) []float64 { return nil }
