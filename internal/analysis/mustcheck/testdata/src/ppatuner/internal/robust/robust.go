// Stub of the real internal/robust checkpoint surface for the mustcheck
// analyzer fixture.
package robust

type Checkpoint struct{}

func LoadCheckpoint(path string) (*Checkpoint, error) { return nil, nil }

func (c *Checkpoint) Add(i int, y []float64) error { return nil }

func (c *Checkpoint) Save() error { return nil }

func (c *Checkpoint) Len() int { return 0 }

type Observation struct{}

type CampaignCheckpoint struct{}

func (c *CampaignCheckpoint) Lease(key string, epoch uint64, holder string) error { return nil }

func (c *CampaignCheckpoint) ReleaseLease(key string) error { return nil }

func (c *CampaignCheckpoint) AddPartialObservation(key string, obs Observation) error { return nil }

func (c *CampaignCheckpoint) LeaseHolder(key string) string { return "" }
