// Package mustcheck flags discarded error results from the numerical and
// durability APIs where silently ignoring the error corrupts results.
//
// This is deliberately not blanket errcheck. The curated list covers two
// invariant classes: Cholesky factorisation/solve entry points in
// internal/mat, whose error is the only signal that a Gram matrix was not
// positive-definite (proceeding with a half-written factor poisons every
// downstream NLML and posterior), and durability/scheduling in
// internal/robust: a dropped checkpoint write error turns the crash-safe
// resume guarantee into silent data loss, and a dropped circuit-breaker
// gate error (Acquire/AwaitRecovery) means evaluating straight through an
// open breaker — ErrBreakerOpen and ErrOutageDeadline are scheduling
// signals, not advisories.
package mustcheck

import (
	"go/ast"
	"go/types"

	"ppatuner/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "mustcheck",
	Doc: `flag discarded errors from mat factorisation/solve and robust checkpoint APIs

A call to one of the curated functions whose error result is dropped — the
call used as a statement, deferred, spawned with go, or assigned to the
blank identifier — is flagged. The list: mat.NewCholesky,
mat.CholeskyWithJitter, mat.SolveSPD, (*mat.Cholesky).Extend,
(*mat.Cholesky).FactorizePacked; gp.SelectInducing; robust.LoadCheckpoint,
(*robust.Checkpoint).Add, (*robust.Checkpoint).Save,
(*robust.Checkpoint).SetRandState, (*robust.Checkpoint).SetIters;
robust.LoadCampaignCheckpoint, (*robust.CampaignCheckpoint).Complete,
(*robust.CampaignCheckpoint).StartCell, (*robust.CampaignCheckpoint).Park,
(*robust.CampaignCheckpoint).Unpark, (*robust.CampaignCheckpoint).Lease,
(*robust.CampaignCheckpoint).ReleaseLease,
(*robust.CampaignCheckpoint).AddPartialObservation;
(*robust.Breaker).Acquire, (*robust.Breaker).AwaitRecovery.

The lease-ledger trio joins the list with the distributed-campaign
coordinator: a dropped Lease error hides an epoch regression (the zombie
defence), and a dropped AddPartialObservation error silently forfeits
streamed progress the next re-grant was meant to replay.

gp.SelectInducing joins with the sparse surrogate: its error is the only
signal that the inducing-point selection was handed an empty point set, an
out-of-range budget, or mismatched lengthscales — proceeding with the nil
index slice builds an empty inducing set and every posterior from it is
garbage.`,
	Run: run,
}

// must maps package path -> function or Type.Method name -> true for
// calls whose error result is load-bearing.
var must = map[string]map[string]bool{
	"ppatuner/internal/mat": {
		"NewCholesky":              true,
		"CholeskyWithJitter":       true,
		"SolveSPD":                 true,
		"Cholesky.Extend":          true,
		"Cholesky.FactorizePacked": true,
	},
	"ppatuner/internal/gp": {
		"SelectInducing": true,
	},
	"ppatuner/internal/robust": {
		"LoadCheckpoint":                           true,
		"Checkpoint.Add":                           true,
		"Checkpoint.Save":                          true,
		"Checkpoint.SetRandState":                  true,
		"Checkpoint.SetIters":                      true,
		"LoadCampaignCheckpoint":                   true,
		"CampaignCheckpoint.Complete":              true,
		"CampaignCheckpoint.StartCell":             true,
		"CampaignCheckpoint.Park":                  true,
		"CampaignCheckpoint.Unpark":                true,
		"CampaignCheckpoint.Lease":                 true,
		"CampaignCheckpoint.ReleaseLease":          true,
		"CampaignCheckpoint.AddPartialObservation": true,
		"Breaker.Acquire":                          true,
		"Breaker.AwaitRecovery":                    true,
	},
}

// curated resolves a call to its curated-list key, or "" if not listed.
func curated(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	byName, ok := must[fn.Pkg().Path()]
	if !ok {
		return ""
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if !byName[name] {
		return ""
	}
	return fn.Pkg().Name() + "." + name
}

// errResultIndex returns the index of the trailing error result of the
// call, or -1 if the call does not return an error.
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	t := info.TypeOf(call)
	if t == nil {
		return -1
	}
	if tup, ok := t.(*types.Tuple); ok {
		last := tup.Len() - 1
		if last >= 0 && isErrorType(tup.At(last).Type()) {
			return last
		}
		return -1
	}
	if isErrorType(t) {
		return 0
	}
	return -1
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				report(pass, st.X, "")
			case *ast.GoStmt:
				report(pass, st.Call, "go ")
			case *ast.DeferStmt:
				report(pass, st.Call, "defer ")
			case *ast.AssignStmt:
				checkAssign(pass, st)
			}
			return true
		})
	}
	return nil, nil
}

// report flags expr if it is a curated call whose results are all dropped.
func report(pass *analysis.Pass, expr ast.Expr, prefix string) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	name := curated(pass.TypesInfo, call)
	if name == "" || errResultIndex(pass.TypesInfo, call) < 0 {
		return
	}
	pass.Reportf(call.Pos(),
		"%s%s discards its error; a non-PD factorisation or lost checkpoint write must not pass silently", prefix, name)
}

// checkAssign flags curated calls whose error result lands in the blank
// identifier, e.g. `c, _ := mat.NewCholesky(a)`.
func checkAssign(pass *analysis.Pass, st *ast.AssignStmt) {
	// Single call with tuple destructuring: Lhs aligns with the call's
	// result tuple.
	if len(st.Rhs) == 1 {
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		name := curated(pass.TypesInfo, call)
		if name == "" {
			return
		}
		idx := errResultIndex(pass.TypesInfo, call)
		if idx < 0 || idx >= len(st.Lhs) {
			return
		}
		if id, ok := st.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(call.Pos(),
				"%s assigns its error to _; a non-PD factorisation or lost checkpoint write must not pass silently", name)
		}
		return
	}
	// Parallel assignment: each RHS maps to one LHS.
	for i, rhs := range st.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		name := curated(pass.TypesInfo, call)
		if name == "" || errResultIndex(pass.TypesInfo, call) < 0 || i >= len(st.Lhs) {
			continue
		}
		if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(call.Pos(),
				"%s assigns its error to _; a non-PD factorisation or lost checkpoint write must not pass silently", name)
		}
	}
}
