package mustcheck_test

import (
	"testing"

	"ppatuner/internal/analysis/analysistest"
	"ppatuner/internal/analysis/mustcheck"
)

// The fixture stubs ppatuner/internal/mat and ppatuner/internal/robust
// with just enough API surface for the curated-list type checks; package
// "a" exercises discarded and checked calls against them.
func TestMustCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), mustcheck.Analyzer, "a")
}
