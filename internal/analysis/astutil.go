package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared AST/type helpers for the analyzers. These deliberately stay
// syntactic where x/tools would offer SSA: the invariants ppalint enforces
// are local enough that lexical capture analysis plus type information
// catches the real regressions without a dataflow engine.

// Render returns the source text of an expression (types.ExprString), used
// to compare expressions for syntactic identity.
func Render(e ast.Expr) string { return types.ExprString(e) }

// RootIdent peels index, selector, star, and paren wrappers off an
// assignable expression and returns the base identifier, or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// DeclaredOutside reports whether id's object is declared outside the span
// [pos, end) — i.e. the identifier is captured from an enclosing scope.
func DeclaredOutside(info *types.Info, id *ast.Ident, pos, end token.Pos) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < pos || obj.Pos() >= end
}

// IsFloat reports whether t's underlying type is a floating-point basic.
func IsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// IsBuiltinAppend reports whether call invokes the append builtin.
func IsBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// Mentions reports whether n contains an identifier or selector whose
// source text equals text.
func Mentions(n ast.Node, text string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.Ident:
			if e.Name == text {
				found = true
			}
		case *ast.SelectorExpr:
			if Render(e) == text {
				found = true
			}
		}
		return !found
	})
	return found
}

// EnclosingStmtList returns the statement list (block or switch/select
// clause body) that directly contains target, or nil.
func EnclosingStmtList(file *ast.File, target ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	contains := func(list []ast.Stmt) bool {
		for _, st := range list {
			if st == target {
				return true
			}
		}
		return false
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		switch b := n.(type) {
		case *ast.BlockStmt:
			if contains(b.List) {
				out = b.List
			}
		case *ast.CaseClause:
			if contains(b.Body) {
				out = b.Body
			}
		case *ast.CommClause:
			if contains(b.Body) {
				out = b.Body
			}
		}
		return out == nil
	})
	return out
}
