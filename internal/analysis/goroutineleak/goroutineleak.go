// Package goroutineleak requires a provable join or termination path for
// every goroutine spawned by the distributed layer.
//
// The coordinator event loop, the worker heartbeat, the transport accept
// loop and the robust attempt runner all spawn goroutines; the resilience
// contract ("a worker death stretches wall-clock time, never results")
// assumes each one terminates or is joined. A goroutine parked forever on a
// channel nobody closes or a Recv nobody unblocks is invisible to the
// tests — it only shows up as a slow leak under campaign load — so the
// termination argument is checked statically at every go statement.
//
// A go statement passes if either
//
//   - it is WaitGroup-joined: the spawned body (or the named function it
//     runs) defers a sync.WaitGroup Done, and the spawning function calls
//     Add on a WaitGroup before the go statement; or
//   - every potentially-forever blocking operation the goroutine can reach
//     (through intra-package helpers, via the call graph) carries a
//     termination waiver: bounded by construction (time.Sleep), released by
//     context cancellation (the call takes a ctx, or a select has a
//     ctx.Done case), a send into a channel this package visibly buffers, a
//     receive or select released by a close() in this package, a select
//     with a default, or a blocking call on a value whose Close this
//     package invokes.
//
// Soundness tradeoffs, accepted and documented: calls of unknown function
// values are assumed to terminate, a visibly-buffered send is trusted not
// to outlive its buffer, and a package-wide Close reference waives calls on
// that type anywhere in the package. The analyzer errs toward silence on
// idioms the codebase sanctions; the race/shuffle CI job backstops the
// dynamic side.
package goroutineleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"ppatuner/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc: `require a join or termination path for every spawned goroutine

Every go statement in non-test code of the concurrency-covered packages
(internal/shard, internal/shard/transport, internal/robust, internal/par)
must be WaitGroup-joined (Add before the go statement, deferred Done in the
body) or have every reachable blocking operation waived by a termination
path: context cancellation, a close-signalled channel, a select default, a
locally buffered send, or a Close the package invokes. Intra-package helper
calls are followed through the call graph.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.ConcurrencyPolicy(pass.Pkg.Path()) {
		return nil, nil
	}
	graph := analysis.BuildCallGraph(pass)
	facts := analysis.GatherPkgFacts(pass)

	// Per-function summaries: the blocking ops without a termination waiver.
	unwaived := map[*types.Func][]analysis.BlockingOp{}
	for _, fi := range graph.Funcs() {
		if fi.Decl == nil || fi.Decl.Body == nil {
			continue
		}
		unwaived[fi.Obj] = rejectOps(analysis.ScanBlockingOps(pass, facts, fi.Decl.Body))
	}
	mayBlock := graph.Propagate(func(fi *analysis.FuncInfo) bool {
		return len(unwaived[fi.Obj]) > 0
	})

	for _, file := range pass.Files {
		if analysis.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		// Collect every function body and every go statement, then resolve
		// each go statement's innermost enclosing body by position — that is
		// where the matching WaitGroup.Add must appear.
		var bodies []*ast.BlockStmt
		var gos []*ast.GoStmt
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncDecl:
				if st.Body != nil {
					bodies = append(bodies, st.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, st.Body)
			case *ast.GoStmt:
				gos = append(gos, st)
			}
			return true
		})
		for _, g := range gos {
			checkGo(pass, graph, facts, unwaived, mayBlock, g, enclosingBody(bodies, g))
		}
	}
	return nil, nil
}

// enclosingBody returns the innermost function body containing g.
func enclosingBody(bodies []*ast.BlockStmt, g *ast.GoStmt) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= g.Pos() && g.End() <= b.End() {
			if best == nil || b.Pos() > best.Pos() {
				best = b
			}
		}
	}
	return best
}

// rejectOps keeps the ops with no goroutineleak termination waiver.
func rejectOps(ops []analysis.BlockingOp) []analysis.BlockingOp {
	var out []analysis.BlockingOp
	for _, op := range ops {
		if !waived(op) {
			out = append(out, op)
		}
	}
	return out
}

// waived reports whether one blocking op has a termination path on its own.
func waived(op analysis.BlockingOp) bool {
	if op.Bounded || op.CtxBounded || op.HasDefault {
		return true
	}
	switch op.Kind {
	case analysis.BlockSend:
		return op.BufferedLocal
	case analysis.BlockRecv, analysis.BlockRange, analysis.BlockSelect:
		return op.CloseSignalled
	case analysis.BlockCall:
		return op.CloseReleased
	}
	return false
}

func checkGo(pass *analysis.Pass, graph *analysis.CallGraph, facts *analysis.PkgFacts,
	unwaived map[*types.Func][]analysis.BlockingOp, mayBlock map[*types.Func]bool,
	g *ast.GoStmt, spawner *ast.BlockStmt) {

	// Resolve the spawned body: a func literal, or the declaration of a
	// statically-called intra-package function.
	var body *ast.BlockStmt
	var callees []*types.Func
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
		callees = analysis.CalleesIn(pass, fun.Body)
	default:
		_ = fun
		if fn := analysis.StaticCallee(pass.TypesInfo, g.Call); fn != nil {
			if fi := graph.Lookup(fn); fi != nil && fi.Decl != nil && fi.Decl.Body != nil {
				body = fi.Decl.Body
				callees = []*types.Func{fn}
				break
			}
			// Foreign or bodyless target: a context argument is the only
			// termination evidence we can see.
			if analysis.HasContextArg(pass.TypesInfo, g.Call) {
				return
			}
			pass.Reportf(g.Pos(),
				"goroutine runs %s, which this analyzer cannot see into and which takes no context; give it a cancellation path or join it with a WaitGroup", fn.FullName())
			return
		}
		// Dynamic function value.
		if analysis.HasContextArg(pass.TypesInfo, g.Call) {
			return
		}
		pass.Reportf(g.Pos(),
			"goroutine runs a dynamic function value with no context argument; no provable join or termination path")
		return
	}

	// Path 1: WaitGroup join.
	if hasDeferredDone(pass.TypesInfo, body) && spawner != nil && hasAddBefore(pass.TypesInfo, spawner, g.Pos()) {
		return
	}

	// Path 2: every reachable blocking op is waived.
	if fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		for _, op := range rejectOps(analysis.ScanBlockingOps(pass, facts, fl.Body)) {
			pass.Reportf(op.Pos,
				"goroutine may block forever on %s; no join or termination path (want WaitGroup join, close-signalled channel, or context cancellation)", op.What)
		}
	}
	for _, callee := range callees {
		if !mayBlock[callee] {
			continue
		}
		if op := firstUnwaived(graph, unwaived, callee, map[*types.Func]bool{}); op != nil {
			opPos := pass.Fset.Position(op.Pos)
			pass.Reportf(g.Pos(),
				"goroutine calls %s, which may block forever on %s (%s:%d); no join or termination path",
				callee.Name(), op.What, filepath.Base(opPos.Filename), opPos.Line)
		} else {
			pass.Reportf(g.Pos(),
				"goroutine calls %s, which may block forever; no join or termination path", callee.Name())
		}
	}
}

// firstUnwaived finds, depth-first in source order, the first unwaived
// blocking op reachable from fn — the concrete evidence quoted in the
// transitive diagnostic.
func firstUnwaived(graph *analysis.CallGraph, unwaived map[*types.Func][]analysis.BlockingOp,
	fn *types.Func, visited map[*types.Func]bool) *analysis.BlockingOp {
	if visited[fn] {
		return nil
	}
	visited[fn] = true
	if ops := unwaived[fn]; len(ops) > 0 {
		return &ops[0]
	}
	fi := graph.Lookup(fn)
	if fi == nil {
		return nil
	}
	for _, callee := range fi.Calls {
		if op := firstUnwaived(graph, unwaived, callee, visited); op != nil {
			return op
		}
	}
	return nil
}

// isWaitGroupCall reports whether call invokes the named sync.WaitGroup
// method.
func isWaitGroupCall(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := analysis.StaticCallee(info, call)
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// hasDeferredDone reports whether body defers a WaitGroup.Done — directly
// (defer wg.Done()) or inside a deferred func literal.
func hasDeferredDone(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if isWaitGroupCall(info, st.Call, "Done") {
				found = true
				return false
			}
			if fl, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && isWaitGroupCall(info, c, "Done") {
						found = true
					}
					return !found
				})
			}
			return false
		}
		return true
	})
	return found
}

// hasAddBefore reports whether the spawning body calls WaitGroup.Add at a
// position before the go statement.
func hasAddBefore(info *types.Info, spawner *ast.BlockStmt, goPos token.Pos) bool {
	found := false
	ast.Inspect(spawner, func(n ast.Node) bool {
		if found {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok && c.Pos() < goPos && isWaitGroupCall(info, c, "Add") {
			found = true
		}
		return !found
	})
	return found
}
