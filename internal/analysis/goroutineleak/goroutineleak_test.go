package goroutineleak_test

import (
	"testing"

	"ppatuner/internal/analysis/analysistest"
	"ppatuner/internal/analysis/goroutineleak"
)

// The shard fixture covers the direct shapes (unjoined reader flagged;
// WaitGroup join, context bound, close signal, buffered send, and a
// justified suppression all silent), the transport fixture covers the
// close-released Conn waiver, and the robust fixture covers the transitive
// helper-chain case plus the buffered attempt idiom.
func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), goroutineleak.Analyzer,
		"ppatuner/internal/shard",
		"ppatuner/internal/shard/transport",
		"ppatuner/internal/robust")
}
