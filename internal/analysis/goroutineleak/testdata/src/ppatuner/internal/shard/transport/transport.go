// Package transport is a fixture for the close-released waiver: this
// package calls Close on the shard.Conn it reads, so the parked Recv has a
// visible unblocking path and the reader needs no join.
package transport

import "ppatuner/internal/shard"

// serve mirrors the real accept loop: the reader is released by the
// Close below, not by a join.
func serve(c shard.Conn) {
	go func() {
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	_ = c.Close()
}
