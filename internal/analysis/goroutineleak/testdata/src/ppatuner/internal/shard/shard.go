// Package shard is a fixture mirroring the real shard package's spawn
// shapes: the import path puts it under the concurrency policy, and the
// local Conn interface matches the wire API the blocking classifier
// recognises by path.
package shard

import (
	"context"
	"sync"
	"time"
)

// Msg is a stand-in wire message.
type Msg struct{}

// Conn matches the real shard.Conn surface.
type Conn interface {
	Send(Msg) error
	Recv() (Msg, error)
	Close() error
}

// event mirrors the coordinator's event envelope.
type event struct {
	msg Msg
	err error
}

// leakyReader is the pre-fix coordinator shape: an unjoined reader parked
// in Recv with nothing in this package ever closing a Conn, feeding an
// unbuffered channel nobody may drain.
func leakyReader(c Conn) {
	events := make(chan event)
	go func() {
		for {
			m, err := c.Recv()                // want `may block forever on shard\.Conn\.Recv`
			events <- event{msg: m, err: err} // want `may block forever on send`
		}
	}()
	<-events
}

// joinedWorker is the sanctioned WaitGroup shape: Add before the go
// statement, deferred Done in the body. The blocking Recv inside needs no
// waiver because the spawner owns the join.
func joinedWorker(c Conn) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	wg.Wait()
}

// ctxBounded is the alarm shape: every block is released by context
// cancellation or bounded outright.
func ctxBounded(ctx context.Context, out chan<- struct{}) {
	go func() {
		time.Sleep(time.Millisecond)
		select {
		case out <- struct{}{}:
		case <-ctx.Done():
		}
	}()
}

// closeSignalled parks on a channel this package visibly closes.
func closeSignalled() {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	close(done)
}

// bufferedResult sends into a channel the spawner sized for exactly this
// goroutine's output — the robust attempt shape.
func bufferedResult() <-chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	return ch
}

// dynamicNoCtx spawns a function value the analyzer cannot see into.
func dynamicNoCtx(f func()) {
	go f() // want `dynamic function value with no context argument`
}

// dynamicWithCtx passes a context, the visible termination evidence for an
// opaque callee.
func dynamicWithCtx(ctx context.Context, f func(context.Context)) {
	go f(ctx)
}

// suppressed documents a deliberate leak: the justified allow directive
// silences the diagnostic.
func suppressed(c Conn) {
	go func() {
		//ppalint:allow goroutineleak fixture documents a deliberately detached reader
		_, _ = c.Recv()
	}()
}
