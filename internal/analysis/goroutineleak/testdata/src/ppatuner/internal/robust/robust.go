// Package robust is a fixture for the call-graph side of goroutineleak: a
// go statement running a named function is judged by what that function
// (transitively) does.
package robust

import "context"

type executor struct {
	idle chan struct{}
	tool func(context.Context, int) error
}

// loop looks innocent; the block hides one helper down.
func (e *executor) loop() {
	e.park()
}

// park blocks forever: nothing in this package closes idle.
func (e *executor) park() {
	<-e.idle
}

// spawnLoop must be flagged through the helper chain loop -> park.
func spawnLoop(e *executor) {
	go e.loop() // want `calls loop, which may block forever on receive on channel "e\.idle"`
}

// attempt is the real package's sanctioned shape: the result channel is
// buffered for exactly one outcome and the tool call carries the context.
func attempt(ctx context.Context, e *executor, i int) error {
	ch := make(chan error, 1)
	go func() {
		ch <- e.tool(ctx, i)
	}()
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}
