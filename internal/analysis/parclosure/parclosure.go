// Package parclosure guards the serial==parallel bit-identity contract at
// its narrowest point: the closures handed to internal/par's fork-join
// helpers.
//
// par.Do shards an index range across workers; the contract (pinned by the
// core and gp equivalence tests) is that any worker count reproduces the
// serial loop bit-for-bit. That holds only if shards touch disjoint
// per-index slots. Three capture patterns break it: sharing one *rand.Rand
// across shards (draw order becomes schedule-dependent), mutating a
// captured scalar (a data race and an order-dependent fold), and ranging
// over a map inside the closure (per-shard iteration order varies). Each is
// flagged at the capture site.
package parclosure

import (
	"go/ast"
	"go/types"

	"ppatuner/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "parclosure",
	Doc: `flag closures passed to internal/par helpers that break bit-identity

Inside a func literal passed to a ppatuner/internal/par fork-join helper,
three things are flagged: use of a captured *math/rand.Rand (plumb
per-shard RNGs split from the seed instead), assignment or ++/-- to a
captured non-indexed variable (shards race and the merge order is
schedule-dependent; per-index writes like out[i] = v are the sanctioned
pattern), and any range over a map (iteration order varies per shard).`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParHelper(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					checkClosure(pass, fl)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isParHelper reports whether call invokes a function exported by the
// internal/par package (the fork-join surface).
func isParHelper(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "ppatuner/internal/par"
}

// isRandType reports whether t is (a pointer to) math/rand's or
// math/rand/v2's Rand.
func isRandType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "math/rand" || path == "math/rand/v2"
}

func checkClosure(pass *analysis.Pass, fl *ast.FuncLit) {
	captured := func(id *ast.Ident) bool {
		return analysis.DeclaredOutside(pass.TypesInfo, id, fl.Pos(), fl.End())
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[st]; obj != nil && captured(st) && isRandType(obj.Type()) {
				pass.Reportf(st.Pos(),
					"par closure captures shared RNG %s; a schedule-dependent draw order breaks serial==parallel bit-identity — split per-shard RNGs from the seed", st.Name)
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && captured(id) {
					pass.Reportf(st.Pos(),
						"par closure mutates captured variable %s; shards race and the result depends on the schedule — write to disjoint per-index slots instead", id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := st.X.(*ast.Ident); ok && captured(id) {
				pass.Reportf(st.Pos(),
					"par closure mutates captured variable %s; shards race and the result depends on the schedule — write to disjoint per-index slots instead", id.Name)
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(st.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(st.Pos(),
						"par closure ranges over a map; iteration order varies per shard and per run — iterate a sorted key slice")
				}
			}
		}
		return true
	})
}
