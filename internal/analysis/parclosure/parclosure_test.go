package parclosure_test

import (
	"testing"

	"ppatuner/internal/analysis/analysistest"
	"ppatuner/internal/analysis/parclosure"
)

// The fixture stubs ppatuner/internal/par with a serial Do; the analyzer
// keys on the import path, so the stub exercises the same resolution as
// the real fork-join helper.
func TestParClosure(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), parclosure.Analyzer, "a")
}
