// Fixture for the parclosure analyzer: closures handed to par helpers that
// capture a shared RNG, mutate captured variables, or range maps are
// flagged; the disjoint-per-index-slot pattern passes.
package a

import (
	"math/rand"

	"ppatuner/internal/par"
)

func flagSharedRNG(rng *rand.Rand, out []float64) {
	par.Do(4, len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = rng.Float64() // want `par closure captures shared RNG rng`
		}
	})
}

func flagCapturedMutation(xs []float64) float64 {
	var sum float64
	par.Do(4, len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want `par closure mutates captured variable sum`
		}
	})
	return sum
}

func flagMapRange(m map[int]float64, out []float64) {
	par.Do(4, len(out), func(lo, hi int) {
		i := lo
		for _, v := range m { // want `par closure ranges over a map`
			out[i] = v
			i++
		}
	})
}

// okDisjointSlots is the sanctioned shape: per-shard RNG derived from a
// seed table, writes only to disjoint per-index slots, locals stay local.
func okDisjointSlots(xs, out []float64, seeds []int64) {
	par.Do(4, len(xs), func(lo, hi int) {
		rng := rand.New(rand.NewSource(seeds[0]))
		scale := 1.0
		for i := lo; i < hi; i++ {
			scale *= 0.5
			out[i] = xs[i] * rng.Float64() * scale
		}
	})
}
