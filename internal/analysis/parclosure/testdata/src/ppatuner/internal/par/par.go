// Stub of the real internal/par fork-join surface for the parclosure
// analyzer fixture.
package par

func Do(workers, n int, fn func(lo, hi int)) {
	fn(0, n)
}
