package analysis

import "strings"

// The determinism policy table. A tuner run must be a pure function of
// (seed, pool, options): the paper's Table 1 / Fig. 3 reproductions and the
// serial==parallel bit-identity tests are meaningless if wall-clock time or
// the global math/rand source can leak into results. The nodeterminism
// analyzer enforces that inside the packages listed here; everything else
// (cmd/, examples/, the evaluation harness) may read clocks for logging and
// progress without invalidating results.
//
// Adding an entry to Exempt is an auditable act: every entry must carry a
// reason, and the reason is echoed in the diagnostic docs.

// Deterministic lists the package-path prefixes whose non-test code must be
// reproducible from a seed: no wall clock, no global RNG. Explicit
// *rand.Rand values plumbed from a seed are the only sanctioned randomness.
var Deterministic = []string{
	"ppatuner/internal/core",
	// internal/gp includes the sparse inducing-point surrogate: its
	// farthest-point selection is a pure function of (inputs, lengthscales,
	// caller-provided seed), so the whole package stays under the ban — no
	// RNG draws or wall-clock reads anywhere in the approximation.
	"ppatuner/internal/gp",
	"ppatuner/internal/mat",
	"ppatuner/internal/sample",
	"ppatuner/internal/pareto",
	"ppatuner/internal/pdtool",
	"ppatuner/internal/par",
	"ppatuner/internal/tree",
	"ppatuner/internal/shard",
}

// Exemption carves a package subtree out of the determinism ban, with the
// documented reason. Ordered and prefix-matched most-specific-first so the
// table stays deterministic if subtrees ever overlap.
type Exemption struct {
	Prefix string
	Reason string
}

// Exempt records the packages that sit adjacent to (or inside) the
// deterministic set but legitimately touch the wall clock.
// internal/robust is the canonical entry: its deadlines, retry backoff, and
// failure-event timestamps are wall-clock by design (they guard against
// hung EDA tool invocations) and are kept out of every numerical result.
var Exempt = []Exemption{
	{
		Prefix: "ppatuner/internal/clock",
		Reason: "the sanctioned wall-clock access point: Real() is the wall clock by definition; every fault-tolerance consumer takes it as an injected Clock so tests substitute the deterministic fake and the nodeterminism exemptions elsewhere stay narrow",
	},
	{
		Prefix: "ppatuner/internal/pdtool/chaos",
		Reason: "fault injector: simulated hangs and outage-window membership run on an injected Clock (wall clock by default); which evaluations fail is still drawn from the seeded injector RNG or the seed-derived outage schedule",
	},
	{
		Prefix: "ppatuner/internal/shard/transport",
		Reason: "the shard subsystem's only non-deterministic layer: TCP dials, stdio pipes, subprocess spawning and fault-injected delivery are wall-clock by nature; the coordinator, ledger and worker logic above it run on an injected Clock and stay under the determinism ban",
	},
	{
		Prefix: "ppatuner/internal/robust",
		Reason: "fault-tolerance layer: deadlines, retry backoff, circuit-breaker dwells and failure timestamps run on an injected Clock (wall clock by contract) and never enter QoR vectors",
	},
}

// Concurrent lists the exact package paths whose non-test code is subject
// to the concurrency analyzers (goroutineleak, lockio): the layers that own
// goroutines, locks and wire I/O. Fixtures register the same paths, so the
// analyzers behave identically under test.
var Concurrent = []string{
	"ppatuner/internal/shard",
	"ppatuner/internal/shard/transport",
	"ppatuner/internal/robust",
	"ppatuner/internal/par",
	// The job server owns campaign-runner goroutines, per-client queues and
	// the SSE broadcast path — exactly the leak/lock-inversion surface the
	// analyzers exist for.
	"ppatuner/internal/serve",
}

// ConcurrencyPolicy reports whether pkgPath's non-test code is covered by
// the goroutineleak and lockio analyzers.
func ConcurrencyPolicy(pkgPath string) bool {
	for _, p := range Concurrent {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// DeterminismPolicy reports whether pkgPath falls under the determinism
// ban, and if it is exempt, the documented reason.
func DeterminismPolicy(pkgPath string) (covered bool, exemptReason string) {
	for _, e := range Exempt {
		if pkgPath == e.Prefix || strings.HasPrefix(pkgPath, e.Prefix+"/") {
			return false, e.Reason
		}
	}
	for _, prefix := range Deterministic {
		if pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/") {
			return true, ""
		}
	}
	return false, ""
}
