// Package load type-checks Go packages from source using only the standard
// library, for consumption by the ppalint analyzers. It exists because the
// canonical loaders (golang.org/x/tools/go/packages and the analysistest
// harness) live in x/tools, which this module deliberately does not depend
// on: builds run in hermetic environments with no module proxy. Standard
// library imports are satisfied by the stdlib source importer
// (go/importer.ForCompiler "source"); everything else is resolved through a
// caller-supplied directory resolver, so the same loader serves both the
// real module tree (cmd/ppalint) and analyzer test fixtures
// (internal/analysis/analysistest).
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// A Loader loads and caches type-checked packages. It is not safe for
// concurrent use.
type Loader struct {
	// Resolve maps an import path to the directory holding its source, or
	// reports false to fall back to the standard-library source importer.
	Resolve func(importPath string) (dir string, ok bool)
	// GoVersion sets the language version for type checking (e.g. "go1.23").
	GoVersion string
	// IncludeTests adds in-package _test.go files to loaded packages.
	IncludeTests bool

	Fset *token.FileSet

	std   types.Importer
	cache map[string]*Package
}

func (l *Loader) init() {
	if l.Fset == nil {
		l.Fset = token.NewFileSet()
	}
	if l.std == nil {
		l.std = importer.ForCompiler(l.Fset, "source", nil)
	}
	if l.cache == nil {
		l.cache = make(map[string]*Package)
	}
}

// Load type-checks the package at importPath (resolved via Resolve) along
// with its transitive module-local imports.
func (l *Loader) Load(importPath string) (*Package, error) {
	l.init()
	if p, ok := l.cache[importPath]; ok {
		if p == nil {
			return nil, fmt.Errorf("load: import cycle through %q", importPath)
		}
		return p, nil
	}
	dir, ok := l.Resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("load: no source directory for %q", importPath)
	}
	l.cache[importPath] = nil // cycle marker
	p, err := l.loadDir(importPath, dir)
	if err != nil {
		delete(l.cache, importPath)
		return nil, err
	}
	l.cache[importPath] = p
	return p, nil
}

// loadDir parses the build-constrained file list of dir and type-checks it.
func (l *Loader) loadDir(importPath, dir string) (*Package, error) {
	ctx := build.Default
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", importPath, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load %s: no Go files in %s", importPath, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{
		Importer:  importerFunc(l.importPkg),
		GoVersion: l.GoVersion,
	}
	pkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{PkgPath: importPath, Fset: l.Fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// LoadXTest type-checks the external test package (package foo_test) of
// importPath, or returns nil if the directory has none. External test
// packages are not importable, so the result is not cached.
func (l *Loader) LoadXTest(importPath string) (*Package, error) {
	l.init()
	dir, ok := l.Resolve(importPath)
	if !ok {
		return nil, fmt.Errorf("load: no source directory for %q", importPath)
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", importPath, err)
	}
	if len(bp.XTestGoFiles) == 0 {
		return nil, nil
	}
	names := append([]string(nil), bp.XTestGoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: importerFunc(l.importPkg), GoVersion: l.GoVersion}
	pkg, err := conf.Check(importPath+"_test", l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s_test: %w", importPath, err)
	}
	return &Package{PkgPath: importPath + "_test", Fset: l.Fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// importPkg satisfies imports during type checking: resolver-known paths
// load recursively from source, everything else defers to the stdlib
// source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if _, ok := l.Resolve(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
