// Package wirecompat locks the JSON wire and checkpoint schema against a
// committed golden file.
//
// Two JSON surfaces outlive any single process: the shard protocol
// (everything reachable from shard.Msg crosses the coordinator/worker
// boundary, possibly between binaries built from different commits) and the
// robust checkpoint files (everything reachable from the versioned
// checkpoint/campaign envelopes is read back by future runs). DESIGN.md
// promises "schema vN loads transparently"; that promise dies silently the
// day a field is renamed, retyped, or has its json tag edited, because
// encoding/json just drops unknown keys. The analyzer extracts the
// reachable struct schemas with go/types, compares them against the
// committed lock file (wire.lock at the module root), and fails lint on
// anything but a new-field-only addition — and additions still fail until
// `ppalint -update-wirelock` records them, so every schema change is a
// reviewed diff of the lock file.
package wirecompat

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"ppatuner/internal/analysis"
)

// DefaultRoots maps each wire-root package to the (possibly unexported)
// type names whose reachable JSON surface is locked: the shard protocol
// envelope and the two robust checkpoint file envelopes.
var DefaultRoots = map[string][]string{
	// Msg is the worker protocol; BeaconState is the fail-over liveness
	// file a standby of a *different build* may read.
	"ppatuner/internal/shard":  {"Msg", "BeaconState"},
	"ppatuner/internal/robust": {"checkpointFile", "campaignFile", "jobsFile"},
	// The job server's HTTP API: request/response documents plus the SSE
	// event framing. Deployed clients hold the other end of these schemas.
	"ppatuner/internal/serve": {
		"JobRequest", "SubmitResponse", "JobView", "JobListDoc",
		"FrontDoc", "Event", "EventPage", "ErrorDoc", "HealthDoc",
	},
}

// LockFileName is the golden schema file, committed at the module root.
const LockFileName = "wire.lock"

// Config parameterises the analyzer so fixtures can point it at their own
// roots and lock file.
type Config struct {
	// Roots maps root package path -> root type names.
	Roots map[string][]string
	// LockPath is the lock file location; empty means <module root>/wire.lock,
	// with the module root discovered by walking up from the package's files.
	LockPath string
}

// New builds a wirecompat analyzer for the given configuration.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "wirecompat",
		Doc: `lock the JSON wire/checkpoint schema against the committed wire.lock

Every struct reachable from the wire roots (shard.Msg and the robust
checkpoint envelopes) is extracted into a schema and compared against the
golden wire.lock at the module root. Removing or renaming a field, changing
its type, or editing its json tag fails lint; additions are allowed but
must be recorded by regenerating the file with ppalint -update-wirelock, so
every schema change shows up as a reviewed lock-file diff. Exported fields
without a json tag are flagged too: the implicit field name is wire format.`,
		Run: func(pass *analysis.Pass) (any, error) { return run(pass, cfg) },
	}
}

// Analyzer is the production instance over the repo's wire roots.
var Analyzer = New(Config{Roots: DefaultRoots})

// A Field is one JSON-visible struct field in the schema.
type Field struct {
	// Name is the Go field name.
	Name string
	// Tag is the json tag's name part ("" when untagged).
	Tag string
	// Type is the field's type, rendered with full package paths.
	Type string
}

// A Schema maps a struct's full name (pkgpath.TypeName) to its
// JSON-visible fields, sorted by field name (field order is not wire
// format; names and tags are).
type Schema map[string][]Field

// Extract walks the named root types of pkg and returns the schema of
// every reachable named struct. Traversal follows struct fields through
// pointers, slices, arrays and maps; unexported fields and fields tagged
// json:"-" are invisible to encoding/json and are skipped.
func Extract(pkg *types.Package, rootNames []string) (Schema, error) {
	schema := Schema{}
	var visit func(t types.Type)
	visit = func(t types.Type) {
		switch tt := t.(type) {
		case *types.Pointer:
			visit(tt.Elem())
		case *types.Slice:
			visit(tt.Elem())
		case *types.Array:
			visit(tt.Elem())
		case *types.Map:
			visit(tt.Key())
			visit(tt.Elem())
		case *types.Named:
			st, ok := tt.Underlying().(*types.Struct)
			if !ok {
				return
			}
			key := typeKey(tt)
			if _, done := schema[key]; done {
				return
			}
			schema[key] = nil // reserve before recursing: cycles terminate
			var fields []Field
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() {
					continue
				}
				tag := reflect.StructTag(st.Tag(i)).Get("json")
				name := strings.Split(tag, ",")[0]
				if name == "-" {
					continue
				}
				fields = append(fields, Field{Name: f.Name(), Tag: name, Type: types.TypeString(f.Type(), nil)})
				visit(f.Type())
			}
			sort.Slice(fields, func(i, j int) bool { return fields[i].Name < fields[j].Name })
			schema[key] = fields
		}
	}
	for _, name := range rootNames {
		obj := pkg.Scope().Lookup(name)
		if obj == nil {
			return nil, fmt.Errorf("wire root %s not found in %s", name, pkg.Path())
		}
		visit(obj.Type())
	}
	return schema, nil
}

func typeKey(t *types.Named) string {
	obj := t.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// FormatLock renders the full lock file: one "root" section per root
// package, structs and fields in sorted order, so regeneration is
// byte-deterministic.
func FormatLock(sections map[string]Schema) string {
	var b strings.Builder
	b.WriteString("# ppalint wirecompat schema lock. Do not edit by hand:\n")
	b.WriteString("# regenerate with `go run ./cmd/ppalint -update-wirelock` and review the diff.\n")
	roots := make([]string, 0, len(sections))
	for r := range sections {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for _, r := range roots {
		fmt.Fprintf(&b, "\nroot %s\n", r)
		schema := sections[r]
		keys := make([]string, 0, len(schema))
		for k := range schema {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "struct %s\n", k)
			for _, f := range schema[k] {
				fmt.Fprintf(&b, "field %s json=%s type=%s\n", f.Name, f.Tag, f.Type)
			}
		}
	}
	return b.String()
}

// ParseLock reads the lock file format back into per-root schemas.
func ParseLock(data string) (map[string]Schema, error) {
	sections := map[string]Schema{}
	var curSchema Schema
	curStruct := ""
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "root "):
			root := strings.TrimSpace(strings.TrimPrefix(line, "root "))
			curSchema = Schema{}
			sections[root] = curSchema
			curStruct = ""
		case strings.HasPrefix(line, "struct "):
			if curSchema == nil {
				return nil, fmt.Errorf("line %d: struct before any root", ln+1)
			}
			curStruct = strings.TrimSpace(strings.TrimPrefix(line, "struct "))
			curSchema[curStruct] = []Field{}
		case strings.HasPrefix(line, "field "):
			if curStruct == "" {
				return nil, fmt.Errorf("line %d: field before any struct", ln+1)
			}
			rest := strings.TrimPrefix(line, "field ")
			name, rest, ok := strings.Cut(rest, " json=")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed field line", ln+1)
			}
			tag, typ, ok := strings.Cut(rest, " type=")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed field line", ln+1)
			}
			curSchema[curStruct] = append(curSchema[curStruct], Field{Name: name, Tag: tag, Type: typ})
		default:
			return nil, fmt.Errorf("line %d: unrecognised lock line %q", ln+1, line)
		}
	}
	return sections, nil
}

func run(pass *analysis.Pass, cfg Config) (any, error) {
	rootNames, ok := cfg.Roots[pass.Pkg.Path()]
	if !ok {
		return nil, nil
	}
	current, err := Extract(pass.Pkg, rootNames)
	if err != nil {
		return nil, err
	}

	structPos, fieldPos, fallback := declIndex(pass)
	posFor := func(structKey, fieldName string) token.Pos {
		if fieldName != "" {
			if p, ok := fieldPos[structKey][fieldName]; ok {
				return p
			}
		}
		if p, ok := structPos[structKey]; ok {
			return p
		}
		return fallback
	}

	lockPath := cfg.LockPath
	if lockPath == "" {
		lockPath = defaultLockPath(pass)
	}
	data, err := os.ReadFile(lockPath)
	if err != nil {
		pass.Reportf(fallback,
			"wirecompat lock file %s is missing; run `go run ./cmd/ppalint -update-wirelock` and commit it", LockFileName)
		return nil, nil
	}
	sections, err := ParseLock(string(data))
	if err != nil {
		pass.Reportf(fallback, "wirecompat lock file %s is corrupt: %v", lockPath, err)
		return nil, nil
	}
	locked, ok := sections[pass.Pkg.Path()]
	if !ok {
		pass.Reportf(fallback,
			"wirecompat lock file has no section for root %s; run `go run ./cmd/ppalint -update-wirelock`", pass.Pkg.Path())
		return nil, nil
	}

	for _, key := range sortedKeys(locked) {
		cur, ok := current[key]
		if !ok {
			pass.Reportf(posFor(key, ""),
				"wire struct %s is locked in %s but no longer reachable from the wire roots; a released decoder still expects it (regenerate the lock only for a deliberate, versioned schema retirement)", key, LockFileName)
			continue
		}
		curByName := map[string]Field{}
		for _, f := range cur {
			curByName[f.Name] = f
		}
		for _, lf := range locked[key] {
			cf, ok := curByName[lf.Name]
			if !ok {
				pass.Reportf(posFor(key, ""),
					"wire struct %s: field %s (json %q) was removed or renamed; persisted checkpoints and peer messages still carry it and would decode incompletely", key, lf.Name, lf.Tag)
				continue
			}
			if cf.Tag != lf.Tag {
				pass.Reportf(posFor(key, lf.Name),
					"wire struct %s: field %s changed json tag %q -> %q; the old key is wire format", key, lf.Name, lf.Tag, cf.Tag)
			}
			if cf.Type != lf.Type {
				pass.Reportf(posFor(key, lf.Name),
					"wire struct %s: field %s changed type %s -> %s; existing encoded values may stop decoding", key, lf.Name, lf.Type, cf.Type)
			}
		}
		lockedNames := map[string]bool{}
		for _, lf := range locked[key] {
			lockedNames[lf.Name] = true
		}
		for _, cf := range cur {
			if !lockedNames[cf.Name] {
				pass.Reportf(posFor(key, cf.Name),
					"wire struct %s: new field %s is not recorded in %s; run `go run ./cmd/ppalint -update-wirelock` and commit the diff", key, cf.Name, LockFileName)
			}
		}
	}
	for _, key := range sortedKeys(current) {
		if _, ok := locked[key]; !ok {
			pass.Reportf(posFor(key, ""),
				"wire struct %s is reachable from the wire roots but not recorded in %s; run `go run ./cmd/ppalint -update-wirelock` and commit the diff", key, LockFileName)
		}
	}
	// Untagged exported fields: the implicit Go field name is the wire
	// format, which makes renames silent schema breaks. Require the tag.
	for _, key := range sortedKeys(current) {
		for _, f := range current[key] {
			if f.Tag == "" {
				pass.Reportf(posFor(key, f.Name),
					"wire struct %s: exported field %s has no json tag; the implicit field name is wire format — tag it explicitly", key, f.Name)
			}
		}
	}
	return nil, nil
}

func sortedKeys(s Schema) []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// declIndex maps struct keys and field names declared in this package to
// their AST positions; foreign structs fall back to the first file.
func declIndex(pass *analysis.Pass) (map[string]token.Pos, map[string]map[string]token.Pos, token.Pos) {
	structPos := map[string]token.Pos{}
	fieldPos := map[string]map[string]token.Pos{}
	fallback := token.NoPos
	for _, file := range pass.Files {
		if fallback == token.NoPos {
			fallback = file.Name.Pos()
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Defs[ts.Name]
			if obj == nil {
				return true
			}
			key := pass.Pkg.Path() + "." + ts.Name.Name
			structPos[key] = ts.Pos()
			if st, ok := ts.Type.(*ast.StructType); ok {
				fp := map[string]token.Pos{}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						fp[name.Name] = name.Pos()
					}
				}
				fieldPos[key] = fp
			}
			return true
		})
	}
	return structPos, fieldPos, fallback
}

// defaultLockPath walks up from the package's source directory to go.mod
// and returns <module root>/wire.lock.
func defaultLockPath(pass *analysis.Pass) string {
	dir := ""
	if len(pass.Files) > 0 {
		dir = filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	}
	for dir != "" {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, LockFileName)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			break
		}
		dir = parent
	}
	return LockFileName
}
