// Package wiregood is the clean wirecompat fixture: the schema matches
// testdata/wiregood.lock exactly, so the analyzer must stay silent.
package wiregood

// Envelope is the fixture wire root.
type Envelope struct {
	Kind string `json:"kind"`
	Seq  int    `json:"seq"`
	Body *Body  `json:"body"`
	Skip func() `json:"-"`
}

// Body is nested and locked.
type Body struct {
	N  int       `json:"n"`
	Vs []float64 `json:"vs"`
}
