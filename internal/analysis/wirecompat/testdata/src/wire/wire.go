// Package wire is a wirecompat fixture: the committed testdata/wire.lock
// records an older schema, and every divergence class must be reported.
// The lock also records a struct wire.Gone that no longer exists, flagged
// at the package clause below.
package wire // want `wire struct wire\.Gone is locked in wire\.lock but no longer reachable`

// Envelope is the fixture wire root.
type Envelope struct { // want `field OldName \(json "old_name"\) was removed or renamed`
	Kind    string  `json:"kind"`     // want `changed json tag "type" -> "kind"`
	Seq     int64   `json:"seq"`      // want `changed type int -> int64`
	NewName string  `json:"new_name"` // want `new field NewName is not recorded`
	Added   bool    `json:"added"`    // want `new field Added is not recorded`
	Bare    float64 // want `exported field Bare has no json tag`
	//ppalint:allow wirecompat fixture demonstrates a reviewed suppression of a tag change
	Quiet string `json:"quiet2"`
	Body  *Body  `json:"body"`
	Extra *Extra `json:"extra"` // want `new field Extra is not recorded`

	hidden int // unexported: invisible to encoding/json, never in the schema
}

// Body is locked and unchanged.
type Body struct {
	N int `json:"n"`
}

// Extra is reachable but absent from the lock.
type Extra struct { // want `wire struct wire\.Extra is reachable from the wire roots but not recorded`
	V string `json:"v"`
}
