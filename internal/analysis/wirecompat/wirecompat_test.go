package wirecompat_test

import (
	"path/filepath"
	"strings"
	"testing"

	"ppatuner/internal/analysis/analysistest"
	"ppatuner/internal/analysis/wirecompat"
)

// The stale-lock fixture exercises every divergence class — a renamed
// field (the acceptance-criteria case), a changed type, an edited tag, an
// unrecorded addition, an untagged exported field, a retired struct, and a
// justified suppression — while the matching-lock fixture must stay silent.
func TestWirecompatFixtures(t *testing.T) {
	td := analysistest.TestData(t)

	stale := wirecompat.New(wirecompat.Config{
		Roots:    map[string][]string{"wire": {"Envelope"}},
		LockPath: filepath.Join(td, "wire.lock"),
	})
	analysistest.Run(t, td, stale, "wire")

	clean := wirecompat.New(wirecompat.Config{
		Roots:    map[string][]string{"wiregood": {"Envelope"}},
		LockPath: filepath.Join(td, "wiregood.lock"),
	})
	analysistest.Run(t, td, clean, "wiregood")
}

// FormatLock and ParseLock must round-trip: regeneration is only
// reviewable if the written file reads back as the same schema.
func TestLockRoundTrip(t *testing.T) {
	sections := map[string]wirecompat.Schema{
		"example.com/a": {
			"example.com/a.T": []wirecompat.Field{
				{Name: "A", Tag: "a", Type: "int"},
				{Name: "B", Tag: "", Type: "map[string][]float64"},
			},
			"example.com/a.Empty": []wirecompat.Field{},
		},
		"example.com/b": {
			"example.com/b.U": []wirecompat.Field{{Name: "C", Tag: "c", Type: "*example.com/a.T"}},
		},
	}
	text := wirecompat.FormatLock(sections)
	got, err := wirecompat.ParseLock(text)
	if err != nil {
		t.Fatalf("ParseLock: %v", err)
	}
	if len(got) != len(sections) {
		t.Fatalf("roots: got %d, want %d", len(got), len(sections))
	}
	for root, schema := range sections {
		gs, ok := got[root]
		if !ok {
			t.Fatalf("root %s missing after round-trip", root)
		}
		if len(gs) != len(schema) {
			t.Fatalf("root %s: %d structs, want %d", root, len(gs), len(schema))
		}
		for key, fields := range schema {
			gf := gs[key]
			if len(gf) != len(fields) {
				t.Fatalf("%s: %d fields, want %d", key, len(gf), len(fields))
			}
			for i := range fields {
				if gf[i] != fields[i] {
					t.Errorf("%s field %d: got %+v, want %+v", key, i, gf[i], fields[i])
				}
			}
		}
	}
	// Determinism: formatting the parsed result reproduces the bytes.
	if again := wirecompat.FormatLock(got); again != text {
		t.Errorf("FormatLock not deterministic after round-trip:\n%s\nvs\n%s", text, again)
	}
	if !strings.Contains(text, "root example.com/a") {
		t.Errorf("lock text missing root header:\n%s", text)
	}
}
