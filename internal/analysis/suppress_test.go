package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressSrc = `package p

func f() {
	a() //ppalint:allow maporder keys are a fixed singleton set in this build
	b() //ppalint:allow maporder
	//ppalint:allow nodeterminism clock feeds the progress bar only, never results
	c()
	d()
}
`

func TestSuppression(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pos := func(sub string) token.Pos {
		return fset.File(f.Pos()).Pos(strings.Index(suppressSrc, sub))
	}
	diags := []Diagnostic{
		{Pos: pos("a()"), Message: "finding on a"}, // justified same-line allow: suppressed
		{Pos: pos("b()"), Message: "finding on b"}, // allow without justification: kept
		{Pos: pos("c()"), Message: "finding on c"}, // line-above allow names a different analyzer
		{Pos: pos("d()"), Message: "finding on d"}, // no allow: kept
	}
	files := []*ast.File{f}

	kept := Filter(fset, files, "maporder", diags)
	got := map[string]bool{}
	for _, d := range kept {
		got[d.Message] = true
	}
	if got["finding on a"] {
		t.Error("justified allow on the same line should suppress the maporder finding on a()")
	}
	if !got["finding on b"] {
		t.Error("allow without a justification must not suppress the finding on b()")
	}
	if !got["finding on c"] || !got["finding on d"] {
		t.Error("findings on c() and d() must be kept for analyzer maporder")
	}

	// The nodeterminism allow on the preceding line covers c() for that
	// analyzer only.
	kept = Filter(fset, files, "nodeterminism", diags)
	got = map[string]bool{}
	for _, d := range kept {
		got[d.Message] = true
	}
	if got["finding on c"] {
		t.Error("justified allow on the preceding line should suppress the nodeterminism finding on c()")
	}
	if !got["finding on a"] {
		t.Error("maporder allow must not suppress a nodeterminism finding on a()")
	}

	// The unjustified directive on b() is itself a finding.
	bad := DirectiveDiagnostics(fset, files)
	if len(bad) != 1 {
		t.Fatalf("DirectiveDiagnostics = %d findings, want 1 (the justification-free allow)", len(bad))
	}
	if line := fset.Position(bad[0].Pos).Line; line != fset.Position(pos("b()")).Line {
		t.Errorf("malformed-directive finding on line %d, want the b() line", line)
	}
}
