// Package analysistest is a minimal re-implementation of the x/tools
// fixture harness for the ppalint analyzers: it loads a package from a
// testdata/src tree, runs one analyzer over it, and checks the reported
// diagnostics against `// want` expectations embedded in the fixture.
//
// Expectation syntax (a subset of x/tools'): a comment containing
//
//	// want `regexp` `another regexp`
//
// on a source line declares that exactly those diagnostics (matched by
// regexp, in any order) are reported on that line. Lines without a want
// comment must report nothing.
//
// Import resolution inside fixtures: any import path with a directory
// under testdata/src/<path> is loaded from there — fixtures stub
// module-internal packages such as ppatuner/internal/par with just enough
// API surface for the analyzer's type checks — and everything else falls
// through to the standard library source importer.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ppatuner/internal/analysis"
	"ppatuner/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata")
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// Run loads each fixture package (an import path under testdata/src), runs
// the analyzer, and verifies the diagnostics against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	loader := &load.Loader{
		GoVersion: "go1.23",
		Resolve: func(importPath string) (string, bool) {
			dir := filepath.Join(src, filepath.FromSlash(importPath))
			if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
				return dir, true
			}
			return "", false
		},
	}
	for _, pkgPath := range pkgPaths {
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
		}
		var diags []analysis.Diagnostic
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkgPath, err)
		}
		// Apply the driver's //ppalint:allow filter, so fixtures can assert
		// that a justified suppression silences a diagnostic.
		diags = analysis.Filter(pkg.Fset, pkg.Files, a.Name, diags)
		check(t, pkg, a.Name, diags)
	}
}

type lineKey struct {
	file string
	line int
}

// check matches reported diagnostics against want expectations line by line.
func check(t *testing.T, pkg *load.Package, name string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[lineKey][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				var res []string
				for _, m := range wantRE.FindAllStringSubmatch(text[i:], -1) {
					res = append(res, m[1])
				}
				if len(res) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], res...)
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			ok, err := regexp.MatchString(re, d.Message)
			if err != nil {
				t.Errorf("%s: bad want regexp %q: %v", position(pos), re, err)
			}
			if ok {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected %s diagnostic: %s", position(pos), name, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no %s diagnostic matching %q", k.file, k.line, name, re)
		}
	}
}

func position(pos token.Position) string { return pos.String() }
