package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Blocking-operation classification shared by the concurrency analyzers
// (goroutineleak, lockio). The universe of "blocking" is deliberately a
// curated list — the operations that actually wedge this codebase's
// event loops and goroutines — rather than a whole-program may-block
// analysis: channel operations, selects without a default, the wire
// protocol's Conn.Send/Recv, net and os/exec waits, stream JSON
// encode/decode, WaitGroup.Wait, and sleeps (time.Sleep and the injected
// clock.Clock's Sleep). Calls of unknown function values are assumed to
// terminate; the callee's own body is covered when it is an intra-package
// function (the call graph descends into it) or one of the listed foreign
// APIs.
//
// Each operation carries the structural evidence that can discharge it:
// whether it is bounded outright, released by context cancellation, a send
// into a channel known to be buffered, a receive released by a close()
// visible in the package, a call on a value whose Close the package invokes,
// or a select with a default clause. The analyzers differ only in which
// evidence they accept — a goroutine may sleep forever on a context, a
// mutex holder may not sleep at all — so the classifier records facts and
// leaves policy to them.

// BlockKind discriminates the shape of a blocking operation.
type BlockKind int

const (
	// BlockCall is a call of a listed blocking function or method.
	BlockCall BlockKind = iota
	// BlockSend is a channel send outside a select.
	BlockSend
	// BlockRecv is a channel receive outside a select.
	BlockRecv
	// BlockRange is a for-range over a channel.
	BlockRange
	// BlockSelect is a select statement (judged as a whole).
	BlockSelect
)

// A BlockingOp is one potentially blocking operation with the structural
// waivers that apply to it.
type BlockingOp struct {
	Pos  token.Pos
	Kind BlockKind
	// What names the operation for diagnostics, e.g. "shard.Conn.Recv",
	// "time.Sleep", `send on channel "events"`.
	What string
	// Bounded marks operations that return after a bounded wall-clock wait
	// regardless of what other goroutines do (time.Sleep).
	Bounded bool
	// CtxBounded marks operations released by context cancellation: a call
	// passing a context.Context, or a select with a case receiving from a
	// context's Done channel.
	CtxBounded bool
	// BufferedLocal marks channel sends whose channel is visibly built with
	// make(chan T, n>0) in this package, so the send cannot block past the
	// buffer the spawner sized for it.
	BufferedLocal bool
	// CloseSignalled marks receives, ranges and selects released by a
	// close() of the channel somewhere in this package.
	CloseSignalled bool
	// CloseReleased marks calls on a receiver whose Close method this
	// package invokes (or references) — closing the value unblocks the
	// pending call, the pattern Conn readers and accept loops rely on.
	CloseReleased bool
	// HasDefault marks selects with a default clause: non-blocking.
	HasDefault bool
}

// PkgFacts holds the package-wide channel and closer facts the classifier
// consults: which channel objects are visibly buffered, which are closed
// somewhere in the package, and which receiver types have their Close
// invoked. Facts key on types.Object, so a channel stored in a struct field
// is tracked across methods through the shared field object.
type PkgFacts struct {
	buffered      map[types.Object]bool
	closed        map[types.Object]bool
	closeReleased map[string]bool
}

// GatherPkgFacts scans the package once for channel makes, closes, and
// Close-method references.
func GatherPkgFacts(pass *Pass) *PkgFacts {
	f := &PkgFacts{
		buffered:      map[types.Object]bool{},
		closed:        map[types.Object]bool{},
		closeReleased: map[string]bool{},
	}
	mark := func(m map[types.Object]bool, e ast.Expr) {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := objectOf(pass.TypesInfo, x); obj != nil {
				m[obj] = true
			}
		case *ast.SelectorExpr:
			if obj := pass.TypesInfo.Uses[x.Sel]; obj != nil {
				m[obj] = true
			}
		}
	}
	for _, file := range pass.Files {
		// Facts come from non-test code only: a Close or make in a test file
		// must not waive a blocking op in the shipped code, and results must
		// not depend on whether the loader included tests.
		if InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(st.Args) == 1 {
						mark(f.closed, st.Args[0])
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					if i < len(st.Lhs) && isBufferedMake(pass.TypesInfo, rhs) {
						mark(f.buffered, st.Lhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, rhs := range st.Values {
					if i < len(st.Names) && isBufferedMake(pass.TypesInfo, rhs) {
						mark(f.buffered, st.Names[i])
					}
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.TypesInfo.Uses[st.Sel].(*types.Func); ok && fn.Name() == "Close" {
					if key := recvTypeKey(fn); key != "" {
						f.closeReleased[key] = true
					}
				}
			}
			return true
		})
		// Second pass per file: composite literals that store an
		// already-buffered channel into a struct field propagate the fact to
		// the field object, so methods sending on the field see it.
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if vid, ok := ast.Unparen(kv.Value).(*ast.Ident); ok {
					vobj := objectOf(pass.TypesInfo, vid)
					fobj := pass.TypesInfo.Defs[key]
					if fobj == nil {
						fobj = pass.TypesInfo.Uses[key]
					}
					if vobj != nil && fobj != nil {
						if f.buffered[vobj] {
							f.buffered[fobj] = true
						}
						if f.closed[vobj] {
							f.closed[fobj] = true
						}
					}
				}
			}
			return true
		})
	}
	return f
}

// chanObj resolves the object behind a channel expression: a named local or
// package variable, or a struct field (by field object, shared across
// instances). Nil when the expression is more involved.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objectOf(info, x)
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	case *ast.CallExpr:
		// ctx.Done() and friends: key on the method object.
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			return info.Uses[sel.Sel]
		}
	}
	return nil
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isBufferedMake reports whether e is make(chan T, n) with a capacity
// argument (a zero constant capacity is unbuffered and does not count).
func isBufferedMake(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false
	}
	if t := info.TypeOf(call.Args[0]); t != nil {
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return false
		}
	}
	if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil {
		if v, exact := constantInt(tv); exact && v == 0 {
			return false
		}
	}
	return true
}

func constantInt(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	if s := tv.Value.ExactString(); s != "" {
		var v int64
		if _, err := fmt.Sscanf(s, "%d", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}

// recvTypeKey returns a stable key for a method's receiver type (pointers
// stripped), or "" for plain functions.
func recvTypeKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.TypeString(t, nil)
}

// isContextDoneRecv reports whether e is a receive-shaped expression on
// <ctx>.Done() for a context.Context.
func isContextDoneRecv(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// HasContextArg reports whether any argument of call has static type
// context.Context.
func HasContextArg(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := info.TypeOf(arg)
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	return false
}

// execBlocking lists the os/exec methods that wait on a child process;
// constructors and pipe plumbing are quick.
var execBlocking = map[string]bool{
	"Run": true, "Wait": true, "Output": true, "CombinedOutput": true,
}

// classifyBlockingCall reports whether call is one of the listed blocking
// calls and, if so, its classified op.
func classifyBlockingCall(info *types.Info, facts *PkgFacts, call *ast.CallExpr) *BlockingOp {
	fn := StaticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	op := &BlockingOp{Pos: call.Pos(), Kind: BlockCall, CtxBounded: HasContextArg(info, call)}
	name := fn.Name()
	recvKey := recvTypeKey(fn)
	switch fn.Pkg().Path() {
	case "time":
		if recvKey == "" && name == "Sleep" {
			op.What, op.Bounded = "time.Sleep", true
			return op
		}
	case "ppatuner/internal/clock":
		if name == "Sleep" {
			op.What = "clock.Clock.Sleep"
			return op
		}
	case "ppatuner/internal/shard":
		if recvKey != "" && (name == "Send" || name == "Recv") {
			op.What = "shard.Conn." + name
			op.CloseReleased = facts != nil && facts.closeReleased[recvKey]
			return op
		}
	case "encoding/json":
		if (recvKey == "encoding/json.Encoder" && name == "Encode") ||
			(recvKey == "encoding/json.Decoder" && name == "Decode") {
			op.What = "json stream " + name
			return op
		}
	case "sync":
		if name == "Wait" && recvKey == "sync.WaitGroup" {
			op.What = "sync.WaitGroup.Wait"
			return op
		}
	case "net":
		op.What = "net: " + name
		op.CloseReleased = recvKey != "" && facts != nil && facts.closeReleased[recvKey]
		return op
	case "os/exec":
		if execBlocking[name] {
			op.What = "os/exec: " + name
			return op
		}
	}
	return nil
}

// ScanBlockingOps collects the blocking operations lexically inside root,
// classified against the package facts. Nested go-statement bodies are
// skipped (each go statement is judged at its own spawn site) and so are
// nested func literals that are not immediately executed (they block only
// whoever eventually calls them).
func ScanBlockingOps(pass *Pass, facts *PkgFacts, root ast.Node) []BlockingOp {
	var out []BlockingOp
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch st := m.(type) {
			case *ast.GoStmt:
				return false
			case *ast.FuncLit:
				if st != n {
					return false
				}
			case *ast.SelectStmt:
				op := BlockingOp{Pos: st.Pos(), Kind: BlockSelect, What: "select"}
				for _, cl := range st.Body.List {
					comm, ok := cl.(*ast.CommClause)
					if !ok {
						continue
					}
					if comm.Comm == nil {
						op.HasDefault = true
						continue
					}
					for _, recvExpr := range commRecvExprs(comm.Comm) {
						if isContextDoneRecv(pass.TypesInfo, recvExpr) {
							op.CtxBounded = true
						}
						if obj := chanObj(pass.TypesInfo, recvExpr); obj != nil && facts != nil && facts.closed[obj] {
							op.CloseSignalled = true
						}
					}
				}
				out = append(out, op)
				for _, cl := range st.Body.List {
					if comm, ok := cl.(*ast.CommClause); ok {
						for _, b := range comm.Body {
							walk(b)
						}
					}
				}
				return false
			case *ast.SendStmt:
				op := BlockingOp{Pos: st.Pos(), Kind: BlockSend, What: fmt.Sprintf("send on channel %q", Render(st.Chan))}
				if obj := chanObj(pass.TypesInfo, st.Chan); obj != nil && facts != nil && facts.buffered[obj] {
					op.BufferedLocal = true
				}
				out = append(out, op)
			case *ast.UnaryExpr:
				if st.Op == token.ARROW {
					op := BlockingOp{Pos: st.Pos(), Kind: BlockRecv, What: fmt.Sprintf("receive on channel %q", Render(st.X))}
					if isContextDoneRecv(pass.TypesInfo, st.X) {
						op.CtxBounded = true
					}
					if obj := chanObj(pass.TypesInfo, st.X); obj != nil && facts != nil {
						op.CloseSignalled = facts.closed[obj]
						// A buffered receive still parks when the buffer is
						// empty — this does not waive goroutineleak — but it
						// is outside lockio's "unbuffered channel op" scope.
						op.BufferedLocal = facts.buffered[obj]
					}
					out = append(out, op)
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(st.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						op := BlockingOp{Pos: st.Pos(), Kind: BlockRange, What: fmt.Sprintf("range over channel %q", Render(st.X))}
						if obj := chanObj(pass.TypesInfo, st.X); obj != nil && facts != nil && facts.closed[obj] {
							op.CloseSignalled = true
						}
						out = append(out, op)
					}
				}
			case *ast.CallExpr:
				if op := classifyBlockingCall(pass.TypesInfo, facts, st); op != nil {
					out = append(out, *op)
				}
			}
			return true
		})
	}
	walk(root)
	return out
}

// commRecvExprs extracts the channel-receive expressions of one select comm
// statement (assignment or bare receive). Send comms return nothing: only a
// ready receive can release the select via close or context machinery.
func commRecvExprs(comm ast.Stmt) []ast.Expr {
	var exprs []ast.Expr
	collect := func(e ast.Expr) {
		if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			exprs = append(exprs, u.X)
		}
	}
	switch st := comm.(type) {
	case *ast.ExprStmt:
		collect(st.X)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			collect(rhs)
		}
	}
	return exprs
}
