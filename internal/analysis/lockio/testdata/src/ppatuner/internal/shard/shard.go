// Package shard is a lockio fixture: the import path puts it under the
// concurrency policy, and the shapes mirror the real breaker/transport
// critical sections.
package shard

import (
	"sync"
	"time"
)

type Msg struct{}

// Conn matches the real shard.Conn surface so Send/Recv classify as wire
// I/O.
type Conn interface {
	Send(Msg) error
	Recv() (Msg, error)
	Close() error
}

type box struct {
	mu    sync.Mutex
	state int
}

// sleepUnderLock is the textbook violation.
func (b *box) sleepUnderLock() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking operation \(time\.Sleep\) while mutex b\.mu is held`
	b.mu.Unlock()
}

// deferredUnlock holds to function end, so the wire send is under the lock.
func (b *box) deferredUnlock(c Conn) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return c.Send(Msg{}) // want `blocking operation \(shard\.Conn\.Send\) while mutex b\.mu is held`
}

// unlockFirst is the breaker's sanctioned shape: sample state under the
// lock, release it, then dwell.
func (b *box) unlockFirst() {
	b.mu.Lock()
	s := b.state
	b.mu.Unlock()
	if s > 0 {
		time.Sleep(time.Millisecond)
	}
}

// branchUnlock releases only on the early-return path; the fall-through
// still holds the lock when it parks on the unbuffered channel.
func (b *box) branchUnlock(ch chan int) {
	b.mu.Lock()
	if b.state == 0 {
		b.mu.Unlock()
		return
	}
	ch <- b.state // want `blocking operation \(send on channel "ch"\) while mutex b\.mu is held`
	b.mu.Unlock()
}

// bufferedUnderLock is out of scope: the channel is visibly buffered in
// this package, and the select has a default.
func (b *box) bufferedUnderLock() {
	signal := make(chan struct{}, 1)
	b.mu.Lock()
	signal <- struct{}{}
	select {
	case <-signal:
	default:
	}
	b.mu.Unlock()
}

// helperSleeps hides the dwell one call down.
func (b *box) helperSleeps() {
	dwell()
}

func dwell() {
	time.Sleep(time.Millisecond)
}

// transitive must be flagged at the call site through the helper chain.
func (b *box) transitive() {
	b.mu.Lock()
	b.helperSleeps() // want `call to helperSleeps performs blocking I/O \(time\.Sleep\) while mutex b\.mu is held`
	b.mu.Unlock()
}

// suppressed documents a deliberate hold-across-send, silenced by the
// justified directive.
func (b *box) suppressed(c Conn) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	//ppalint:allow lockio fixture documents a deliberate serialised frame write
	return c.Send(Msg{})
}
