// Package lockio bans blocking I/O inside mutex critical sections — the
// classic coordinator-event-loop deadlock shape.
//
// The distributed layer keeps its invariants with short critical sections:
// the circuit breaker samples state under b.mu and releases it before every
// clock dwell, the failure log snapshots its fields before calling the
// logger. A blocking operation that sneaks under a lock — a Conn.Recv, a
// channel handshake, a sleep — couples every other goroutine contending for
// that mutex to an unbounded wait, and under the fault-injecting transport
// that is a deadlock, not a slowdown. The analyzer tracks lock regions
// per function and flags every blocking operation (directly present or
// reachable through intra-package calls, via the call graph) while a
// sync.Mutex or sync.RWMutex is held.
//
// The region tracker is linear and syntactic: x.Lock()/x.RLock() opens a
// region keyed by the receiver expression, x.Unlock()/x.RUnlock() at the
// same nesting level closes it, a deferred unlock holds to function end,
// and branches are analysed with a copy of the held set (a lock released
// on one branch is still held on the path that skipped the branch).
// Blocking here is the shared classifier's list minus the termination
// waivers goroutineleak accepts: a bounded sleep or a context-cancellable
// wait still stalls the lock holder, so only a select with a default
// clause and operations on channels this package visibly buffers are
// exempt.
package lockio

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"ppatuner/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc: `flag blocking I/O reachable while a sync.Mutex/RWMutex is held

Within the concurrency-covered packages (internal/shard,
internal/shard/transport, internal/robust, internal/par), no blocking
operation — Conn.Send/Recv, net or os/exec waits, stream JSON
encode/decode, time.Sleep or clock sleeps, WaitGroup.Wait, unbuffered
channel ops, selects without a default — may execute while a mutex is
held, whether spelled inline or reached through an intra-package call.
Release the lock around the I/O, or buffer the channel in-package.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.ConcurrencyPolicy(pass.Pkg.Path()) {
		return nil, nil
	}
	graph := analysis.BuildCallGraph(pass)
	facts := analysis.GatherPkgFacts(pass)

	// Summaries: which functions directly contain a lockio-relevant blocking
	// op, propagated to everything that can reach one.
	direct := map[*types.Func][]analysis.BlockingOp{}
	for _, fi := range graph.Funcs() {
		if fi.Decl == nil || fi.Decl.Body == nil {
			continue
		}
		direct[fi.Obj] = rejectOps(analysis.ScanBlockingOps(pass, facts, fi.Decl.Body))
	}
	mayBlock := graph.Propagate(func(fi *analysis.FuncInfo) bool {
		return len(direct[fi.Obj]) > 0
	})

	c := &checker{pass: pass, graph: graph, facts: facts, direct: direct, mayBlock: mayBlock}
	for _, file := range pass.Files {
		if analysis.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.walkStmts(fd.Body.List, lockState{})
			}
		}
	}
	return nil, nil
}

// rejectOps keeps the ops a lock holder may not perform: everything but
// selects with a default and ops on visibly buffered channels.
func rejectOps(ops []analysis.BlockingOp) []analysis.BlockingOp {
	var out []analysis.BlockingOp
	for _, op := range ops {
		if op.HasDefault || op.BufferedLocal {
			continue
		}
		out = append(out, op)
	}
	return out
}

// lockState maps the rendered receiver of a held mutex ("b.mu") to the
// position of the Lock call that opened the region.
type lockState map[string]token.Pos

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// heldName returns the lexically smallest held mutex, so diagnostics are
// deterministic when several are held.
func (s lockState) heldName() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0]
}

type checker struct {
	pass     *analysis.Pass
	graph    *analysis.CallGraph
	facts    *analysis.PkgFacts
	direct   map[*types.Func][]analysis.BlockingOp
	mayBlock map[*types.Func]bool
}

// walkStmts scans one statement list linearly, threading the held-lock
// state through it.
func (c *checker) walkStmts(stmts []ast.Stmt, held lockState) {
	for _, st := range stmts {
		c.walkStmt(st, held)
	}
}

// walkStmt processes one statement: branch statements recurse with a clone
// of the held state (a lock released inside a branch is still held on the
// fall-through path), everything else is a leaf scanned for lock
// transitions and blocking operations.
func (c *checker) walkStmt(stmt ast.Stmt, held lockState) {
	switch st := stmt.(type) {
	case *ast.LabeledStmt:
		c.walkStmt(st.Stmt, held)
	case *ast.BlockStmt:
		c.walkStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			c.walkStmt(st.Init, held)
		}
		c.checkLeafNode(st.Cond, held)
		c.walkStmts(st.Body.List, held.clone())
		if st.Else != nil {
			c.walkStmt(st.Else, held.clone())
		}
	case *ast.ForStmt:
		if st.Init != nil {
			c.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			c.checkLeafNode(st.Cond, held)
		}
		body := held.clone()
		c.walkStmts(st.Body.List, body)
		if st.Post != nil {
			c.walkStmt(st.Post, body)
		}
	case *ast.RangeStmt:
		c.checkLeafNode(st.X, held)
		c.walkStmts(st.Body.List, held.clone())
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			c.checkLeafNode(st.Tag, held)
		}
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(clause.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			c.walkStmt(st.Init, held)
		}
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(clause.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		// The select as a whole is a blocking op; its comm bodies run with
		// the same locks held.
		c.checkLeafNode(st, held)
	default:
		c.checkLeaf(stmt, held)
	}
}

// checkLeaf handles a non-branch statement: apply lock/unlock transitions
// in source order and flag blocking operations and blocking calls while
// anything is held.
func (c *checker) checkLeaf(stmt ast.Stmt, held lockState) {
	deferred := false
	if _, ok := stmt.(*ast.DeferStmt); ok {
		deferred = true
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		// A lock transition inside a nested function literal or spawned
		// goroutine happens on another activation, not in this region.
		switch n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, name, ok := mutexCall(c.pass.TypesInfo, call); ok {
			switch name {
			case "Lock", "RLock":
				held[key] = call.Pos()
			case "Unlock", "RUnlock":
				// A deferred unlock releases at function end; the region
				// stays held for the rest of the scan.
				if !deferred {
					delete(held, key)
				}
			}
		}
		return true
	})
	c.checkLeafNode(stmt, held)
}

// checkLeafNode flags the blocking ops and blocking intra-package calls
// inside one leaf node if any lock is held when it executes.
func (c *checker) checkLeafNode(n ast.Node, held lockState) {
	if len(held) == 0 {
		return
	}
	name := held.heldName()
	lockLine := c.pass.Fset.Position(held[name]).Line
	for _, op := range rejectOps(analysis.ScanBlockingOps(c.pass, c.facts, n)) {
		c.pass.Reportf(op.Pos,
			"blocking operation (%s) while mutex %s is held (locked at line %d); release the lock around the I/O",
			op.What, name, lockLine)
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.GoStmt); ok {
			return false
		}
		if fl, ok := m.(*ast.FuncLit); ok && m != n {
			_ = fl
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.StaticCallee(c.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() != c.pass.Pkg || !c.mayBlock[fn] {
			return true
		}
		what := "blocking I/O"
		if op := firstDirect(c.graph, c.direct, fn, map[*types.Func]bool{}); op != nil {
			what = op.What
		}
		c.pass.Reportf(call.Pos(),
			"call to %s performs blocking I/O (%s) while mutex %s is held (locked at line %d); release the lock around the call",
			fn.Name(), what, name, lockLine)
		return true
	})
}

// firstDirect finds the first blocking op justifying a transitive
// diagnostic, depth-first in source order.
func firstDirect(graph *analysis.CallGraph, direct map[*types.Func][]analysis.BlockingOp,
	fn *types.Func, visited map[*types.Func]bool) *analysis.BlockingOp {
	if visited[fn] {
		return nil
	}
	visited[fn] = true
	if ops := direct[fn]; len(ops) > 0 {
		return &ops[0]
	}
	fi := graph.Lookup(fn)
	if fi == nil {
		return nil
	}
	for _, callee := range fi.Calls {
		if op := firstDirect(graph, direct, callee, visited); op != nil {
			return op
		}
	}
	return nil
}

// mutexCall reports whether call invokes a sync.Mutex/sync.RWMutex
// lock-transition method, returning the rendered receiver expression as the
// region key.
func mutexCall(info *types.Info, call *ast.CallExpr) (key, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || (named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", "", false
	}
	return analysis.Render(sel.X), fn.Name(), true
}
