package lockio_test

import (
	"testing"

	"ppatuner/internal/analysis/analysistest"
	"ppatuner/internal/analysis/lockio"
)

// One fixture package covers the direct violations (sleep under lock,
// deferred-unlock wire send, branch fall-through hold, unbuffered send),
// the sanctioned shapes (unlock-before-dwell, buffered channel, select
// default), the transitive helper-chain case, and a justified suppression.
func TestLockIO(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockio.Analyzer,
		"ppatuner/internal/shard")
}
