// Fixture for the maporder analyzer: map-range loops whose output depends
// on iteration order are flagged; the sorted-keys idiom and genuinely
// order-insensitive folds pass.
package a

import (
	"math"
	"sort"
)

func flagAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside a map-range loop`
	}
	return out
}

// okCollectSort is THE sanctioned idiom: collect keys, sort immediately
// after the loop, then consume.
func okCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okSortSlice(m map[uint64][]int) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

func flagIndexedWrite(m map[int]float64, out []float64) {
	i := 0
	for _, v := range m {
		out[i] = v // want `indexed write to out inside a map-range loop`
		i++
	}
}

// okMinFold: self-referential min/max folds commute, even nested under the
// map range.
func okMinFold(m map[int][]float64, lo []float64) {
	for _, y := range m {
		for k := range lo {
			lo[k] = math.Min(lo[k], y[k])
		}
	}
}

func flagFloatSum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `order-sensitive reduction into sum`
	}
	return sum
}

// okIntCount: integer accumulation is exact and commutative.
func okIntCount(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
		n++
	}
	return n
}

func flagLastWriter(m map[int]string) string {
	var last string
	for _, v := range m {
		last = v // want `last-writer-wins store to last`
	}
	return last
}

// okLatch: monotone boolean latch and constant stores cannot observe order.
func okLatch(m map[int]bool) (bool, bool) {
	found := false
	hit := false
	for _, v := range m {
		found = found || v
		hit = true
	}
	return found, hit
}

// okPerKeyBucket: writes into per-key map buckets are order-independent.
func okPerKeyBucket(src map[string]int, dst map[string][]int, n map[string]int) {
	for k, v := range src {
		dst[k] = append(dst[k], v)
		n[k] = v
	}
}

func flagFloatInc(m map[int]bool) float64 {
	var x float64
	for range m {
		x++ // want `floating-point accumulation into x`
	}
	return x
}

// okLocal: everything declared inside the loop is untouched by order.
func okLocal(m map[int]int) {
	for _, v := range m {
		double := v * 2
		_ = double
	}
}
