// Package maporder flags range statements over maps whose loop bodies leak
// Go's randomised iteration order into program output.
//
// Map iteration order differs between runs, so a map-range loop that
// appends to a slice, writes slice elements, or folds an order-sensitive
// reduction produces run-to-run-varying results — precisely the class of
// bug that invalidates the tuner's seeded-reproducibility guarantee while
// every individual value still looks correct. The analyzer sanctions the
// idiomatic fixes: collecting keys and sorting them before use, and
// reductions that are genuinely order-insensitive (integer +/-/*/&/|/^
// accumulation, min/max folds, monotone boolean latches, constant stores).
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"ppatuner/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: `flag map-range loops whose body output depends on iteration order

A loop "for k, v := range m" is flagged when its body (1) appends to a
slice declared outside the loop, unless a sort call on that slice follows
in the same block before any other use; (2) assigns to elements of an
outer slice or array; or (3) folds an order-sensitive reduction into an
outer variable (floating-point accumulation, string concatenation,
shift/divide compound assignments, or a plain overwrite whose value
depends on the iteration). Order-insensitive folds — integer + - * & | ^,
x++, min/max via the builtins or math.Min/math.Max, x = x || c, and
constant stores — are sanctioned, as is the collect-keys-then-sort idiom.`,
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkLoop(pass, file, rs)
			return true
		})
	}
	return nil, nil
}

// outer reports whether id is declared outside the loop rs.
func outer(pass *analysis.Pass, rs *ast.RangeStmt, id *ast.Ident) bool {
	return analysis.DeclaredOutside(pass.TypesInfo, id, rs.Pos(), rs.End())
}

// checkLoop inspects one map-range loop body for order leaks.
func checkLoop(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, file, rs, st)
		case *ast.IncDecStmt:
			// x++ / x-- on an outer integer is a commutative count; on a
			// float it is an order-sensitive sum. (Go only permits IncDec
			// on numeric types.)
			if id, ok := st.X.(*ast.Ident); ok && outer(pass, rs, id) {
				if analysis.IsFloat(pass.TypesInfo.TypeOf(st.X)) {
					pass.Reportf(st.Pos(),
						"floating-point accumulation into %s inside a map-range loop is order-sensitive; iterate sorted keys", id.Name)
				}
			}
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		if i < len(st.Rhs) && len(st.Lhs) == len(st.Rhs) {
			if call, ok := st.Rhs[i].(*ast.CallExpr); ok && analysis.IsBuiltinAppend(pass.TypesInfo, call) {
				checkAppend(pass, file, rs, st, lhs)
				continue
			}
		}
		checkWrite(pass, rs, st, lhs, rhsFor(st, i))
	}
}

// rhsFor returns the RHS expression matching lhs index i, or nil for
// multi-value assignments (x, y := f()).
func rhsFor(st *ast.AssignStmt, i int) ast.Expr {
	if len(st.Lhs) == len(st.Rhs) {
		return st.Rhs[i]
	}
	return nil
}

// checkAppend handles `s = append(s, ...)` targeting an outer slice. The
// collect-then-sort idiom is sanctioned: if, in the statement list
// enclosing the loop, the first statement mentioning s after the loop is a
// recognised sort call on s, the append order cannot be observed.
func checkAppend(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, st *ast.AssignStmt, lhs ast.Expr) {
	root := analysis.RootIdent(lhs)
	if root == nil || !outer(pass, rs, root) {
		return
	}
	// Appending into a per-key map bucket (m2[k] = append(m2[k], v)) visits
	// each bucket once per key and is order-independent.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if xt := pass.TypesInfo.TypeOf(ix.X); xt != nil {
			if _, isMap := xt.Underlying().(*types.Map); isMap {
				return
			}
		}
	}
	if sortedAfterLoop(pass, file, rs, lhs) {
		return
	}
	pass.Reportf(st.Pos(),
		"append to %s inside a map-range loop leaks iteration order; collect keys, sort, then iterate (or sort %s immediately after the loop)",
		analysis.Render(lhs), analysis.Render(lhs))
}

// checkWrite handles non-append assignments with an outer target.
func checkWrite(pass *analysis.Pass, rs *ast.RangeStmt, st *ast.AssignStmt, lhs ast.Expr, rhs ast.Expr) {
	switch target := lhs.(type) {
	case *ast.IndexExpr:
		// Writes into an outer map are per-key and order-independent;
		// writes into an outer slice/array land in positions whose content
		// then depends on visit order — unless the write is a
		// self-referential min/max fold (lo[k] = math.Min(lo[k], v)) or an
		// iteration-invariant store.
		root := analysis.RootIdent(target.X)
		if root == nil || !outer(pass, rs, root) {
			return
		}
		xt := pass.TypesInfo.TypeOf(target.X)
		if xt == nil {
			return
		}
		switch xt.Underlying().(type) {
		case *types.Slice, *types.Array:
		default:
			return // map or other per-key structure
		}
		if st.Tok == token.ASSIGN &&
			(isMinMaxFoldOf(pass, rhs, target) || isOrderInsensitiveStore(pass, rs, rhs)) {
			return
		}
		if st.Tok != token.ASSIGN && opAssignInsensitive(st.Tok, pass.TypesInfo.TypeOf(target)) {
			return
		}
		pass.Reportf(st.Pos(),
			"indexed write to %s inside a map-range loop depends on iteration order; iterate sorted keys", analysis.Render(target.X))
	case *ast.Ident:
		if target.Name == "_" || st.Tok == token.DEFINE || !outer(pass, rs, target) {
			return
		}
		if st.Tok == token.ASSIGN {
			if isMinMaxFoldOf(pass, rhs, target) || isBoolLatchOf(pass, rhs, target) ||
				isOrderInsensitiveStore(pass, rs, rhs) {
				return
			}
			pass.Reportf(st.Pos(),
				"last-writer-wins store to %s inside a map-range loop depends on iteration order; iterate sorted keys", target.Name)
			return
		}
		if opAssignInsensitive(st.Tok, pass.TypesInfo.TypeOf(target)) {
			return
		}
		pass.Reportf(st.Pos(),
			"order-sensitive reduction into %s inside a map-range loop; iterate sorted keys", target.Name)
	}
}

// opAssignInsensitive reports whether `x tok= e` is order-insensitive: for
// integers, + - * & | ^ &^ are commutative-and-associative modulo 2^n;
// everything on floats, strings, and complex numbers, and integer
// shifts/divides, is order-sensitive.
func opAssignInsensitive(tok token.Token, t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	if b.Info()&types.IsInteger == 0 {
		return false
	}
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	return false
}

// isMinMaxFoldOf reports whether rhs is min/max (builtin or math.Min/Max)
// with self among the arguments — an order-insensitive fold.
func isMinMaxFoldOf(pass *analysis.Pass, rhs ast.Expr, self ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin)
		if !ok || (b.Name() != "min" && b.Name() != "max") {
			return false
		}
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math" ||
			(fn.Name() != "Min" && fn.Name() != "Max") {
			return false
		}
	default:
		return false
	}
	selfText := analysis.Render(self)
	for _, arg := range call.Args {
		if analysis.Render(arg) == selfText {
			return true
		}
	}
	return false
}

// isBoolLatchOf reports whether rhs is `self || e` or `self && e` — a
// monotone latch whose final value is order-independent.
func isBoolLatchOf(pass *analysis.Pass, rhs ast.Expr, self ast.Expr) bool {
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.LOR && bin.Op != token.LAND) {
		return false
	}
	selfText := analysis.Render(self)
	return analysis.Render(bin.X) == selfText || analysis.Render(bin.Y) == selfText
}

// isOrderInsensitiveStore reports whether rhs stores a value that cannot
// vary with the iteration: a compile-time constant, or an expression that
// references nothing declared inside the loop (an invariant).
func isOrderInsensitiveStore(pass *analysis.Pass, rs *ast.RangeStmt, rhs ast.Expr) bool {
	if rhs == nil {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[rhs]; ok && tv.Value != nil {
		return true
	}
	variant := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil &&
				obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
				variant = true
			}
		}
		return !variant
	})
	return !variant
}

// sortedAfterLoop reports whether, in the statement list enclosing rs, the
// first subsequent statement mentioning the appended slice is a recognised
// sort call on it.
func sortedAfterLoop(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, slice ast.Expr) bool {
	list := analysis.EnclosingStmtList(file, rs)
	if list == nil {
		return false
	}
	sliceText := analysis.Render(slice)
	after := false
	for _, st := range list {
		if st == ast.Stmt(rs) {
			after = true
			continue
		}
		if !after || !analysis.Mentions(st, sliceText) {
			continue
		}
		if es, ok := st.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && isSortCall(pass, call) {
				for _, arg := range call.Args {
					if analysis.Render(arg) == sliceText {
						return true
					}
				}
			}
		}
		return false
	}
	return false
}

// isSortCall recognises the sort/slices package entry points that fix an
// order before the slice is consumed.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
