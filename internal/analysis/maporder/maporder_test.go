package maporder_test

import (
	"testing"

	"ppatuner/internal/analysis/analysistest"
	"ppatuner/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "a")
}
