// Package noalloc verifies the zero-allocation guarantee of annotated hot
// paths.
//
// The gp fit/predict workspaces exist so the per-iteration refit loop runs
// without touching the garbage collector: every buffer is sized once and
// reused, and the benchmarks pin allocs/op at zero. That guarantee is easy
// to lose silently — one appended slice, one value boxed into an interface
// for a log call, one closure capture — and the benchmark that would catch
// it only runs in the bench-smoke job. Annotating the hot function with
//
//	//ppalint:noalloc
//
// in its doc comment puts the guarantee under lint: the body (and every
// intra-package function it statically calls, via the call graph) is
// checked for allocation-introducing constructs — make, new, composite
// literals, append, func literals (closure allocation), go statements, and
// interface boxing at call sites. Arguments of panic(...) are exempt:
// assembling a panic message allocates only on the failing path, which by
// definition leaves the hot loop.
//
// Cross-package calls are assumed allocation-free: the mat/simd kernels the
// hot paths lean on carry their own zero-alloc benchmarks. Keeping the
// check intra-package keeps it deterministic and cheap; annotate the callee
// in its own package if it needs the same guarantee.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"ppatuner/internal/analysis"
)

const directive = "ppalint:noalloc"

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: `check //ppalint:noalloc functions for allocation-introducing constructs

A function whose doc comment carries //ppalint:noalloc must not contain
make, new, composite literals, append, func literals, go statements, or
interface boxing at call sites — and neither may any intra-package function
it statically calls (checked transitively over the call graph). Arguments
of panic(...) are exempt; cross-package callees are assumed clean.`,
	Run: run,
}

// An allocSite is one allocation-introducing construct.
type allocSite struct {
	pos  token.Pos
	what string
}

func run(pass *analysis.Pass) (any, error) {
	graph := analysis.BuildCallGraph(pass)

	// Summaries: the direct allocation sites of every function, and the
	// transitive "may allocate" fact.
	direct := map[*types.Func][]allocSite{}
	for _, fi := range graph.Funcs() {
		if fi.Decl == nil || fi.Decl.Body == nil {
			continue
		}
		direct[fi.Obj] = allocSites(pass, fi.Decl.Body)
	}
	mayAlloc := graph.Propagate(func(fi *analysis.FuncInfo) bool {
		return len(direct[fi.Obj]) > 0
	})

	for _, fi := range graph.Funcs() {
		if fi.Decl == nil || fi.Decl.Body == nil || !annotated(fi.Decl) {
			continue
		}
		if analysis.InTestFile(pass.Fset, fi.Decl.Pos()) {
			continue
		}
		for _, site := range direct[fi.Obj] {
			pass.Reportf(site.pos,
				"%s in //ppalint:noalloc function %s; the zero-allocation guarantee is benchmark-pinned — hoist the allocation into the workspace",
				site.what, fi.Obj.Name())
		}
		// Calls into intra-package functions that (transitively) allocate.
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.StaticCallee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() != pass.Pkg || fn == fi.Obj || !mayAlloc[fn] {
				return true
			}
			site := firstAlloc(graph, direct, fn, map[*types.Func]bool{})
			what := "allocates"
			if site != nil {
				sp := pass.Fset.Position(site.pos)
				what = fmt.Sprintf("%s at %s:%d", site.what, filepath.Base(sp.Filename), sp.Line)
			}
			pass.Reportf(call.Pos(),
				"call to %s from //ppalint:noalloc function %s allocates (%s); annotate and fix the callee or hoist the work",
				fn.Name(), fi.Obj.Name(), what)
			return true
		})
	}
	return nil, nil
}

// annotated reports whether the declaration's doc comment carries the
// noalloc directive.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// firstAlloc finds the first allocation site reachable from fn, depth-first
// in source order — the evidence quoted in transitive diagnostics.
func firstAlloc(graph *analysis.CallGraph, direct map[*types.Func][]allocSite,
	fn *types.Func, visited map[*types.Func]bool) *allocSite {
	if visited[fn] {
		return nil
	}
	visited[fn] = true
	if sites := direct[fn]; len(sites) > 0 {
		return &sites[0]
	}
	fi := graph.Lookup(fn)
	if fi == nil {
		return nil
	}
	for _, callee := range fi.Calls {
		if site := firstAlloc(graph, direct, callee, visited); site != nil {
			return site
		}
	}
	return nil
}

// allocSites scans one function body for allocation-introducing constructs.
// panic(...) subtrees are exempt; nested func literals are flagged as a
// closure allocation and not descended into.
func allocSites(pass *analysis.Pass, body *ast.BlockStmt) []allocSite {
	var out []allocSite
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			out = append(out, allocSite{st.Pos(), "go statement (new goroutine stack)"})
			return false
		case *ast.FuncLit:
			out = append(out, allocSite{st.Pos(), "func literal (closure allocation)"})
			return false
		case *ast.CompositeLit:
			out = append(out, allocSite{st.Pos(), "composite literal"})
			return false
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "panic":
						// Failing path only: message assembly is exempt.
						return false
					case "make":
						out = append(out, allocSite{st.Pos(), "make"})
					case "new":
						out = append(out, allocSite{st.Pos(), "new"})
					case "append":
						out = append(out, allocSite{st.Pos(), "append (growth reallocates)"})
					}
					return true
				}
			}
			out = append(out, boxingSites(info, st)...)
		}
		return true
	})
	return out
}

// boxingSites flags concrete-typed arguments passed to interface
// parameters: the conversion allocates when the value escapes to the heap.
func boxingSites(info *types.Info, call *ast.CallExpr) []allocSite {
	sigType := info.TypeOf(call.Fun)
	if sigType == nil {
		return nil
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	var out []allocSite
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		out = append(out, allocSite{arg.Pos(), "interface boxing of argument"})
	}
	return out
}
