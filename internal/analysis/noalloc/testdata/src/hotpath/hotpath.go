// Package hotpath is the noalloc fixture: annotated functions mirror the
// gp workspace hot loops, unannotated ones are free to allocate.
package hotpath

import "fmt"

type ws struct {
	buf []float64
	out []float64
}

// fill is the sanctioned shape: pure index arithmetic over preallocated
// workspace buffers, plus a panic guard whose message assembly is exempt.
//
//ppalint:noalloc
func (w *ws) fill(scale float64) {
	if len(w.out) != len(w.buf) {
		panic(fmt.Sprintf("hotpath: out %d vs buf %d", len(w.out), len(w.buf)))
	}
	for i, v := range w.buf {
		w.out[i] = v * scale
	}
}

// direct violates the guarantee five ways.
//
//ppalint:noalloc
func (w *ws) direct(n int) {
	w.buf = make([]float64, n) // want `make in //ppalint:noalloc function direct`
	extra := new(ws)           // want `new in //ppalint:noalloc function direct`
	_ = extra
	w.out = append(w.out, 1) // want `append \(growth reallocates\) in //ppalint:noalloc function direct`
	pair := [2]int{n, n}     // want `composite literal in //ppalint:noalloc function direct`
	_ = pair
	f := func() {} // want `func literal \(closure allocation\) in //ppalint:noalloc function direct`
	f()
}

// boxes leaks a concrete value into an interface parameter.
//
//ppalint:noalloc
func (w *ws) boxes(n int) {
	sink(n) // want `interface boxing of argument`
}

func sink(v any) { _ = v }

// helper allocates; callers under the annotation inherit the violation.
func helper(n int) []float64 {
	return make([]float64, n)
}

// transitive must be flagged at the call site through the call graph.
//
//ppalint:noalloc
func (w *ws) transitive(n int) {
	_ = helper(n) // want `call to helper from //ppalint:noalloc function transitive allocates \(make at hotpath\.go:\d+\)`
}

// unannotated may allocate freely.
func unannotated(n int) []float64 {
	return append(make([]float64, 0, n), 1)
}

// suppressed documents a tolerated one-time allocation.
//
//ppalint:noalloc
func (w *ws) suppressed(n int) {
	//ppalint:allow noalloc fixture tolerates a documented warm-up allocation
	w.buf = make([]float64, n)
}
