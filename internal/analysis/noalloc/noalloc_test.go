package noalloc_test

import (
	"testing"

	"ppatuner/internal/analysis/analysistest"
	"ppatuner/internal/analysis/noalloc"
)

// The fixture covers every allocation construct in an annotated function
// (make, new, append, composite literal, func literal, interface boxing),
// the transitive call-graph case, the panic-argument exemption, an
// unannotated function left alone, and a justified suppression.
func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), noalloc.Analyzer, "hotpath")
}
