package nodeterminism_test

import (
	"testing"

	"ppatuner/internal/analysis/analysistest"
	"ppatuner/internal/analysis/nodeterminism"
)

// The fixture mimics the real package layout: the core fixture package is
// covered by the determinism policy table and must be flagged; the robust
// fixture package is exempt (wall-clock deadline code) and must stay
// silent even though it calls time.Now.
func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nodeterminism.Analyzer,
		"ppatuner/internal/core", "ppatuner/internal/robust")
}
