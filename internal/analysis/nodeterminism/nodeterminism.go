// Package nodeterminism forbids wall-clock and global-RNG entropy sources
// inside the packages the determinism policy table covers.
//
// A tuner run must be a pure function of (seed, pool, options) — that is
// what makes the paper's Table 1 / Fig. 3 reproductions, the chaos
// acceptance envelope, and the serial==parallel bit-identity tests
// meaningful. The two classic ways that property silently rots are calls to
// the wall clock (time.Now and friends) and draws from the process-global
// math/rand source. Both are flagged; an explicit *rand.Rand constructed
// from a seed and plumbed through options is the only sanctioned
// randomness. Test files are exempt, as is any package carved out by the
// policy table (internal/robust's deadline code is the canonical example).
package nodeterminism

import (
	"go/ast"
	"go/types"

	"ppatuner/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc: `forbid wall-clock and global-RNG calls in deterministic packages

Flags time.Now/Since/Until/Sleep/Tick/After/AfterFunc/NewTimer/NewTicker,
the package-level draw functions of math/rand and math/rand/v2, and any use
of crypto/rand, inside the packages listed in the determinism policy table
(internal/analysis/policy.go). Constructors that build an explicit seeded
generator (rand.New, rand.NewSource, rand.NewPCG, rand.NewChaCha8,
rand.NewZipf) are sanctioned. Test files are exempt.`,
	Run: run,
}

// wallClock lists the time package functions that read or schedule against
// the wall clock. time.Since is here even though it takes an argument: its
// implicit "now" endpoint is exactly the hidden input the contract bans.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// seededConstructors are the math/rand package-level functions that do NOT
// draw from the global source; everything else at package level does.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	covered, _ := analysis.DeterminismPolicy(pass.Pkg.Path())
	if !covered {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.InTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == "crypto/rand" {
				pass.Reportf(sel.Pos(),
					"crypto/rand is entropy by definition and is forbidden in deterministic package %s", pass.Pkg.Path())
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Float64) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClock[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock inside deterministic package %s; results must be a pure function of the seed (policy: internal/analysis/policy.go)",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !seededConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"%s.%s draws from the process-global RNG inside deterministic package %s; plumb an explicit seeded *rand.Rand instead",
						fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil, nil
}
