// Fixture for the nodeterminism analyzer: this package path is exempt in
// the policy table (the fault-tolerance layer's deadlines are wall-clock
// by contract), so nothing here may be flagged.
package robust

import "time"

func deadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout)
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
