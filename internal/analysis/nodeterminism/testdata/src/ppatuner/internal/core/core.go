// Fixture for the nodeterminism analyzer: this package path is covered by
// the determinism policy table, so wall-clock and global-RNG calls must be
// flagged while explicit seeded generators pass.
package core

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
	return time.Since(start)     // want `time.Since reads the wall clock`
}

func globalRNG() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want `math/rand.Shuffle draws from the process-global RNG`
	return rand.Float64()              // want `math/rand.Float64 draws from the process-global RNG`
}

func entropy(buf []byte) {
	crand.Read(buf) // want `crypto/rand is entropy by definition`
}

// seeded is the sanctioned pattern: an explicit generator constructed from
// a seed and plumbed through — no diagnostics.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// durations and clock arithmetic that never read the clock are fine.
func pureTime(d time.Duration) time.Duration { return d * 2 }
