package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments. A diagnostic may be silenced in-tree with
//
//	//ppalint:allow <analyzer> <justification>
//
// placed on the flagged line or on the line immediately above it. The
// justification is mandatory: an allow directive without one is itself
// reported as a finding, so CI enforces "zero suppressions without a
// comment" mechanically rather than by review convention.

const allowPrefix = "ppalint:allow"

type allowDirective struct {
	pos       token.Pos // for reporting malformed directives
	covers    int       // line the directive suppresses
	analyzer  string
	reason    string
	justified bool
}

// collectAllows scans a file's comments for ppalint:allow directives. A
// trailing directive covers its own line; a directive standing alone on a
// line covers the next one.
func collectAllows(fset *token.FileSet, file *ast.File) []allowDirective {
	code := codeLines(fset, file)
	var out []allowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
			fields := strings.Fields(rest)
			line := fset.Position(c.Pos()).Line
			d := allowDirective{pos: c.Pos(), covers: line}
			if !code[line] {
				d.covers = line + 1
			}
			if len(fields) > 0 {
				d.analyzer = fields[0]
				d.reason = strings.Join(fields[1:], " ")
			}
			// A justification must say something beyond the analyzer name:
			// require at least three further words so "ok" doesn't pass.
			d.justified = len(fields) >= 4
			out = append(out, d)
		}
	}
	return out
}

// codeLines returns the set of lines carrying non-comment syntax.
func codeLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// Filter drops diagnostics covered by a justified //ppalint:allow directive
// naming the given analyzer. Unjustified directives never suppress; they are
// reported separately by DirectiveDiagnostics so CI fails on them.
func Filter(fset *token.FileSet, files []*ast.File, analyzer string, diags []Diagnostic) []Diagnostic {
	kept, _ := Partition(fset, files, analyzer, diags)
	return kept
}

// Partition splits diagnostics into those that stand and those silenced by a
// justified //ppalint:allow directive for the given analyzer. Drivers that
// emit machine-readable output use the suppressed half too, so a dashboard
// can show what was waived, not just what fired.
func Partition(fset *token.FileSet, files []*ast.File, analyzer string, diags []Diagnostic) (kept, suppressed []Diagnostic) {
	byFile := make(map[*token.File][]allowDirective)
	for _, f := range files {
		if tf := fset.File(f.Pos()); tf != nil {
			byFile[tf] = collectAllows(fset, f)
		}
	}
	for _, diag := range diags {
		tf := fset.File(diag.Pos)
		line := fset.Position(diag.Pos).Line
		waived := false
		for _, d := range byFile[tf] {
			if d.analyzer == analyzer && d.justified && d.covers == line {
				waived = true
				break
			}
		}
		if waived {
			suppressed = append(suppressed, diag)
		} else {
			kept = append(kept, diag)
		}
	}
	return kept, suppressed
}

// Suppression is one //ppalint:allow directive, surfaced for auditing: the
// -audit mode of cmd/ppalint lists every suppression in the tree with its
// analyzer and justification so waivers stay reviewable in one place.
type Suppression struct {
	Pos       token.Pos
	Analyzer  string // named analyzer, "" if the directive is malformed
	Reason    string // justification text after the analyzer name
	Justified bool   // reason has enough substance to count
}

// Suppressions returns every ppalint:allow directive in the files, in
// source order.
func Suppressions(fset *token.FileSet, files []*ast.File) []Suppression {
	var out []Suppression
	for _, f := range files {
		for _, d := range collectAllows(fset, f) {
			out = append(out, Suppression{
				Pos:       d.pos,
				Analyzer:  d.analyzer,
				Reason:    d.reason,
				Justified: d.justified,
			})
		}
	}
	return out
}

// DirectiveDiagnostics reports every malformed ppalint:allow directive —
// one missing the analyzer name or the mandatory justification. Drivers
// call it once per package so the "no suppression without a comment"
// invariant is machine-checked rather than a review convention.
func DirectiveDiagnostics(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, d := range collectAllows(fset, f) {
			if d.analyzer == "" || !d.justified {
				out = append(out, Diagnostic{
					Pos: d.pos,
					Message: fmt.Sprintf(
						"ppalint:allow directive needs an analyzer name and a justification: //%s <analyzer> <why this is sound>", allowPrefix),
				})
			}
		}
	}
	return out
}
