package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments. A diagnostic may be silenced in-tree with
//
//	//ppalint:allow <analyzer> <justification>
//
// placed on the flagged line or on the line immediately above it. The
// justification is mandatory: an allow directive without one is itself
// reported as a finding, so CI enforces "zero suppressions without a
// comment" mechanically rather than by review convention.

const allowPrefix = "ppalint:allow"

type allowDirective struct {
	pos       token.Pos // for reporting malformed directives
	covers    int       // line the directive suppresses
	analyzer  string
	justified bool
}

// collectAllows scans a file's comments for ppalint:allow directives. A
// trailing directive covers its own line; a directive standing alone on a
// line covers the next one.
func collectAllows(fset *token.FileSet, file *ast.File) []allowDirective {
	code := codeLines(fset, file)
	var out []allowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
			fields := strings.Fields(rest)
			line := fset.Position(c.Pos()).Line
			d := allowDirective{pos: c.Pos(), covers: line}
			if !code[line] {
				d.covers = line + 1
			}
			if len(fields) > 0 {
				d.analyzer = fields[0]
			}
			// A justification must say something beyond the analyzer name:
			// require at least three further words so "ok" doesn't pass.
			d.justified = len(fields) >= 4
			out = append(out, d)
		}
	}
	return out
}

// codeLines returns the set of lines carrying non-comment syntax.
func codeLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// Filter drops diagnostics covered by a justified //ppalint:allow directive
// naming the given analyzer. Unjustified directives never suppress; they are
// reported separately by DirectiveDiagnostics so CI fails on them.
func Filter(fset *token.FileSet, files []*ast.File, analyzer string, diags []Diagnostic) []Diagnostic {
	byFile := make(map[*token.File][]allowDirective)
	for _, f := range files {
		if tf := fset.File(f.Pos()); tf != nil {
			byFile[tf] = collectAllows(fset, f)
		}
	}
	var kept []Diagnostic
	for _, diag := range diags {
		tf := fset.File(diag.Pos)
		line := fset.Position(diag.Pos).Line
		suppressed := false
		for _, d := range byFile[tf] {
			if d.analyzer == analyzer && d.justified && d.covers == line {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}
	return kept
}

// DirectiveDiagnostics reports every malformed ppalint:allow directive —
// one missing the analyzer name or the mandatory justification. Drivers
// call it once per package so the "no suppression without a comment"
// invariant is machine-checked rather than a review convention.
func DirectiveDiagnostics(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, d := range collectAllows(fset, f) {
			if d.analyzer == "" || !d.justified {
				out = append(out, Diagnostic{
					Pos: d.pos,
					Message: fmt.Sprintf(
						"ppalint:allow directive needs an analyzer name and a justification: //%s <analyzer> <why this is sound>", allowPrefix),
				})
			}
		}
	}
	return out
}
