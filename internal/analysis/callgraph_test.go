package analysis_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"ppatuner/internal/analysis"
)

// typecheck parses and type-checks one synthetic file and wraps it in a
// Pass, the minimal harness the framework helpers need.
func typecheck(t *testing.T, src string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Pass{Fset: fset, Files: []*ast.File{file}, Pkg: pkg, TypesInfo: info}
}

func TestCallGraphPropagate(t *testing.T) {
	pass := typecheck(t, `package p

func a() { b() }
func b() { c(); c() }
func c() {}
func d() { a() }
func isolated() {}
`)
	g := analysis.BuildCallGraph(pass)

	var names []string
	for _, fi := range g.Funcs() {
		names = append(names, fi.Obj.Name())
	}
	want := []string{"a", "b", "c", "d", "isolated"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("source order: got %v, want %v", names, want)
		}
	}

	// b calls c twice but the edge is deduplicated.
	if calls := g.Funcs()[1].Calls; len(calls) != 1 || calls[0].Name() != "c" {
		t.Fatalf("b edges: got %v", calls)
	}

	// Seed the fact at c; it must propagate to everything that reaches c
	// (a, b, d through a) and nowhere else.
	fact := g.Propagate(func(fi *analysis.FuncInfo) bool { return fi.Obj.Name() == "c" })
	for _, fi := range g.Funcs() {
		got := fact[fi.Obj]
		wantFact := fi.Obj.Name() != "isolated"
		if got != wantFact {
			t.Errorf("fact(%s) = %v, want %v", fi.Obj.Name(), got, wantFact)
		}
	}
}

func TestScanBlockingOps(t *testing.T) {
	pass := typecheck(t, `package p

import "time"

func ops(unbuf chan int) {
	buffered := make(chan int, 4)
	done := make(chan struct{})
	defer close(done)

	buffered <- 1
	unbuf <- 2
	<-done
	select {
	case <-done:
	default:
	}
	time.Sleep(time.Millisecond)
	go func() { <-unbuf }()
}
`)
	facts := analysis.GatherPkgFacts(pass)
	fn := pass.Files[0].Decls[1].(*ast.FuncDecl) // ops
	ops := analysis.ScanBlockingOps(pass, facts, fn.Body)

	type wantOp struct {
		kind                                               analysis.BlockKind
		bufferedLocal, closeSignalled, hasDefault, bounded bool
	}
	wants := []wantOp{
		{kind: analysis.BlockSend, bufferedLocal: true},
		{kind: analysis.BlockSend},
		{kind: analysis.BlockRecv, closeSignalled: true},
		{kind: analysis.BlockSelect, closeSignalled: true, hasDefault: true},
		{kind: analysis.BlockCall, bounded: true},
		// The go statement's body is skipped: no op for <-unbuf inside it.
	}
	if len(ops) != len(wants) {
		t.Fatalf("got %d ops, want %d: %+v", len(ops), len(wants), ops)
	}
	for i, w := range wants {
		op := ops[i]
		if op.Kind != w.kind || op.BufferedLocal != w.bufferedLocal ||
			op.CloseSignalled != w.closeSignalled || op.HasDefault != w.hasDefault ||
			op.Bounded != w.bounded {
			t.Errorf("op %d (%s): got %+v, want %+v", i, op.What, op, w)
		}
	}
}
