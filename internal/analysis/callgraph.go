package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// The call-graph layer upgrades the framework from purely local AST checks
// to summary-based analyses: each declared function gets a FuncInfo summary,
// the static intra-package calls between them form a CallGraph, and facts
// propagate over that graph to a fixpoint. The concurrency analyzers
// (goroutineleak, lockio) and the allocation checker (noalloc) use it to see
// through helper functions — a goroutine body that calls a package-local
// helper is judged by what the helper (transitively) does, not only by the
// statements spelled out at the go site.
//
// Scope and determinism: the graph is intra-package only (cross-package
// behaviour is encoded in the blocking-op and allocation classifiers, which
// recognise the relevant foreign APIs by path), edges are static calls
// resolved through go/types (method values, interface dispatch and function
// values are not edges), and every traversal iterates functions in source
// order, so analyzer output is deterministic for a given file set.

// A FuncInfo is the per-function summary node of the intra-package call
// graph.
type FuncInfo struct {
	// Obj is the function's types object (never nil).
	Obj *types.Func
	// Decl is the declaration carrying the body; nil for functions declared
	// in other files of a package loaded without them (does not happen under
	// the ppalint loaders) or bodyless declarations (assembly stubs).
	Decl *ast.FuncDecl
	// Calls lists the intra-package functions this one statically calls, in
	// source order of the call sites, deduplicated.
	Calls []*types.Func
}

// A CallGraph holds every declared function of one package and the static
// call edges between them.
type CallGraph struct {
	byObj map[*types.Func]*FuncInfo
	// order lists the functions in source-position order — the deterministic
	// iteration sequence for fixpoint sweeps.
	order []*types.Func
}

// BuildCallGraph summarises every function and method declared in the pass's
// files, including _test.go files when the loader included them (callers
// filter by position where the contract excludes tests).
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{byObj: map[*types.Func]*FuncInfo{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{Obj: obj, Decl: fd}
			if fd.Body != nil {
				fi.Calls = intraPackageCalls(pass, fd.Body)
			}
			g.byObj[obj] = fi
			g.order = append(g.order, obj)
		}
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].Pos() < g.order[j].Pos() })
	return g
}

// Lookup returns the summary for fn, or nil when fn is not declared in this
// package (or is not a static function object).
func (g *CallGraph) Lookup(fn *types.Func) *FuncInfo { return g.byObj[fn] }

// Funcs returns every summarised function in source order.
func (g *CallGraph) Funcs() []*FuncInfo {
	out := make([]*FuncInfo, 0, len(g.order))
	for _, obj := range g.order {
		out = append(out, g.byObj[obj])
	}
	return out
}

// Propagate computes the least fixpoint of a boolean fact over the call
// graph: fact(f) holds iff seed(f) reports true or fact holds for any
// intra-package function f statically calls. This is the "may reach" scheme
// every summary analyzer shares — seed marks the functions that directly
// exhibit a behaviour, and propagation extends it to everything that can
// reach them, so a check at a call site sees through arbitrarily deep
// helper chains. Iteration runs over source order until no sweep changes
// anything, so the result is schedule-independent.
func (g *CallGraph) Propagate(seed func(*FuncInfo) bool) map[*types.Func]bool {
	fact := make(map[*types.Func]bool, len(g.order))
	for _, obj := range g.order {
		if seed(g.byObj[obj]) {
			fact[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, obj := range g.order {
			if fact[obj] {
				continue
			}
			for _, callee := range g.byObj[obj].Calls {
				if fact[callee] {
					fact[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return fact
}

// CalleesIn lists the static intra-package callees of an arbitrary body —
// the per-site variant of the edges BuildCallGraph records per declaration.
// goroutineleak uses it to seed the transitive check from a go statement's
// func-literal body.
func CalleesIn(pass *Pass, body ast.Node) []*types.Func {
	return intraPackageCalls(pass, body)
}

// intraPackageCalls collects the static intra-package callees of body in
// source order, deduplicated. Calls through function values, method values
// and interfaces are not edges: the blocking/allocation classifiers handle
// the foreign and dynamic cases by signature instead. Nested go-statement
// subtrees are excluded — work spawned onto another goroutine is judged at
// its own spawn site, not attributed to the enclosing function.
func intraPackageCalls(pass *Pass, body ast.Node) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := StaticCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
			return true
		}
		if !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// StaticCallee resolves the *types.Func a call statically invokes: a plain
// function, a method called on a concrete receiver, or an interface method
// (the interface's method object). Calls of function-typed values and
// builtins return nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
