package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP surface:
//
//	POST   /jobs             submit a job (JobRequest -> SubmitResponse)
//	GET    /jobs             list jobs (?client= filters)       -> JobListDoc
//	GET    /jobs/{id}        one job's state                    -> JobView
//	GET    /jobs/{id}/front  golden + learned Pareto fronts     -> FrontDoc
//	GET    /jobs/{id}/events progress stream: SSE, or the
//	                         long-poll fallback with ?poll=1&since=N -> EventPage
//	DELETE /jobs/{id}        request cancellation               -> JobView
//	GET    /healthz          liveness                           -> HealthDoc
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/front", s.handleFront)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// writeJSON writes one JSON document. SetIndent keeps the payloads diffable
// in the CI byte-identity proofs.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorDoc{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	resp, err := s.Submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, resp)
	case errors.Is(err, errBadRequest):
		writeError(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, errRateLimited):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, errStopped):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Views(r.URL.Query().Get("client")))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.View(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleFront(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	doc, ok := s.Front(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, err := s.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, HealthDoc{OK: !s.stopping(), Jobs: n})
}

// handleEvents streams a job's progress log. The default mode is SSE: every
// event goes out as an `event: <type>` / `data: <json>` pair, the stream
// stays open until the job reaches a terminal status or the server drains,
// and a draining server always sends a final `event: shutdown` so clients
// can tell an orderly stop from a dropped connection. ?poll=1 selects the
// long-poll fallback for clients without SSE: one EventPage per request,
// waiting (bounded by the client's context) only when ?since=N is already
// current.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		// Jobs from a previous process that finished before this boot have
		// no live event log; synthesize their terminal status.
		rec, ok := s.manifest.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "no such job %q", id)
			return
		}
		j = &job{id: id, status: rec.Status, log: newEventLog()}
		j.log.append(Event{Type: "status", Job: id, Status: rec.Status, Message: rec.Error})
	}
	since := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "since must be a non-negative integer")
			return
		}
		since = n
	}
	if r.URL.Query().Get("poll") != "" {
		s.longPoll(w, r, j, since)
		return
	}
	s.serveSSE(w, r, j, since)
}

// longPoll returns the events after the cursor, blocking (bounded by the
// request context and server shutdown) until at least one is available.
func (s *Server) longPoll(w http.ResponseWriter, r *http.Request, j *job, since int) {
	for {
		events, changed := j.log.after(since)
		if len(events) > 0 {
			writeJSON(w, http.StatusOK, EventPage{Events: events, Next: events[len(events)-1].Seq})
			return
		}
		if s.stopping() || TerminalStatus(j.currentStatus()) {
			writeJSON(w, http.StatusOK, EventPage{Events: []Event{}, Next: since})
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			writeJSON(w, http.StatusOK, EventPage{Events: []Event{}, Next: since})
			return
		case <-s.stop:
			writeJSON(w, http.StatusOK, EventPage{Events: []Event{}, Next: since})
			return
		}
	}
}

// serveSSE streams events until the job is terminal, the client leaves, or
// the server drains — in the drain case the stream's last words are an
// `event: shutdown` record, the graceful-termination contract clients rely
// on to distinguish a drain from a crash.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, j *job, since int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported; use ?poll=1")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		events, changed := j.log.after(since)
		for _, e := range events {
			if err := writeSSE(w, e); err != nil {
				return
			}
			since = e.Seq
		}
		if len(events) > 0 {
			fl.Flush()
		}
		if TerminalStatus(j.currentStatus()) {
			return
		}
		if s.stopping() {
			_ = writeSSE(w, Event{Type: "shutdown", Job: j.id, Message: "server shutting down; reconnect to resume from seq"})
			fl.Flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.stop:
			_ = writeSSE(w, Event{Type: "shutdown", Job: j.id, Message: "server shutting down; reconnect to resume from seq"})
			fl.Flush()
			return
		}
	}
}

// writeSSE emits one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
	return err
}
