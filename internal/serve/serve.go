// Package serve is the tuning-as-a-service layer: a long-running HTTP job
// server in front of the campaign engine. Clients submit tuning jobs (a
// scenario, objective spaces, a method set, seeds, a GP spec, optional
// chaos/outage flags) over a JSON API; the server runs each job as an
// eval.Campaign on a bounded pool of campaign slots, streams per-unit
// progress and Pareto-front updates over SSE (with a long-poll fallback),
// and persists all job state through internal/robust — a JobManifest for
// the job table plus one CampaignCheckpoint per job for resume state.
//
// The durability contract is inherited from the campaign layer and held to
// the same standard CI holds the CLIs to: the server process can be
// SIGKILLed at any instant and restarted against the same state directory,
// and every interrupted job resumes to results — and final checkpoint
// bytes — identical to an uninterrupted run. Graceful shutdown (Shutdown)
// additionally drains campaigns at the next evaluator call, sends every
// in-flight event stream a terminal event, and parks interrupted jobs so
// the next boot requeues them.
//
// Multi-tenancy: each client has its own FIFO queue; campaign slots are
// granted round-robin across clients, so one client's backlog cannot
// starve another's first job. Submission is token-bucket rate limited per
// client.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ppatuner/internal/clock"
	"ppatuner/internal/core"
	"ppatuner/internal/eval"
	"ppatuner/internal/robust"
)

// Job lifecycle statuses. Transitions:
//
//	queued -> running -> done | failed | cancelled
//	queued -> cancelled
//	running -> parked            (graceful shutdown drained the campaign)
//	parked -> queued             (next boot requeues it)
//	queued/running (at SIGKILL) -> queued (next boot)
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusParked    = "parked"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// TerminalStatus reports whether a job in this status will never run again.
func TerminalStatus(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCancelled
}

// Config parameterises a Server.
type Config struct {
	// StateDir is the durable state directory: the job manifest plus one
	// campaign checkpoint per job live there. Required.
	StateDir string
	// MaxActive bounds how many campaigns run concurrently (default 1).
	// Each campaign additionally runs UnitWorkers units in parallel.
	MaxActive int
	// UnitWorkers is the default per-campaign unit concurrency applied to
	// jobs that do not request their own (default 1). Purely a wall-clock
	// knob: results are bit-identical for any value.
	UnitWorkers int
	// Rate and Burst configure the per-client submission token bucket:
	// Rate tokens/second refill up to Burst. Rate <= 0 disables limiting.
	Rate  float64
	Burst int
	// Clock supplies time to the rate limiter and the per-job resilience
	// stack (breaker dwells, chaos windows). Nil means the wall clock;
	// tests inject a deterministic fake.
	Clock clock.Clock
	// Retain, when positive, garbage-collects terminal jobs (done, failed,
	// cancelled) once they have been terminal for this long: the manifest
	// record is dropped first, then the job's checkpoint file, so a crash
	// mid-collection can orphan a file (swept next round) but never a
	// record. Zero keeps everything forever (the previous behaviour).
	Retain time.Duration
	// Resolve maps a scenario name to its benchmark scenario. Nil means
	// eval.StandardScenario (the paper's scenarios). Resolution is cached
	// per name for the server's lifetime — scenario construction
	// regenerates benchmark datasets and is expensive.
	Resolve func(name string) (*eval.Scenario, error)
	// Logf, when non-nil, receives server progress lines.
	Logf func(format string, args ...any)
}

// Server is the tuning job server. Build with New, wire the HTTP surface
// via Handler, start scheduling with Start, and drain with Shutdown.
type Server struct {
	cfg      Config
	clk      clock.Clock
	manifest *robust.JobManifest
	limiter  *rateLimiter

	mu      sync.Mutex
	jobs    map[string]*job
	queues  map[string][]*job
	clients []string // round-robin order over queue owners
	rr      int
	running int
	started bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	scenMu    sync.Mutex
	scenarios map[string]*scenarioEntry

	// wrapUnit, when non-nil, wraps each unit's evaluator (test
	// instrumentation: blocking gates, call counters). Composes beneath
	// the drain check.
	wrapUnit func(eval.Unit, core.Evaluator) core.Evaluator
}

// scenarioEntry caches one scenario resolution for the server's lifetime.
type scenarioEntry struct {
	once sync.Once
	s    *eval.Scenario
	err  error
}

// New builds a server over the given state directory, loading the job
// manifest a previous process left there. Call Start to requeue interrupted
// jobs and begin scheduling.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("serve: Config.StateDir is required")
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 1
	}
	if cfg.UnitWorkers <= 0 {
		cfg.UnitWorkers = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real()
	}
	manifest, err := robust.LoadJobManifest(robust.JobManifestPath(cfg.StateDir))
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:       cfg,
		clk:       clk,
		manifest:  manifest,
		limiter:   newRateLimiter(clk, cfg.Rate, cfg.Burst),
		jobs:      map[string]*job{},
		queues:    map[string][]*job{},
		stop:      make(chan struct{}),
		scenarios: map[string]*scenarioEntry{},
	}, nil
}

// logf forwards to the configured logger.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// stopping reports whether Shutdown has begun.
func (s *Server) stopping() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// resolveScenario resolves and caches a scenario by name.
func (s *Server) resolveScenario(name string) (*eval.Scenario, error) {
	s.scenMu.Lock()
	e, ok := s.scenarios[name]
	if !ok {
		e = &scenarioEntry{}
		s.scenarios[name] = e
	}
	s.scenMu.Unlock()
	e.once.Do(func() {
		resolve := s.cfg.Resolve
		if resolve == nil {
			resolve = eval.StandardScenario
		}
		e.s, e.err = resolve(name)
	})
	return e.s, e.err
}

// Shutdown drains the server: no new campaigns start, running campaigns
// stop at their next evaluator call (their paid-for observations are
// already checkpointed), interrupted jobs are parked for the next boot,
// and every subscribed event stream receives a terminal shutdown event.
// Blocks until all campaign runners have exited. Safe to call more than
// once.
func (s *Server) Shutdown() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var cancels []func()
	for _, id := range ids {
		if c := s.jobs[id].cancelFunc(); c != nil {
			cancels = append(cancels, c)
		}
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	s.wg.Wait()
}
