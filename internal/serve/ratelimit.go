package serve

import (
	"sync"
	"time"

	"ppatuner/internal/clock"
)

// rateLimiter is a per-client token bucket on an injected clock: rate
// tokens/second refill up to burst, one token per submission. Buckets are
// created full on first sight of a client. No goroutines, no sleeps —
// refill is computed lazily from elapsed time, so the limiter is exact on
// a fake clock.
type rateLimiter struct {
	rate  float64
	burst float64
	clk   clock.Clock

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(clk clock.Clock, rate float64, burst int) *rateLimiter {
	if burst <= 0 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), clk: clk, buckets: map[string]*bucket{}}
}

// allow consumes one token from client's bucket, reporting false when the
// bucket is empty. A non-positive rate disables limiting.
func (l *rateLimiter) allow(client string) bool {
	if l.rate <= 0 {
		return true
	}
	now := l.clk.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[client]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
