package serve

import (
	"fmt"
	"time"

	"ppatuner/internal/eval"
	"ppatuner/internal/gp"
	"ppatuner/internal/pdtool/chaos"
)

// The request/response structs below are the server's JSON wire surface.
// Every type here is reachable from a wirecompat root, so renaming a field,
// changing its type, or editing a json tag fails ppalint until the change
// is recorded in wire.lock — deployed clients hold the other end of this
// schema.

// JobRequest is a tuning-job submission: everything needed to reconstruct
// the campaign deterministically, by value — no server state is implied.
type JobRequest struct {
	// Client identifies the submitting tenant (queue + rate-limit key).
	// Empty means "anon".
	Client string `json:"client,omitempty"`
	// Scenario names the benchmark scenario: one of the paper's scenario
	// names, or the aliases "table2" / "table3".
	Scenario string `json:"scenario"`
	// Spaces restricts the objective spaces by table heading (nil: all
	// three).
	Spaces []string `json:"spaces,omitempty"`
	// Methods restricts the tuner set (nil: all five).
	Methods []string `json:"methods,omitempty"`
	// Seeds is a count ("3" → seeds 1..3) or explicit list ("1,2,5") — the
	// eval.ParseSeeds syntax shared with the CLIs.
	Seeds string `json:"seeds"`
	// Workers bounds the campaign's unit concurrency (0: server default).
	// Purely a wall-clock knob.
	Workers int `json:"workers,omitempty"`
	// GP selects the PPATuner surrogate: "exact" | "sparse" | "sparse:<m>"
	// (gp.ParseSpec syntax; empty: exact).
	GP string `json:"gp,omitempty"`
	// Outage injects correlated downtime windows into the job's evaluation
	// path: "PERIOD/DOWN" (chaos.ParseSchedule syntax; empty: disabled).
	Outage string `json:"outage,omitempty"`
	// Breaker arms a park-mode circuit breaker tripping after N
	// consecutive transients (0: disabled; required with Outage to park
	// rather than burn retry budgets).
	Breaker int `json:"breaker,omitempty"`
}

// SubmitResponse acknowledges an accepted job.
type SubmitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// JobView is one job's externally visible state.
type JobView struct {
	ID              string   `json:"id"`
	Client          string   `json:"client"`
	Status          string   `json:"status"`
	Scenario        string   `json:"scenario"`
	Spaces          []string `json:"spaces"`
	Methods         []string `json:"methods"`
	Seeds           []int64  `json:"seeds"`
	GP              string   `json:"gp,omitempty"`
	Outage          string   `json:"outage,omitempty"`
	Breaker         int      `json:"breaker,omitempty"`
	UnitsTotal      int      `json:"units_total"`
	UnitsDone       int      `json:"units_done"`
	CancelRequested bool     `json:"cancel_requested,omitempty"`
	Error           string   `json:"error,omitempty"`
}

// JobListDoc is the GET /jobs payload.
type JobListDoc struct {
	Jobs []JobView `json:"jobs"`
}

// FrontDoc is the GET /jobs/{id}/front payload: the golden Pareto front
// and every completed unit's learned front, grouped space → method → seed
// in the job's requested order. The document is a pure function of the job
// spec and the completed units, so an interrupted-and-resumed job serves
// bytes identical to an uninterrupted one.
type FrontDoc struct {
	Job      string       `json:"job"`
	Status   string       `json:"status"`
	Scenario string       `json:"scenario"`
	Spaces   []SpaceFront `json:"spaces"`
}

// SpaceFront is one objective space's fronts.
type SpaceFront struct {
	Space   string        `json:"space"`
	Golden  [][]float64   `json:"golden,omitempty"`
	Methods []MethodFront `json:"methods"`
}

// MethodFront is one tuner's per-seed fronts in one space.
type MethodFront struct {
	Method string      `json:"method"`
	Seeds  []SeedFront `json:"seeds"`
}

// SeedFront is one completed unit: scored metrics plus the learned front.
type SeedFront struct {
	Seed  int64       `json:"seed"`
	HV    float64     `json:"hv"`
	ADRS  float64     `json:"adrs"`
	Runs  int         `json:"runs"`
	Front [][]float64 `json:"front,omitempty"`
}

// Event is one entry of a job's progress stream, delivered over SSE or the
// long-poll fallback. Seq is the per-job cursor for resuming a stream.
type Event struct {
	Seq    int    `json:"seq"`
	Type   string `json:"type"` // "status" | "unit" | "shutdown"
	Job    string `json:"job"`
	Status string `json:"status,omitempty"`
	// Unit carries per-unit progress (type "unit"): the scored result and
	// the unit's learned Pareto front.
	Unit *UnitEvent `json:"unit,omitempty"`
	// Done/Total track unit completion (type "unit").
	Done    int    `json:"done,omitempty"`
	Total   int    `json:"total,omitempty"`
	Message string `json:"message,omitempty"`
}

// UnitEvent is the per-unit payload of a progress event.
type UnitEvent struct {
	Space  string      `json:"space"`
	Method string      `json:"method"`
	Seed   int64       `json:"seed"`
	HV     float64     `json:"hv"`
	ADRS   float64     `json:"adrs"`
	Runs   int         `json:"runs"`
	Front  [][]float64 `json:"front,omitempty"`
}

// EventPage is the long-poll fallback payload: events after the requested
// cursor plus the next cursor to poll from.
type EventPage struct {
	Events []Event `json:"events"`
	Next   int     `json:"next"`
}

// ErrorDoc is every non-2xx JSON payload.
type ErrorDoc struct {
	Error string `json:"error"`
}

// HealthDoc is the GET /healthz payload.
type HealthDoc struct {
	OK   bool `json:"ok"`
	Jobs int  `json:"jobs"`
}

// jobPlan is a validated, resolved JobRequest: the campaign axes by value.
type jobPlan struct {
	scenario string
	spaces   []eval.ObjSpace
	methods  []eval.Method
	seeds    []int64
	gp       gp.Spec
	outage   chaos.Schedule
	breaker  int
	workers  int
}

// jobMaxOutage bounds how long one outage episode may keep a job's breaker
// open before the job fails (mirrors the tables CLI default).
const jobMaxOutage = 5 * time.Minute

// canonicalScenario resolves submission aliases to stable scenario names.
func canonicalScenario(name string) string {
	switch name {
	case "table2", "Table 2":
		return eval.ScenarioOneName
	case "table3", "Table 3":
		return eval.ScenarioTwoName
	}
	return name
}

// plan validates a request against the server's configuration and resolves
// its campaign axes. Validation is cheap (no benchmark construction):
// scenario existence for custom resolvers is established when the job
// first runs.
func (s *Server) plan(req JobRequest) (*jobPlan, error) {
	p := &jobPlan{scenario: canonicalScenario(req.Scenario)}
	if p.scenario == "" {
		return nil, fmt.Errorf("scenario is required (table2, table3, or a full scenario name)")
	}
	if s.cfg.Resolve == nil && p.scenario != eval.ScenarioOneName && p.scenario != eval.ScenarioTwoName {
		return nil, fmt.Errorf("unknown scenario %q", req.Scenario)
	}
	if req.Spaces == nil {
		p.spaces = eval.Spaces()
	} else {
		for _, name := range req.Spaces {
			sp, err := eval.SpaceByName(name)
			if err != nil {
				return nil, fmt.Errorf("spaces: %v", err)
			}
			p.spaces = append(p.spaces, sp)
		}
	}
	if req.Methods == nil {
		p.methods = eval.Methods()
	} else {
		for _, name := range req.Methods {
			m, err := methodByName(name)
			if err != nil {
				return nil, err
			}
			p.methods = append(p.methods, m)
		}
	}
	if len(p.spaces) == 0 || len(p.methods) == 0 {
		return nil, fmt.Errorf("spaces and methods must be non-empty")
	}
	seedSpec := req.Seeds
	if seedSpec == "" {
		seedSpec = "1"
	}
	seeds, err := eval.ParseSeeds(seedSpec)
	if err != nil {
		return nil, fmt.Errorf("seeds: %v", err)
	}
	p.seeds = seeds
	gpSpec := req.GP
	if gpSpec == "" {
		gpSpec = "exact"
	}
	p.gp, err = gp.ParseSpec(gpSpec)
	if err != nil {
		return nil, fmt.Errorf("gp: %v", err)
	}
	p.outage, err = chaos.ParseSchedule(req.Outage)
	if err != nil {
		return nil, fmt.Errorf("outage: %v", err)
	}
	if req.Breaker < 0 {
		return nil, fmt.Errorf("breaker must be >= 0")
	}
	if p.outage.Enabled() && req.Breaker == 0 {
		return nil, fmt.Errorf("outage requires a breaker: downtime without one burns retry budgets instead of parking units")
	}
	p.breaker = req.Breaker
	p.workers = req.Workers
	if p.workers <= 0 {
		p.workers = s.cfg.UnitWorkers
	}
	return p, nil
}

// methodByName resolves a tuner by its table spelling.
func methodByName(name string) (eval.Method, error) {
	for _, m := range eval.Methods() {
		if string(m) == name {
			return m, nil
		}
	}
	return "", fmt.Errorf("unknown method %q", name)
}

// total is the job's unit count.
func (p *jobPlan) total() int {
	return len(p.spaces) * len(p.methods) * len(p.seeds)
}

// spaceNames returns the plan's space headings in order.
func (p *jobPlan) spaceNames() []string {
	out := make([]string, len(p.spaces))
	for i, sp := range p.spaces {
		out[i] = sp.Name
	}
	return out
}

// methodNames returns the plan's tuner names in order.
func (p *jobPlan) methodNames() []string {
	out := make([]string, len(p.methods))
	for i, m := range p.methods {
		out[i] = string(m)
	}
	return out
}
