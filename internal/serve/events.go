package serve

import "sync"

// eventLog is one job's append-only progress stream. Readers poll with a
// sequence cursor; writers broadcast by closing-and-replacing the changed
// channel, so any number of SSE streams and long-polls can wait on one
// append without per-subscriber bookkeeping. The log is bounded by the
// job's campaign size (one event per unit plus a handful of status
// transitions), so entries are kept for the job's lifetime and a
// reconnecting client can always replay from seq 0.
type eventLog struct {
	mu      sync.Mutex
	events  []Event
	changed chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{changed: make(chan struct{})}
}

// append assigns the next sequence number, records the event, and wakes
// every waiter.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	e.Seq = len(l.events) + 1
	l.events = append(l.events, e)
	close(l.changed)
	l.changed = make(chan struct{})
	l.mu.Unlock()
}

// after returns the events with Seq > since, plus the channel that will be
// closed on the next append — snapshot first, then wait, so no append can
// fall between the two.
func (l *eventLog) after(since int) ([]Event, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ch := l.changed
	if since >= len(l.events) {
		return nil, ch
	}
	if since < 0 {
		since = 0
	}
	out := make([]Event, len(l.events)-since)
	copy(out, l.events[since:])
	return out, ch
}
