package serve

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ppatuner/internal/core"
	"ppatuner/internal/eval"
)

// sseLines reads one SSE stream until an event of the wanted type arrives,
// returning the event types seen in order.
func sseUntil(t *testing.T, body io.Reader, want string) []string {
	t.Helper()
	var types []string
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "event: ") {
			continue
		}
		typ := strings.TrimPrefix(line, "event: ")
		types = append(types, typ)
		if typ == want {
			return types
		}
	}
	t.Fatalf("stream ended without %q event; saw %v", want, types)
	return nil
}

// frontBytes fetches the raw front document — byte identity is the contract.
func frontBytes(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/front")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("front: %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGracefulShutdownDrainAndResume is the serve layer's core durability
// proof, run entirely on channels (no real sleeps):
//
//  1. a campaign is interrupted mid-unit by Shutdown; the in-flight SSE
//     stream receives a terminal shutdown event before closing;
//  2. the job parks with its paid-for observations checkpointed;
//  3. a second server over the same state dir requeues and finishes it, and
//     the total fresh evaluator calls across both processes equal an
//     uninterrupted control run's — nothing lost, nothing recomputed;
//  4. the resumed front document is byte-identical to the control's.
func TestGracefulShutdownDrainAndResume(t *testing.T) {
	req := JobRequest{
		Scenario: "table2", Spaces: []string{"Area-Delay"},
		Methods: []string{"TCAD'19", "DAC'19"}, Seeds: "1",
	}

	// Control: uninterrupted run in its own state dir.
	var controlEvals atomic.Int64
	control := newTestServer(t, nil)
	control.wrapUnit = func(_ eval.Unit, ev core.Evaluator) core.Evaluator {
		return func(i int) ([]float64, error) {
			controlEvals.Add(1)
			return ev(i)
		}
	}
	controlTS := httptest.NewServer(control.Handler())
	defer controlTS.Close()
	controlSub, _ := postJob(t, controlTS, req)
	waitStatus(t, controlTS, controlSub.ID, StatusDone)
	wantFront := frontBytes(t, controlTS, controlSub.ID)

	// Interrupted run: block the 10th evaluation mid-unit, shut down while
	// it is in flight, release it once the drain has begun.
	stateDir := t.TempDir()
	var phase1Evals atomic.Int64
	ready := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	s1 := newTestServer(t, func(c *Config) { c.StateDir = stateDir })
	s1.wrapUnit = func(_ eval.Unit, ev core.Evaluator) core.Evaluator {
		return func(i int) ([]float64, error) {
			if phase1Evals.Add(1) == 10 {
				once.Do(func() { close(ready) })
				<-proceed
			}
			return ev(i)
		}
	}
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	sub, _ := postJob(t, ts1, req)
	if sub.ID != controlSub.ID {
		t.Fatalf("job IDs diverge: %s vs %s", sub.ID, controlSub.ID)
	}
	<-ready // the campaign is mid-unit, evaluation 10 in flight

	// Subscribe before the drain so the stream is live when it happens.
	sseResp, err := ts1.Client().Get(ts1.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()

	done := make(chan struct{})
	go func() {
		s1.Shutdown()
		close(done)
	}()
	// The terminal event must arrive while the campaign is still draining —
	// streams never wait for job completion.
	types := sseUntil(t, sseResp.Body, "shutdown")
	if types[0] != "status" {
		t.Errorf("stream opened with %q, want the status replay", types[0])
	}
	close(proceed) // let evaluation 10 finish; the next call aborts the unit
	<-done

	v, ok := s1.View(sub.ID)
	if !ok || v.Status != StatusParked {
		t.Fatalf("after drain: %+v", v)
	}
	if _, err := os.Stat(filepath.Join(stateDir, checkpointName(sub.ID))); err != nil {
		t.Fatalf("no campaign checkpoint after drain: %v", err)
	}

	// Second process, same state dir: the parked job requeues and finishes.
	var phase2Evals atomic.Int64
	s2 := newTestServer(t, func(c *Config) { c.StateDir = stateDir })
	s2.wrapUnit = func(_ eval.Unit, ev core.Evaluator) core.Evaluator {
		return func(i int) ([]float64, error) {
			phase2Evals.Add(1)
			return ev(i)
		}
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	waitStatus(t, ts2, sub.ID, StatusDone)

	if got, want := phase1Evals.Load()+phase2Evals.Load(), controlEvals.Load(); got != want {
		t.Errorf("fresh evaluations across interrupt+resume = %d, control = %d (replay must cover exactly the paid-for work)", got, want)
	}
	gotFront := frontBytes(t, ts2, sub.ID)
	if string(gotFront) != string(wantFront) {
		t.Errorf("resumed front differs from uninterrupted control:\n%s\nvs\n%s", gotFront, wantFront)
	}
}

// TestShutdownUnblocksLongPoll proves a long-poll parked on a quiet job
// returns (empty page, same cursor) when the server drains instead of
// hanging the client.
func TestShutdownUnblocksLongPoll(t *testing.T) {
	ready := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	s := newTestServer(t, nil)
	s.wrapUnit = func(_ eval.Unit, ev core.Evaluator) core.Evaluator {
		return func(i int) ([]float64, error) {
			once.Do(func() { close(ready) })
			<-proceed
			return ev(i)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	sub, _ := postJob(t, ts, JobRequest{Scenario: "table2", Spaces: []string{"Area-Delay"}, Methods: []string{"TCAD'19"}})
	<-ready

	// Drain the existing events, then park a poll on the current cursor.
	var page EventPage
	getJSON(t, ts, "/jobs/"+sub.ID+"/events?poll=1&since=0", &page)
	type result struct {
		code int
		page EventPage
	}
	got := make(chan result, 1)
	go func() {
		var p EventPage
		code := getJSON(t, ts, "/jobs/"+sub.ID+"/events?poll=1&since="+strconv.Itoa(page.Next), &p)
		got <- result{code, p}
	}()

	done := make(chan struct{})
	go func() {
		s.Shutdown()
		close(done)
	}()
	r := <-got
	if r.code != http.StatusOK || len(r.page.Events) != 0 || r.page.Next != page.Next {
		t.Fatalf("drained long-poll = %d %+v", r.code, r.page)
	}
	close(proceed)
	<-done
}

// TestSubmitAfterShutdown proves a draining server refuses new work with
// 503 rather than accepting jobs it will never run.
func TestSubmitAfterShutdown(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Shutdown()
	_, resp := postJob(t, ts, JobRequest{Scenario: "table2"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit on draining server: %d, want 503", resp.StatusCode)
	}
	var health HealthDoc
	if code := getJSON(t, ts, "/healthz", &health); code != http.StatusOK || health.OK {
		t.Fatalf("draining healthz = %d %+v (OK must be false)", code, health)
	}
}
