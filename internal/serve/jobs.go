package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"

	"ppatuner/internal/core"
	"ppatuner/internal/eval"
	"ppatuner/internal/pdtool/chaos"
	"ppatuner/internal/robust"
)

// Sentinel errors of the job API. errDrained and errCancelled travel up
// through a campaign to abort it at the next evaluator call or unit
// boundary; the runner then classifies the outcome by the job's own state
// rather than by error identity, so a wrapped or transformed abort still
// parks/cancels correctly.
var (
	errBadRequest  = errors.New("serve: invalid job request")
	errRateLimited = errors.New("serve: submission rate limit exceeded")
	errStopped     = errors.New("serve: server is shutting down")
	errNotFound    = errors.New("serve: no such job")
	errDrained     = errors.New("serve: campaign drained for shutdown")
	errCancelled   = errors.New("serve: job cancelled")
)

// job is one submission's live scheduling state. The durable truth lives
// in the manifest; the live job carries what must not hit disk per check:
// the parsed plan, the event stream, and cancellation state.
type job struct {
	id     string
	client string
	req    JobRequest
	plan   *jobPlan
	log    *eventLog

	mu        sync.Mutex
	status    string
	cancelled bool
	cancel    context.CancelFunc
}

func (j *job) isCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

func (j *job) currentStatus() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *job) setCancel(c context.CancelFunc) {
	j.mu.Lock()
	j.cancel = c
	j.mu.Unlock()
}

func (j *job) cancelFunc() context.CancelFunc {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancel
}

// checkpointName is the per-job campaign checkpoint file, relative to the
// state directory.
func checkpointName(id string) string { return "job-" + id + ".ckpt.json" }

// Submit validates, rate-limits, persists and enqueues one job. Errors
// wrap errBadRequest, errRateLimited or errStopped for transport mapping.
func (s *Server) Submit(req JobRequest) (SubmitResponse, error) {
	if s.stopping() {
		return SubmitResponse{}, errStopped
	}
	if req.Client == "" {
		req.Client = "anon"
	}
	p, err := s.plan(req)
	if err != nil {
		return SubmitResponse{}, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	if !s.limiter.allow(req.Client) {
		return SubmitResponse{}, errRateLimited
	}
	id, err := s.manifest.NextID()
	if err != nil {
		return SubmitResponse{}, err
	}
	spec, err := json.Marshal(req)
	if err != nil {
		return SubmitResponse{}, err
	}
	rec := robust.JobRecord{
		ID: id, Client: req.Client, Status: StatusQueued,
		Spec: spec, Checkpoint: checkpointName(id),
	}
	if err := s.manifest.Put(rec); err != nil {
		return SubmitResponse{}, err
	}
	j := &job{id: id, client: req.Client, req: req, plan: p, log: newEventLog(), status: StatusQueued}
	j.log.append(Event{Type: "status", Job: id, Status: StatusQueued})
	s.enqueue(j)
	s.logf("serve: job %s queued by %s (%s, %d units)", id, req.Client, p.scenario, p.total())
	s.maybeStart()
	return SubmitResponse{ID: id, Status: StatusQueued}, nil
}

// Start requeues every non-terminal job the manifest carries (the
// restart/recovery path) and begins scheduling. Call once after New.
func (s *Server) Start() error {
	for _, rec := range s.manifest.Jobs() {
		if TerminalStatus(rec.Status) {
			continue
		}
		var req JobRequest
		if err := json.Unmarshal(rec.Spec, &req); err != nil {
			if serr := s.manifest.SetStatusAt(rec.ID, StatusFailed, "requeue: "+err.Error(), s.clk.Now().Unix()); serr != nil {
				return serr
			}
			continue
		}
		p, err := s.plan(req)
		if err != nil {
			if serr := s.manifest.SetStatusAt(rec.ID, StatusFailed, "requeue: "+err.Error(), s.clk.Now().Unix()); serr != nil {
				return serr
			}
			continue
		}
		if rec.Status != StatusQueued {
			if err := s.manifest.SetStatus(rec.ID, StatusQueued, ""); err != nil {
				return err
			}
		}
		j := &job{id: rec.ID, client: rec.Client, req: req, plan: p, log: newEventLog(), status: StatusQueued}
		j.log.append(Event{Type: "status", Job: rec.ID, Status: StatusQueued, Message: "requeued after restart"})
		s.enqueue(j)
		s.logf("serve: requeued job %s (%s, was %s)", rec.ID, p.scenario, rec.Status)
	}
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
	if s.cfg.Retain > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	s.maybeStart()
	return nil
}

// enqueue registers a live job and appends it to its client's queue.
func (s *Server) enqueue(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	if _, ok := s.queues[j.client]; !ok {
		s.clients = append(s.clients, j.client)
	}
	s.queues[j.client] = append(s.queues[j.client], j)
}

// maybeStart fills free campaign slots, taking one queued job per client in
// round-robin order so no tenant's backlog starves another's first job.
func (s *Server) maybeStart() {
	if s.stopping() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return
	}
	for s.running < s.cfg.MaxActive {
		j := s.nextLocked()
		if j == nil {
			return
		}
		if j.isCancelled() {
			continue
		}
		s.running++
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// nextLocked pops the next queued job in round-robin client order; callers
// hold s.mu.
func (s *Server) nextLocked() *job {
	n := len(s.clients)
	for off := 0; off < n; off++ {
		ci := (s.rr + off) % n
		q := s.queues[s.clients[ci]]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		s.queues[s.clients[ci]] = q[1:]
		s.rr = (ci + 1) % n
		return j
	}
	return nil
}

// runJob executes one job's campaign and classifies the outcome. Spawned
// WaitGroup-joined from maybeStart.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		s.maybeStart()
	}()
	if s.stopping() {
		s.setStatus(j, StatusParked, "")
		return
	}
	if j.isCancelled() {
		s.setStatus(j, StatusCancelled, "")
		return
	}
	s.setStatus(j, StatusRunning, "")
	err := s.runCampaign(j)
	switch {
	case err == nil:
		s.setStatus(j, StatusDone, "")
	case j.isCancelled():
		s.setStatus(j, StatusCancelled, "")
	case s.stopping():
		// Drained: the campaign stopped at an evaluator call or unit
		// boundary with every paid-for observation checkpointed. The next
		// boot requeues the job and it resumes bit-identically.
		s.setStatus(j, StatusParked, "")
	default:
		s.setStatus(j, StatusFailed, err.Error())
	}
}

// interrupted reports why the job must stop now, if it must.
func (s *Server) interrupted(j *job) error {
	if j.isCancelled() {
		return errCancelled
	}
	if s.stopping() {
		return errDrained
	}
	return nil
}

// runCampaign assembles and runs the job's campaign against its checkpoint.
func (s *Server) runCampaign(j *job) error {
	p := j.plan
	scn, err := s.resolveScenario(p.scenario)
	if err != nil {
		return err
	}
	rec, ok := s.manifest.Get(j.id)
	if !ok {
		return fmt.Errorf("job %s missing from manifest", j.id)
	}
	if rec.Golden == nil {
		// Golden fronts are a pure function of (scenario, spaces):
		// computing them again after a crash writes identical bytes.
		golden := map[string][][]float64{}
		for _, sp := range p.spaces {
			golden[sp.Name] = eval.GoldenFront(scn, sp)
		}
		if err := s.manifest.SetGolden(j.id, golden); err != nil {
			return err
		}
	}
	ck, err := robust.LoadCampaignCheckpoint(filepath.Join(s.cfg.StateDir, rec.Checkpoint))
	if err != nil {
		return err
	}

	// Chaos-enabled jobs get the full resilience stack (injector under a
	// park-mode breaker under the checkpoint cache, exactly the tables CLI
	// composition) wired to a per-job context: cancellation aborts the
	// in-flight evaluation without charging the candidate's retry budget,
	// so a drain can never be misread as a tool failure and skipped.
	var wrap func(core.Evaluator) core.Evaluator
	var brk *robust.Breaker
	if p.outage.Enabled() || p.breaker > 0 {
		jobCtx, cancel := context.WithCancel(context.Background())
		defer cancel()
		j.setCancel(cancel)
		defer j.setCancel(nil)
		flog := &robust.FailureLog{}
		var inj *chaos.Injector
		if p.outage.Enabled() {
			inj, err = chaos.New(chaos.Options{Seed: p.seeds[0], Outage: p.outage, Clock: s.clk})
			if err != nil {
				return err
			}
		}
		if p.breaker > 0 {
			brk = robust.NewBreaker(robust.BreakerOptions{
				Threshold: p.breaker, MaxOutage: jobMaxOutage,
				Park: true, Log: flog, Clock: s.clk,
			})
		}
		wrap = func(ev core.Evaluator) core.Evaluator {
			if inj != nil {
				ev = inj.Wrap(ev)
			}
			re, werr := robust.Wrap(jobCtx, ev, robust.Options{
				Policy: robust.PolicySkip, Seed: p.seeds[0],
				Breaker: brk, Log: flog, Clock: s.clk,
			})
			if werr != nil {
				return ev // unreachable: ev is never nil
			}
			return re.Evaluate
		}
	}

	wrapUnit := s.wrapUnit
	if wrap == nil {
		// Without a resilience layer there is no context to cancel, so
		// drain mid-unit through the evaluator instead: innermost, beneath
		// the checkpoint cache, so the abort error is never cached and
		// never replayed.
		prev := wrapUnit
		wrapUnit = func(u eval.Unit, ev core.Evaluator) core.Evaluator {
			if prev != nil {
				ev = prev(u, ev)
			}
			return func(i int) ([]float64, error) {
				if err := s.interrupted(j); err != nil {
					return nil, err
				}
				return ev(i)
			}
		}
	}

	c := &eval.Campaign{
		Scenario: scn, Seeds: p.seeds, Spaces: p.spaces, Methods: p.methods,
		Workers: p.workers, Checkpoint: ck, Breaker: brk,
		Opts:     eval.RunOpts{Wrap: wrap, GP: p.gp},
		Gate:     func(eval.Unit) error { return s.interrupted(j) },
		WrapUnit: wrapUnit,
	}
	c.OnUnit = func(u eval.Unit, res eval.UnitResult, out *eval.Outcome) error {
		sp := p.spaces[u.SpaceIdx]
		front := eval.OutcomeFront(scn, sp, out)
		ju := robust.JobUnit{
			Space: sp.Name, Method: string(u.Method), Seed: u.Seed,
			HV: res.HV, ADRS: res.ADRS, Runs: res.Runs, Front: front,
		}
		// Keyed by the job's requested scenario name (not the resolved
		// scenario's), so Front can address units without resolving.
		key := eval.UnitSpec{Scenario: p.scenario, Space: sp.Name, Method: u.Method, Seed: u.Seed}.Key()
		if err := s.manifest.SetUnit(j.id, key, ju); err != nil {
			return err
		}
		done := 0
		if r, ok := s.manifest.Get(j.id); ok {
			done = len(r.Units)
		}
		j.log.append(Event{
			Type: "unit", Job: j.id,
			Unit: &UnitEvent{Space: sp.Name, Method: string(u.Method), Seed: u.Seed,
				HV: res.HV, ADRS: res.ADRS, Runs: res.Runs, Front: front},
			Done: done, Total: p.total(),
		})
		return nil
	}
	_, err = c.Run()
	return err
}

// setStatus moves a job through its lifecycle: live state, manifest, event
// stream, server log — in that order, so a status a client observes is
// already durable.
func (s *Server) setStatus(j *job, status, errMsg string) {
	j.mu.Lock()
	j.status = status
	j.mu.Unlock()
	var finished int64
	if TerminalStatus(status) {
		// Stamped on the injected clock so the retention window ages
		// deterministically under test.
		finished = s.clk.Now().Unix()
	}
	if err := s.manifest.SetStatusAt(j.id, status, errMsg, finished); err != nil {
		s.logf("serve: job %s: persist status %s: %v", j.id, status, err)
	}
	j.log.append(Event{Type: "status", Job: j.id, Status: status, Message: errMsg})
	if errMsg != "" {
		s.logf("serve: job %s -> %s (%s)", j.id, status, errMsg)
	} else {
		s.logf("serve: job %s -> %s", j.id, status)
	}
}

// Cancel requests cancellation: queued jobs cancel immediately, running
// jobs at their next evaluator call. Terminal jobs are a no-op.
func (s *Server) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		if v, ok := s.View(id); ok {
			return v, nil
		}
		return JobView{}, errNotFound
	}
	j.mu.Lock()
	status := j.status
	var cancel context.CancelFunc
	if !TerminalStatus(status) {
		j.cancelled = true
		cancel = j.cancel
	}
	j.mu.Unlock()
	if status == StatusQueued {
		s.setStatus(j, StatusCancelled, "")
	}
	if cancel != nil {
		cancel()
	}
	v, _ := s.View(id)
	return v, nil
}

// View assembles one job's external state from the manifest.
func (s *Server) View(id string) (JobView, bool) {
	rec, ok := s.manifest.Get(id)
	if !ok {
		return JobView{}, false
	}
	return s.viewOf(rec), true
}

// Views lists all jobs, optionally filtered by client, in job-ID order.
func (s *Server) Views(client string) JobListDoc {
	doc := JobListDoc{Jobs: []JobView{}}
	for _, rec := range s.manifest.Jobs() {
		if client != "" && rec.Client != client {
			continue
		}
		doc.Jobs = append(doc.Jobs, s.viewOf(rec))
	}
	return doc
}

func (s *Server) viewOf(rec robust.JobRecord) JobView {
	v := JobView{
		ID: rec.ID, Client: rec.Client, Status: rec.Status,
		UnitsDone: len(rec.Units), Error: rec.Error,
	}
	var req JobRequest
	if err := json.Unmarshal(rec.Spec, &req); err != nil {
		return v
	}
	v.Scenario = canonicalScenario(req.Scenario)
	v.GP = req.GP
	v.Outage = req.Outage
	v.Breaker = req.Breaker
	if p, err := s.plan(req); err == nil {
		v.Spaces = p.spaceNames()
		v.Methods = p.methodNames()
		v.Seeds = p.seeds
		v.UnitsTotal = p.total()
	}
	s.mu.Lock()
	if j := s.jobs[rec.ID]; j != nil && !TerminalStatus(rec.Status) {
		v.CancelRequested = j.isCancelled()
	}
	s.mu.Unlock()
	return v
}

// Front assembles the job's Pareto-front document from the manifest: the
// golden front per space plus every completed unit's learned front, in the
// job's requested (space, method, seed) order.
func (s *Server) Front(id string) (FrontDoc, bool) {
	rec, ok := s.manifest.Get(id)
	if !ok {
		return FrontDoc{}, false
	}
	doc := FrontDoc{Job: rec.ID, Status: rec.Status, Spaces: []SpaceFront{}}
	var req JobRequest
	if err := json.Unmarshal(rec.Spec, &req); err != nil {
		return doc, true
	}
	p, err := s.plan(req)
	if err != nil {
		return doc, true
	}
	doc.Scenario = p.scenario
	for _, sp := range p.spaces {
		sf := SpaceFront{Space: sp.Name, Golden: rec.Golden[sp.Name]}
		for _, m := range p.methods {
			mf := MethodFront{Method: string(m)}
			for _, seed := range p.seeds {
				key := eval.UnitSpec{Scenario: p.scenario, Space: sp.Name, Method: m, Seed: seed}.Key()
				if u, ok := rec.Units[key]; ok {
					mf.Seeds = append(mf.Seeds, SeedFront{
						Seed: seed, HV: u.HV, ADRS: u.ADRS, Runs: u.Runs, Front: u.Front,
					})
				}
			}
			sf.Methods = append(sf.Methods, mf)
		}
		doc.Spaces = append(doc.Spaces, sf)
	}
	return doc, true
}
