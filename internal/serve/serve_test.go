package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ppatuner/internal/benchdata"
	"ppatuner/internal/clock"
	"ppatuner/internal/core"
	"ppatuner/internal/eval"
	"ppatuner/internal/param"
	"ppatuner/internal/pdtool"
)

// miniResolve maps every scenario name to one cheap shared scenario, so
// server tests never pay for the paper-scale benchmark generation.
var (
	miniOnce sync.Once
	miniScn  *eval.Scenario
	miniErr  error
)

func miniResolve(string) (*eval.Scenario, error) {
	miniOnce.Do(func() {
		src, err := benchdata.Generate("mini-src", param.Source2Space(), pdtool.SmallMAC(), benchdata.GenOptions{Points: 120, Seed: 51})
		if err != nil {
			miniErr = err
			return
		}
		tgt, err := benchdata.Generate("mini-tgt", param.Target2Space(), pdtool.SmallMAC(), benchdata.GenOptions{Points: 100, Seed: 52})
		if err != nil {
			miniErr = err
			return
		}
		miniScn = &eval.Scenario{
			Name: "Mini", Source: src, Target: tgt,
			SourceN: 60, InitFrac: 0.08,
			Budgets: map[eval.Method]int{
				eval.TCAD19: 40, eval.MLCAD19: 30, eval.DAC19: 45,
				eval.ASPDAC20: 30, eval.PPATuner: 35,
			},
		}
	})
	return miniScn, miniErr
}

// newTestServer builds a started server over a fresh state dir with the
// cheap scenario resolver, registering shutdown as cleanup.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		StateDir: t.TempDir(),
		Resolve:  miniResolve,
		Logf:     t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

// postJob submits a request over the HTTP surface and decodes the response.
func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (SubmitResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub SubmitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
	}
	return sub, resp
}

// getJSON fetches a path and decodes into v, returning the status code.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// waitStatus long-polls the events endpoint until the job reports one of
// the wanted statuses (bounded by the request context via the test's
// deadline-free client — each poll rides one HTTP request).
func waitStatus(t *testing.T, ts *httptest.Server, id string, want ...string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	next := 0
	for time.Now().Before(deadline) {
		var page EventPage
		if code := getJSON(t, ts, fmt.Sprintf("/jobs/%s/events?poll=1&since=%d", id, next), &page); code != http.StatusOK {
			t.Fatalf("events poll returned %d", code)
		}
		next = page.Next
		var v JobView
		if code := getJSON(t, ts, "/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("job view returned %d", code)
		}
		for _, w := range want {
			if v.Status == w {
				return v.Status
			}
		}
		if TerminalStatus(v.Status) {
			t.Fatalf("job %s ended %s (error %q), want one of %v", id, v.Status, v.Error, want)
		}
	}
	t.Fatalf("timed out waiting for job %s to reach %v", id, want)
	return ""
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []JobRequest{
		{},                                    // no scenario
		{Scenario: "table2", Seeds: "zero"},   // bad seeds
		{Scenario: "table2", GP: "sparse:-1"}, // bad GP spec
		{Scenario: "table2", Methods: []string{"nope"}},
		{Scenario: "table2", Spaces: []string{"nope"}},
		{Scenario: "table2", Outage: "60s/10s"}, // outage without breaker
		{Scenario: "table2", Breaker: -1},
	}
	for i, req := range cases {
		if _, resp := postJob(t, ts, req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	if code := getJSON(t, ts, "/jobs/j99", nil); code != http.StatusNotFound {
		t.Errorf("unknown job view: %d, want 404", code)
	}
	if code := getJSON(t, ts, "/jobs/j99/front", nil); code != http.StatusNotFound {
		t.Errorf("unknown job front: %d, want 404", code)
	}
	var health HealthDoc
	if code := getJSON(t, ts, "/healthz", &health); code != http.StatusOK || !health.OK {
		t.Errorf("healthz = %d %+v", code, health)
	}
}

func TestJobLifecycle(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub, resp := postJob(t, ts, JobRequest{
		Client: "alice", Scenario: "table2",
		Spaces:  []string{"Area-Delay"},
		Methods: []string{"TCAD'19", "PPATuner"},
		Seeds:   "1",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if sub.ID != "j1" || sub.Status != StatusQueued {
		t.Fatalf("submit response %+v", sub)
	}
	waitStatus(t, ts, sub.ID, StatusDone)

	var v JobView
	getJSON(t, ts, "/jobs/"+sub.ID, &v)
	if v.UnitsDone != 2 || v.UnitsTotal != 2 || v.Client != "alice" {
		t.Fatalf("final view %+v", v)
	}
	if v.Scenario != eval.ScenarioOneName {
		t.Fatalf("scenario alias not canonicalised: %q", v.Scenario)
	}

	var list JobListDoc
	getJSON(t, ts, "/jobs?client=alice", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != "j1" {
		t.Fatalf("list %+v", list)
	}
	getJSON(t, ts, "/jobs?client=nobody", &list)
	if len(list.Jobs) != 0 {
		t.Fatalf("filtered list %+v", list)
	}

	var front FrontDoc
	getJSON(t, ts, "/jobs/"+sub.ID+"/front", &front)
	if front.Status != StatusDone || len(front.Spaces) != 1 {
		t.Fatalf("front %+v", front)
	}
	sf := front.Spaces[0]
	if len(sf.Golden) == 0 {
		t.Fatal("front has no golden series")
	}
	if len(sf.Methods) != 2 {
		t.Fatalf("front has %d methods, want 2", len(sf.Methods))
	}
	for _, mf := range sf.Methods {
		if len(mf.Seeds) != 1 || mf.Seeds[0].Runs == 0 || len(mf.Seeds[0].Front) == 0 {
			t.Fatalf("method %s fronts incomplete: %+v", mf.Method, mf.Seeds)
		}
	}

	// The event log must hold the full history: queued, running, one unit
	// event per unit, done.
	var page EventPage
	getJSON(t, ts, "/jobs/"+sub.ID+"/events?poll=1&since=0", &page)
	var units, statuses int
	for _, e := range page.Events {
		switch e.Type {
		case "unit":
			units++
			if e.Unit == nil || e.Unit.Runs == 0 {
				t.Errorf("unit event without payload: %+v", e)
			}
		case "status":
			statuses++
		}
	}
	if units != 2 || statuses < 3 {
		t.Fatalf("event history: %d unit, %d status events", units, statuses)
	}
}

func TestCancelRunningJob(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s := newTestServer(t, nil)
	s.wrapUnit = func(u eval.Unit, ev core.Evaluator) core.Evaluator {
		return func(i int) ([]float64, error) {
			once.Do(func() { close(release) })
			return ev(i)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub, _ := postJob(t, ts, JobRequest{
		Scenario: "table2", Spaces: []string{"Area-Delay"},
		Methods: []string{"PPATuner"}, Seeds: "1,2,3",
	})
	<-release // the campaign is mid-unit now
	resp, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ts.Client().Do(resp)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", r.StatusCode)
	}
	waitStatus(t, ts, sub.ID, StatusCancelled)

	// A cancelled job must never be requeued by a later boot.
	s.Shutdown()
	s2, err := New(Config{StateDir: s.cfg.StateDir, Resolve: miniResolve})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	v, ok := s2.View(sub.ID)
	if !ok || v.Status != StatusCancelled {
		t.Fatalf("after restart: %+v", v)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	// MaxActive 1: the second submission stays queued while the first is
	// held mid-unit, so the cancel hits a genuinely queued job.
	gate := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s := newTestServer(t, nil)
	s.wrapUnit = func(u eval.Unit, ev core.Evaluator) core.Evaluator {
		return func(i int) ([]float64, error) {
			once.Do(func() {
				close(gate)
				<-release
			})
			return ev(i)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first, _ := postJob(t, ts, JobRequest{Scenario: "table2", Spaces: []string{"Area-Delay"}, Methods: []string{"TCAD'19"}})
	second, _ := postJob(t, ts, JobRequest{Scenario: "table2", Spaces: []string{"Area-Delay"}, Methods: []string{"TCAD'19"}})
	<-gate
	if _, err := s.Cancel(second.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	v, _ := s.View(second.ID)
	if v.Status != StatusCancelled {
		t.Fatalf("queued job after cancel: %s", v.Status)
	}
	waitStatus(t, ts, first.ID, StatusDone)
}

func TestRateLimit(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	s := newTestServer(t, func(c *Config) {
		c.Clock = fake
		c.Rate = 1
		c.Burst = 2
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := JobRequest{Scenario: "table2", Spaces: []string{"Area-Delay"}, Methods: []string{"TCAD'19"}}
	for i := 0; i < 2; i++ {
		if _, resp := postJob(t, ts, req); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d: %d", i, resp.StatusCode)
		}
	}
	if _, resp := postJob(t, ts, req); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst submit: %d, want 429", resp.StatusCode)
	}
	// Another tenant has its own bucket.
	other := req
	other.Client = "bob"
	if _, resp := postJob(t, ts, other); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other client blocked: %d", resp.StatusCode)
	}
	// One virtual second refills one token — no real sleeping.
	fake.Advance(time.Second)
	if _, resp := postJob(t, ts, req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-refill submit: %d", resp.StatusCode)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// alice floods the queue before bob submits his one job. With a single
	// campaign slot, strict FIFO would run bob last; round-robin must grant
	// him the slot after at most one more alice job. Each job carries a
	// unique seed so the start order is observable from the unit evaluator.
	var mu sync.Mutex
	var order []int64
	seen := map[int64]bool{}
	ready := make(chan struct{}, 16)
	releaseFirst := make(chan struct{})
	s := newTestServer(t, nil)
	s.wrapUnit = func(u eval.Unit, ev core.Evaluator) core.Evaluator {
		return func(i int) ([]float64, error) {
			mu.Lock()
			first := !seen[u.Seed]
			if first {
				seen[u.Seed] = true
				order = append(order, u.Seed)
			}
			mu.Unlock()
			if first {
				select {
				case ready <- struct{}{}:
				default:
				}
				if u.Seed == 11 {
					// Hold alice's first job mid-unit until the whole
					// backlog is queued, so the scheduler sees all four.
					<-releaseFirst
				}
			}
			return ev(i)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mini := func(client, seed string) JobRequest {
		// Trailing comma: ParseSeeds list form, a single explicit seed.
		return JobRequest{Client: client, Scenario: "table2", Spaces: []string{"Area-Delay"}, Methods: []string{"TCAD'19"}, Seeds: seed + ","}
	}
	a1, _ := postJob(t, ts, mini("alice", "11"))
	<-ready // alice's first job is mid-unit and holds the only slot
	a2, _ := postJob(t, ts, mini("alice", "12"))
	a3, _ := postJob(t, ts, mini("alice", "13"))
	b1, _ := postJob(t, ts, mini("bob", "14"))
	close(releaseFirst)

	for _, id := range []string{a1.ID, a2.ID, a3.ID, b1.ID} {
		waitStatus(t, ts, id, StatusDone)
	}
	mu.Lock()
	got := append([]int64(nil), order...)
	mu.Unlock()
	// Pop order: alice(11) ran first; then the cursor alternates alice(12),
	// bob(14), alice(13) — bob is served before alice's backlog drains.
	want := []int64{11, 12, 14, 13}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("start order %v, want %v", got, want)
	}
}

// A job that finished in a previous process has no live event log on the
// next boot; /events must synthesize its terminal status and then close the
// stream (and return caught-up long-polls immediately) instead of waiting
// on a log that can never change.
func TestEventsForJobFromPreviousBoot(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, func(c *Config) { c.StateDir = dir })
	ts1 := httptest.NewServer(s1.Handler())
	sub, _ := postJob(t, ts1, JobRequest{
		Scenario: "table2", Spaces: []string{"Area-Delay"},
		Methods: []string{"PPATuner"}, Seeds: "1",
	})
	waitStatus(t, ts1, sub.ID, StatusDone)
	ts1.Close()
	s1.Shutdown()

	s2 := newTestServer(t, func(c *Config) { c.StateDir = dir })
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// The watchdog context only fires on regression; a correct stream hits
	// EOF as soon as the synthesized terminal event is replayed.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts2.URL+"/jobs/"+sub.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts2.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("SSE stream for a terminal job did not close: %v", err)
	}
	if !strings.Contains(string(body), `"status":"done"`) {
		t.Fatalf("stream missing terminal status event:\n%s", body)
	}

	// A long-poll that is already caught up must return an empty page.
	var page EventPage
	if code := getJSON(t, ts2, "/jobs/"+sub.ID+"/events?poll=1&since=1", &page); code != http.StatusOK {
		t.Fatalf("poll returned %d", code)
	}
	if len(page.Events) != 0 || page.Next != 1 {
		t.Fatalf("caught-up poll page %+v, want empty at cursor 1", page)
	}
}
