package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ppatuner/internal/clock"
	"ppatuner/internal/eval"
	"ppatuner/internal/robust"
)

// ckptFiles lists the checkpoint files currently in a state dir.
func ckptFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "job-*.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestRetentionCollectsExpiredJobsAndOrphans(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_000_000, 0))
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) {
		c.StateDir = dir
		c.Clock = fake
		c.Retain = time.Hour
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sub, resp := postJob(t, ts, JobRequest{
		Client: "alice", Scenario: "table2",
		Spaces:  []string{"Area-Delay"},
		Methods: []string{"DAC'19"},
		Seeds:   "1",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitStatus(t, ts, sub.ID, StatusDone)
	if n := len(ckptFiles(t, dir)); n != 1 {
		t.Fatalf("done job left %d checkpoint files, want 1", n)
	}

	// Young terminal job: inside the window, nothing is collected and the
	// checkpoint is not mistaken for an orphan.
	fake.Advance(30 * time.Minute)
	if n, err := s.CollectGarbage(); err != nil || n != 0 {
		t.Fatalf("CollectGarbage inside window = (%d, %v), want (0, nil)", n, err)
	}
	if n := len(ckptFiles(t, dir)); n != 1 {
		t.Fatalf("young job's checkpoint swept: %d files left", n)
	}

	// Past the window: the record goes first, then the file.
	fake.Advance(31 * time.Minute)
	if n, err := s.CollectGarbage(); err != nil || n != 1 {
		t.Fatalf("CollectGarbage past window = (%d, %v), want (1, nil)", n, err)
	}
	if code := getJSON(t, ts, "/jobs/"+sub.ID, nil); code != http.StatusNotFound {
		t.Fatalf("collected job still served: %d", code)
	}
	if n := len(ckptFiles(t, dir)); n != 0 {
		t.Fatalf("collected job left %d checkpoint files", n)
	}

	// An orphaned checkpoint — as left by a crash between record delete and
	// file delete — is swept on the next round even with no expired jobs.
	orphan := filepath.Join(dir, "job-999.ckpt.json")
	if err := os.WriteFile(orphan, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := s.CollectGarbage(); err != nil || n != 0 {
		t.Fatalf("orphan sweep = (%d, %v), want (0, nil)", n, err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned checkpoint not swept: %v", err)
	}
}

func TestRetentionSparesLiveAndLegacyJobs(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_000_000, 0))
	release := make(chan struct{})
	var once sync.Once
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) {
		c.StateDir = dir
		c.Clock = fake
		c.Retain = time.Hour
		c.Resolve = func(name string) (*eval.Scenario, error) {
			// Park the first unit until released so the job stays running
			// while the clock races past the retention window.
			once.Do(func() { <-release })
			return miniResolve(name)
		}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A legacy terminal record with no FinishedAtUnix stamp (written before
	// retention existed) must never age out.
	if err := s.manifest.Put(robust.JobRecord{
		ID: "j0", Client: "old", Status: StatusFailed,
		Spec: []byte(`{}`), Error: "ancient history",
	}); err != nil {
		t.Fatal(err)
	}

	sub, resp := postJob(t, ts, JobRequest{
		Client: "alice", Scenario: "table2",
		Spaces:  []string{"Area-Delay"},
		Methods: []string{"DAC'19"},
		Seeds:   "1",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitStatus(t, ts, sub.ID, StatusRunning)

	fake.Advance(48 * time.Hour)
	if n, err := s.CollectGarbage(); err != nil || n != 0 {
		t.Fatalf("CollectGarbage = (%d, %v), want (0, nil): live and legacy jobs are not collectable", n, err)
	}
	if _, ok := s.manifest.Get("j0"); !ok {
		t.Fatal("legacy record without a finish stamp was collected")
	}
	if _, ok := s.manifest.Get(sub.ID); !ok {
		t.Fatal("running job was collected")
	}

	close(release)
	waitStatus(t, ts, sub.ID, StatusDone)

	// Now the job finishes at the *advanced* clock, so it only expires an
	// hour from here — then collection takes it, while the stampless legacy
	// record still survives.
	fake.Advance(2 * time.Hour)
	n, err := s.CollectGarbage()
	if err != nil || n != 1 {
		t.Fatalf("CollectGarbage after finish+expiry = (%d, %v), want (1, nil)", n, err)
	}
	if _, ok := s.manifest.Get(sub.ID); ok {
		t.Fatal("expired done job survived collection")
	}
	if _, ok := s.manifest.Get("j0"); !ok {
		t.Fatal("legacy record collected on the second pass")
	}
}
