package serve

import (
	"os"
	"path/filepath"
	"time"
)

// CollectGarbage removes every terminal job (done, failed, cancelled)
// that reached its terminal status at least Config.Retain ago, along with
// its campaign checkpoint file, and sweeps orphaned checkpoint files a
// previous interrupted collection left behind. Returns how many jobs were
// collected. A zero/negative Retain disables collection entirely.
//
// Delete ordering is manifest-record first, checkpoint file second: the
// invariant every reader relies on is "record exists ⇒ checkpoint exists",
// so a crash between the two steps leaves an orphaned file (harmless,
// swept next round) rather than a resumable job whose resume state is
// gone.
func (s *Server) CollectGarbage() (int, error) {
	if s.cfg.Retain <= 0 {
		return 0, nil
	}
	// Checkpoint files are listed BEFORE the manifest snapshot. Submit
	// persists a job's record before its checkpoint file ever exists, so a
	// file in this list whose job is absent from the later snapshot can
	// only be an orphan from an interrupted collection — never a job
	// racing in. (A checkpoint created after this listing is simply not
	// swept this round.)
	files, err := filepath.Glob(filepath.Join(s.cfg.StateDir, "job-*.ckpt.json"))
	if err != nil {
		return 0, err
	}

	now := s.clk.Now().Unix()
	referenced := map[string]bool{}
	collected := 0
	for _, rec := range s.manifest.Jobs() {
		expired := TerminalStatus(rec.Status) && rec.FinishedAtUnix > 0 &&
			now-rec.FinishedAtUnix >= int64(s.cfg.Retain/time.Second)
		if !expired {
			if rec.Checkpoint != "" {
				referenced[rec.Checkpoint] = true
			}
			continue
		}
		if err := s.manifest.Delete(rec.ID); err != nil {
			return collected, err
		}
		if rec.Checkpoint != "" {
			if err := os.Remove(filepath.Join(s.cfg.StateDir, rec.Checkpoint)); err != nil && !os.IsNotExist(err) {
				return collected, err
			}
		}
		s.mu.Lock()
		delete(s.jobs, rec.ID)
		s.mu.Unlock()
		collected++
		s.logf("serve: gc: job %s (%s, finished %s ago) removed", rec.ID, rec.Status,
			(time.Duration(now-rec.FinishedAtUnix) * time.Second).Round(time.Second))
	}

	for _, f := range files {
		if referenced[filepath.Base(f)] {
			continue
		}
		// Either just deleted above (second Remove is a no-op) or orphaned
		// by an earlier interrupted collection.
		if err := os.Remove(f); err != nil && !os.IsNotExist(err) {
			return collected, err
		}
	}
	return collected, nil
}

// gcLoop periodically collects garbage until shutdown. Pacing runs on
// real time — it is a pure wall-clock hygiene concern — while the expiry
// decisions inside CollectGarbage use the injected clock, so fake-clock
// tests drive collection directly instead of spinning this loop.
func (s *Server) gcLoop() {
	defer s.wg.Done()
	every := s.cfg.Retain / 4
	if every < time.Second {
		every = time.Second
	}
	if every > time.Minute {
		every = time.Minute
	}
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(every):
		}
		if n, err := s.CollectGarbage(); err != nil {
			s.logf("serve: gc: %v", err)
		} else if n > 0 {
			s.logf("serve: gc: collected %d job(s)", n)
		}
	}
}
