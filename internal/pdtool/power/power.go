// Package power implements the power-analysis step of the flow: switching
// (net capacitance), internal (cell energy), leakage, and clock-tree power,
// using per-kind switching activities propagated from a register/PI toggle
// model. Results are in milliwatts at the operating frequency.
package power

import (
	"fmt"

	"ppatuner/internal/pdtool/cts"
	"ppatuner/internal/pdtool/drv"
	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
	"ppatuner/internal/pdtool/route"
)

// Options configures power analysis.
type Options struct {
	// FreqMHz is the operating clock frequency.
	FreqMHz float64
	// InputActivity is the toggle rate of primary inputs per cycle
	// (default 0.25).
	InputActivity float64
}

// Breakdown reports power by component, in mW.
type Breakdown struct {
	SwitchingMW float64
	InternalMW  float64
	LeakageMW   float64
	ClockMW     float64
}

// TotalMW sums all components.
func (b Breakdown) TotalMW() float64 {
	return b.SwitchingMW + b.InternalMW + b.LeakageMW + b.ClockMW
}

// activityFor returns the output toggle probability per cycle for each cell
// kind, given the average input activity a. These are standard logic-signal
// probability approximations for random inputs.
func activityFor(k lib.Kind, a float64) float64 {
	switch k {
	case lib.Inv, lib.Buf, lib.ClkBuf:
		return a
	case lib.Nand2, lib.Nor2, lib.And2, lib.Or2:
		return 0.75 * a
	case lib.Xor2:
		return 1.1 * a
	case lib.Aoi22:
		return 0.8 * a
	case lib.HalfAdder, lib.FullAdder:
		return a
	case lib.DFF:
		return 0.5 * a
	default:
		return a
	}
}

// Analyze computes the design's power breakdown. Net switched capacitances
// come from the DRV buffering plan and routed detours; the clock component
// from the CTS result.
func Analyze(nl *netlist.Netlist, l *lib.Library, fix *drv.Result, rt *route.Result, ct *cts.Result, opt Options) (*Breakdown, error) {
	if opt.FreqMHz <= 0 {
		return nil, fmt.Errorf("power: frequency %g MHz", opt.FreqMHz)
	}
	if opt.InputActivity <= 0 {
		opt.InputActivity = 0.25
	}

	// Propagate activities: net activity = driver activity; cell output
	// activity decays per logic stage (signal correlation).
	netAct := make([]float64, len(nl.Nets))
	for _, pi := range nl.PINets {
		netAct[pi] = opt.InputActivity
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	cellAct := make([]float64, len(nl.Cells))
	for _, ci := range order {
		c := nl.Cells[ci]
		if c.Kind == lib.DFF {
			// Register outputs toggle at half the D activity (value changes).
			in := opt.InputActivity
			if len(c.Inputs) > 0 {
				in = netAct[c.Inputs[0]]
				if in == 0 {
					in = opt.InputActivity
				}
			}
			cellAct[ci] = activityFor(lib.DFF, in)
		} else {
			avg := 0.0
			for _, in := range c.Inputs {
				avg += netAct[in]
			}
			if len(c.Inputs) > 0 {
				avg /= float64(len(c.Inputs))
			}
			cellAct[ci] = activityFor(c.Kind, avg)
		}
		if c.Out >= 0 {
			netAct[c.Out] = cellAct[ci]
		}
	}

	vdd2 := l.Vdd * l.Vdd
	f := opt.FreqMHz
	var b Breakdown
	// Switching: act × C_net × Vdd² × f. fF·V²·MHz = nW.
	for id, net := range nl.Nets {
		if net.Driver < 0 && len(net.Sinks) == 0 {
			continue
		}
		act := netAct[id]
		capFF := fix.NetCapFF(l, nl, id, rt.Detour[id])
		b.SwitchingMW += 0.5 * act * capFF * vdd2 * f
	}
	// Internal energy and leakage per cell (plus DRV buffers).
	for ci, c := range nl.Cells {
		sc := l.Scaled(c.Kind, c.Size)
		b.InternalMW += cellAct[ci] * sc.InternalEnergy * f
		b.LeakageMW += sc.Leakage
	}
	buf := l.Cell(lib.Buf)
	b.LeakageMW += fix.BufferLeakage
	b.InternalMW += float64(fix.TotalBuffers) * 0.4 * opt.InputActivity * buf.InternalEnergy * f

	// Clock: toggles twice per cycle (both edges), activity 1.
	clkbuf := l.Cell(lib.ClkBuf)
	b.ClockMW = ct.SwitchedCapFF*vdd2*f + float64(ct.Buffers)*clkbuf.InternalEnergy*f
	b.LeakageMW += ct.LeakageNW

	// nW → mW.
	b.SwitchingMW /= 1e6
	b.InternalMW /= 1e6
	b.LeakageMW /= 1e6
	b.ClockMW /= 1e6
	return &b, nil
}
