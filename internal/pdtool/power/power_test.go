package power

import (
	"testing"

	"ppatuner/internal/pdtool/cts"
	"ppatuner/internal/pdtool/drv"
	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
	"ppatuner/internal/pdtool/place"
	"ppatuner/internal/pdtool/route"
)

type rig struct {
	nl  *netlist.Netlist
	lib *lib.Library
	fix *drv.Result
	rt  *route.Result
	ct  *cts.Result
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	nl, err := netlist.MAC("m", 10)
	if err != nil {
		t.Fatal(err)
	}
	l := lib.Default7nm()
	pl, err := place.Place(nl, l, place.Options{TargetUtil: 0.7, MaxBinDensity: 0.85, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	fix, err := drv.Fix(nl, l, pl, drv.Limits{MaxFanout: 32, MaxCapFF: 100, MaxTransPS: 250, MaxLenUm: 300})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := route.Route(nl, pl, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := cts.Synthesize(l, len(nl.Registers()), pl.CoreW, pl.CoreH, cts.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{nl: nl, lib: l, fix: fix, rt: rt, ct: ct}
}

func TestAnalyzeComponentsPositive(t *testing.T) {
	r := buildRig(t)
	b, err := Analyze(r.nl, r.lib, r.fix, r.rt, r.ct, Options{FreqMHz: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if b.SwitchingMW <= 0 || b.InternalMW <= 0 || b.LeakageMW <= 0 || b.ClockMW <= 0 {
		t.Errorf("zero component: %+v", b)
	}
	if b.TotalMW() <= 0 {
		t.Error("total power not positive")
	}
	// Plausible magnitude for a ~1k-cell block at 1 GHz: between 10 µW and
	// 100 mW.
	if b.TotalMW() < 0.01 || b.TotalMW() > 100 {
		t.Errorf("total power %g mW implausible", b.TotalMW())
	}
}

func TestPowerScalesWithFrequency(t *testing.T) {
	r := buildRig(t)
	lo, err := Analyze(r.nl, r.lib, r.fix, r.rt, r.ct, Options{FreqMHz: 500})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Analyze(r.nl, r.lib, r.fix, r.rt, r.ct, Options{FreqMHz: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if !(hi.TotalMW() > lo.TotalMW()) {
		t.Error("power not increasing with frequency")
	}
	// Leakage must be frequency-independent.
	if hi.LeakageMW != lo.LeakageMW {
		t.Errorf("leakage changed with frequency: %g vs %g", hi.LeakageMW, lo.LeakageMW)
	}
	// Dynamic components must scale ~linearly (3× here).
	ratio := hi.SwitchingMW / lo.SwitchingMW
	if ratio < 2.9 || ratio > 3.1 {
		t.Errorf("switching power ratio = %g, want ~3", ratio)
	}
}

func TestPowerScalesWithActivity(t *testing.T) {
	r := buildRig(t)
	lo, err := Analyze(r.nl, r.lib, r.fix, r.rt, r.ct, Options{FreqMHz: 1000, InputActivity: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Analyze(r.nl, r.lib, r.fix, r.rt, r.ct, Options{FreqMHz: 1000, InputActivity: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !(hi.SwitchingMW > lo.SwitchingMW) {
		t.Error("switching power not increasing with input activity")
	}
}

func TestUpsizedCellsLeakMore(t *testing.T) {
	r := buildRig(t)
	base, err := Analyze(r.nl, r.lib, r.fix, r.rt, r.ct, Options{FreqMHz: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range r.nl.Cells {
		r.nl.Cells[ci].Size = 4
	}
	big, err := Analyze(r.nl, r.lib, r.fix, r.rt, r.ct, Options{FreqMHz: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !(big.LeakageMW > base.LeakageMW) {
		t.Error("upsizing did not increase leakage")
	}
	if !(big.TotalMW() > base.TotalMW()) {
		t.Error("upsizing did not increase total power")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	r := buildRig(t)
	if _, err := Analyze(r.nl, r.lib, r.fix, r.rt, r.ct, Options{FreqMHz: 0}); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestActivityForCoverage(t *testing.T) {
	for _, k := range lib.Default7nm().Kinds() {
		if a := activityFor(k, 0.25); a <= 0 || a > 0.5 {
			t.Errorf("%v: activity %g out of sane range", k, a)
		}
	}
}
