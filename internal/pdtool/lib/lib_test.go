package lib

import (
	"math"
	"testing"
)

func TestDefault7nmCellsDefined(t *testing.T) {
	l := Default7nm()
	for _, k := range l.Kinds() {
		c := l.Cell(k)
		if c.Area <= 0 {
			t.Errorf("%v: area %g <= 0", k, c.Area)
		}
		if c.InCap <= 0 || c.DriveRes <= 0 || c.Leakage <= 0 || c.InternalEnergy <= 0 {
			t.Errorf("%v: non-positive electrical parameter: %+v", k, c)
		}
		if c.NumInputs < 1 {
			t.Errorf("%v: NumInputs = %d", k, c.NumInputs)
		}
	}
	if !l.Cell(DFF).IsSequential {
		t.Error("DFF not marked sequential")
	}
	if l.Cell(Nand2).IsSequential {
		t.Error("NAND2 marked sequential")
	}
}

func TestCellKindString(t *testing.T) {
	if DFF.String() != "DFF" || FullAdder.String() != "FA" {
		t.Errorf("kind names wrong: %s, %s", DFF, FullAdder)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cell(bad kind) did not panic")
		}
	}()
	Default7nm().Cell(Kind(99))
}

func TestScaled(t *testing.T) {
	l := Default7nm()
	base := l.Cell(Inv)
	s2 := l.Scaled(Inv, 2)
	if math.Abs(s2.Area-2*base.Area) > 1e-12 {
		t.Errorf("area scaling: %g, want %g", s2.Area, 2*base.Area)
	}
	if math.Abs(s2.DriveRes-base.DriveRes/2) > 1e-12 {
		t.Errorf("drive scaling: %g, want %g", s2.DriveRes, base.DriveRes/2)
	}
	if math.Abs(s2.InCap-2*base.InCap) > 1e-12 || math.Abs(s2.Leakage-2*base.Leakage) > 1e-12 {
		t.Error("cap/leakage scaling wrong")
	}
	// Sub-unity sizes clamp to 1.
	s0 := l.Scaled(Inv, 0.5)
	if s0.Area != base.Area {
		t.Errorf("size<1 not clamped: area %g", s0.Area)
	}
}

func TestWireDelayMonotone(t *testing.T) {
	l := Default7nm()
	d1 := l.WireDelayPS(1.5, 10, 2)
	d2 := l.WireDelayPS(1.5, 100, 2)
	d3 := l.WireDelayPS(1.5, 100, 20)
	d4 := l.WireDelayPS(0.5, 100, 20)
	if !(d2 > d1) {
		t.Errorf("longer wire not slower: %g vs %g", d2, d1)
	}
	if !(d3 > d2) {
		t.Errorf("bigger load not slower: %g vs %g", d3, d2)
	}
	if !(d4 < d3) {
		t.Errorf("stronger driver not faster: %g vs %g", d4, d3)
	}
}

func TestWireDelayPlausibleMagnitude(t *testing.T) {
	l := Default7nm()
	// A 50 µm net with a 5 fF load driven at 1.5 kΩ should cost tens of ps,
	// not ns or fs — the magnitude the 7nm-class MAC timing relies on.
	d := l.WireDelayPS(1.5, 50, 5)
	if d < 5 || d > 200 {
		t.Errorf("50µm wire delay = %g ps, want O(10ps)", d)
	}
}

func TestSetupClkQPositive(t *testing.T) {
	l := Default7nm()
	if l.SetupTime <= 0 || l.ClkToQ <= 0 || l.Vdd <= 0 || l.RowHeight <= 0 {
		t.Errorf("library technology constants must be positive: %+v", l)
	}
}
