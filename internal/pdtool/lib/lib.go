// Package lib models a 7nm-class standard-cell library: the per-cell area,
// capacitance, drive, delay, and power coefficients that the placement,
// timing and power engines of the flow simulator consume.
//
// Absolute values are calibrated to plausible 7nm magnitudes (input caps of
// a femtofarad, stage delays of a few picoseconds, leakage of nanowatts) so
// that the MAC designs close timing in the 0.7–1.1 ns periods the paper's
// freq parameter implies.
package lib

import "fmt"

// Kind enumerates the cell functions the netlist generator uses.
type Kind int

const (
	Inv Kind = iota
	Buf
	Nand2
	Nor2
	And2
	Or2
	Xor2
	Aoi22
	HalfAdder
	FullAdder
	DFF
	ClkBuf
	numKinds
)

func (k Kind) String() string {
	names := [...]string{"INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "AOI22", "HA", "FA", "DFF", "CLKBUF"}
	if int(k) < 0 || int(k) >= len(names) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return names[k]
}

// Cell holds the characterisation of one library cell at drive strength X1.
// Larger drive strengths are derived by Scaled.
type Cell struct {
	Kind Kind
	// Area in µm².
	Area float64
	// InCap is the input pin capacitance in fF (per pin).
	InCap float64
	// DriveRes is the output drive resistance in kΩ.
	DriveRes float64
	// Intrinsic is the load-independent delay in ps.
	Intrinsic float64
	// Leakage in nW.
	Leakage float64
	// InternalEnergy in fJ per output switching event.
	InternalEnergy float64
	// NumInputs is the number of signal input pins.
	NumInputs int
	// IsSequential marks registers (clock pin in addition to D).
	IsSequential bool
}

// Library is an immutable set of cells indexed by Kind, plus the wire
// technology parameters of the metal stack.
type Library struct {
	cells [numKinds]Cell

	// WireResPerUm is wire resistance in Ω/µm (mid-stack metal).
	WireResPerUm float64
	// WireCapPerUm is wire capacitance in fF/µm.
	WireCapPerUm float64
	// Vdd is the supply voltage in volts.
	Vdd float64
	// SetupTime is the register setup time in ps.
	SetupTime float64
	// ClkToQ is the register clock-to-output delay in ps.
	ClkToQ float64
	// RowHeight is the placement row height in µm.
	RowHeight float64
}

// Default7nm returns the library used by all benchmarks.
func Default7nm() *Library {
	l := &Library{
		WireResPerUm: 16.0, // Ω/µm
		WireCapPerUm: 0.20, // fF/µm
		Vdd:          0.70,
		SetupTime:    12,
		ClkToQ:       25,
		RowHeight:    0.27,
	}
	put := func(c Cell) { l.cells[c.Kind] = c }
	put(Cell{Kind: Inv, Area: 0.065, InCap: 0.7, DriveRes: 3.22, Intrinsic: 3.0, Leakage: 1.2, InternalEnergy: 0.08, NumInputs: 1})
	put(Cell{Kind: Buf, Area: 0.098, InCap: 0.8, DriveRes: 2.53, Intrinsic: 6.5, Leakage: 1.9, InternalEnergy: 0.14, NumInputs: 1})
	put(Cell{Kind: Nand2, Area: 0.085, InCap: 0.9, DriveRes: 3.68, Intrinsic: 4.2, Leakage: 1.6, InternalEnergy: 0.11, NumInputs: 2})
	put(Cell{Kind: Nor2, Area: 0.085, InCap: 0.9, DriveRes: 4.37, Intrinsic: 4.8, Leakage: 1.6, InternalEnergy: 0.11, NumInputs: 2})
	put(Cell{Kind: And2, Area: 0.111, InCap: 0.9, DriveRes: 3.45, Intrinsic: 6.8, Leakage: 2.1, InternalEnergy: 0.15, NumInputs: 2})
	put(Cell{Kind: Or2, Area: 0.111, InCap: 0.9, DriveRes: 3.68, Intrinsic: 7.1, Leakage: 2.1, InternalEnergy: 0.15, NumInputs: 2})
	put(Cell{Kind: Xor2, Area: 0.163, InCap: 1.3, DriveRes: 4.14, Intrinsic: 8.9, Leakage: 3.0, InternalEnergy: 0.24, NumInputs: 2})
	put(Cell{Kind: Aoi22, Area: 0.137, InCap: 1.0, DriveRes: 4.60, Intrinsic: 6.1, Leakage: 2.4, InternalEnergy: 0.18, NumInputs: 4})
	put(Cell{Kind: HalfAdder, Area: 0.241, InCap: 1.4, DriveRes: 4.14, Intrinsic: 10.5, Leakage: 4.2, InternalEnergy: 0.33, NumInputs: 2})
	put(Cell{Kind: FullAdder, Area: 0.384, InCap: 1.6, DriveRes: 4.37, Intrinsic: 14.0, Leakage: 6.8, InternalEnergy: 0.52, NumInputs: 3})
	put(Cell{Kind: DFF, Area: 0.462, InCap: 1.1, DriveRes: 2.99, Intrinsic: 0, Leakage: 8.5, InternalEnergy: 0.61, NumInputs: 1, IsSequential: true})
	put(Cell{Kind: ClkBuf, Area: 0.130, InCap: 1.0, DriveRes: 2.07, Intrinsic: 7.0, Leakage: 2.6, InternalEnergy: 0.19, NumInputs: 1})
	return l
}

// Cell returns the characterisation of kind k.
func (l *Library) Cell(k Kind) Cell {
	if int(k) < 0 || int(k) >= int(numKinds) {
		panic(fmt.Sprintf("lib: unknown cell kind %d", int(k)))
	}
	return l.cells[k]
}

// Kinds returns every kind defined by the library.
func (l *Library) Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Scaled returns the electrical view of cell k at drive strength size
// (size ≥ 1): drive resistance shrinks as 1/size while area, capacitance,
// leakage and internal energy grow linearly. This is the knob the timing
// optimiser turns when it upsizes critical cells.
func (l *Library) Scaled(k Kind, size float64) Cell {
	if size < 1 {
		size = 1
	}
	c := l.Cell(k)
	c.Area *= size
	c.InCap *= size
	c.DriveRes /= size
	c.Leakage *= size
	c.InternalEnergy *= size
	return c
}

// WireDelayPS returns the Elmore delay in ps of a wire of length µm driving
// load fF with driver resistance kΩ: R_drv·(C_wire + C_load) + R_wire·
// (C_wire/2 + C_load). Units: kΩ·fF = ps.
func (l *Library) WireDelayPS(driveResKOhm, lengthUm, loadFF float64) float64 {
	cw := l.WireCapPerUm * lengthUm
	rw := l.WireResPerUm * lengthUm / 1000.0 // kΩ
	return driveResKOhm*(cw+loadFF) + rw*(cw/2+loadFF)
}
