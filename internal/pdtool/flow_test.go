package pdtool

import (
	"math/rand"
	"testing"

	"ppatuner/internal/param"
	"ppatuner/internal/sample"
)

func midConfig(s *param.Space) param.Config {
	u := make([]float64, s.Dim())
	for i := range u {
		u[i] = 0.5
	}
	return s.MustConfig(u)
}

func TestRunSmallMAC(t *testing.T) {
	q, rep, err := Run(SmallMAC(), midConfig(param.Target1Space()))
	if err != nil {
		t.Fatal(err)
	}
	if q.PowerMW <= 0 || q.DelayNS <= 0 || q.AreaUm2 <= 0 {
		t.Fatalf("degenerate QoR: %+v", q)
	}
	// 7nm-class plausibility windows.
	if q.DelayNS < 0.3 || q.DelayNS > 5 {
		t.Errorf("delay %g ns implausible", q.DelayNS)
	}
	if q.PowerMW < 0.05 || q.PowerMW > 50 {
		t.Errorf("power %g mW implausible", q.PowerMW)
	}
	if rep.Timing == nil || rep.Place == nil || rep.Route == nil || rep.CTS == nil || rep.DRV == nil {
		t.Error("report missing stages")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := midConfig(param.Target1Space())
	a, _, err := Run(SmallMAC(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(SmallMAC(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("flow not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunDoesNotMutateDesign(t *testing.T) {
	d := SmallMAC()
	before := d.NL.TotalArea(d.Lib)
	// An aggressive config that forces upsizing.
	s := param.Target1Space()
	u := make([]float64, s.Dim())
	for i := range u {
		u[i] = 0.5
	}
	u[s.Index("freq")] = 1 // 1300 MHz
	if _, _, err := Run(d, s.MustConfig(u)); err != nil {
		t.Fatal(err)
	}
	if after := d.NL.TotalArea(d.Lib); after != before {
		t.Fatalf("Run mutated the shared design: area %g -> %g", before, after)
	}
}

func TestFrequencyTradeoff(t *testing.T) {
	s := param.Target1Space()
	u := make([]float64, s.Dim())
	for i := range u {
		u[i] = 0.5
	}
	lo := append([]float64(nil), u...)
	lo[s.Index("freq")] = 0 // 1000 MHz
	hi := append([]float64(nil), u...)
	hi[s.Index("freq")] = 1 // 1300 MHz
	qLo, _, err := Run(SmallMAC(), s.MustConfig(lo))
	if err != nil {
		t.Fatal(err)
	}
	qHi, _, err := Run(SmallMAC(), s.MustConfig(hi))
	if err != nil {
		t.Fatal(err)
	}
	if !(qHi.PowerMW > qLo.PowerMW) {
		t.Errorf("higher freq power %g !> lower %g", qHi.PowerMW, qLo.PowerMW)
	}
	if !(qHi.DelayNS < qLo.DelayNS) {
		t.Errorf("higher freq delay %g !< lower %g", qHi.DelayNS, qLo.DelayNS)
	}
}

func TestUtilizationAreaTradeoff(t *testing.T) {
	s := param.Target1Space()
	u := make([]float64, s.Dim())
	for i := range u {
		u[i] = 0.5
	}
	lo := append([]float64(nil), u...)
	lo[s.Index("max_Density")] = 0
	hi := append([]float64(nil), u...)
	hi[s.Index("max_Density")] = 1
	qLo, _, err := Run(SmallMAC(), s.MustConfig(lo))
	if err != nil {
		t.Fatal(err)
	}
	qHi, _, err := Run(SmallMAC(), s.MustConfig(hi))
	if err != nil {
		t.Fatal(err)
	}
	if !(qHi.AreaUm2 < qLo.AreaUm2) {
		t.Errorf("high utilisation area %g !< low %g", qHi.AreaUm2, qLo.AreaUm2)
	}
}

func TestLargeDesignBiggerSlowerHungrier(t *testing.T) {
	qS, _, err := Run(SmallMAC(), midConfig(param.Source2Space()))
	if err != nil {
		t.Fatal(err)
	}
	qL, _, err := Run(LargeMAC(), midConfig(param.Target2Space()))
	if err != nil {
		t.Fatal(err)
	}
	if !(qL.AreaUm2 > qS.AreaUm2 && qL.PowerMW > qS.PowerMW && qL.DelayNS > qS.DelayNS) {
		t.Errorf("large design not dominated in scale: small %+v large %+v", qS, qL)
	}
}

func TestQoRVectorAndMetric(t *testing.T) {
	q := QoR{PowerMW: 1, DelayNS: 2, AreaUm2: 3}
	v := q.Vector([]Metric{Area, Power})
	if v[0] != 3 || v[1] != 1 {
		t.Errorf("Vector = %v", v)
	}
	if Power.String() != "power" || Delay.String() != "delay" || Area.String() != "area" {
		t.Error("metric names wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Get(bad metric) did not panic")
		}
	}()
	q.Get(Metric(9))
}

// TestQoRVariationAcrossSpace: the response surface must have real spread in
// every metric — a flat surface would make the tuning problem vacuous.
func TestQoRVariationAcrossSpace(t *testing.T) {
	s := param.Target2Space()
	rng := rand.New(rand.NewSource(1))
	cfgs := sample.LHSConfigs(rng, s, 16)
	var qs []QoR
	for _, c := range cfgs {
		q, _, err := Run(LargeMAC(), c)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	spread := func(get func(QoR) float64) float64 {
		lo, hi := get(qs[0]), get(qs[0])
		for _, q := range qs {
			v := get(q)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return (hi - lo) / lo
	}
	if s := spread(func(q QoR) float64 { return q.PowerMW }); s < 0.05 {
		t.Errorf("power spread %.3f too flat", s)
	}
	if s := spread(func(q QoR) float64 { return q.DelayNS }); s < 0.05 {
		t.Errorf("delay spread %.3f too flat", s)
	}
	if s := spread(func(q QoR) float64 { return q.AreaUm2 }); s < 0.05 {
		t.Errorf("area spread %.3f too flat", s)
	}
}

func TestRunRejectsBadEffortString(t *testing.T) {
	// Build a space with an out-of-ladder cong_effort value to exercise the
	// error path.
	s := param.MustSpace("bad", []param.Param{
		{Name: "cong_effort", Kind: param.Enum, Levels: []string{"NOPE", "ALSO_NOPE"}},
	})
	if _, _, err := Run(SmallMAC(), s.MustConfig([]float64{0})); err == nil {
		t.Error("invalid congestion effort accepted")
	}
}
