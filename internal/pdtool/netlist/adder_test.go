package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppatuner/internal/pdtool/lib"
)

// evalNets computes the boolean value of every net given primary-input
// values, for purely combinational designs built from the gate semantics
// the adder uses. It is a test aid — the flow itself never simulates logic.
func evalNets(t *testing.T, nl *Netlist, piVals []bool) []bool {
	t.Helper()
	vals := make([]bool, len(nl.Nets))
	set := make([]bool, len(nl.Nets))
	for i, pi := range nl.PINets {
		vals[pi] = piVals[i]
		set[pi] = true
	}
	order, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range order {
		c := nl.Cells[ci]
		in := func(k int) bool {
			if !set[c.Inputs[k]] {
				t.Fatalf("cell %d reads unset net %d", ci, c.Inputs[k])
			}
			return vals[c.Inputs[k]]
		}
		var out bool
		switch c.Kind {
		case lib.Inv:
			out = !in(0)
		case lib.Buf:
			out = in(0)
		case lib.And2:
			out = in(0) && in(1)
		case lib.Or2:
			out = in(0) || in(1)
		case lib.Nand2:
			out = !(in(0) && in(1))
		case lib.Nor2:
			out = !(in(0) || in(1))
		case lib.Xor2:
			out = in(0) != in(1)
		default:
			t.Fatalf("evalNets: unsupported kind %v", c.Kind)
		}
		if c.Out >= 0 {
			vals[c.Out] = out
			set[c.Out] = true
		}
	}
	return vals
}

// buildAdder constructs a width-bit prefix adder fed directly by PIs.
func buildAdder(t *testing.T, width int) (*Netlist, []int, int) {
	t.Helper()
	b := NewBuilder("adder")
	xs := make([]int, width)
	ys := make([]int, width)
	for i := 0; i < width; i++ {
		xs[i] = b.PI()
	}
	for i := 0; i < width; i++ {
		ys[i] = b.PI()
	}
	sum, cout := PrefixAdder(b, xs, ys)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl, sum, cout
}

// TestPrefixAdderAddsExhaustive: every input pair of a 4-bit adder.
func TestPrefixAdderAddsExhaustive(t *testing.T) {
	const width = 4
	nl, sumNets, coutNet := buildAdder(t, width)
	for a := 0; a < 1<<width; a++ {
		for bb := 0; bb < 1<<width; bb++ {
			pi := make([]bool, 2*width)
			for i := 0; i < width; i++ {
				pi[i] = a>>i&1 == 1
				pi[width+i] = bb>>i&1 == 1
			}
			vals := evalNets(t, nl, pi)
			got := 0
			for i, n := range sumNets {
				if vals[n] {
					got |= 1 << i
				}
			}
			if vals[coutNet] {
				got |= 1 << width
			}
			if got != a+bb {
				t.Fatalf("%d + %d = %d, adder says %d", a, bb, a+bb, got)
			}
		}
	}
}

// Property: random operands on a 16-bit adder.
func TestQuickPrefixAdder16(t *testing.T) {
	const width = 16
	nl, sumNets, coutNet := buildAdder(t, width)
	f := func(a, bb uint16) bool {
		pi := make([]bool, 2*width)
		for i := 0; i < width; i++ {
			pi[i] = a>>i&1 == 1
			pi[width+i] = bb>>i&1 == 1
		}
		vals := evalNets(t, nl, pi)
		got := uint32(0)
		for i, n := range sumNets {
			if vals[n] {
				got |= 1 << i
			}
		}
		if vals[coutNet] {
			got |= 1 << width
		}
		return got == uint32(a)+uint32(bb)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPrefixAdderDepthLogarithmic: the whole point of the Kogge–Stone
// structure is O(log n) depth; a 32-bit adder must stay well under the
// ~35 levels a ripple chain would need.
func TestPrefixAdderDepthLogarithmic(t *testing.T) {
	nl, _, _ := buildAdder(t, 32)
	lvl, err := nl.Levels()
	if err != nil {
		t.Fatal(err)
	}
	maxL := 0
	for _, v := range lvl {
		if v > maxL {
			maxL = v
		}
	}
	if maxL > 14 {
		t.Errorf("32-bit adder depth %d, want logarithmic (<= 14)", maxL)
	}
}

func TestPrefixAdderWidthMismatchPanics(t *testing.T) {
	b := NewBuilder("bad")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched operand widths did not panic")
		}
	}()
	PrefixAdder(b, []int{b.PI()}, []int{b.PI(), b.PI()})
}
