package netlist

import "ppatuner/internal/pdtool/lib"

// PrefixAdder appends a Kogge–Stone parallel-prefix adder over the equal-
// width bit vectors xs and ys to the builder, returning the sum bits and the
// carry-out net. Depth is O(log n) gate levels, which is what lets the MAC
// designs close timing at the ~1 GHz targets of the paper's freq parameter
// (a ripple adder would be 3–4× too slow at the benchmark widths).
func PrefixAdder(b *Builder, xs, ys []int) (sum []int, cout int) {
	n := len(xs)
	if len(ys) != n {
		panic("netlist: PrefixAdder operand width mismatch")
	}
	// Bitwise propagate / generate.
	p := make([]int, n)
	g := make([]int, n)
	for i := 0; i < n; i++ {
		p[i] = b.Add(lib.Xor2, xs[i], ys[i])
		g[i] = b.Add(lib.And2, xs[i], ys[i])
	}
	// Kogge–Stone prefix: after the last level, G[i] is the carry out of
	// bit i.
	gPre := append([]int(nil), g...)
	pPre := append([]int(nil), p...)
	for dist := 1; dist < n; dist <<= 1 {
		gNext := append([]int(nil), gPre...)
		pNext := append([]int(nil), pPre...)
		for i := dist; i < n; i++ {
			// G' = G_i OR (P_i AND G_{i-dist})
			t := b.Add(lib.And2, pPre[i], gPre[i-dist])
			gNext[i] = b.Add(lib.Or2, gPre[i], t)
			// P' = P_i AND P_{i-dist}
			pNext[i] = b.Add(lib.And2, pPre[i], pPre[i-dist])
		}
		gPre, pPre = gNext, pNext
	}
	// Sum bits: s_i = p_i XOR carry_{i-1}, carry_{i-1} = G[i-1].
	sum = make([]int, n)
	sum[0] = p[0]
	for i := 1; i < n; i++ {
		sum[i] = b.Add(lib.Xor2, p[i], gPre[i-1])
	}
	return sum, gPre[n-1]
}
