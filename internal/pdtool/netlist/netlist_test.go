package netlist

import (
	"testing"

	"ppatuner/internal/pdtool/lib"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("tiny")
	a := b.PI()
	c := b.PI()
	and := b.Add(lib.And2, a, c)
	q := b.Add(lib.DFF, and)
	b.PO(q)
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Cells) != 2 || len(nl.Nets) != 4 {
		t.Errorf("cells=%d nets=%d, want 2, 4", len(nl.Cells), len(nl.Nets))
	}
	if len(nl.PINets) != 2 || len(nl.PONets) != 1 {
		t.Errorf("PIs=%d POs=%d, want 2, 1", len(nl.PINets), len(nl.PONets))
	}
	// The AND cell must appear as a sink of both PI nets.
	for _, pi := range nl.PINets {
		if len(nl.Nets[pi].Sinks) != 1 || nl.Nets[pi].Sinks[0] != 0 {
			t.Errorf("PI net %d sinks = %v", pi, nl.Nets[pi].Sinks)
		}
	}
}

func TestDeferredFeedbackLoop(t *testing.T) {
	// acc <= acc XOR in : a legal sequential loop.
	b := NewBuilder("loop")
	in := b.PI()
	ff, q := b.AddDeferred(lib.DFF)
	x := b.Add(lib.Xor2, in, q)
	b.Connect(ff, x)
	b.PO(q)
	nl, err := b.Build()
	if err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
	lvl, err := nl.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lvl[ff] != 0 {
		t.Errorf("register level = %d, want 0", lvl[ff])
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	b := NewBuilder("cyc")
	in := b.PI()
	c1, o1 := b.AddDeferred(lib.Nand2)
	o2 := b.Add(lib.Nand2, o1, in)
	b.Connect(c1, o2)
	b.Connect(c1, in)
	if _, err := b.Build(); err == nil {
		t.Fatal("combinational cycle accepted")
	}
}

func TestLevels(t *testing.T) {
	b := NewBuilder("lv")
	a := b.PI()
	n1 := b.Add(lib.Inv, a)       // level 1
	n2 := b.Add(lib.Inv, n1)      // level 2
	n3 := b.Add(lib.And2, n1, n2) // level 3
	_ = n3
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := nl.Levels()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, w := range want {
		if lvl[i] != w {
			t.Errorf("cell %d level = %d, want %d", i, lvl[i], w)
		}
	}
}

func TestTopoOrderRespectsLevels(t *testing.T) {
	nl, err := MAC("m", 6)
	if err != nil {
		t.Fatal(err)
	}
	order, err := nl.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(nl.Cells) {
		t.Fatalf("order has %d cells, want %d", len(order), len(nl.Cells))
	}
	lvl, _ := nl.Levels()
	pos := make([]int, len(order))
	for i, ci := range order {
		pos[ci] = i
	}
	for ci, c := range nl.Cells {
		if c.Kind == lib.DFF {
			continue
		}
		for _, in := range c.Inputs {
			d := nl.Nets[in].Driver
			if d >= 0 && lvl[d] < lvl[ci] && pos[d] > pos[ci] {
				t.Fatalf("cell %d (level %d) precedes its fan-in %d (level %d)", ci, lvl[ci], d, lvl[d])
			}
		}
	}
}

func TestMACStructure(t *testing.T) {
	for _, width := range []int{4, 8, 16} {
		nl, err := MAC("mac", width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		s := nl.Stats()
		// 2w input FFs + (2w+4) accumulator FFs.
		wantRegs := 2*width + 2*width + 4
		if s.Registers != wantRegs {
			t.Errorf("width %d: registers = %d, want %d", width, s.Registers, wantRegs)
		}
		if s.ByKind[lib.And2] < width*width {
			t.Errorf("width %d: AND2 count %d < %d partial products", width, s.ByKind[lib.And2], width*width)
		}
		if s.ByKind[lib.FullAdder] == 0 {
			t.Errorf("width %d: no full adders in reduction tree", width)
		}
		if s.PIs != 2*width || s.POs != 2*width+4 {
			t.Errorf("width %d: PIs=%d POs=%d, want %d, %d", width, s.PIs, s.POs, 2*width, 2*width+4)
		}
		if s.MaxLevel < width/2 {
			t.Errorf("width %d: max logic depth %d suspiciously shallow", width, s.MaxLevel)
		}
	}
}

func TestMACSizesScale(t *testing.T) {
	small, err := MAC("small", 24)
	if err != nil {
		t.Fatal(err)
	}
	large, err := MAC("large", 44)
	if err != nil {
		t.Fatal(err)
	}
	ns, nL := len(small.Cells), len(large.Cells)
	ratio := float64(nL) / float64(ns)
	if ns < 1500 || ns > 4000 {
		t.Errorf("small MAC has %d cells, want ~2k", ns)
	}
	if nL < 5000 || nL > 12000 {
		t.Errorf("large MAC has %d cells, want ~7k", nL)
	}
	if ratio < 2.5 || ratio > 4.5 {
		t.Errorf("size ratio = %.2f, want ≈3.3 like the paper's 20k/67k", ratio)
	}
}

func TestMACWidthTooSmall(t *testing.T) {
	if _, err := MAC("bad", 1); err == nil {
		t.Fatal("width 1 accepted")
	}
}

func TestTotalArea(t *testing.T) {
	nl, err := MAC("m", 4)
	if err != nil {
		t.Fatal(err)
	}
	l := lib.Default7nm()
	a1 := nl.TotalArea(l)
	if a1 <= 0 {
		t.Fatalf("area = %g", a1)
	}
	// Upsizing one cell increases total area.
	nl.Cells[0].Size = 4
	if a2 := nl.TotalArea(l); !(a2 > a1) {
		t.Errorf("area after upsizing %g !> %g", a2, a1)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	nl, err := MAC("m", 4)
	if err != nil {
		t.Fatal(err)
	}
	nl.Nets[nl.Cells[0].Out].Driver = 1 // wrong driver
	if err := nl.Validate(); err == nil {
		t.Fatal("corrupted driver accepted")
	}
}

func TestRegisters(t *testing.T) {
	nl, err := MAC("m", 4)
	if err != nil {
		t.Fatal(err)
	}
	regs := nl.Registers()
	if len(regs) != nl.Stats().Registers {
		t.Errorf("Registers() returned %d, stats say %d", len(regs), nl.Stats().Registers)
	}
	for _, r := range regs {
		if nl.Cells[r].Kind != lib.DFF {
			t.Errorf("cell %d in Registers() is %v", r, nl.Cells[r].Kind)
		}
	}
}
