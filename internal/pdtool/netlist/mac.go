package netlist

import (
	"fmt"

	"ppatuner/internal/pdtool/lib"
)

// MAC generates a width×width multiply-accumulate design:
//
//	acc <= acc + a*b
//
// with registered operand inputs, an AND-array partial-product generator, a
// Dadda-style carry-save reduction tree, Kogge–Stone carry-propagate adders,
// and an accumulator register bank. It is the synthetic stand-in for the
// paper's industrial MAC benchmarks; width 24 gives the "small" (~3.5k cell)
// design and width 44 the "large" (~9.5k cell) design, preserving the ≈3×
// size ratio of the paper's 20k/67k-cell blocks.
func MAC(name string, width int) (*Netlist, error) {
	if width < 2 {
		return nil, fmt.Errorf("netlist: MAC width %d < 2", width)
	}
	b := NewBuilder(name)

	// Registered operands.
	aBits := make([]int, width)
	bBits := make([]int, width)
	for i := 0; i < width; i++ {
		aBits[i] = b.Add(lib.DFF, b.PI())
		bBits[i] = b.Add(lib.DFF, b.PI())
	}
	// Shared structural constant-0 net (x AND NOT x).
	zero := b.Add(lib.And2, aBits[0], b.Add(lib.Inv, aBits[0]))

	// Partial products, bucketed by output column weight.
	prodW := 2 * width
	cols := make([][]int, prodW)
	for i := 0; i < width; i++ {
		for j := 0; j < width; j++ {
			pp := b.Add(lib.And2, aBits[i], bBits[j])
			cols[i+j] = append(cols[i+j], pp)
		}
	}

	// Wallace-style carry-save reduction, staged so each round consumes only
	// bits produced by earlier rounds: every stage compresses each column's
	// triples with full adders (pairs with half adders), so the tree depth
	// is O(log width) full-adder levels rather than a ripple chain.
	for {
		maxH := 0
		for _, col := range cols {
			if len(col) > maxH {
				maxH = len(col)
			}
		}
		if maxH <= 2 {
			break
		}
		next := make([][]int, prodW)
		for c := 0; c < prodW; c++ {
			bits := cols[c]
			for len(bits) >= 3 {
				x, y, z := bits[0], bits[1], bits[2]
				bits = bits[3:]
				sum := b.Add(lib.FullAdder, x, y, z)
				carry := b.Add(lib.Aoi22, x, y, z, z) // majority-class gate
				next[c] = append(next[c], sum)
				if c+1 < prodW {
					next[c+1] = append(next[c+1], carry)
				}
			}
			if len(bits) == 2 && len(cols[c]) >= 3 {
				// Column was tall: keep compressing the leftover pair.
				sum := b.Add(lib.HalfAdder, bits[0], bits[1])
				carry := b.Add(lib.And2, bits[0], bits[1])
				next[c] = append(next[c], sum)
				if c+1 < prodW {
					next[c+1] = append(next[c+1], carry)
				}
				bits = nil
			}
			next[c] = append(next[c], bits...)
		}
		cols = next
	}

	// Final carry-propagate add of the two remaining rows.
	rowX := make([]int, prodW)
	rowY := make([]int, prodW)
	for c := 0; c < prodW; c++ {
		rowX[c], rowY[c] = zero, zero
		if len(cols[c]) > 0 {
			rowX[c] = cols[c][0]
		}
		if len(cols[c]) > 1 {
			rowY[c] = cols[c][1]
		}
	}
	product, _ := PrefixAdder(b, rowX, rowY)

	// Accumulator: acc_next = acc + product, 4 guard bits against overflow.
	// The registers are created up front (deferred inputs) so the adder can
	// read their Q nets — a genuine sequential feedback loop.
	accW := prodW + 4
	accQ := make([]int, accW)
	accFF := make([]int, accW)
	for i := 0; i < accW; i++ {
		accFF[i], accQ[i] = b.AddDeferred(lib.DFF)
	}
	prodPad := make([]int, accW)
	for i := 0; i < accW; i++ {
		prodPad[i] = zero
		if i < prodW {
			prodPad[i] = product[i]
		}
	}
	accD, _ := PrefixAdder(b, accQ, prodPad)
	for i := 0; i < accW; i++ {
		b.Connect(accFF[i], accD[i])
		b.PO(accQ[i])
	}

	return b.Build()
}
