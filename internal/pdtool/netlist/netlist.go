// Package netlist provides the gate-level circuit model consumed by the
// flow simulator — cells, single-driver nets, primary I/O — plus generators
// for the multiply-accumulate (MAC) designs that stand in for the paper's
// industrial benchmarks.
package netlist

import (
	"fmt"

	"ppatuner/internal/pdtool/lib"
)

// Cell is one placed instance. Size is the drive-strength multiplier the
// timing optimiser may raise above 1.
type Cell struct {
	Kind   lib.Kind
	Size   float64
	Inputs []int // net IDs feeding the input pins (D pin for DFFs)
	Out    int   // net ID driven by the output pin, -1 if none
}

// Net connects one driver to its sinks. Driver is a cell ID, or -1 when the
// net is driven by a primary input.
type Net struct {
	Driver int
	Sinks  []int // sink cell IDs (one entry per sink pin)
}

// Netlist is a combinationally acyclic gate-level circuit.
type Netlist struct {
	Name  string
	Cells []Cell
	Nets  []Net
	// PINets are nets driven by primary inputs.
	PINets []int
	// PONets are nets observed by primary outputs.
	PONets []int
}

// Builder incrementally constructs a Netlist.
type Builder struct {
	nl Netlist
}

// NewBuilder starts an empty design.
func NewBuilder(name string) *Builder {
	return &Builder{nl: Netlist{Name: name}}
}

// PI adds a primary input and returns its net ID.
func (b *Builder) PI() int {
	id := len(b.nl.Nets)
	b.nl.Nets = append(b.nl.Nets, Net{Driver: -1})
	b.nl.PINets = append(b.nl.PINets, id)
	return id
}

// PO marks net as a primary output.
func (b *Builder) PO(net int) { b.nl.PONets = append(b.nl.PONets, net) }

// Add instantiates a cell of the given kind reading the input nets, and
// returns the cell's output net ID.
func (b *Builder) Add(kind lib.Kind, inputs ...int) int {
	cellID := len(b.nl.Cells)
	outNet := len(b.nl.Nets)
	b.nl.Nets = append(b.nl.Nets, Net{Driver: cellID})
	b.nl.Cells = append(b.nl.Cells, Cell{Kind: kind, Size: 1, Inputs: append([]int(nil), inputs...), Out: outNet})
	for _, in := range inputs {
		b.nl.Nets[in].Sinks = append(b.nl.Nets[in].Sinks, cellID)
	}
	return outNet
}

// AddDeferred instantiates a cell whose inputs will be wired later with
// Connect (needed for register feedback loops). It returns the cell ID and
// its output net ID.
func (b *Builder) AddDeferred(kind lib.Kind) (cellID, outNet int) {
	cellID = len(b.nl.Cells)
	outNet = len(b.nl.Nets)
	b.nl.Nets = append(b.nl.Nets, Net{Driver: cellID})
	b.nl.Cells = append(b.nl.Cells, Cell{Kind: kind, Size: 1, Out: outNet})
	return cellID, outNet
}

// Connect appends net as the next input pin of cell cellID.
func (b *Builder) Connect(cellID, net int) {
	b.nl.Cells[cellID].Inputs = append(b.nl.Cells[cellID].Inputs, net)
	b.nl.Nets[net].Sinks = append(b.nl.Nets[net].Sinks, cellID)
}

// Build finalises and validates the netlist.
func (b *Builder) Build() (*Netlist, error) {
	nl := b.nl
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return &nl, nil
}

// Validate checks structural invariants: every net has a live driver or is a
// primary input, every referenced net exists, and the combinational graph is
// acyclic.
func (nl *Netlist) Validate() error {
	isPI := make(map[int]bool, len(nl.PINets))
	for _, n := range nl.PINets {
		isPI[n] = true
	}
	for id, net := range nl.Nets {
		if net.Driver == -1 {
			if !isPI[id] {
				return fmt.Errorf("netlist %s: net %d has no driver and is not a PI", nl.Name, id)
			}
			continue
		}
		if net.Driver < 0 || net.Driver >= len(nl.Cells) {
			return fmt.Errorf("netlist %s: net %d driver %d out of range", nl.Name, id, net.Driver)
		}
		if nl.Cells[net.Driver].Out != id {
			return fmt.Errorf("netlist %s: net %d driver cell %d drives net %d", nl.Name, id, net.Driver, nl.Cells[net.Driver].Out)
		}
	}
	for ci, c := range nl.Cells {
		for _, in := range c.Inputs {
			if in < 0 || in >= len(nl.Nets) {
				return fmt.Errorf("netlist %s: cell %d input net %d out of range", nl.Name, ci, in)
			}
		}
	}
	if _, err := nl.Levels(); err != nil {
		return err
	}
	return nil
}

// Levels returns the combinational depth of every cell — the number of
// combinational cells on the longest path from a launch point (primary input
// or register output) up to and including the cell — and errors on
// combinational cycles. Registers have level 0; their D fan-in terminates
// paths.
func (nl *Netlist) Levels() ([]int, error) {
	lvl := make([]int, len(nl.Cells))
	state := make([]int8, len(nl.Cells)) // 0 unvisited, 1 in progress, 2 done
	var visit func(int) error
	visit = func(ci int) error {
		switch state[ci] {
		case 1:
			return fmt.Errorf("netlist %s: combinational cycle through cell %d", nl.Name, ci)
		case 2:
			return nil
		}
		if isSequential(nl.Cells[ci].Kind) {
			state[ci] = 2
			lvl[ci] = 0
			return nil
		}
		state[ci] = 1
		max := 0
		for _, in := range nl.Cells[ci].Inputs {
			d := nl.Nets[in].Driver
			cand := 1 // launched at a PI or a register output
			if d != -1 {
				if err := visit(d); err != nil {
					return err
				}
				if !isSequential(nl.Cells[d].Kind) {
					cand = lvl[d] + 1
				}
			}
			if cand > max {
				max = cand
			}
		}
		lvl[ci] = max
		state[ci] = 2
		return nil
	}
	for ci := range nl.Cells {
		if err := visit(ci); err != nil {
			return nil, err
		}
	}
	return lvl, nil
}

func isSequential(k lib.Kind) bool { return k == lib.DFF }

// TopoOrder returns cell IDs in a combinationally consistent order
// (registers first, then increasing logic depth).
func (nl *Netlist) TopoOrder() ([]int, error) {
	lvl, err := nl.Levels()
	if err != nil {
		return nil, err
	}
	order := make([]int, len(nl.Cells))
	for i := range order {
		order[i] = i
	}
	// counting-sort by level for determinism and O(n)
	maxL := 0
	for _, l := range lvl {
		if l > maxL {
			maxL = l
		}
	}
	buckets := make([][]int, maxL+1)
	for _, ci := range order {
		buckets[lvl[ci]] = append(buckets[lvl[ci]], ci)
	}
	out := out0(len(order))
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out, nil
}

func out0(capacity int) []int { return make([]int, 0, capacity) }

// Registers returns the cell IDs of all sequential cells.
func (nl *Netlist) Registers() []int {
	var regs []int
	for ci, c := range nl.Cells {
		if isSequential(c.Kind) {
			regs = append(regs, ci)
		}
	}
	return regs
}

// Stats summarises the design.
type Stats struct {
	Cells     int
	Registers int
	Nets      int
	PIs, POs  int
	MaxLevel  int
	ByKind    map[lib.Kind]int
}

// Stats computes design statistics.
func (nl *Netlist) Stats() Stats {
	s := Stats{
		Cells:  len(nl.Cells),
		Nets:   len(nl.Nets),
		PIs:    len(nl.PINets),
		POs:    len(nl.PONets),
		ByKind: map[lib.Kind]int{},
	}
	for _, c := range nl.Cells {
		s.ByKind[c.Kind]++
		if isSequential(c.Kind) {
			s.Registers++
		}
	}
	if lvl, err := nl.Levels(); err == nil {
		for _, l := range lvl {
			if l > s.MaxLevel {
				s.MaxLevel = l
			}
		}
	}
	return s
}

// TotalArea returns the summed cell area (µm²) at current sizes.
func (nl *Netlist) TotalArea(l *lib.Library) float64 {
	var a float64
	for _, c := range nl.Cells {
		a += l.Scaled(c.Kind, c.Size).Area
	}
	return a
}
