// Package route models global routing over the placement bin grid: every
// net's bounding-box demand is smeared over the bins it crosses, congestion
// is demand over capacity, and congested regions force detours that lengthen
// nets. The tool's cong_effort parameter buys rip-up-and-reroute passes that
// spread demand out of hot bins at a small wirelength cost.
package route

import (
	"fmt"
	"math"

	"ppatuner/internal/pdtool/netlist"
	"ppatuner/internal/pdtool/place"
)

// Effort is the congestion-effort ladder of the tool.
type Effort int

const (
	EffortAuto Effort = iota
	EffortMedium
	EffortHigh
)

// ParseEffort maps the tool's enum strings.
func ParseEffort(s string) (Effort, error) {
	switch s {
	case "AUTO":
		return EffortAuto, nil
	case "MEDIUM":
		return EffortMedium, nil
	case "HIGH":
		return EffortHigh, nil
	default:
		return EffortAuto, fmt.Errorf("route: unknown congestion effort %q", s)
	}
}

// Options configures routing.
type Options struct {
	Effort Effort
	// TrackPitchUm is the routing track pitch (default 0.08 µm).
	TrackPitchUm float64
	// Layers is the number of routing layer pairs (default 5).
	Layers int
}

// Result is the routing outcome.
type Result struct {
	// Detour[i] is the routed-length multiplier (≥1) of net i.
	Detour []float64
	// TotalWirelenUm is the sum of routed net lengths.
	TotalWirelenUm float64
	// MaxCongestion is the peak bin demand/capacity ratio.
	MaxCongestion float64
	// AvgCongestion is the mean ratio over occupied bins.
	AvgCongestion float64
	// OverflowUm is the total demand above capacity.
	OverflowUm float64
}

// Route computes per-net detours and congestion statistics.
func Route(nl *netlist.Netlist, pl *place.Result, opt Options) (*Result, error) {
	if opt.TrackPitchUm <= 0 {
		opt.TrackPitchUm = 0.08
	}
	if opt.Layers <= 0 {
		opt.Layers = 5
	}
	bx, by := pl.BinsX, pl.BinsY
	if bx == 0 || by == 0 {
		return nil, fmt.Errorf("route: placement has no bin grid")
	}
	binW := pl.CoreW / float64(bx)
	binH := pl.CoreH / float64(by)
	// Capacity: routable wirelength per bin across all layers.
	capacity := float64(opt.Layers) * (binW/opt.TrackPitchUm*binH + binH/opt.TrackPitchUm*binW) / 2

	demand := make([]float64, bx*by)
	type span struct{ x0, x1, y0, y1 int }
	spans := make([]span, len(nl.Nets))
	addDemand := func(s span, length float64) {
		nb := float64((s.x1 - s.x0 + 1) * (s.y1 - s.y0 + 1))
		per := length / nb
		for y := s.y0; y <= s.y1; y++ {
			for x := s.x0; x <= s.x1; x++ {
				demand[y*bx+x] += per
			}
		}
	}
	binOf := func(xc, yc float64) (int, int) {
		x := int(xc / pl.CoreW * float64(bx))
		y := int(yc / pl.CoreH * float64(by))
		if x < 0 {
			x = 0
		} else if x >= bx {
			x = bx - 1
		}
		if y < 0 {
			y = 0
		} else if y >= by {
			y = by - 1
		}
		return x, y
	}
	lengths := make([]float64, len(nl.Nets))
	for id, net := range nl.Nets {
		if net.Driver < 0 || len(net.Sinks) == 0 {
			spans[id] = span{0, 0, 0, 0}
			continue
		}
		x0, y0 := binOf(pl.X[net.Driver], pl.Y[net.Driver])
		s := span{x0, x0, y0, y0}
		for _, snk := range net.Sinks {
			x, y := binOf(pl.X[snk], pl.Y[snk])
			s.x0 = min(s.x0, x)
			s.x1 = max(s.x1, x)
			s.y0 = min(s.y0, y)
			s.y1 = max(s.y1, y)
		}
		spans[id] = s
		lengths[id] = place.NetLength(nl, pl, id)
		addDemand(s, lengths[id])
	}

	// Rip-up passes: move demand from overfull bins to their least-loaded
	// neighbour; each unit moved pays a detour tax recorded per bin.
	passes := 1
	switch opt.Effort {
	case EffortMedium:
		passes = 2
	case EffortHigh:
		passes = 4
	}
	moved := make([]float64, bx*by)
	for p := 0; p < passes; p++ {
		changed := false
		for y := 0; y < by; y++ {
			for x := 0; x < bx; x++ {
				b := y*bx + x
				if demand[b] <= capacity {
					continue
				}
				excess := demand[b] - capacity
				// Find least-loaded neighbour.
				bestB, bestD := -1, math.Inf(1)
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					tx, ty := x+d[0], y+d[1]
					if tx < 0 || tx >= bx || ty < 0 || ty >= by {
						continue
					}
					tb := ty*bx + tx
					if demand[tb] < bestD {
						bestD = demand[tb]
						bestB = tb
					}
				}
				if bestB < 0 || bestD >= demand[b] {
					continue
				}
				shift := math.Min(excess, (demand[b]-bestD)/2)
				demand[b] -= shift
				demand[bestB] += shift
				moved[bestB] += shift
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	res := &Result{Detour: make([]float64, len(nl.Nets))}
	var congSum float64
	occupied := 0
	var overflow float64
	for b, d := range demand {
		ratio := d / capacity
		if d > 0 {
			congSum += ratio
			occupied++
		}
		if ratio > res.MaxCongestion {
			res.MaxCongestion = ratio
		}
		if d > capacity {
			overflow += d - capacity
		}
		_ = b
	}
	if occupied > 0 {
		res.AvgCongestion = congSum / float64(occupied)
	}
	res.OverflowUm = overflow

	// Per-net detour: average congestion over the net's span, plus the
	// rip-up tax of rerouted demand crossing its bins.
	for id := range nl.Nets {
		s := spans[id]
		if lengths[id] == 0 {
			res.Detour[id] = 1
			continue
		}
		var c, m float64
		nb := 0
		for y := s.y0; y <= s.y1; y++ {
			for x := s.x0; x <= s.x1; x++ {
				c += demand[y*bx+x] / capacity
				m += moved[y*bx+x] / capacity
				nb++
			}
		}
		c /= float64(nb)
		m /= float64(nb)
		detour := 1.0
		if c > 0.5 {
			// Congestion-driven scenic routing grows superlinearly: past
			// ~50% track usage, maze routers start taking long ways around,
			// and overflow regions blow up quickly.
			d := c - 0.5
			detour += 0.6*d + 2.2*d*d
		}
		detour += 0.15 * m // rip-up reroutes are slightly longer
		res.Detour[id] = detour
		res.TotalWirelenUm += lengths[id] * detour
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
