package route

import (
	"testing"

	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
	"ppatuner/internal/pdtool/place"
)

func placed(t *testing.T, util float64) (*netlist.Netlist, *place.Result) {
	t.Helper()
	nl, err := netlist.MAC("m", 10)
	if err != nil {
		t.Fatal(err)
	}
	l := lib.Default7nm()
	pl, err := place.Place(nl, l, place.Options{TargetUtil: util, MaxBinDensity: 0.95, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	return nl, pl
}

func TestRouteBasics(t *testing.T) {
	nl, pl := placed(t, 0.7)
	res, err := Route(nl, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detour) != len(nl.Nets) {
		t.Fatalf("detour count %d, nets %d", len(res.Detour), len(nl.Nets))
	}
	for id, d := range res.Detour {
		if d < 1 {
			t.Fatalf("net %d detour %g < 1", id, d)
		}
	}
	if res.TotalWirelenUm < pl.HPWL {
		t.Errorf("routed wirelength %g < HPWL %g", res.TotalWirelenUm, pl.HPWL)
	}
	if res.MaxCongestion <= 0 || res.AvgCongestion <= 0 {
		t.Error("congestion statistics missing")
	}
}

func TestRouteDeterministic(t *testing.T) {
	nl, pl := placed(t, 0.7)
	a, err := Route(nl, pl, Options{Effort: EffortHigh})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(nl, pl, Options{Effort: EffortHigh})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalWirelenUm != b.TotalWirelenUm || a.MaxCongestion != b.MaxCongestion {
		t.Error("routing not deterministic")
	}
}

func TestRouteDensityDrivesCongestion(t *testing.T) {
	nlD, plD := placed(t, 0.95)
	nlS, plS := placed(t, 0.45)
	dense, err := Route(nlD, plD, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Route(nlS, plS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(dense.MaxCongestion > sparse.MaxCongestion) {
		t.Errorf("dense max congestion %g !> sparse %g", dense.MaxCongestion, sparse.MaxCongestion)
	}
}

func TestRouteEffortReducesOverflow(t *testing.T) {
	nl, pl := placed(t, 0.95)
	// Shrink capacity via a coarse track pitch to force overflow.
	low, err := Route(nl, pl, Options{Effort: EffortAuto, TrackPitchUm: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Route(nl, pl, Options{Effort: EffortHigh, TrackPitchUm: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if low.OverflowUm == 0 {
		t.Skip("no overflow generated; cannot compare efforts")
	}
	if !(high.OverflowUm <= low.OverflowUm) {
		t.Errorf("high effort overflow %g > auto %g", high.OverflowUm, low.OverflowUm)
	}
}

func TestParseEffort(t *testing.T) {
	for s, want := range map[string]Effort{"AUTO": EffortAuto, "MEDIUM": EffortMedium, "HIGH": EffortHigh} {
		got, err := ParseEffort(s)
		if err != nil || got != want {
			t.Errorf("ParseEffort(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseEffort("TURBO"); err == nil {
		t.Error("unknown effort accepted")
	}
}

func TestRouteNoBinGrid(t *testing.T) {
	nl, _ := placed(t, 0.7)
	if _, err := Route(nl, &place.Result{}, Options{}); err == nil {
		t.Error("placement without bin grid accepted")
	}
}
