package pdtool

import (
	"math"
	"testing"

	"ppatuner/internal/param"
)

func TestHeuristicFieldBounded(t *testing.T) {
	s := param.Target1Space()
	for _, u := range [][]float64{
		make([]float64, s.Dim()),
		{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
	} {
		p, d, a := heuristicField(s.MustConfig(u))
		for _, v := range []float64{p, d, a} {
			if math.Abs(v) > heuristicAmp+1e-12 {
				t.Errorf("field value %g exceeds amplitude %g", v, heuristicAmp)
			}
		}
	}
}

func TestHeuristicFieldDeterministic(t *testing.T) {
	s := param.Source2Space()
	cfg := s.MustConfig([]float64{0.2, 0.4, 0.6, 0.8, 0.1, 0.3, 0.5, 0.7, 0.9})
	p1, d1, a1 := heuristicField(cfg)
	p2, d2, a2 := heuristicField(cfg)
	if p1 != p2 || d1 != d2 || a1 != a2 {
		t.Fatal("heuristic field not deterministic")
	}
}

// TestHeuristicFieldTaskConsistent: the same *physical* setting must produce
// the same field value regardless of which benchmark space encodes it — that
// is the property transfer learning exploits.
func TestHeuristicFieldTaskConsistent(t *testing.T) {
	src := param.Source2Space()
	tgt := param.Target2Space()
	// max_fanout = 30: u = (30-25)/15 in Source2, (30-25)/14 in Target2.
	// Build configs that agree on every physical value both spaces share.
	us := make([]float64, src.Dim())
	ut := make([]float64, tgt.Dim())
	type knob struct {
		name string
		phys float64
	}
	knobs := []knob{
		{"place_rcfactor", 1.15}, {"max_Length", 300}, {"max_Density", 0.75},
		{"max_capacitance", 0.10}, {"max_fanout", 30}, {"max_AllowedDelay", 0.09},
	}
	for _, k := range knobs {
		ps := src.Params[src.Index(k.name)]
		pt := tgt.Params[tgt.Index(k.name)]
		us[src.Index(k.name)] = (k.phys - ps.Min) / (ps.Max - ps.Min)
		ut[tgt.Index(k.name)] = (k.phys - pt.Min) / (pt.Max - pt.Min)
	}
	// Shared enum/bool knobs at identical levels (coordinates 0).
	cs := src.MustConfig(us)
	ct := tgt.MustConfig(ut)
	p1, d1, a1 := heuristicField(cs)
	p2, d2, a2 := heuristicField(ct)
	// Int snapping can shift max_fanout by one step; allow a small slack.
	const tol = 0.01
	if math.Abs(p1-p2) > tol || math.Abs(d1-d2) > tol || math.Abs(a1-a2) > tol {
		t.Errorf("field differs across spaces for identical physical settings: (%g,%g,%g) vs (%g,%g,%g)", p1, d1, a1, p2, d2, a2)
	}
}

func TestHeuristicFieldRespondsToParameters(t *testing.T) {
	s := param.Target1Space()
	base := s.MustConfig(make([]float64, s.Dim()))
	p0, d0, a0 := heuristicField(base)
	moved := make([]float64, s.Dim())
	moved[s.Index("freq")] = 1
	moved[s.Index("max_Density")] = 1
	p1, d1, a1 := heuristicField(s.MustConfig(moved))
	if p0 == p1 && d0 == d1 && a0 == a1 {
		t.Error("field is flat across the space")
	}
}

func TestToolJitterProperties(t *testing.T) {
	a1, b1, c1 := toolJitter("design", "key")
	a2, b2, c2 := toolJitter("design", "key")
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatal("jitter not deterministic")
	}
	a3, _, _ := toolJitter("design", "other-key")
	if a1 == a3 {
		t.Error("jitter insensitive to config key")
	}
	a4, _, _ := toolJitter("other-design", "key")
	if a1 == a4 {
		t.Error("jitter insensitive to design")
	}
	for _, v := range []float64{a1, b1, c1, a3, a4} {
		if v < -1 || v > 1 {
			t.Errorf("jitter %g outside [-1, 1]", v)
		}
	}
}
