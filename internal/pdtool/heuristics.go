package pdtool

import (
	"math"
	"math/rand"

	"ppatuner/internal/param"
)

// refRange is the fixed reference range used to express every tool parameter
// on a common scale for the heuristic field. Ranges cover the union of all
// benchmark spaces (Table 1) with slack, so a given physical setting always
// maps to the same field coordinate regardless of which space it came from —
// that is precisely what makes the field transferable across tasks.
var refRange = map[string][2]float64{
	"freq":               {900, 1400},
	"place_rcfactor":     {0.95, 1.35},
	"place_uncertainty":  {10, 220},
	"flowEffort":         {0, 2},
	"timing_effort":      {0, 1},
	"clock_power_driven": {0, 1},
	"uniform_density":    {0, 1},
	"cong_effort":        {0, 2},
	"max_density":        {0.60, 0.95},
	"max_Length":         {150, 360},
	"max_Density":        {0.45, 1.05},
	"max_transition":     {0.08, 0.40},
	"max_capacitance":    {0.04, 0.22},
	"max_fanout":         {20, 55},
	"max_AllowedDelay":   {0, 0.30},
}

// heuristicAmp is the amplitude of the heuristic field per metric (±8%).
const heuristicAmp = 0.08

// nProj is the number of random projections composing the field.
const nProj = 5

// heuristicCoeffs holds the fixed projection weights and phases, generated
// once from a fixed seed so the field is a constant of "the tool".
var heuristicCoeffs = func() (c struct {
	names []string             // fixed parameter order: float sums must not follow map order
	w     map[string][]float64 // per-parameter projection weights
	freq  [nProj]float64
	phase [3][nProj]float64
}) {
	rng := rand.New(rand.NewSource(20220710)) // DAC'22 conference date
	c.w = make(map[string][]float64, len(refRange))
	names := []string{
		"freq", "place_rcfactor", "place_uncertainty", "flowEffort",
		"timing_effort", "clock_power_driven", "uniform_density",
		"cong_effort", "max_density", "max_Length", "max_Density",
		"max_transition", "max_capacitance", "max_fanout", "max_AllowedDelay",
	}
	c.names = names
	for _, n := range names {
		c.w[n] = make([]float64, nProj)
	}
	// Sparse interactions: each projection couples exactly two parameters,
	// the way real heuristics gate on a pair of settings (e.g. a congestion
	// recipe that kicks in for high density combined with low effort). Sparse
	// structure is what keeps the field *learnable* — a surrogate with
	// per-dimension lengthscales can discover which knobs interact.
	for j := 0; j < nProj; j++ {
		a := rng.Intn(len(names))
		b := rng.Intn(len(names) - 1)
		if b >= a {
			b++
		}
		c.w[names[a]][j] = 1.0 + 0.8*rng.Float64()
		c.w[names[b]][j] = -(1.0 + 0.8*rng.Float64())
	}
	for j := 0; j < nProj; j++ {
		c.freq[j] = 1.2 + 1.8*rng.Float64() // cycles across the field
		for k := 0; k < 3; k++ {
			c.phase[k][j] = 2 * math.Pi * rng.Float64()
		}
	}
	return c
}()

// fieldCoord maps a parameter's physical value to [0, 1] on the reference
// scale.
func fieldCoord(name string, v float64) float64 {
	r, ok := refRange[name]
	if !ok {
		return 0.5
	}
	return (v - r[0]) / (r[1] - r[0])
}

// physValue extracts the parameter's physical value from the config (or its
// tool default when the benchmark does not tune it), on a numeric scale.
func physValue(cfg param.Config, name string) float64 {
	switch name {
	case "flowEffort":
		return float64(enumIndex(cfg.EnumOr(name, "standard"), []string{"standard", "high", "extreme"}))
	case "timing_effort":
		return float64(enumIndex(cfg.EnumOr(name, "medium"), []string{"medium", "high"}))
	case "cong_effort":
		return float64(enumIndex(cfg.EnumOr(name, "AUTO"), []string{"AUTO", "MEDIUM", "HIGH"}))
	case "clock_power_driven":
		return b2f(cfg.BoolOr(name, false))
	case "uniform_density":
		return b2f(cfg.BoolOr(name, false))
	case "freq":
		return cfg.FloatOr(name, 1000)
	case "place_rcfactor":
		return cfg.FloatOr(name, 1.10)
	case "place_uncertainty":
		return cfg.FloatOr(name, 40)
	case "max_density":
		return cfg.FloatOr(name, 0.80)
	case "max_Length":
		return cfg.FloatOr(name, 300)
	case "max_Density":
		return cfg.FloatOr(name, 0.75)
	case "max_transition":
		return cfg.FloatOr(name, 0.25)
	case "max_capacitance":
		return cfg.FloatOr(name, 0.10)
	case "max_fanout":
		return cfg.FloatOr(name, 32)
	case "max_AllowedDelay":
		return cfg.FloatOr(name, 0.05)
	default:
		return 0.5
	}
}

func enumIndex(v string, levels []string) int {
	for i, l := range levels {
		if l == v {
			return i
		}
	}
	return 0
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// heuristicField evaluates the rugged tool-heuristics response at the
// configuration, returning one multiplicative deviation per QoR metric
// (power, delay, area), each in [-heuristicAmp, +heuristicAmp].
func heuristicField(cfg param.Config) (power, delay, area float64) {
	// Project the reference-scaled configuration onto nProj directions.
	// Iterate the fixed name order: summing in map-iteration order would
	// make the last float64 bits of the field vary run to run.
	var proj [nProj]float64
	for _, name := range heuristicCoeffs.names {
		ws := heuristicCoeffs.w[name]
		z := fieldCoord(name, physValue(cfg, name))
		for j := 0; j < nProj; j++ {
			proj[j] += ws[j] * z
		}
	}
	var out [3]float64
	for k := 0; k < 3; k++ {
		var s float64
		for j := 0; j < nProj; j++ {
			s += math.Sin(2*math.Pi*heuristicCoeffs.freq[j]*proj[j]/3 + heuristicCoeffs.phase[k][j])
		}
		out[k] = heuristicAmp * s / nProj
	}
	return out[0], out[1], out[2]
}
