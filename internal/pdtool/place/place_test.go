package place

import (
	"math"
	"testing"

	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
)

func macNL(t *testing.T, width int) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.MAC("m", width)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func defaultOpts() Options {
	return Options{TargetUtil: 0.7, MaxBinDensity: 0.8, Iterations: 8}
}

func TestPlaceBasics(t *testing.T) {
	nl := macNL(t, 8)
	l := lib.Default7nm()
	res, err := Place(nl, l, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != len(nl.Cells) || len(res.Y) != len(nl.Cells) {
		t.Fatalf("coordinate count mismatch")
	}
	for ci := range res.X {
		if res.X[ci] < 0 || res.X[ci] > res.CoreW || res.Y[ci] < 0 || res.Y[ci] > res.CoreH {
			t.Fatalf("cell %d at (%g, %g) outside core %gx%g", ci, res.X[ci], res.Y[ci], res.CoreW, res.CoreH)
		}
	}
	if res.HPWL <= 0 {
		t.Error("HPWL not positive")
	}
	// Core area must honour the utilisation target.
	wantArea := nl.TotalArea(l) / 0.7
	if math.Abs(res.CoreW*res.CoreH-wantArea) > 1e-6*wantArea {
		t.Errorf("core area = %g, want %g", res.CoreW*res.CoreH, wantArea)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	nl := macNL(t, 8)
	l := lib.Default7nm()
	a, err := Place(nl, l, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(nl, l, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	for ci := range a.X {
		if a.X[ci] != b.X[ci] || a.Y[ci] != b.Y[ci] {
			t.Fatalf("placement not deterministic at cell %d", ci)
		}
	}
}

func TestPlaceRefinementReducesHPWL(t *testing.T) {
	nl := macNL(t, 12)
	l := lib.Default7nm()
	coarse, err := Place(nl, l, Options{TargetUtil: 0.7, MaxBinDensity: 0.8, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Place(nl, l, Options{TargetUtil: 0.7, MaxBinDensity: 0.8, Iterations: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !(fine.HPWL < coarse.HPWL) {
		t.Errorf("more iterations did not reduce HPWL: %g vs %g", fine.HPWL, coarse.HPWL)
	}
}

func TestPlaceUtilizationDrivesArea(t *testing.T) {
	nl := macNL(t, 8)
	l := lib.Default7nm()
	dense, err := Place(nl, l, Options{TargetUtil: 0.95, MaxBinDensity: 1.0, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := Place(nl, l, Options{TargetUtil: 0.5, MaxBinDensity: 1.0, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(dense.CoreW*dense.CoreH < sparse.CoreW*sparse.CoreH) {
		t.Error("higher utilisation did not shrink the die")
	}
}

func TestPlaceUniformDensitySpreads(t *testing.T) {
	nl := macNL(t, 12)
	l := lib.Default7nm()
	clustered, err := Place(nl, l, Options{TargetUtil: 0.6, MaxBinDensity: 1.0, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Place(nl, l, Options{TargetUtil: 0.6, MaxBinDensity: 1.0, UniformDensity: true, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Peak bin utilisation must drop under uniform spreading.
	peak := func(r *Result) float64 {
		m := 0.0
		for _, u := range r.BinUtil {
			if u > m {
				m = u
			}
		}
		return m
	}
	if !(peak(uniform) < peak(clustered)) {
		t.Errorf("uniform peak %g !< clustered peak %g", peak(uniform), peak(clustered))
	}
}

func TestPlaceDensityCapRespectedApproximately(t *testing.T) {
	nl := macNL(t, 12)
	l := lib.Default7nm()
	res, err := Place(nl, l, Options{TargetUtil: 0.55, MaxBinDensity: 0.7, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Overflow is the fraction of cell area above the cap; spreading should
	// keep it small when the die has slack (util 0.55 < cap 0.7).
	if res.Overflow > 0.10 {
		t.Errorf("overflow = %g, want <= 0.10", res.Overflow)
	}
}

func TestPlaceTimingWeightChangesResult(t *testing.T) {
	nl := macNL(t, 10)
	l := lib.Default7nm()
	a, err := Place(nl, l, Options{TargetUtil: 0.7, MaxBinDensity: 0.8, Iterations: 6, TimingWeight: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(nl, l, Options{TargetUtil: 0.7, MaxBinDensity: 0.8, Iterations: 6, TimingWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for ci := range a.X {
		diff += math.Abs(a.X[ci]-b.X[ci]) + math.Abs(a.Y[ci]-b.Y[ci])
	}
	if diff == 0 {
		t.Error("timing weight had no effect on placement")
	}
}

func TestPlaceErrors(t *testing.T) {
	nl := macNL(t, 4)
	l := lib.Default7nm()
	if _, err := Place(nl, l, Options{TargetUtil: 0, MaxBinDensity: 0.8}); err == nil {
		t.Error("TargetUtil 0 accepted")
	}
	if _, err := Place(nl, l, Options{TargetUtil: 1.5, MaxBinDensity: 0.8}); err == nil {
		t.Error("TargetUtil > 1 accepted")
	}
	if _, err := Place(nl, l, Options{TargetUtil: 0.7, MaxBinDensity: 0}); err == nil {
		t.Error("MaxBinDensity 0 accepted")
	}
	empty := &netlist.Netlist{Name: "empty"}
	if _, err := Place(empty, l, defaultOpts()); err == nil {
		t.Error("empty netlist accepted")
	}
}

func TestBinIndexing(t *testing.T) {
	res := &Result{CoreW: 100, CoreH: 100, BinsX: 10, BinsY: 10}
	if b := res.Bin(5, 5); b != 0 {
		t.Errorf("Bin(5,5) = %d, want 0", b)
	}
	if b := res.Bin(95, 95); b != 99 {
		t.Errorf("Bin(95,95) = %d, want 99", b)
	}
	// Out-of-range coordinates clamp.
	if b := res.Bin(-5, 500); b != 90 {
		t.Errorf("Bin(-5,500) = %d, want 90", b)
	}
}

func TestNetLengthMatchesHPWLSum(t *testing.T) {
	nl := macNL(t, 6)
	l := lib.Default7nm()
	res, err := Place(nl, l, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for id := range nl.Nets {
		sum += NetLength(nl, res, id)
	}
	if math.Abs(sum-res.HPWL) > 1e-9*res.HPWL {
		t.Errorf("sum of NetLength %g != HPWL %g", sum, res.HPWL)
	}
}
