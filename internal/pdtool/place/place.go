// Package place implements the global-placement step of the flow simulator:
// a levelised initial placement followed by force-directed refinement with
// bin-density legalisation. Its outputs — cell coordinates, bin utilisation,
// half-perimeter wirelength — feed the routing, timing and power engines.
//
// Tool parameters steering it: max_Density sets the core utilisation (die
// size), max_density caps local bin density during spreading,
// uniform_density forces even spreading, and the timing effort adds netlist-
// depth-weighted attraction so critical logic clusters.
package place

import (
	"fmt"
	"math"

	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
)

// Options configures a placement run.
type Options struct {
	// TargetUtil is the core utilisation (the tool's max_Density): the die
	// area is cellArea / TargetUtil.
	TargetUtil float64
	// MaxBinDensity caps the local bin utilisation during spreading (the
	// tool's max_density).
	MaxBinDensity float64
	// UniformDensity spreads cells evenly regardless of MaxBinDensity
	// (the tool's uniform_density switch).
	UniformDensity bool
	// TimingWeight in [0, 1] scales extra attraction on deep-logic nets.
	TimingWeight float64
	// Iterations is the number of refine+legalise rounds (effort-derived).
	Iterations int
}

// Result is the placement outcome.
type Result struct {
	X, Y         []float64 // cell positions, µm
	CoreW, CoreH float64   // die dimensions, µm
	BinsX, BinsY int
	BinUtil      []float64 // row-major bin utilisation (area / bin capacity)
	Overflow     float64   // fraction of cell area in overfull bins
	HPWL         float64   // total half-perimeter wirelength, µm
}

// Bin returns the bin index containing coordinate (x, y).
func (r *Result) Bin(x, y float64) int {
	bx := int(x / r.CoreW * float64(r.BinsX))
	by := int(y / r.CoreH * float64(r.BinsY))
	if bx < 0 {
		bx = 0
	} else if bx >= r.BinsX {
		bx = r.BinsX - 1
	}
	if by < 0 {
		by = 0
	} else if by >= r.BinsY {
		by = r.BinsY - 1
	}
	return by*r.BinsX + bx
}

// Place runs global placement. It is deterministic: identical inputs yield
// identical results.
func Place(nl *netlist.Netlist, l *lib.Library, opt Options) (*Result, error) {
	n := len(nl.Cells)
	if n == 0 {
		return nil, fmt.Errorf("place: empty netlist %s", nl.Name)
	}
	if opt.TargetUtil <= 0 || opt.TargetUtil > 1 {
		return nil, fmt.Errorf("place: TargetUtil %g outside (0, 1]", opt.TargetUtil)
	}
	if opt.MaxBinDensity <= 0 {
		return nil, fmt.Errorf("place: MaxBinDensity %g <= 0", opt.MaxBinDensity)
	}
	if opt.Iterations <= 0 {
		opt.Iterations = 8
	}

	area := nl.TotalArea(l)
	coreArea := area / opt.TargetUtil
	side := math.Sqrt(coreArea)
	res := &Result{
		X:     make([]float64, n),
		Y:     make([]float64, n),
		CoreW: side,
		CoreH: side,
	}

	// Initial placement: snake cells across the core in topological order so
	// connected logic starts near its neighbours.
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	pitchX := side / float64(cols)
	rows := (n + cols - 1) / cols
	pitchY := side / float64(rows)
	for i, ci := range order {
		r, c := i/cols, i%cols
		if r%2 == 1 {
			c = cols - 1 - c
		}
		res.X[ci] = (float64(c) + 0.5) * pitchX
		res.Y[ci] = (float64(r) + 0.5) * pitchY
	}

	// Net weights: deeper logic gets stronger attraction under timing-driven
	// placement.
	lvl, err := nl.Levels()
	if err != nil {
		return nil, err
	}
	maxLvl := 1
	for _, lv := range lvl {
		if lv > maxLvl {
			maxLvl = lv
		}
	}
	netW := make([]float64, len(nl.Nets))
	for id, net := range nl.Nets {
		w := 1.0
		if net.Driver >= 0 && opt.TimingWeight > 0 {
			w += opt.TimingWeight * float64(lvl[net.Driver]) / float64(maxLvl)
		}
		// Huge-fanout nets (e.g. operand broadcasts) attract weakly per pin.
		if len(net.Sinks) > 8 {
			w *= 8 / float64(len(net.Sinks))
		}
		netW[id] = w
	}

	// Bin grid for legalisation.
	bins := int(math.Sqrt(float64(n)/12)) + 4
	res.BinsX, res.BinsY = bins, bins

	cellArea := make([]float64, n)
	for ci, c := range nl.Cells {
		cellArea[ci] = l.Scaled(c.Kind, c.Size).Area
	}

	for iter := 0; iter < opt.Iterations; iter++ {
		step := 0.7 * math.Pow(0.85, float64(iter))
		forceStep(nl, res, netW, step)
		spread(nl, res, cellArea, opt, iter == opt.Iterations-1)
	}

	res.BinUtil, res.Overflow = binStats(res, cellArea, opt)
	res.HPWL = hpwl(nl, res)
	return res, nil
}

// forceStep moves every cell a fraction of the way toward the weighted
// centroid of its connected cells.
func forceStep(nl *netlist.Netlist, res *Result, netW []float64, step float64) {
	n := len(nl.Cells)
	sx := make([]float64, n)
	sy := make([]float64, n)
	sw := make([]float64, n)
	addPull := func(a, b int, w float64) {
		sx[a] += w * res.X[b]
		sy[a] += w * res.Y[b]
		sw[a] += w
		sx[b] += w * res.X[a]
		sy[b] += w * res.Y[a]
		sw[b] += w
	}
	for id, net := range nl.Nets {
		if net.Driver < 0 {
			continue
		}
		w := netW[id]
		for _, s := range net.Sinks {
			if s != net.Driver {
				addPull(net.Driver, s, w)
			}
		}
	}
	for ci := 0; ci < n; ci++ {
		if sw[ci] == 0 {
			continue
		}
		cx := sx[ci] / sw[ci]
		cy := sy[ci] / sw[ci]
		res.X[ci] += step * (cx - res.X[ci])
		res.Y[ci] += step * (cy - res.Y[ci])
		res.X[ci] = clamp(res.X[ci], 0, res.CoreW)
		res.Y[ci] = clamp(res.Y[ci], 0, res.CoreH)
	}
}

// spread legalises bin density: cells in overfull bins are pushed to the
// least-full neighbouring bin. The density cap is MaxBinDensity, or the
// average utilisation when UniformDensity is set (even spreading). The final
// round always enforces the cap so the result respects the constraint.
func spread(nl *netlist.Netlist, res *Result, cellArea []float64, opt Options, final bool) {
	bx, by := res.BinsX, res.BinsY
	binW := res.CoreW / float64(bx)
	binH := res.CoreH / float64(by)
	binCap := binW * binH

	cap := opt.MaxBinDensity
	var total float64
	for _, a := range cellArea {
		total += a
	}
	avg := total / (res.CoreW * res.CoreH)
	if opt.UniformDensity {
		// Even distribution: allow only a little headroom above average.
		cap = math.Min(cap, avg*1.15+0.02)
	}

	util := make([]float64, bx*by)
	members := make([][]int, bx*by)
	for ci := range cellArea {
		b := res.Bin(res.X[ci], res.Y[ci])
		util[b] += cellArea[ci] / binCap
		members[b] = append(members[b], ci)
	}
	passes := 1
	if final {
		passes = 3
	}
	for p := 0; p < passes; p++ {
		moved := false
		for b := 0; b < bx*by; b++ {
			if util[b] <= cap {
				continue
			}
			cx, cy := b%bx, b/bx
			// Move the latest-arrived cells out to the least-full neighbour.
			for util[b] > cap && len(members[b]) > 1 {
				ci := members[b][len(members[b])-1]
				members[b] = members[b][:len(members[b])-1]
				nb, nx, ny := b, cx, cy
				bestU := math.Inf(1)
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {-1, -1}, {1, -1}, {-1, 1}} {
					tx, ty := cx+d[0], cy+d[1]
					if tx < 0 || tx >= bx || ty < 0 || ty >= by {
						continue
					}
					tb := ty*bx + tx
					if util[tb] < bestU {
						bestU = util[tb]
						nb, nx, ny = tb, tx, ty
					}
				}
				if nb == b {
					break
				}
				frac := cellArea[ci] / binCap
				util[b] -= frac
				util[nb] += frac
				members[nb] = append(members[nb], ci)
				res.X[ci] = (float64(nx) + 0.5) * binW
				res.Y[ci] = (float64(ny) + 0.5) * binH
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// binStats recomputes final utilisation and the overflow fraction.
func binStats(res *Result, cellArea []float64, opt Options) ([]float64, float64) {
	bx, by := res.BinsX, res.BinsY
	binCap := (res.CoreW / float64(bx)) * (res.CoreH / float64(by))
	util := make([]float64, bx*by)
	var total float64
	for ci, a := range cellArea {
		util[res.Bin(res.X[ci], res.Y[ci])] += a / binCap
		total += a
	}
	var over float64
	for _, u := range util {
		if u > opt.MaxBinDensity {
			over += (u - opt.MaxBinDensity) * binCap
		}
	}
	return util, over / total
}

// hpwl sums the half-perimeter bounding box of every net.
func hpwl(nl *netlist.Netlist, res *Result) float64 {
	var total float64
	for _, net := range nl.Nets {
		if net.Driver < 0 || len(net.Sinks) == 0 {
			continue
		}
		minX, maxX := res.X[net.Driver], res.X[net.Driver]
		minY, maxY := res.Y[net.Driver], res.Y[net.Driver]
		for _, s := range net.Sinks {
			minX = math.Min(minX, res.X[s])
			maxX = math.Max(maxX, res.X[s])
			minY = math.Min(minY, res.Y[s])
			maxY = math.Max(maxY, res.Y[s])
		}
		total += (maxX - minX) + (maxY - minY)
	}
	return total
}

// NetLength estimates the routed length of one net as its half-perimeter.
func NetLength(nl *netlist.Netlist, res *Result, netID int) float64 {
	net := nl.Nets[netID]
	if net.Driver < 0 || len(net.Sinks) == 0 {
		return 0
	}
	minX, maxX := res.X[net.Driver], res.X[net.Driver]
	minY, maxY := res.Y[net.Driver], res.Y[net.Driver]
	for _, s := range net.Sinks {
		minX = math.Min(minX, res.X[s])
		maxX = math.Max(maxX, res.X[s])
		minY = math.Min(minY, res.Y[s])
		maxY = math.Max(maxY, res.Y[s])
	}
	return (maxX - minX) + (maxY - minY)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
