package pdtool

import (
	"ppatuner/internal/pdtool/cts"
	"ppatuner/internal/pdtool/drv"
	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
	"ppatuner/internal/pdtool/power"
	"ppatuner/internal/pdtool/route"
)

// powerAnalyze wraps the power engine, returning total mW.
func powerAnalyze(nl *netlist.Netlist, l *lib.Library, fix *drv.Result, rt *route.Result, ct *cts.Result, freqMHz float64) (float64, error) {
	b, err := power.Analyze(nl, l, fix, rt, ct, power.Options{FreqMHz: freqMHz})
	if err != nil {
		return 0, err
	}
	return b.TotalMW(), nil
}
