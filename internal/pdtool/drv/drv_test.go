package drv

import (
	"testing"

	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
	"ppatuner/internal/pdtool/place"
)

func placed(t *testing.T) (*netlist.Netlist, *lib.Library, *place.Result) {
	t.Helper()
	nl, err := netlist.MAC("m", 8)
	if err != nil {
		t.Fatal(err)
	}
	l := lib.Default7nm()
	pl, err := place.Place(nl, l, place.Options{TargetUtil: 0.7, MaxBinDensity: 0.8, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	return nl, l, pl
}

func relaxed() Limits {
	return Limits{MaxFanout: 1000, MaxCapFF: 1e6, MaxTransPS: 1e6, MaxLenUm: 1e6}
}

func TestFixNoViolationsUnderRelaxedLimits(t *testing.T) {
	nl, l, pl := placed(t)
	res, err := Fix(nl, l, pl, relaxed())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBuffers != 0 || res.Violations != 0 {
		t.Errorf("relaxed limits inserted %d buffers (%d violations)", res.TotalBuffers, res.Violations)
	}
	for id, f := range res.Fix {
		if f.Stages != 1 {
			t.Fatalf("net %d has %d stages under relaxed limits", id, f.Stages)
		}
	}
}

func TestFixFanoutRule(t *testing.T) {
	nl, l, pl := placed(t)
	lm := relaxed()
	lm.MaxFanout = 4
	res, err := Fix(nl, l, pl, lm)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBuffers == 0 {
		t.Fatal("fanout limit 4 on a MAC inserted no buffers")
	}
	// Every net with >4 sinks must be staged.
	for id, net := range nl.Nets {
		if len(net.Sinks) > 4 && res.Fix[id].Stages < 2 {
			t.Fatalf("net %d with %d sinks not buffered", id, len(net.Sinks))
		}
	}
}

func TestFixTighterLimitsMoreBuffers(t *testing.T) {
	nl, l, pl := placed(t)
	loose := relaxed()
	loose.MaxCapFF = 40
	tight := relaxed()
	tight.MaxCapFF = 10
	rl, err := Fix(nl, l, pl, loose)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Fix(nl, l, pl, tight)
	if err != nil {
		t.Fatal(err)
	}
	if !(rt.TotalBuffers > rl.TotalBuffers) {
		t.Errorf("tight cap %d buffers !> loose %d", rt.TotalBuffers, rl.TotalBuffers)
	}
	if !(rt.BufferArea > rl.BufferArea) || !(rt.BufferLeakage > rl.BufferLeakage) {
		t.Error("buffer overheads not monotone with buffer count")
	}
}

func TestFixLengthRule(t *testing.T) {
	nl, l, pl := placed(t)
	lm := relaxed()
	lm.MaxLenUm = 2 // almost every real net is longer
	res, err := Fix(nl, l, pl, lm)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBuffers == 0 {
		t.Fatal("2µm length limit inserted no buffers")
	}
}

func TestFixStageChainCapped(t *testing.T) {
	nl, l, pl := placed(t)
	lm := relaxed()
	lm.MaxFanout = 1
	res, err := Fix(nl, l, pl, lm)
	if err != nil {
		t.Fatal(err)
	}
	for id, f := range res.Fix {
		if f.Stages > 16 {
			t.Fatalf("net %d has %d stages, cap is 16", id, f.Stages)
		}
	}
}

func TestLimitsValidate(t *testing.T) {
	bad := []Limits{
		{MaxFanout: 0, MaxCapFF: 1, MaxTransPS: 1, MaxLenUm: 1},
		{MaxFanout: 1, MaxCapFF: 0, MaxTransPS: 1, MaxLenUm: 1},
		{MaxFanout: 1, MaxCapFF: 1, MaxTransPS: -1, MaxLenUm: 1},
		{MaxFanout: 1, MaxCapFF: 1, MaxTransPS: 1, MaxLenUm: 0},
	}
	for i, lm := range bad {
		if err := lm.Validate(); err == nil {
			t.Errorf("bad limits %d accepted: %+v", i, lm)
		}
	}
	nl, l, pl := placed(t)
	if _, err := Fix(nl, l, pl, bad[0]); err == nil {
		t.Error("Fix accepted invalid limits")
	}
}

func TestNetDelayBufferingLongNetHelps(t *testing.T) {
	nl, l, pl := placed(t)
	// Pick the longest net.
	best, bestLen := -1, 0.0
	for id := range nl.Nets {
		if ln := place.NetLength(nl, pl, id); ln > bestLen {
			best, bestLen = id, ln
		}
	}
	if best < 0 || bestLen == 0 {
		t.Skip("no nonzero-length nets")
	}
	unbuf, err := Fix(nl, l, pl, relaxed())
	if err != nil {
		t.Fatal(err)
	}
	lm := relaxed()
	lm.MaxLenUm = bestLen / 3
	buf, err := Fix(nl, l, pl, lm)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Fix[best].Stages < 2 {
		t.Fatalf("longest net not split: %d stages", buf.Fix[best].Stages)
	}
	driver := nl.Nets[best].Driver
	dres := 1.2
	if driver >= 0 {
		dres = l.Scaled(nl.Cells[driver].Kind, nl.Cells[driver].Size).DriveRes
	}
	dU := unbuf.NetDelayPS(l, dres, best, 1.0, 1.0)
	dB := buf.NetDelayPS(l, dres, best, 1.0, 1.0)
	// Splitting a wire-RC-dominated net should not make it dramatically
	// slower; for long nets it usually helps. Allow a generous margin to
	// avoid over-fitting the model, but catch sign errors.
	if dB > 2*dU {
		t.Errorf("buffered delay %g ps vs unbuffered %g ps: buffering exploded", dB, dU)
	}
}

func TestNetCapIncludesBuffers(t *testing.T) {
	nl, l, pl := placed(t)
	unbuf, err := Fix(nl, l, pl, relaxed())
	if err != nil {
		t.Fatal(err)
	}
	lm := relaxed()
	lm.MaxFanout = 2
	buf, err := Fix(nl, l, pl, lm)
	if err != nil {
		t.Fatal(err)
	}
	// Total switched cap with buffers must exceed without, summed over nets.
	var cU, cB float64
	for id := range nl.Nets {
		cU += unbuf.NetCapFF(l, nl, id, 1.0)
		cB += buf.NetCapFF(l, nl, id, 1.0)
	}
	if !(cB > cU) {
		t.Errorf("buffered total cap %g !> unbuffered %g", cB, cU)
	}
}
