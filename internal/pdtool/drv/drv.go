// Package drv implements the design-rule-violation fixing step of the flow:
// nets violating the tool's max_fanout / max_capacitance / max_transition /
// max_Length limits receive buffer chains. Buffering is modelled at the
// electrical-abstraction level — the netlist is not rewritten; instead each
// net gets a stage model (stage count, per-stage load and length) that the
// timing and power engines consume, plus the aggregate buffer area, leakage
// and capacitance overhead. This matches how pre-route virtual buffering is
// estimated inside commercial flows.
package drv

import (
	"fmt"
	"math"

	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
	"ppatuner/internal/pdtool/place"
)

// Limits are the DRV rule parameters of the tool.
type Limits struct {
	MaxFanout  int     // max sinks per stage
	MaxCapFF   float64 // max load per stage, fF
	MaxTransPS float64 // max output transition, ps
	MaxLenUm   float64 // max unbuffered wire length, µm
}

// Validate rejects non-physical limits.
func (lm Limits) Validate() error {
	if lm.MaxFanout < 1 {
		return fmt.Errorf("drv: MaxFanout %d < 1", lm.MaxFanout)
	}
	if lm.MaxCapFF <= 0 || lm.MaxTransPS <= 0 || lm.MaxLenUm <= 0 {
		return fmt.Errorf("drv: non-positive limit %+v", lm)
	}
	return nil
}

// NetFix is the buffering plan of one net.
type NetFix struct {
	// Stages is the number of driver stages (1 = unbuffered).
	Stages int
	// StageLoadFF is the capacitive load seen by each stage driver.
	StageLoadFF float64
	// StageLenUm is the wire length driven per stage.
	StageLenUm float64
}

// Buffers returns the number of inserted buffers on the net.
func (f NetFix) Buffers() int { return f.Stages - 1 }

// Result aggregates the DRV fixing outcome.
type Result struct {
	Fix          []NetFix // indexed by net ID
	TotalBuffers int
	// BufferArea is the added cell area, µm².
	BufferArea float64
	// BufferLeakage is the added leakage, nW.
	BufferLeakage float64
	// Violations counts nets that violated at least one rule pre-fix.
	Violations int
}

// Fix computes the buffering plan for every net.
func Fix(nl *netlist.Netlist, l *lib.Library, pl *place.Result, lm Limits) (*Result, error) {
	if err := lm.Validate(); err != nil {
		return nil, err
	}
	buf := l.Cell(lib.Buf)
	res := &Result{Fix: make([]NetFix, len(nl.Nets))}
	for id, net := range nl.Nets {
		length := place.NetLength(nl, pl, id)
		var sinkCap float64
		for _, s := range net.Sinks {
			c := l.Scaled(nl.Cells[s].Kind, nl.Cells[s].Size)
			sinkCap += c.InCap
		}
		load := sinkCap + l.WireCapPerUm*length

		// Driver resistance: PI nets assume a nominal pad driver.
		driveRes := 1.2
		if net.Driver >= 0 {
			dc := nl.Cells[net.Driver]
			driveRes = l.Scaled(dc.Kind, dc.Size).DriveRes
		}
		trans := 2.2 * driveRes * load // RC ramp estimate, ps

		stages := 1
		grow := func(n int) {
			if n > stages {
				stages = n
			}
		}
		if fo := len(net.Sinks); fo > lm.MaxFanout {
			grow(int(math.Ceil(float64(fo) / float64(lm.MaxFanout))))
		}
		if load > lm.MaxCapFF {
			grow(int(math.Ceil(load / lm.MaxCapFF)))
		}
		if trans > lm.MaxTransPS {
			grow(int(math.Ceil(trans / lm.MaxTransPS)))
		}
		if length > lm.MaxLenUm {
			grow(int(math.Ceil(length / lm.MaxLenUm)))
		}
		if stages > 1 {
			res.Violations++
		}
		// Cap the chain: beyond 16 stages the model stops being useful.
		if stages > 16 {
			stages = 16
		}
		stageLen := length / float64(stages)
		stageLoad := load/float64(stages) + buf.InCap*boolTo01(stages > 1)
		res.Fix[id] = NetFix{Stages: stages, StageLoadFF: stageLoad, StageLenUm: stageLen}
		nb := stages - 1
		res.TotalBuffers += nb
		res.BufferArea += float64(nb) * buf.Area
		res.BufferLeakage += float64(nb) * buf.Leakage
	}
	return res, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// NetDelayPS returns the total net delay (driver-output to sink-input) in ps
// under the buffering plan: the driver's stage plus each buffer stage, each
// an Elmore segment, plus buffer intrinsic delays.
func (r *Result) NetDelayPS(l *lib.Library, driveResKOhm float64, netID int, rcFactor float64, routedDetour float64) float64 {
	f := r.Fix[netID]
	buf := l.Cell(lib.Buf)
	segLen := f.StageLenUm * routedDetour
	// First stage driven by the original driver.
	d := l.WireDelayPS(driveResKOhm, segLen, f.StageLoadFF) * rcFactor
	// Subsequent stages driven by buffers.
	for s := 1; s < f.Stages; s++ {
		d += buf.Intrinsic + l.WireDelayPS(buf.DriveRes, segLen, f.StageLoadFF)*rcFactor
	}
	return d
}

// NetCapFF returns the total switched capacitance of the net including
// inserted buffer input pins and the routed wire. Congestion detours are
// damped: scenic routes concentrate on the minority of nets crossing hot
// regions (where they dominate delay), while a net's *average* wirelength —
// what total switched capacitance sees — moves much less.
func (r *Result) NetCapFF(l *lib.Library, nl *netlist.Netlist, netID int, routedDetour float64) float64 {
	f := r.Fix[netID]
	var sinkCap float64
	for _, s := range nl.Nets[netID].Sinks {
		c := l.Scaled(nl.Cells[s].Kind, nl.Cells[s].Size)
		sinkCap += c.InCap
	}
	capDetour := 1 + 0.3*(routedDetour-1)
	wire := l.WireCapPerUm * f.StageLenUm * float64(f.Stages) * capDetour
	bufCap := float64(f.Buffers()) * l.Cell(lib.Buf).InCap
	return sinkCap + wire + bufCap
}
