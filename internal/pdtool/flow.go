// Package pdtool is the physical-design tool simulator: the black box the
// tuners optimise. Given a design and a tool-parameter configuration it runs
// placement → DRV fixing → clock-tree synthesis → global routing → timing
// optimisation → power analysis, and reports the QoR metrics (power, delay,
// area) the paper tunes. It stands in for Cadence Innovus in the original
// experiments; see DESIGN.md for the substitution rationale.
package pdtool

import (
	"fmt"
	"math"
	"sync"

	"ppatuner/internal/param"
	"ppatuner/internal/pdtool/cts"
	"ppatuner/internal/pdtool/drv"
	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
	"ppatuner/internal/pdtool/place"
	"ppatuner/internal/pdtool/route"
	"ppatuner/internal/pdtool/sta"
)

// QoR is the post-layout quality of results: the three metrics the paper's
// objective spaces combine. All are minimised.
type QoR struct {
	PowerMW float64
	DelayNS float64
	AreaUm2 float64
}

// Metric names the QoR axes.
type Metric int

const (
	Power Metric = iota
	Delay
	Area
)

func (m Metric) String() string {
	switch m {
	case Power:
		return "power"
	case Delay:
		return "delay"
	case Area:
		return "area"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Get returns the named metric value.
func (q QoR) Get(m Metric) float64 {
	switch m {
	case Power:
		return q.PowerMW
	case Delay:
		return q.DelayNS
	case Area:
		return q.AreaUm2
	default:
		panic(fmt.Sprintf("pdtool: unknown metric %d", int(m)))
	}
}

// Vector projects the QoR onto the given objective space.
func (q QoR) Vector(objs []Metric) []float64 {
	v := make([]float64, len(objs))
	for i, m := range objs {
		v[i] = q.Get(m)
	}
	return v
}

// Design is a benchmark circuit plus its library.
type Design struct {
	Name string
	NL   *netlist.Netlist
	Lib  *lib.Library
}

var (
	smallOnce sync.Once
	smallMAC  *Design
	smallErr  error
	largeOnce sync.Once
	largeMAC  *Design
	largeErr  error
)

// NewSmallMAC builds (once, cached) the ~3.5k-cell MAC standing in for the
// paper's 20k-cell design, returning an error instead of panicking when the
// netlist generator fails — library users embedding the tuner should not be
// killed by a bad build. The netlist is immutable; Run copies what it
// mutates.
func NewSmallMAC() (*Design, error) {
	smallOnce.Do(func() {
		nl, err := netlist.MAC("mac-small", 24)
		if err != nil {
			smallErr = fmt.Errorf("pdtool: build mac-small: %w", err)
			return
		}
		smallMAC = &Design{Name: "mac-small", NL: nl, Lib: lib.Default7nm()}
	})
	return smallMAC, smallErr
}

// NewLargeMAC builds (once, cached) the ~9.5k-cell MAC standing in for the
// paper's 67k-cell design; error-returning like NewSmallMAC.
func NewLargeMAC() (*Design, error) {
	largeOnce.Do(func() {
		nl, err := netlist.MAC("mac-large", 44)
		if err != nil {
			largeErr = fmt.Errorf("pdtool: build mac-large: %w", err)
			return
		}
		largeMAC = &Design{Name: "mac-large", NL: nl, Lib: lib.Default7nm()}
	})
	return largeMAC, largeErr
}

// SmallMAC is the panicking convenience wrapper around NewSmallMAC, kept for
// compatibility (examples, quick scripts).
func SmallMAC() *Design {
	d, err := NewSmallMAC()
	if err != nil {
		panic(err)
	}
	return d
}

// LargeMAC is the panicking convenience wrapper around NewLargeMAC.
func LargeMAC() *Design {
	d, err := NewLargeMAC()
	if err != nil {
		panic(err)
	}
	return d
}

// Report carries per-stage diagnostics alongside the QoR.
type Report struct {
	Place    *place.Result
	DRV      *drv.Result
	CTS      *cts.Result
	Route    *route.Result
	Timing   *sta.Result
	FreqMHz  float64
	CellArea float64
}

// Run executes the full flow for one parameter configuration. It is a pure
// function of (design, cfg): deterministic and side-effect free (the design
// netlist is copied before sizing).
func Run(d *Design, cfg param.Config) (QoR, *Report, error) {
	// ---- Decode tool parameters (Table 1), with tool defaults for knobs a
	// benchmark does not tune ("-" entries).
	freq := cfg.FloatOr("freq", 1000)                   // MHz
	uncertainty := cfg.FloatOr("place_uncertainty", 40) // ps
	rcFactor := cfg.FloatOr("place_rcfactor", 1.10)     //
	flowEffort := cfg.EnumOr("flowEffort", "standard")  //
	timingEffort := cfg.EnumOr("timing_effort", "medium")
	clockPower := cfg.BoolOr("clock_power_driven", false)
	uniform := cfg.BoolOr("uniform_density", false)
	congEffortS := cfg.EnumOr("cong_effort", "AUTO")
	maxBinDensity := cfg.FloatOr("max_density", 0.80)
	maxLen := cfg.FloatOr("max_Length", 300)          // µm
	targetUtil := cfg.FloatOr("max_Density", 0.75)    // utilisation
	maxTransNS := cfg.FloatOr("max_transition", 0.25) // ns
	maxCapPF := cfg.FloatOr("max_capacitance", 0.10)  // pF
	maxFanout := int(cfg.FloatOr("max_fanout", 32))
	maxAllowedNS := cfg.FloatOr("max_AllowedDelay", 0.05) // ns

	placeIters, optPasses, maxSize := effortKnobs(flowEffort)
	timingWeight := 0.3
	if timingEffort == "high" {
		timingWeight = 0.9
		optPasses += 2
	}
	congEffort, err := route.ParseEffort(congEffortS)
	if err != nil {
		return QoR{}, nil, err
	}

	// ---- Copy the netlist so the sizing passes do not leak across runs.
	nlCopy := *d.NL
	nlCopy.Cells = append([]netlist.Cell(nil), d.NL.Cells...)
	nl := &nlCopy

	// ---- Placement.
	pl, err := place.Place(nl, d.Lib, place.Options{
		TargetUtil:     targetUtil,
		MaxBinDensity:  maxBinDensity,
		UniformDensity: uniform,
		TimingWeight:   timingWeight,
		Iterations:     placeIters,
	})
	if err != nil {
		return QoR{}, nil, fmt.Errorf("pdtool: place: %w", err)
	}

	// ---- DRV fixing.
	fix, err := drv.Fix(nl, d.Lib, pl, drv.Limits{
		MaxFanout:  maxFanout,
		MaxCapFF:   maxCapPF * 1000,
		MaxTransPS: maxTransNS * 1000,
		MaxLenUm:   maxLen,
	})
	if err != nil {
		return QoR{}, nil, fmt.Errorf("pdtool: drv: %w", err)
	}

	// ---- Clock-tree synthesis.
	ct, err := cts.Synthesize(d.Lib, len(nl.Registers()), pl.CoreW, pl.CoreH, cts.Options{PowerDriven: clockPower})
	if err != nil {
		return QoR{}, nil, fmt.Errorf("pdtool: cts: %w", err)
	}

	// ---- Global routing.
	rt, err := route.Route(nl, pl, route.Options{Effort: congEffort})
	if err != nil {
		return QoR{}, nil, fmt.Errorf("pdtool: route: %w", err)
	}

	// ---- Timing optimisation.
	timing, err := sta.Optimize(nl, d.Lib, pl, fix, rt, sta.Options{
		TargetPeriodPS:    1e6 / freq,
		UncertaintyPS:     uncertainty,
		RCFactor:          rcFactor,
		SkewPS:            ct.SkewPS,
		MaxAllowedDelayPS: maxAllowedNS * 1000,
		OptPasses:         optPasses,
		MaxSize:           maxSize,
	})
	if err != nil {
		return QoR{}, nil, fmt.Errorf("pdtool: sta: %w", err)
	}

	// ---- Power at the target frequency.
	pw, err := powerAnalyze(nl, d.Lib, fix, rt, ct, freq)
	if err != nil {
		return QoR{}, nil, fmt.Errorf("pdtool: power: %w", err)
	}

	// ---- Area: the die is sized to hold the final (post-sizing, post-
	// buffering) cells plus the clock tree at the requested utilisation.
	cellArea := nl.TotalArea(d.Lib) + fix.BufferArea + ct.AreaUm2
	areaUm2 := cellArea / targetUtil
	// Congestion overflow forces a utilisation derate (die growth) — the
	// coupling that makes aggressive density targets backfire.
	areaUm2 *= 1 + 0.8*pl.Overflow + 0.15*math.Max(0, rt.MaxCongestion-0.8)

	q := QoR{
		PowerMW: pw,
		DelayNS: timing.AchievedPeriodPS / 1000,
		AreaUm2: areaUm2,
	}
	// Tool variation: commercial P&R engines are famously seed-sensitive —
	// small parameter changes reshuffle placement and routing decisions and
	// move each QoR metric by a couple of percent. We model that as a
	// deterministic, configuration-hashed perturbation, so the flow stays a
	// pure function of (design, config) while the QoR landscape gains the
	// ruggedness (and dense Pareto fronts) real tools exhibit.
	jx, jy, jz := toolJitter(d.Name, cfg.Key())
	q.PowerMW *= 1 + jitterPct*jx
	q.DelayNS *= 1 + jitterPct*jy
	q.AreaUm2 *= 1 + jitterPct*jz

	// Tool heuristics: beyond the explicit physics above, commercial engines
	// layer hundreds of threshold-driven heuristics whose net effect is a
	// rugged, non-monotone — but *reproducible and design-family-consistent*
	// — response to parameter combinations (the observation, cited by the
	// paper from FIST, that "the influence of parameters can be consistent
	// for different designs", which is what makes transfer learning pay
	// off). We model it as a fixed low-dimensional sinusoidal field over the
	// physical parameter values, identical for every design.
	hp, hd, ha := heuristicField(cfg)
	q.PowerMW *= 1 + hp
	q.DelayNS *= 1 + hd
	q.AreaUm2 *= 1 + ha

	rep := &Report{Place: pl, DRV: fix, CTS: ct, Route: rt, Timing: timing, FreqMHz: freq, CellArea: cellArea}
	return q, rep, nil
}

// jitterPct is the amplitude of the modelled per-run tool variation
// (±0.5%): a deterministic tie-breaking ripple. The dominant modelled
// tool complexity is the systematic heuristic field (heuristics.go),
// which — unlike noise — similar tasks share and a transfer surrogate can
// learn.
const jitterPct = 0.005

// toolJitter derives three deterministic values in [-1, 1] from the design
// name and configuration key (FNV-1a based).
func toolJitter(design, key string) (float64, float64, float64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	mix(design)
	mix("|")
	mix(key)
	next := func() float64 {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		// Map the top 53 bits to [0, 1), then to [-1, 1].
		u := float64(h>>11) / float64(1<<53)
		return 2*u - 1
	}
	return next(), next(), next()
}

// effortKnobs maps the flowEffort ladder to engine budgets.
func effortKnobs(effort string) (placeIters, optPasses int, maxSize float64) {
	switch effort {
	case "extreme":
		return 14, 8, 8
	case "high":
		return 10, 5, 6
	default: // standard
		return 6, 3, 4
	}
}
