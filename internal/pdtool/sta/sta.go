// Package sta implements static timing analysis over a placed, buffered and
// routed design: topological arrival-time propagation with load-dependent
// cell delays and Elmore wire delays, plus the timing-optimisation loop that
// commercial tools run — upsizing cells on (near-)critical paths until the
// target period (less uncertainty margin) is met within the allowed residual
// slack, or the effort budget runs out.
package sta

import (
	"fmt"
	"math"

	"ppatuner/internal/pdtool/drv"
	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
	"ppatuner/internal/pdtool/place"
	"ppatuner/internal/pdtool/route"
)

// Options configures analysis and optimisation.
type Options struct {
	// TargetPeriodPS is the clock period implied by the freq parameter.
	TargetPeriodPS float64
	// UncertaintyPS is the optimisation margin (place_uncertainty): the
	// optimiser aims at TargetPeriodPS − UncertaintyPS.
	UncertaintyPS float64
	// RCFactor scales wire RC (place_rcfactor).
	RCFactor float64
	// SkewPS is the clock skew from CTS.
	SkewPS float64
	// MaxAllowedDelayPS is the residual negative slack the tool tolerates
	// (max_AllowedDelay, converted to ps).
	MaxAllowedDelayPS float64
	// OptPasses bounds the sizing passes (effort-derived; 0 = analysis only).
	OptPasses int
	// MaxSize caps the drive-strength multiplier reached by upsizing.
	MaxSize float64
}

// Result reports timing.
type Result struct {
	// CriticalPathPS is the worst launch-to-capture data path delay.
	CriticalPathPS float64
	// AchievedPeriodPS = CriticalPathPS + setup + skew: the fastest clock
	// the design sustains. This is the flow's delay QoR metric.
	AchievedPeriodPS float64
	// SlackPS is TargetPeriodPS − AchievedPeriodPS.
	SlackPS float64
	// MinPathPS is the fastest launch-to-capture path (hold analysis).
	MinPathPS float64
	// HoldSlackPS = MinPathPS − skew − hold time; negative values flag hold
	// risk the router would fix with delay buffers.
	HoldSlackPS float64
	// Passes is the number of optimisation passes executed.
	Passes int
	// Upsized is the number of cell upsizings applied.
	Upsized int
}

// engine holds the propagation state reused across passes.
type engine struct {
	nl    *netlist.Netlist
	lib   *lib.Library
	pl    *place.Result
	fix   *drv.Result
	rt    *route.Result
	opt   Options
	order []int
	// arrival[c] is the data arrival time at cell c's output, ps.
	arrival []float64
	// argmax[c] is the input net realising the arrival, for backtracing.
	argmax []int
	// netArrive[n] is the arrival at the sink pins of net n.
	netArrive []float64
	netDelay  []float64
	// minArrival / minNetArrive mirror the above for the earliest (hold)
	// paths.
	minArrival   []float64
	minNetArrive []float64
}

// Analyze runs one STA pass (no optimisation) and returns the timing result.
func Analyze(nl *netlist.Netlist, l *lib.Library, pl *place.Result, fix *drv.Result, rt *route.Result, opt Options) (*Result, error) {
	e, err := newEngine(nl, l, pl, fix, rt, opt)
	if err != nil {
		return nil, err
	}
	e.propagate()
	return e.result(0, 0), nil
}

// Optimize runs STA passes interleaved with critical-path upsizing until the
// timing goal is met or the pass budget is exhausted. Cell sizes in nl are
// mutated — callers pass a per-run copy of the netlist.
func Optimize(nl *netlist.Netlist, l *lib.Library, pl *place.Result, fix *drv.Result, rt *route.Result, opt Options) (*Result, error) {
	e, err := newEngine(nl, l, pl, fix, rt, opt)
	if err != nil {
		return nil, err
	}
	if opt.MaxSize <= 1 {
		opt.MaxSize = 8
		e.opt.MaxSize = 8
	}
	goal := opt.TargetPeriodPS - opt.UncertaintyPS
	upsized := 0
	pass := 0
	for ; ; pass++ {
		e.propagate()
		achieved := e.achievedPeriod()
		if pass >= opt.OptPasses || achieved-goal <= opt.MaxAllowedDelayPS {
			break
		}
		n := e.upsizeCritical()
		if n == 0 {
			break // nothing left to improve
		}
		upsized += n
	}
	return e.result(pass, upsized), nil
}

func newEngine(nl *netlist.Netlist, l *lib.Library, pl *place.Result, fix *drv.Result, rt *route.Result, opt Options) (*engine, error) {
	if opt.TargetPeriodPS <= 0 {
		return nil, fmt.Errorf("sta: target period %g ps", opt.TargetPeriodPS)
	}
	if opt.RCFactor <= 0 {
		opt.RCFactor = 1
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &engine{
		nl: nl, lib: l, pl: pl, fix: fix, rt: rt, opt: opt,
		order:        order,
		arrival:      make([]float64, len(nl.Cells)),
		argmax:       make([]int, len(nl.Cells)),
		netArrive:    make([]float64, len(nl.Nets)),
		netDelay:     make([]float64, len(nl.Nets)),
		minArrival:   make([]float64, len(nl.Cells)),
		minNetArrive: make([]float64, len(nl.Nets)),
	}, nil
}

// computeNetDelay returns the driver-cell-input to sink-pin delay of the
// net: the driving cell's intrinsic and drive-resistance terms plus the
// Elmore wire delay of each buffered stage. The RC factor scales the
// extracted wire parasitics (place_rcfactor).
func (e *engine) computeNetDelay(netID int) float64 {
	net := e.nl.Nets[netID]
	f := e.fix.Fix[netID]
	driveRes := 1.2 // pad driver for PI nets
	var intrinsic float64
	if net.Driver >= 0 {
		dc := e.nl.Cells[net.Driver]
		sc := e.lib.Scaled(dc.Kind, dc.Size)
		driveRes = sc.DriveRes
		intrinsic = sc.Intrinsic
	}
	var pinCap float64
	for _, s := range net.Sinks {
		c := e.lib.Scaled(e.nl.Cells[s].Kind, e.nl.Cells[s].Size)
		pinCap += c.InCap
	}
	pinCap /= float64(f.Stages)
	buf := e.lib.Cell(lib.Buf)
	if f.Stages > 1 {
		pinCap += buf.InCap
	}
	segLen := f.StageLenUm * e.rt.Detour[netID]
	cw := e.lib.WireCapPerUm * segLen * e.opt.RCFactor
	rw := e.lib.WireResPerUm * segLen / 1000.0 * e.opt.RCFactor
	stageCap := pinCap + cw
	wireTerm := rw * (cw/2 + pinCap)
	d := intrinsic + driveRes*stageCap + wireTerm
	for s := 1; s < f.Stages; s++ {
		d += buf.Intrinsic + buf.DriveRes*stageCap + wireTerm
	}
	return d
}

// propagate computes arrival times in topological order.
func (e *engine) propagate() {
	nl := e.nl
	for id := range nl.Nets {
		e.netDelay[id] = e.computeNetDelay(id)
	}
	// PI nets launch at t=0 for setup analysis (conservative). For hold
	// analysis, primary inputs come from upstream registered logic, so the
	// earliest they can change is a clk-to-q after the edge.
	for _, pi := range nl.PINets {
		e.netArrive[pi] = e.netDelay[pi]
		e.minNetArrive[pi] = e.lib.ClkToQ + e.netDelay[pi]
	}
	for _, ci := range e.order {
		c := nl.Cells[ci]
		if c.Kind == lib.DFF {
			// Launch: Q arrives clk-to-q plus its net delay.
			e.arrival[ci] = e.lib.ClkToQ
			e.minArrival[ci] = e.lib.ClkToQ
			if c.Out >= 0 {
				e.netArrive[c.Out] = e.arrival[ci] + e.netDelay[c.Out]
				e.minNetArrive[c.Out] = e.minArrival[ci] + e.netDelay[c.Out]
			}
			continue
		}
		worst := 0.0
		best := math.Inf(1)
		arg := -1
		for _, in := range c.Inputs {
			if a := e.netArrive[in]; a > worst {
				worst = a
				arg = in
			}
			if a := e.minNetArrive[in]; a < best {
				best = a
			}
		}
		if arg < 0 {
			best = 0
		}
		e.arrival[ci] = worst
		e.minArrival[ci] = best
		e.argmax[ci] = arg
		if c.Out >= 0 {
			e.netArrive[c.Out] = worst + e.netDelay[c.Out]
			e.minNetArrive[c.Out] = best + e.netDelay[c.Out]
		}
	}
}

// minEndpointArrival returns the earliest endpoint arrival (hold analysis).
func (e *engine) minEndpointArrival() float64 {
	best := math.Inf(1)
	for _, c := range e.nl.Cells {
		if c.Kind != lib.DFF || len(c.Inputs) == 0 {
			continue
		}
		if a := e.minNetArrive[c.Inputs[0]]; a < best {
			best = a
		}
	}
	if math.IsInf(best, 1) {
		best = 0
	}
	return best
}

// criticalArrival returns the worst endpoint arrival (register D pins and
// primary outputs) and that endpoint's net.
func (e *engine) criticalArrival() (float64, int) {
	worst, arg := 0.0, -1
	for ci, c := range e.nl.Cells {
		if c.Kind != lib.DFF || len(c.Inputs) == 0 {
			continue
		}
		if a := e.netArrive[c.Inputs[0]]; a > worst {
			worst = a
			arg = c.Inputs[0]
		}
		_ = ci
	}
	for _, po := range e.nl.PONets {
		if a := e.netArrive[po]; a > worst {
			worst = a
			arg = po
		}
	}
	return worst, arg
}

func (e *engine) achievedPeriod() float64 {
	crit, _ := e.criticalArrival()
	return crit + e.lib.SetupTime + e.opt.SkewPS
}

// upsizeCritical backtraces the worst timing paths and upsizes the cells on
// them. Sizing is selective — only path cells grow — so the drive-strength
// gain is not cancelled by load growth on off-path sinks, mirroring how a
// real optimiser's sizing converges. Returns the number of sizes changed.
func (e *engine) upsizeCritical() int {
	crit, _ := e.criticalArrival()
	if crit <= 0 {
		return 0
	}
	// Collect endpoints within 3% of the worst arrival.
	type endpoint struct{ net int }
	var eps []endpoint
	threshold := 0.97 * crit
	for _, c := range e.nl.Cells {
		if c.Kind != lib.DFF || len(c.Inputs) == 0 {
			continue
		}
		if e.netArrive[c.Inputs[0]] >= threshold {
			eps = append(eps, endpoint{c.Inputs[0]})
		}
	}
	for _, po := range e.nl.PONets {
		if e.netArrive[po] >= threshold {
			eps = append(eps, endpoint{po})
		}
	}
	const maxEndpoints = 32
	if len(eps) > maxEndpoints {
		eps = eps[:maxEndpoints]
	}
	changed := 0
	seen := make(map[int]bool)
	for _, ep := range eps {
		net := ep.net
		for net >= 0 {
			ci := e.nl.Nets[net].Driver
			if ci < 0 {
				break
			}
			c := &e.nl.Cells[ci]
			if c.Kind == lib.DFF {
				break // launch point reached
			}
			if !seen[ci] && c.Size < e.opt.MaxSize {
				ns := c.Size * 1.5
				if ns > e.opt.MaxSize {
					ns = e.opt.MaxSize
				}
				c.Size = ns
				changed++
			}
			seen[ci] = true
			net = e.argmax[ci]
		}
	}
	return changed
}

func (e *engine) result(passes, upsized int) *Result {
	crit, _ := e.criticalArrival()
	achieved := crit + e.lib.SetupTime + e.opt.SkewPS
	minPath := e.minEndpointArrival()
	// Hold check: data launched at an edge must not race through before the
	// capture register's hold window (skew makes capture clocks late).
	const holdTimePS = 8
	return &Result{
		CriticalPathPS:   crit,
		AchievedPeriodPS: achieved,
		SlackPS:          e.opt.TargetPeriodPS - achieved,
		MinPathPS:        minPath,
		HoldSlackPS:      minPath - e.opt.SkewPS - holdTimePS,
		Passes:           passes,
		Upsized:          upsized,
	}
}

// PathDepthEstimatePS is a coarse lower bound on the design's critical path
// from logic levels alone (diagnostic aid).
func PathDepthEstimatePS(nl *netlist.Netlist, l *lib.Library) float64 {
	lvl, err := nl.Levels()
	if err != nil {
		return math.NaN()
	}
	maxL := 0
	for _, v := range lvl {
		if v > maxL {
			maxL = v
		}
	}
	return float64(maxL) * l.Cell(lib.Nand2).Intrinsic
}
