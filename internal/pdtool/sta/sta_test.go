package sta

import (
	"testing"

	"ppatuner/internal/pdtool/drv"
	"ppatuner/internal/pdtool/lib"
	"ppatuner/internal/pdtool/netlist"
	"ppatuner/internal/pdtool/place"
	"ppatuner/internal/pdtool/route"
)

type rig struct {
	nl  *netlist.Netlist
	lib *lib.Library
	pl  *place.Result
	fix *drv.Result
	rt  *route.Result
}

func buildRig(t *testing.T) *rig {
	t.Helper()
	nl, err := netlist.MAC("m", 10)
	if err != nil {
		t.Fatal(err)
	}
	l := lib.Default7nm()
	pl, err := place.Place(nl, l, place.Options{TargetUtil: 0.7, MaxBinDensity: 0.85, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	fix, err := drv.Fix(nl, l, pl, drv.Limits{MaxFanout: 32, MaxCapFF: 100, MaxTransPS: 250, MaxLenUm: 300})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := route.Route(nl, pl, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{nl: nl, lib: l, pl: pl, fix: fix, rt: rt}
}

func baseOpts() Options {
	return Options{TargetPeriodPS: 900, UncertaintyPS: 40, RCFactor: 1.1, SkewPS: 10, OptPasses: 0}
}

func TestAnalyzeBasics(t *testing.T) {
	r := buildRig(t)
	res, err := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.CriticalPathPS <= 0 {
		t.Fatal("non-positive critical path")
	}
	if res.AchievedPeriodPS <= res.CriticalPathPS {
		t.Error("achieved period must include setup and skew")
	}
	if res.SlackPS != 900-res.AchievedPeriodPS {
		t.Error("slack inconsistent with target")
	}
	// A 10-bit MAC at 7nm: the critical path should land in hundreds of ps,
	// not fs or µs.
	if res.CriticalPathPS < 100 || res.CriticalPathPS > 5000 {
		t.Errorf("critical path %g ps implausible", res.CriticalPathPS)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	r := buildRig(t)
	a, err := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.CriticalPathPS != b.CriticalPathPS {
		t.Error("STA not deterministic")
	}
}

func TestRCFactorSlowsDesign(t *testing.T) {
	r := buildRig(t)
	lo := baseOpts()
	lo.RCFactor = 1.0
	hi := baseOpts()
	hi.RCFactor = 1.3
	a, err := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, lo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !(b.CriticalPathPS > a.CriticalPathPS) {
		t.Errorf("rc factor 1.3 path %g !> 1.0 path %g", b.CriticalPathPS, a.CriticalPathPS)
	}
}

func TestSkewAddsToPeriod(t *testing.T) {
	r := buildRig(t)
	lo := baseOpts()
	lo.SkewPS = 0
	hi := baseOpts()
	hi.SkewPS = 30
	a, _ := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, lo)
	b, _ := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, hi)
	if d := b.AchievedPeriodPS - a.AchievedPeriodPS; d < 29.9 || d > 30.1 {
		t.Errorf("skew delta = %g, want 30", d)
	}
}

func TestOptimizeImprovesDelay(t *testing.T) {
	r := buildRig(t)
	noOpt, err := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Fresh copy: Optimize mutates sizes.
	r2 := buildRig(t)
	opt := baseOpts()
	opt.TargetPeriodPS = noOpt.AchievedPeriodPS * 0.7 // force pressure
	opt.OptPasses = 6
	opt.MaxSize = 8
	res, err := Optimize(r2.nl, r2.lib, r2.pl, r2.fix, r2.rt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Upsized == 0 {
		t.Fatal("optimisation under pressure upsized nothing")
	}
	if !(res.AchievedPeriodPS < noOpt.AchievedPeriodPS) {
		t.Errorf("optimised period %g !< unoptimised %g", res.AchievedPeriodPS, noOpt.AchievedPeriodPS)
	}
}

func TestOptimizeStopsWhenMet(t *testing.T) {
	r := buildRig(t)
	opt := baseOpts()
	opt.TargetPeriodPS = 1e6 // trivially met
	opt.OptPasses = 6
	res, err := Optimize(r.nl, r.lib, r.pl, r.fix, r.rt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Upsized != 0 {
		t.Errorf("upsized %d cells with a trivially met target", res.Upsized)
	}
}

func TestMaxAllowedDelayRelaxes(t *testing.T) {
	r1 := buildRig(t)
	base, _ := Analyze(r1.nl, r1.lib, r1.pl, r1.fix, r1.rt, baseOpts())
	target := base.AchievedPeriodPS * 0.9

	strict := buildRig(t)
	so := baseOpts()
	so.TargetPeriodPS = target
	so.OptPasses = 6
	so.MaxAllowedDelayPS = 0
	sres, err := Optimize(strict.nl, strict.lib, strict.pl, strict.fix, strict.rt, so)
	if err != nil {
		t.Fatal(err)
	}
	relaxed := buildRig(t)
	ro := so
	ro.MaxAllowedDelayPS = 1e6 // any slack accepted
	rres, err := Optimize(relaxed.nl, relaxed.lib, relaxed.pl, relaxed.fix, relaxed.rt, ro)
	if err != nil {
		t.Fatal(err)
	}
	if !(rres.Upsized <= sres.Upsized) {
		t.Errorf("relaxed allowance upsized more (%d) than strict (%d)", rres.Upsized, sres.Upsized)
	}
	if rres.Upsized != 0 {
		t.Errorf("fully relaxed allowance still upsized %d cells", rres.Upsized)
	}
}

func TestUncertaintyIncreasesEffort(t *testing.T) {
	r1 := buildRig(t)
	base, _ := Analyze(r1.nl, r1.lib, r1.pl, r1.fix, r1.rt, baseOpts())
	target := base.AchievedPeriodPS * 1.02 // just met without margin

	noMargin := buildRig(t)
	o1 := baseOpts()
	o1.TargetPeriodPS = target
	o1.UncertaintyPS = 0
	o1.OptPasses = 6
	res1, err := Optimize(noMargin.nl, noMargin.lib, noMargin.pl, noMargin.fix, noMargin.rt, o1)
	if err != nil {
		t.Fatal(err)
	}
	margin := buildRig(t)
	o2 := o1
	o2.UncertaintyPS = 150
	res2, err := Optimize(margin.nl, margin.lib, margin.pl, margin.fix, margin.rt, o2)
	if err != nil {
		t.Fatal(err)
	}
	if !(res2.Upsized > res1.Upsized) {
		t.Errorf("uncertainty margin did not increase optimisation: %d vs %d upsizes", res2.Upsized, res1.Upsized)
	}
}

func TestOptionsValidation(t *testing.T) {
	r := buildRig(t)
	bad := baseOpts()
	bad.TargetPeriodPS = 0
	if _, err := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, bad); err == nil {
		t.Error("zero target period accepted")
	}
}

func TestPathDepthEstimate(t *testing.T) {
	nl, err := netlist.MAC("m", 8)
	if err != nil {
		t.Fatal(err)
	}
	l := lib.Default7nm()
	if d := PathDepthEstimatePS(nl, l); d <= 0 {
		t.Errorf("depth estimate %g", d)
	}
}

func TestHoldAnalysis(t *testing.T) {
	r := buildRig(t)
	res, err := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !(res.MinPathPS > 0) {
		t.Fatalf("min path = %g, want positive", res.MinPathPS)
	}
	if !(res.MinPathPS <= res.CriticalPathPS) {
		t.Errorf("min path %g > critical path %g", res.MinPathPS, res.CriticalPathPS)
	}
	// Hold slack worsens with skew.
	hi := baseOpts()
	hi.SkewPS = 100
	res2, err := Analyze(r.nl, r.lib, r.pl, r.fix, r.rt, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !(res2.HoldSlackPS < res.HoldSlackPS) {
		t.Errorf("more skew did not reduce hold slack: %g vs %g", res2.HoldSlackPS, res.HoldSlackPS)
	}
	// A register-to-register design at 7nm with a clk-to-q of 25ps should
	// not be hold-critical at 10ps skew.
	if res.HoldSlackPS < 0 {
		t.Errorf("hold slack %g negative at nominal skew", res.HoldSlackPS)
	}
}
