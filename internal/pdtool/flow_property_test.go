package pdtool

import (
	"math/rand"
	"testing"

	"ppatuner/internal/param"
)

// TestPropertyFreqMonotonePower: at any operating point, raising only the
// target frequency must raise power (dynamic power is linear in f) — a
// global invariant of the flow, not just of one corner.
func TestPropertyFreqMonotonePower(t *testing.T) {
	s := param.Target1Space()
	rng := rand.New(rand.NewSource(61))
	freqIdx := s.Index("freq")
	for trial := 0; trial < 6; trial++ {
		u := make([]float64, s.Dim())
		for i := range u {
			u[i] = rng.Float64()
		}
		u[freqIdx] = 0.1
		qLo, _, err := Run(SmallMAC(), s.MustConfig(u))
		if err != nil {
			t.Fatal(err)
		}
		u[freqIdx] = 0.9
		qHi, _, err := Run(SmallMAC(), s.MustConfig(u))
		if err != nil {
			t.Fatal(err)
		}
		// The heuristic field and jitter can add a few percent each way;
		// the 24% frequency step must dominate them.
		if !(qHi.PowerMW > qLo.PowerMW) {
			t.Errorf("trial %d: power %g at high freq !> %g at low freq", trial, qHi.PowerMW, qLo.PowerMW)
		}
	}
}

// TestPropertyUtilizationMonotoneArea: raising only max_Density (the die
// utilisation target) must not grow the die.
func TestPropertyUtilizationMonotoneArea(t *testing.T) {
	s := param.Target1Space()
	rng := rand.New(rand.NewSource(62))
	idx := s.Index("max_Density")
	for trial := 0; trial < 6; trial++ {
		u := make([]float64, s.Dim())
		for i := range u {
			u[i] = rng.Float64()
		}
		u[idx] = 0.0
		qLo, _, err := Run(SmallMAC(), s.MustConfig(u))
		if err != nil {
			t.Fatal(err)
		}
		u[idx] = 1.0
		qHi, _, err := Run(SmallMAC(), s.MustConfig(u))
		if err != nil {
			t.Fatal(err)
		}
		// Allow the few-percent heuristic/jitter ripple; catch inversions.
		if qHi.AreaUm2 > qLo.AreaUm2*1.05 {
			t.Errorf("trial %d: area %g at util 0.9 > %g at util 0.65", trial, qHi.AreaUm2, qLo.AreaUm2)
		}
	}
}

// TestHoldReportedInFlow: the timing report must carry hold analysis.
func TestHoldReportedInFlow(t *testing.T) {
	s := param.Target1Space()
	u := make([]float64, s.Dim())
	for i := range u {
		u[i] = 0.5
	}
	_, rep, err := Run(SmallMAC(), s.MustConfig(u))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timing.MinPathPS <= 0 {
		t.Errorf("min path %g not reported", rep.Timing.MinPathPS)
	}
	if rep.Timing.MinPathPS > rep.Timing.CriticalPathPS {
		t.Error("min path exceeds critical path")
	}
}

// TestEffortKnobsLadder: the flowEffort ladder maps to strictly increasing
// engine budgets.
func TestEffortKnobsLadder(t *testing.T) {
	pi1, op1, ms1 := effortKnobs("standard")
	pi2, op2, ms2 := effortKnobs("high")
	pi3, op3, ms3 := effortKnobs("extreme")
	if !(pi1 < pi2 && pi2 < pi3) {
		t.Error("placement iterations not increasing with effort")
	}
	if !(op1 < op2 && op2 < op3) {
		t.Error("optimisation passes not increasing with effort")
	}
	if !(ms1 < ms2 && ms2 < ms3) {
		t.Error("max drive size not increasing with effort")
	}
	// Unknown strings fall back to standard.
	piX, opX, msX := effortKnobs("bogus")
	if piX != pi1 || opX != op1 || msX != ms1 {
		t.Error("unknown effort does not default to standard")
	}
}
