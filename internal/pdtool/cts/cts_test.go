package cts

import (
	"testing"

	"ppatuner/internal/pdtool/lib"
)

func TestSynthesizeBasics(t *testing.T) {
	l := lib.Default7nm()
	res, err := Synthesize(l, 200, 50, 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Buffers <= 0 || res.WirelenUm <= 0 || res.SwitchedCapFF <= 0 {
		t.Errorf("degenerate tree: %+v", res)
	}
	if res.SkewPS <= 0 || res.InsertionPS <= 0 {
		t.Errorf("non-positive skew/insertion: %+v", res)
	}
	if res.AreaUm2 <= 0 || res.LeakageNW <= 0 {
		t.Errorf("non-positive buffer overheads: %+v", res)
	}
}

func TestSynthesizeScalesWithRegisters(t *testing.T) {
	l := lib.Default7nm()
	small, err := Synthesize(l, 100, 40, 40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Synthesize(l, 2000, 40, 40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(big.Buffers > small.Buffers) {
		t.Errorf("more registers, fewer buffers: %d vs %d", big.Buffers, small.Buffers)
	}
	if !(big.SwitchedCapFF > small.SwitchedCapFF) {
		t.Error("more registers did not increase switched cap")
	}
	if !(big.Levels >= small.Levels) {
		t.Errorf("levels decreased: %d vs %d", big.Levels, small.Levels)
	}
}

func TestPowerDrivenTradesPowerForSkew(t *testing.T) {
	l := lib.Default7nm()
	normal, err := Synthesize(l, 1000, 60, 60, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Synthesize(l, 1000, 60, 60, Options{PowerDriven: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(pd.SwitchedCapFF < normal.SwitchedCapFF) {
		t.Errorf("power-driven cap %g !< normal %g", pd.SwitchedCapFF, normal.SwitchedCapFF)
	}
	if !(pd.SkewPS > normal.SkewPS) {
		t.Errorf("power-driven skew %g !> normal %g", pd.SkewPS, normal.SkewPS)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	l := lib.Default7nm()
	if _, err := Synthesize(l, 0, 10, 10, Options{}); err == nil {
		t.Error("0 registers accepted")
	}
	if _, err := Synthesize(l, 10, 0, 10, Options{}); err == nil {
		t.Error("empty core accepted")
	}
}

func TestSynthesizeSingleLeaf(t *testing.T) {
	l := lib.Default7nm()
	// Few registers: everything fits under one leaf buffer, zero levels.
	res, err := Synthesize(l, 5, 10, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != 0 || res.Buffers != 0 {
		t.Errorf("tiny design grew a tree: %+v", res)
	}
	if res.SwitchedCapFF <= 0 {
		t.Error("clock pins must still switch")
	}
}

func TestBiggerDieLongerClockWires(t *testing.T) {
	l := lib.Default7nm()
	smallDie, err := Synthesize(l, 500, 30, 30, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bigDie, err := Synthesize(l, 500, 120, 120, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(bigDie.WirelenUm > smallDie.WirelenUm) {
		t.Errorf("bigger die has shorter clock wires: %g vs %g", bigDie.WirelenUm, smallDie.WirelenUm)
	}
}
