// Package cts models clock-tree synthesis: an H-tree of clock buffers over
// the placed registers, yielding buffer count, clock wirelength, skew, and
// the capacitance the clock net switches every cycle. The tool's
// clock_power_driven switch trades a leaner tree (lower clock power) for a
// little extra skew, as the Innovus option does.
package cts

import (
	"fmt"
	"math"

	"ppatuner/internal/pdtool/lib"
)

// Options configures clock-tree synthesis.
type Options struct {
	// PowerDriven enables power-aware clustering (clock_power_driven).
	PowerDriven bool
	// LeafFanout is the register count served per leaf buffer (default 24).
	LeafFanout int
}

// Result describes the synthesised clock tree.
type Result struct {
	Levels      int
	Buffers     int
	WirelenUm   float64
	SkewPS      float64
	InsertionPS float64
	// SwitchedCapFF is the capacitance toggled each clock edge: tree wire,
	// buffer input pins, and register clock pins.
	SwitchedCapFF float64
	// Leakage of the clock buffers, nW.
	LeakageNW float64
	// Area of the clock buffers, µm².
	AreaUm2 float64
}

// Synthesize builds the clock-tree model for nRegs registers on a
// coreW×coreH die.
func Synthesize(l *lib.Library, nRegs int, coreW, coreH float64, opt Options) (*Result, error) {
	if nRegs <= 0 {
		return nil, fmt.Errorf("cts: %d registers", nRegs)
	}
	if coreW <= 0 || coreH <= 0 {
		return nil, fmt.Errorf("cts: empty core %gx%g", coreW, coreH)
	}
	leaf := opt.LeafFanout
	if leaf <= 0 {
		leaf = 24
	}
	leaves := (nRegs + leaf - 1) / leaf
	levels := 0
	for 1<<(2*levels) < leaves { // 4^levels >= leaves
		levels++
	}

	buffers := 0
	wirelen := 0.0
	side := (coreW + coreH) / 2
	for lv := 1; lv <= levels; lv++ {
		branches := 1 << (2 * lv) // 4^lv
		buffers += branches
		// Each level-lv branch spans side / 2^lv.
		wirelen += float64(branches) * side / float64(int(1)<<lv)
	}
	// Leaf-level stubs to the registers.
	avgStub := side / (2 * math.Sqrt(float64(leaves)+1))
	wirelen += float64(nRegs) * avgStub * 0.5
	if opt.PowerDriven {
		// Power-aware clustering reroutes the tree for capacitance at the
		// cost of balance: shorter wires, slightly worse skew (applied
		// below).
		wirelen *= 0.85
	}

	clkbuf := l.Cell(lib.ClkBuf)
	dff := l.Cell(lib.DFF)
	// Clock pin cap ≈ 60% of the D-pin cap model.
	clkPin := 0.6 * dff.InCap

	res := &Result{
		Levels:        levels,
		Buffers:       buffers,
		WirelenUm:     wirelen,
		SwitchedCapFF: wirelen*l.WireCapPerUm + float64(buffers)*clkbuf.InCap + float64(nRegs)*clkPin,
		LeakageNW:     float64(buffers) * clkbuf.Leakage,
		AreaUm2:       float64(buffers) * clkbuf.Area,
	}
	// Skew: per-level mismatch accumulates; power-driven trees are slightly
	// less balanced.
	res.SkewPS = 4 + 1.8*float64(levels)
	res.InsertionPS = float64(levels) * (clkbuf.Intrinsic + l.WireDelayPS(clkbuf.DriveRes, side/float64(uintMax(1, levels*2)), clkbuf.InCap*4))
	if opt.PowerDriven {
		res.SkewPS *= 1.30
	}
	return res, nil
}

func uintMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}
