package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// WorkerKill schedules one SIGKILL: worker Worker dies at virtual time At.
// "Dies" means whatever the harness under test makes of it — a real SIGKILL
// for cmd/ppacoord's -kill flag, a severed in-memory connection for unit
// tests — the schedule only decides *when*.
type WorkerKill struct {
	Worker int
	At     time.Duration
}

// ProcFaults describes process-level fault injection for distributed
// campaigns: worker deaths, heartbeat loss, and delayed or duplicated
// result delivery. Like Schedule, every decision is a pure function of the
// virtual timeline (durations since the campaign started), so each failure
// scenario is a fast deterministic unit test rather than a flaky
// sleep-and-hope integration run.
type ProcFaults struct {
	// Kills are the scheduled worker deaths, in any order.
	Kills []WorkerKill
	// DropHeartbeats are windows during which every heartbeat vanishes in
	// transit — the coordinator sees silence and lets the lease expire even
	// though the worker is alive and computing (the zombie-result scenario).
	DropHeartbeats []Window
	// ResultDelay holds every result message in transit for this long
	// before delivery, modelling a slow network or a GC'd pipe.
	ResultDelay time.Duration
	// DuplicateResults delivers every result message twice, modelling a
	// retransmit layer; merge must be idempotent.
	DuplicateResults bool
	// CoordKill SIGKILLs the primary coordinator itself at CoordKillAt —
	// the fail-over rehearsal: a standby watching the beacon must adopt
	// the checkpoint and finish the campaign with identical results.
	CoordKill   bool
	CoordKillAt time.Duration
	// SplitBrain mutes the primary's beacon at SplitBrainAt while it keeps
	// running — the standby promotes against a live primary, and checkpoint
	// fencing must depose the old one instead of letting both write.
	SplitBrain   bool
	SplitBrainAt time.Duration
}

// Enabled reports whether the spec injects anything.
func (p ProcFaults) Enabled() bool {
	return len(p.Kills) > 0 || len(p.DropHeartbeats) > 0 || p.ResultDelay > 0 ||
		p.DuplicateResults || p.CoordKill || p.SplitBrain
}

// validate rejects malformed specs at construction.
func (p ProcFaults) validate() error {
	for i, k := range p.Kills {
		if k.Worker < 0 || k.At < 0 {
			return fmt.Errorf("chaos: worker kill %d (worker %d at %v) is malformed", i, k.Worker, k.At)
		}
	}
	for i, w := range p.DropHeartbeats {
		if w.Start < 0 || w.End <= w.Start {
			return fmt.Errorf("chaos: heartbeat-drop window %d [%v, %v) is malformed", i, w.Start, w.End)
		}
	}
	if p.ResultDelay < 0 {
		return fmt.Errorf("chaos: negative result delay %v", p.ResultDelay)
	}
	if p.CoordKill && p.CoordKillAt < 0 {
		return fmt.Errorf("chaos: negative coordinator kill time %v", p.CoordKillAt)
	}
	if p.SplitBrain && p.SplitBrainAt < 0 {
		return fmt.Errorf("chaos: negative split-brain time %v", p.SplitBrainAt)
	}
	return nil
}

// KillAt returns the scheduled death time for a worker, if any. With several
// entries for one worker the earliest wins (it can only die once).
func (p ProcFaults) KillAt(worker int) (time.Duration, bool) {
	var at time.Duration
	found := false
	for _, k := range p.Kills {
		if k.Worker != worker {
			continue
		}
		if !found || k.At < at {
			at, found = k.At, true
		}
	}
	return at, found
}

// DropHeartbeat reports whether a heartbeat sent at virtual time t is lost.
func (p ProcFaults) DropHeartbeat(t time.Duration) bool {
	for _, w := range p.DropHeartbeats {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// String renders the kill schedule in the CLI "W@T,W@T" form.
func (p ProcFaults) String() string {
	if !p.Enabled() {
		return "off"
	}
	parts := make([]string, 0, len(p.Kills)+4)
	for _, k := range p.Kills {
		parts = append(parts, fmt.Sprintf("%d@%v", k.Worker, k.At))
	}
	if p.CoordKill {
		parts = append(parts, fmt.Sprintf("coord@%v", p.CoordKillAt))
	}
	if p.SplitBrain {
		parts = append(parts, fmt.Sprintf("split@%v", p.SplitBrainAt))
	}
	if len(p.DropHeartbeats) > 0 {
		parts = append(parts, fmt.Sprintf("drop-hb:%d", len(p.DropHeartbeats)))
	}
	if p.ResultDelay > 0 {
		parts = append(parts, fmt.Sprintf("delay:%v", p.ResultDelay))
	}
	if p.DuplicateResults {
		parts = append(parts, "dup")
	}
	return strings.Join(parts, ",")
}

// ParseKillSchedule reads the CLI spelling "W@T[,W@T...]" (e.g. "1@8s,0@30s":
// SIGKILL worker 1 eight seconds in, worker 0 at thirty). Two special
// targets address the coordinator itself: "coord@T" SIGKILLs the primary
// coordinator at T, and "split@T" mutes its beacon at T without killing it
// (the split-brain rehearsal). With several coord@ or split@ entries the
// earliest wins. The empty string (or "off") is the disabled schedule.
func ParseKillSchedule(spec string) (ProcFaults, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return ProcFaults{}, nil
	}
	var p ProcFaults
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		worker, at, ok := strings.Cut(part, "@")
		if !ok {
			return ProcFaults{}, fmt.Errorf("chaos: kill spec %q wants W@T (e.g. 1@8s, coord@30s, split@40s)", part)
		}
		t, err := time.ParseDuration(strings.TrimSpace(at))
		if err != nil {
			return ProcFaults{}, fmt.Errorf("chaos: kill spec %q: %w", part, err)
		}
		if t < 0 {
			return ProcFaults{}, fmt.Errorf("chaos: kill spec %q wants a non-negative time", part)
		}
		switch target := strings.TrimSpace(worker); target {
		case "coord":
			if !p.CoordKill || t < p.CoordKillAt {
				p.CoordKill, p.CoordKillAt = true, t
			}
		case "split":
			if !p.SplitBrain || t < p.SplitBrainAt {
				p.SplitBrain, p.SplitBrainAt = true, t
			}
		default:
			w, err := strconv.Atoi(target)
			if err != nil || w < 0 {
				return ProcFaults{}, fmt.Errorf("chaos: kill spec %q: worker %q is not a non-negative index, coord, or split", part, worker)
			}
			p.Kills = append(p.Kills, WorkerKill{Worker: w, At: t})
		}
	}
	if err := p.validate(); err != nil {
		return ProcFaults{}, err
	}
	return p, nil
}
