// Package chaos is the fault-injection harness for the evaluation path: it
// wraps a tool evaluator and makes it misbehave the way a real P&R engine
// does — transient errors (licence drops, farm preemption), hangs, outright
// crashes, and corrupted QoR reports — at configurable rates.
//
// Injection is deterministic: each decision is drawn from a hash of
// (seed, candidate, attempt), not from shared RNG state, so a run injects
// the same faults regardless of goroutine scheduling, retries can be made
// to succeed on the next attempt, and every failure-path test is exactly
// reproducible.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"ppatuner/internal/clock"
)

// ErrTransient is the injected transient tool failure.
var ErrTransient = errors.New("chaos: injected transient tool failure")

// Rates sets per-attempt injection probabilities. They are cumulative
// disjoint slices of [0,1): an attempt suffers at most one fault, and
// Transient+Hang+Panic+Corrupt must stay <= 1.
type Rates struct {
	// Transient is the probability of a plain retryable error.
	Transient float64
	// Hang is the probability the tool blocks for HangFor before failing —
	// the case a per-evaluation deadline exists for.
	Hang float64
	// Panic is the probability the tool adapter panics.
	Panic float64
	// Corrupt is the probability the tool "succeeds" but reports a QoR
	// vector with a NaN in it.
	Corrupt float64
}

func (r Rates) total() float64 { return r.Transient + r.Hang + r.Panic + r.Corrupt }

// Options configures an Injector.
type Options struct {
	// Seed drives the per-(candidate, attempt) fault draws.
	Seed int64
	// Rates are the injection probabilities.
	Rates Rates
	// Outage adds time-correlated downtime windows on top of the i.i.d.
	// Rates: while a window is open on the injector's virtual timeline
	// (clock time since New), every attempt fails with ErrOutage before any
	// per-attempt fault draw is made. Outage failures therefore neither
	// consume a (candidate, attempt) draw nor shift the i.i.d. schedule.
	Outage Schedule
	// HangFor is how long an injected hang blocks (default 30s). Hangs
	// sleep on Clock and observe ctx cancellation in both wrappers, so a
	// deadline (or a fake clock) ends them without stranding a goroutine in
	// a real 30s sleep.
	HangFor time.Duration
	// Clock supplies the injector's timeline: outage-window membership and
	// hang sleeps. Defaults to the wall clock; tests install a clock.Fake
	// so outage scenarios run in microseconds.
	Clock clock.Clock
}

// Injector deterministically injects faults into an evaluator.
type Injector struct {
	opt   Options
	clk   clock.Clock
	start time.Time

	mu       sync.Mutex
	attempts map[int]int
	counts   Counts
}

// Counts reports how many of each fault the injector has dealt.
type Counts struct {
	Transient, Hang, Panic, Corrupt, Outage, Clean int
}

// Total is the number of injected faults (everything but Clean).
func (c Counts) Total() int { return c.Transient + c.Hang + c.Panic + c.Corrupt + c.Outage }

// New validates the rates and builds an injector.
func New(opt Options) (*Injector, error) {
	r := opt.Rates
	for _, v := range []float64{r.Transient, r.Hang, r.Panic, r.Corrupt} {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return nil, fmt.Errorf("chaos: rate %v out of [0,1]", v)
		}
	}
	if r.total() > 1 {
		return nil, fmt.Errorf("chaos: rates sum to %v > 1", r.total())
	}
	if err := opt.Outage.validate(); err != nil {
		return nil, err
	}
	if opt.HangFor <= 0 {
		opt.HangFor = 30 * time.Second
	}
	if opt.Clock == nil {
		opt.Clock = clock.Real()
	}
	return &Injector{
		opt:      opt,
		clk:      opt.Clock,
		start:    opt.Clock.Now(),
		attempts: map[int]int{},
	}, nil
}

// Elapsed is the injector's virtual timeline position: clock time since New.
// Outage-window membership is a function of it alone.
func (in *Injector) Elapsed() time.Duration { return in.clk.Now().Sub(in.start) }

// OutageRemaining reports how much of the current outage window is left
// (0 when the injector is up) — recovery logic sizes its pause with it.
func (in *Injector) OutageRemaining() time.Duration {
	return in.opt.Outage.Remaining(in.Elapsed())
}

// Counts returns a snapshot of the fault tally.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// Wrap makes a plain evaluator (the core.Evaluator shape — the signatures
// are kept unnamed so values flow between packages without conversion)
// faulty. Injected hangs sleep on the injector's Clock, so a fake clock
// collapses them to microseconds; with the real clock and no context there
// is nothing to cancel them, so undisciplined callers still pay HangFor —
// in their own goroutine, never a stranded extra one.
func (in *Injector) Wrap(eval func(i int) ([]float64, error)) func(i int) ([]float64, error) {
	return func(i int) ([]float64, error) {
		return in.invoke(context.Background(), i,
			func(context.Context) ([]float64, error) { return eval(i) })
	}
}

// WrapTool makes a context-aware tool (the robust.ToolFunc shape) faulty;
// injected hangs end early when ctx is cancelled, so deadline tests do not
// strand sleeping goroutines.
func (in *Injector) WrapTool(tool func(ctx context.Context, i int) ([]float64, error)) func(ctx context.Context, i int) ([]float64, error) {
	return func(ctx context.Context, i int) ([]float64, error) {
		return in.invoke(ctx, i,
			func(ctx context.Context) ([]float64, error) { return tool(ctx, i) })
	}
}

// invoke injects the fault for this attempt and acts on it: a correlated
// outage window (a function of the clock alone) takes precedence; otherwise
// the i.i.d. (candidate, attempt) draw decides.
func (in *Injector) invoke(ctx context.Context, i int, call func(context.Context) ([]float64, error)) ([]float64, error) {
	if in.opt.Outage.Enabled() {
		if el := in.Elapsed(); in.opt.Outage.InWindow(el) {
			in.count(func(c *Counts) { c.Outage++ })
			return nil, fmt.Errorf("chaos: candidate %d at +%v: %w", i, el.Round(time.Millisecond), ErrOutage)
		}
	}

	in.mu.Lock()
	attempt := in.attempts[i]
	in.attempts[i]++
	in.mu.Unlock()

	u := hash01(in.opt.Seed, i, attempt)
	r := in.opt.Rates
	switch {
	case u < r.Transient:
		in.count(func(c *Counts) { c.Transient++ })
		return nil, fmt.Errorf("chaos: candidate %d attempt %d: %w", i, attempt, ErrTransient)
	case u < r.Transient+r.Hang:
		in.count(func(c *Counts) { c.Hang++ })
		_ = in.clk.Sleep(ctx, in.opt.HangFor)
		// A hang that "wakes up" (no deadline configured, or context-aware
		// cancellation) still fails transiently, so undisciplined callers
		// cannot mistake it for success.
		return nil, fmt.Errorf("chaos: candidate %d attempt %d: hung for %v: %w", i, attempt, in.opt.HangFor, ErrTransient)
	case u < r.Transient+r.Hang+r.Panic:
		in.count(func(c *Counts) { c.Panic++ })
		panic(fmt.Sprintf("chaos: injected tool crash (candidate %d attempt %d)", i, attempt))
	case u < r.total():
		in.count(func(c *Counts) { c.Corrupt++ })
		y, err := call(ctx)
		if err != nil {
			return nil, err
		}
		bad := append([]float64(nil), y...)
		if len(bad) > 0 {
			bad[i%len(bad)] = math.NaN()
		}
		return bad, nil
	default:
		in.count(func(c *Counts) { c.Clean++ })
		return call(ctx)
	}
}

func (in *Injector) count(f func(*Counts)) {
	in.mu.Lock()
	f(&in.counts)
	in.mu.Unlock()
}

// hash01 maps (seed, candidate, attempt) to a uniform value in [0,1) via a
// splitmix64-style finaliser — stateless, so concurrent evaluation order
// cannot change which faults are injected.
func hash01(seed int64, i, attempt int) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	h += uint64(i) * 0xbf58476d1ce4e5b9
	h = mix64(h)
	h += uint64(attempt) * 0x94d049bb133111eb
	h = mix64(h)
	return float64(h>>11) / float64(1<<53)
}

func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
