package chaos

import (
	"fmt"
	"strings"
	"time"
)

// outageError is the sentinel behind ErrOutage. It implements the
// Outage() bool marker interface the resilience layer sniffs with errors.As,
// so real tool adapters can mark their own licence-server errors the same
// way without importing this package.
type outageError struct{}

func (outageError) Error() string { return "chaos: licence server down (injected outage)" }

// Outage marks this error as a correlated-infrastructure failure rather
// than a per-call fault.
func (outageError) Outage() bool { return true }

// ErrOutage is the injected correlated outage: every attempt landing inside
// a Schedule window fails with an error wrapping it, regardless of
// candidate or attempt number. Distinguish it from ErrTransient with
// errors.Is, or provider-agnostically via the Outage() bool interface.
var ErrOutage error = outageError{}

// Window is one downtime interval on the injector's virtual timeline
// (durations since the injector was built): [Start, End).
type Window struct {
	Start, End time.Duration
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.Start && t < w.End }

// Schedule describes time-correlated outage windows: intervals during which
// *every* evaluation attempt fails together, the way a licence-daemon or
// compute-farm outage takes down all in-flight tool runs at once. Unlike
// Rates, which draws an independent fault per (candidate, attempt), a
// Schedule's failures are a function of the (virtual) clock alone.
//
// Two forms compose the model:
//
//   - Explicit Windows pin exact downtime intervals — the form tests use.
//   - A periodic spec (Period, Down, Jitter, Seed) derives window k inside
//     every [k·Period, (k+1)·Period) stripe: the window starts at
//     k·Period + u_k·Jitter·(Period−Down) for a seed-derived u_k ∈ [0,1)
//     and lasts Down. Jitter = 0 is strict licence-server maintenance;
//     Jitter near 1 models bursty farm preemption. Windows never overlap
//     or cross stripe boundaries, so membership is O(1) and deterministic.
//
// When both are set, explicit Windows win. The zero Schedule is disabled.
type Schedule struct {
	// Period is the stripe length of the periodic form (> Down).
	Period time.Duration
	// Down is how long each periodic window lasts.
	Down time.Duration
	// Jitter in [0,1) shifts each periodic window inside its stripe by a
	// seed-derived fraction of the slack (Period − Down).
	Jitter float64
	// Seed drives the per-window jitter draws; independent of the fault
	// seed so outage placement and i.i.d. faults do not correlate.
	Seed int64
	// Windows, when non-empty, are the exact downtime intervals (explicit
	// form; Period/Down/Jitter are ignored).
	Windows []Window
}

// scheduleSeedSalt decorrelates window-jitter draws from the injector's
// per-(candidate, attempt) fault draws that may share the same seed.
const scheduleSeedSalt = 0x6f757461676573 // "outages"

// Enabled reports whether the schedule injects anything.
func (s Schedule) Enabled() bool {
	return len(s.Windows) > 0 || (s.Period > 0 && s.Down > 0)
}

// validate rejects malformed schedules at injector construction.
func (s Schedule) validate() error {
	if len(s.Windows) > 0 {
		for i, w := range s.Windows {
			if w.Start < 0 || w.End <= w.Start {
				return fmt.Errorf("chaos: outage window %d [%v, %v) is malformed", i, w.Start, w.End)
			}
		}
		return nil
	}
	if s.Period == 0 && s.Down == 0 {
		return nil // disabled
	}
	if s.Period <= 0 || s.Down <= 0 {
		return fmt.Errorf("chaos: outage schedule wants Period and Down > 0, got %v/%v", s.Period, s.Down)
	}
	if s.Down >= s.Period {
		return fmt.Errorf("chaos: outage Down %v must be shorter than Period %v", s.Down, s.Period)
	}
	if s.Jitter < 0 || s.Jitter >= 1 {
		return fmt.Errorf("chaos: outage Jitter %v out of [0,1)", s.Jitter)
	}
	return nil
}

// WindowAt returns the downtime window covering virtual time t, if any.
func (s Schedule) WindowAt(t time.Duration) (Window, bool) {
	if t < 0 || !s.Enabled() {
		return Window{}, false
	}
	if len(s.Windows) > 0 {
		for _, w := range s.Windows {
			if w.Contains(t) {
				return w, true
			}
		}
		return Window{}, false
	}
	k := int(t / s.Period)
	w := s.periodicWindow(k)
	if w.Contains(t) {
		return w, true
	}
	return Window{}, false
}

// periodicWindow derives window k of the periodic form.
func (s Schedule) periodicWindow(k int) Window {
	slack := s.Period - s.Down
	shift := time.Duration(hash01(s.Seed^scheduleSeedSalt, k, 0) * s.Jitter * float64(slack))
	start := time.Duration(k)*s.Period + shift
	return Window{Start: start, End: start + s.Down}
}

// InWindow reports whether virtual time t lies inside a downtime window.
func (s Schedule) InWindow(t time.Duration) bool {
	_, ok := s.WindowAt(t)
	return ok
}

// Remaining returns how long the window covering t still has to run (0 when
// t is up). Recovery logic uses it to size pauses instead of polling.
func (s Schedule) Remaining(t time.Duration) time.Duration {
	w, ok := s.WindowAt(t)
	if !ok {
		return 0
	}
	return w.End - t
}

// String renders the periodic spec in the CLI "PERIOD/DOWN" form (explicit
// windows are listed verbatim).
func (s Schedule) String() string {
	if !s.Enabled() {
		return "off"
	}
	if len(s.Windows) > 0 {
		parts := make([]string, len(s.Windows))
		for i, w := range s.Windows {
			parts[i] = fmt.Sprintf("[%v,%v)", w.Start, w.End)
		}
		return strings.Join(parts, " ")
	}
	return fmt.Sprintf("%v/%v", s.Period, s.Down)
}

// ParseSchedule reads the CLI spelling "PERIOD/DOWN" (e.g. "60s/10s": a
// 10-second outage inside every 60-second stripe). The empty string (or
// "off") is the disabled schedule; a spelled-out "0s/0s" is rejected rather
// than silently treated as disabled — an operator who typed durations meant
// to schedule outages, and zero durations are a typo, not a request.
func ParseSchedule(spec string) (Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return Schedule{}, nil
	}
	period, down, ok := strings.Cut(spec, "/")
	if !ok {
		return Schedule{}, fmt.Errorf("chaos: outage spec %q wants PERIOD/DOWN (e.g. 60s/10s)", spec)
	}
	p, err := time.ParseDuration(strings.TrimSpace(period))
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: outage period: %w", err)
	}
	d, err := time.ParseDuration(strings.TrimSpace(down))
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: outage downtime: %w", err)
	}
	if p <= 0 || d <= 0 {
		return Schedule{}, fmt.Errorf("chaos: outage spec %q wants positive PERIOD and DOWN (use \"off\" or omit the flag to disable)", spec)
	}
	if d >= p {
		return Schedule{}, fmt.Errorf("chaos: outage spec %q is a permanent outage — DOWN %v must be shorter than PERIOD %v", spec, d, p)
	}
	s := Schedule{Period: p, Down: d}
	if err := s.validate(); err != nil {
		return Schedule{}, err
	}
	return s, nil
}
