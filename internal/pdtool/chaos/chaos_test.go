package chaos

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func okEval(i int) ([]float64, error) { return []float64{float64(i), 1}, nil }

func TestZeroRatesArePassthrough(t *testing.T) {
	in, err := New(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eval := in.Wrap(okEval)
	for i := 0; i < 50; i++ {
		y, err := eval(i)
		if err != nil {
			t.Fatalf("eval(%d): %v", i, err)
		}
		if y[0] != float64(i) {
			t.Errorf("y = %v", y)
		}
	}
	c := in.Counts()
	if c.Total() != 0 || c.Clean != 50 {
		t.Errorf("counts = %+v", c)
	}
}

func TestRateValidation(t *testing.T) {
	if _, err := New(Options{Rates: Rates{Transient: -0.1}}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := New(Options{Rates: Rates{Transient: 0.6, Hang: 0.6}}); err == nil {
		t.Error("rates summing over 1 accepted")
	}
	if _, err := New(Options{Rates: Rates{Corrupt: math.NaN()}}); err == nil {
		t.Error("NaN rate accepted")
	}
}

func TestInjectionRatesRoughlyHonoured(t *testing.T) {
	in, err := New(Options{Seed: 7, Rates: Rates{Transient: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	eval := in.Wrap(okEval)
	fails := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, err := eval(i); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("unexpected error type: %v", err)
			}
			fails++
		}
	}
	frac := float64(fails) / n
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("transient fraction = %.3f, want ~0.30", frac)
	}
}

func TestDeterministicAcrossRunsAndSchedules(t *testing.T) {
	outcomes := func(parallel bool) []bool {
		in, err := New(Options{Seed: 3, Rates: Rates{Transient: 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		eval := in.Wrap(okEval)
		const n = 200
		out := make([]bool, n)
		if parallel {
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, err := eval(i)
					out[i] = err == nil
				}(i)
			}
			wg.Wait()
		} else {
			for i := 0; i < n; i++ {
				_, err := eval(i)
				out[i] = err == nil
			}
		}
		return out
	}
	seq := outcomes(false)
	par := outcomes(true)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("candidate %d: injection differs between sequential and parallel schedules", i)
		}
	}
}

func TestRetrySeesFreshDraw(t *testing.T) {
	// With a 50% transient rate some candidate must fail on attempt 0 and
	// succeed on attempt 1 — the property retry logic depends on.
	in, err := New(Options{Seed: 5, Rates: Rates{Transient: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	eval := in.Wrap(okEval)
	recovered := false
	for i := 0; i < 50 && !recovered; i++ {
		if _, err := eval(i); err != nil {
			if _, err2 := eval(i); err2 == nil {
				recovered = true
			}
		}
	}
	if !recovered {
		t.Error("no candidate recovered on retry across 50 candidates at 50% rate")
	}
}

func TestPanicInjection(t *testing.T) {
	in, err := New(Options{Seed: 11, Rates: Rates{Panic: 1}})
	if err != nil {
		t.Fatal(err)
	}
	eval := in.Wrap(okEval)
	defer func() {
		if recover() == nil {
			t.Error("no panic injected at rate 1")
		}
		if in.Counts().Panic != 1 {
			t.Errorf("counts = %+v", in.Counts())
		}
	}()
	eval(0)
}

func TestCorruptInjectionPoisonsVector(t *testing.T) {
	in, err := New(Options{Seed: 13, Rates: Rates{Corrupt: 1}})
	if err != nil {
		t.Fatal(err)
	}
	eval := in.Wrap(okEval)
	y, err := eval(4)
	if err != nil {
		t.Fatal(err)
	}
	hasNaN := false
	for _, v := range y {
		hasNaN = hasNaN || math.IsNaN(v)
	}
	if !hasNaN {
		t.Errorf("corrupted vector %v has no NaN", y)
	}
	// The pristine vector must not be mutated in place.
	y2, _ := okEval(4)
	if math.IsNaN(y2[0]) || math.IsNaN(y2[1]) {
		t.Error("corruption leaked into the source vector")
	}
}

func TestHangBlocksThenFails(t *testing.T) {
	in, err := New(Options{Seed: 17, Rates: Rates{Hang: 1}, HangFor: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	eval := in.Wrap(okEval)
	start := time.Now()
	_, err = eval(0)
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("hang returned %v, want transient error", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("hang lasted %v, want >= ~30ms", d)
	}
}

func TestWrapToolHangHonoursContext(t *testing.T) {
	in, err := New(Options{Seed: 19, Rates: Rates{Hang: 1}, HangFor: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tool := in.WrapTool(func(_ context.Context, i int) ([]float64, error) { return okEval(i) })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = tool(ctx, 0)
	if err == nil {
		t.Fatal("hung tool reported success")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("context-aware hang ignored cancellation (%v)", d)
	}
}

func TestHash01Range(t *testing.T) {
	for i := 0; i < 1000; i++ {
		u := hash01(42, i, i%3)
		if u < 0 || u >= 1 {
			t.Fatalf("hash01 = %v out of [0,1)", u)
		}
	}
	if hash01(1, 2, 3) == hash01(2, 2, 3) {
		t.Error("seed does not perturb the draw")
	}
	if hash01(1, 2, 3) == hash01(1, 2, 4) {
		t.Error("attempt does not perturb the draw")
	}
}
