package chaos

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"ppatuner/internal/clock"
)

func TestScheduleDisabledForms(t *testing.T) {
	for _, s := range []Schedule{{}, {Period: time.Minute}, {Down: time.Second}} {
		if s.Enabled() && s.Period > 0 && s.Down > 0 {
			continue
		}
		if s.InWindow(0) || s.Remaining(0) != 0 {
			t.Errorf("disabled schedule %+v claims downtime", s)
		}
	}
	if (Schedule{}).Enabled() {
		t.Error("zero schedule enabled")
	}
	if (Schedule{}).String() != "off" {
		t.Errorf("zero schedule renders %q", Schedule{}.String())
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []Schedule{
		{Period: time.Second, Down: time.Second},             // Down == Period
		{Period: time.Second, Down: 2 * time.Second},         // Down > Period
		{Period: -time.Second, Down: time.Second},            // negative
		{Period: time.Minute, Down: time.Second, Jitter: 1},  // Jitter out of [0,1)
		{Period: time.Minute, Down: time.Second, Jitter: -1}, // negative jitter
		{Windows: []Window{{Start: 5, End: 5}}},              // empty window
		{Windows: []Window{{Start: -1, End: 5}}},             // negative start
	}
	for _, s := range bad {
		if err := s.validate(); err == nil {
			t.Errorf("schedule %+v accepted", s)
		}
	}
	ok := []Schedule{
		{},
		{Period: time.Minute, Down: time.Second},
		{Period: time.Minute, Down: time.Second, Jitter: 0.9},
		{Windows: []Window{{Start: 0, End: time.Second}}},
	}
	for _, s := range ok {
		if err := s.validate(); err != nil {
			t.Errorf("schedule %+v rejected: %v", s, err)
		}
	}
}

// Every periodic window stays inside its stripe, lasts exactly Down, and is
// a pure function of (Seed, k) — jitter cannot create overlaps or drift.
func TestPeriodicWindowsStayInsideStripes(t *testing.T) {
	s := Schedule{Period: time.Minute, Down: 10 * time.Second, Jitter: 0.95, Seed: 42}
	for k := 0; k < 500; k++ {
		w := s.periodicWindow(k)
		lo := time.Duration(k) * s.Period
		hi := lo + s.Period
		if w.Start < lo || w.End > hi {
			t.Fatalf("window %d [%v,%v) escapes stripe [%v,%v)", k, w.Start, w.End, lo, hi)
		}
		if w.End-w.Start != s.Down {
			t.Fatalf("window %d lasts %v, want %v", k, w.End-w.Start, s.Down)
		}
		if again := s.periodicWindow(k); again != w {
			t.Fatalf("window %d not deterministic: %+v vs %+v", k, w, again)
		}
	}
	// Jitter = 0 pins every window to its stripe start.
	strict := Schedule{Period: time.Minute, Down: 10 * time.Second, Seed: 42}
	for k := 0; k < 10; k++ {
		if w := strict.periodicWindow(k); w.Start != time.Duration(k)*time.Minute {
			t.Fatalf("jitter-0 window %d starts at %v", k, w.Start)
		}
	}
	// Different seeds place jittered windows differently somewhere.
	other := s
	other.Seed = 43
	moved := false
	for k := 0; k < 20 && !moved; k++ {
		moved = s.periodicWindow(k) != other.periodicWindow(k)
	}
	if !moved {
		t.Error("seed does not perturb jittered window placement")
	}
}

func TestScheduleMembershipAndRemaining(t *testing.T) {
	s := Schedule{Period: time.Minute, Down: 10 * time.Second}
	cases := []struct {
		t   time.Duration
		in  bool
		rem time.Duration
	}{
		{0, true, 10 * time.Second},
		{9 * time.Second, true, time.Second},
		{10 * time.Second, false, 0}, // [Start, End): End excluded
		{30 * time.Second, false, 0},
		{time.Minute, true, 10 * time.Second},
		{-time.Second, false, 0},
	}
	for _, c := range cases {
		if got := s.InWindow(c.t); got != c.in {
			t.Errorf("InWindow(%v) = %v, want %v", c.t, got, c.in)
		}
		if got := s.Remaining(c.t); got != c.rem {
			t.Errorf("Remaining(%v) = %v, want %v", c.t, got, c.rem)
		}
	}
	explicit := Schedule{Windows: []Window{{Start: 5 * time.Second, End: 8 * time.Second}}}
	if explicit.InWindow(4 * time.Second) {
		t.Error("explicit window fires early")
	}
	if !explicit.InWindow(5 * time.Second) {
		t.Error("explicit window start excluded")
	}
	if explicit.Remaining(6*time.Second) != 2*time.Second {
		t.Errorf("explicit Remaining = %v", explicit.Remaining(6*time.Second))
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("60s/10s")
	if err != nil {
		t.Fatal(err)
	}
	if s.Period != time.Minute || s.Down != 10*time.Second {
		t.Errorf("parsed %+v", s)
	}
	if s.String() != "1m0s/10s" {
		t.Errorf("String() = %q", s.String())
	}
	for _, spec := range []string{"", "off", " off "} {
		s, err := ParseSchedule(spec)
		if err != nil || s.Enabled() {
			t.Errorf("ParseSchedule(%q) = %+v, %v; want disabled", spec, s, err)
		}
	}
	for _, spec := range []string{"60s", "x/y", "10s/60s", "60s/"} {
		if _, err := ParseSchedule(spec); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", spec)
		}
	}
}

// Attempts inside a window fail with ErrOutage (and the Outage() marker);
// outside they pass. The fake clock drives the whole timeline.
func TestInjectorOutageWindows(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	in, err := New(Options{
		Seed:   1,
		Outage: Schedule{Period: time.Minute, Down: 10 * time.Second},
		Clock:  fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	eval := in.Wrap(okEval)

	// t = 0: inside the first window.
	_, err = eval(0)
	if !errors.Is(err, ErrOutage) {
		t.Fatalf("inside window: err = %v, want ErrOutage", err)
	}
	var marked interface{ Outage() bool }
	if !errors.As(err, &marked) || !marked.Outage() {
		t.Error("outage error lacks the Outage() marker")
	}
	if in.OutageRemaining() != 10*time.Second {
		t.Errorf("OutageRemaining = %v, want 10s", in.OutageRemaining())
	}

	// Advance past the window: evaluations flow again.
	fc.Advance(15 * time.Second)
	if y, err := eval(0); err != nil || y[0] != 0 {
		t.Fatalf("after window: y=%v err=%v", y, err)
	}
	if in.OutageRemaining() != 0 {
		t.Errorf("OutageRemaining while up = %v", in.OutageRemaining())
	}

	// Next stripe's window fires too.
	fc.Advance(50 * time.Second) // t = 65s, inside [60s, 70s)
	if _, err := eval(3); !errors.Is(err, ErrOutage) {
		t.Fatalf("second stripe: err = %v, want ErrOutage", err)
	}

	c := in.Counts()
	if c.Outage != 2 || c.Clean != 1 {
		t.Errorf("counts = %+v, want 2 outages + 1 clean", c)
	}
	if c.Total() != 2 {
		t.Errorf("Total() = %d, want 2 (outages count as faults)", c.Total())
	}
}

// Outage failures must not consume (candidate, attempt) draws: the i.i.d.
// fault sequence after the window matches a run that never had the window.
func TestOutageDoesNotShiftIIDSchedule(t *testing.T) {
	run := func(outage Schedule) []bool {
		fc := clock.NewFake(time.Unix(0, 0))
		in, err := New(Options{Seed: 9, Rates: Rates{Transient: 0.5}, Outage: outage, Clock: fc})
		if err != nil {
			t.Fatal(err)
		}
		eval := in.Wrap(okEval)
		if outage.Enabled() {
			// Burn attempts inside the window, then lift it.
			for k := 0; k < 25; k++ {
				if _, err := eval(k); !errors.Is(err, ErrOutage) {
					t.Fatalf("warm-up attempt %d: %v", k, err)
				}
			}
			fc.Advance(time.Hour)
		}
		out := make([]bool, 100)
		for i := range out {
			_, err := eval(i)
			out[i] = err == nil
		}
		return out
	}
	clean := run(Schedule{})
	after := run(Schedule{Windows: []Window{{Start: 0, End: time.Minute}}})
	for i := range clean {
		if clean[i] != after[i] {
			t.Fatalf("candidate %d: outage shifted the i.i.d. fault schedule", i)
		}
	}
}

// An injected hang on a fake clock costs no real time — the satellite fix
// for Wrap stranding 30s sleeps in the non-context path.
func TestHangOnFakeClockIsInstant(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	in, err := New(Options{Seed: 17, Rates: Rates{Hang: 1}, Clock: fc}) // default HangFor = 30s
	if err != nil {
		t.Fatal(err)
	}
	eval := in.Wrap(okEval)
	start := time.Now()
	_, err = eval(0)
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("hang returned %v, want transient error", err)
	}
	if real := time.Since(start); real > time.Second {
		t.Fatalf("fake-clock hang took %v of real time", real)
	}
	if fc.Sleeps() != 1 {
		t.Errorf("hang slept %d times on the clock, want 1", fc.Sleeps())
	}
}

// Corrupt-QoR injection is deterministic under concurrent WrapTool callers:
// the same candidates get the same poisoned positions regardless of
// scheduling, and clean vectors are never mutated.
func TestCorruptDeterministicUnderConcurrentWrapTool(t *testing.T) {
	poisoned := func() map[int]int {
		in, err := New(Options{Seed: 23, Rates: Rates{Corrupt: 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		tool := in.WrapTool(func(_ context.Context, i int) ([]float64, error) {
			return []float64{float64(i), 1, 2}, nil
		})
		const n = 200
		out := make([]int, n) // NaN position, or -1 for clean
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				y, err := tool(context.Background(), i)
				if err != nil {
					t.Errorf("tool(%d): %v", i, err)
					return
				}
				out[i] = -1
				for p, v := range y {
					if math.IsNaN(v) {
						out[i] = p
					}
				}
			}(i)
		}
		wg.Wait()
		m := map[int]int{}
		for i, p := range out {
			m[i] = p
		}
		return m
	}
	a, b := poisoned(), poisoned()
	saw := false
	for i, p := range a {
		if b[i] != p {
			t.Fatalf("candidate %d: poison position %d vs %d across runs", i, p, b[i])
		}
		if p >= 0 {
			saw = true
		}
	}
	if !saw {
		t.Error("no corruption injected at rate 0.5")
	}
}
