package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestParseScheduleMalformed(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr string // substring of the error, "" for accepted
	}{
		{"", ""},
		{"off", ""},
		{"60s/10s", ""},
		{"60s", "wants PERIOD/DOWN"},
		{"x/10s", "outage period"},
		{"60s/y", "outage downtime"},
		{"0s/0s", "positive PERIOD and DOWN"},
		{"0s/10s", "positive PERIOD and DOWN"},
		{"60s/0s", "positive PERIOD and DOWN"},
		{"-60s/10s", "positive PERIOD and DOWN"},
		{"60s/-10s", "positive PERIOD and DOWN"},
		{"10s/10s", "permanent outage"},
		{"10s/20s", "permanent outage"},
	}
	for _, tc := range cases {
		s, err := ParseSchedule(tc.spec)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("ParseSchedule(%q): unexpected error %v", tc.spec, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseSchedule(%q) = %v, want error containing %q", tc.spec, s, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseSchedule(%q) error = %q, want substring %q", tc.spec, err, tc.wantErr)
		}
	}
}

func TestParseKillSchedule(t *testing.T) {
	p, err := ParseKillSchedule("1@8s, 0@30s")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Kills) != 2 || p.Kills[0] != (WorkerKill{Worker: 1, At: 8 * time.Second}) {
		t.Fatalf("kills = %+v", p.Kills)
	}
	if at, ok := p.KillAt(0); !ok || at != 30*time.Second {
		t.Fatalf("KillAt(0) = %v, %v", at, ok)
	}
	if _, ok := p.KillAt(7); ok {
		t.Fatal("KillAt(7) should report no kill")
	}
	if !p.Enabled() {
		t.Fatal("parsed schedule should be enabled")
	}

	if p, err := ParseKillSchedule("off"); err != nil || p.Enabled() {
		t.Fatalf("off = %+v, %v", p, err)
	}
	for _, bad := range []string{"1", "x@8s", "-1@8s", "1@-8s", "1@x"} {
		if _, err := ParseKillSchedule(bad); err == nil {
			t.Errorf("ParseKillSchedule(%q) should fail", bad)
		}
	}
}

func TestProcFaultsEarliestKillWins(t *testing.T) {
	p := ProcFaults{Kills: []WorkerKill{
		{Worker: 2, At: 40 * time.Second},
		{Worker: 2, At: 10 * time.Second},
	}}
	if at, ok := p.KillAt(2); !ok || at != 10*time.Second {
		t.Fatalf("KillAt(2) = %v, %v, want 10s", at, ok)
	}
}

func TestProcFaultsDropHeartbeat(t *testing.T) {
	p := ProcFaults{DropHeartbeats: []Window{{Start: 5 * time.Second, End: 15 * time.Second}}}
	if p.DropHeartbeat(4 * time.Second) {
		t.Fatal("heartbeat at 4s should pass")
	}
	if !p.DropHeartbeat(5 * time.Second) {
		t.Fatal("heartbeat at 5s should drop")
	}
	if p.DropHeartbeat(15 * time.Second) {
		t.Fatal("heartbeat at 15s (window end) should pass")
	}
}

func TestProcFaultsValidate(t *testing.T) {
	bad := []ProcFaults{
		{Kills: []WorkerKill{{Worker: -1, At: time.Second}}},
		{Kills: []WorkerKill{{Worker: 0, At: -time.Second}}},
		{DropHeartbeats: []Window{{Start: 2 * time.Second, End: time.Second}}},
		{ResultDelay: -time.Second},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("case %d: %+v should fail validation", i, p)
		}
	}
	ok := ProcFaults{
		Kills:            []WorkerKill{{Worker: 1, At: 8 * time.Second}},
		DropHeartbeats:   []Window{{End: time.Second}},
		ResultDelay:      2 * time.Second,
		DuplicateResults: true,
	}
	if err := ok.validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if s := ok.String(); !strings.Contains(s, "1@8s") || !strings.Contains(s, "dup") {
		t.Errorf("String() = %q", s)
	}
	if s := (ProcFaults{}).String(); s != "off" {
		t.Errorf("zero ProcFaults String() = %q, want off", s)
	}
}

func TestParseKillScheduleCoordinatorTargets(t *testing.T) {
	p, err := ParseKillSchedule("split@40s, coord@75s, 1@8s")
	if err != nil {
		t.Fatal(err)
	}
	if !p.CoordKill || p.CoordKillAt != 75*time.Second {
		t.Fatalf("coord kill = (%v, %v), want 75s", p.CoordKill, p.CoordKillAt)
	}
	if !p.SplitBrain || p.SplitBrainAt != 40*time.Second {
		t.Fatalf("split-brain = (%v, %v), want 40s", p.SplitBrain, p.SplitBrainAt)
	}
	if len(p.Kills) != 1 || p.Kills[0] != (WorkerKill{Worker: 1, At: 8 * time.Second}) {
		t.Fatalf("worker kills = %+v", p.Kills)
	}
	if !p.Enabled() {
		t.Fatal("coordinator schedule should be enabled")
	}
	for _, want := range []string{"coord@1m15s", "split@40s", "1@8s"} {
		if s := p.String(); !strings.Contains(s, want) {
			t.Errorf("String() = %q, want substring %q", s, want)
		}
	}

	// Duplicate targets: the earliest time wins, matching worker kills.
	p, err = ParseKillSchedule("coord@30s,coord@10s,split@20s,split@50s")
	if err != nil {
		t.Fatal(err)
	}
	if p.CoordKillAt != 10*time.Second || p.SplitBrainAt != 20*time.Second {
		t.Fatalf("duplicate targets = coord@%v split@%v, want earliest (10s, 20s)", p.CoordKillAt, p.SplitBrainAt)
	}

	// A coordinator-only schedule counts as enabled even with no worker
	// kills.
	if p, err := ParseKillSchedule("coord@5s"); err != nil || !p.Enabled() {
		t.Fatalf("coord-only schedule = %+v, %v", p, err)
	}
	if p, err := ParseKillSchedule("split@5s"); err != nil || !p.Enabled() {
		t.Fatalf("split-only schedule = %+v, %v", p, err)
	}

	for _, bad := range []string{"coord@-5s", "split@-5s", "coord@x", "boss@5s"} {
		if _, err := ParseKillSchedule(bad); err == nil {
			t.Errorf("ParseKillSchedule(%q) should fail", bad)
		}
	}
}

func TestProcFaultsValidateCoordinatorTimes(t *testing.T) {
	for i, p := range []ProcFaults{
		{CoordKill: true, CoordKillAt: -time.Second},
		{SplitBrain: true, SplitBrainAt: -time.Second},
	} {
		if err := p.validate(); err == nil {
			t.Errorf("case %d: %+v should fail validation", i, p)
		}
	}
	ok := ProcFaults{CoordKill: true, CoordKillAt: 75 * time.Second, SplitBrain: true, SplitBrainAt: 40 * time.Second}
	if err := ok.validate(); err != nil {
		t.Errorf("valid coordinator faults rejected: %v", err)
	}
}
