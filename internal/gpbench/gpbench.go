// Package gpbench hosts the surrogate hot-path micro-benchmarks shared by
// the root benchmark suite (`go test -bench`) and cmd/bench, which re-runs
// them standalone and emits BENCH_gp.json — a machine-readable perf record so
// successive PRs can see the trajectory of the GP fit/predict loop instead of
// eyeballing `go test -bench` output diffs.
//
// The fixture mirrors the expensive end of the paper's workload: an ARD
// Matérn-5/2 transfer GP over ~200 training points (120 source + 80 target,
// 8 knobs) with a large attached candidate pool. FitRefit is the
// hyper-parameter refit (up to 240 Nelder–Mead NLML evaluations), PredictPool
// is the per-iteration posterior sweep over the whole pool, and AddTarget is
// the incremental posterior/pool-cache update after one tool evaluation.
package gpbench

import (
	"math"
	"math/rand"
	"testing"

	"ppatuner/internal/gp"
)

// Fixture dimensions. Chosen so one FitRefit iteration is a realistic refit
// (n≈200 points, full-data NLML) and PredictPool sweeps a pool big enough for
// memory effects to show.
const (
	Dim      = 8
	SourceN  = 120
	TargetN  = 80
	PoolN    = 1500
	FitEvals = 240
)

// synth is a smooth multimodal response surface standing in for one QoR
// metric.
func synth(x []float64) float64 {
	s := 0.0
	for d, v := range x {
		s += math.Sin(3*v+float64(d)) + 0.3*v*v
	}
	return s
}

func points(rng *rand.Rand, n int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, Dim)
		for d := range x {
			x[d] = rng.Float64()
		}
		xs[i] = x
		ys[i] = synth(x)
	}
	return xs, ys
}

// fixtureData returns the deterministic source/target/pool point sets.
func fixtureData() (sx [][]float64, sy []float64, tx [][]float64, ty []float64, pool [][]float64) {
	rng := rand.New(rand.NewSource(1))
	sx, sy = points(rng, SourceN)
	tx, ty = points(rng, TargetN)
	pool, _ = points(rng, PoolN)
	return
}

// newGP builds the transfer GP over the fixture data without fitting it.
func newGP(sx [][]float64, sy []float64, tx [][]float64, ty []float64) *gp.GP {
	g := gp.New(gp.Matern52, Dim, true)
	if err := g.SetSource(sx, sy); err != nil {
		panic(err)
	}
	if err := g.SetTarget(tx, ty); err != nil {
		panic(err)
	}
	g.SetWorkers(Workers)
	return g
}

// FitRefit measures one full hyper-parameter refit (the per-refit cost the
// tuner pays at every scheduled recalibration). The GP is rebuilt from
// default hyper-parameters each iteration so every Fit walks the same
// optimisation surface.
func FitRefit(b *testing.B) {
	sx, sy, tx, ty, _ := fixtureData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := newGP(sx, sy, tx, ty)
		b.StartTimer()
		if err := g.Fit(gp.FitOptions{MaxEvals: FitEvals}); err != nil {
			b.Fatal(err)
		}
	}
}

// PredictPool measures one posterior mean/variance sweep over the whole
// candidate pool — the model-calibration stage of each tuner iteration.
func PredictPool(b *testing.B) {
	sx, sy, tx, ty, pool := fixtureData()
	g := newGP(sx, sy, tx, ty)
	if err := g.Rebuild(); err != nil {
		b.Fatal(err)
	}
	if err := g.AttachPool(pool); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for p := 0; p < PoolN; p++ {
			mu, sd := g.PredictPool(p)
			sink += mu + sd
		}
	}
	if math.IsNaN(sink) {
		b.Fatal("NaN prediction")
	}
}

// AddTarget measures the incremental posterior + pool-cache update after one
// tool evaluation. The fixture is reset periodically (timer stopped) so the
// measured cost stays at the fixture's size instead of growing with b.N.
func AddTarget(b *testing.B) {
	const resetEvery = 64
	sx, sy, tx, ty, pool := fixtureData()
	rng := rand.New(rand.NewSource(2))
	adds, _ := points(rng, resetEvery)

	reset := func() *gp.GP {
		g := newGP(sx, sy, tx, ty)
		if err := g.Rebuild(); err != nil {
			b.Fatal(err)
		}
		g.ReserveAdds(resetEvery)
		if err := g.AttachPool(pool); err != nil {
			b.Fatal(err)
		}
		return g
	}
	g := reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%resetEvery == 0 {
			b.StopTimer()
			g = reset()
			b.StartTimer()
		}
		x := adds[i%resetEvery]
		if err := g.AddTarget(x, synth(x)); err != nil {
			b.Fatal(err)
		}
	}
}

// Workers is the SetWorkers value applied to every benchmarked surrogate.
// cmd/bench sets it from -workers and records it in BENCH_gp.json so runs on
// differently-sized hosts stay comparable.
var Workers = 1

// ---- Scale suite: exact vs sparse across training-set sizes ----
//
// The fixed-size suite above tracks the tuner's steady-state costs at the
// paper's n≈200. The scale suite measures how those costs grow: the same
// three operations at n ∈ ScaleSizes for both surrogates, which is where the
// sparse approximation's O(n·m²) refit separates from the exact O(n³) one
// (the acceptance bar is sparse:64 ≥ 5× faster at n=1000). Hyper-fits use
// ScaleFitEvals so one exact n=1000 measurement stays in seconds.

// ScaleSizes are the training-set sizes of the scale suite.
var ScaleSizes = []int{200, 1000, 5000}

const (
	// ScaleFitEvals bounds each scale-suite hyper-parameter fit.
	ScaleFitEvals = 60
	// ScalePoolN is the candidate pool attached in the scale suite.
	ScalePoolN = 1000
	// ExactScaleMax is the largest n the exact surrogate is benchmarked at;
	// beyond it one O(n³) refit takes minutes and the point is precisely that
	// the sparse path does not.
	ExactScaleMax = 1000
)

// SparseScaleSpec is the sparse configuration the scale suite runs against
// the exact surrogate (the ISSUE acceptance configuration).
var SparseScaleSpec = gp.Spec{Sparse: true, M: 64, Seed: 1}

func scaleData(n int) (sx [][]float64, sy []float64, tx [][]float64, ty []float64, pool [][]float64) {
	rng := rand.New(rand.NewSource(3))
	sx, sy = points(rng, n/2)
	tx, ty = points(rng, n-n/2)
	pool, _ = points(rng, ScalePoolN)
	return
}

func newModel(spec gp.Spec, sx [][]float64, sy []float64, tx [][]float64, ty []float64) gp.Model {
	m := spec.New(gp.Matern52, Dim, true)
	if err := m.SetSource(sx, sy); err != nil {
		panic(err)
	}
	if err := m.SetTarget(tx, ty); err != nil {
		panic(err)
	}
	m.SetWorkers(Workers)
	return m
}

// FitScale measures one full hyper-parameter fit at n training points for
// the given surrogate spec.
func FitScale(b *testing.B, n int, spec gp.Spec) {
	sx, sy, tx, ty, _ := scaleData(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := newModel(spec, sx, sy, tx, ty)
		b.StartTimer()
		if err := m.Fit(gp.FitOptions{MaxEvals: ScaleFitEvals}); err != nil {
			b.Fatal(err)
		}
	}
}

// PredictPoolScale measures one posterior sweep over ScalePoolN candidates
// at n training points.
func PredictPoolScale(b *testing.B, n int, spec gp.Spec) {
	sx, sy, tx, ty, pool := scaleData(n)
	m := newModel(spec, sx, sy, tx, ty)
	if err := m.Rebuild(); err != nil {
		b.Fatal(err)
	}
	if err := m.AttachPool(pool); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for p := 0; p < ScalePoolN; p++ {
			mu, sd := m.PredictPool(p)
			sink += mu + sd
		}
	}
	if math.IsNaN(sink) {
		b.Fatal("NaN prediction")
	}
}

// AddTargetScale measures the incremental posterior + pool-cache update at n
// training points.
func AddTargetScale(b *testing.B, n int, spec gp.Spec) {
	const resetEvery = 64
	sx, sy, tx, ty, pool := scaleData(n)
	rng := rand.New(rand.NewSource(4))
	adds, _ := points(rng, resetEvery)

	reset := func() gp.Model {
		m := newModel(spec, sx, sy, tx, ty)
		if err := m.Rebuild(); err != nil {
			b.Fatal(err)
		}
		m.ReserveAdds(resetEvery)
		if err := m.AttachPool(pool); err != nil {
			b.Fatal(err)
		}
		return m
	}
	m := reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%resetEvery == 0 {
			b.StopTimer()
			m = reset()
			b.StartTimer()
		}
		x := adds[i%resetEvery]
		if err := m.AddTarget(x, synth(x)); err != nil {
			b.Fatal(err)
		}
	}
}
