package mat

import "ppatuner/internal/simd"

// AddScaledOuterPacked accumulates the scaled outer product c·v·vᵀ into dst,
// the packed lower triangle of an n×n symmetric matrix with n = len(v)
// (row i at offset i(i+1)/2, as used by Cholesky.FactorizePacked).
//
// This is the rank-1 building block of the sparse-GP information matrix
// Σ = Kuu + Σᵢ cᵢ·kᵤ(xᵢ)·kᵤ(xᵢ)ᵀ: each training point (and each incremental
// AddTarget) lands in the posterior as one call. Row i is a single fused
// multiply-add sweep, so the whole update runs at SIMD speed where available.
func AddScaledOuterPacked(dst, v []float64, c float64) {
	if len(dst) != PackedLen(len(v)) {
		panic("mat: AddScaledOuterPacked dst length does not match PackedLen(len(v))")
	}
	idx := 0
	for i, vi := range v {
		simd.Axpy(dst[idx:idx+i+1], v, c*vi)
		idx += i + 1
	}
}
