package mat

import (
	"ppatuner/internal/simd"

	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorisation encounters
// a non-positive pivot even after jitter has been applied.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds a lower-triangular factor L with A = L Lᵀ.
//
// The factor supports incremental extension (Extend): appending k rows and
// columns to A updates L in O(n²k) instead of refactorising in O((n+k)³).
// This is the operation that makes PAL-style active-learning loops cheap —
// each tool evaluation appends one row to the Gram matrix.
//
// L lives in a single flat backing array in packed row-major order (row i
// starts at i(i+1)/2 and has i+1 entries), so a full factorisation walks
// contiguous memory and Extend is an append. Reserve pre-sizes the backing
// array for a known number of future Extend calls so a whole campaign of
// incremental updates never reallocates.
type Cholesky struct {
	n int
	// l is the packed lower triangle: row i occupies l[rowOff(i):rowOff(i)+i+1].
	l []float64
}

// rowOff returns the offset of row i in the packed lower-triangular layout.
func rowOff(i int) int { return i * (i + 1) / 2 }

// PackedLen returns the number of entries in the packed lower triangle of an
// n×n matrix, i.e. the length callers must size packed buffers to.
func PackedLen(n int) int { return rowOff(n) }

// NewCholesky factorises the symmetric positive-definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	c := &Cholesky{}
	c.packFrom(a, 0)
	if piv, d, ok := c.factorRows(0, a.Rows); !ok {
		c.reset(0)
		return nil, fmt.Errorf("%w (pivot %d: %g)", ErrNotPositiveDefinite, piv, d)
	}
	c.n = a.Rows
	return c, nil
}

// packFrom copies the lower triangle of a into c.l (resized to fit) and adds
// jitter to every diagonal entry.
func (c *Cholesky) packFrom(a *Matrix, jitter float64) {
	n := a.Rows
	c.resize(n)
	idx := 0
	for i := 0; i < n; i++ {
		copy(c.l[idx:idx+i+1], a.Data[i*a.Cols:i*a.Cols+i+1])
		idx += i + 1
		c.l[idx-1] += jitter
	}
}

// resize sets len(c.l) = PackedLen(n), reusing capacity when possible.
func (c *Cholesky) resize(n int) {
	need := rowOff(n)
	if cap(c.l) >= need {
		c.l = c.l[:need]
	} else {
		c.l = make([]float64, need)
	}
}

// reset truncates the factor back to n rows (rollback aid).
func (c *Cholesky) reset(n int) {
	c.l = c.l[:rowOff(n)]
	c.n = n
}

// Reserve grows the backing array's capacity to hold an n×n factor without
// changing the current contents, so future Extend calls up to dimension n
// append in place instead of reallocating.
func (c *Cholesky) Reserve(n int) {
	if need := rowOff(n); cap(c.l) < need {
		nl := make([]float64, len(c.l), need)
		copy(nl, c.l)
		c.l = nl
	}
}

// Size returns the current dimension of the factorised matrix.
func (c *Cholesky) Size() int { return c.n }

// LRow returns row i of the factor L (length i+1). The slice is a view; do
// not modify it. Views are invalidated by the next Extend/Factorize call.
func (c *Cholesky) LRow(i int) []float64 {
	off := rowOff(i)
	return c.l[off : off+i+1]
}

// factorRows runs the left-looking Cholesky recurrence over rows
// [start, end), which must already hold the packed source values of A; rows
// before start must already be factored. Columns are processed four at a time
// through the dot4 kernel so the inner loop runs at SIMD speed where
// available. On a non-positive pivot it stops and reports the row and pivot
// value; rows before start are untouched either way.
func (c *Cholesky) factorRows(start, end int) (pivot int, d float64, ok bool) {
	l := c.l
	for i := start; i < end; i++ {
		off := rowOff(i)
		row := l[off : off+i+1]
		j := 0
		for ; j+4 <= i; j += 4 {
			c0 := l[rowOff(j):]
			c1 := l[rowOff(j+1):]
			c2 := l[rowOff(j+2):]
			c3 := l[rowOff(j+3):]
			s0, s1, s2, s3 := simd.Dot4(row, c0, c1, c2, c3, j)
			// The four columns couple triangularly: each solved entry feeds
			// the dots of the columns to its right (the k ∈ [j, j+3) terms
			// dot4 could not see).
			v0 := (row[j] - s0) / c0[j]
			row[j] = v0
			s1 += v0 * c1[j]
			v1 := (row[j+1] - s1) / c1[j+1]
			row[j+1] = v1
			s2 += v0*c2[j] + v1*c2[j+1]
			v2 := (row[j+2] - s2) / c2[j+2]
			row[j+2] = v2
			s3 += v0*c3[j] + v1*c3[j+1] + v2*c3[j+2]
			row[j+3] = (row[j+3] - s3) / c3[j+3]
		}
		for ; j < i; j++ {
			jo := rowOff(j)
			lj := l[jo : jo+j+1]
			row[j] = (row[j] - simd.DotUnroll(row[:j], lj[:j])) / lj[j]
		}
		diag := row[i] - simd.DotUnroll(row[:i], row[:i])
		if diag <= 0 {
			return i, diag, false
		}
		row[i] = math.Sqrt(diag)
	}
	return 0, 0, true
}

// Extend appends the rows newRows to the factor. newRows[i] must contain the
// lower-triangular part of the appended rows of A: its length must be
// c.Size()+i+1 (covariances against all previous points, then against the
// previously appended new points, then the diagonal).
func (c *Cholesky) Extend(newRows [][]float64) error {
	for i, row := range newRows {
		if len(row) != c.n+i+1 {
			return fmt.Errorf("mat: Extend row %d has length %d, want %d", i, len(row), c.n+i+1)
		}
	}
	start := c.n
	end := start + len(newRows)
	c.Reserve(end)
	c.l = c.l[:rowOff(end)]
	idx := rowOff(start)
	for _, src := range newRows {
		copy(c.l[idx:idx+len(src)], src)
		idx += len(src)
	}
	if piv, d, ok := c.factorRows(start, end); !ok {
		// Roll back any rows appended in this call so the factor stays
		// consistent.
		c.reset(start)
		return fmt.Errorf("%w (pivot %d: %g)", ErrNotPositiveDefinite, piv, d)
	}
	c.n = end
	return nil
}

// FactorizePacked refactorises the receiver from the packed lower triangle a
// of an n×n matrix (length PackedLen(n)), reusing the receiver's backing
// array so repeated refactorisations allocate nothing. On a non-positive
// pivot it retries with jitter·10^attempt added to the diagonal, up to
// maxAttempts times, mirroring CholeskyWithJitter. a is never modified.
func (c *Cholesky) FactorizePacked(a []float64, n int, jitter float64, maxAttempts int) error {
	if len(a) != rowOff(n) {
		return fmt.Errorf("mat: FactorizePacked got %d entries, want %d", len(a), rowOff(n))
	}
	var lastPiv int
	var lastD float64
	for attempt := -1; attempt < maxAttempts; attempt++ {
		c.resize(n)
		copy(c.l, a)
		if attempt >= 0 {
			add := jitter * math.Pow(10, float64(attempt))
			for i := 0; i < n; i++ {
				c.l[rowOff(i)+i] += add
			}
		}
		piv, d, ok := c.factorRows(0, n)
		if ok {
			c.n = n
			return nil
		}
		lastPiv, lastD = piv, d
	}
	c.reset(0)
	return fmt.Errorf("%w (pivot %d: %g)", ErrNotPositiveDefinite, lastPiv, lastD)
}

// SolveLInto solves L x = b into x, which must have length Size() and may
// alias b.
func (c *Cholesky) SolveLInto(x, b []float64) {
	if len(b) != c.n || len(x) != c.n {
		panic(fmt.Sprintf("mat: SolveLInto lengths %d/%d, want %d", len(x), len(b), c.n))
	}
	for i := 0; i < c.n; i++ {
		off := rowOff(i)
		li := c.l[off : off+i+1]
		x[i] = (b[i] - simd.DotUnroll(li[:i], x[:i])) / li[i]
	}
}

// SolveL solves L x = b and returns a freshly allocated x.
func (c *Cholesky) SolveL(b []float64) []float64 {
	x := make([]float64, c.n)
	c.SolveLInto(x, b)
	return x
}

// SolveLTInto solves Lᵀ x = b into x, which must have length Size() and may
// alias b.
func (c *Cholesky) SolveLTInto(x, b []float64) {
	if len(b) != c.n || len(x) != c.n {
		panic(fmt.Sprintf("mat: SolveLTInto lengths %d/%d, want %d", len(x), len(b), c.n))
	}
	copy(x, b)
	for i := c.n - 1; i >= 0; i-- {
		off := rowOff(i)
		li := c.l[off : off+i+1]
		x[i] /= li[i]
		xi := x[i]
		// Subtract column i of L from the remaining rhs entries.
		for k := 0; k < i; k++ {
			x[k] -= li[k] * xi
		}
	}
}

// SolveLT solves Lᵀ x = b and returns a freshly allocated x.
func (c *Cholesky) SolveLT(b []float64) []float64 {
	x := make([]float64, c.n)
	c.SolveLTInto(x, b)
	return x
}

// SolveInto solves A x = b into x via the factor (two triangular solves).
// x may alias b.
func (c *Cholesky) SolveInto(x, b []float64) {
	c.SolveLInto(x, b)
	c.SolveLTInto(x, x)
}

// Solve solves A x = b via the factor and returns a freshly allocated x.
func (c *Cholesky) Solve(b []float64) []float64 {
	x := make([]float64, c.n)
	c.SolveInto(x, b)
	return x
}

// LogDet returns log|A| = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[rowOff(i)+i])
	}
	return 2 * s
}

// ExtendSolveL extends an existing partial solution of L x = b with the
// solution entries for newly appended rows. x must be the solution for the
// first len(x) rows; bTail supplies b entries for rows len(x)..Size()-1.
// It returns the full solution of length Size().
func (c *Cholesky) ExtendSolveL(x []float64, bTail []float64) []float64 {
	out := make([]float64, c.n)
	c.ExtendSolveLInto(out, x, bTail)
	return out
}

// ExtendSolveLInto is ExtendSolveL writing into out (length Size()), which
// may alias x's backing array (out[:len(x)] is only read after being copied).
func (c *Cholesky) ExtendSolveLInto(out, x, bTail []float64) {
	if len(x)+len(bTail) != c.n || len(out) != c.n {
		panic(fmt.Sprintf("mat: ExtendSolveL %d+%d != %d", len(x), len(bTail), c.n))
	}
	copy(out, x)
	for i := len(x); i < c.n; i++ {
		off := rowOff(i)
		li := c.l[off : off+i+1]
		out[i] = (bTail[i-len(x)] - simd.DotUnroll(li[:i], out[:i])) / li[i]
	}
}

// Reconstruct multiplies L Lᵀ back into a dense matrix (testing aid).
func (c *Cholesky) Reconstruct() *Matrix {
	a := NewMatrix(c.n, c.n)
	for i := 0; i < c.n; i++ {
		li := c.LRow(i)
		for j := 0; j <= i; j++ {
			lj := c.LRow(j)
			var s float64
			for k := 0; k <= j; k++ {
				s += li[k] * lj[k]
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}

// SolveSPD factorises a and solves a x = b in one call, applying growing
// jitter to the diagonal if the factorisation fails. It is the convenience
// path for one-shot solves (hyper-parameter fitting evaluates many small
// candidate matrices this way).
func SolveSPD(a *Matrix, b []float64) ([]float64, *Cholesky, error) {
	ch, err := CholeskyWithJitter(a, 1e-10, 8)
	if err != nil {
		return nil, nil, err
	}
	return ch.Solve(b), ch, nil
}

// CholeskyWithJitter attempts NewCholesky, adding jitter·10^attempt to the
// diagonal on failure, up to maxAttempts times.
func CholeskyWithJitter(a *Matrix, jitter float64, maxAttempts int) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	c := &Cholesky{}
	var lastPiv int
	var lastD float64
	added := 0.0
	for attempt := -1; attempt < maxAttempts; attempt++ {
		if attempt >= 0 {
			added = jitter * math.Pow(10, float64(attempt))
		}
		c.packFrom(a, added)
		piv, d, ok := c.factorRows(0, a.Rows)
		if ok {
			c.n = a.Rows
			return c, nil
		}
		lastPiv, lastD = piv, d
	}
	c.reset(0)
	return nil, fmt.Errorf("%w (pivot %d: %g)", ErrNotPositiveDefinite, lastPiv, lastD)
}
