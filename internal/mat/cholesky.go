package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorisation encounters
// a non-positive pivot even after jitter has been applied.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky holds a lower-triangular factor L with A = L Lᵀ.
//
// The factor supports incremental extension (Extend): appending k rows and
// columns to A updates L in O(n²k) instead of refactorising in O((n+k)³).
// This is the operation that makes PAL-style active-learning loops cheap —
// each tool evaluation appends one row to the Gram matrix.
type Cholesky struct {
	n int
	// l stores the lower triangle row-by-row: row i has i+1 entries.
	// Packed storage keeps Extend cheap (no reallocation of a square matrix).
	l [][]float64
}

// NewCholesky factorises the symmetric positive-definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	c := &Cholesky{}
	rows := make([][]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		rows[i] = a.Data[i*a.Cols : i*a.Cols+i+1]
	}
	if err := c.extendPacked(rows); err != nil {
		return nil, err
	}
	return c, nil
}

// Size returns the current dimension of the factorised matrix.
func (c *Cholesky) Size() int { return c.n }

// LRow returns row i of the factor L (length i+1). The slice is a view; do
// not modify it.
func (c *Cholesky) LRow(i int) []float64 { return c.l[i] }

// Extend appends the rows newRows to the factor. newRows[i] must contain the
// lower-triangular part of the appended rows of A: its length must be
// c.Size()+i+1 (covariances against all previous points, then against the
// previously appended new points, then the diagonal).
func (c *Cholesky) Extend(newRows [][]float64) error {
	for i, row := range newRows {
		if len(row) != c.n+i+1 {
			return fmt.Errorf("mat: Extend row %d has length %d, want %d", i, len(row), c.n+i+1)
		}
	}
	return c.extendPacked(newRows)
}

func (c *Cholesky) extendPacked(newRows [][]float64) error {
	start := c.n
	for _, src := range newRows {
		i := c.n
		row := make([]float64, i+1)
		copy(row, src)
		// Standard Cholesky row computation against all existing rows.
		for j := 0; j <= i; j++ {
			lj := row
			if j < i {
				lj = c.l[j]
			}
			sum := row[j]
			for k := 0; k < j; k++ {
				sum -= row[k] * lj[k]
			}
			if j == i {
				if sum <= 0 {
					// Roll back any rows appended in this call so the factor
					// stays consistent.
					c.l = c.l[:start]
					c.n = start
					return fmt.Errorf("%w (pivot %d: %g)", ErrNotPositiveDefinite, i, sum)
				}
				row[i] = math.Sqrt(sum)
			} else {
				row[j] = sum / lj[j]
			}
		}
		c.l = append(c.l, row)
		c.n++
	}
	return nil
}

// SolveL solves L x = b in place of a copy and returns x.
func (c *Cholesky) SolveL(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("mat: SolveL length %d, want %d", len(b), c.n))
	}
	x := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		li := c.l[i]
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= li[k] * x[k]
		}
		x[i] = sum / li[i]
	}
	return x
}

// SolveLT solves Lᵀ x = b and returns x.
func (c *Cholesky) SolveLT(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("mat: SolveLT length %d, want %d", len(b), c.n))
	}
	x := make([]float64, c.n)
	copy(x, b)
	for i := c.n - 1; i >= 0; i-- {
		x[i] /= c.l[i][i]
		xi := x[i]
		// Subtract column i of L from the remaining rhs entries.
		for k := 0; k < i; k++ {
			x[k] -= c.l[i][k] * xi
		}
	}
	return x
}

// Solve solves A x = b via the factor (two triangular solves).
func (c *Cholesky) Solve(b []float64) []float64 {
	return c.SolveLT(c.SolveL(b))
}

// LogDet returns log|A| = 2 Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l[i][i])
	}
	return 2 * s
}

// ExtendSolveL extends an existing partial solution of L x = b with the
// solution entries for newly appended rows. x must be the solution for the
// first len(x) rows; bTail supplies b entries for rows len(x)..Size()-1.
// It returns the full solution of length Size().
func (c *Cholesky) ExtendSolveL(x []float64, bTail []float64) []float64 {
	if len(x)+len(bTail) != c.n {
		panic(fmt.Sprintf("mat: ExtendSolveL %d+%d != %d", len(x), len(bTail), c.n))
	}
	out := make([]float64, c.n)
	copy(out, x)
	for i := len(x); i < c.n; i++ {
		li := c.l[i]
		sum := bTail[i-len(x)]
		for k := 0; k < i; k++ {
			sum -= li[k] * out[k]
		}
		out[i] = sum / li[i]
	}
	return out
}

// Reconstruct multiplies L Lᵀ back into a dense matrix (testing aid).
func (c *Cholesky) Reconstruct() *Matrix {
	a := NewMatrix(c.n, c.n)
	for i := 0; i < c.n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			m := j
			for k := 0; k <= m; k++ {
				s += c.l[i][k] * c.l[j][k]
			}
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	return a
}

// SolveSPD factorises a and solves a x = b in one call, applying growing
// jitter to the diagonal if the factorisation fails. It is the convenience
// path for one-shot solves (hyper-parameter fitting evaluates many small
// candidate matrices this way).
func SolveSPD(a *Matrix, b []float64) ([]float64, *Cholesky, error) {
	ch, err := CholeskyWithJitter(a, 1e-10, 8)
	if err != nil {
		return nil, nil, err
	}
	return ch.Solve(b), ch, nil
}

// CholeskyWithJitter attempts NewCholesky, adding jitter·10^attempt to the
// diagonal on failure, up to maxAttempts times.
func CholeskyWithJitter(a *Matrix, jitter float64, maxAttempts int) (*Cholesky, error) {
	ch, err := NewCholesky(a)
	if err == nil {
		return ch, nil
	}
	work := a.Clone()
	added := 0.0
	for attempt := 0; attempt < maxAttempts; attempt++ {
		add := jitter*math.Pow(10, float64(attempt)) - added
		work.AddDiag(add)
		added += add
		if ch, err = NewCholesky(work); err == nil {
			return ch, nil
		}
	}
	return nil, err
}
