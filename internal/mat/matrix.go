// Package mat provides the small dense linear-algebra kernel used by the
// Gaussian-process surrogates: matrices, vectors, Cholesky factorisation with
// incremental row/column extension, and triangular solves.
//
// The package is deliberately minimal — just what GP regression needs — and
// uses flat row-major storage so the hot loops vectorise well.
package mat

import (
	"fmt"
	"math"

	"ppatuner/internal/simd"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equally-sized rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += aik * brow[j]
			}
		}
	}
	return out
}

// MulVec returns a*x for a vector x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", a.Rows, a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = Dot(a.Row(i), x)
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	return simd.DotUnroll(a, b)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AddDiag adds v to every diagonal element of the square matrix m, in place.
func (m *Matrix) AddDiag(v float64) {
	if m.Rows != m.Cols {
		panic("mat: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += v
	}
}

// SymmetrizeUpper copies the upper triangle onto the lower triangle.
func (m *Matrix) SymmetrizeUpper() {
	if m.Rows != m.Cols {
		panic("mat: SymmetrizeUpper on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			m.Set(j, i, m.At(i, j))
		}
	}
}

// MaxAbsDiff returns the max absolute elementwise difference between a and b.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: MaxAbsDiff dimension mismatch")
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}
