package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %g, want 6", m.At(1, 2))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Errorf("Set/At round trip failed: got %g", m.At(0, 1))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromRows with ragged rows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Errorf("empty FromRows dims = %dx%d, want 0x0", m.Rows, m.Cols)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c, want) > 1e-12 {
		t.Errorf("Mul = %v, want %v", c.Data, want.Data)
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with mismatched dims did not panic")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := MulVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("transpose wrong: %+v", at)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Error("Norm2 wrong")
	}
}

func TestAddDiagAndSymmetrize(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {0, 1}})
	m.AddDiag(3)
	if m.At(0, 0) != 4 || m.At(1, 1) != 4 {
		t.Error("AddDiag wrong")
	}
	m.SymmetrizeUpper()
	if m.At(1, 0) != 2 {
		t.Error("SymmetrizeUpper wrong")
	}
}

// randomSPD builds a random symmetric positive-definite matrix B Bᵀ + n I.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := Mul(b, b.T())
	a.AddDiag(float64(n))
	return a
}

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20} {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := MaxAbsDiff(ch.Reconstruct(), a); d > 1e-9 {
			t.Errorf("n=%d: reconstruct max diff %g", n, d)
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSPD(rng, 12)
	xTrue := make([]float64, 12)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := MulVec(a, xTrue)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.Solve(b)
	for i := range x {
		if !almostEqual(x[i], xTrue[i], 1e-8) {
			t.Fatalf("Solve[%d] = %g, want %g", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskyTriangularSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 8)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 8)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// L (L⁻¹ b) == b
	y := ch.SolveL(b)
	for i := 0; i < 8; i++ {
		var s float64
		for k := 0; k <= i; k++ {
			s += ch.LRow(i)[k] * y[k]
		}
		if !almostEqual(s, b[i], 1e-9) {
			t.Fatalf("SolveL row %d: L y = %g, want %g", i, s, b[i])
		}
	}
	// Lᵀ (L⁻ᵀ b) == b
	z := ch.SolveLT(b)
	for i := 0; i < 8; i++ {
		var s float64
		for j := i; j < 8; j++ {
			s += ch.LRow(j)[i] * z[j]
		}
		if !almostEqual(s, b[i], 1e-9) {
			t.Fatalf("SolveLT row %d: Lᵀ z = %g, want %g", i, s, b[i])
		}
	}
}

// TestCholeskyExtendMatchesFull checks the incremental factorisation against
// a from-scratch factorisation of the extended matrix.
func TestCholeskyExtendMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, k := 10, 5
	a := randomSPD(rng, n+k)

	sub := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sub.Set(i, j, a.At(i, j))
		}
	}
	ch, err := NewCholesky(sub)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, k)
	for i := 0; i < k; i++ {
		rows[i] = make([]float64, n+i+1)
		for j := 0; j <= n+i; j++ {
			rows[i][j] = a.At(n+i, j)
		}
	}
	if err := ch.Extend(rows); err != nil {
		t.Fatal(err)
	}
	full, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Size() != full.Size() {
		t.Fatalf("size %d vs %d", ch.Size(), full.Size())
	}
	for i := 0; i < n+k; i++ {
		for j := 0; j <= i; j++ {
			if !almostEqual(ch.LRow(i)[j], full.LRow(i)[j], 1e-9) {
				t.Fatalf("L[%d][%d]: incremental %g vs full %g", i, j, ch.LRow(i)[j], full.LRow(i)[j])
			}
		}
	}
}

func TestCholeskyExtendBadRowLength(t *testing.T) {
	a := FromRows([][]float64{{4}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Extend([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("Extend with bad row length succeeded")
	}
}

func TestCholeskyExtendRollbackOnFailure(t *testing.T) {
	a := FromRows([][]float64{{4}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// Appending a row that makes the matrix indefinite must fail and leave
	// the factor at its previous size.
	if err := ch.Extend([][]float64{{4, 1}}); err == nil {
		t.Fatal("Extend with indefinite row succeeded")
	}
	if ch.Size() != 1 {
		t.Fatalf("size after failed Extend = %d, want 1", ch.Size())
	}
	// And the factor must still work.
	x := ch.Solve([]float64{8})
	if !almostEqual(x[0], 2, 1e-12) {
		t.Fatalf("Solve after rollback = %g, want 2", x[0])
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("factorising an indefinite matrix succeeded")
	}
}

func TestCholeskyWithJitter(t *testing.T) {
	// Singular (rank-1) matrix: plain Cholesky fails, jitter succeeds.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("factorising a singular matrix succeeded without jitter")
	}
	ch, err := CholeskyWithJitter(a, 1e-10, 10)
	if err != nil {
		t.Fatalf("jittered factorisation failed: %v", err)
	}
	if ch.Size() != 2 {
		t.Fatalf("size = %d, want 2", ch.Size())
	}
}

func TestLogDet(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ch.LogDet(), math.Log(36), 1e-12) {
		t.Errorf("LogDet = %g, want log 36 = %g", ch.LogDet(), math.Log(36))
	}
}

func TestExtendSolveL(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 7)
	b := make([]float64, 7)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	sub := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			sub.Set(i, j, a.At(i, j))
		}
	}
	ch, err := NewCholesky(sub)
	if err != nil {
		t.Fatal(err)
	}
	x4 := ch.SolveL(b[:4])
	rows := make([][]float64, 3)
	for i := 0; i < 3; i++ {
		rows[i] = make([]float64, 4+i+1)
		for j := 0; j <= 4+i; j++ {
			rows[i][j] = a.At(4+i, j)
		}
	}
	if err := ch.Extend(rows); err != nil {
		t.Fatal(err)
	}
	got := ch.ExtendSolveL(x4, b[4:])
	want := ch.SolveL(b)
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Fatalf("ExtendSolveL[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSolveSPD(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	x, ch, err := SolveSPD(a, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ch == nil || !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 1, 1e-10) {
		t.Errorf("SolveSPD = %v, want [1 1]", x)
	}
}

// Property: for random SPD systems, A·Solve(b) == b.
func TestQuickCholeskySolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		a := randomSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		x := ch.Solve(b)
		res := MulVec(a, x)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-7*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestQuickDotProperties(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		d1, d2 := Dot(a, b), Dot(b, a)
		return d1 == d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
