package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestAddScaledOuterPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5, 8, 17, 33} {
		packed := make([]float64, PackedLen(n))
		for i := range packed {
			packed[i] = rng.NormFloat64()
		}
		want := append([]float64(nil), packed...)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		c := 0.5 + rng.Float64()
		AddScaledOuterPacked(packed, v, c)
		idx := 0
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				want[idx] += c * v[i] * v[j]
				if diff := math.Abs(packed[idx] - want[idx]); diff > 1e-12*(1+math.Abs(want[idx])) {
					t.Fatalf("n=%d entry (%d,%d): got %g want %g", n, i, j, packed[idx], want[idx])
				}
				idx++
			}
		}
	}
}

func TestAddScaledOuterPackedLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on mismatched packed length")
		}
	}()
	AddScaledOuterPacked(make([]float64, 5), make([]float64, 3), 1)
}

// TestAddScaledOuterPackedFactorizes closes the loop with the consumer: a
// packed identity plus a few rank-1 terms must stay positive definite and
// reconstruct through the Cholesky factor.
func TestAddScaledOuterPackedFactorizes(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(12))
	packed := make([]float64, PackedLen(n))
	for i := 0; i < n; i++ {
		packed[PackedLen(i)+i] = 1
	}
	dense := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		dense.Set(i, i, 1)
	}
	for r := 0; r < 4; r++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		c := 0.1 + rng.Float64()
		AddScaledOuterPacked(packed, v, c)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dense.Set(i, j, dense.At(i, j)+c*v[i]*v[j])
			}
		}
	}
	var ch Cholesky
	if err := ch.FactorizePacked(packed, n, 1e-12, 2); err != nil {
		t.Fatalf("FactorizePacked: %v", err)
	}
	rec := ch.Reconstruct()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if diff := math.Abs(rec.At(i, j) - dense.At(i, j)); diff > 1e-9 {
				t.Fatalf("entry (%d,%d): reconstructed %g want %g", i, j, rec.At(i, j), dense.At(i, j))
			}
		}
	}
}
