package mat

import (
	"math"
	"math/rand"
	"testing"
)

// naiveCholesky is the textbook per-row-slice factorisation the flat layout
// replaced. It is the reference the flat factor must match entry for entry.
func naiveCholesky(a *Matrix) ([][]float64, bool) {
	l := make([][]float64, 0, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := make([]float64, i+1)
		copy(row, a.Data[i*a.Cols:i*a.Cols+i+1])
		for j := 0; j <= i; j++ {
			lj := row
			if j < i {
				lj = l[j]
			}
			sum := row[j]
			for k := 0; k < j; k++ {
				sum -= row[k] * lj[k]
			}
			if j == i {
				if sum <= 0 {
					return nil, false
				}
				row[i] = math.Sqrt(sum)
			} else {
				row[j] = sum / lj[j]
			}
		}
		l = append(l, row)
	}
	return l, true
}

// TestFlatMatchesNaive checks the flat blocked factor against the textbook
// per-row recurrence across sizes that exercise every block-remainder path
// (dot4 main loop, <4-column leftovers, scalar tails).
func TestFlatMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 33, 64, 127, 200} {
		a := randomSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref, ok := naiveCholesky(a)
		if !ok {
			t.Fatalf("n=%d: naive factorisation failed", n)
		}
		for i := 0; i < n; i++ {
			row := ch.LRow(i)
			for j := 0; j <= i; j++ {
				if d := math.Abs(row[j] - ref[i][j]); d > 1e-9*(1+math.Abs(ref[i][j])) {
					t.Fatalf("n=%d L[%d][%d]: flat %g naive %g", n, i, j, row[j], ref[i][j])
				}
			}
		}
		// Round-trip through Reconstruct as an independent check.
		if d := MaxAbsDiff(ch.Reconstruct(), a); d > 1e-8 {
			t.Fatalf("n=%d: reconstruct error %g", n, d)
		}
	}
}

// TestFactorizePackedMatchesNew checks that the zero-allocation refit path
// produces the same factor as a fresh NewCholesky, and that re-using the
// receiver across different matrices and sizes is safe.
func TestFactorizePackedMatchesNew(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var ws Cholesky
	for _, n := range []int{50, 20, 61} { // shrink then grow: exercises resize
		a := randomSPD(rng, n)
		packed := make([]float64, PackedLen(n))
		for i := 0; i < n; i++ {
			copy(packed[rowOff(i):rowOff(i)+i+1], a.Data[i*a.Cols:i*a.Cols+i+1])
		}
		if err := ws.FactorizePacked(packed, n, 1e-8, 6); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			got, want := ws.LRow(i), ref.LRow(i)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("n=%d L[%d][%d]: packed %g fresh %g", n, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestFactorizePackedJitterRecovers feeds a singular matrix and checks the
// jitter ladder rescues it, matching CholeskyWithJitter's behaviour.
func TestFactorizePackedJitterRecovers(t *testing.T) {
	// Rank-1: x xᵀ with x = (1,2,3) — singular, needs jitter.
	x := []float64{1, 2, 3}
	n := len(x)
	packed := make([]float64, PackedLen(n))
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			packed[rowOff(i)+j] = x[i] * x[j]
		}
	}
	var ws Cholesky
	if err := ws.FactorizePacked(packed, n, 1e-8, 6); err != nil {
		t.Fatalf("jitter did not recover: %v", err)
	}
	if ws.Size() != n {
		t.Fatalf("size %d after recovery, want %d", ws.Size(), n)
	}
	// With no attempts allowed it must fail and leave an empty factor.
	if err := ws.FactorizePacked(packed, n, 0, 0); err == nil {
		t.Fatal("expected failure with maxAttempts=0")
	}
	if ws.Size() != 0 {
		t.Fatalf("size %d after failure, want 0", ws.Size())
	}
}

// TestExtendRollbackFlat appends two rows where the second has a non-PD
// pivot and verifies the flat factor truncates back to its pre-Extend state,
// byte for byte, and still solves correctly afterwards.
func TestExtendRollbackFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]float64, len(ch.l))
	copy(before, ch.l)

	// First appended row is fine; the second duplicates the first appended
	// point exactly but with its diagonal reduced, which forces the pivot
	// negative (a duplicated point gives pivot 0 in exact arithmetic).
	good := make([]float64, 7)
	for j := 0; j < 6; j++ {
		good[j] = a.At(0, j) * 0.5
	}
	good[6] = a.At(0, 0) + 1 // safely dominant diagonal
	bad := make([]float64, 8)
	copy(bad, good[:6])
	bad[6] = good[6]
	bad[7] = good[6] - 1e-6

	if err := ch.Extend([][]float64{good, bad}); err == nil {
		t.Fatal("expected non-PD failure")
	}
	if ch.Size() != 6 {
		t.Fatalf("size %d after rollback, want 6", ch.Size())
	}
	if len(ch.l) != len(before) {
		t.Fatalf("backing length %d after rollback, want %d", len(ch.l), len(before))
	}
	for i := range before {
		if ch.l[i] != before[i] {
			t.Fatalf("backing[%d] changed across rollback: %g vs %g", i, ch.l[i], before[i])
		}
	}
	// The factor must still be usable.
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := ch.Solve(b)
	res := MulVec(a, got)
	for i := range b {
		if math.Abs(res[i]-b[i]) > 1e-8 {
			t.Fatalf("solve after rollback: residual %g at %d", res[i]-b[i], i)
		}
	}
}

// TestReserveNoRealloc checks that after Reserve(n) a campaign of Extend
// calls up to dimension n never moves the backing array.
func TestReserveNoRealloc(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const start, final = 8, 40
	a := randomSPD(rng, final)
	sub := NewMatrix(start, start)
	for i := 0; i < start; i++ {
		for j := 0; j < start; j++ {
			sub.Set(i, j, a.At(i, j))
		}
	}
	ch, err := NewCholesky(sub)
	if err != nil {
		t.Fatal(err)
	}
	ch.Reserve(final)
	base := &ch.l[0]
	for n := start; n < final; n++ {
		row := make([]float64, n+1)
		for j := 0; j <= n; j++ {
			row[j] = a.At(n, j)
		}
		if err := ch.Extend([][]float64{row}); err != nil {
			t.Fatalf("extend to %d: %v", n+1, err)
		}
		if &ch.l[0] != base {
			t.Fatalf("backing array moved at n=%d despite Reserve", n+1)
		}
	}
	if d := MaxAbsDiff(ch.Reconstruct(), a); d > 1e-7 {
		t.Fatalf("reconstruct after reserved extends: error %g", d)
	}
}

// TestSolveIntoAliasing checks the Into solve variants tolerate x aliasing b.
func TestSolveIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSPD(rng, 17)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 17)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := ch.Solve(b)
	got := make([]float64, len(b))
	copy(got, b)
	ch.SolveInto(got, got) // aliased
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased SolveInto differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
	wantL := ch.SolveL(b)
	gotL := make([]float64, len(b))
	copy(gotL, b)
	ch.SolveLInto(gotL, gotL)
	for i := range wantL {
		if gotL[i] != wantL[i] {
			t.Fatalf("aliased SolveLInto differs at %d: %g vs %g", i, gotL[i], wantL[i])
		}
	}
}

func BenchmarkFactorizePacked200(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	a := randomSPD(rng, 200)
	packed := make([]float64, PackedLen(200))
	for i := 0; i < 200; i++ {
		copy(packed[rowOff(i):rowOff(i)+i+1], a.Data[i*a.Cols:i*a.Cols+i+1])
	}
	var ws Cholesky
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ws.FactorizePacked(packed, 200, 1e-8, 6); err != nil {
			b.Fatal(err)
		}
	}
}
