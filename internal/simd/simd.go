// Package simd hosts the hand-vectorised kernels behind the GP hot path:
// the fused multi-dot product that drives the packed Cholesky factorisation
// and the Matérn-5/2 distance→covariance transform that drives the cached
// Gram fill. On amd64 with AVX2+FMA (checked once at startup) both run in
// assembly; everywhere else they fall back to portable Go with unrolled
// scalar loops. The fallbacks compute the same quantities with the same
// operation order per element, but SIMD results may differ from scalar ones
// in the last few ulps (FMA contraction, vectorised exp) — callers get
// deterministic results within one process, not across architectures.
package simd

import "math"

// Enabled reports whether the assembly kernels are in use (for diagnostics
// and tests).
func Enabled() bool { return useAsm }

// DotUnroll is a four-accumulator scalar dot product. Splitting the sum
// across independent accumulators breaks the add-latency chain so the CPU
// keeps several multiply-adds in flight even without SIMD.
func DotUnroll(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= len(a); k += 4 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
	}
	var s float64
	for ; k < len(a); k++ {
		s += a[k] * b[k]
	}
	return s + s0 + s1 + s2 + s3
}

// Dot4 computes the four dot products p[:n]·q0[:n] … p[:n]·q3[:n] in one
// pass. Sharing the p loads across four columns is what lifts a triangular
// factorisation's inner loop from load-bound scalar speed to SIMD speed.
func Dot4(p, q0, q1, q2, q3 []float64, n int) (s0, s1, s2, s3 float64) {
	if useAsm && n >= 8 {
		return dot4Asm(&p[0], &q0[0], &q1[0], &q2[0], &q3[0], n)
	}
	return DotUnroll(p[:n], q0[:n]), DotUnroll(p[:n], q1[:n]),
		DotUnroll(p[:n], q2[:n]), DotUnroll(p[:n], q3[:n])
}

const (
	sqrt5   = 2.23606797749979   // math.Sqrt(5)
	fiveThd = 5.0 / 3.0          // Matérn-5/2 polynomial coefficient
	expLo   = -708.3964185322641 // below this e^x underflows to 0
)

// Matern52FromR2 transforms scaled squared distances into Matérn-5/2
// covariances in place:
//
//	v[i] = vr · (1 + s + 5/3·v[i]) · e^{−s},   s = √5·√v[i]
//
// matching gp.Cov.EvalR2 for the Matérn kernel to within a few ulps. This is
// the scalar-transform half of every cached-Gram NLML evaluation, so on
// amd64 it runs 4-wide in assembly, including a polynomial e^x.
func Matern52FromR2(v []float64, vr float64) {
	i := 0
	if useAsm && len(v) >= 4 {
		quads := len(v) &^ 3
		matern52Asm(&v[0], quads, vr)
		i = quads
	}
	for ; i < len(v); i++ {
		s := sqrt5 * math.Sqrt(v[i])
		v[i] = vr * (1 + s + fiveThd*v[i]) * math.Exp(-s)
	}
}
