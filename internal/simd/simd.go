// Package simd hosts the hand-vectorised kernels behind the GP hot path:
// the fused multi-dot product that drives the packed Cholesky factorisation
// and the Matérn-5/2 distance→covariance transform that drives the cached
// Gram fill. On amd64 with AVX2+FMA (checked once at startup) both run in
// assembly; everywhere else they fall back to portable Go with unrolled
// scalar loops. The fallbacks compute the same quantities with the same
// operation order per element, but SIMD results may differ from scalar ones
// in the last few ulps (FMA contraction, vectorised exp) — callers get
// deterministic results within one process, not across architectures.
package simd

import "math"

// Enabled reports whether the assembly kernels are in use (for diagnostics
// and tests).
func Enabled() bool { return useAsm }

// Enabled512 reports whether the AVX-512 kernel variants are in use. AVX-512
// implies Enabled(); on hardware without AVX-512 the AVX2 kernels serve the
// same calls.
func Enabled512() bool { return useAVX512 }

// DotUnroll is a four-accumulator scalar dot product. Splitting the sum
// across independent accumulators breaks the add-latency chain so the CPU
// keeps several multiply-adds in flight even without SIMD.
func DotUnroll(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= len(a); k += 4 {
		s0 += a[k] * b[k]
		s1 += a[k+1] * b[k+1]
		s2 += a[k+2] * b[k+2]
		s3 += a[k+3] * b[k+3]
	}
	var s float64
	for ; k < len(a); k++ {
		s += a[k] * b[k]
	}
	return s + s0 + s1 + s2 + s3
}

// Dot4 computes the four dot products p[:n]·q0[:n] … p[:n]·q3[:n] in one
// pass. Sharing the p loads across four columns is what lifts a triangular
// factorisation's inner loop from load-bound scalar speed to SIMD speed.
func Dot4(p, q0, q1, q2, q3 []float64, n int) (s0, s1, s2, s3 float64) {
	if useAsm && n >= 8 {
		return dot4Asm(&p[0], &q0[0], &q1[0], &q2[0], &q3[0], n)
	}
	return DotUnroll(p[:n], q0[:n]), DotUnroll(p[:n], q1[:n]),
		DotUnroll(p[:n], q2[:n]), DotUnroll(p[:n], q3[:n])
}

const (
	sqrt5   = 2.23606797749979   // math.Sqrt(5)
	fiveThd = 5.0 / 3.0          // Matérn-5/2 polynomial coefficient
	expLo   = -708.3964185322641 // below this e^x underflows to 0
)

// Matern52FromR2 transforms scaled squared distances into Matérn-5/2
// covariances in place:
//
//	v[i] = vr · (1 + s + 5/3·v[i]) · e^{−s},   s = √5·√v[i]
//
// matching gp.Cov.EvalR2 for the Matérn kernel to within a few ulps. This is
// the scalar-transform half of every cached-Gram NLML evaluation, so on
// amd64 it runs 4-wide in assembly, including a polynomial e^x.
func Matern52FromR2(v []float64, vr float64) {
	i := 0
	if useAsm && len(v) >= 4 {
		quads := len(v) &^ 3
		matern52Asm(&v[0], quads, vr)
		i = quads
	}
	for ; i < len(v); i++ {
		s := sqrt5 * math.Sqrt(v[i])
		v[i] = vr * (1 + s + fiveThd*v[i]) * math.Exp(-s)
	}
}

// Matern52ARD fuses the two passes of the ARD Gram fill — per-dimension
// distance accumulation and the Matérn-5/2 transform — into one kernel:
//
//	dst[p] = vr · (1 + s + 5/3·r²) · e^{−s},
//	r²     = Σ_k sqd[p·d+k] · inv2[k],   s = √5·√r²,   d = len(inv2)
//
// where sqd is the pair-major squared-difference tensor and inv2 the
// per-dimension 1/ℓ². The paper's 8-knob tuning space gets dedicated asm
// fast paths (AVX-512 when the hardware has it, else AVX2+FMA); other
// dimensions and non-amd64 builds take the portable loop. Like the rest of
// the package, asm and portable results agree to within a few ulps, not
// bit-for-bit.
func Matern52ARD(dst, sqd, inv2 []float64, vr float64) {
	d := len(inv2)
	n := len(dst)
	if len(sqd) < n*d {
		panic("simd: Matern52ARD sqd shorter than len(dst)*len(inv2)")
	}
	i := 0
	if d == 8 {
		if useAVX512 && n >= 8 {
			e := n &^ 7
			matern52ARD8x512(&dst[0], &sqd[0], &inv2[0], e, vr)
			i = e
		} else if useAsm && n >= 4 {
			q := n &^ 3
			matern52ARD8Asm(&dst[0], &sqd[0], &inv2[0], q, vr)
			i = q
		}
		// Scalar tail (and the full portable path off amd64), unrolled with
		// named locals so the compiler drops the bounds checks.
		c0, c1, c2, c3 := inv2[0], inv2[1], inv2[2], inv2[3]
		c4, c5, c6, c7 := inv2[4], inv2[5], inv2[6], inv2[7]
		for ; i < n; i++ {
			row := sqd[i*8 : i*8+8 : i*8+8]
			r2 := row[0]*c0 + row[1]*c1 + row[2]*c2 + row[3]*c3 +
				row[4]*c4 + row[5]*c5 + row[6]*c6 + row[7]*c7
			s := sqrt5 * math.Sqrt(r2)
			dst[i] = vr * (1 + s + fiveThd*r2) * math.Exp(-s)
		}
		return
	}
	for ; i < n; i++ {
		row := sqd[i*d : i*d+d : i*d+d]
		var r2 float64
		for k := 0; k < d; k++ {
			r2 += row[k] * inv2[k]
		}
		s := sqrt5 * math.Sqrt(r2)
		dst[i] = vr * (1 + s + fiveThd*r2) * math.Exp(-s)
	}
}

// Axpy accumulates dst[i] += a·x[i] over len(dst) elements. It is the
// building block of the sparse-GP rank-1 updates (packed outer-product
// accumulation), so on amd64 it runs as an AVX2+FMA loop.
func Axpy(dst, x []float64, a float64) {
	n := len(dst)
	if len(x) < n {
		panic("simd: Axpy x shorter than dst")
	}
	i := 0
	if useAsm && n >= 4 {
		q := n &^ 3
		axpyAsm(&dst[0], &x[0], q, a)
		i = q
	}
	for ; i < n; i++ {
		dst[i] += a * x[i]
	}
}
