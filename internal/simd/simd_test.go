package simd

import (
	"math"
	"math/rand"
	"testing"
)

func TestDot4MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 4, 7, 8, 9, 15, 16, 31, 64, 127, 200} {
		p := make([]float64, n)
		qs := make([][]float64, 4)
		for k := range qs {
			qs[k] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			p[i] = rng.NormFloat64()
			for k := range qs {
				qs[k][i] = rng.NormFloat64()
			}
		}
		s0, s1, s2, s3 := Dot4(p, qs[0], qs[1], qs[2], qs[3], n)
		got := []float64{s0, s1, s2, s3}
		for k := range qs {
			var want float64
			for i := 0; i < n; i++ {
				want += p[i] * qs[k][i]
			}
			if diff := math.Abs(got[k] - want); diff > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("n=%d col=%d: got %g want %g (diff %g)", n, k, got[k], want, diff)
			}
		}
	}
}

func TestMatern52FromR2MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 64, 257} {
		r2 := make([]float64, n)
		for i := range r2 {
			switch i % 4 {
			case 0:
				r2[i] = 0 // diagonal entries are exact zeros
			case 1:
				r2[i] = rng.Float64() * 1e-6 // near-duplicate points
			default:
				// Up to the largest scaled distance the bounded length-scales
				// admit (ℓ ≥ 0.02 over the unit box ⇒ r² ≲ 8/0.02² = 2·10⁴).
				r2[i] = rng.Float64() * 2e4
			}
		}
		vr := 0.5 + rng.Float64()
		got := append([]float64(nil), r2...)
		Matern52FromR2(got, vr)
		for i, v := range r2 {
			s := sqrt5 * math.Sqrt(v)
			want := vr * (1 + s + fiveThd*v) * math.Exp(-s)
			if v == 0 && got[i] != vr {
				t.Fatalf("n=%d i=%d: r2=0 must give exactly vr=%g, got %g", n, i, vr, got[i])
			}
			diff := math.Abs(got[i] - want)
			if diff > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("n=%d i=%d r2=%g: got %g want %g (rel %g)", n, i, v, got[i], want, diff/math.Max(want, 1e-300))
			}
		}
	}
}

// TestMatern52FromR2Underflow checks that distances far beyond the clamp
// threshold come back as zero rather than garbage exponent bits.
func TestMatern52FromR2Underflow(t *testing.T) {
	v := []float64{1e12, 1e12, 1e12, 1e12}
	Matern52FromR2(v, 1.0)
	for i, x := range v {
		if x != 0 || math.Signbit(x) && x == 0 {
			if x != 0 {
				t.Fatalf("lane %d: want 0 for underflow, got %g", i, x)
			}
		}
	}
}

// edgeLens are the lengths the kernel dispatchers branch on: empty input,
// scalar-tail-only inputs (1, 3), and one each side of the 4-lane and 8-lane
// block sizes (4k±1), plus a few longer mixed cases.
var edgeLens = []int{0, 1, 3, 4, 5, 7, 8, 9, 11, 12, 13, 15, 16, 17, 31, 32, 33, 63, 64, 65}

// TestDot4EdgeLengths drives Dot4 through every dispatch boundary on
// whatever path (asm or portable) is live in this binary; the amd64-only
// TestKernelsAcrossPaths re-runs it with each path forced.
func TestDot4EdgeLengths(t *testing.T) { testDot4EdgeLengths(t) }

func testDot4EdgeLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range edgeLens {
		p := make([]float64, n)
		qs := make([][]float64, 4)
		for k := range qs {
			qs[k] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			p[i] = rng.NormFloat64()
			for k := range qs {
				qs[k][i] = rng.NormFloat64()
			}
		}
		s0, s1, s2, s3 := Dot4(p, qs[0], qs[1], qs[2], qs[3], n)
		got := []float64{s0, s1, s2, s3}
		for k := range qs {
			want := 0.0
			for i := 0; i < n; i++ {
				want += p[i] * qs[k][i]
			}
			if diff := math.Abs(got[k] - want); diff > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("n=%d col=%d: got %g want %g (diff %g)", n, k, got[k], want, diff)
			}
		}
	}
}

// TestMatern52FromR2EdgeLengths covers the quad/tail split of the in-place
// transform at every boundary length.
func TestMatern52FromR2EdgeLengths(t *testing.T) { testMatern52FromR2EdgeLengths(t) }

func testMatern52FromR2EdgeLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range edgeLens {
		r2 := make([]float64, n)
		for i := range r2 {
			switch i % 3 {
			case 0:
				r2[i] = 0
			case 1:
				r2[i] = rng.Float64() * 1e-6
			default:
				r2[i] = rng.Float64() * 2e4
			}
		}
		vr := 0.5 + rng.Float64()
		got := append([]float64(nil), r2...)
		Matern52FromR2(got, vr)
		for i, v := range r2 {
			s := sqrt5 * math.Sqrt(v)
			want := vr * (1 + s + fiveThd*v) * math.Exp(-s)
			if v == 0 && got[i] != vr {
				t.Fatalf("n=%d i=%d: r2=0 must give exactly vr=%g, got %g", n, i, vr, got[i])
			}
			if diff := math.Abs(got[i] - want); diff > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("n=%d i=%d r2=%g: got %g want %g", n, i, v, got[i], want)
			}
		}
	}
}

// TestMatern52ARDMatchesScalar checks the fused distance+covariance kernel
// against the plain two-pass scalar computation, across dispatch-boundary
// lengths and the full distance range the bounded lengthscales admit. The
// asm paths accumulate r² in a different association order than the scalar
// loop, so the tolerance is a little wider than the pure-transform tests
// (the r² ulps are amplified by s in e^{−s}).
func TestMatern52ARDMatchesScalar(t *testing.T) { testMatern52ARDMatchesScalar(t) }

func testMatern52ARDMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, d := range []int{1, 3, 5, 8} {
		inv2 := make([]float64, d)
		for k := range inv2 {
			inv2[k] = 0.25 + 2*rng.Float64()
		}
		for _, n := range edgeLens {
			sqd := make([]float64, n*d)
			for p := 0; p < n; p++ {
				if p%5 == 0 {
					continue // whole-row zeros: the r2=0 diagonal case
				}
				for k := 0; k < d; k++ {
					sqd[p*d+k] = rng.Float64() * 2e3
				}
			}
			vr := 0.5 + rng.Float64()
			dst := make([]float64, n)
			Matern52ARD(dst, sqd, inv2, vr)
			for p := 0; p < n; p++ {
				var r2 float64
				for k := 0; k < d; k++ {
					r2 += sqd[p*d+k] * inv2[k]
				}
				s := sqrt5 * math.Sqrt(r2)
				want := vr * (1 + s + fiveThd*r2) * math.Exp(-s)
				if r2 == 0 && dst[p] != vr {
					t.Fatalf("d=%d n=%d p=%d: r2=0 must give exactly vr=%g, got %g", d, n, p, vr, dst[p])
				}
				if diff := math.Abs(dst[p] - want); diff > 5e-12*(1+math.Abs(want)) {
					t.Fatalf("d=%d n=%d p=%d r2=%g: got %g want %g (diff %g)", d, n, p, r2, dst[p], want, diff)
				}
			}
		}
	}
}

// TestAxpyEdgeLengths checks the FMA accumulate kernel at every dispatch
// boundary.
func TestAxpyEdgeLengths(t *testing.T) { testAxpyEdgeLengths(t) }

func testAxpyEdgeLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range edgeLens {
		dst := make([]float64, n)
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			dst[i] = rng.NormFloat64()
			x[i] = rng.NormFloat64()
		}
		a := rng.NormFloat64()
		want := make([]float64, n)
		for i := range want {
			want[i] = dst[i] + a*x[i]
		}
		Axpy(dst, x, a)
		for i := range dst {
			if diff := math.Abs(dst[i] - want[i]); diff > 1e-13*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d i=%d: got %g want %g", n, i, dst[i], want[i])
			}
		}
	}
}

func BenchmarkMatern52FromR2(b *testing.B) {
	n := 20100 // packed length of a 200-point Gram matrix
	src := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = rng.Float64() * 100
	}
	buf := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		Matern52FromR2(buf, 1.3)
	}
}

func BenchmarkMatern52ARD(b *testing.B) {
	const d = 8
	n := 20100 // packed length of a 200-point Gram matrix
	sqd := make([]float64, n*d)
	rng := rand.New(rand.NewSource(4))
	for i := range sqd {
		sqd[i] = rng.Float64() * 50
	}
	inv2 := make([]float64, d)
	for k := range inv2 {
		inv2[k] = 1 + rng.Float64()
	}
	dst := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Matern52ARD(dst, sqd, inv2, 1.3)
	}
}
