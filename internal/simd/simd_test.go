package simd

import (
	"math"
	"math/rand"
	"testing"
)

func TestDot4MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 4, 7, 8, 9, 15, 16, 31, 64, 127, 200} {
		p := make([]float64, n)
		qs := make([][]float64, 4)
		for k := range qs {
			qs[k] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			p[i] = rng.NormFloat64()
			for k := range qs {
				qs[k][i] = rng.NormFloat64()
			}
		}
		s0, s1, s2, s3 := Dot4(p, qs[0], qs[1], qs[2], qs[3], n)
		got := []float64{s0, s1, s2, s3}
		for k := range qs {
			var want float64
			for i := 0; i < n; i++ {
				want += p[i] * qs[k][i]
			}
			if diff := math.Abs(got[k] - want); diff > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("n=%d col=%d: got %g want %g (diff %g)", n, k, got[k], want, diff)
			}
		}
	}
}

func TestMatern52FromR2MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 64, 257} {
		r2 := make([]float64, n)
		for i := range r2 {
			switch i % 4 {
			case 0:
				r2[i] = 0 // diagonal entries are exact zeros
			case 1:
				r2[i] = rng.Float64() * 1e-6 // near-duplicate points
			default:
				// Up to the largest scaled distance the bounded length-scales
				// admit (ℓ ≥ 0.02 over the unit box ⇒ r² ≲ 8/0.02² = 2·10⁴).
				r2[i] = rng.Float64() * 2e4
			}
		}
		vr := 0.5 + rng.Float64()
		got := append([]float64(nil), r2...)
		Matern52FromR2(got, vr)
		for i, v := range r2 {
			s := sqrt5 * math.Sqrt(v)
			want := vr * (1 + s + fiveThd*v) * math.Exp(-s)
			if v == 0 && got[i] != vr {
				t.Fatalf("n=%d i=%d: r2=0 must give exactly vr=%g, got %g", n, i, vr, got[i])
			}
			diff := math.Abs(got[i] - want)
			if diff > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("n=%d i=%d r2=%g: got %g want %g (rel %g)", n, i, v, got[i], want, diff/math.Max(want, 1e-300))
			}
		}
	}
}

// TestMatern52FromR2Underflow checks that distances far beyond the clamp
// threshold come back as zero rather than garbage exponent bits.
func TestMatern52FromR2Underflow(t *testing.T) {
	v := []float64{1e12, 1e12, 1e12, 1e12}
	Matern52FromR2(v, 1.0)
	for i, x := range v {
		if x != 0 || math.Signbit(x) && x == 0 {
			if x != 0 {
				t.Fatalf("lane %d: want 0 for underflow, got %g", i, x)
			}
		}
	}
}

func BenchmarkMatern52FromR2(b *testing.B) {
	n := 20100 // packed length of a 200-point Gram matrix
	src := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = rng.Float64() * 100
	}
	buf := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		Matern52FromR2(buf, 1.3)
	}
}
