//go:build amd64

#include "textflag.h"

// func dot4Asm(p, q0, q1, q2, q3 *float64, n int) (s0, s1, s2, s3 float64)
//
// Four simultaneous dot products sharing the p loads. Eight YMM
// accumulators (two per column, k unrolled by 8) keep enough FMAs in
// flight to cover the FMA latency; the loop is load-bound at ~10 vector
// loads per 32 multiply-adds.
TEXT ·dot4Asm(SB), NOSPLIT, $0-80
	MOVQ p+0(FP), SI
	MOVQ q0+8(FP), R8
	MOVQ q1+16(FP), R9
	MOVQ q2+24(FP), R10
	MOVQ q3+32(FP), R11
	MOVQ n+40(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   quad

loop8:
	VMOVUPD (SI), Y8
	VMOVUPD 32(SI), Y9
	VFMADD231PD (R8), Y8, Y0
	VFMADD231PD 32(R8), Y9, Y4
	VFMADD231PD (R9), Y8, Y1
	VFMADD231PD 32(R9), Y9, Y5
	VFMADD231PD (R10), Y8, Y2
	VFMADD231PD 32(R10), Y9, Y6
	VFMADD231PD (R11), Y8, Y3
	VFMADD231PD 32(R11), Y9, Y7
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	DECQ DX
	JNZ  loop8

quad:
	TESTQ $4, CX
	JZ    merge
	VMOVUPD (SI), Y8
	VFMADD231PD (R8), Y8, Y0
	VFMADD231PD (R9), Y8, Y1
	VFMADD231PD (R10), Y8, Y2
	VFMADD231PD (R11), Y8, Y3
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11

merge:
	VADDPD Y4, Y0, Y0
	VADDPD Y5, Y1, Y1
	VADDPD Y6, Y2, Y2
	VADDPD Y7, Y3, Y3

	// The tail accumulates in X10..X13, NOT the low lanes of Y0..Y3: VEX
	// scalar ops zero bits 128..255 of their destination, which would wipe
	// the vector partial sums before the horizontal reduce.
	VXORPD X10, X10, X10
	VXORPD X11, X11, X11
	VXORPD X12, X12, X12
	VXORPD X13, X13, X13
	ANDQ $3, CX
	JZ   reduce

tail:
	VMOVSD (SI), X8
	VMOVSD (R8), X9
	VFMADD231SD X9, X8, X10
	VMOVSD (R9), X9
	VFMADD231SD X9, X8, X11
	VMOVSD (R10), X9
	VFMADD231SD X9, X8, X12
	VMOVSD (R11), X9
	VFMADD231SD X9, X8, X13
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNZ  tail

reduce:
	VEXTRACTF128 $1, Y0, X8
	VADDPD       X8, X0, X0
	VHADDPD      X0, X0, X0
	VADDSD       X10, X0, X0
	VMOVSD       X0, s0+48(FP)
	VEXTRACTF128 $1, Y1, X8
	VADDPD       X8, X1, X1
	VHADDPD      X1, X1, X1
	VADDSD       X11, X1, X1
	VMOVSD       X1, s1+56(FP)
	VEXTRACTF128 $1, Y2, X8
	VADDPD       X8, X2, X2
	VHADDPD      X2, X2, X2
	VADDSD       X12, X2, X2
	VMOVSD       X2, s2+64(FP)
	VEXTRACTF128 $1, Y3, X8
	VADDPD       X8, X3, X3
	VHADDPD      X3, X3, X3
	VADDSD       X13, X3, X3
	VMOVSD       X3, s3+72(FP)
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func matern52Asm(v *float64, n int, vr float64)
//
// In-place Matérn-5/2 transform of scaled squared distances, four lanes per
// iteration: s = √5·√r2, then vr·(1 + s + 5/3·r2)·e^{−s} with e^x computed
// as 2^k·P(r) (round-to-nearest range reduction, degree-11 Taylor P, 2^k
// assembled directly in the exponent bits). Constants live in ·maternTab;
// see its layout comment in simd_amd64.go.
TEXT ·matern52Asm(SB), NOSPLIT, $0-24
	MOVQ v+0(FP), SI
	MOVQ n+8(FP), CX
	VBROADCASTSD vr+16(FP), Y15
	LEAQ ·maternTab(SB), DX
	SHRQ $2, CX
	JZ   m52done

m52loop:
	VMOVUPD (SI), Y1             // r2
	VSQRTPD Y1, Y2
	VMULPD  (DX), Y2, Y2         // s = sqrt5 * sqrt(r2)
	VMOVUPD 32(DX), Y3
	VADDPD  Y2, Y3, Y3           // 1 + s
	VMULPD  64(DX), Y1, Y4
	VADDPD  Y4, Y3, Y3           // A = 1 + s + (5/3) r2
	VXORPD  Y0, Y0, Y0
	VSUBPD  Y2, Y0, Y0           // y = -s
	VCMPPD  $0x0d, 96(DX), Y0, Y8 // underflow mask: y >= expLo (all-ones when e^y is representable)
	VMAXPD  96(DX), Y0, Y0       // clamp so the 2^k exponent bits stay sane
	VMULPD  128(DX), Y0, Y4
	VROUNDPD $0, Y4, Y4          // k = round(y*log2e)
	VMOVAPD Y0, Y5
	VFNMADD231PD 160(DX), Y4, Y5 // r = y - k*ln2hi
	VFNMADD231PD 192(DX), Y4, Y5 // r -= k*ln2lo
	VMOVUPD 256(DX), Y6          // Horner from 1/11!
	VFMADD213PD 288(DX), Y5, Y6
	VFMADD213PD 320(DX), Y5, Y6
	VFMADD213PD 352(DX), Y5, Y6
	VFMADD213PD 384(DX), Y5, Y6
	VFMADD213PD 416(DX), Y5, Y6
	VFMADD213PD 448(DX), Y5, Y6
	VFMADD213PD 480(DX), Y5, Y6
	VFMADD213PD 512(DX), Y5, Y6
	VFMADD213PD 544(DX), Y5, Y6
	VFMADD213PD 576(DX), Y5, Y6
	VFMADD213PD 608(DX), Y5, Y6  // P(r) = e^r
	VCVTPD2DQY Y4, X7
	VPMOVSXDQ X7, Y7
	VPADDQ 224(DX), Y7, Y7
	VPSLLQ $52, Y7, Y7           // 2^k in the exponent bits
	VMULPD Y7, Y6, Y6
	VMULPD Y3, Y6, Y6
	VMULPD Y15, Y6, Y6
	VANDPD Y8, Y6, Y6            // zero lanes whose exponent underflowed
	VMOVUPD Y6, (SI)
	ADDQ $32, SI
	DECQ CX
	JNZ  m52loop

m52done:
	VZEROUPPER
	RET

// func axpyAsm(dst, x *float64, n int, a float64)
//
// dst[i] += a*x[i] for i < n, n a multiple of 4. Two independent FMA
// accumulator streams cover the FMA latency; the sparse-GP rank-1 updates
// call this once per packed matrix row.
TEXT ·axpyAsm(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSD a+24(FP), Y15
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   axquad

axloop8:
	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VFMADD231PD (SI), Y15, Y0
	VFMADD231PD 32(SI), Y15, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ DX
	JNZ  axloop8

axquad:
	TESTQ $4, CX
	JZ    axdone
	VMOVUPD (DI), Y0
	VFMADD231PD (SI), Y15, Y0
	VMOVUPD Y0, (DI)

axdone:
	VZEROUPPER
	RET

// func matern52ARD8Asm(dst, sqd, inv2 *float64, n int, vr float64)
//
// Fused ARD distance+covariance for d=8, four rows per iteration: each row's
// eight squared differences are scaled by inv2 into 4-lane partials, a 4×4
// transpose-reduce (VHADDPD + VPERM2F128) packs the four row sums into one
// register, and the Matérn-5/2 pipeline of matern52Asm finishes in registers.
// n is a multiple of 4; constants live in ·maternTab.
TEXT ·matern52ARD8Asm(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ sqd+8(FP), SI
	MOVQ inv2+16(FP), BX
	MOVQ n+24(FP), CX
	VBROADCASTSD vr+32(FP), Y15
	LEAQ ·maternTab(SB), DX
	VMOVUPD (BX), Y14            // inv2[0..3]
	VMOVUPD 32(BX), Y13          // inv2[4..7]
	SHRQ $2, CX
	JZ   ard8done

ard8loop:
	// Per-row 4-lane partials: lane l of row r holds d_l·c_l + d_{l+4}·c_{l+4}.
	VMOVUPD     (SI), Y8
	VMULPD      Y14, Y8, Y8
	VFMADD231PD 32(SI), Y13, Y8  // row a
	VMOVUPD     64(SI), Y9
	VMULPD      Y14, Y9, Y9
	VFMADD231PD 96(SI), Y13, Y9  // row b
	VMOVUPD     128(SI), Y10
	VMULPD      Y14, Y10, Y10
	VFMADD231PD 160(SI), Y13, Y10 // row c
	VMOVUPD     192(SI), Y11
	VMULPD      Y14, Y11, Y11
	VFMADD231PD 224(SI), Y13, Y11 // row d

	// 4×4 transpose-reduce: Y1 = [r²a, r²b, r²c, r²d].
	VHADDPD    Y9, Y8, Y8        // [a01, b01, a23, b23]
	VHADDPD    Y11, Y10, Y10     // [c01, d01, c23, d23]
	VPERM2F128 $0x20, Y10, Y8, Y9 // [a01, b01, c01, d01]
	VPERM2F128 $0x31, Y10, Y8, Y10 // [a23, b23, c23, d23]
	VADDPD     Y10, Y9, Y1

	// Matérn-5/2 of the four r² values (same pipeline as matern52Asm).
	VSQRTPD Y1, Y2
	VMULPD  (DX), Y2, Y2         // s = sqrt5 * sqrt(r2)
	VMOVUPD 32(DX), Y3
	VADDPD  Y2, Y3, Y3           // 1 + s
	VMULPD  64(DX), Y1, Y4
	VADDPD  Y4, Y3, Y3           // A = 1 + s + (5/3) r2
	VXORPD  Y0, Y0, Y0
	VSUBPD  Y2, Y0, Y0           // y = -s
	VCMPPD  $0x0d, 96(DX), Y0, Y8 // underflow mask: y >= expLo
	VMAXPD  96(DX), Y0, Y0
	VMULPD  128(DX), Y0, Y4
	VROUNDPD $0, Y4, Y4          // k = round(y*log2e)
	VMOVAPD Y0, Y5
	VFNMADD231PD 160(DX), Y4, Y5 // r = y - k*ln2hi
	VFNMADD231PD 192(DX), Y4, Y5 // r -= k*ln2lo
	VMOVUPD 256(DX), Y6          // Horner from 1/11!
	VFMADD213PD 288(DX), Y5, Y6
	VFMADD213PD 320(DX), Y5, Y6
	VFMADD213PD 352(DX), Y5, Y6
	VFMADD213PD 384(DX), Y5, Y6
	VFMADD213PD 416(DX), Y5, Y6
	VFMADD213PD 448(DX), Y5, Y6
	VFMADD213PD 480(DX), Y5, Y6
	VFMADD213PD 512(DX), Y5, Y6
	VFMADD213PD 544(DX), Y5, Y6
	VFMADD213PD 576(DX), Y5, Y6
	VFMADD213PD 608(DX), Y5, Y6  // P(r) = e^r
	VCVTPD2DQY Y4, X7
	VPMOVSXDQ X7, Y7
	VPADDQ 224(DX), Y7, Y7
	VPSLLQ $52, Y7, Y7           // 2^k in the exponent bits
	VMULPD Y7, Y6, Y6
	VMULPD Y3, Y6, Y6
	VMULPD Y15, Y6, Y6
	VANDPD Y8, Y6, Y6            // zero lanes whose exponent underflowed
	VMOVUPD Y6, (DI)
	ADDQ $256, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  ard8loop

ard8done:
	VZEROUPPER
	RET

// func matern52ARD8x512(dst, sqd, inv2 *float64, n int, vr float64)
//
// AVX-512 widening of matern52ARD8Asm: one ZMM register holds a full
// 8-dimension row, eight rows reduce per iteration via an
// unpack/VSHUFF64X2 tree, and the Matérn/exp pipeline runs 8-wide with
// broadcast-from-memory constants (lane 0 of each ·maternTab block). Only
// AVX512F instructions are used (VPXORQ for zeroing, a merge-masked move
// instead of VANDPD — both XORPD/ANDPD on ZMM would need DQ), matching the
// useAVX512 detection gate. n is a multiple of 8.
TEXT ·matern52ARD8x512(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ sqd+8(FP), SI
	MOVQ inv2+16(FP), BX
	MOVQ n+24(FP), CX
	VBROADCASTSD vr+32(FP), Z15
	LEAQ ·maternTab(SB), DX
	VMOVUPD (BX), Z14            // inv2[0..7]
	SHRQ $3, CX
	JZ   ard512done

ard512loop:
	// Eight rows, one ZMM each, scaled by inv2.
	VMOVUPD (SI), Z0
	VMULPD  Z14, Z0, Z0
	VMOVUPD 64(SI), Z1
	VMULPD  Z14, Z1, Z1
	VMOVUPD 128(SI), Z2
	VMULPD  Z14, Z2, Z2
	VMOVUPD 192(SI), Z3
	VMULPD  Z14, Z3, Z3
	VMOVUPD 256(SI), Z4
	VMULPD  Z14, Z4, Z4
	VMOVUPD 320(SI), Z5
	VMULPD  Z14, Z5, Z5
	VMOVUPD 384(SI), Z6
	VMULPD  Z14, Z6, Z6
	VMOVUPD 448(SI), Z7
	VMULPD  Z14, Z7, Z7

	// 8×8 transpose-reduce to Z1 = [r²0 … r²7].
	// Level 1: adjacent-lane sums of row pairs, interleaved per 128-bit lane.
	VUNPCKLPD Z1, Z0, Z8
	VUNPCKHPD Z1, Z0, Z9
	VADDPD    Z9, Z8, Z8         // p0 (rows 0,1)
	VUNPCKLPD Z3, Z2, Z9
	VUNPCKHPD Z3, Z2, Z10
	VADDPD    Z10, Z9, Z9        // p1 (rows 2,3)
	VUNPCKLPD Z5, Z4, Z10
	VUNPCKHPD Z5, Z4, Z11
	VADDPD    Z11, Z10, Z10      // p2 (rows 4,5)
	VUNPCKLPD Z7, Z6, Z11
	VUNPCKHPD Z7, Z6, Z12
	VADDPD    Z12, Z11, Z11      // p3 (rows 6,7)
	// Level 2: fold the four 128-bit blocks of each pair of p's.
	VSHUFF64X2 $0x44, Z9, Z8, Z0
	VSHUFF64X2 $0xEE, Z9, Z8, Z1
	VADDPD     Z1, Z0, Z0        // S1 (rows 0..3)
	VSHUFF64X2 $0x44, Z11, Z10, Z2
	VSHUFF64X2 $0xEE, Z11, Z10, Z3
	VADDPD     Z3, Z2, Z2        // S2 (rows 4..7)
	// Level 3: final fold into row order.
	VSHUFF64X2 $0x88, Z2, Z0, Z1
	VSHUFF64X2 $0xDD, Z2, Z0, Z3
	VADDPD     Z3, Z1, Z1        // r² per row

	// Matérn-5/2 pipeline, 8-wide.
	VSQRTPD Z1, Z2
	VMULPD.BCST (DX), Z2, Z2     // s = sqrt5 * sqrt(r2)
	VBROADCASTSD 32(DX), Z3
	VADDPD  Z2, Z3, Z3           // 1 + s
	VMULPD.BCST 64(DX), Z1, Z4
	VADDPD  Z4, Z3, Z3           // A = 1 + s + (5/3) r2
	VPXORQ  Z0, Z0, Z0
	VSUBPD  Z2, Z0, Z0           // y = -s
	VBROADCASTSD 96(DX), Z5      // expLo
	VCMPPD  $0x0d, Z5, Z0, K1    // underflow mask: y >= expLo
	VMAXPD  Z5, Z0, Z0
	VMULPD.BCST 128(DX), Z0, Z4
	VRNDSCALEPD $0, Z4, Z4       // k = round(y*log2e)
	VMOVAPD Z0, Z5
	VFNMADD231PD.BCST 160(DX), Z4, Z5 // r = y - k*ln2hi
	VFNMADD231PD.BCST 192(DX), Z4, Z5 // r -= k*ln2lo
	VBROADCASTSD 256(DX), Z6     // Horner from 1/11!
	VFMADD213PD.BCST 288(DX), Z5, Z6
	VFMADD213PD.BCST 320(DX), Z5, Z6
	VFMADD213PD.BCST 352(DX), Z5, Z6
	VFMADD213PD.BCST 384(DX), Z5, Z6
	VFMADD213PD.BCST 416(DX), Z5, Z6
	VFMADD213PD.BCST 448(DX), Z5, Z6
	VFMADD213PD.BCST 480(DX), Z5, Z6
	VFMADD213PD.BCST 512(DX), Z5, Z6
	VFMADD213PD.BCST 544(DX), Z5, Z6
	VFMADD213PD.BCST 576(DX), Z5, Z6
	VFMADD213PD.BCST 608(DX), Z5, Z6 // P(r) = e^r
	VCVTPD2DQ Z4, Y7
	VPMOVSXDQ Y7, Z7
	VPADDQ.BCST 224(DX), Z7, Z7
	VPSLLQ  $52, Z7, Z7          // 2^k in the exponent bits
	VMULPD  Z7, Z6, Z6
	VMULPD  Z3, Z6, Z6
	VMULPD  Z15, Z6, Z6
	VPXORQ  Z8, Z8, Z8
	VMOVAPD Z6, K1, Z8           // keep representable lanes, zero the rest
	VMOVUPD Z8, (DI)
	ADDQ $512, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  ard512loop

ard512done:
	VZEROUPPER
	RET
