//go:build amd64

#include "textflag.h"

// func dot4Asm(p, q0, q1, q2, q3 *float64, n int) (s0, s1, s2, s3 float64)
//
// Four simultaneous dot products sharing the p loads. Eight YMM
// accumulators (two per column, k unrolled by 8) keep enough FMAs in
// flight to cover the FMA latency; the loop is load-bound at ~10 vector
// loads per 32 multiply-adds.
TEXT ·dot4Asm(SB), NOSPLIT, $0-80
	MOVQ p+0(FP), SI
	MOVQ q0+8(FP), R8
	MOVQ q1+16(FP), R9
	MOVQ q2+24(FP), R10
	MOVQ q3+32(FP), R11
	MOVQ n+40(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   quad

loop8:
	VMOVUPD (SI), Y8
	VMOVUPD 32(SI), Y9
	VFMADD231PD (R8), Y8, Y0
	VFMADD231PD 32(R8), Y9, Y4
	VFMADD231PD (R9), Y8, Y1
	VFMADD231PD 32(R9), Y9, Y5
	VFMADD231PD (R10), Y8, Y2
	VFMADD231PD 32(R10), Y9, Y6
	VFMADD231PD (R11), Y8, Y3
	VFMADD231PD 32(R11), Y9, Y7
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	DECQ DX
	JNZ  loop8

quad:
	TESTQ $4, CX
	JZ    merge
	VMOVUPD (SI), Y8
	VFMADD231PD (R8), Y8, Y0
	VFMADD231PD (R9), Y8, Y1
	VFMADD231PD (R10), Y8, Y2
	VFMADD231PD (R11), Y8, Y3
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11

merge:
	VADDPD Y4, Y0, Y0
	VADDPD Y5, Y1, Y1
	VADDPD Y6, Y2, Y2
	VADDPD Y7, Y3, Y3

	// The tail accumulates in X10..X13, NOT the low lanes of Y0..Y3: VEX
	// scalar ops zero bits 128..255 of their destination, which would wipe
	// the vector partial sums before the horizontal reduce.
	VXORPD X10, X10, X10
	VXORPD X11, X11, X11
	VXORPD X12, X12, X12
	VXORPD X13, X13, X13
	ANDQ $3, CX
	JZ   reduce

tail:
	VMOVSD (SI), X8
	VMOVSD (R8), X9
	VFMADD231SD X9, X8, X10
	VMOVSD (R9), X9
	VFMADD231SD X9, X8, X11
	VMOVSD (R10), X9
	VFMADD231SD X9, X8, X12
	VMOVSD (R11), X9
	VFMADD231SD X9, X8, X13
	ADDQ $8, SI
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	DECQ CX
	JNZ  tail

reduce:
	VEXTRACTF128 $1, Y0, X8
	VADDPD       X8, X0, X0
	VHADDPD      X0, X0, X0
	VADDSD       X10, X0, X0
	VMOVSD       X0, s0+48(FP)
	VEXTRACTF128 $1, Y1, X8
	VADDPD       X8, X1, X1
	VHADDPD      X1, X1, X1
	VADDSD       X11, X1, X1
	VMOVSD       X1, s1+56(FP)
	VEXTRACTF128 $1, Y2, X8
	VADDPD       X8, X2, X2
	VHADDPD      X2, X2, X2
	VADDSD       X12, X2, X2
	VMOVSD       X2, s2+64(FP)
	VEXTRACTF128 $1, Y3, X8
	VADDPD       X8, X3, X3
	VHADDPD      X3, X3, X3
	VADDSD       X13, X3, X3
	VMOVSD       X3, s3+72(FP)
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func matern52Asm(v *float64, n int, vr float64)
//
// In-place Matérn-5/2 transform of scaled squared distances, four lanes per
// iteration: s = √5·√r2, then vr·(1 + s + 5/3·r2)·e^{−s} with e^x computed
// as 2^k·P(r) (round-to-nearest range reduction, degree-11 Taylor P, 2^k
// assembled directly in the exponent bits). Constants live in ·maternTab;
// see its layout comment in simd_amd64.go.
TEXT ·matern52Asm(SB), NOSPLIT, $0-24
	MOVQ v+0(FP), SI
	MOVQ n+8(FP), CX
	VBROADCASTSD vr+16(FP), Y15
	LEAQ ·maternTab(SB), DX
	SHRQ $2, CX
	JZ   m52done

m52loop:
	VMOVUPD (SI), Y1             // r2
	VSQRTPD Y1, Y2
	VMULPD  (DX), Y2, Y2         // s = sqrt5 * sqrt(r2)
	VMOVUPD 32(DX), Y3
	VADDPD  Y2, Y3, Y3           // 1 + s
	VMULPD  64(DX), Y1, Y4
	VADDPD  Y4, Y3, Y3           // A = 1 + s + (5/3) r2
	VXORPD  Y0, Y0, Y0
	VSUBPD  Y2, Y0, Y0           // y = -s
	VCMPPD  $0x0d, 96(DX), Y0, Y8 // underflow mask: y >= expLo (all-ones when e^y is representable)
	VMAXPD  96(DX), Y0, Y0       // clamp so the 2^k exponent bits stay sane
	VMULPD  128(DX), Y0, Y4
	VROUNDPD $0, Y4, Y4          // k = round(y*log2e)
	VMOVAPD Y0, Y5
	VFNMADD231PD 160(DX), Y4, Y5 // r = y - k*ln2hi
	VFNMADD231PD 192(DX), Y4, Y5 // r -= k*ln2lo
	VMOVUPD 256(DX), Y6          // Horner from 1/11!
	VFMADD213PD 288(DX), Y5, Y6
	VFMADD213PD 320(DX), Y5, Y6
	VFMADD213PD 352(DX), Y5, Y6
	VFMADD213PD 384(DX), Y5, Y6
	VFMADD213PD 416(DX), Y5, Y6
	VFMADD213PD 448(DX), Y5, Y6
	VFMADD213PD 480(DX), Y5, Y6
	VFMADD213PD 512(DX), Y5, Y6
	VFMADD213PD 544(DX), Y5, Y6
	VFMADD213PD 576(DX), Y5, Y6
	VFMADD213PD 608(DX), Y5, Y6  // P(r) = e^r
	VCVTPD2DQY Y4, X7
	VPMOVSXDQ X7, Y7
	VPADDQ 224(DX), Y7, Y7
	VPSLLQ $52, Y7, Y7           // 2^k in the exponent bits
	VMULPD Y7, Y6, Y6
	VMULPD Y3, Y6, Y6
	VMULPD Y15, Y6, Y6
	VANDPD Y8, Y6, Y6            // zero lanes whose exponent underflowed
	VMOVUPD Y6, (SI)
	ADDQ $32, SI
	DECQ CX
	JNZ  m52loop

m52done:
	VZEROUPPER
	RET
