//go:build !amd64

package simd

// useAsm is false off amd64; every kernel takes the portable path.
const useAsm = false

// The stubs below are never called when useAsm is false.

func dot4Asm(p, q0, q1, q2, q3 *float64, n int) (s0, s1, s2, s3 float64) {
	panic("simd: dot4Asm called without assembly support")
}

func matern52Asm(v *float64, n int, vr float64) {
	panic("simd: matern52Asm called without assembly support")
}
