//go:build !amd64

package simd

// useAsm is false off amd64; every kernel takes the portable path.
const useAsm = false

// useAVX512 is false off amd64.
const useAVX512 = false

// The stubs below are never called when useAsm is false.

func dot4Asm(p, q0, q1, q2, q3 *float64, n int) (s0, s1, s2, s3 float64) {
	panic("simd: dot4Asm called without assembly support")
}

func matern52Asm(v *float64, n int, vr float64) {
	panic("simd: matern52Asm called without assembly support")
}

func matern52ARD8Asm(dst, sqd, inv2 *float64, n int, vr float64) {
	panic("simd: matern52ARD8Asm called without assembly support")
}

func matern52ARD8x512(dst, sqd, inv2 *float64, n int, vr float64) {
	panic("simd: matern52ARD8x512 called without assembly support")
}

func axpyAsm(dst, x *float64, n int, a float64) {
	panic("simd: axpyAsm called without assembly support")
}
