//go:build amd64

package simd

import "testing"

// TestKernelsAcrossPaths re-runs the kernel equivalence tables with each
// dispatch path forced in turn — portable, AVX2, and (when the host has it)
// AVX-512 — so a single amd64 machine exercises every code path the package
// ships, not just the one its CPU would pick. The detection globals are
// mutated and restored; the package's tests run sequentially, so nothing
// else observes the intermediate states.
func TestKernelsAcrossPaths(t *testing.T) {
	saveAsm, save512 := useAsm, useAVX512
	defer func() { useAsm, useAVX512 = saveAsm, save512 }()

	run := func(name string, asm, avx512 bool) {
		t.Run(name, func(t *testing.T) {
			useAsm, useAVX512 = asm, avx512
			testDot4EdgeLengths(t)
			testMatern52FromR2EdgeLengths(t)
			testMatern52ARDMatchesScalar(t)
			testAxpyEdgeLengths(t)
		})
	}
	run("portable", false, false)
	if saveAsm {
		run("avx2", true, false)
	}
	if save512 {
		run("avx512", true, true)
	}
}

// TestDetectionConsistent pins the invariant the dispatchers rely on:
// AVX-512 support implies the AVX2+FMA baseline.
func TestDetectionConsistent(t *testing.T) {
	if useAVX512 && !useAsm {
		t.Fatal("useAVX512 set without useAsm: dispatchers assume AVX-512 implies AVX2+FMA")
	}
	t.Logf("kernel paths: avx2=%v avx512=%v", useAsm, useAVX512)
}
