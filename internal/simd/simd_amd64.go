//go:build amd64

package simd

import "math"

// dot4Asm is the AVX2+FMA kernel in simd_amd64.s. It computes four dot
// products of p against q0..q3 over n elements, reading exactly n entries
// from each pointer.
func dot4Asm(p, q0, q1, q2, q3 *float64, n int) (s0, s1, s2, s3 float64)

// matern52Asm transforms n (a multiple of 4) scaled squared distances in
// place into Matérn-5/2 covariances; see Matern52FromR2. It reads its
// constants from maternTab.
func matern52Asm(v *float64, n int, vr float64)

// matern52ARD8Asm is the fused AVX2+FMA distance+covariance kernel for the
// d=8 ARD case: it consumes n (a multiple of 4) rows of 8 squared
// differences each, scales them by inv2, and writes the Matérn-5/2 value per
// row into dst. See Matern52ARD.
func matern52ARD8Asm(dst, sqd, inv2 *float64, n int, vr float64)

// matern52ARD8x512 is matern52ARD8Asm widened to AVX-512: one ZMM register
// holds a full 8-dimension row, eight rows are reduced per iteration, and
// the Matérn/exp pipeline runs 8-wide. n must be a multiple of 8.
func matern52ARD8x512(dst, sqd, inv2 *float64, n int, vr float64)

// axpyAsm accumulates dst[i] += a*x[i] for i < n (n a multiple of 4).
func axpyAsm(dst, x *float64, n int, a float64)

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)

// useAsm reports whether the hardware and OS support the AVX2+FMA kernels:
// FMA and OSXSAVE in CPUID leaf 1, XMM+YMM state enabled in XCR0, and AVX2
// in leaf 7. The Go amd64 baseline (GOAMD64=v1) guarantees none of these, so
// the check runs once at startup.
var useAsm = func() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const fma, osxsave = 1 << 12, 1 << 27
	if c1&fma == 0 || c1&osxsave == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0
}()

// useAVX512 gates the 512-bit kernel variants: on top of the AVX2+FMA
// requirements it needs AVX512F in CPUID leaf 7 and opmask+ZMM state enabled
// in XCR0 (bits 5–7). Every 512-bit instruction the kernels use is in the F
// foundation set, so no DQ/BW/VL checks are needed.
var useAVX512 = useAsm && func() bool {
	_, b7, _, _ := cpuid(7, 0)
	if b7&(1<<16) == 0 {
		return false
	}
	lo, _ := xgetbv()
	return lo&0xe6 == 0xe6
}()

// maternTab holds the constants for matern52Asm as 32-byte blocks (each
// value replicated into all four lanes). Block k lives at byte offset k·32:
//
//	0 √5 · 1 one · 2 5/3 · 3 exp clamp · 4 log2(e) · 5 ln2 hi · 6 ln2 lo ·
//	7 exponent bias 1023 as raw int64 · 8…19 Taylor 1/11! … 1/0! (Horner
//	order, highest degree first)
var maternTab [80]float64

func init() {
	vals := [20]float64{
		sqrt5, 1, fiveThd, expLo,
		1.4426950408889634,      // log2(e)
		6.93147180369123816e-1,  // ln2 high bits
		1.90821492927058770e-10, // ln2 low bits
		math.Float64frombits(1023),
		1.0 / 39916800, 1.0 / 3628800, 1.0 / 362880, 1.0 / 40320,
		1.0 / 5040, 1.0 / 720, 1.0 / 120, 1.0 / 24, 1.0 / 6, 0.5, 1, 1,
	}
	for k, v := range vals {
		for lane := 0; lane < 4; lane++ {
			maternTab[k*4+lane] = v
		}
	}
}
