package pareto

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b   []float64
		dom    bool
		weak   bool
		revDom bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true, true, false},
		{[]float64{1, 2}, []float64{2, 1}, false, false, false},
		{[]float64{1, 1}, []float64{1, 1}, false, true, false},
		{[]float64{1, 2}, []float64{1, 3}, true, true, false},
		{[]float64{3, 3}, []float64{1, 1}, false, false, true},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.dom {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.dom)
		}
		if got := WeaklyDominates(c.a, c.b); got != c.weak {
			t.Errorf("WeaklyDominates(%v, %v) = %v, want %v", c.a, c.b, got, c.weak)
		}
		if got := Dominates(c.b, c.a); got != c.revDom {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.b, c.a, got, c.revDom)
		}
	}
}

func TestDominatesDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dim mismatch")
		}
	}()
	Dominates([]float64{1}, []float64{1, 2})
}

func TestFront(t *testing.T) {
	pts := [][]float64{
		{1, 5}, // front
		{2, 2}, // front
		{3, 3}, // dominated by (2,2)
		{5, 1}, // front
		{2, 2}, // duplicate of front point: kept
		{6, 6}, // dominated
	}
	idx := Front(pts)
	want := map[int]bool{0: true, 1: true, 3: true, 4: true}
	if len(idx) != len(want) {
		t.Fatalf("front = %v, want indices %v", idx, want)
	}
	for _, i := range idx {
		if !want[i] {
			t.Errorf("unexpected front index %d", i)
		}
	}
}

func TestFrontEmptyAndSingle(t *testing.T) {
	if got := Front(nil); len(got) != 0 {
		t.Errorf("Front(nil) = %v", got)
	}
	if got := Front([][]float64{{1, 2, 3}}); len(got) != 1 || got[0] != 0 {
		t.Errorf("Front(single) = %v", got)
	}
}

func TestHypervolume1D(t *testing.T) {
	hv := Hypervolume([][]float64{{3}, {5}, {2}}, []float64{10})
	if hv != 8 {
		t.Errorf("1-D HV = %g, want 8", hv)
	}
}

func TestHypervolume2DKnown(t *testing.T) {
	// Staircase front vs ref (4,4):
	// (1,3): contributes (4-1)*(4-3)=3; (2,2): (4-2)*(3-2)=2; (3,1): (4-3)*(2-1)=1.
	pts := [][]float64{{1, 3}, {2, 2}, {3, 1}}
	hv := Hypervolume(pts, []float64{4, 4})
	if math.Abs(hv-6) > 1e-12 {
		t.Errorf("2-D HV = %g, want 6", hv)
	}
}

func TestHypervolume2DDominatedIgnored(t *testing.T) {
	pts := [][]float64{{1, 1}, {2, 2}, {3, 0.5}}
	hv := Hypervolume(pts, []float64{4, 4})
	// (2,2) dominated by (1,1). Union of boxes (1,1)-(4,4) and (3,0.5)-(4,4):
	// 9 + (4-3)*(1-0.5) = 9.5
	if math.Abs(hv-9.5) > 1e-12 {
		t.Errorf("2-D HV = %g, want 9.5", hv)
	}
}

func TestHypervolumePointsBeyondRefClipped(t *testing.T) {
	pts := [][]float64{{5, 5}, {1, 1}}
	hv := Hypervolume(pts, []float64{4, 4})
	if math.Abs(hv-9) > 1e-12 {
		t.Errorf("HV with out-of-box point = %g, want 9", hv)
	}
	if got := Hypervolume([][]float64{{5, 5}}, []float64{4, 4}); got != 0 {
		t.Errorf("HV of only out-of-box points = %g, want 0", got)
	}
}

func TestHypervolume3DKnown(t *testing.T) {
	// Single point: box volume.
	hv := Hypervolume([][]float64{{1, 2, 3}}, []float64{4, 4, 4})
	if math.Abs(hv-3*2*1) > 1e-12 {
		t.Errorf("3-D single-point HV = %g, want 6", hv)
	}
	// Two incomparable points; inclusion-exclusion by hand:
	// a=(1,3,3), b=(3,1,1), ref=(4,4,4).
	// vol(a)=3*1*1=3, vol(b)=1*3*3=9, intersection=(max coords)=(3,3,3)->1*1*1=1.
	hv = Hypervolume([][]float64{{1, 3, 3}, {3, 1, 1}}, []float64{4, 4, 4})
	if math.Abs(hv-11) > 1e-12 {
		t.Errorf("3-D two-point HV = %g, want 11", hv)
	}
}

// cross-check the 3-D sweep against the generic WFG recursion on random sets.
func TestHypervolume3DMatchesWFG(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		ref := []float64{1.1, 1.1, 1.1}
		sweep := hv3(FrontPoints(pts), ref)
		wfg := hvWFG(FrontPoints(pts), ref)
		if math.Abs(sweep-wfg) > 1e-9 {
			t.Fatalf("trial %d: hv3 = %.12f, hvWFG = %.12f", trial, sweep, wfg)
		}
	}
}

// Property: adding a point never decreases hyper-volume, and HV is bounded
// by the ref box volume.
func TestQuickHVMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(2)
		ref := make([]float64, d)
		for i := range ref {
			ref[i] = 1
		}
		n := 1 + rng.Intn(10)
		pts := make([][]float64, 0, n)
		prev := 0.0
		box := 1.0
		for i := 0; i < n; i++ {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			pts = append(pts, p)
			hv := Hypervolume(pts, ref)
			if hv+1e-12 < prev || hv > box+1e-12 {
				return false
			}
			prev = hv
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHVError(t *testing.T) {
	golden := [][]float64{{1, 3}, {2, 2}, {3, 1}}
	ref := []float64{4, 4}
	if e := HVError(golden, golden, ref); e != 0 {
		t.Errorf("HVError(golden, golden) = %g, want 0", e)
	}
	worse := [][]float64{{2, 2}}
	e := HVError(golden, worse, ref)
	// H(golden)=6, H(worse)=4 -> e = 2/6
	if math.Abs(e-1.0/3.0) > 1e-12 {
		t.Errorf("HVError = %g, want 1/3", e)
	}
	if e := HVError(golden, nil, ref); math.Abs(e-1) > 1e-12 {
		t.Errorf("HVError(golden, empty) = %g, want 1", e)
	}
}

func TestADRS(t *testing.T) {
	golden := [][]float64{{1, 2}, {2, 1}}
	if got := ADRS(golden, golden); got != 0 {
		t.Errorf("ADRS(g, g) = %g, want 0", got)
	}
	// approx point (1.1, 2.2): delta vs (1,2) = max(0.1, 0.1) = 0.1
	// vs (2,1): max(0.45, 1.2) = 1.2 -> min is 0.1 for first golden point.
	// second golden point (2,1) vs (1.1,2.2): max(0.45, 1.2) = 1.2
	approx := [][]float64{{1.1, 2.2}}
	want := (0.1 + 1.2) / 2
	if got := ADRS(golden, approx); math.Abs(got-want) > 1e-9 {
		t.Errorf("ADRS = %g, want %g", got, want)
	}
	if got := ADRS(golden, nil); !math.IsInf(got, 1) {
		t.Errorf("ADRS vs empty = %g, want +Inf", got)
	}
	if got := ADRS(nil, approx); got != 0 {
		t.Errorf("ADRS of empty golden = %g, want 0", got)
	}
}

// Property: ADRS(golden, approx) == 0 iff approx contains every golden point.
func TestQuickADRSZeroOnSuperset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		golden := make([][]float64, n)
		for i := range golden {
			golden[i] = []float64{1 + rng.Float64(), 1 + rng.Float64()}
		}
		approx := append([][]float64{{5, 5}}, golden...)
		return ADRS(golden, approx) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReferencePoint(t *testing.T) {
	pts := [][]float64{{1, 10}, {3, 20}}
	ref := ReferencePoint(pts, 0.1)
	if math.Abs(ref[0]-(3+0.2)) > 1e-12 || math.Abs(ref[1]-(20+1)) > 1e-12 {
		t.Errorf("ref = %v, want [3.2 21]", ref)
	}
	if ReferencePoint(nil, 0.1) != nil {
		t.Error("ReferencePoint(nil) should be nil")
	}
	// Degenerate span falls back to |max| (or 1).
	ref = ReferencePoint([][]float64{{2, 0}, {2, 0}}, 0.5)
	if ref[0] != 3 || ref[1] != 0.5 {
		t.Errorf("degenerate ref = %v, want [3 0.5]", ref)
	}
}

func TestFrontPointsAreCopies(t *testing.T) {
	pts := [][]float64{{1, 1}}
	fp := FrontPoints(pts)
	fp[0][0] = 99
	if pts[0][0] == 99 {
		t.Error("FrontPoints returned views, want copies")
	}
}
