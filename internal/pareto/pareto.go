// Package pareto implements the multi-objective machinery of the paper:
// dominance tests, Pareto-front extraction, exact hyper-volume computation,
// the hyper-volume error of Eq. (2) and the ADRS indicator of Eq. (3).
//
// All objectives are minimised, matching the paper's QoR metrics (power,
// delay, area — smaller is better).
package pareto

import (
	"fmt"
	"math"
	"sort"
)

// Dominates reports whether point a dominates point b in minimisation:
// a ≤ b componentwise with at least one strict inequality.
func Dominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d vs %d", len(a), len(b)))
	}
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// WeaklyDominates reports a ≤ b componentwise (ties allowed everywhere).
func WeaklyDominates(a, b []float64) bool {
	if len(a) != len(b) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d vs %d", len(a), len(b)))
	}
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// Front returns the indices of the non-dominated points of pts, in input
// order. Duplicate non-dominated points are all kept (they do not dominate
// each other).
func Front(pts [][]float64) []int {
	var front []int
	for i, p := range pts {
		dominated := false
		for j, q := range pts {
			if i == j {
				continue
			}
			if Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// FrontPoints returns copies of the non-dominated points themselves.
func FrontPoints(pts [][]float64) [][]float64 {
	idx := Front(pts)
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = append([]float64(nil), pts[j]...)
	}
	return out
}

// Hypervolume returns the Lebesgue measure of the region dominated by pts
// and bounded above by ref (minimisation: every point must be ≤ ref in all
// coordinates to contribute). Points beyond the reference are clipped out.
// Exact algorithms are used for 2-D and 3-D; higher dimensions fall back to
// the recursive WFG-style exclusive-volume computation.
func Hypervolume(pts [][]float64, ref []float64) float64 {
	d := len(ref)
	var filtered [][]float64
	for _, p := range pts {
		if len(p) != d {
			panic(fmt.Sprintf("pareto: point dim %d, ref dim %d", len(p), d))
		}
		if WeaklyDominates(p, ref) {
			filtered = append(filtered, p)
		}
	}
	if len(filtered) == 0 {
		return 0
	}
	nd := FrontPoints(filtered)
	switch d {
	case 1:
		best := nd[0][0]
		for _, p := range nd {
			if p[0] < best {
				best = p[0]
			}
		}
		return ref[0] - best
	case 2:
		return hv2(nd, ref)
	case 3:
		return hv3(nd, ref)
	default:
		return hvWFG(nd, ref)
	}
}

// hv2 computes the 2-D hyper-volume by a sorted sweep.
func hv2(pts [][]float64, ref []float64) float64 {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i][0] != pts[j][0] {
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	var vol float64
	prevY := ref[1]
	for _, p := range pts {
		if p[1] < prevY {
			vol += (ref[0] - p[0]) * (prevY - p[1])
			prevY = p[1]
		}
	}
	return vol
}

// hv3 slices the 3-D volume along the z axis: between consecutive z values
// the dominated xy-region is the union over points with smaller-or-equal z.
func hv3(pts [][]float64, ref []float64) float64 {
	sort.Slice(pts, func(i, j int) bool { return pts[i][2] < pts[j][2] })
	var vol float64
	var active [][]float64
	for i := 0; i < len(pts); i++ {
		active = append(active, pts[i])
		zLo := pts[i][2]
		zHi := ref[2]
		if i+1 < len(pts) {
			zHi = pts[i+1][2]
		}
		if zHi <= zLo {
			continue
		}
		area := hv2(projectXY(active), ref[:2])
		vol += area * (zHi - zLo)
	}
	return vol
}

func projectXY(pts [][]float64) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = []float64{p[0], p[1]}
	}
	// The union of rectangles only depends on the non-dominated projection.
	return FrontPoints(out)
}

// hvWFG computes hyper-volume by the exclusive-contribution recursion:
// hv(S) = Σ_i exclusive(p_i, {p_{i+1}..}) with exclusive computed as
// box(p_i) − hv of the set limited to p_i.
func hvWFG(pts [][]float64, ref []float64) float64 {
	if len(pts) == 0 {
		return 0
	}
	var vol float64
	for i, p := range pts {
		vol += exclusiveVol(p, pts[i+1:], ref)
	}
	return vol
}

func exclusiveVol(p []float64, rest [][]float64, ref []float64) float64 {
	box := 1.0
	for i := range p {
		box *= ref[i] - p[i]
	}
	if len(rest) == 0 {
		return box
	}
	// Limit the rest set to the region dominated by p.
	limited := make([][]float64, len(rest))
	for i, q := range rest {
		lq := make([]float64, len(q))
		for j := range q {
			lq[j] = math.Max(q[j], p[j])
		}
		limited[i] = lq
	}
	return box - hvWFG(FrontPoints(limited), ref)
}

// HVError computes the hyper-volume error of Eq. (2):
// e = (H(P) − H(P̂)) / H(P), with P the golden front and P̂ the
// approximation, both measured against ref.
func HVError(golden, approx [][]float64, ref []float64) float64 {
	hg := Hypervolume(golden, ref)
	if hg == 0 {
		return 0
	}
	ha := Hypervolume(approx, ref)
	return (hg - ha) / hg
}

// ADRS computes the average distance from reference set of Eq. (3):
// for each golden point a, the minimum over approximation points p̂ of the
// worst relative coordinate error max_i |(a_i − p̂_i)/a_i|, averaged over
// the golden set.
func ADRS(golden, approx [][]float64) float64 {
	if len(golden) == 0 {
		return 0
	}
	if len(approx) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, a := range golden {
		best := math.Inf(1)
		for _, p := range approx {
			if d := deltaRel(a, p); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(golden))
}

// deltaRel is δ(a, p̂) = max_i |(a_i − p̂_i) / a_i|.
func deltaRel(a, p []float64) float64 {
	if len(a) != len(p) {
		panic(fmt.Sprintf("pareto: dimension mismatch %d vs %d", len(a), len(p)))
	}
	var worst float64
	for i := range a {
		den := math.Abs(a[i])
		if den == 0 {
			den = 1e-12
		}
		if d := math.Abs(a[i]-p[i]) / den; d > worst {
			worst = d
		}
	}
	return worst
}

// ReferencePoint returns a reference point for hyper-volume computation: the
// componentwise maximum of pts inflated by margin (e.g. 0.1 for 10%). The
// whole offline dataset is passed so golden and approximated fronts are
// measured against the same box.
func ReferencePoint(pts [][]float64, margin float64) []float64 {
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0])
	ref := make([]float64, d)
	lo := make([]float64, d)
	for i := range ref {
		ref[i] = math.Inf(-1)
		lo[i] = math.Inf(1)
	}
	for _, p := range pts {
		for i := range p {
			if p[i] > ref[i] {
				ref[i] = p[i]
			}
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
		}
	}
	for i := range ref {
		span := ref[i] - lo[i]
		if span == 0 {
			span = math.Abs(ref[i])
			if span == 0 {
				span = 1
			}
		}
		ref[i] += margin * span
	}
	return ref
}
