package param

import (
	"math"
	"testing"
)

// TestEncodeIntoAlignsByPhysicalValue: Scenario One's source and target tune
// the same knobs over different ranges; transfer must align them by physical
// value.
func TestEncodeIntoAlignsByPhysicalValue(t *testing.T) {
	src := Source1Space()
	tgt := Target1Space()
	// freq = 1050 MHz is u=1.0 in Source1 ([950,1050]) but must land at
	// (1050-1000)/300 = 1/6 in Target1 ([1000,1300]).
	u := make([]float64, src.Dim())
	for i := range u {
		u[i] = 0.5
	}
	u[src.Index("freq")] = 1.0
	cfg := src.MustConfig(u)
	enc := cfg.EncodeInto(tgt)
	want := (1050.0 - 1000.0) / 300.0
	if got := enc[tgt.Index("freq")]; math.Abs(got-want) > 1e-9 {
		t.Errorf("freq alignment: got %g, want %g", got, want)
	}
	// place_uncertainty = 125 (mid of [50,200]) is (125-20)/80 in [20,100]:
	// outside [0,1], which is correct — the point lies beyond the target
	// range.
	if got := enc[tgt.Index("place_uncertainty")]; got <= 1 {
		t.Errorf("out-of-range coordinate should exceed 1, got %g", got)
	}
}

func TestEncodeIntoEnumAndBool(t *testing.T) {
	src := Source2Space()
	tgt := Target2Space()
	u := make([]float64, src.Dim())
	u[src.Index("flowEffort")] = 1 // extreme
	u[src.Index("clock_power_driven")] = 1
	cfg := src.MustConfig(u)
	enc := cfg.EncodeInto(tgt)
	if got := enc[tgt.Index("flowEffort")]; got != 1 {
		t.Errorf("enum level alignment: got %g, want 1", got)
	}
	if got := enc[tgt.Index("clock_power_driven")]; got != 1 {
		t.Errorf("bool alignment: got %g, want 1", got)
	}
}

func TestEncodeIntoMissingParameterDefaultsToMidpoint(t *testing.T) {
	// Source2 has no freq; encoding into Target1 (which has) must default.
	src := Source2Space()
	tgt := Target1Space()
	cfg := src.MustConfig(make([]float64, src.Dim()))
	enc := cfg.EncodeInto(tgt)
	if got := enc[tgt.Index("freq")]; got != 0.5 {
		t.Errorf("missing parameter coordinate = %g, want 0.5", got)
	}
}

// TestEncodeIntoIdentity: encoding into the same space is the identity on
// the snapped grid.
func TestEncodeIntoIdentity(t *testing.T) {
	s := Target2Space()
	u := []float64{0.3, 0.5, 1, 0, 0.7, 0.2, 0.9, 0.5, 0.1}
	cfg := s.MustConfig(u)
	enc := cfg.EncodeInto(s)
	for i := range enc {
		if math.Abs(enc[i]-cfg.UnitView()[i]) > 1e-9 {
			t.Errorf("dim %d: encode-into-self %g != %g", i, enc[i], cfg.UnitView()[i])
		}
	}
}
