package param

// This file encodes the paper's Table 1: the tool-parameter statistics of
// the four industrial benchmarks. A "-" entry in the table means the
// parameter is not tuned in that benchmark, so it is simply absent from the
// corresponding Space (the flow simulator falls back to its default).

// Effort ladders used by the PD tool.
var (
	FlowEffortLevels = []string{"standard", "high", "extreme"}
	TimingEffort     = []string{"medium", "high"}
	CongEffortLevels = []string{"AUTO", "MEDIUM", "HIGH"}
)

// Source1Space is the 12-parameter source task of Scenario One (small MAC).
func Source1Space() *Space {
	return MustSpace("Source1", []Param{
		{Name: "freq", Kind: Float, Min: 950, Max: 1050},
		{Name: "place_uncertainty", Kind: Float, Min: 50, Max: 200},
		{Name: "flowEffort", Kind: Enum, Levels: FlowEffortLevels},
		{Name: "uniform_density", Kind: Bool},
		{Name: "cong_effort", Kind: Enum, Levels: CongEffortLevels},
		{Name: "max_density", Kind: Float, Min: 0.65, Max: 0.90},
		{Name: "max_Length", Kind: Float, Min: 160, Max: 310},
		{Name: "max_Density", Kind: Float, Min: 0.65, Max: 0.90},
		{Name: "max_transition", Kind: Float, Min: 0.19, Max: 0.34},
		{Name: "max_capacitance", Kind: Float, Min: 0.08, Max: 0.13},
		{Name: "max_fanout", Kind: Int, Min: 25, Max: 50},
		{Name: "max_AllowedDelay", Kind: Float, Min: 0.00, Max: 0.25},
	})
}

// Target1Space is the 12-parameter target task of Scenario One: the same
// small MAC design explored over shifted ranges (a designer re-tuning the
// same block with different quality preferences).
func Target1Space() *Space {
	return MustSpace("Target1", []Param{
		{Name: "freq", Kind: Float, Min: 1000, Max: 1300},
		{Name: "place_uncertainty", Kind: Float, Min: 20, Max: 100},
		{Name: "flowEffort", Kind: Enum, Levels: FlowEffortLevels},
		{Name: "uniform_density", Kind: Bool},
		{Name: "cong_effort", Kind: Enum, Levels: CongEffortLevels},
		{Name: "max_density", Kind: Float, Min: 0.65, Max: 0.90},
		{Name: "max_Length", Kind: Float, Min: 160, Max: 300},
		{Name: "max_Density", Kind: Float, Min: 0.65, Max: 0.90},
		{Name: "max_transition", Kind: Float, Min: 0.10, Max: 0.35},
		{Name: "max_capacitance", Kind: Float, Min: 0.08, Max: 0.20},
		{Name: "max_fanout", Kind: Int, Min: 25, Max: 50},
		{Name: "max_AllowedDelay", Kind: Float, Min: 0.00, Max: 0.25},
	})
}

// Source2Space is the 9-parameter source task of Scenario Two (small MAC).
func Source2Space() *Space {
	return MustSpace("Source2", []Param{
		{Name: "place_rcfactor", Kind: Float, Min: 1.00, Max: 1.30},
		{Name: "flowEffort", Kind: Enum, Levels: FlowEffortLevels},
		{Name: "timing_effort", Kind: Enum, Levels: TimingEffort},
		{Name: "clock_power_driven", Kind: Bool},
		{Name: "max_Length", Kind: Float, Min: 250, Max: 350},
		{Name: "max_Density", Kind: Float, Min: 0.50, Max: 1.00},
		{Name: "max_capacitance", Kind: Float, Min: 0.07, Max: 0.12},
		{Name: "max_fanout", Kind: Int, Min: 25, Max: 40},
		{Name: "max_AllowedDelay", Kind: Float, Min: 0.06, Max: 0.12},
	})
}

// Target2Space is the 9-parameter target task of Scenario Two: the larger
// MAC design (the paper's ~67k-cell block).
func Target2Space() *Space {
	return MustSpace("Target2", []Param{
		{Name: "place_rcfactor", Kind: Float, Min: 1.00, Max: 1.30},
		{Name: "flowEffort", Kind: Enum, Levels: FlowEffortLevels},
		{Name: "timing_effort", Kind: Enum, Levels: TimingEffort},
		{Name: "clock_power_driven", Kind: Bool},
		{Name: "max_Length", Kind: Float, Min: 250, Max: 350},
		{Name: "max_Density", Kind: Float, Min: 0.50, Max: 1.00},
		{Name: "max_capacitance", Kind: Float, Min: 0.05, Max: 0.15},
		{Name: "max_fanout", Kind: Int, Min: 25, Max: 39},
		{Name: "max_AllowedDelay", Kind: Float, Min: 0.00, Max: 0.12},
	})
}
