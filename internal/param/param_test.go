package param

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParamValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Param
		ok   bool
	}{
		{"float ok", Param{Name: "f", Kind: Float, Min: 0, Max: 1}, true},
		{"float empty range", Param{Name: "f", Kind: Float, Min: 1, Max: 1}, false},
		{"float inverted", Param{Name: "f", Kind: Float, Min: 2, Max: 1}, false},
		{"int ok", Param{Name: "i", Kind: Int, Min: 1, Max: 5}, true},
		{"int fractional bound", Param{Name: "i", Kind: Int, Min: 1.5, Max: 5}, false},
		{"enum ok", Param{Name: "e", Kind: Enum, Levels: []string{"a", "b"}}, true},
		{"enum one level", Param{Name: "e", Kind: Enum, Levels: []string{"a"}}, false},
		{"enum duplicate", Param{Name: "e", Kind: Enum, Levels: []string{"a", "a"}}, false},
		{"bool ok", Param{Name: "b", Kind: Bool}, true},
		{"unnamed", Param{Kind: Bool}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewSpaceDuplicate(t *testing.T) {
	_, err := NewSpace("s", []Param{
		{Name: "x", Kind: Bool},
		{Name: "x", Kind: Bool},
	})
	if err == nil {
		t.Fatal("duplicate parameter name accepted")
	}
}

func testSpace(t *testing.T) *Space {
	t.Helper()
	return MustSpace("test", []Param{
		{Name: "freq", Kind: Float, Min: 1000, Max: 1300},
		{Name: "fanout", Kind: Int, Min: 25, Max: 50},
		{Name: "effort", Kind: Enum, Levels: []string{"standard", "high", "extreme"}},
		{Name: "uniform", Kind: Bool},
	})
}

func TestConfigDecode(t *testing.T) {
	s := testSpace(t)
	c := s.MustConfig([]float64{0.5, 0, 1, 0.9})
	if got := c.Float("freq"); got != 1150 {
		t.Errorf("freq = %g, want 1150", got)
	}
	if got := c.Int("fanout"); got != 25 {
		t.Errorf("fanout = %d, want 25", got)
	}
	if got := c.Enum("effort"); got != "extreme" {
		t.Errorf("effort = %q, want extreme", got)
	}
	if !c.Bool("uniform") {
		t.Error("uniform = false, want true")
	}
}

func TestConfigClampAndSnap(t *testing.T) {
	s := testSpace(t)
	c := s.MustConfig([]float64{-0.5, 2.0, 0.49, 0.4})
	if got := c.Float("freq"); got != 1000 {
		t.Errorf("clamped freq = %g, want 1000", got)
	}
	if got := c.Int("fanout"); got != 50 {
		t.Errorf("clamped fanout = %d, want 50", got)
	}
	// 0.49 with 3 levels snaps to 0.5 -> "high"
	if got := c.Enum("effort"); got != "high" {
		t.Errorf("snapped effort = %q, want high", got)
	}
	if c.Bool("uniform") {
		t.Error("uniform = true, want false")
	}
}

func TestConfigErrors(t *testing.T) {
	s := testSpace(t)
	if _, err := s.NewConfig([]float64{0, 0}); err == nil {
		t.Error("short coordinate vector accepted")
	}
	if _, err := s.NewConfig([]float64{math.NaN(), 0, 0, 0}); err == nil {
		t.Error("NaN coordinate accepted")
	}
}

func TestConfigTypePanics(t *testing.T) {
	s := testSpace(t)
	c := s.MustConfig([]float64{0, 0, 0, 0})
	for name, f := range map[string]func(){
		"Float on enum":   func() { c.Float("effort") },
		"Enum on float":   func() { c.Enum("freq") },
		"Bool on int":     func() { c.Bool("fanout") },
		"missing name":    func() { c.Float("nope") },
		"missing in enum": func() { c.Enum("nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConfigOrDefaults(t *testing.T) {
	s := testSpace(t)
	c := s.MustConfig([]float64{1, 1, 0, 1})
	if got := c.FloatOr("missing", 42); got != 42 {
		t.Errorf("FloatOr default = %g, want 42", got)
	}
	if got := c.FloatOr("freq", 42); got != 1300 {
		t.Errorf("FloatOr present = %g, want 1300", got)
	}
	if !c.BoolOr("missing", true) || !c.BoolOr("uniform", false) {
		t.Error("BoolOr wrong")
	}
	if got := c.EnumOr("missing", "dflt"); got != "dflt" {
		t.Errorf("EnumOr default = %q", got)
	}
}

func TestConfigKeyAndString(t *testing.T) {
	s := testSpace(t)
	a := s.MustConfig([]float64{0.25, 0.5, 0.5, 1})
	b := s.MustConfig([]float64{0.25, 0.5, 0.5, 1})
	if a.Key() != b.Key() {
		t.Error("equal configs have different keys")
	}
	c := s.MustConfig([]float64{0.26, 0.5, 0.5, 1})
	if a.Key() == c.Key() {
		t.Error("different configs share a key")
	}
	str := a.String()
	for _, want := range []string{"freq=", "effort=high", "uniform=true"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestUnitCopySemantics(t *testing.T) {
	s := testSpace(t)
	c := s.MustConfig([]float64{0.5, 0.5, 0.5, 1})
	u := c.Unit()
	u[0] = 0.99
	if c.UnitView()[0] == 0.99 {
		t.Error("Unit() returned a view, want a copy")
	}
}

// Property: decode∘encode is the identity on the snapped grid — building a
// Config from another Config's unit coordinates preserves every decoded
// setting.
func TestQuickConfigRoundTrip(t *testing.T) {
	s := testSpace(t)
	f := func(a, b, c, d float64) bool {
		u := []float64{wrap01(a), wrap01(b), wrap01(c), wrap01(d)}
		c1 := s.MustConfig(u)
		c2 := s.MustConfig(c1.Unit())
		return c1.Key() == c2.Key() &&
			c1.Float("freq") == c2.Float("freq") &&
			c1.Int("fanout") == c2.Int("fanout") &&
			c1.Enum("effort") == c2.Enum("effort") &&
			c1.Bool("uniform") == c2.Bool("uniform")
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func wrap01(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Abs(math.Mod(x, 1))
}

func TestTable1Spaces(t *testing.T) {
	cases := []struct {
		space *Space
		dim   int
		// spot checks straight from Table 1
		param    string
		min, max float64
	}{
		{Source1Space(), 12, "freq", 950, 1050},
		{Target1Space(), 12, "freq", 1000, 1300},
		{Source2Space(), 9, "max_capacitance", 0.07, 0.12},
		{Target2Space(), 9, "max_capacitance", 0.05, 0.15},
	}
	for _, c := range cases {
		if c.space.Dim() != c.dim {
			t.Errorf("%s: dim = %d, want %d", c.space.Name, c.space.Dim(), c.dim)
		}
		i := c.space.Index(c.param)
		if i < 0 {
			t.Errorf("%s: missing %s", c.space.Name, c.param)
			continue
		}
		p := c.space.Params[i]
		if p.Min != c.min || p.Max != c.max {
			t.Errorf("%s.%s: range [%g, %g], want [%g, %g]", c.space.Name, c.param, p.Min, p.Max, c.min, c.max)
		}
	}
	// Scenario Two spaces must agree on the parameter set (transfer across
	// designs keeps the same knobs).
	s2, t2 := Source2Space(), Target2Space()
	for _, p := range s2.Params {
		if t2.Index(p.Name) < 0 {
			t.Errorf("Target2 missing Source2 parameter %s", p.Name)
		}
	}
	// Scenario One: Source1 and Target1 must also share the parameter list.
	s1, t1 := Source1Space(), Target1Space()
	for _, p := range s1.Params {
		if t1.Index(p.Name) < 0 {
			t.Errorf("Target1 missing Source1 parameter %s", p.Name)
		}
	}
}

func TestSpaceStats(t *testing.T) {
	rows := Source2Space().Stats()
	if len(rows) != 9 {
		t.Fatalf("Stats rows = %d, want 9", len(rows))
	}
	joined := strings.Join(rows, "\n")
	for _, want := range []string{"place_rcfactor", "1.00", "1.30", "flowEffort", "standard", "extreme", "FALSE", "TRUE"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Stats missing %q in:\n%s", want, joined)
		}
	}
}
