// Package param models the tunable parameter space of a physical-design
// tool: typed parameters (float, integer, enumeration, boolean) with ranges,
// a Config value assigning each parameter, and a normalised [0,1]^d encoding
// that surrogate models consume.
//
// The concrete spaces of the paper's Table 1 (Source1/Target1 with 12
// parameters, Source2/Target2 with 9) are constructed in spaces.go.
package param

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind enumerates parameter data types.
type Kind int

const (
	// Float is a continuous parameter in [Min, Max].
	Float Kind = iota
	// Int is an integer parameter in [Min, Max] (inclusive).
	Int
	// Enum is a categorical parameter with ordered Levels.
	Enum
	// Bool is a FALSE/TRUE parameter.
	Bool
)

func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case Enum:
		return "enum"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Param describes one tunable tool parameter.
type Param struct {
	Name string
	Kind Kind
	// Min, Max bound Float and Int parameters.
	Min, Max float64
	// Levels lists the ordered values of an Enum parameter (e.g. the flow
	// effort ladder standard < high < extreme).
	Levels []string
}

// Validate reports whether the parameter definition itself is well formed.
func (p Param) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("param: unnamed parameter")
	}
	switch p.Kind {
	case Float, Int:
		if !(p.Min < p.Max) {
			return fmt.Errorf("param %s: empty range [%g, %g]", p.Name, p.Min, p.Max)
		}
		if p.Kind == Int && (p.Min != math.Trunc(p.Min) || p.Max != math.Trunc(p.Max)) {
			return fmt.Errorf("param %s: non-integer bounds [%g, %g]", p.Name, p.Min, p.Max)
		}
	case Enum:
		if len(p.Levels) < 2 {
			return fmt.Errorf("param %s: enum needs >=2 levels, got %d", p.Name, len(p.Levels))
		}
		seen := map[string]bool{}
		for _, l := range p.Levels {
			if seen[l] {
				return fmt.Errorf("param %s: duplicate level %q", p.Name, l)
			}
			seen[l] = true
		}
	case Bool:
		// nothing to check
	default:
		return fmt.Errorf("param %s: unknown kind %d", p.Name, int(p.Kind))
	}
	return nil
}

// levels returns the number of discrete settings, or 0 for Float.
func (p Param) levels() int {
	switch p.Kind {
	case Int:
		return int(p.Max-p.Min) + 1
	case Enum:
		return len(p.Levels)
	case Bool:
		return 2
	default:
		return 0
	}
}

// Space is an ordered list of parameters defining the tuning domain E.
type Space struct {
	Name   string
	Params []Param
	index  map[string]int
}

// NewSpace validates the parameters and builds a Space.
func NewSpace(name string, params []Param) (*Space, error) {
	s := &Space{Name: name, Params: params, index: make(map[string]int, len(params))}
	for i, p := range params {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("param: duplicate parameter %q in space %q", p.Name, name)
		}
		s.index[p.Name] = i
	}
	return s, nil
}

// MustSpace is NewSpace that panics on error; for package-level tables.
func MustSpace(name string, params []Param) *Space {
	s, err := NewSpace(name, params)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the number of parameters.
func (s *Space) Dim() int { return len(s.Params) }

// Index returns the position of the named parameter, or -1.
func (s *Space) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Config is one parameter configuration: a point in the space, stored in
// normalised coordinates u ∈ [0,1]^d. Discrete parameters snap to level
// midpoint grid values so equal decoded settings compare equal.
type Config struct {
	space *Space
	u     []float64
}

// NewConfig builds a Config from normalised coordinates, snapping discrete
// dimensions to their level grid and clamping to [0,1].
func (s *Space) NewConfig(u []float64) (Config, error) {
	if len(u) != s.Dim() {
		return Config{}, fmt.Errorf("param: config has %d coords, space %q has %d", len(u), s.Name, s.Dim())
	}
	v := make([]float64, len(u))
	for i, p := range s.Params {
		x := u[i]
		if math.IsNaN(x) {
			return Config{}, fmt.Errorf("param: NaN coordinate for %s", p.Name)
		}
		x = math.Max(0, math.Min(1, x))
		if n := p.levels(); n > 0 {
			// Snap to the midpoint grid {0, 1/(n-1), ..., 1} so that decoding
			// and re-encoding is the identity.
			step := 1.0 / float64(n-1)
			x = math.Round(x/step) * step
			x = math.Max(0, math.Min(1, x))
		}
		v[i] = x
	}
	return Config{space: s, u: v}, nil
}

// MustConfig is NewConfig that panics on error.
func (s *Space) MustConfig(u []float64) Config {
	c, err := s.NewConfig(u)
	if err != nil {
		panic(err)
	}
	return c
}

// Space returns the space the configuration belongs to.
func (c Config) Space() *Space { return c.space }

// Unit returns the normalised coordinates (a copy).
func (c Config) Unit() []float64 {
	out := make([]float64, len(c.u))
	copy(out, c.u)
	return out
}

// UnitView returns the normalised coordinates without copying. Treat as
// read-only; surrogate hot loops use this to avoid allocation.
func (c Config) UnitView() []float64 { return c.u }

// Float returns the decoded value of a Float or Int parameter by name.
func (c Config) Float(name string) float64 {
	i := c.space.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("param: no parameter %q in space %q", name, c.space.Name))
	}
	p := c.space.Params[i]
	switch p.Kind {
	case Float:
		return p.Min + c.u[i]*(p.Max-p.Min)
	case Int:
		return math.Round(p.Min + c.u[i]*(p.Max-p.Min))
	default:
		panic(fmt.Sprintf("param: %s is %s, not numeric", name, p.Kind))
	}
}

// Int returns the decoded value of an Int parameter by name.
func (c Config) Int(name string) int { return int(c.Float(name)) }

// Enum returns the decoded level of an Enum parameter by name.
func (c Config) Enum(name string) string {
	i := c.space.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("param: no parameter %q in space %q", name, c.space.Name))
	}
	p := c.space.Params[i]
	if p.Kind != Enum {
		panic(fmt.Sprintf("param: %s is %s, not enum", name, p.Kind))
	}
	n := len(p.Levels)
	idx := int(math.Round(c.u[i] * float64(n-1)))
	if idx < 0 {
		idx = 0
	} else if idx >= n {
		idx = n - 1
	}
	return p.Levels[idx]
}

// Bool returns the decoded value of a Bool parameter by name.
func (c Config) Bool(name string) bool {
	i := c.space.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("param: no parameter %q in space %q", name, c.space.Name))
	}
	if c.space.Params[i].Kind != Bool {
		panic(fmt.Sprintf("param: %s is %s, not bool", name, c.space.Params[i].Kind))
	}
	return c.u[i] >= 0.5
}

// Has reports whether the space defines the named parameter.
func (c Config) Has(name string) bool { return c.space.Index(name) >= 0 }

// FloatOr returns the decoded float value, or def when the parameter is not
// part of this space ("-" entries in Table 1).
func (c Config) FloatOr(name string, def float64) float64 {
	if !c.Has(name) {
		return def
	}
	return c.Float(name)
}

// BoolOr is FloatOr for booleans.
func (c Config) BoolOr(name string, def bool) bool {
	if !c.Has(name) {
		return def
	}
	return c.Bool(name)
}

// EnumOr is FloatOr for enums.
func (c Config) EnumOr(name, def string) string {
	if !c.Has(name) {
		return def
	}
	return c.Enum(name)
}

// Key returns a canonical string identity for the configuration, usable as a
// map key for deduplication.
func (c Config) Key() string {
	var b strings.Builder
	for i, x := range c.u {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%.9f", x)
	}
	return b.String()
}

// String renders the decoded settings, for logs and CSV headers.
func (c Config) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range c.space.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.Name)
		b.WriteByte('=')
		switch p.Kind {
		case Float:
			fmt.Fprintf(&b, "%.4g", c.Float(p.Name))
		case Int:
			fmt.Fprintf(&b, "%d", c.Int(p.Name))
		case Enum:
			b.WriteString(c.Enum(p.Name))
		case Bool:
			fmt.Fprintf(&b, "%v", c.Bool(p.Name))
		}
	}
	b.WriteByte('}')
	return b.String()
}

// EncodeInto re-expresses the configuration in another space's normalised
// coordinates by matching parameters by name and physical value: a freq of
// 1050 MHz from a [950, 1050] source range lands at u = 1/6 in a
// [1000, 1300] target range. Coordinates may fall outside [0, 1] when the
// source range extends beyond the target's — exactly what a transfer
// surrogate wants, since the point is physically outside the target domain.
// Parameters absent from either space default to the target-space midpoint.
func (c Config) EncodeInto(to *Space) []float64 {
	u := make([]float64, to.Dim())
	for i, p := range to.Params {
		if !c.Has(p.Name) {
			u[i] = 0.5
			continue
		}
		switch p.Kind {
		case Float, Int:
			u[i] = (c.Float(p.Name) - p.Min) / (p.Max - p.Min)
		case Enum:
			level := c.Enum(p.Name)
			idx := -1
			for li, l := range p.Levels {
				if l == level {
					idx = li
					break
				}
			}
			if idx < 0 {
				u[i] = 0.5 // level unknown to the target ladder
			} else {
				u[i] = float64(idx) / float64(len(p.Levels)-1)
			}
		case Bool:
			if c.Bool(p.Name) {
				u[i] = 1
			}
		}
	}
	return u
}

// Stats summarises a space as (name, kind, min, max) rows sorted by name —
// the content of the paper's Table 1 for one benchmark.
func (s *Space) Stats() []string {
	rows := make([]string, 0, s.Dim())
	for _, p := range s.Params {
		var lo, hi string
		switch p.Kind {
		case Float:
			lo, hi = fmt.Sprintf("%.2f", p.Min), fmt.Sprintf("%.2f", p.Max)
		case Int:
			lo, hi = fmt.Sprintf("%d", int(p.Min)), fmt.Sprintf("%d", int(p.Max))
		case Enum:
			lo, hi = p.Levels[0], p.Levels[len(p.Levels)-1]
		case Bool:
			lo, hi = "FALSE", "TRUE"
		}
		rows = append(rows, fmt.Sprintf("%s\t%s\t%s\t%s", p.Name, p.Kind, lo, hi))
	}
	sort.Strings(rows)
	return rows
}
