package robust

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// adoptT adopts and fails the test on error.
func adoptT(t *testing.T, ck *CampaignCheckpoint) uint64 {
	t.Helper()
	gen, err := ck.Adopt()
	if err != nil {
		t.Fatalf("adopt: %v", err)
	}
	return gen
}

// TestFencedWriteRejectedOnEveryAPI deposes a coordinator handle by
// adopting the same file under a newer generation, then drives every
// fenced checkpoint API on the stale handle: each must fail with ErrFenced
// and leave the file exactly as the new owner wrote it.
func TestFencedWriteRejectedOnEveryAPI(t *testing.T) {
	cases := []struct {
		name string
		op   func(ck *CampaignCheckpoint) error
	}{
		{"Park", func(ck *CampaignCheckpoint) error { return ck.Park("u") }},
		{"Unpark", func(ck *CampaignCheckpoint) error { return ck.Unpark("parked") }},
		{"Complete", func(ck *CampaignCheckpoint) error {
			return ck.Complete("u", CampaignCell{HV: 1, ADRS: 0, Runs: 3})
		}},
		{"Lease", func(ck *CampaignCheckpoint) error { return ck.Lease("u", 9, "w0") }},
		{"ReleaseLease", func(ck *CampaignCheckpoint) error { return ck.ReleaseLease("leased") }},
		{"AddPartialObservation", func(ck *CampaignCheckpoint) error {
			return ck.AddPartialObservation("u", Observation{Index: 0, QoR: []float64{1, 2}})
		}},
		{"StartCell", func(ck *CampaignCheckpoint) error { return ck.StartCell("u", []byte("state")) }},
		{"WrapCell", func(ck *CampaignCheckpoint) error {
			_, err := ck.WrapCell("u", func(i int) ([]float64, error) { return []float64{1, 2}, nil })(0)
			return err
		}},
		{"Retire", func(ck *CampaignCheckpoint) error { return ck.Retire() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "campaign.json")
			stale, err := LoadCampaignCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			adoptT(t, stale)
			// Give the deposed-to-be handle some state the ops can touch.
			if err := stale.Park("parked"); err != nil {
				t.Fatal(err)
			}
			if err := stale.Lease("leased", 1, "w1"); err != nil {
				t.Fatal(err)
			}

			owner, err := LoadCampaignCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if gen := adoptT(t, owner); gen != 2 {
				t.Fatalf("second adoption got generation %d, want 2", gen)
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			if err := tc.op(stale); !errors.Is(err, ErrFenced) {
				t.Fatalf("%s on deposed handle: err = %v, want ErrFenced", tc.name, err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("%s on deposed handle changed the file:\n got %s\nwant %s", tc.name, got, want)
			}
		})
	}
}

// TestDuplicatePromotionRace has two standbys race to adopt: the one that
// adopts last holds the higher generation and wins; the earlier one is
// fenced on its next write even though it adopted "successfully" moments
// before.
func TestDuplicatePromotionRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	primary, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen := adoptT(t, primary); gen != 1 {
		t.Fatalf("primary generation = %d, want 1", gen)
	}

	standbyA, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	standbyB, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen := adoptT(t, standbyA); gen != 2 {
		t.Fatalf("standby A generation = %d, want 2", gen)
	}
	if gen := adoptT(t, standbyB); gen != 3 {
		t.Fatalf("standby B generation = %d, want 3", gen)
	}

	// The primary and the lower-generation standby both lose.
	if err := primary.Park("u"); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed primary write: err = %v, want ErrFenced", err)
	}
	if err := standbyA.Park("u"); !errors.Is(err, ErrFenced) {
		t.Fatalf("lower-generation standby write: err = %v, want ErrFenced", err)
	}
	// The highest generation writes freely.
	if err := standbyB.Park("u"); err != nil {
		t.Fatalf("winning standby write: %v", err)
	}
}

// TestAdoptReloadsDiskState proves a standby that loaded the checkpoint at
// boot and promotes much later does not resurrect its stale view: Adopt
// re-reads the file under the lock.
func TestAdoptReloadsDiskState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	standby, err := LoadCampaignCheckpoint(path) // loads the (empty) file at boot
	if err != nil {
		t.Fatal(err)
	}

	primary, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	adoptT(t, primary)
	if err := primary.Complete("done-unit", CampaignCell{HV: 0.9, ADRS: 0.05, Runs: 7}); err != nil {
		t.Fatal(err)
	}
	if err := primary.Lease("inflight", 3, "w2"); err != nil {
		t.Fatal(err)
	}

	if gen := adoptT(t, standby); gen != 2 {
		t.Fatalf("standby generation = %d, want 2", gen)
	}
	if _, ok := standby.Done("done-unit"); !ok {
		t.Fatal("standby did not pick up the cell completed after its boot-time load")
	}
	leases := standby.LeaseRecords()
	if lr, ok := leases["inflight"]; !ok || lr.Epoch != 3 || lr.Holder != "w2" {
		t.Fatalf("standby lease ledger = %+v, want inflight epoch 3 held by w2", leases)
	}
}

// TestRetireClearsGeneration: a retired checkpoint is byte-identical to
// one written by a coordinator that never adopted at all — the fail-over
// machinery leaves no trace in a finished campaign.
func TestRetireClearsGeneration(t *testing.T) {
	dir := t.TempDir()
	cell := CampaignCell{HV: 0.8, ADRS: 0.1, Runs: 5}

	plainPath := filepath.Join(dir, "plain.json")
	plain := NewCampaignCheckpoint(plainPath)
	if err := plain.Complete("u", cell); err != nil {
		t.Fatal(err)
	}

	adoptedPath := filepath.Join(dir, "adopted.json")
	adopted := NewCampaignCheckpoint(adoptedPath)
	adoptT(t, adopted)
	if err := adopted.Complete("u", cell); err != nil {
		t.Fatal(err)
	}
	mid, err := os.ReadFile(adoptedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mid), "\"generation\"") {
		t.Fatal("adopted checkpoint does not record its generation while live")
	}
	if err := adopted.Retire(); err != nil {
		t.Fatal(err)
	}
	if g := adopted.Generation(); g != 0 {
		t.Fatalf("generation after retire = %d, want 0", g)
	}

	want, err := os.ReadFile(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(adoptedPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("retired checkpoint differs from a never-adopted one:\n got %s\nwant %s", got, want)
	}

	// Retiring twice is a no-op, and a never-adopted handle retires freely.
	if err := adopted.Retire(); err != nil {
		t.Fatal(err)
	}
	if err := plain.Retire(); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignCheckpointV3LoadsTransparently: the pre-generation schema
// (version 3) loads unchanged and is migrated to v4 on the next save.
func TestCampaignCheckpointV3LoadsTransparently(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	v3 := `{
 "version": 3,
 "kind": "campaign",
 "cells": {"a": {"hv": 0.5, "adrs": 0.1, "runs": 10}},
 "leases": {"b": {"epoch": 4, "holder": "w1"}}
}`
	if err := os.WriteFile(path, []byte(v3), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Cells() != 1 {
		t.Fatalf("v3 load: %d cells, want 1", ck.Cells())
	}
	if lr := ck.LeaseRecords()["b"]; lr.Epoch != 4 || lr.Holder != "w1" {
		t.Fatalf("v3 load: lease record = %+v", lr)
	}
	if g := ck.Generation(); g != 0 {
		t.Fatalf("v3 load: generation = %d, want 0", g)
	}
	if err := ck.Park("c"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Version != 4 {
		t.Fatalf("migrated file version = %d, want 4", f.Version)
	}
}

// TestAdoptionSurvivesReload: a generation recorded on disk is restored by
// a plain load, so a crashed-and-restarted coordinator keeps writing under
// its recorded generation (and stays fenceable by a later adopter).
func TestAdoptionSurvivesReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	first := NewCampaignCheckpoint(path)
	adoptT(t, first)
	if err := first.Park("u"); err != nil {
		t.Fatal(err)
	}

	reloaded, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if g := reloaded.Generation(); g != 1 {
		t.Fatalf("reloaded generation = %d, want 1", g)
	}
	if err := reloaded.Unpark("u"); err != nil {
		t.Fatalf("same-generation write after reload: %v", err)
	}
	if gen := adoptT(t, reloaded); gen != 2 {
		t.Fatalf("re-adoption generation = %d, want 2", gen)
	}
	if err := first.Park("v"); !errors.Is(err, ErrFenced) {
		t.Fatalf("original handle after re-adoption: err = %v, want ErrFenced", err)
	}
}
