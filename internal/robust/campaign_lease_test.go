package robust

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCampaignCheckpointLeaseLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	ck := NewCampaignCheckpoint(path)
	if err := ck.Lease("u1", 1, "w0"); err != nil {
		t.Fatal(err)
	}
	if err := ck.Lease("u2", 3, "w1"); err != nil {
		t.Fatal(err)
	}
	// Epochs must advance strictly.
	if err := ck.Lease("u1", 1, "w2"); err == nil {
		t.Fatal("re-granting u1 at epoch 1 should fail")
	}
	if err := ck.Lease("u1", 2, "w2"); err != nil {
		t.Fatal(err)
	}

	re, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	got := re.LeaseRecords()
	if len(got) != 2 {
		t.Fatalf("reloaded %d lease records, want 2", len(got))
	}
	if lr := got["u1"]; lr.Epoch != 2 || lr.Holder != "w2" {
		t.Fatalf("u1 lease = %+v, want epoch 2 holder w2", lr)
	}
	if lr := got["u2"]; lr.Epoch != 3 || lr.Holder != "w1" {
		t.Fatalf("u2 lease = %+v, want epoch 3 holder w1", lr)
	}
	// The restored high-water mark still gates grants.
	if err := re.Lease("u2", 3, "w5"); err == nil {
		t.Fatal("restored coordinator must not re-grant u2 at epoch 3")
	}
	if err := re.Lease("u2", 4, "w5"); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignCheckpointCompleteClearsLease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	ck := NewCampaignCheckpoint(path)
	if err := ck.Lease("u1", 1, "w0"); err != nil {
		t.Fatal(err)
	}
	if err := ck.Park("u1"); err != nil {
		t.Fatal(err)
	}
	if err := ck.Complete("u1", CampaignCell{HV: 1}); err != nil {
		t.Fatal(err)
	}
	if n := len(ck.LeaseRecords()); n != 0 {
		t.Fatalf("%d lease records after Complete, want 0", n)
	}
	if n := len(ck.Parked()); n != 0 {
		t.Fatalf("%d parked after Complete, want 0", n)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "leases") || strings.Contains(string(data), "parked") {
		t.Fatalf("finished checkpoint still carries lease/park traces:\n%s", data)
	}
}

func TestCampaignCheckpointReleaseLease(t *testing.T) {
	ck := NewCampaignCheckpoint("")
	if err := ck.ReleaseLease("absent"); err != nil {
		t.Fatal(err)
	}
	if err := ck.Lease("u1", 5, "w0"); err != nil {
		t.Fatal(err)
	}
	if err := ck.ReleaseLease("u1"); err != nil {
		t.Fatal(err)
	}
	if n := len(ck.LeaseRecords()); n != 0 {
		t.Fatalf("%d lease records after release, want 0", n)
	}
}

func TestCampaignCheckpointV2LoadsTransparently(t *testing.T) {
	// A schema-v2 file (pre-lease-ledger) must load without error and be
	// rewritten as v3 on the next save.
	path := filepath.Join(t.TempDir(), "campaign.json")
	v2 := `{
 "version": 2,
 "kind": "campaign",
 "cells": {"a": {"hv": 0.5, "adrs": 0.1, "runs": 10}},
 "partial": {"b": {"runs": [{"index": 3, "qor": [1, 2]}], "iters": 1}}
}`
	if err := os.WriteFile(path, []byte(v2), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Cells() != 1 {
		t.Fatalf("v2 load: %d cells, want 1", ck.Cells())
	}
	if obs := ck.PartialObservations("b"); len(obs) != 1 || obs[0].Index != 3 {
		t.Fatalf("v2 load: partial obs = %+v", obs)
	}
	if err := ck.Lease("b", 1, "w0"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Version != 4 {
		t.Fatalf("migrated file version = %d, want 4", f.Version)
	}
}

func TestAddPartialObservation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	ck := NewCampaignCheckpoint(path)
	if err := ck.AddPartialObservation("u", Observation{Index: 4, QoR: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := ck.AddPartialObservation("u", Observation{Index: 9, QoR: []float64{3, 4}}); err != nil {
		t.Fatal(err)
	}
	// Duplicate delivery (retransmitted result) is idempotent.
	if err := ck.AddPartialObservation("u", Observation{Index: 4, QoR: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	// Garbage QoR is rejected, never cached.
	if err := ck.AddPartialObservation("u", Observation{Index: 5, QoR: []float64{math.NaN(), 1}}); err == nil {
		t.Fatal("NaN observation should be rejected")
	}
	obs := ck.PartialObservations("u")
	if len(obs) != 2 || obs[0].Index != 4 || obs[1].Index != 9 {
		t.Fatalf("observations = %+v", obs)
	}
	re, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	// Merged observations replay through WrapCell exactly like local ones.
	replay := re.WrapCell("u", func(i int) ([]float64, error) {
		t.Fatalf("tool called for merged index %d", i)
		return nil, nil
	})
	y, err := replay(9)
	if err != nil || y[0] != 3 {
		t.Fatalf("replayed merged obs = %v, %v", y, err)
	}
	if _, iters := re.PartialRandState("u"); iters != 0 {
		// No rand state was recorded, so PartialRandState reports nil/0;
		// the iteration count still rides the partial record itself.
		t.Fatalf("iters via PartialRandState = %d, want 0 without rand state", iters)
	}
}

func TestFailureLogLeaseEvents(t *testing.T) {
	var l FailureLog
	l.Record(Event{Index: -1, Attempt: -1, Kind: KindLease, Err: "lease granted u1 epoch 1"})
	l.Record(Event{Index: -1, Attempt: -1, Kind: KindLease, Err: "zombie result rejected u1 epoch 1"})
	l.Record(Event{Index: 3, Attempt: 0, Kind: KindError, Err: "boom"})
	if n := l.LeaseEvents(); n != 2 {
		t.Fatalf("LeaseEvents = %d, want 2", n)
	}
	sum := l.Summary()
	if !strings.Contains(sum, "1 failures") || !strings.Contains(sum, "2 lease events") {
		t.Fatalf("Summary = %q", sum)
	}
	// A machinery-only log reads as no failures.
	var m FailureLog
	m.Record(Event{Index: -1, Attempt: -1, Kind: KindLease, Err: "lease granted"})
	if sum := m.Summary(); !strings.Contains(sum, "no failures") || !strings.Contains(sum, "1 lease events") {
		t.Fatalf("machinery-only Summary = %q", sum)
	}
	// Nil logs stay safe.
	var nilLog *FailureLog
	nilLog.Record(Event{Kind: KindLease})
	if nilLog.LeaseEvents() != 0 {
		t.Fatal("nil log should report 0 lease events")
	}
}
