package robust

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	c := NewCheckpoint(path)
	if err := c.Add(4, []float64{1.5, 2.5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(9, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}

	r, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("restored %d entries, want 2", r.Len())
	}
	y, ok := r.Lookup(4)
	if !ok || y[0] != 1.5 || y[1] != 2.5 {
		t.Errorf("Lookup(4) = %v, %v", y, ok)
	}
	if _, ok := r.Lookup(5); ok {
		t.Error("Lookup(5) hit for missing entry")
	}
}

func TestLoadCheckpointMissingFileIsEmpty(t *testing.T) {
	c, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Errorf("len = %d, want 0", c.Len())
	}
}

func TestLoadCheckpointRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Error("corrupt JSON accepted")
	}
	ver := filepath.Join(dir, "ver.json")
	os.WriteFile(ver, []byte(`{"version":9,"runs":[]}`), 0o644)
	if _, err := LoadCheckpoint(ver); err == nil {
		t.Error("future version accepted")
	}
	// JSON cannot encode NaN, but an out-of-range literal decodes toward Inf:
	// either the decoder or ValidateVector must reject it.
	inf := filepath.Join(dir, "inf.json")
	os.WriteFile(inf, []byte(`{"version":1,"runs":[{"index":0,"qor":[1e999]}]}`), 0o644)
	if _, err := LoadCheckpoint(inf); err == nil {
		t.Error("out-of-range QoR entry accepted")
	}
}

func TestCheckpointRejectsInvalidVectors(t *testing.T) {
	c := NewCheckpoint("")
	if err := c.Add(0, []float64{math.NaN()}); err == nil {
		t.Error("NaN observation checkpointed")
	}
	if err := c.Add(0, []float64{math.Inf(1)}); err == nil {
		t.Error("Inf observation checkpointed")
	}
}

func TestCheckpointWrapCachesAndCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	c := NewCheckpoint(path)
	calls := 0
	eval := c.Wrap(func(i int) ([]float64, error) {
		calls++
		return []float64{float64(i), float64(i * 2)}, nil
	})
	for _, i := range []int{3, 5, 3, 5, 3} {
		y, err := eval(i)
		if err != nil {
			t.Fatal(err)
		}
		if y[0] != float64(i) {
			t.Errorf("eval(%d) = %v", i, y)
		}
	}
	if calls != 2 {
		t.Errorf("inner evaluator called %d times, want 2", calls)
	}
	hits, misses := c.Stats()
	if hits != 3 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 3/2", hits, misses)
	}

	// A fresh process resumes from the file and pays zero tool calls.
	r, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	calls2 := 0
	eval2 := r.Wrap(func(i int) ([]float64, error) { calls2++; return nil, errors.New("tool gone") })
	for _, i := range []int{3, 5} {
		if _, err := eval2(i); err != nil {
			t.Fatalf("resumed eval(%d): %v", i, err)
		}
	}
	if calls2 != 0 {
		t.Errorf("resumed run invoked the tool %d times, want 0", calls2)
	}
}

func TestCheckpointWrapDoesNotCacheErrorsOrGarbage(t *testing.T) {
	c := NewCheckpoint("")
	fail := true
	eval := c.Wrap(func(i int) ([]float64, error) {
		if fail {
			return nil, errors.New("transient")
		}
		return []float64{1}, nil
	})
	if _, err := eval(0); err == nil {
		t.Fatal("error swallowed")
	}
	if c.Len() != 0 {
		t.Error("failed evaluation was cached")
	}
	fail = false
	if _, err := eval(0); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Error("successful evaluation not cached")
	}

	// Corrupt QoR passes through (for the resilience layer to reject) but is
	// never persisted.
	bad := c.Wrap(func(i int) ([]float64, error) { return []float64{math.NaN()}, nil })
	y, err := bad(7)
	if err != nil || !math.IsNaN(y[0]) {
		t.Fatalf("corrupt passthrough = %v, %v", y, err)
	}
	if _, ok := c.Lookup(7); ok {
		t.Error("corrupt QoR was cached")
	}
}

func TestCheckpointLookupReturnsCopy(t *testing.T) {
	c := NewCheckpoint("")
	if err := c.Add(1, []float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	y, _ := c.Lookup(1)
	y[0] = 999
	y2, _ := c.Lookup(1)
	if y2[0] != 10 {
		t.Error("Lookup exposed internal storage")
	}
}
