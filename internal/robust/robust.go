// Package robust hardens the evaluation path between the tuner and the
// physical-design tool. The paper's evaluator is a commercial P&R engine
// whose runs routinely fail in practice — licence drops, crashes, hangs,
// garbage QoR — so a production tuning loop must budget for failure instead
// of assuming an infallible oracle (FIST, ICCAD'20, makes the same point for
// design-flow tuning at large).
//
// Evaluator wraps a core.Evaluator (or a context-aware ToolFunc) with:
//
//   - context cancellation and a per-evaluation deadline;
//   - bounded retries with exponential backoff and deterministic jitter;
//   - panic recovery (a crashing tool adapter becomes an error, not a dead
//     tuner process);
//   - QoR validation (length, NaN, Inf) before anything reaches the GP
//     surrogates;
//   - a FailurePolicy deciding whether an exhausted candidate aborts the run
//     or is skipped (the tuner marks it core.Failed and continues);
//   - an optional run-level circuit Breaker: correlated failures (a licence
//     server or farm outage takes down every in-flight run at once) pause or
//     park evaluations instead of exhausting per-candidate retry budgets;
//   - a shared, concurrency-safe FailureLog for post-run diagnostics.
//
// The checkpoint file in checkpoint.go completes the story: observations are
// persisted as they are made, so a killed run resumes without re-invoking
// the tool for anything it already paid for.
package robust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	"ppatuner/internal/clock"
	"ppatuner/internal/core"
)

// ToolFunc is a context-aware tool invocation: evaluate pool candidate i,
// honouring ctx for cancellation and deadlines. Adapters around real tools
// should pass ctx to exec.CommandContext (or equivalent) so a deadline kills
// the tool process; plain in-process evaluators can ignore it and rely on
// the wrapper's goroutine abandonment.
type ToolFunc func(ctx context.Context, i int) ([]float64, error)

// FailurePolicy decides what happens when an evaluation fails after the
// retry budget is spent.
type FailurePolicy int

const (
	// PolicyRetry retries transient failures up to MaxRetries; if the
	// candidate still fails, the run aborts with the last error. The default.
	PolicyRetry FailurePolicy = iota
	// PolicySkip retries like PolicyRetry, but an exhausted candidate is
	// surrendered: the returned error wraps core.ErrSkipCandidate, so the
	// tuner marks it Failed and the PAL loop continues without it.
	PolicySkip
	// PolicyAbort fails fast: no retries, the first error aborts the run.
	PolicyAbort
)

func (p FailurePolicy) String() string {
	switch p {
	case PolicyRetry:
		return "retry"
	case PolicySkip:
		return "skip"
	case PolicyAbort:
		return "abort"
	default:
		return fmt.Sprintf("FailurePolicy(%d)", int(p))
	}
}

// ParsePolicy maps the CLI spelling to a FailurePolicy, case-insensitively
// ("Skip" and "SKIP" mean skip).
func ParsePolicy(s string) (FailurePolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "retry":
		return PolicyRetry, nil
	case "skip":
		return PolicySkip, nil
	case "abort":
		return PolicyAbort, nil
	default:
		return 0, fmt.Errorf("robust: unknown failure policy %q (want retry|skip|abort)", s)
	}
}

// Options configures an Evaluator.
type Options struct {
	// Timeout is the per-evaluation deadline; 0 disables it. When it fires
	// the attempt fails with context.DeadlineExceeded (retryable) and the
	// in-flight tool goroutine is abandoned — see Evaluator.Evaluate.
	Timeout time.Duration
	// MaxRetries bounds re-attempts after the first failure (default 2, so
	// up to 3 attempts per candidate). Ignored under PolicyAbort.
	MaxRetries int
	// Backoff is the delay before the first retry (default 100ms); each
	// further retry doubles it up to MaxBackoff (default 30s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// JitterFrac randomises each backoff by ±JitterFrac of itself (default
	// 0.5), decorrelating retry storms when several workers fail together.
	// The jitter source is seeded (Seed), keeping runs reproducible.
	JitterFrac float64
	// Policy decides the fate of a candidate that exhausts its retries.
	Policy FailurePolicy
	// NumObjectives, when positive, validates the length of returned QoR
	// vectors; NaN/Inf are always rejected.
	NumObjectives int
	// Seed drives backoff jitter (deterministic; default 1).
	Seed int64
	// Clock supplies retry-backoff timing (default: the wall clock). Tests
	// install a clock.Fake so backoff-heavy paths run in microseconds.
	Clock clock.Clock
	// Sleep replaces the clock's sleep between retries (test hook; default
	// sleeps on Clock).
	Sleep func(time.Duration)
	// Breaker, when non-nil, is the run-level circuit breaker shared by
	// every evaluation. Outage-marked failures (IsOutage) trip it
	// immediately and other transients count toward its threshold; while it
	// is open, evaluations pause (or park, per BreakerOptions.Park) instead
	// of consuming per-candidate retry budgets, so a correlated outage
	// stretches wall-clock time but never changes which candidates succeed.
	Breaker *Breaker
	// Log, when non-nil, receives every failure event. A single log may be
	// shared by several evaluators.
	Log *FailureLog
}

func (o *Options) setDefaults() {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 30 * time.Second
	}
	if o.JitterFrac <= 0 {
		o.JitterFrac = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = clock.Real()
	}
	if o.Sleep == nil {
		clk := o.Clock
		o.Sleep = func(d time.Duration) { _ = clk.Sleep(context.Background(), d) }
	}
}

// PanicError reports a tool adapter panic converted into an ordinary error.
type PanicError struct {
	Index int
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("robust: evaluation %d panicked: %v", e.Index, e.Value)
}

// ValidationError reports a malformed QoR vector.
type ValidationError struct {
	Index  int
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("robust: evaluation %d returned invalid QoR: %s", e.Index, e.Reason)
}

// ValidateVector rejects QoR vectors that would poison the surrogates:
// wrong length (when want > 0), NaN, or Inf entries.
func ValidateVector(y []float64, want int) error {
	if want > 0 && len(y) != want {
		return fmt.Errorf("%d objectives, want %d", len(y), want)
	}
	for k, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("objective %d is %v", k, v)
		}
	}
	return nil
}

// Evaluator is the fault-tolerant wrapper. Construct with New (context-aware
// tool) or Wrap (plain core.Evaluator); pass its Evaluate method to the
// tuner.
type Evaluator struct {
	tool ToolFunc
	opt  Options
	ctx  context.Context

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a fault-tolerant evaluator around a context-aware tool
// function. ctx is the run-scope context: cancelling it stops evaluations
// (including ones blocked in a hung tool, via abandonment) with ctx.Err().
func New(ctx context.Context, tool ToolFunc, opt Options) (*Evaluator, error) {
	if tool == nil {
		return nil, errors.New("robust: nil tool")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opt.setDefaults()
	return &Evaluator{
		tool: tool,
		opt:  opt,
		ctx:  ctx,
		rng:  rand.New(rand.NewSource(opt.Seed)),
	}, nil
}

// Wrap lifts a plain evaluator into a fault-tolerant one. The inner
// evaluator cannot observe cancellation, so a deadline abandons (rather
// than stops) a hung call.
func Wrap(ctx context.Context, eval core.Evaluator, opt Options) (*Evaluator, error) {
	if eval == nil {
		return nil, errors.New("robust: nil evaluator")
	}
	return New(ctx, func(_ context.Context, i int) ([]float64, error) { return eval(i) }, opt)
}

// Log returns the failure log (nil if none was configured).
func (e *Evaluator) Log() *FailureLog { return e.opt.Log }

// Evaluate runs one fault-tolerant evaluation of candidate i. It satisfies
// core.Evaluator, so wire it straight into core.New:
//
//	tn, _ := core.New(pool, re.Evaluate, opt)
func (e *Evaluator) Evaluate(i int) ([]float64, error) {
	attempts := 1 + e.opt.MaxRetries
	if e.opt.Policy == PolicyAbort {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; {
		if err := e.ctx.Err(); err != nil {
			return nil, fmt.Errorf("robust: evaluation %d: %w", i, err)
		}
		if b := e.opt.Breaker; b != nil {
			// The breaker gates every attempt: while open, this pauses (or
			// parks with ErrBreakerOpen) without touching the candidate's
			// retry budget — an outage is not the candidate's fault.
			if err := b.Acquire(e.ctx); err != nil {
				return nil, fmt.Errorf("robust: evaluation %d: %w", i, err)
			}
		}
		if a > 0 {
			e.opt.Sleep(e.backoff(a))
		}
		y, err := e.attempt(i)
		if err == nil {
			// The tool answered: the infrastructure is up, whatever the
			// vector says.
			if b := e.opt.Breaker; b != nil {
				b.OnSuccess()
			}
			if verr := ValidateVector(y, e.opt.NumObjectives); verr != nil {
				err = &ValidationError{Index: i, Reason: verr.Error()}
			} else {
				return y, nil
			}
		} else if b := e.opt.Breaker; b != nil {
			b.OnFailure(err)
		}
		lastErr = err
		// Run-scope cancellation is not a tool failure: stop immediately and
		// do not count it against the candidate. (A per-attempt deadline only
		// cancels the child context, so e.ctx.Err() stays nil for those.)
		if e.ctx.Err() != nil {
			return nil, err
		}
		if e.opt.Breaker != nil && IsOutage(err) {
			// Correlated outage with a breaker in charge: log it, but do not
			// charge the candidate — the next Acquire pauses until recovery
			// (bounded by the breaker's MaxOutage deadline) or parks.
			e.opt.Log.add(Event{Index: i, Attempt: a, Kind: KindOutage, Err: err.Error()})
			continue
		}
		e.opt.Log.add(Event{Index: i, Attempt: a, Kind: classify(err), Err: err.Error(), Terminal: a == attempts-1})
		a++
	}
	switch e.opt.Policy {
	case PolicySkip:
		return nil, fmt.Errorf("robust: evaluation %d failed after %d attempts: %w: %w",
			i, attempts, core.ErrSkipCandidate, lastErr)
	default:
		return nil, fmt.Errorf("robust: evaluation %d failed after %d attempts: %w", i, attempts, lastErr)
	}
}

// attempt performs a single guarded tool invocation: panic recovery, and a
// deadline enforced by racing the tool goroutine against the context. A tool
// that outlives its deadline is abandoned — its goroutine keeps running and
// its eventual result is discarded through the buffered channel. That is the
// strongest guarantee available without tool cooperation; context-aware
// tools (ToolFunc implementations that honour ctx) terminate for real.
func (e *Evaluator) attempt(i int) ([]float64, error) {
	ctx := e.ctx
	cancel := func() {}
	if e.opt.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, e.opt.Timeout)
	}
	defer cancel()
	type outcome struct {
		y   []float64
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{nil, &PanicError{Index: i, Value: r}}
			}
		}()
		y, err := e.tool(ctx, i)
		ch <- outcome{y, err}
	}()
	select {
	case out := <-ch:
		return out.y, out.err
	case <-ctx.Done():
		return nil, fmt.Errorf("robust: evaluation %d: %w", i, ctx.Err())
	}
}

// backoff returns the exponential, jittered delay before retry attempt a
// (a >= 1).
func (e *Evaluator) backoff(a int) time.Duration {
	d := e.opt.Backoff << uint(a-1)
	if d > e.opt.MaxBackoff || d <= 0 {
		d = e.opt.MaxBackoff
	}
	e.mu.Lock()
	j := 1 + e.opt.JitterFrac*(2*e.rng.Float64()-1)
	e.mu.Unlock()
	jd := time.Duration(float64(d) * j)
	if jd < 0 {
		jd = 0
	}
	return jd
}
