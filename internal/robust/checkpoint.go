package robust

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"ppatuner/internal/core"
)

// Checkpoint is a crash-safe cache of tuner observations: evaluated pool
// indices with their golden QoR vectors, persisted as JSON after every
// successful evaluation (write-to-temp + atomic rename, so a kill mid-write
// never corrupts the file). Wrap an evaluator with it and a killed run,
// restarted with the same seed and pool, replays every paid-for observation
// from the file instead of re-invoking the tool — the tuner is deterministic
// given (seed, observations), so the resumed run converges to the identical
// Pareto set.
//
// Invalid vectors (NaN/Inf) are deliberately never cached: persisting
// garbage QoR would replay the corruption forever.
//
// Schema v2 additionally records the tuner's serialised RNG-source state
// and iteration count (SetRandState/SetIters), so a resumed run can restore
// the exact generator state instead of re-deriving it from the seed —
// recovery survives changes to the seed-derivation scheme between the
// crashed and the resumed process. Version-1 files (observations only) load
// transparently and are migrated to v2 on the next save.
type Checkpoint struct {
	mu        sync.Mutex
	path      string
	order     []int
	values    map[int][]float64
	randState []byte
	iters     int
	hits      int
	misses    int
}

// checkpointVersion is the schema version written by saveLocked.
const checkpointVersion = 2

// checkpointFile is the on-disk schema. Version 1 carried Runs only; v2
// adds the RNG-source state (base64 via encoding/json) and the iteration
// count of the run that produced the observations.
type checkpointFile struct {
	Version   int             `json:"version"`
	Runs      []checkpointRun `json:"runs"`
	RandState []byte          `json:"rand_state,omitempty"`
	Iters     int             `json:"iters,omitempty"`
}

type checkpointRun struct {
	Index int       `json:"index"`
	QoR   []float64 `json:"qor"`
}

// NewCheckpoint builds an empty checkpoint persisting to path. An empty path
// keeps the checkpoint in memory only (useful in tests).
func NewCheckpoint(path string) *Checkpoint {
	return &Checkpoint{path: path, values: map[int][]float64{}}
}

// LoadCheckpoint restores a checkpoint from path. A missing file is not an
// error: it yields an empty checkpoint, so the same call serves both a fresh
// start and a resume.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	c := NewCheckpoint(path)
	if path == "" {
		return c, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("robust: read checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("robust: parse checkpoint %s: %w", path, err)
	}
	if f.Version != 1 && f.Version != checkpointVersion {
		return nil, fmt.Errorf("robust: checkpoint %s has unsupported version %d", path, f.Version)
	}
	c.randState = f.RandState
	c.iters = f.Iters
	for _, r := range f.Runs {
		if err := ValidateVector(r.QoR, 0); err != nil {
			return nil, fmt.Errorf("robust: checkpoint %s entry %d: %v", path, r.Index, err)
		}
		if _, dup := c.values[r.Index]; dup {
			continue
		}
		c.order = append(c.order, r.Index)
		c.values[r.Index] = r.QoR
	}
	return c, nil
}

// Len is the number of cached observations.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.order)
}

// Stats reports cache hits (tool runs saved) and misses (tool runs made)
// since the checkpoint was created or loaded.
func (c *Checkpoint) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Lookup returns the cached golden vector for candidate i, if present.
func (c *Checkpoint) Lookup(i int) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	y, ok := c.values[i]
	if !ok {
		return nil, false
	}
	return append([]float64(nil), y...), true
}

// Add records an observation and persists the checkpoint. Invalid vectors
// are rejected.
func (c *Checkpoint) Add(i int, y []float64) error {
	if err := ValidateVector(y, 0); err != nil {
		return fmt.Errorf("robust: refusing to checkpoint candidate %d: %v", i, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.values[i]; !dup {
		c.order = append(c.order, i)
		c.values[i] = append([]float64(nil), y...)
	}
	return c.saveLocked()
}

// SetRandState records the tuner's serialised RNG-source state (schema v2)
// and persists. Record the state the source had when the run *started*: a
// resumed run restores it, replays the cached observations, and from there
// draws exactly the sequence the crashed run would have.
func (c *Checkpoint) SetRandState(state []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.randState = append([]byte(nil), state...)
	return c.saveLocked()
}

// RandState returns the recorded RNG-source state, nil when none was
// recorded (e.g. a migrated v1 file).
func (c *Checkpoint) RandState() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.randState == nil {
		return nil
	}
	return append([]byte(nil), c.randState...)
}

// SetIters records the run's iteration count (schema v2) and persists.
func (c *Checkpoint) SetIters(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.iters = n
	return c.saveLocked()
}

// Iters returns the recorded iteration count (0 for migrated v1 files).
func (c *Checkpoint) Iters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.iters
}

// Save forces a persist of the current state (Add already persists; Save is
// for explicit flush points).
func (c *Checkpoint) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.saveLocked()
}

func (c *Checkpoint) saveLocked() error {
	if c.path == "" {
		return nil
	}
	f := checkpointFile{
		Version:   checkpointVersion,
		Runs:      make([]checkpointRun, 0, len(c.order)),
		RandState: c.randState,
		Iters:     c.iters,
	}
	for _, i := range c.order {
		f.Runs = append(f.Runs, checkpointRun{Index: i, QoR: c.values[i]})
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("robust: encode checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), filepath.Base(c.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("robust: write checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("robust: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("robust: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("robust: write checkpoint: %w", err)
	}
	return nil
}

// Wrap returns an evaluator that answers from the checkpoint when it can and
// writes through to it when it must invoke eval. Compose it *inside* a
// fault-tolerant Evaluator (robust retries re-enter the cache miss path;
// validation failures are never cached), and give the checkpoint file a
// stable location so the next process finds it.
func (c *Checkpoint) Wrap(eval core.Evaluator) core.Evaluator {
	return func(i int) ([]float64, error) {
		if y, ok := c.Lookup(i); ok {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return y, nil
		}
		y, err := eval(i)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		if ValidateVector(y, 0) != nil {
			// Pass the garbage up for the resilience layer to reject and
			// retry; caching it would replay the corruption on resume.
			return y, nil
		}
		if err := c.Add(i, y); err != nil {
			return nil, err
		}
		return y, nil
	}
}
