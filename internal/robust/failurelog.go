package robust

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
)

// Kind classifies a failure event.
type Kind string

const (
	// KindError is an ordinary tool error (licence drop, non-zero exit...).
	KindError Kind = "error"
	// KindTimeout is a per-evaluation deadline expiry — a hung tool.
	KindTimeout Kind = "timeout"
	// KindPanic is a recovered tool-adapter panic.
	KindPanic Kind = "panic"
	// KindInvalid is a malformed QoR vector (NaN/Inf/wrong length).
	KindInvalid Kind = "invalid"
	// KindOutage is a correlated infrastructure outage (IsOutage): every
	// in-flight evaluation fails together, e.g. a licence-server window.
	KindOutage Kind = "outage"
	// KindBreaker is a circuit-breaker state transition, recorded with
	// Index and Attempt of -1 — run-level machinery, not a per-candidate
	// failure.
	KindBreaker Kind = "breaker"
	// KindLease is a distributed-campaign lease event (granted, expired,
	// reclaimed, zombie result rejected), recorded with Index and Attempt
	// of -1 — coordinator machinery, not a per-candidate failure.
	KindLease Kind = "lease"
)

// classify maps an attempt error to its Kind.
func classify(err error) Kind {
	var pe *PanicError
	var ve *ValidationError
	switch {
	case errors.As(err, &pe):
		return KindPanic
	case errors.As(err, &ve):
		return KindInvalid
	case errors.Is(err, context.DeadlineExceeded):
		return KindTimeout
	case IsOutage(err):
		return KindOutage
	default:
		return KindError
	}
}

// Event is one recorded evaluation failure (one attempt).
type Event struct {
	// Index is the pool candidate whose evaluation failed.
	Index int
	// Attempt counts from 0 within the candidate's retry budget.
	Attempt int
	// Kind classifies the failure.
	Kind Kind
	// Err is the error text.
	Err string
	// Terminal marks the last attempt: the candidate's budget is spent.
	Terminal bool
}

// FailureLog accumulates failure events across a run. It is safe for
// concurrent use (batch evaluation runs several workers) and nil-safe: a
// nil log discards events, so callers never need to guard.
type FailureLog struct {
	mu     sync.Mutex
	events []Event
	logger *slog.Logger
}

// Stream attaches a structured logger: every subsequent failure event is
// emitted through it as it is recorded, in addition to being accumulated for
// the post-run digest. A nil logger (or nil receiver) turns streaming off.
// Operators tail these records live instead of waiting for Summary.
func (l *FailureLog) Stream(logger *slog.Logger) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.logger = logger
	l.mu.Unlock()
}

func (l *FailureLog) add(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, ev)
	logger := l.logger
	l.mu.Unlock()
	if logger != nil {
		level := slog.LevelWarn
		if ev.Terminal {
			level = slog.LevelError
		}
		logger.Log(context.Background(), level, "evaluation failure",
			"candidate", ev.Index,
			"attempt", ev.Attempt,
			"kind", string(ev.Kind),
			"terminal", ev.Terminal,
			"err", ev.Err,
		)
	}
}

// Record appends an event directly — the hook for run-level machinery
// (coordinator lease bookkeeping, breaker transitions threaded from outside
// the evaluator) that classifies its own events rather than deriving the
// Kind from an attempt error. Like every FailureLog method it is nil-safe
// and streams to any attached logger.
func (l *FailureLog) Record(ev Event) {
	l.add(ev)
}

// Events returns a copy of the recorded events in order.
func (l *FailureLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Len is the number of recorded events.
func (l *FailureLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Terminal counts events that exhausted a candidate's retry budget.
func (l *FailureLog) Terminal() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Terminal {
			n++
		}
	}
	return n
}

// Outages counts outage-classified failure events.
func (l *FailureLog) Outages() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Kind == KindOutage {
			n++
		}
	}
	return n
}

// BreakerTransitions counts recorded circuit-breaker state transitions.
func (l *FailureLog) BreakerTransitions() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Kind == KindBreaker {
			n++
		}
	}
	return n
}

// LeaseEvents counts recorded distributed-lease events.
func (l *FailureLog) LeaseEvents() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Kind == KindLease {
			n++
		}
	}
	return n
}

// Summary renders a one-line per-kind digest, e.g.
// "9 failures (error:4 timeout:2 outage:3), 1 terminal, 4 breaker transitions, 6 lease events".
// Breaker transitions and lease events are machinery, not failures, so they
// are tallied separately from the failure count.
func (l *FailureLog) Summary() string {
	if l.Len() == 0 {
		return "no failures"
	}
	l.mu.Lock()
	byKind := map[Kind]int{}
	terminal := 0
	for _, ev := range l.events {
		byKind[ev.Kind]++
		if ev.Terminal {
			terminal++
		}
	}
	total := len(l.events)
	l.mu.Unlock()
	transitions := byKind[KindBreaker]
	leases := byKind[KindLease]
	total -= transitions + leases
	parts := make([]string, 0, len(byKind))
	for _, k := range []Kind{KindError, KindTimeout, KindPanic, KindInvalid, KindOutage} {
		if n := byKind[k]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", k, n))
		}
	}
	var s string
	if total == 0 {
		s = "no failures"
	} else {
		s = fmt.Sprintf("%d failures (%s), %d terminal", total, strings.Join(parts, " "), terminal)
	}
	if transitions > 0 {
		s += fmt.Sprintf(", %d breaker transitions", transitions)
	}
	if leases > 0 {
		s += fmt.Sprintf(", %d lease events", leases)
	}
	return s
}
