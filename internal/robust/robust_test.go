package robust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppatuner/internal/core"
)

// noSleep collects requested backoffs without sleeping.
type noSleep struct {
	mu sync.Mutex
	ds []time.Duration
}

func (s *noSleep) sleep(d time.Duration) {
	s.mu.Lock()
	s.ds = append(s.ds, d)
	s.mu.Unlock()
}

func TestTransientFailureRecoversAfterRetry(t *testing.T) {
	calls := 0
	tool := func(_ context.Context, i int) ([]float64, error) {
		calls++
		if calls < 3 {
			return nil, errors.New("licence checkout failed")
		}
		return []float64{1, 2}, nil
	}
	ns := &noSleep{}
	log := &FailureLog{}
	e, err := New(context.Background(), tool, Options{MaxRetries: 3, NumObjectives: 2, Sleep: ns.sleep, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	y, err := e.Evaluate(7)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if y[0] != 1 || y[1] != 2 {
		t.Errorf("y = %v", y)
	}
	if calls != 3 {
		t.Errorf("tool called %d times, want 3", calls)
	}
	if len(ns.ds) != 2 {
		t.Errorf("slept %d times, want 2", len(ns.ds))
	}
	if log.Len() != 2 || log.Terminal() != 0 {
		t.Errorf("log: %s", log.Summary())
	}
	for _, ev := range log.Events() {
		if ev.Index != 7 || ev.Kind != KindError {
			t.Errorf("event = %+v", ev)
		}
	}
}

func TestTerminalFailurePolicySkipWrapsSentinel(t *testing.T) {
	boom := errors.New("corrupted netlist")
	tool := func(_ context.Context, i int) ([]float64, error) { return nil, boom }
	log := &FailureLog{}
	e, err := New(context.Background(), tool, Options{MaxRetries: 2, Policy: PolicySkip, Sleep: func(time.Duration) {}, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Evaluate(3)
	if !errors.Is(err, core.ErrSkipCandidate) {
		t.Fatalf("err = %v, want wrapped ErrSkipCandidate", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want to also wrap the tool error", err)
	}
	if log.Terminal() != 1 {
		t.Errorf("terminal events = %d, want 1", log.Terminal())
	}
}

func TestTerminalFailurePolicyRetryAborts(t *testing.T) {
	boom := errors.New("down hard")
	tool := func(_ context.Context, i int) ([]float64, error) { return nil, boom }
	e, err := New(context.Background(), tool, Options{MaxRetries: 1, Policy: PolicyRetry, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Evaluate(0)
	if errors.Is(err, core.ErrSkipCandidate) {
		t.Error("PolicyRetry must not signal skip")
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped tool error", err)
	}
}

func TestPolicyAbortSingleAttempt(t *testing.T) {
	calls := 0
	tool := func(_ context.Context, i int) ([]float64, error) {
		calls++
		return nil, errors.New("no")
	}
	e, err := New(context.Background(), tool, Options{MaxRetries: 5, Policy: PolicyAbort})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(0); err == nil {
		t.Fatal("want error")
	}
	if calls != 1 {
		t.Errorf("tool called %d times under PolicyAbort, want 1", calls)
	}
}

func TestHangHitsDeadlineThenRecovers(t *testing.T) {
	var calls atomic.Int32 // the timed-out goroutine finishes concurrently with the retry
	tool := func(ctx context.Context, i int) ([]float64, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // honour the deadline like a context-aware adapter
			return nil, ctx.Err()
		}
		return []float64{4}, nil
	}
	log := &FailureLog{}
	e, err := New(context.Background(), tool, Options{
		Timeout: 20 * time.Millisecond, MaxRetries: 1, NumObjectives: 1,
		Sleep: func(time.Duration) {}, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	y, err := e.Evaluate(5)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if y[0] != 4 {
		t.Errorf("y = %v", y)
	}
	evs := log.Events()
	if len(evs) != 1 || evs[0].Kind != KindTimeout {
		t.Errorf("events = %+v, want one timeout", evs)
	}
}

func TestHangAbandonsUncooperativeTool(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int32 // the abandoned goroutine outlives its attempt
	tool := func(_ context.Context, i int) ([]float64, error) {
		if calls.Add(1) == 1 {
			<-release // a true hang: ignores ctx entirely
		}
		return []float64{1}, nil
	}
	e, err := New(context.Background(), tool, Options{
		Timeout: 10 * time.Millisecond, MaxRetries: 1, NumObjectives: 1,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var y []float64
	var evalErr error
	go func() {
		y, evalErr = e.Evaluate(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Evaluate blocked on a hung tool despite the deadline")
	}
	close(release) // unstick the abandoned goroutine
	if evalErr != nil {
		t.Fatalf("Evaluate: %v", evalErr)
	}
	if y[0] != 1 {
		t.Errorf("y = %v", y)
	}
}

func TestPanicRecoveredAndRetried(t *testing.T) {
	calls := 0
	tool := func(_ context.Context, i int) ([]float64, error) {
		calls++
		if calls == 1 {
			panic("tool adapter exploded")
		}
		return []float64{9}, nil
	}
	log := &FailureLog{}
	e, err := New(context.Background(), tool, Options{MaxRetries: 1, NumObjectives: 1, Sleep: func(time.Duration) {}, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	y, err := e.Evaluate(2)
	if err != nil {
		t.Fatalf("Evaluate after panic: %v", err)
	}
	if y[0] != 9 {
		t.Errorf("y = %v", y)
	}
	evs := log.Events()
	if len(evs) != 1 || evs[0].Kind != KindPanic {
		t.Errorf("events = %+v, want one panic", evs)
	}
}

func TestInvalidVectorRejectedAndRetried(t *testing.T) {
	calls := 0
	tool := func(_ context.Context, i int) ([]float64, error) {
		calls++
		switch calls {
		case 1:
			return []float64{math.NaN(), 1}, nil
		case 2:
			return []float64{1}, nil // wrong length
		case 3:
			return []float64{1, math.Inf(1)}, nil
		}
		return []float64{1, 2}, nil
	}
	log := &FailureLog{}
	e, err := New(context.Background(), tool, Options{MaxRetries: 3, NumObjectives: 2, Sleep: func(time.Duration) {}, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	y, err := e.Evaluate(0)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if y[0] != 1 || y[1] != 2 {
		t.Errorf("y = %v", y)
	}
	for _, ev := range log.Events() {
		if ev.Kind != KindInvalid {
			t.Errorf("event kind = %s, want invalid", ev.Kind)
		}
	}
	if log.Len() != 3 {
		t.Errorf("%d events, want 3", log.Len())
	}
}

func TestContextCancellationStopsEvaluation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tool := func(ctx context.Context, i int) ([]float64, error) {
		cancel() // the run is torn down mid-evaluation
		return nil, ctx.Err()
	}
	e, err := New(ctx, tool, Options{MaxRetries: 5, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Evaluate(0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBackoffGrowsAndRespectsJitterBounds(t *testing.T) {
	tool := func(_ context.Context, i int) ([]float64, error) { return nil, errors.New("x") }
	ns := &noSleep{}
	e, err := New(context.Background(), tool, Options{
		MaxRetries: 4, Backoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond,
		JitterFrac: 0.5, Policy: PolicySkip, Sleep: ns.sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Evaluate(0)
	if len(ns.ds) != 4 {
		t.Fatalf("%d sleeps, want 4", len(ns.ds))
	}
	// Nominal ladder 100, 200, 400, 400(capped) ms, each jittered ±50%.
	nominal := []time.Duration{100, 200, 400, 400}
	for k, d := range ns.ds {
		lo := time.Duration(float64(nominal[k]) * 0.5 * float64(time.Millisecond))
		hi := time.Duration(float64(nominal[k]) * 1.5 * float64(time.Millisecond))
		if d < lo || d > hi {
			t.Errorf("backoff %d = %v outside [%v, %v]", k, d, lo, hi)
		}
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	run := func() []time.Duration {
		tool := func(_ context.Context, i int) ([]float64, error) { return nil, errors.New("x") }
		ns := &noSleep{}
		e, err := New(context.Background(), tool, Options{MaxRetries: 3, Seed: 42, Policy: PolicySkip, Sleep: ns.sleep})
		if err != nil {
			t.Fatal(err)
		}
		e.Evaluate(0)
		return ns.ds
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sleep counts differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Errorf("backoff %d differs across identical seeds: %v vs %v", k, a[k], b[k])
		}
	}
}

func TestWrapPlainEvaluator(t *testing.T) {
	calls := 0
	var eval core.Evaluator = func(i int) ([]float64, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("flake")
		}
		return []float64{float64(i)}, nil
	}
	e, err := Wrap(context.Background(), eval, Options{MaxRetries: 1, NumObjectives: 1, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	// The method value satisfies core.Evaluator.
	var ce core.Evaluator = e.Evaluate
	y, err := ce(6)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 {
		t.Errorf("y = %v", y)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(context.Background(), nil, Options{}); err == nil {
		t.Error("nil tool accepted")
	}
	if _, err := Wrap(context.Background(), nil, Options{}); err == nil {
		t.Error("nil evaluator accepted")
	}
}

func TestFailureLogConcurrentAndNilSafe(t *testing.T) {
	var nilLog *FailureLog
	nilLog.add(Event{}) // must not panic
	if nilLog.Len() != 0 || nilLog.Terminal() != 0 || nilLog.Events() != nil {
		t.Error("nil log not inert")
	}
	if nilLog.Summary() != "no failures" {
		t.Errorf("nil summary = %q", nilLog.Summary())
	}
	log := &FailureLog{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				log.add(Event{Index: w, Attempt: k, Kind: KindError, Terminal: k == 99})
			}
		}(w)
	}
	wg.Wait()
	if log.Len() != 800 {
		t.Errorf("len = %d, want 800", log.Len())
	}
	if log.Terminal() != 8 {
		t.Errorf("terminal = %d, want 8", log.Terminal())
	}
}

func TestSummaryFormat(t *testing.T) {
	log := &FailureLog{}
	log.add(Event{Kind: KindError})
	log.add(Event{Kind: KindTimeout})
	log.add(Event{Kind: KindTimeout, Terminal: true})
	want := "3 failures (error:1 timeout:2), 1 terminal"
	if got := log.Summary(); got != want {
		t.Errorf("Summary() = %q, want %q", got, want)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, p := range map[string]FailurePolicy{"retry": PolicyRetry, "skip": PolicySkip, "abort": PolicyAbort} {
		got, err := ParsePolicy(s)
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestValidateVector(t *testing.T) {
	if err := ValidateVector([]float64{1, 2}, 2); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	if err := ValidateVector([]float64{1}, 2); err == nil {
		t.Error("short vector accepted")
	}
	if err := ValidateVector([]float64{1, math.NaN()}, 0); err == nil {
		t.Error("NaN accepted")
	}
	if err := ValidateVector([]float64{math.Inf(-1)}, 0); err == nil {
		t.Error("-Inf accepted")
	}
}

func TestEvaluateErrorMentionsAttempts(t *testing.T) {
	tool := func(_ context.Context, i int) ([]float64, error) { return nil, errors.New("x") }
	e, _ := New(context.Background(), tool, Options{MaxRetries: 2, Policy: PolicySkip, Sleep: func(time.Duration) {}})
	_, err := e.Evaluate(11)
	want := fmt.Sprintf("evaluation %d failed after %d attempts", 11, 3)
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("err = %v, want to contain %q", err, want)
	}
}
