//go:build unix

package robust

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory lock on path's sidecar lock file
// (path + ".lock") and returns the release function. flock, not an
// O_EXCL lock file: the kernel drops an flock when the holder dies, so a
// SIGKILLed coordinator can never wedge the campaign the way a leftover
// lock file would. The lock serialises the fence check against the rename
// that publishes a competing coordinator's adoption — without it a deposed
// primary could pass the generation check and then overwrite the new
// owner's state in the window before its own rename.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path+".lock", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
