package robust

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ppatuner/internal/clock"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes evaluations through and counts consecutive
	// failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses evaluations: callers pause (or park, see
	// BreakerOptions.Park) instead of burning per-candidate retry budgets
	// against infrastructure that is down for everyone.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe evaluation; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ErrBreakerOpen reports that the breaker refused an evaluation while open
// (Park mode). It is a scheduling signal, not a tool failure: campaign
// schedulers detect it with errors.Is, park the unit, and requeue it after
// recovery. It never wraps core.ErrSkipCandidate, so a parked unit is never
// mistaken for a failed candidate.
var ErrBreakerOpen = errors.New("robust: circuit breaker open")

// ErrOutageDeadline reports that one outage episode outlived
// BreakerOptions.MaxOutage — the bound that keeps "pause and wait" from
// meaning "hang forever".
var ErrOutageDeadline = errors.New("robust: outage exceeded the max-outage deadline")

// IsOutage reports whether err is marked as a correlated infrastructure
// outage — an error in whose chain some error implements Outage() bool
// returning true (chaos.ErrOutage does; real licence-server adapters can
// mark their own errors the same way without importing anything).
func IsOutage(err error) bool {
	var o interface{ Outage() bool }
	return errors.As(err, &o) && o.Outage()
}

// BreakerOptions configures a Breaker.
type BreakerOptions struct {
	// Threshold is how many consecutive transient failures (across all
	// candidates) trip the breaker (default 5). Outage-marked failures
	// (IsOutage) trip it immediately: the tool said "down", there is
	// nothing to vote on.
	Threshold int
	// RetryAfter is the open dwell before a half-open probe is admitted
	// (default 1s). It doubles per consecutive failed probe up to
	// 8×RetryAfter, then holds.
	RetryAfter time.Duration
	// MaxOutage bounds one outage episode, measured from the trip that
	// opened the breaker until it closes again (default 5m). Past it,
	// Acquire and AwaitRecovery fail with ErrOutageDeadline.
	MaxOutage time.Duration
	// Park, when true, makes Acquire return ErrBreakerOpen immediately
	// while the breaker refuses evaluations, instead of pausing the caller.
	// Campaign schedulers use it to park work units and keep their workers.
	Park bool
	// Probe, when non-nil, is a cheap health check (licence ping) that
	// AwaitRecovery uses to drive open→half-open→closed without spending a
	// real evaluation. Without it, the next admitted evaluation is the
	// probe.
	Probe func(ctx context.Context) error
	// Clock supplies dwell timing; defaults to the wall clock. Tests
	// install a clock.Fake so outage episodes resolve in microseconds.
	Clock clock.Clock
	// Log, when non-nil, receives every state transition as a structured
	// KindBreaker event.
	Log *FailureLog
}

func (o *BreakerOptions) setDefaults() {
	if o.Threshold <= 0 {
		o.Threshold = 5
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxOutage <= 0 {
		o.MaxOutage = 5 * time.Minute
	}
	if o.Clock == nil {
		o.Clock = clock.Real()
	}
}

// Breaker is a circuit breaker shared by every evaluation of a run: it
// converts per-call failures into a run-level "the infrastructure is down"
// signal, so a correlated outage pauses (or parks) evaluations instead of
// exhausting every candidate's retry budget and poisoning the run with
// spurious Failed marks. State transitions are recorded in the FailureLog;
// results are never touched — an outage stretches wall-clock time, never
// numbers.
type Breaker struct {
	opt BreakerOptions

	mu           sync.Mutex
	state        BreakerState
	consec       int       // consecutive transient failures while closed
	failedProbes int       // consecutive failed probes this episode
	episodeStart time.Time // first trip of the current outage episode
	openedAt     time.Time // latest (re)open
	probing      bool      // the half-open slot is taken
	trips        int       // closed→open transitions, cumulative
}

// NewBreaker builds a circuit breaker.
func NewBreaker(opt BreakerOptions) *Breaker {
	opt.setDefaults()
	return &Breaker{opt: opt}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has opened from closed.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// transitionLocked moves the state machine and records the event; callers
// hold b.mu.
func (b *Breaker) transitionLocked(to BreakerState, reason string) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	b.opt.Log.add(Event{
		Index:   -1,
		Attempt: -1,
		Kind:    KindBreaker,
		Err:     fmt.Sprintf("breaker %s -> %s: %s", from, to, reason),
	})
}

// tripLocked opens the breaker from closed; callers hold b.mu.
func (b *Breaker) tripLocked(now time.Time, reason string) {
	b.trips++
	b.openedAt = now
	b.episodeStart = now
	b.failedProbes = 0
	b.transitionLocked(BreakerOpen, reason)
}

// dwellLocked is the open dwell before the next probe: RetryAfter doubled
// per failed probe, capped at 8×. Callers hold b.mu.
func (b *Breaker) dwellLocked() time.Duration {
	d := b.opt.RetryAfter
	for i := 0; i < b.failedProbes && d < 8*b.opt.RetryAfter; i++ {
		d *= 2
	}
	if d > 8*b.opt.RetryAfter {
		d = 8 * b.opt.RetryAfter
	}
	return d
}

// Acquire gates one evaluation attempt. Closed: passes immediately.
// Open: pauses the caller (on the breaker's clock) until a half-open probe
// slot is available, the episode exceeds MaxOutage (ErrOutageDeadline), or
// ctx is done — unless Park is set, in which case it returns ErrBreakerOpen
// at once. A nil return can mean "this attempt is the probe": report the
// attempt's outcome with OnSuccess/OnFailure either way.
func (b *Breaker) Acquire(ctx context.Context) error {
	for {
		b.mu.Lock()
		now := b.opt.Clock.Now()
		switch b.state {
		case BreakerClosed:
			b.mu.Unlock()
			return nil
		case BreakerHalfOpen:
			if !b.probing {
				b.probing = true
				b.mu.Unlock()
				return nil
			}
		case BreakerOpen:
			if now.Sub(b.episodeStart) >= b.opt.MaxOutage {
				b.mu.Unlock()
				return fmt.Errorf("%w (down for %v)", ErrOutageDeadline, b.opt.MaxOutage)
			}
			if now.Sub(b.openedAt) >= b.dwellLocked() {
				b.transitionLocked(BreakerHalfOpen, "retry dwell elapsed; admitting one probe")
				b.probing = true
				b.mu.Unlock()
				return nil
			}
		}
		// Waiting: either open inside the dwell, or half-open with the
		// probe slot taken. Sleep the shorter of "time to next decision"
		// and "time to the episode deadline", bounded below so a coarse
		// clock cannot spin.
		wait := b.opt.RetryAfter / 4
		if b.state == BreakerOpen {
			wait = b.dwellLocked() - now.Sub(b.openedAt)
		}
		if remain := b.opt.MaxOutage - now.Sub(b.episodeStart); wait > remain {
			wait = remain
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		park := b.opt.Park
		b.mu.Unlock()
		if park {
			return ErrBreakerOpen
		}
		if err := b.opt.Clock.Sleep(ctx, wait); err != nil {
			return err
		}
	}
}

// OnSuccess reports a successful tool invocation. A success while half-open
// (or open — a straggler admitted before the trip) proves the
// infrastructure is back and closes the breaker.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	if b.state != BreakerClosed {
		b.probing = false
		b.failedProbes = 0
		b.episodeStart = time.Time{}
		b.transitionLocked(BreakerClosed, "evaluation succeeded; infrastructure recovered")
	}
}

// OnFailure reports a failed tool invocation. While closed, outage-marked
// errors trip immediately and other transients count toward Threshold.
// While half-open, the probe's failure re-opens the breaker (the episode —
// and its MaxOutage deadline — keeps running).
func (b *Breaker) OnFailure(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.opt.Clock.Now()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.failedProbes++
		b.openedAt = now
		b.transitionLocked(BreakerOpen, fmt.Sprintf("probe failed (%d this episode): %v", b.failedProbes, err))
	case BreakerClosed:
		if IsOutage(err) {
			b.tripLocked(now, fmt.Sprintf("outage-marked failure: %v", err))
			return
		}
		b.consec++
		if b.consec >= b.opt.Threshold {
			b.tripLocked(now, fmt.Sprintf("%d consecutive transient failures (threshold %d): %v", b.consec, b.opt.Threshold, err))
		}
	case BreakerOpen:
		// A straggler that was in flight before the trip; nothing new.
	}
}

// AwaitRecovery blocks until the breaker closes, pacing itself on the
// breaker's clock. With a Probe configured it drives the state machine
// itself (dwell → probe → close or re-open and dwell longer); without one
// it returns as soon as a half-open slot is available, leaving the next
// evaluation to be the probe. It fails with ErrOutageDeadline when the
// episode outlives MaxOutage, and with ctx.Err() on cancellation. Campaign
// schedulers call it between parking a unit and requeueing it.
func (b *Breaker) AwaitRecovery(ctx context.Context) error {
	for {
		b.mu.Lock()
		now := b.opt.Clock.Now()
		state := b.state
		if state == BreakerClosed {
			b.mu.Unlock()
			return nil
		}
		if now.Sub(b.episodeStart) >= b.opt.MaxOutage {
			b.mu.Unlock()
			return fmt.Errorf("%w (down for %v)", ErrOutageDeadline, b.opt.MaxOutage)
		}
		probeReady := state == BreakerOpen && now.Sub(b.openedAt) >= b.dwellLocked()
		if state == BreakerHalfOpen && !b.probing {
			// A slot is already free for the next evaluation.
			b.mu.Unlock()
			return nil
		}
		if probeReady {
			if b.opt.Probe == nil {
				b.transitionLocked(BreakerHalfOpen, "retry dwell elapsed; next evaluation probes")
				b.mu.Unlock()
				return nil
			}
			b.transitionLocked(BreakerHalfOpen, "retry dwell elapsed; health probe running")
			b.probing = true
			b.mu.Unlock()
			err := b.opt.Probe(ctx)
			if err == nil {
				b.OnSuccess()
				return nil
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			b.OnFailure(err)
			continue
		}
		wait := b.opt.RetryAfter / 4
		if state == BreakerOpen {
			wait = b.dwellLocked() - now.Sub(b.openedAt)
		}
		if remain := b.opt.MaxOutage - now.Sub(b.episodeStart); wait > remain {
			wait = remain
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		b.mu.Unlock()
		if err := b.opt.Clock.Sleep(ctx, wait); err != nil {
			return err
		}
	}
}
