package robust

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ppatuner/internal/clock"
)

// fakeOutage mimics a tool adapter's outage-marked error without importing
// the chaos package.
type fakeOutage struct{}

func (fakeOutage) Error() string { return "licence server down" }
func (fakeOutage) Outage() bool  { return true }

func TestIsOutage(t *testing.T) {
	if !IsOutage(fakeOutage{}) {
		t.Error("bare outage error not recognised")
	}
	if !IsOutage(fmt.Errorf("attempt 3: %w", fakeOutage{})) {
		t.Error("wrapped outage error not recognised")
	}
	if IsOutage(errors.New("plain failure")) {
		t.Error("plain error misclassified as outage")
	}
	if IsOutage(nil) {
		t.Error("nil misclassified as outage")
	}
}

func TestParsePolicyCaseInsensitive(t *testing.T) {
	for spelling, want := range map[string]FailurePolicy{
		"retry": PolicyRetry, "Retry": PolicyRetry, "RETRY": PolicyRetry,
		"Skip": PolicySkip, " SKIP ": PolicySkip,
		"Abort": PolicyAbort,
	} {
		got, err := ParsePolicy(spelling)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", spelling, got, err, want)
		}
	}
	if _, err := ParsePolicy("sikp"); err == nil {
		t.Error("typo accepted")
	}
}

// The full happy-path cycle: closed -> open (threshold) -> half-open
// (dwell) -> closed (probe success), with every transition in the log.
func TestBreakerClosedOpenHalfOpenClosed(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	log := &FailureLog{}
	b := NewBreaker(BreakerOptions{Threshold: 3, RetryAfter: time.Second, MaxOutage: time.Minute, Clock: fc, Log: log})

	boom := errors.New("transient")
	for k := 0; k < 2; k++ {
		b.OnFailure(boom)
		if b.State() != BreakerClosed {
			t.Fatalf("tripped after %d failures, threshold is 3", k+1)
		}
	}
	b.OnFailure(boom)
	if b.State() != BreakerOpen {
		t.Fatal("threshold reached but breaker still closed")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}

	// Acquire pauses through the dwell (the fake clock jumps), then admits
	// this caller as the half-open probe.
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after dwell: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after admitted probe = %v, want half-open", b.State())
	}
	if fc.Sleeps() == 0 {
		t.Error("Acquire never slept on the clock while open")
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}

	sum := log.Summary()
	if log.BreakerTransitions() != 3 { // open, half-open, closed
		t.Errorf("%d transitions logged, want 3 (%s)", log.BreakerTransitions(), sum)
	}
	if !strings.Contains(sum, "breaker transitions") {
		t.Errorf("summary %q does not tally breaker transitions", sum)
	}
}

// A failed probe re-opens the breaker and the dwell grows; the episode
// deadline keeps running across re-opens.
func TestBreakerProbeFailureReopens(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerOptions{Threshold: 1, RetryAfter: time.Second, MaxOutage: time.Hour, Clock: fc})

	b.OnFailure(fakeOutage{}) // outage-marked: trips immediately
	if b.State() != BreakerOpen {
		t.Fatal("outage failure did not trip the breaker")
	}
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("probe admission: %v", err)
	}
	b.OnFailure(fakeOutage{})
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Trips() != 1 {
		t.Errorf("a re-open counted as a fresh trip (trips=%d)", b.Trips())
	}
	// Second probe after a longer dwell succeeds and closes.
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("second probe admission: %v", err)
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
}

// An episode that outlives MaxOutage aborts with ErrOutageDeadline rather
// than pausing forever.
func TestBreakerMaxOutageAborts(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerOptions{Threshold: 1, RetryAfter: time.Second, MaxOutage: 10 * time.Second, Clock: fc})
	b.OnFailure(fakeOutage{})
	deadline := 0
	for k := 0; k < 100; k++ {
		err := b.Acquire(context.Background())
		if errors.Is(err, ErrOutageDeadline) {
			deadline = k
			break
		}
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
		b.OnFailure(fakeOutage{}) // every probe fails: the outage never lifts
	}
	if deadline == 0 {
		t.Fatal("Acquire never hit ErrOutageDeadline against a permanent outage")
	}
	if also := b.AwaitRecovery(context.Background()); !errors.Is(also, ErrOutageDeadline) {
		t.Fatalf("AwaitRecovery = %v, want ErrOutageDeadline", also)
	}
}

// Park mode refuses instead of pausing: the scheduler keeps its worker.
func TestBreakerParkModeRefusesImmediately(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerOptions{Threshold: 1, RetryAfter: time.Minute, MaxOutage: time.Hour, Park: true, Clock: fc})
	b.OnFailure(fakeOutage{})
	if err := b.Acquire(context.Background()); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Acquire while open (park mode) = %v, want ErrBreakerOpen", err)
	}
	if fc.Sleeps() != 0 {
		t.Error("park mode slept instead of refusing")
	}
	// After recovery (no Probe configured), AwaitRecovery leaves the
	// half-open slot to the next evaluation.
	if err := b.AwaitRecovery(context.Background()); err != nil {
		t.Fatalf("AwaitRecovery: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after AwaitRecovery = %v, want half-open", b.State())
	}
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatalf("probe admission after recovery: %v", err)
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

// AwaitRecovery with a health probe drives the whole cycle itself.
func TestBreakerAwaitRecoveryWithHealthProbe(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	probes := 0
	b := NewBreaker(BreakerOptions{
		Threshold:  1,
		RetryAfter: time.Second,
		MaxOutage:  time.Hour,
		Clock:      fc,
		Probe: func(context.Context) error {
			probes++
			if probes < 3 {
				return fakeOutage{} // still down for the first two pings
			}
			return nil
		},
	})
	b.OnFailure(fakeOutage{})
	if err := b.AwaitRecovery(context.Background()); err != nil {
		t.Fatalf("AwaitRecovery: %v", err)
	}
	if probes != 3 {
		t.Errorf("health probe ran %d times, want 3", probes)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

// The evaluator integration: outage failures pause on the breaker and never
// consume the candidate's retry budget, so a long outage cannot turn into a
// spurious Failed mark under PolicySkip.
func TestEvaluatorOutageDoesNotConsumeRetryBudget(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	log := &FailureLog{}
	b := NewBreaker(BreakerOptions{Threshold: 1, RetryAfter: time.Second, MaxOutage: time.Hour, Clock: fc, Log: log})
	calls := 0
	// The tool is down for the first 7 calls — more than 1+MaxRetries —
	// then recovers.
	tool := func(_ context.Context, i int) ([]float64, error) {
		calls++
		if calls <= 7 {
			return nil, fmt.Errorf("call %d: %w", calls, error(fakeOutage{}))
		}
		return []float64{1, 2}, nil
	}
	e, err := New(context.Background(), tool, Options{
		MaxRetries:    2,
		Policy:        PolicySkip,
		NumObjectives: 2,
		Clock:         fc,
		Sleep:         func(time.Duration) {},
		Breaker:       b,
		Log:           log,
	})
	if err != nil {
		t.Fatal(err)
	}
	y, err := e.Evaluate(0)
	if err != nil {
		t.Fatalf("evaluation failed through the outage: %v", err)
	}
	if y[0] != 1 || y[1] != 2 {
		t.Fatalf("y = %v", y)
	}
	if calls != 8 {
		t.Errorf("tool saw %d calls, want 8 (7 outage + 1 success)", calls)
	}
	if got := log.Outages(); got != 7 {
		t.Errorf("log tallied %d outages, want 7", got)
	}
	if log.Terminal() != 0 {
		t.Errorf("outage produced %d terminal events; the budget must be untouched", log.Terminal())
	}
	if b.State() != BreakerClosed {
		t.Fatalf("breaker = %v after recovery, want closed", b.State())
	}
}

// Without a breaker, outage errors degrade gracefully to ordinary transient
// failures (legacy behaviour): the budget applies.
func TestEvaluatorOutageWithoutBreakerConsumesBudget(t *testing.T) {
	calls := 0
	tool := func(_ context.Context, i int) ([]float64, error) {
		calls++
		return nil, fakeOutage{}
	}
	e, err := New(context.Background(), tool, Options{
		MaxRetries: 2,
		Policy:     PolicySkip,
		Sleep:      func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(4); err == nil {
		t.Fatal("permanent outage with no breaker must exhaust the budget")
	}
	if calls != 3 {
		t.Errorf("tool saw %d calls, want 3 (1 + MaxRetries)", calls)
	}
}

// Park mode propagates ErrBreakerOpen out of Evaluate without wrapping
// ErrSkipCandidate, so schedulers can tell "parked" from "failed".
func TestEvaluatorParkPropagatesBreakerOpen(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerOptions{Threshold: 1, RetryAfter: time.Minute, MaxOutage: time.Hour, Park: true, Clock: fc})
	e, err := New(context.Background(), func(_ context.Context, i int) ([]float64, error) {
		return nil, fakeOutage{}
	}, Options{MaxRetries: 5, Clock: fc, Sleep: func(time.Duration) {}, Breaker: b})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Evaluate(1)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen in the chain", err)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestBreakerDwellResetsAfterFullRecovery(t *testing.T) {
	// Regression guard: a recovery (OnSuccess while half-open) must reset the
	// doubling dwell, so a *later* trip starts probing after the base
	// RetryAfter again — not after whatever multiple the previous episode's
	// failed probes had doubled it to.
	fc := clock.NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerOptions{
		Threshold:  1,
		RetryAfter: time.Second,
		MaxOutage:  time.Hour,
		Clock:      fc,
	})

	// Episode one: trip, then fail three probes so the dwell doubles to 8s.
	b.OnFailure(fmt.Errorf("wrapped: %w", fakeOutage{}))
	for i := 0; i < 3; i++ {
		fc.Advance(10 * time.Second) // past any dwell
		if err := b.Acquire(context.Background()); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		b.OnFailure(fakeOutage{})
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probes = %v, want open", b.State())
	}

	// Full recovery: the next probe succeeds and the breaker closes.
	fc.Advance(10 * time.Second)
	if err := b.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state after recovery = %v, want closed", b.State())
	}

	// Episode two: trip again. Base dwell (1s) must be enough to admit the
	// probe — without the reset, dwellLocked would still report 8s and
	// AwaitRecovery would have to sleep.
	b.OnFailure(fakeOutage{})
	fc.Advance(time.Second)
	sleepsBefore := fc.Sleeps()
	if err := b.AwaitRecovery(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := fc.Sleeps(); got != sleepsBefore {
		t.Fatalf("AwaitRecovery slept %d times after base dwell; dwell was not reset by recovery", got-sleepsBefore)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after base dwell = %v, want half-open", b.State())
	}
}
