package robust

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestJobManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := JobManifestPath(dir)
	m := NewJobManifest(path)

	id, err := m.NextID()
	if err != nil {
		t.Fatal(err)
	}
	if id != "j1" {
		t.Fatalf("first ID = %q, want j1", id)
	}
	rec := JobRecord{
		ID: id, Client: "alice", Status: "queued",
		Spec: json.RawMessage(`{"scenario":"table2"}`), Checkpoint: "job-j1.ckpt.json",
	}
	if err := m.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := m.SetStatus(id, "running", ""); err != nil {
		t.Fatal(err)
	}
	if err := m.SetGolden(id, map[string][][]float64{"Area-Delay": {{1, 2}, {3, 4}}}); err != nil {
		t.Fatal(err)
	}
	unit := JobUnit{Space: "Area-Delay", Method: "PPATuner", Seed: 1, HV: 0.5, ADRS: 0.1, Runs: 40, Front: [][]float64{{1, 2}}}
	if err := m.SetUnit(id, "k|Area-Delay|PPATuner|seed=1", unit); err != nil {
		t.Fatal(err)
	}

	// A fresh load (the restart path) must see everything, including the
	// ID high-water mark.
	m2, err := LoadJobManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m2.Get(id)
	if !ok {
		t.Fatalf("job %s missing after reload", id)
	}
	if got.Status != "running" || got.Client != "alice" {
		t.Errorf("reloaded record = %+v", got)
	}
	// MarshalIndent may reflow the raw spec's whitespace; the JSON value
	// must survive untouched.
	var spec struct {
		Scenario string `json:"scenario"`
	}
	if err := json.Unmarshal(got.Spec, &spec); err != nil || spec.Scenario != "table2" {
		t.Errorf("reloaded spec = %q (%v)", got.Spec, err)
	}
	u := got.Units["k|Area-Delay|PPATuner|seed=1"]
	if u.HV != 0.5 || u.ADRS != 0.1 || u.Runs != 40 || len(u.Front) != 1 {
		t.Errorf("reloaded unit = %+v", u)
	}
	if len(got.Golden["Area-Delay"]) != 2 {
		t.Errorf("reloaded golden = %+v", got.Golden)
	}
	id2, err := m2.NextID()
	if err != nil {
		t.Fatal(err)
	}
	if id2 != "j2" {
		t.Fatalf("ID after reload = %q, want j2 (high-water mark must persist)", id2)
	}
}

func TestJobManifestOrdering(t *testing.T) {
	m := NewJobManifest("")
	for _, id := range []string{"j10", "j2", "j1"} {
		if err := m.Put(JobRecord{ID: id, Status: "queued", Spec: json.RawMessage(`{}`)}); err != nil {
			t.Fatal(err)
		}
	}
	jobs := m.Jobs()
	want := []string{"j1", "j2", "j10"}
	for i, rec := range jobs {
		if rec.ID != want[i] {
			t.Fatalf("Jobs()[%d] = %s, want %s (numeric ID order)", i, rec.ID, want[i])
		}
	}
}

func TestJobManifestRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.json")
	if err := os.WriteFile(path, []byte(`{"version":3,"kind":"campaign"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJobManifest(path); err == nil {
		t.Fatal("loading a campaign checkpoint as a job manifest must fail")
	}
}

func TestJobManifestMissingFileIsEmpty(t *testing.T) {
	m, err := LoadJobManifest(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(m.Jobs()); n != 0 {
		t.Fatalf("fresh manifest has %d jobs", n)
	}
	if err := m.SetStatus("j1", "running", ""); err == nil {
		t.Fatal("SetStatus on an unknown job must fail")
	}
}

func TestJobManifestDelete(t *testing.T) {
	m := NewJobManifest(JobManifestPath(t.TempDir()))
	if err := m.Put(JobRecord{ID: "j1", Status: "queued", Spec: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("j1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get("j1"); ok {
		t.Fatal("job survived Delete")
	}
	if err := m.Delete("j1"); err != nil {
		t.Fatal("deleting an absent job must be a no-op, got error")
	}
}

// TestJobManifestDeterministicBytes is the byte-identity contract the
// serve-proof CI job builds on: the same logical state written through any
// interleaving of mutations produces identical bytes.
func TestJobManifestDeterministicBytes(t *testing.T) {
	write := func(dir string, order []string) []byte {
		t.Helper()
		m := NewJobManifest(JobManifestPath(dir))
		if _, err := m.NextID(); err != nil {
			t.Fatal(err)
		}
		if _, err := m.NextID(); err != nil {
			t.Fatal(err)
		}
		for _, id := range order {
			if err := m.Put(JobRecord{ID: id, Client: "c", Status: "done", Spec: json.RawMessage(`{}`)}); err != nil {
				t.Fatal(err)
			}
		}
		data, err := os.ReadFile(JobManifestPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := write(t.TempDir(), []string{"j1", "j2"})
	b := write(t.TempDir(), []string{"j2", "j1"})
	if string(a) != string(b) {
		t.Fatalf("manifest bytes depend on write order:\n%s\nvs\n%s", a, b)
	}
}
