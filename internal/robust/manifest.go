package robust

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// JobUnit is the persisted outcome of one completed unit of a served tuning
// job: the scored metrics plus the learned Pareto front in wire form. It
// lives in the job manifest (not the campaign checkpoint) because it
// carries presentation state — the front points the HTTP front endpoint
// serves — while the checkpoint carries only resume state.
type JobUnit struct {
	Space  string      `json:"space"`
	Method string      `json:"method"`
	Seed   int64       `json:"seed"`
	HV     float64     `json:"hv"`
	ADRS   float64     `json:"adrs"`
	Runs   int         `json:"runs"`
	Front  [][]float64 `json:"front,omitempty"`
}

// JobRecord is one tuning job's durable state in the server-side manifest:
// identity, owner, lifecycle status, the submitted spec verbatim (opaque to
// this package — the serving layer owns its schema and locks it separately),
// the campaign checkpoint file the job resumes from, and per-unit results
// as they complete. Everything except FinishedAtUnix is derived
// deterministically from the spec, so a manifest rebuilt through any
// kill/restart schedule is byte-identical to one written by an
// uninterrupted run up to that one wall-clock stamp — which exists only to
// age terminal jobs out under a retention window.
type JobRecord struct {
	ID         string                 `json:"id"`
	Client     string                 `json:"client"`
	Status     string                 `json:"status"`
	Spec       json.RawMessage        `json:"spec"`
	Checkpoint string                 `json:"checkpoint,omitempty"`
	Error      string                 `json:"error,omitempty"`
	Golden     map[string][][]float64 `json:"golden,omitempty"`
	Units      map[string]JobUnit     `json:"units,omitempty"`
	// FinishedAtUnix is when the job reached a terminal status (Unix
	// seconds; zero for live jobs and for records written before retention
	// existed — those never age out).
	FinishedAtUnix int64 `json:"finished_at_unix,omitempty"`
}

// jobsFile is the on-disk schema of the job manifest. Kind distinguishes it
// from the checkpoint files sharing the state directory.
type jobsFile struct {
	Version int                  `json:"version"`
	Kind    string               `json:"kind"`
	NextID  int                  `json:"next_id"`
	Jobs    map[string]JobRecord `json:"jobs,omitempty"`
}

const (
	jobsKind            = "jobs"
	jobManifestVersion  = 1
	jobManifestFileName = "jobs.json"
)

// JobManifestPath returns the manifest file path inside a server state
// directory — the single spelling cmd/ppaserved and tests share.
func JobManifestPath(stateDir string) string {
	return filepath.Join(stateDir, jobManifestFileName)
}

// JobManifest is the crash-safe store of a tuning server's job table. It
// sits alongside the per-job CampaignCheckpoint files: the manifest answers
// "what jobs exist, who owns them, where did they get to", the checkpoints
// answer "how do I resume this one bit-identically". Every mutation
// persists via write-to-temp + atomic rename; all methods are safe for
// concurrent use.
type JobManifest struct {
	mu   sync.Mutex
	path string
	next int
	jobs map[string]JobRecord
}

// NewJobManifest builds an empty manifest persisting to path. An empty path
// keeps it in memory only (tests).
func NewJobManifest(path string) *JobManifest {
	return &JobManifest{path: path, next: 1, jobs: map[string]JobRecord{}}
}

// LoadJobManifest restores a manifest from path. A missing file yields an
// empty manifest, so the same call serves first boot and restart. A file of
// a different kind (a checkpoint sharing the directory) is rejected.
func LoadJobManifest(path string) (*JobManifest, error) {
	m := NewJobManifest(path)
	if path == "" {
		return m, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return nil, fmt.Errorf("robust: read job manifest: %w", err)
	}
	var f jobsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("robust: parse job manifest %s: %w", path, err)
	}
	if f.Kind != jobsKind {
		return nil, fmt.Errorf("robust: %s is not a job manifest (kind %q)", path, f.Kind)
	}
	if f.Version != jobManifestVersion {
		return nil, fmt.Errorf("robust: job manifest %s has unsupported version %d", path, f.Version)
	}
	if f.NextID > 0 {
		m.next = f.NextID
	}
	for id, r := range f.Jobs {
		m.jobs[id] = r
	}
	return m, nil
}

// NextID allocates the next job ID ("j1", "j2", ...) and persists the
// high-water mark, so IDs stay unique across restarts even when the job
// they were minted for was never recorded.
func (m *JobManifest) NextID() (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := "j" + strconv.Itoa(m.next)
	m.next++
	if err := m.saveLocked(); err != nil {
		return "", err
	}
	return id, nil
}

// Put records (or replaces) a job and persists.
func (m *JobManifest) Put(r JobRecord) error {
	if r.ID == "" {
		return fmt.Errorf("robust: job record has no ID")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[r.ID] = cloneJob(r)
	return m.saveLocked()
}

// Get returns a copy of one job record.
func (m *JobManifest) Get(id string) (JobRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.jobs[id]
	if !ok {
		return JobRecord{}, false
	}
	return cloneJob(r), true
}

// Jobs returns copies of every record, ordered by numeric job ID (j2 before
// j10), so listings and boot-time requeues are deterministic.
func (m *JobManifest) Jobs() []JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return jobIDLess(ids[a], ids[b]) })
	out := make([]JobRecord, 0, len(ids))
	for _, id := range ids {
		out = append(out, cloneJob(m.jobs[id]))
	}
	return out
}

// SetStatus updates a job's lifecycle status (and its error annotation —
// empty clears it) and persists.
func (m *JobManifest) SetStatus(id, status, errMsg string) error {
	return m.SetStatusAt(id, status, errMsg, 0)
}

// SetStatusAt is SetStatus with an explicit finished-at stamp: pass the
// current Unix time when moving a job to a terminal status (retention ages
// it from there), zero for live statuses (it clears any previous stamp, so
// a requeued job never inherits a stale one).
func (m *JobManifest) SetStatusAt(id, status, errMsg string, finishedAtUnix int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("robust: job %q not in manifest", id)
	}
	r.Status = status
	r.Error = errMsg
	r.FinishedAtUnix = finishedAtUnix
	m.jobs[id] = r
	return m.saveLocked()
}

// SetGolden records the job's golden fronts (space name → front) and
// persists. Idempotent: the fronts are a pure function of the job spec, so
// a re-run after a crash writes identical bytes.
func (m *JobManifest) SetGolden(id string, golden map[string][][]float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("robust: job %q not in manifest", id)
	}
	r.Golden = cloneFronts(golden)
	m.jobs[id] = r
	return m.saveLocked()
}

// SetUnit records one completed unit under its campaign unit key and
// persists. Like SetGolden, replays after a crash overwrite with identical
// data.
func (m *JobManifest) SetUnit(id, key string, u JobUnit) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("robust: job %q not in manifest", id)
	}
	if r.Units == nil {
		r.Units = map[string]JobUnit{}
	}
	r.Units[key] = u
	m.jobs[id] = r
	return m.saveLocked()
}

// Delete removes a job record entirely (cancellation of a queued job) and
// persists.
func (m *JobManifest) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[id]; !ok {
		return nil
	}
	delete(m.jobs, id)
	return m.saveLocked()
}

// jobIDLess orders "j<N>" IDs numerically, falling back to string order for
// foreign spellings.
func jobIDLess(a, b string) bool {
	na, aok := strconv.Atoi(strings.TrimPrefix(a, "j"))
	nb, bok := strconv.Atoi(strings.TrimPrefix(b, "j"))
	if aok == nil && bok == nil {
		return na < nb
	}
	return a < b
}

func cloneJob(r JobRecord) JobRecord {
	out := r
	out.Spec = append(json.RawMessage(nil), r.Spec...)
	out.Golden = cloneFronts(r.Golden)
	if r.Units != nil {
		out.Units = make(map[string]JobUnit, len(r.Units))
		for k, u := range r.Units {
			out.Units[k] = u
		}
	}
	return out
}

// cloneFronts copies the outer map; the point slices are treated as
// immutable by every consumer.
func cloneFronts(g map[string][][]float64) map[string][][]float64 {
	if g == nil {
		return nil
	}
	out := make(map[string][][]float64, len(g))
	for k, v := range g {
		out[k] = v
	}
	return out
}

// saveLocked persists the manifest; callers hold m.mu. encoding/json sorts
// map keys, so the bytes on disk are deterministic.
func (m *JobManifest) saveLocked() error {
	if m.path == "" {
		return nil
	}
	f := jobsFile{Version: jobManifestVersion, Kind: jobsKind, NextID: m.next}
	if len(m.jobs) > 0 {
		f.Jobs = make(map[string]JobRecord, len(m.jobs))
		for _, id := range sortedKeys(m.jobs) {
			f.Jobs[id] = m.jobs[id]
		}
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("robust: encode job manifest: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(m.path), filepath.Base(m.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("robust: write job manifest: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("robust: write job manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("robust: write job manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), m.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("robust: write job manifest: %w", err)
	}
	return nil
}
