package robust

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ppatuner/internal/core"
)

// ErrFenced reports a checkpoint mutation rejected because a newer
// coordinator generation has adopted the file. A deposed primary that keeps
// writing after a standby takes over sees this error instead of corrupting
// the new owner's state; the only correct reaction is to stop coordinating.
var ErrFenced = errors.New("robust: checkpoint write fenced by a newer coordinator generation")

// CampaignCell is the persisted result of one completed campaign work unit
// (one scenario × objective-space × method × seed run).
type CampaignCell struct {
	HV   float64 `json:"hv"`
	ADRS float64 `json:"adrs"`
	Runs int     `json:"runs"`
}

// Observation is one (pool index, QoR vector) evaluation record — the unit
// of partial-cell progress that distributed workers stream back to the
// coordinator and that grants replay into a resumed unit.
type Observation struct {
	Index int       `json:"index"`
	QoR   []float64 `json:"qor"`
}

// LeaseRecord is the persisted state of one unit's lease: the highest epoch
// ever granted and who held it. Epochs are the zombie-detection currency of
// the distributed scheduler (internal/shard): persisting the high-water mark
// means a restarted coordinator keeps granting strictly increasing epochs,
// so a result computed under a pre-crash lease can never masquerade as
// current.
type LeaseRecord struct {
	Epoch  uint64 `json:"epoch"`
	Holder string `json:"holder,omitempty"`
}

// CampaignCheckpoint is the schema-v3 crash-safe store behind resumable
// table regeneration (internal/eval.Campaign). It persists three layers of
// progress under caller-chosen stable string keys:
//
//   - completed cells: the scored result of a finished unit, so a resumed
//     campaign skips the unit entirely — not a single evaluator call;
//   - partial cells: for units in flight, every paid-for observation plus
//     the serialised RNG-source state the unit started from and the count
//     of fresh evaluations so far. A resumed unit restores the recorded
//     RNG state and replays the observations, reproducing the crashed run
//     bit-for-bit without re-deriving anything from the seed;
//   - lease records (schema v3): for distributed campaigns, each in-flight
//     unit's highest granted lease epoch and holder, so coordinator
//     restarts preserve epoch monotonicity and late results from dead
//     workers stay detectable;
//   - a coordinator generation (schema v4): a fencing token adopted via
//     Adopt by each coordinator run. Once adopted, every mutating save
//     first checks the generation recorded on disk and fails with
//     ErrFenced when a higher one appears — a deposed primary lingering
//     after a standby takeover is rejected rather than applied.
//
// Completion clears a unit's partial state, parked mark and lease record
// alike, and Retire clears the generation once the campaign is done, so a
// finished campaign's file carries no trace of how bumpy the road was —
// which is exactly what makes a distributed, fault-ridden, failed-over
// run's final checkpoint byte-identical to a single-process fault-free one.
//
// Every mutation persists via write-to-temp + atomic rename, so a kill
// mid-write never corrupts the file. All methods are safe for concurrent
// use by parallel campaign workers. Version-2 files (no lease ledger) and
// version-3 files (no generation) load transparently and are migrated to
// v4 on the next save.
type CampaignCheckpoint struct {
	mu       sync.Mutex
	path     string
	cells    map[string]CampaignCell
	partial  map[string]*partialState
	parked   map[string]bool
	leases   map[string]LeaseRecord
	// generation is the fencing token this handle writes under. Zero means
	// the handle never adopted (single-process campaigns, serve jobs) and
	// saves are unfenced, preserving pre-v4 behaviour.
	generation uint64
	replayed   int
	fresh      int
}

// partialState is the in-memory mid-run record of one unit.
type partialState struct {
	order     []int
	values    map[int][]float64
	randState []byte
	iters     int
}

// campaignPartial is the on-disk form of partialState.
type campaignPartial struct {
	Runs      []checkpointRun `json:"runs,omitempty"`
	RandState []byte          `json:"rand_state,omitempty"`
	Iters     int             `json:"iters"`
}

// campaignFile is the on-disk schema. Kind distinguishes campaign files
// from the per-run observation checkpoints sharing the version numbering.
type campaignFile struct {
	Version int                        `json:"version"`
	Kind    string                     `json:"kind"`
	Cells   map[string]CampaignCell    `json:"cells"`
	Partial map[string]campaignPartial `json:"partial,omitempty"`
	// Parked lists units waiting out an infrastructure outage when the file
	// was written (sorted). A kill during the outage leaves them here; a
	// resumed campaign re-runs them like any incomplete unit, replaying
	// their partial observations, so the field is diagnostic — it records
	// *why* the unit is incomplete. Completion clears it, so a finished
	// campaign's file carries no trace of the outage.
	Parked []string `json:"parked,omitempty"`
	// Leases (schema v3) records each in-flight unit's lease high-water
	// mark. Like Parked, completion clears the record.
	Leases map[string]LeaseRecord `json:"leases,omitempty"`
	// Generation (schema v4) is the coordinator fencing token: the highest
	// generation that ever adopted this campaign. Mutating saves from a
	// handle holding a lower generation are rejected with ErrFenced.
	// Retire clears it, so a completed campaign's file omits the field.
	Generation uint64 `json:"generation,omitempty"`
}

const campaignKind = "campaign"

// campaignCheckpointVersion is the schema version written by saveLocked.
// Version 2 (no lease ledger) and version 3 (no coordinator generation)
// load transparently; the per-run Checkpoint keeps its own
// checkpointVersion.
const campaignCheckpointVersion = 4

// campaignCheckpointVersionV3 is the previous campaign schema (lease
// ledger, no generation), still accepted on load.
const campaignCheckpointVersionV3 = 3

// NewCampaignCheckpoint builds an empty campaign checkpoint persisting to
// path. An empty path keeps it in memory only (useful in tests).
func NewCampaignCheckpoint(path string) *CampaignCheckpoint {
	return &CampaignCheckpoint{
		path:    path,
		cells:   map[string]CampaignCell{},
		partial: map[string]*partialState{},
		parked:  map[string]bool{},
		leases:  map[string]LeaseRecord{},
	}
}

// LoadCampaignCheckpoint restores a campaign checkpoint from path. A
// missing file is not an error — it yields an empty checkpoint, so the same
// call serves both a fresh start and a resume. A file holding a per-run
// observation checkpoint (cmd/ppatune's -checkpoint format) is rejected
// with a pointed error rather than silently treated as empty.
func LoadCampaignCheckpoint(path string) (*CampaignCheckpoint, error) {
	c := NewCampaignCheckpoint(path)
	if path == "" {
		return c, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("robust: read campaign checkpoint: %w", err)
	}
	if err := c.restoreLocked(data); err != nil {
		return nil, err
	}
	return c, nil
}

// restoreLocked replaces the in-memory state with the parsed file contents.
// Callers hold c.mu (or own the checkpoint exclusively, as in load).
func (c *CampaignCheckpoint) restoreLocked(data []byte) error {
	var f campaignFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("robust: parse campaign checkpoint %s: %w", c.path, err)
	}
	if f.Kind != campaignKind {
		return fmt.Errorf("robust: %s is not a campaign checkpoint (kind %q); per-run observation checkpoints load with LoadCheckpoint", c.path, f.Kind)
	}
	if f.Version != campaignCheckpointVersion && f.Version != campaignCheckpointVersionV3 && f.Version != checkpointVersion {
		return fmt.Errorf("robust: campaign checkpoint %s has unsupported version %d", c.path, f.Version)
	}
	c.cells = make(map[string]CampaignCell, len(f.Cells))
	c.partial = map[string]*partialState{}
	c.parked = map[string]bool{}
	c.leases = make(map[string]LeaseRecord, len(f.Leases))
	c.generation = f.Generation
	for key, cell := range f.Cells {
		c.cells[key] = cell
	}
	for key, p := range f.Partial {
		ps := &partialState{values: map[int][]float64{}, randState: p.RandState, iters: p.Iters}
		for _, r := range p.Runs {
			if err := ValidateVector(r.QoR, 0); err != nil {
				return fmt.Errorf("robust: campaign checkpoint %s, cell %q, entry %d: %v", c.path, key, r.Index, err)
			}
			if _, dup := ps.values[r.Index]; dup {
				continue
			}
			ps.order = append(ps.order, r.Index)
			ps.values[r.Index] = r.QoR
		}
		c.partial[key] = ps
	}
	for _, key := range f.Parked {
		c.parked[key] = true
	}
	for key, lr := range f.Leases {
		c.leases[key] = lr
	}
	return nil
}

// Adopt claims the checkpoint for a new coordinator run: under the file
// lock it re-reads the state on disk (a standby promoting long after its
// boot-time load must not resurrect a stale view), bumps the persisted
// generation past everything ever recorded, and arms fencing on this
// handle — from here on, every mutating save verifies that no higher
// generation has appeared on disk and fails with ErrFenced if one has.
// It returns the adopted generation. On an in-memory checkpoint Adopt
// only increments the local generation (nothing to fence against).
func (c *CampaignCheckpoint) Adopt() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.path == "" {
		c.generation++
		return c.generation, nil
	}
	unlock, err := lockFile(c.path)
	if err != nil {
		return 0, fmt.Errorf("robust: adopt campaign checkpoint: %w", err)
	}
	defer unlock()
	data, err := os.ReadFile(c.path)
	switch {
	case os.IsNotExist(err):
		// First adoption of a fresh campaign: nothing on disk to merge.
	case err != nil:
		return 0, fmt.Errorf("robust: adopt campaign checkpoint: %w", err)
	default:
		if err := c.restoreLocked(data); err != nil {
			return 0, err
		}
	}
	c.generation++
	if err := c.writeLocked(); err != nil {
		return 0, err
	}
	return c.generation, nil
}

// Generation returns the fencing token this handle writes under (zero
// until Adopt).
func (c *CampaignCheckpoint) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.generation
}

// Retire releases an adopted generation once the campaign is complete: the
// file is rewritten without the generation field, so a finished campaign's
// checkpoint is byte-identical to one produced by a coordinator that never
// needed fencing. Retiring while deposed fails with ErrFenced like any
// other write. A never-adopted handle retires as a no-op.
func (c *CampaignCheckpoint) Retire() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.generation == 0 {
		return nil
	}
	if c.path == "" {
		c.generation = 0
		return nil
	}
	unlock, err := lockFile(c.path)
	if err != nil {
		return fmt.Errorf("robust: retire campaign checkpoint: %w", err)
	}
	defer unlock()
	if err := c.checkFence(); err != nil {
		return err
	}
	c.generation = 0
	return c.writeLocked()
}

// diskGeneration reads the generation currently recorded on disk (zero for
// a missing file). Callers hold the file lock.
func (c *CampaignCheckpoint) diskGeneration() (uint64, error) {
	data, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("robust: read campaign checkpoint generation: %w", err)
	}
	var f struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("robust: parse campaign checkpoint generation: %w", err)
	}
	return f.Generation, nil
}

// checkFence fails with ErrFenced when the generation on disk has moved
// past this handle's. Callers hold c.mu and the file lock.
func (c *CampaignCheckpoint) checkFence() error {
	disk, err := c.diskGeneration()
	if err != nil {
		return err
	}
	if disk > c.generation {
		return fmt.Errorf("%w: this handle holds generation %d, disk records %d", ErrFenced, c.generation, disk)
	}
	return nil
}

// Park marks a unit as waiting out an outage and persists, so a kill during
// the outage records why the unit is incomplete. Completion clears the mark.
func (c *CampaignCheckpoint) Park(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.parked[key] {
		return nil
	}
	c.parked[key] = true
	return c.saveLocked()
}

// Unpark clears a unit's parked mark (requeue time) and persists.
func (c *CampaignCheckpoint) Unpark(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.parked[key] {
		return nil
	}
	delete(c.parked, key)
	return c.saveLocked()
}

// Parked returns the sorted unit keys currently marked as parked.
func (c *CampaignCheckpoint) Parked() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return sortedKeys(c.parked)
}

// Done returns the persisted result of a completed cell, if present.
func (c *CampaignCheckpoint) Done(key string) (CampaignCell, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cell, ok := c.cells[key]
	return cell, ok
}

// Cells reports how many completed cells the checkpoint holds.
func (c *CampaignCheckpoint) Cells() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells)
}

// Complete records a finished cell, discards its partial state, and
// persists.
func (c *CampaignCheckpoint) Complete(key string, cell CampaignCell) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells[key] = cell
	delete(c.partial, key)
	delete(c.parked, key)
	delete(c.leases, key)
	return c.saveLocked()
}

// Lease records that a unit's lease was granted at epoch to holder and
// persists. Epochs must be monotonically increasing per key: a grant at an
// epoch not above the recorded high-water mark is rejected, which is what
// lets a restarted coordinator keep zombie results from a pre-crash lease
// detectable.
func (c *CampaignCheckpoint) Lease(key string, epoch uint64, holder string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.leases[key]; ok && epoch <= prev.Epoch {
		return fmt.Errorf("robust: lease epoch %d for %q does not advance recorded epoch %d", epoch, key, prev.Epoch)
	}
	c.leases[key] = LeaseRecord{Epoch: epoch, Holder: holder}
	return c.saveLocked()
}

// ReleaseLease drops a unit's lease record (reclaim without completion —
// e.g. the campaign is shutting down with the unit unfinished) and persists.
// The epoch high-water mark is what the record carried; callers that re-grant
// later must still advance past it, so release only via the coordinator's
// ledger, which remembers.
func (c *CampaignCheckpoint) ReleaseLease(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.leases[key]; !ok {
		return nil
	}
	delete(c.leases, key)
	return c.saveLocked()
}

// LeaseRecords returns a copy of the persisted lease ledger: unit key →
// highest granted epoch and holder.
func (c *CampaignCheckpoint) LeaseRecords() map[string]LeaseRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]LeaseRecord, len(c.leases))
	for k, v := range c.leases {
		out[k] = v
	}
	return out
}

// AddPartialObservation merges one streamed observation into a unit's
// partial state and persists: the distributed-campaign counterpart of the
// write-through in WrapCell. Invalid vectors are rejected (never cached);
// duplicates by index are ignored without charging iters. Observations are
// epoch-agnostic on purpose — even a stale lease's evaluations are paid-for
// truth (the evaluator is deterministic per unit), so merging them
// guarantees each reclaim round makes progress.
func (c *CampaignCheckpoint) AddPartialObservation(key string, obs Observation) error {
	if err := ValidateVector(obs.QoR, 0); err != nil {
		return fmt.Errorf("robust: refusing to checkpoint observation %d for %q: %v", obs.Index, key, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.partial[key]
	if !ok {
		p = &partialState{values: map[int][]float64{}}
		c.partial[key] = p
	}
	if _, dup := p.values[obs.Index]; dup {
		return nil
	}
	p.order = append(p.order, obs.Index)
	p.values[obs.Index] = append([]float64(nil), obs.QoR...)
	p.iters++
	c.fresh++
	return c.saveLocked()
}

// PartialObservations returns a unit's recorded observations in arrival
// order — the replay stream a re-granted lease ships to its new worker.
func (c *CampaignCheckpoint) PartialObservations(key string) []Observation {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.partial[key]
	if !ok {
		return nil
	}
	out := make([]Observation, 0, len(p.order))
	for _, i := range p.order {
		out = append(out, Observation{Index: i, QoR: append([]float64(nil), p.values[i]...)})
	}
	return out
}

// PartialRandState returns the RNG-source state recorded when the cell's
// run started (nil if the cell has no partial state) together with the
// number of fresh evaluations the crashed run had paid for.
func (c *CampaignCheckpoint) PartialRandState(key string) (state []byte, iters int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.partial[key]
	if !ok || p.randState == nil {
		return nil, 0
	}
	return append([]byte(nil), p.randState...), p.iters
}

// StartCell records the RNG-source state a fresh cell run starts from and
// persists. If the cell already has partial state — a resumed run — the
// recorded state wins and the call is a no-op: the caller must restore via
// PartialRandState instead of overwriting the state the observations were
// drawn under.
func (c *CampaignCheckpoint) StartCell(key string, randState []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.partial[key]; ok {
		return nil
	}
	c.partial[key] = &partialState{
		values:    map[int][]float64{},
		randState: append([]byte(nil), randState...),
	}
	return c.saveLocked()
}

// Stats reports observations replayed from the checkpoint versus fresh
// evaluator calls made through WrapCell since load.
func (c *CampaignCheckpoint) Stats() (replayed, fresh int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replayed, c.fresh
}

// WrapCell returns an evaluator that answers cell-local observations from
// the checkpoint when it can and writes through (observation + iteration
// count, atomically persisted) when it must invoke eval. Like
// Checkpoint.Wrap, compose it inside any fault-tolerance middleware and
// never cache invalid vectors: garbage QoR is passed up for the resilience
// layer to reject so the corruption cannot replay on resume.
func (c *CampaignCheckpoint) WrapCell(key string, eval core.Evaluator) core.Evaluator {
	return func(i int) ([]float64, error) {
		c.mu.Lock()
		if p, ok := c.partial[key]; ok {
			if y, ok := p.values[i]; ok {
				c.replayed++
				out := append([]float64(nil), y...)
				c.mu.Unlock()
				return out, nil
			}
		}
		c.mu.Unlock()
		y, err := eval(i)
		if err != nil {
			return nil, err
		}
		if ValidateVector(y, 0) != nil {
			return y, nil
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		c.fresh++
		p, ok := c.partial[key]
		if !ok {
			p = &partialState{values: map[int][]float64{}}
			c.partial[key] = p
		}
		if _, dup := p.values[i]; !dup {
			p.order = append(p.order, i)
			p.values[i] = append([]float64(nil), y...)
		}
		p.iters++
		if err := c.saveLocked(); err != nil {
			return nil, err
		}
		return y, nil
	}
}

// saveLocked persists the campaign file; callers hold c.mu. An adopted
// handle (generation > 0) verifies the fence first, under the file lock so
// the generation check and the rename are atomic against a concurrent
// Adopt: a deposed coordinator's mutation is rejected with ErrFenced and
// the file is left exactly as the new owner wrote it.
func (c *CampaignCheckpoint) saveLocked() error {
	if c.path == "" {
		return nil
	}
	if c.generation == 0 {
		return c.writeLocked()
	}
	unlock, err := lockFile(c.path)
	if err != nil {
		return fmt.Errorf("robust: write campaign checkpoint: %w", err)
	}
	defer unlock()
	if err := c.checkFence(); err != nil {
		return err
	}
	return c.writeLocked()
}

// writeLocked marshals and atomically renames the campaign file without
// consulting the fence; callers hold c.mu. Maps are flattened over sorted
// keys so the bytes on disk are deterministic.
func (c *CampaignCheckpoint) writeLocked() error {
	f := campaignFile{
		Version: campaignCheckpointVersion,
		Kind:    campaignKind,
		Cells:   make(map[string]CampaignCell, len(c.cells)),
		Partial: make(map[string]campaignPartial, len(c.partial)),
	}
	for _, key := range sortedKeys(c.cells) {
		f.Cells[key] = c.cells[key]
	}
	for _, key := range sortedKeys(c.partial) {
		p := c.partial[key]
		cp := campaignPartial{RandState: p.randState, Iters: p.iters}
		for _, i := range p.order {
			cp.Runs = append(cp.Runs, checkpointRun{Index: i, QoR: p.values[i]})
		}
		f.Partial[key] = cp
	}
	if len(f.Partial) == 0 {
		f.Partial = nil
	}
	if len(c.parked) > 0 {
		f.Parked = sortedKeys(c.parked)
	}
	if len(c.leases) > 0 {
		f.Leases = make(map[string]LeaseRecord, len(c.leases))
		for _, key := range sortedKeys(c.leases) {
			f.Leases[key] = c.leases[key]
		}
	}
	f.Generation = c.generation
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("robust: encode campaign checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), filepath.Base(c.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("robust: write campaign checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("robust: write campaign checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("robust: write campaign checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("robust: write campaign checkpoint: %w", err)
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order (deterministic file
// bytes and iteration order; see the maporder analyzer).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
