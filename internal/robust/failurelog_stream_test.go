package robust

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
)

// TestFailureLogStreamsStructuredEvents: a streamed logger receives one JSON
// record per failure attempt, with the terminal attempt escalated to error
// level, while the in-memory digest keeps working unchanged.
func TestFailureLogStreamsStructuredEvents(t *testing.T) {
	var buf bytes.Buffer
	log := &FailureLog{}
	log.Stream(slog.New(slog.NewJSONHandler(&buf, nil)))

	tool := func(_ context.Context, i int) ([]float64, error) {
		return nil, errors.New("licence checkout failed")
	}
	ns := &noSleep{}
	e, err := New(context.Background(), tool, Options{
		MaxRetries: 1, NumObjectives: 2, Policy: PolicySkip, Sleep: ns.sleep, Log: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(13); err == nil {
		t.Fatal("expected the exhausted candidate to fail")
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("streamed %d records, want 2 (one per attempt):\n%s", len(lines), buf.String())
	}
	wantLevel := []string{"WARN", "ERROR"}
	wantTerminal := []bool{false, true}
	for a, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("record %d is not JSON: %v\n%s", a, err, line)
		}
		if rec["level"] != wantLevel[a] {
			t.Errorf("record %d level = %v, want %s", a, rec["level"], wantLevel[a])
		}
		if rec["terminal"] != wantTerminal[a] {
			t.Errorf("record %d terminal = %v, want %v", a, rec["terminal"], wantTerminal[a])
		}
		if rec["candidate"] != float64(13) {
			t.Errorf("record %d candidate = %v, want 13", a, rec["candidate"])
		}
		if rec["attempt"] != float64(a) {
			t.Errorf("record %d attempt = %v, want %d", a, rec["attempt"], a)
		}
		if rec["kind"] != string(KindError) {
			t.Errorf("record %d kind = %v, want %s", a, rec["kind"], KindError)
		}
	}
	// The accumulated digest is unaffected by streaming.
	if log.Len() != 2 || log.Terminal() != 1 {
		t.Errorf("digest: %s", log.Summary())
	}
	// Detaching stops the stream.
	log.Stream(nil)
	mark := buf.Len()
	log.add(Event{Index: 1, Kind: KindError})
	if buf.Len() != mark {
		t.Error("events still streamed after detaching the logger")
	}
}
