//go:build !unix

package robust

// lockFile is a no-op on platforms without flock: the fence degrades to an
// unserialised check-then-rename. The generation comparison still rejects
// every deposed write that starts after the new owner's adoption lands on
// disk; only the sub-millisecond window between a check and its rename is
// unguarded.
func lockFile(path string) (func(), error) {
	return func() {}, nil
}
