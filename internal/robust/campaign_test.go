package robust

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCampaignCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	ck := NewCampaignCheckpoint(path)
	if err := ck.Complete("a|b|c|seed=1", CampaignCell{HV: 0.1, ADRS: 0.2, Runs: 30}); err != nil {
		t.Fatal(err)
	}
	if err := ck.StartCell("a|b|c|seed=2", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ev := ck.WrapCell("a|b|c|seed=2", func(i int) ([]float64, error) {
		return []float64{float64(i), 1}, nil
	})
	if _, err := ev(7); err != nil {
		t.Fatal(err)
	}
	if _, err := ev(9); err != nil {
		t.Fatal(err)
	}

	re, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Cells() != 1 {
		t.Fatalf("reloaded %d completed cells, want 1", re.Cells())
	}
	cell, ok := re.Done("a|b|c|seed=1")
	if !ok || cell.HV != 0.1 || cell.ADRS != 0.2 || cell.Runs != 30 {
		t.Fatalf("completed cell = %+v, ok=%v", cell, ok)
	}
	state, iters := re.PartialRandState("a|b|c|seed=2")
	if string(state) != "\x01\x02\x03" || iters != 2 {
		t.Fatalf("partial state = %v, iters = %d", state, iters)
	}
	// Replayed observations come back verbatim without calling the tool.
	replay := re.WrapCell("a|b|c|seed=2", func(i int) ([]float64, error) {
		t.Fatalf("tool called for cached index %d", i)
		return nil, nil
	})
	y, err := replay(7)
	if err != nil || y[0] != 7 {
		t.Fatalf("replayed obs = %v, %v", y, err)
	}
	replayed, fresh := re.Stats()
	if replayed != 1 || fresh != 0 {
		t.Errorf("stats = (%d, %d), want (1, 0)", replayed, fresh)
	}
}

func TestCampaignCheckpointMissingFileIsEmpty(t *testing.T) {
	ck, err := LoadCampaignCheckpoint(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Cells() != 0 {
		t.Fatalf("fresh checkpoint has %d cells", ck.Cells())
	}
}

func TestCampaignCheckpointRejectsWrongKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	// A per-run observation checkpoint (cmd/ppatune's format) must be
	// rejected with a pointed error, not read as empty.
	perRun := NewCheckpoint(path)
	if err := perRun.Add(0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCampaignCheckpoint(path)
	if err == nil || !strings.Contains(err.Error(), "not a campaign checkpoint") {
		t.Fatalf("err = %v", err)
	}

	// And the reverse direction: garbage JSON is a parse error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCampaignCheckpoint(bad); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCampaignCheckpointRejectsInvalidVectors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	data := `{"version":2,"kind":"campaign","cells":{},"partial":{"k":{"runs":[{"index":1,"qor":[1,1e999]}],"iters":1}}}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCampaignCheckpoint(path); err == nil {
		t.Fatal("out-of-range observation accepted from disk")
	}

	// At runtime, garbage QoR is passed up uncached.
	ck := NewCampaignCheckpoint("")
	ev := ck.WrapCell("k", func(i int) ([]float64, error) {
		return []float64{math.NaN(), 1}, nil
	})
	if _, err := ev(3); err != nil {
		t.Fatal(err)
	}
	if _, fresh := ck.Stats(); fresh != 0 {
		t.Error("invalid vector counted as a cached fresh evaluation")
	}
}

func TestCampaignStartCellKeepsRecordedState(t *testing.T) {
	ck := NewCampaignCheckpoint("")
	if err := ck.StartCell("k", []byte{9}); err != nil {
		t.Fatal(err)
	}
	// A resumed run calling StartCell again must not clobber the state the
	// partial observations were drawn under.
	if err := ck.StartCell("k", []byte{42}); err != nil {
		t.Fatal(err)
	}
	state, _ := ck.PartialRandState("k")
	if string(state) != "\x09" {
		t.Fatalf("recorded state overwritten: %v", state)
	}
}

func TestCampaignCompleteDiscardsPartial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	ck := NewCampaignCheckpoint(path)
	if err := ck.StartCell("k", []byte{1}); err != nil {
		t.Fatal(err)
	}
	ev := ck.WrapCell("k", func(i int) ([]float64, error) { return []float64{1, 2}, nil })
	if _, err := ev(0); err != nil {
		t.Fatal(err)
	}
	if err := ck.Complete("k", CampaignCell{HV: 1}); err != nil {
		t.Fatal(err)
	}
	re, err := LoadCampaignCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if state, _ := re.PartialRandState("k"); state != nil {
		t.Error("partial state survived completion")
	}
	if _, ok := re.Done("k"); !ok {
		t.Error("completed cell lost")
	}
}

// A hand-written v1 per-run checkpoint (observations only, no RNG state)
// must load transparently and migrate to v2 on the next save.
func TestCheckpointV1MigratesToV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.json")
	v1 := `{"version":1,"runs":[{"index":4,"qor":[0.5,1.5]},{"index":2,"qor":[1,2]}]}`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Len() != 2 {
		t.Fatalf("v1 file loaded %d runs, want 2", ck.Len())
	}
	if ck.RandState() != nil || ck.Iters() != 0 {
		t.Errorf("v1 file reported state %v, iters %d; want nil, 0", ck.RandState(), ck.Iters())
	}
	if y, ok := ck.Lookup(4); !ok || y[0] != 0.5 {
		t.Fatalf("v1 observation lost: %v, %v", y, ok)
	}

	// Any persist migrates the file to the current schema.
	if err := ck.SetRandState([]byte{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := ck.SetIters(11); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"version": 2`) {
		t.Fatalf("migrated file is not v2:\n%s", raw)
	}

	re, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(re.RandState()) != "\x07\x08" || re.Iters() != 11 {
		t.Fatalf("v2 round-trip: state %v, iters %d", re.RandState(), re.Iters())
	}
	if y, ok := re.Lookup(2); !ok || y[1] != 2 {
		t.Fatalf("observation lost across migration: %v, %v", y, ok)
	}
}

func TestCheckpointRejectsUnknownVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v9.json")
	if err := os.WriteFile(path, []byte(`{"version":9,"runs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("future version accepted")
	}
}
