package sample

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppatuner/internal/param"
)

func TestLatinHypercubeStratification(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, d := 50, 4
	pts := LatinHypercube(rng, n, d)
	if len(pts) != n {
		t.Fatalf("got %d points, want %d", len(pts), n)
	}
	for j := 0; j < d; j++ {
		occupied := make([]bool, n)
		for i := 0; i < n; i++ {
			x := pts[i][j]
			if x < 0 || x >= 1 {
				t.Fatalf("point[%d][%d] = %g out of [0,1)", i, j, x)
			}
			bin := int(x * float64(n))
			if occupied[bin] {
				t.Fatalf("dimension %d: bin %d occupied twice", j, bin)
			}
			occupied[bin] = true
		}
	}
}

func TestLatinHypercubeBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=0")
		}
	}()
	LatinHypercube(rand.New(rand.NewSource(1)), 0, 3)
}

func TestLatinHypercubeDeterministic(t *testing.T) {
	a := LatinHypercube(rand.New(rand.NewSource(9)), 20, 3)
	b := LatinHypercube(rand.New(rand.NewSource(9)), 20, 3)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different samples")
			}
		}
	}
}

// Property: every LHS dimension covers both halves of [0,1] once n >= 2.
func TestQuickLHSCoverage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		d := 1 + rng.Intn(6)
		pts := LatinHypercube(rng, n, d)
		for j := 0; j < d; j++ {
			lo, hi := false, false
			for i := 0; i < n; i++ {
				if pts[i][j] < 0.5 {
					lo = true
				} else {
					hi = true
				}
			}
			if !lo || !hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLHSConfigsDistinct(t *testing.T) {
	s := param.Target2Space()
	rng := rand.New(rand.NewSource(2))
	cfgs := LHSConfigs(rng, s, 300)
	if len(cfgs) != 300 {
		t.Fatalf("got %d configs, want 300", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if seen[c.Key()] {
			t.Fatal("duplicate configuration returned")
		}
		seen[c.Key()] = true
	}
}

func TestLHSConfigsCoarseSpace(t *testing.T) {
	// A 1-bool space holds only 2 distinct configs; asking for 10 must not
	// loop forever and must return the 2.
	s := param.MustSpace("tiny", []param.Param{{Name: "b", Kind: param.Bool}})
	cfgs := LHSConfigs(rand.New(rand.NewSource(3)), s, 10)
	if len(cfgs) != 2 {
		t.Fatalf("got %d configs from a 2-point space, want 2", len(cfgs))
	}
}

func TestUniformConfigsDistinct(t *testing.T) {
	s := param.Source2Space()
	cfgs := UniformConfigs(rand.New(rand.NewSource(4)), s, 100)
	if len(cfgs) != 100 {
		t.Fatalf("got %d configs, want 100", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if seen[c.Key()] {
			t.Fatal("duplicate configuration returned")
		}
		seen[c.Key()] = true
	}
}

func TestIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	idx := Indices(rng, 10, 4)
	if len(idx) != 4 {
		t.Fatalf("got %d indices, want 4", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatal("duplicate index")
		}
		seen[i] = true
	}
	if got := Indices(rng, 3, 7); len(got) != 3 {
		t.Fatalf("k>n: got %d indices, want 3", len(got))
	}
}
