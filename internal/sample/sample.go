// Package sample provides the deterministic sampling schemes used to build
// the offline benchmarks and to seed the tuners: Latin-hypercube sampling
// over a parameter space (the scheme the paper uses to pick the benchmark
// configuration points), plain uniform sampling, and index subsampling.
package sample

import (
	"fmt"
	"math/rand"

	"ppatuner/internal/param"
)

// LatinHypercube returns n points in [0,1]^d such that each dimension's
// marginal is stratified into n equal bins with exactly one point per bin.
func LatinHypercube(rng *rand.Rand, n, d int) [][]float64 {
	if n <= 0 || d <= 0 {
		panic(fmt.Sprintf("sample: LatinHypercube(n=%d, d=%d)", n, d))
	}
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
	}
	perm := make([]int, n)
	for j := 0; j < d; j++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		for i := 0; i < n; i++ {
			// Jittered position inside stratum perm[i].
			pts[i][j] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return pts
}

// LHSConfigs draws n Latin-hypercube configurations from the space,
// deduplicating configurations that collide after discrete snapping. It may
// return fewer than n points when the space is too coarse to hold n distinct
// configurations (it retries with fresh jitter a bounded number of times).
func LHSConfigs(rng *rand.Rand, s *param.Space, n int) []param.Config {
	out := make([]param.Config, 0, n)
	seen := make(map[string]bool, n)
	for attempt := 0; attempt < 8 && len(out) < n; attempt++ {
		for _, u := range LatinHypercube(rng, n-len(out), s.Dim()) {
			c := s.MustConfig(u)
			if k := c.Key(); !seen[k] {
				seen[k] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// UniformConfigs draws n independent uniform configurations (with the same
// dedup behaviour as LHSConfigs).
func UniformConfigs(rng *rand.Rand, s *param.Space, n int) []param.Config {
	out := make([]param.Config, 0, n)
	seen := make(map[string]bool, n)
	u := make([]float64, s.Dim())
	for tries := 0; len(out) < n && tries < 20*n+100; tries++ {
		for j := range u {
			u[j] = rng.Float64()
		}
		c := s.MustConfig(u)
		if k := c.Key(); !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// Indices returns k distinct indices drawn uniformly from [0, n).
func Indices(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}
