package benchdata

import (
	"bytes"
	"math"
	"testing"

	"ppatuner/internal/param"
	"ppatuner/internal/pareto"
	"ppatuner/internal/pdtool"
)

// small test dataset shared by tests in this package (generation is the
// expensive part; paper-sized datasets are exercised by the benchmarks).
func testDataset(t *testing.T) *Dataset {
	t.Helper()
	d, err := cached("test-small", func() (*Dataset, error) {
		return Generate("test-small", param.Source2Space(), pdtool.SmallMAC(), GenOptions{Points: 60, Seed: 7})
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateBasics(t *testing.T) {
	d := testDataset(t)
	if d.N() != 60 {
		t.Fatalf("N = %d, want 60", d.N())
	}
	for i, p := range d.Points {
		if p.QoR.PowerMW <= 0 || p.QoR.DelayNS <= 0 || p.QoR.AreaUm2 <= 0 {
			t.Fatalf("point %d has degenerate QoR %+v", i, p.QoR)
		}
	}
	seen := map[string]bool{}
	for _, p := range d.Points {
		k := p.Config.Key()
		if seen[k] {
			t.Fatal("duplicate configuration in dataset")
		}
		seen[k] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate("a", param.Source2Space(), pdtool.SmallMAC(), GenOptions{Points: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("b", param.Source2Space(), pdtool.SmallMAC(), GenOptions{Points: 20, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].Config.Key() != b.Points[i].Config.Key() {
			t.Fatal("configs differ across worker counts")
		}
		if a.Points[i].QoR != b.Points[i].QoR {
			t.Fatal("QoR differ across worker counts")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("x", param.Source2Space(), pdtool.SmallMAC(), GenOptions{}); err == nil {
		t.Error("zero point count accepted")
	}
	tiny := param.MustSpace("tiny", []param.Param{{Name: "b", Kind: param.Bool}})
	if _, err := Generate("y", tiny, pdtool.SmallMAC(), GenOptions{Points: 10}); err == nil {
		t.Error("coarse space silently truncated")
	}
}

func TestObjectivesAndGoldenFront(t *testing.T) {
	d := testDataset(t)
	objs := []pdtool.Metric{pdtool.Power, pdtool.Delay}
	vecs := d.Objectives(objs)
	if len(vecs) != d.N() || len(vecs[0]) != 2 {
		t.Fatalf("objectives shape wrong")
	}
	front := d.GoldenFront(objs)
	if len(front) == 0 || len(front) > d.N() {
		t.Fatalf("front size %d out of range", len(front))
	}
	// Every front point must be non-dominated within the dataset.
	for _, f := range front {
		for _, v := range vecs {
			if pareto.Dominates(v, f) {
				t.Fatalf("front point %v dominated by dataset point %v", f, v)
			}
		}
	}
	idx := d.GoldenFrontIndices(objs)
	if len(idx) != len(front) {
		t.Errorf("front indices %d != front points %d", len(idx), len(front))
	}
}

func TestFrontNontrivial(t *testing.T) {
	// The benchmark must exhibit a genuine power/delay conflict: a front
	// with at least 2 distinct points.
	d := testDataset(t)
	front := d.GoldenFront([]pdtool.Metric{pdtool.Power, pdtool.Delay})
	if len(front) < 2 {
		t.Fatalf("power-delay front has %d point(s): no trade-off to tune", len(front))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, d.Name, d.Space)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() {
		t.Fatalf("round trip N = %d, want %d", back.N(), d.N())
	}
	for i := range d.Points {
		if d.Points[i].Config.Key() != back.Points[i].Config.Key() {
			t.Fatalf("point %d config mismatch", i)
		}
		a, b := d.Points[i].QoR, back.Points[i].QoR
		if math.Abs(a.PowerMW-b.PowerMW) > 1e-6 || math.Abs(a.DelayNS-b.DelayNS) > 1e-6 || math.Abs(a.AreaUm2-b.AreaUm2) > 1e-3 {
			t.Fatalf("point %d QoR mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString(""), "x", param.Source2Space()); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b,c\n1,2,3\n"), "x", param.Source2Space()); err == nil {
		t.Error("wrong column count accepted")
	}
}
