// Package benchdata builds the offline benchmark datasets of the paper's
// Table 1: Latin-hypercube-sampled tool-parameter configurations run through
// the flow simulator, with golden QoR values and exhaustively-extracted
// Pareto fronts. Source1/Target1 hold 5000 points over 12 parameters of the
// small MAC; Source2 holds 1440 points (small MAC) and Target2 727 points
// (large MAC) over 9 parameters — the same counts as the paper.
package benchdata

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"ppatuner/internal/param"
	"ppatuner/internal/pareto"
	"ppatuner/internal/pdtool"
	"ppatuner/internal/sample"
)

// Point is one offline benchmark entry: a configuration and its golden QoR.
type Point struct {
	Config param.Config
	QoR    pdtool.QoR
}

// Dataset is an offline benchmark.
type Dataset struct {
	Name   string
	Space  *param.Space
	Design *pdtool.Design
	Points []Point
}

// GenOptions controls generation. Zero values mean "paper-sized".
type GenOptions struct {
	// Points overrides the dataset size (tests use small values).
	Points int
	// Seed drives the Latin-hypercube sampler.
	Seed int64
	// Workers bounds parallel flow runs (default NumCPU).
	Workers int
}

// Generate samples cfgCount configurations and evaluates each through the
// flow. Deterministic for a fixed seed: the config list is fixed before the
// parallel evaluation fan-out.
func Generate(name string, space *param.Space, design *pdtool.Design, opt GenOptions) (*Dataset, error) {
	if opt.Points <= 0 {
		return nil, fmt.Errorf("benchdata: %s: no point count", name)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	cfgs := sample.LHSConfigs(rng, space, opt.Points)
	if len(cfgs) < opt.Points {
		return nil, fmt.Errorf("benchdata: %s: space too coarse for %d distinct points (got %d)", name, opt.Points, len(cfgs))
	}
	pts := make([]Point, len(cfgs))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (len(cfgs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				q, _, err := pdtool.Run(design, cfgs[i])
				if err != nil {
					errs[w] = err
					return
				}
				pts[i] = Point{Config: cfgs[i], QoR: q}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("benchdata: %s: %w", name, err)
		}
	}
	return &Dataset{Name: name, Space: space, Design: design, Points: pts}, nil
}

// N returns the number of points.
func (d *Dataset) N() int { return len(d.Points) }

// UnitX returns the configurations' normalised coordinates (views).
func (d *Dataset) UnitX() [][]float64 {
	out := make([][]float64, len(d.Points))
	for i, p := range d.Points {
		out[i] = p.Config.UnitView()
	}
	return out
}

// Objectives projects every point's QoR onto the objective space.
func (d *Dataset) Objectives(objs []pdtool.Metric) [][]float64 {
	out := make([][]float64, len(d.Points))
	for i, p := range d.Points {
		out[i] = p.QoR.Vector(objs)
	}
	return out
}

// GoldenFront returns the Pareto-optimal QoR vectors of the dataset in the
// given objective space — "the best that can be found in the benchmarks", as
// the paper defines the golden set.
func (d *Dataset) GoldenFront(objs []pdtool.Metric) [][]float64 {
	return pareto.FrontPoints(d.Objectives(objs))
}

// GoldenFrontIndices returns the indices of Pareto-optimal points.
func (d *Dataset) GoldenFrontIndices(objs []pdtool.Metric) []int {
	return pareto.Front(d.Objectives(objs))
}

// paper-sized benchmark singletons, built on first use.
var (
	cacheMu sync.Mutex
	cache   = map[string]*Dataset{}
)

func cached(name string, build func() (*Dataset, error)) (*Dataset, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if d, ok := cache[name]; ok {
		return d, nil
	}
	d, err := build()
	if err != nil {
		return nil, err
	}
	cache[name] = d
	return d, nil
}

// Source1 returns the 5000-point source benchmark of Scenario One.
func Source1() (*Dataset, error) {
	return cached("Source1", func() (*Dataset, error) {
		d, err := pdtool.NewSmallMAC()
		if err != nil {
			return nil, err
		}
		return Generate("Source1", param.Source1Space(), d, GenOptions{Points: 5000, Seed: 101})
	})
}

// Target1 returns the 5000-point target benchmark of Scenario One.
func Target1() (*Dataset, error) {
	return cached("Target1", func() (*Dataset, error) {
		d, err := pdtool.NewSmallMAC()
		if err != nil {
			return nil, err
		}
		return Generate("Target1", param.Target1Space(), d, GenOptions{Points: 5000, Seed: 102})
	})
}

// Source2 returns the 1440-point source benchmark of Scenario Two.
func Source2() (*Dataset, error) {
	return cached("Source2", func() (*Dataset, error) {
		d, err := pdtool.NewSmallMAC()
		if err != nil {
			return nil, err
		}
		return Generate("Source2", param.Source2Space(), d, GenOptions{Points: 1440, Seed: 103})
	})
}

// Target2 returns the 727-point target benchmark of Scenario Two (large MAC).
func Target2() (*Dataset, error) {
	return cached("Target2", func() (*Dataset, error) {
		d, err := pdtool.NewLargeMAC()
		if err != nil {
			return nil, err
		}
		return Generate("Target2", param.Target2Space(), d, GenOptions{Points: 727, Seed: 104})
	})
}
