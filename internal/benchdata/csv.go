package benchdata

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"ppatuner/internal/param"
	"ppatuner/internal/pdtool"
)

// WriteCSV serialises the dataset: a header row of parameter names plus the
// QoR columns, then one row per point with decoded parameter values followed
// by normalised coordinates and the QoR metrics.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{}
	for _, p := range d.Space.Params {
		header = append(header, p.Name)
	}
	for _, p := range d.Space.Params {
		header = append(header, "u_"+p.Name)
	}
	header = append(header, "power_mw", "delay_ns", "area_um2")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pt := range d.Points {
		row := make([]string, 0, len(header))
		for _, p := range d.Space.Params {
			switch p.Kind {
			case param.Float:
				row = append(row, strconv.FormatFloat(pt.Config.Float(p.Name), 'g', 8, 64))
			case param.Int:
				row = append(row, strconv.Itoa(pt.Config.Int(p.Name)))
			case param.Enum:
				row = append(row, pt.Config.Enum(p.Name))
			case param.Bool:
				row = append(row, fmt.Sprintf("%v", pt.Config.Bool(p.Name)))
			}
		}
		for _, u := range pt.Config.UnitView() {
			// Shortest exact representation: the normalised coordinates must
			// round-trip bit-exactly so configuration keys survive.
			row = append(row, strconv.FormatFloat(u, 'g', -1, 64))
		}
		row = append(row,
			strconv.FormatFloat(pt.QoR.PowerMW, 'g', 8, 64),
			strconv.FormatFloat(pt.QoR.DelayNS, 'g', 8, 64),
			strconv.FormatFloat(pt.QoR.AreaUm2, 'g', 8, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV for the given
// space (the design is not reconstructed — QoR values are already present).
func ReadCSV(r io.Reader, name string, space *param.Space) (*Dataset, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("benchdata: read %s: %w", name, err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("benchdata: %s: empty CSV", name)
	}
	d := space.Dim()
	wantCols := 2*d + 3
	if len(rows[0]) != wantCols {
		return nil, fmt.Errorf("benchdata: %s: %d columns, want %d", name, len(rows[0]), wantCols)
	}
	ds := &Dataset{Name: name, Space: space}
	for ri, row := range rows[1:] {
		u := make([]float64, d)
		for j := 0; j < d; j++ {
			v, err := strconv.ParseFloat(row[d+j], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdata: %s row %d: %w", name, ri+2, err)
			}
			u[j] = v
		}
		cfg, err := space.NewConfig(u)
		if err != nil {
			return nil, fmt.Errorf("benchdata: %s row %d: %w", name, ri+2, err)
		}
		var q pdtool.QoR
		if q.PowerMW, err = strconv.ParseFloat(row[2*d], 64); err != nil {
			return nil, fmt.Errorf("benchdata: %s row %d power: %w", name, ri+2, err)
		}
		if q.DelayNS, err = strconv.ParseFloat(row[2*d+1], 64); err != nil {
			return nil, fmt.Errorf("benchdata: %s row %d delay: %w", name, ri+2, err)
		}
		if q.AreaUm2, err = strconv.ParseFloat(row[2*d+2], 64); err != nil {
			return nil, fmt.Errorf("benchdata: %s row %d area: %w", name, ri+2, err)
		}
		ds.Points = append(ds.Points, Point{Config: cfg, QoR: q})
	}
	return ds, nil
}
