// Package recsys implements the DAC'19 baseline ("A learning-based
// recommender system for autotuning design flows"): parameter
// configurations are treated as sets of (parameter, level) items and QoR
// prediction as a rating-prediction problem, solved with a second-order
// factorization machine (bias per item plus latent-factor pairwise
// interactions — the matrix/tensor-completion machinery of recommender
// systems). The tuner alternates retraining on the evaluated configurations
// with recommending the best-predicted unevaluated ones, under a fixed
// tool-run budget and ε-greedy exploration.
package recsys

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ppatuner/internal/baselines/scalarize"
)

// Options configures the recommender baseline.
type Options struct {
	NumObjectives int
	// Budget is the total number of tool evaluations (including init).
	Budget int
	// InitTarget seeds the model (default Budget/8, at least 12).
	InitTarget int
	// Buckets quantises each parameter dimension (default 6).
	Buckets int
	// LatentDim is the factor rank (default 4).
	LatentDim int
	// Epsilon is the exploration rate (default 0.1).
	Epsilon float64
	// Retrain period in evaluations (default 10).
	Retrain int
	Rng     *rand.Rand
}

// Result reports the outcome.
type Result struct {
	ParetoIdx    []int
	EvaluatedIdx []int
	Runs         int
}

// fm is a per-objective factorization machine over one-hot (dim, bucket)
// items.
type fm struct {
	mu    float64
	bias  [][]float64   // [dim][bucket]
	lat   [][][]float64 // [dim][bucket][latent]
	dim   int
	bkt   int
	rank  int
	items func(x []float64) []int // bucket index per dim
	// postMean/postSd de-standardise predictions after train.
	postMean, postSd float64
}

func newFM(dim, buckets, rank int, rng *rand.Rand) *fm {
	m := &fm{dim: dim, bkt: buckets, rank: rank}
	m.bias = make([][]float64, dim)
	m.lat = make([][][]float64, dim)
	for d := 0; d < dim; d++ {
		m.bias[d] = make([]float64, buckets)
		m.lat[d] = make([][]float64, buckets)
		for b := 0; b < buckets; b++ {
			m.lat[d][b] = make([]float64, rank)
			for r := 0; r < rank; r++ {
				m.lat[d][b][r] = 0.01 * rng.NormFloat64()
			}
		}
	}
	m.items = func(x []float64) []int {
		out := make([]int, dim)
		for d := 0; d < dim; d++ {
			b := int(x[d] * float64(buckets))
			if b >= buckets {
				b = buckets - 1
			}
			if b < 0 {
				b = 0
			}
			out[d] = b
		}
		return out
	}
	return m
}

func (m *fm) predict(x []float64) float64 {
	it := m.items(x)
	out := m.mu
	// Pairwise interactions via the standard FM identity:
	// Σ_{d<e} v_d·v_e = ½(‖Σv‖² − Σ‖v‖²).
	sum := make([]float64, m.rank)
	var sumSq float64
	for d, b := range it {
		out += m.bias[d][b]
		v := m.lat[d][b]
		for r := 0; r < m.rank; r++ {
			sum[r] += v[r]
			sumSq += v[r] * v[r]
		}
	}
	var inter float64
	for r := 0; r < m.rank; r++ {
		inter += sum[r] * sum[r]
	}
	out += 0.5 * (inter - sumSq)
	return out
}

// train runs SGD epochs on (xs, ys), standardising internally.
func (m *fm) train(xs [][]float64, ys []float64, epochs int, rng *rand.Rand) {
	if len(xs) == 0 {
		return
	}
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	var sd float64
	for _, y := range ys {
		sd += (y - mean) * (y - mean)
	}
	sd = math.Sqrt(sd / float64(len(ys)))
	if sd < 1e-12 {
		sd = 1
	}
	m.mu = 0
	lr, reg := 0.05, 0.01
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			m.predictStdGrad(xs[i], (ys[i]-mean)/sd, lr, reg)
		}
	}
	m.postMean, m.postSd = mean, sd
}

func (m *fm) predictRaw(x []float64) float64 {
	return m.postMean + m.postSd*m.predict(x)
}

// predictStdGrad performs one SGD step on the standardised sample.
func (m *fm) predictStdGrad(x []float64, y float64, lr, reg float64) {
	it := m.items(x)
	pred := m.predict(x)
	e := pred - y
	m.mu -= lr * e
	sum := make([]float64, m.rank)
	for d, b := range it {
		v := m.lat[d][b]
		for r := 0; r < m.rank; r++ {
			sum[r] += v[r]
		}
	}
	for d, b := range it {
		m.bias[d][b] -= lr * (e + reg*m.bias[d][b])
		v := m.lat[d][b]
		for r := 0; r < m.rank; r++ {
			grad := sum[r] - v[r]
			v[r] -= lr * (e*grad + reg*v[r])
		}
	}
}

// Run executes the recommender-system tuner.
func Run(pool [][]float64, eval func(int) ([]float64, error), opt Options) (*Result, error) {
	if len(pool) == 0 {
		return nil, errors.New("recsys: empty pool")
	}
	if opt.Rng == nil {
		return nil, errors.New("recsys: Options.Rng is required")
	}
	if opt.NumObjectives < 1 {
		return nil, fmt.Errorf("recsys: NumObjectives = %d", opt.NumObjectives)
	}
	if opt.Budget <= 0 {
		opt.Budget = 600
	}
	if opt.Budget > len(pool) {
		opt.Budget = len(pool)
	}
	if opt.InitTarget <= 0 {
		opt.InitTarget = opt.Budget / 8
		if opt.InitTarget < 12 {
			opt.InitTarget = 12
		}
	}
	if opt.Buckets <= 1 {
		opt.Buckets = 6
	}
	if opt.LatentDim <= 0 {
		opt.LatentDim = 4
	}
	if opt.Epsilon <= 0 {
		opt.Epsilon = 0.1
	}
	if opt.Retrain <= 0 {
		opt.Retrain = 10
	}

	dim := len(pool[0])
	known := map[int][]float64{}
	var evaluated []int
	observe := func(i int) error {
		y, err := eval(i)
		if err != nil {
			return fmt.Errorf("recsys: evaluation %d: %w", i, err)
		}
		if len(y) != opt.NumObjectives {
			return fmt.Errorf("recsys: evaluator returned %d objectives, want %d", len(y), opt.NumObjectives)
		}
		known[i] = y
		evaluated = append(evaluated, i)
		return nil
	}

	init := opt.InitTarget
	if init > opt.Budget {
		init = opt.Budget
	}
	for _, i := range opt.Rng.Perm(len(pool))[:init] {
		if err := observe(i); err != nil {
			return nil, err
		}
	}

	models := make([]*fm, opt.NumObjectives)
	for k := range models {
		models[k] = newFM(dim, opt.Buckets, opt.LatentDim, opt.Rng)
	}
	retrain := func() {
		var xs [][]float64
		yss := make([][]float64, opt.NumObjectives)
		for _, i := range evaluated {
			xs = append(xs, pool[i])
			for k := 0; k < opt.NumObjectives; k++ {
				yss[k] = append(yss[k], known[i][k])
			}
		}
		for k, m := range models {
			m.train(xs, yss[k], 30, opt.Rng)
		}
	}
	retrain()

	dirs := scalarize.Directions(opt.NumObjectives, 1)
	sinceTrain := 0
	for len(evaluated) < opt.Budget {
		var pick int
		if opt.Rng.Float64() < opt.Epsilon {
			// ε-exploration: random unevaluated candidate.
			pick = -1
			perm := opt.Rng.Perm(len(pool))
			for _, i := range perm {
				if _, done := known[i]; !done {
					pick = i
					break
				}
			}
		} else {
			// Recommend along the current fixed preference direction (the
			// original recommender scores a scalar QoR).
			w := dirs[scalarize.Segment(len(evaluated)-init, opt.Budget-init, len(dirs))]
			pick = -1
			bestScore := math.Inf(1)
			for i := range pool {
				if _, done := known[i]; done {
					continue
				}
				var score float64
				for k, m := range models {
					score += w[k] * m.predictRaw(pool[i])
				}
				if score < bestScore {
					bestScore = score
					pick = i
				}
			}
		}
		if pick < 0 {
			// Model predictions can degenerate (NaN scores from an SGD
			// blow-up); fall back to random exploration instead of quitting
			// the budget early.
			for _, i := range opt.Rng.Perm(len(pool)) {
				if _, done := known[i]; !done {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			break
		}
		if err := observe(pick); err != nil {
			return nil, err
		}
		sinceTrain++
		if sinceTrain >= opt.Retrain {
			retrain()
			sinceTrain = 0
		}
	}

	return &Result{ParetoIdx: nonDominated(known), EvaluatedIdx: evaluated, Runs: len(evaluated)}, nil
}

func nonDominated(known map[int][]float64) []int {
	// Iterate sorted indices so the reported front is deterministic; map
	// order would reshuffle ParetoIdx between identically-seeded runs.
	idx := make([]int, 0, len(known))
	for i := range known {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var out []int
	for _, i := range idx {
		yi := known[i]
		dominated := false
		for _, j := range idx {
			if i != j && dominates(known[j], yi) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func dominates(a, b []float64) bool {
	strict := false
	for k := range a {
		if a[k] > b[k] {
			return false
		}
		if a[k] < b[k] {
			strict = true
		}
	}
	return strict
}
