package scalarize

import (
	"math"
	"testing"
)

func TestDirectionsSimplex(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		for _, k := range []int{1, 2, 3, 5} {
			dirs := Directions(m, k)
			if len(dirs) != k {
				t.Fatalf("m=%d k=%d: %d directions", m, k, len(dirs))
			}
			for _, w := range dirs {
				if len(w) != m {
					t.Fatalf("m=%d: direction has %d weights", m, len(w))
				}
				var sum float64
				for _, v := range w {
					if v < 0 {
						t.Errorf("negative weight %g", v)
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-12 {
					t.Errorf("weights sum to %g", sum)
				}
			}
		}
	}
}

func TestDirectionsFirstIsCentre(t *testing.T) {
	dirs := Directions(3, 4)
	for _, v := range dirs[0] {
		if math.Abs(v-1.0/3.0) > 1e-12 {
			t.Errorf("first direction not the centre: %v", dirs[0])
		}
	}
	// Later directions lean on distinct objectives.
	if dirs[1][0] != 0.7 || dirs[2][1] != 0.7 || dirs[3][2] != 0.7 {
		t.Errorf("corner-leaning directions wrong: %v", dirs[1:])
	}
}

func TestDirectionsDegenerate(t *testing.T) {
	if Directions(0, 3) != nil || Directions(3, 0) != nil {
		t.Error("degenerate inputs should return nil")
	}
	d := Directions(1, 2)
	if d[0][0] != 1 || d[1][0] != 1 {
		t.Errorf("single-objective weights must be 1: %v", d)
	}
}

func TestSegment(t *testing.T) {
	// 30 evaluations, 3 segments: 0..9 -> 0, 10..19 -> 1, 20..29 -> 2.
	for i, want := range map[int]int{0: 0, 9: 0, 10: 1, 19: 1, 20: 2, 29: 2} {
		if got := Segment(i, 30, 3); got != want {
			t.Errorf("Segment(%d, 30, 3) = %d, want %d", i, got, want)
		}
	}
	// Beyond the budget clamps to the last segment.
	if got := Segment(99, 30, 3); got != 2 {
		t.Errorf("Segment(99) = %d, want 2", got)
	}
	// Single segment / degenerate budget.
	if Segment(5, 30, 1) != 0 || Segment(5, 0, 3) != 0 {
		t.Error("degenerate segment handling wrong")
	}
}
