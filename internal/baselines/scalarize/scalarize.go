// Package scalarize provides the fixed preference directions the adapted
// single-objective baselines optimise. MLCAD'19, DAC'19 and ASPDAC'20 are
// scalar-QoR tuners; following standard practice (and the only faithful way
// to run them on a Pareto task), their tool-run budget is split across a
// small set of fixed weight vectors, each segment optimising one weighted
// objective; the reported front is the non-dominated set of everything
// evaluated.
package scalarize

// Directions returns k weight vectors over m objectives, spread over the
// simplex: the uniform centre first, then progressively corner-leaning
// directions. Weights sum to 1.
func Directions(m, k int) [][]float64 {
	if m < 1 || k < 1 {
		return nil
	}
	out := make([][]float64, 0, k)
	// Centre.
	c := make([]float64, m)
	for i := range c {
		c[i] = 1 / float64(m)
	}
	out = append(out, c)
	// Corner-leaning: objective j gets weight 0.7, the rest share 0.3.
	for j := 0; len(out) < k; j++ {
		w := make([]float64, m)
		lead := j % m
		for i := range w {
			if i == lead {
				w[i] = 0.7
			} else {
				w[i] = 0.3 / float64(m-1)
			}
		}
		if m == 1 {
			w[0] = 1
		}
		out = append(out, w)
	}
	return out[:k]
}

// Segment returns which direction the i-th evaluation of a budget uses when
// the budget is split evenly across k segments.
func Segment(i, budget, k int) int {
	if budget <= 0 || k <= 1 {
		return 0
	}
	seg := i * k / budget
	if seg >= k {
		seg = k - 1
	}
	return seg
}
