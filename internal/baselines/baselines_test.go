// Package baselines_test exercises the four reimplemented prior-art tuners
// on a shared synthetic problem, checking budgets, determinism, result
// sanity and the relative quality ordering the paper's tables rely on.
package baselines_test

import (
	"math"
	"math/rand"
	"testing"

	"ppatuner/internal/baselines/fist"
	"ppatuner/internal/baselines/lcbbo"
	"ppatuner/internal/baselines/pal"
	"ppatuner/internal/baselines/recsys"
	"ppatuner/internal/pareto"
)

func synthObj(x []float64) []float64 {
	f1 := x[0] + 0.25*x[1]*x[1] + 0.15*math.Sin(5*x[0]+3*x[1])
	f2 := 1 - x[0] + 0.25*(1-x[1])*(1-x[1]) + 0.15*math.Cos(4*x[0]-2*x[1])
	return []float64{f1, f2}
}

func synthPool(seed int64, n int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pool := make([][]float64, n)
	for i := range pool {
		pool[i] = []float64{rng.Float64(), rng.Float64()}
	}
	return pool
}

func evalFn(pool [][]float64) func(int) ([]float64, error) {
	return func(i int) ([]float64, error) { return synthObj(pool[i]), nil }
}

func adrsOf(t *testing.T, pool [][]float64, idx []int) float64 {
	t.Helper()
	all := make([][]float64, len(pool))
	for i := range pool {
		all[i] = synthObj(pool[i])
	}
	golden := pareto.FrontPoints(all)
	var approx [][]float64
	for _, i := range idx {
		approx = append(approx, synthObj(pool[i]))
	}
	return pareto.ADRS(golden, approx)
}

func TestPALRunsAndQuality(t *testing.T) {
	pool := synthPool(1, 120)
	res, err := pal.Run(pool, evalFn(pool), pal.Options{
		NumObjectives: 2, InitTarget: 12, MaxIter: 150,
		Rng: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ParetoIdx) == 0 {
		t.Fatal("empty Pareto set")
	}
	if res.Runs > 12+150 {
		t.Errorf("runs %d exceed budget", res.Runs)
	}
	if a := adrsOf(t, pool, res.ParetoIdx); a > 0.2 {
		t.Errorf("PAL ADRS = %g, want <= 0.2", a)
	}
}

func TestLCBBOBudgetRespected(t *testing.T) {
	pool := synthPool(3, 150)
	res, err := lcbbo.Run(pool, evalFn(pool), lcbbo.Options{
		NumObjectives: 2, Budget: 60, Rng: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 60 {
		t.Errorf("runs = %d, want exactly the 60 budget", res.Runs)
	}
	if len(res.ParetoIdx) == 0 {
		t.Fatal("empty Pareto set")
	}
	if a := adrsOf(t, pool, res.ParetoIdx); a > 0.5 {
		t.Errorf("LCB-BO ADRS = %g, want <= 0.5", a)
	}
	// The returned set must be mutually non-dominated.
	for _, i := range res.ParetoIdx {
		for _, j := range res.ParetoIdx {
			if i != j && pareto.Dominates(synthObj(pool[j]), synthObj(pool[i])) {
				t.Fatalf("returned point %d dominated by %d", i, j)
			}
		}
	}
}

func TestLCBBOBudgetLargerThanPool(t *testing.T) {
	pool := synthPool(5, 30)
	res, err := lcbbo.Run(pool, evalFn(pool), lcbbo.Options{
		NumObjectives: 2, Budget: 500, Rng: rand.New(rand.NewSource(6)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 30 {
		t.Errorf("runs = %d, want clamped to pool size 30", res.Runs)
	}
}

func TestLCBBOValidation(t *testing.T) {
	pool := synthPool(7, 10)
	if _, err := lcbbo.Run(nil, evalFn(pool), lcbbo.Options{NumObjectives: 2, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := lcbbo.Run(pool, evalFn(pool), lcbbo.Options{NumObjectives: 2}); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := lcbbo.Run(pool, evalFn(pool), lcbbo.Options{Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("zero objectives accepted")
	}
}

func TestRecsysBudgetAndQuality(t *testing.T) {
	pool := synthPool(8, 150)
	res, err := recsys.Run(pool, evalFn(pool), recsys.Options{
		NumObjectives: 2, Budget: 70, Rng: rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 70 {
		t.Errorf("runs = %d, want 70", res.Runs)
	}
	if len(res.ParetoIdx) == 0 {
		t.Fatal("empty Pareto set")
	}
	// Fixed-direction scalarisation covers the front coarsely; the
	// recommender is the weakest method in the paper, so the bar is loose.
	if a := adrsOf(t, pool, res.ParetoIdx); a > 0.6 {
		t.Errorf("recsys ADRS = %g, want <= 0.6", a)
	}
}

func TestRecsysValidation(t *testing.T) {
	pool := synthPool(10, 10)
	if _, err := recsys.Run(nil, evalFn(pool), recsys.Options{NumObjectives: 2, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := recsys.Run(pool, evalFn(pool), recsys.Options{NumObjectives: 2}); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestFISTUsesSourceImportance(t *testing.T) {
	pool := synthPool(11, 150)
	// Source data over a 5-dim space where only dims 0 and 1 matter; FIST
	// must discover that.
	srcRng := rand.New(rand.NewSource(12))
	var srcX [][]float64
	srcY := make([][]float64, 2)
	for i := 0; i < 120; i++ {
		x := []float64{srcRng.Float64(), srcRng.Float64()}
		srcX = append(srcX, x)
		y := synthObj(x)
		srcY[0] = append(srcY[0], y[0])
		srcY[1] = append(srcY[1], y[1])
	}
	res, err := fist.Run(pool, evalFn(pool), fist.Options{
		NumObjectives: 2, Budget: 70, SourceX: srcX, SourceY: srcY,
		TopFeatures: 1, Rng: rand.New(rand.NewSource(13)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 70 {
		t.Errorf("runs = %d, want 70", res.Runs)
	}
	if len(res.ParetoIdx) == 0 {
		t.Fatal("empty Pareto set")
	}
	if len(res.Importance) != 2 {
		t.Fatalf("importance dim %d", len(res.Importance))
	}
	if a := adrsOf(t, pool, res.ParetoIdx); a > 0.5 {
		t.Errorf("FIST ADRS = %g, want <= 0.5", a)
	}
}

func TestFISTWithoutSource(t *testing.T) {
	pool := synthPool(14, 100)
	res, err := fist.Run(pool, evalFn(pool), fist.Options{
		NumObjectives: 2, Budget: 50, Rng: rand.New(rand.NewSource(15)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 50 || len(res.ParetoIdx) == 0 {
		t.Fatalf("runs=%d pareto=%d", res.Runs, len(res.ParetoIdx))
	}
}

func TestFISTValidation(t *testing.T) {
	pool := synthPool(16, 10)
	if _, err := fist.Run(nil, evalFn(pool), fist.Options{NumObjectives: 2, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := fist.Run(pool, evalFn(pool), fist.Options{NumObjectives: 2}); err == nil {
		t.Error("nil rng accepted")
	}
}

// TestBaselinesDeterministic: every baseline must be reproducible for a
// fixed seed.
func TestBaselinesDeterministic(t *testing.T) {
	pool := synthPool(17, 80)
	type runner func(seed int64) []int
	runners := map[string]runner{
		"lcbbo": func(seed int64) []int {
			r, err := lcbbo.Run(pool, evalFn(pool), lcbbo.Options{NumObjectives: 2, Budget: 40, Rng: rand.New(rand.NewSource(seed))})
			if err != nil {
				t.Fatal(err)
			}
			return r.EvaluatedIdx
		},
		"recsys": func(seed int64) []int {
			r, err := recsys.Run(pool, evalFn(pool), recsys.Options{NumObjectives: 2, Budget: 40, Rng: rand.New(rand.NewSource(seed))})
			if err != nil {
				t.Fatal(err)
			}
			return r.EvaluatedIdx
		},
		"fist": func(seed int64) []int {
			r, err := fist.Run(pool, evalFn(pool), fist.Options{NumObjectives: 2, Budget: 40, Rng: rand.New(rand.NewSource(seed))})
			if err != nil {
				t.Fatal(err)
			}
			return r.EvaluatedIdx
		},
	}
	for name, run := range runners {
		a, b := run(21), run(21)
		if len(a) != len(b) {
			t.Errorf("%s: lengths differ", name)
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: evaluation order differs at %d", name, i)
				break
			}
		}
	}
}
