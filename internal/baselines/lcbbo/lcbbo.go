// Package lcbbo implements the MLCAD'19 baseline ("CAD tool design space
// exploration via Bayesian optimization"): classical Bayesian optimisation
// with the lower-confidence-bound acquisition function. Multi-objective
// handling follows the random-scalarisation recipe: each iteration draws a
// weight vector on the simplex, scores every candidate by the weighted sum
// of range-normalised per-objective LCBs, and evaluates the best. The
// returned Pareto set is the non-dominated subset of evaluated points, and
// the tool-run budget is fixed (400 on Target1 / 70 on Target2 in the
// paper's tables).
package lcbbo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ppatuner/internal/baselines/scalarize"
	"ppatuner/internal/gp"
)

// Options configures the BO baseline.
type Options struct {
	NumObjectives int
	// Budget is the total number of tool evaluations (including init).
	Budget int
	// InitTarget seeds the GPs (default max(10, Budget/10)).
	InitTarget int
	// Kappa is the LCB exploration weight μ − κσ (default 2).
	Kappa  float64
	Kernel gp.CovKind
	Rng    *rand.Rand
}

// Result reports the outcome.
type Result struct {
	ParetoIdx    []int
	EvaluatedIdx []int
	Runs         int
}

// Run executes LCB Bayesian optimisation over the candidate pool.
func Run(pool [][]float64, eval func(int) ([]float64, error), opt Options) (*Result, error) {
	if len(pool) == 0 {
		return nil, errors.New("lcbbo: empty pool")
	}
	if opt.Rng == nil {
		return nil, errors.New("lcbbo: Options.Rng is required")
	}
	if opt.NumObjectives < 1 {
		return nil, fmt.Errorf("lcbbo: NumObjectives = %d", opt.NumObjectives)
	}
	if opt.Budget <= 0 {
		opt.Budget = 400
	}
	if opt.InitTarget <= 0 {
		opt.InitTarget = opt.Budget / 10
		if opt.InitTarget < 10 {
			opt.InitTarget = 10
		}
	}
	if opt.Kappa <= 0 {
		opt.Kappa = 2
	}
	if opt.Budget > len(pool) {
		opt.Budget = len(pool)
	}

	known := map[int][]float64{}
	var evaluated []int
	observe := func(i int) error {
		y, err := eval(i)
		if err != nil {
			return fmt.Errorf("lcbbo: evaluation %d: %w", i, err)
		}
		if len(y) != opt.NumObjectives {
			return fmt.Errorf("lcbbo: evaluator returned %d objectives, want %d", len(y), opt.NumObjectives)
		}
		known[i] = y
		evaluated = append(evaluated, i)
		return nil
	}

	// Initial design.
	init := opt.InitTarget
	if init > opt.Budget {
		init = opt.Budget
	}
	for _, i := range opt.Rng.Perm(len(pool))[:init] {
		if err := observe(i); err != nil {
			return nil, err
		}
	}

	// Per-objective plain GPs.
	dim := len(pool[0])
	gps := make([]*gp.GP, opt.NumObjectives)
	for k := range gps {
		g := gp.New(opt.Kernel, dim, false)
		var xs [][]float64
		var ys []float64
		for _, i := range evaluated {
			xs = append(xs, pool[i])
			ys = append(ys, known[i][k])
		}
		if err := g.SetTarget(xs, ys); err != nil {
			return nil, err
		}
		if err := g.Fit(gp.FitOptions{MaxEvals: 120, Subsample: 120}); err != nil {
			return nil, fmt.Errorf("lcbbo: initial fit: %w", err)
		}
		if err := g.AttachPool(pool); err != nil {
			return nil, err
		}
		gps[k] = g
	}
	refitAt := map[int]bool{init + 25: true, init + 80: true, init + 200: true}

	// The original method optimises a scalar QoR; the budget is split over a
	// few fixed preference directions (see package scalarize).
	dirs := scalarize.Directions(opt.NumObjectives, 1)
	for len(evaluated) < opt.Budget {
		w := dirs[scalarize.Segment(len(evaluated)-init, opt.Budget-init, len(dirs))]
		// Per-objective normalisation from observed values.
		lo := make([]float64, opt.NumObjectives)
		hi := make([]float64, opt.NumObjectives)
		for k := range lo {
			lo[k], hi[k] = math.Inf(1), math.Inf(-1)
			for _, y := range known {
				lo[k] = math.Min(lo[k], y[k])
				hi[k] = math.Max(hi[k], y[k])
			}
			if hi[k] <= lo[k] {
				hi[k] = lo[k] + 1
			}
		}
		best, bestScore := -1, math.Inf(1)
		for i := range pool {
			if _, done := known[i]; done {
				continue
			}
			var score float64
			for k, g := range gps {
				mu, sd := g.PredictPool(i)
				lcb := (mu - opt.Kappa*sd - lo[k]) / (hi[k] - lo[k])
				score += w[k] * lcb
			}
			if score < bestScore {
				bestScore = score
				best = i
			}
		}
		if best < 0 {
			break
		}
		if err := observe(best); err != nil {
			return nil, err
		}
		for k, g := range gps {
			if err := g.AddTarget(pool[best], known[best][k]); err != nil {
				return nil, err
			}
		}
		if refitAt[len(evaluated)] {
			for _, g := range gps {
				if err := g.Fit(gp.FitOptions{MaxEvals: 120, Subsample: 120}); err != nil {
					return nil, fmt.Errorf("lcbbo: refit: %w", err)
				}
			}
		}
	}

	return &Result{
		ParetoIdx:    nonDominated(known),
		EvaluatedIdx: evaluated,
		Runs:         len(evaluated),
	}, nil
}

// nonDominated returns evaluated indices whose vectors are non-dominated.
func nonDominated(known map[int][]float64) []int {
	// Iterate sorted indices so the reported front is deterministic; map
	// order would reshuffle ParetoIdx between identically-seeded runs.
	idx := make([]int, 0, len(known))
	for i := range known {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var out []int
	for _, i := range idx {
		yi := known[i]
		dominated := false
		for _, j := range idx {
			if i == j {
				continue
			}
			if dominates(known[j], yi) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func dominates(a, b []float64) bool {
	strict := false
	for k := range a {
		if a[k] > b[k] {
			return false
		}
		if a[k] < b[k] {
			strict = true
		}
	}
	return strict
}
