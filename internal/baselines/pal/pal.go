// Package pal implements the TCAD'19 baseline ("Cross-layer optimization
// for high speed adders: a Pareto-driven machine learning approach"): a
// Pareto active-learning tuner with plain (single-task) Gaussian-process
// surrogates. It is the same uncertainty-region loop as PPATuner with the
// transfer kernel disabled — which is exactly what makes it the ablation
// point for the paper's transfer-learning claim.
package pal

import (
	"math/rand"

	"ppatuner/internal/core"
	"ppatuner/internal/gp"
)

// Options configures the PAL baseline.
type Options struct {
	NumObjectives int
	// InitTarget seeds the GP with random evaluations (default 20: without
	// historical data PAL needs a larger initial design than PPATuner).
	InitTarget int
	// MaxIter bounds tool evaluations after initialisation (default 500,
	// matching the baseline's larger run counts in the paper).
	MaxIter int
	// DeltaFrac is the relaxation coefficient (default 0.015).
	DeltaFrac float64
	Kernel    gp.CovKind
	Rng       *rand.Rand
}

// Result mirrors core.Result.
type Result = core.Result

// Run executes the PAL baseline over the candidate pool.
func Run(pool [][]float64, eval core.Evaluator, opt Options) (*Result, error) {
	if opt.InitTarget <= 0 {
		opt.InitTarget = 20
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 500
	}
	if opt.DeltaFrac <= 0 {
		opt.DeltaFrac = 0.015
	}
	tn, err := core.New(pool, eval, core.Options{
		NumObjectives: opt.NumObjectives,
		InitTarget:    opt.InitTarget,
		MaxIter:       opt.MaxIter,
		DeltaFrac:     opt.DeltaFrac,
		Kernel:        opt.Kernel,
		Rng:           opt.Rng,
		// Vanilla PAL: global longest-diameter selection, no transfer (a
		// plain GP per objective).
		GlobalSelection: true,
	})
	if err != nil {
		return nil, err
	}
	return tn.Run()
}
