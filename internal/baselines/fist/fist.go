// Package fist implements the ASPDAC'20 baseline FIST ("feature-importance
// sampling and tree-based method for automatic design flow parameter
// tuning"): gradient-boosted trees learn per-parameter importance from the
// source-design data; a model-less phase samples the target space stratified
// over the important parameters; a model-guided phase then alternates
// boosted-tree refits on the evaluated target points with
// best-predicted-candidate selection under ε exploration. The budget is
// fixed, as in the paper's tables.
package fist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ppatuner/internal/baselines/scalarize"
	"ppatuner/internal/tree"
)

// Options configures FIST.
type Options struct {
	NumObjectives int
	// Budget is the total number of tool evaluations.
	Budget int
	// ModelLessFrac is the fraction of the budget spent in the stratified
	// sampling phase (default 0.3).
	ModelLessFrac float64
	// TopFeatures is how many important parameters drive stratification
	// (default 3).
	TopFeatures int
	// SourceX/SourceY provide the historical data importance is learned
	// from; SourceY[k] is objective k. Without source data, importance is
	// learned on the fly from the model-less samples.
	SourceX [][]float64
	SourceY [][]float64
	// Epsilon is the exploration rate in the model phase (default 0.1).
	Epsilon float64
	// Retrain period in evaluations (default 10).
	Retrain int
	Rng     *rand.Rand
}

// Result reports the outcome.
type Result struct {
	ParetoIdx    []int
	EvaluatedIdx []int
	Runs         int
	// Importance is the learned per-parameter importance (diagnostics).
	Importance []float64
}

// Run executes FIST over the candidate pool.
func Run(pool [][]float64, eval func(int) ([]float64, error), opt Options) (*Result, error) {
	if len(pool) == 0 {
		return nil, errors.New("fist: empty pool")
	}
	if opt.Rng == nil {
		return nil, errors.New("fist: Options.Rng is required")
	}
	if opt.NumObjectives < 1 {
		return nil, fmt.Errorf("fist: NumObjectives = %d", opt.NumObjectives)
	}
	if opt.Budget <= 0 {
		opt.Budget = 400
	}
	if opt.Budget > len(pool) {
		opt.Budget = len(pool)
	}
	if opt.ModelLessFrac <= 0 || opt.ModelLessFrac >= 1 {
		opt.ModelLessFrac = 0.3
	}
	if opt.TopFeatures <= 0 {
		opt.TopFeatures = 3
	}
	if opt.Epsilon <= 0 {
		opt.Epsilon = 0.1
	}
	if opt.Retrain <= 0 {
		opt.Retrain = 10
	}
	dim := len(pool[0])

	known := map[int][]float64{}
	var evaluated []int
	observe := func(i int) error {
		y, err := eval(i)
		if err != nil {
			return fmt.Errorf("fist: evaluation %d: %w", i, err)
		}
		if len(y) != opt.NumObjectives {
			return fmt.Errorf("fist: evaluator returned %d objectives, want %d", len(y), opt.NumObjectives)
		}
		known[i] = y
		evaluated = append(evaluated, i)
		return nil
	}

	// Feature importance from source data (averaged over objectives).
	importance := make([]float64, dim)
	haveImportance := false
	if len(opt.SourceX) > 0 && len(opt.SourceY) == opt.NumObjectives {
		for k := 0; k < opt.NumObjectives; k++ {
			b, err := tree.FitBoost(opt.SourceX, opt.SourceY[k], tree.BoostOptions{Rounds: 40})
			if err != nil {
				return nil, fmt.Errorf("fist: source importance: %w", err)
			}
			for f, v := range b.Importance() {
				importance[f] += v / float64(opt.NumObjectives)
			}
		}
		haveImportance = true
	}

	// Model-less phase: stratified sampling over the important parameters.
	mlBudget := int(opt.ModelLessFrac * float64(opt.Budget))
	if mlBudget < 5 {
		mlBudget = 5
	}
	if mlBudget > opt.Budget {
		mlBudget = opt.Budget
	}
	topDims := topK(importance, opt.TopFeatures)
	if !haveImportance {
		// No prior: treat the first TopFeatures dims uniformly; importance
		// is learned after the phase.
		topDims = topDims[:0]
		for f := 0; f < dim && f < opt.TopFeatures; f++ {
			topDims = append(topDims, f)
		}
	}
	strata := map[uint64][]int{}
	for i, x := range pool {
		strata[strataKey(x, topDims)] = append(strata[strataKey(x, topDims)], i)
	}
	keys := make([]uint64, 0, len(strata))
	for k := range strata {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	opt.Rng.Shuffle(len(keys), func(a, b int) { keys[a], keys[b] = keys[b], keys[a] })
	for _, k := range keys {
		if len(evaluated) >= mlBudget {
			break
		}
		members := strata[k]
		if err := observe(members[opt.Rng.Intn(len(members))]); err != nil {
			return nil, err
		}
	}
	// Fill any remainder randomly.
	for len(evaluated) < mlBudget {
		i := opt.Rng.Intn(len(pool))
		if _, done := known[i]; !done {
			if err := observe(i); err != nil {
				return nil, err
			}
		}
	}

	// Model phase: boosted trees on target data, exploit best predictions.
	models := make([]*tree.Boost, opt.NumObjectives)
	refit := func() error {
		var xs [][]float64
		yss := make([][]float64, opt.NumObjectives)
		for _, i := range evaluated {
			xs = append(xs, pool[i])
			for k := 0; k < opt.NumObjectives; k++ {
				yss[k] = append(yss[k], known[i][k])
			}
		}
		for k := range models {
			b, err := tree.FitBoost(xs, yss[k], tree.BoostOptions{Rounds: 60})
			if err != nil {
				return err
			}
			models[k] = b
		}
		if !haveImportance {
			for f := range importance {
				importance[f] = 0
			}
			for _, b := range models {
				for f, v := range b.Importance() {
					importance[f] += v / float64(opt.NumObjectives)
				}
			}
			haveImportance = true
		}
		return nil
	}
	if err := refit(); err != nil {
		return nil, err
	}
	dirs := scalarize.Directions(opt.NumObjectives, 1)
	sinceTrain := 0
	for len(evaluated) < opt.Budget {
		pick := -1
		if opt.Rng.Float64() < opt.Epsilon {
			perm := opt.Rng.Perm(len(pool))
			for _, i := range perm {
				if _, done := known[i]; !done {
					pick = i
					break
				}
			}
		} else {
			// Scalarised exploitation along the current fixed preference
			// direction (FIST optimises a scalar QoR), normalised by the
			// observed objective ranges.
			w := dirs[scalarize.Segment(len(evaluated)-mlBudget, opt.Budget-mlBudget, len(dirs))]
			lo := make([]float64, opt.NumObjectives)
			hi := make([]float64, opt.NumObjectives)
			for k := range lo {
				lo[k], hi[k] = math.Inf(1), math.Inf(-1)
				for _, y := range known {
					lo[k] = math.Min(lo[k], y[k])
					hi[k] = math.Max(hi[k], y[k])
				}
				if hi[k] <= lo[k] {
					hi[k] = lo[k] + 1
				}
			}
			best := math.Inf(1)
			for i := range pool {
				if _, done := known[i]; done {
					continue
				}
				var score float64
				for k := range w {
					score += w[k] * (models[k].Predict(pool[i]) - lo[k]) / (hi[k] - lo[k])
				}
				if score < best {
					best = score
					pick = i
				}
			}
		}
		if pick < 0 {
			break
		}
		if err := observe(pick); err != nil {
			return nil, err
		}
		sinceTrain++
		if sinceTrain >= opt.Retrain {
			if err := refit(); err != nil {
				return nil, err
			}
			sinceTrain = 0
		}
	}

	return &Result{
		ParetoIdx:    nonDominated(known),
		EvaluatedIdx: evaluated,
		Runs:         len(evaluated),
		Importance:   importance,
	}, nil
}

// strataKey buckets the important dims of x into a compact key (4 levels
// per dim).
func strataKey(x []float64, dims []int) uint64 {
	var key uint64
	for _, d := range dims {
		b := int(x[d] * 4)
		if b > 3 {
			b = 3
		}
		if b < 0 {
			b = 0
		}
		key = key<<2 | uint64(b)
	}
	return key
}

// topK returns the indices of the k largest values.
func topK(v []float64, k int) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out
}

func nonDominated(known map[int][]float64) []int {
	// Iterate sorted indices so the reported front is deterministic; map
	// order would reshuffle ParetoIdx between identically-seeded runs.
	idx := make([]int, 0, len(known))
	for i := range known {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	var out []int
	for _, i := range idx {
		yi := known[i]
		dominated := false
		for _, j := range idx {
			if i != j && dominates(known[j], yi) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func dominates(a, b []float64) bool {
	strict := false
	for k := range a {
		if a[k] > b[k] {
			return false
		}
		if a[k] < b[k] {
			strict = true
		}
	}
	return strict
}
