package gp

import (
	"fmt"
	"strconv"
	"strings"
)

// Model is the surrogate surface the tuner programs against: the exact
// transfer GP (*GP) and the inducing-point approximation (*SparseGP) both
// implement it, so internal/core, the evaluation harness, and the shard
// workers switch implementations via a Spec without any call-site churn.
type Model interface {
	// Data installation (SetSource enables the transfer kernel).
	SetSource(x [][]float64, y []float64) error
	SetTarget(x [][]float64, y []float64) error
	// Capacity and concurrency hints.
	ReserveAdds(n int)
	SetWorkers(n int)
	// Posterior lifecycle.
	Fit(opts FitOptions) error
	Rebuild() error
	AddTarget(x []float64, y float64) error
	// Pool-based prediction.
	AttachPool(pool [][]float64) error
	PredictPool(p int) (mu, sd float64)
	Predict(x []float64) (mu, sd float64)
	// Diagnostics.
	NLML() float64
	Rho() float64
	Cov() *Cov
	Noise() (noiseT, noiseS float64)
	N() int
	NTarget() int
}

var (
	_ Model = (*GP)(nil)
	_ Model = (*SparseGP)(nil)
)

// DefaultSparseM is the inducing budget used when a spec string says
// "sparse" without a count. 64 points cover the paper's 8-dimensional
// spaces well (campaign fronts are statistically indistinguishable from
// exact) while keeping every refit O(n·64²).
const DefaultSparseM = 64

// Spec selects and configures a surrogate implementation. The zero value is
// the exact GP, so existing construction sites keep their behaviour.
type Spec struct {
	// Sparse selects the inducing-point approximation (SparseGP).
	Sparse bool
	// M is the inducing-point budget (sparse only; 0 means DefaultSparseM).
	M int
	// Seed drives the deterministic inducing-point selection (sparse only).
	// Callers inside a tuning run draw it from the run's seeded RNG stream,
	// so campaign results stay byte-reproducible.
	Seed uint64
}

// ParseSpec parses the -gp command-line syntax: "exact" (or "") for the
// exact GP, "sparse" or "sparse:<m>" for the inducing-point approximation
// with budget m.
func ParseSpec(s string) (Spec, error) {
	switch s {
	case "", "exact":
		return Spec{}, nil
	case "sparse":
		return Spec{Sparse: true, M: DefaultSparseM}, nil
	}
	if rest, ok := strings.CutPrefix(s, "sparse:"); ok {
		m, err := strconv.Atoi(rest)
		if err != nil || m < 1 {
			return Spec{}, fmt.Errorf("gp: bad inducing budget %q in spec %q (want sparse:<m>, m ≥ 1)", rest, s)
		}
		return Spec{Sparse: true, M: m}, nil
	}
	return Spec{}, fmt.Errorf("gp: unknown surrogate spec %q (want exact or sparse:<m>)", s)
}

// String renders the spec in ParseSpec syntax (Seed is runtime state, not
// part of the syntax).
func (s Spec) String() string {
	if !s.Sparse {
		return "exact"
	}
	m := s.M
	if m <= 0 {
		m = DefaultSparseM
	}
	return fmt.Sprintf("sparse:%d", m)
}

// New constructs the surrogate the spec describes.
func (s Spec) New(kind CovKind, dim int, ard bool) Model {
	if !s.Sparse {
		return New(kind, dim, ard)
	}
	m := s.M
	if m <= 0 {
		m = DefaultSparseM
	}
	return NewSparse(kind, dim, ard, m, s.Seed)
}
