// Package gp implements the Gaussian-process machinery of the paper:
// stationary covariance functions, exact GP regression with marginal-
// likelihood hyper-parameter fitting, and the transfer Gaussian process of
// Section 3.1 whose kernel couples a source task and a target task through
// the Gamma-integrated dissimilarity factor of Eq. (7).
//
// The package is built for pool-based active learning: posteriors support
// appending one training point at a time (incremental Cholesky) and keep the
// per-candidate solve vectors cached, so a PAL iteration over a pool of M
// candidates costs O(N·M) instead of O(M·N²).
package gp

import (
	"fmt"
	"math"
)

// CovKind selects the stationary covariance family.
type CovKind int

const (
	// RBF is the squared-exponential kernel exp(-r²/2).
	RBF CovKind = iota
	// Matern52 is the Matérn ν=5/2 kernel.
	Matern52
)

func (k CovKind) String() string {
	switch k {
	case RBF:
		return "rbf"
	case Matern52:
		return "matern52"
	default:
		return fmt.Sprintf("CovKind(%d)", int(k))
	}
}

// Cov is a stationary covariance function with signal variance Var and
// per-dimension lengthscales Len (ARD). A single-element Len is applied
// isotropically to all dimensions.
type Cov struct {
	Kind CovKind
	Var  float64
	Len  []float64
}

// NewCov returns a Cov with unit variance and unit lengthscales.
func NewCov(kind CovKind, dim int, ard bool) *Cov {
	n := 1
	if ard {
		n = dim
	}
	l := make([]float64, n)
	for i := range l {
		l[i] = 1
	}
	return &Cov{Kind: kind, Var: 1, Len: l}
}

// Clone deep-copies the covariance.
func (c *Cov) Clone() *Cov {
	return &Cov{Kind: c.Kind, Var: c.Var, Len: append([]float64(nil), c.Len...)}
}

// r2 returns the squared scaled distance Σ ((x_i-y_i)/ℓ_i)².
func (c *Cov) r2(x, y []float64) float64 {
	var s float64
	if len(c.Len) == 1 {
		inv := 1 / c.Len[0]
		for i := range x {
			d := (x[i] - y[i]) * inv
			s += d * d
		}
		return s
	}
	for i := range x {
		d := (x[i] - y[i]) / c.Len[i]
		s += d * d
	}
	return s
}

// Eval returns k(x, y).
func (c *Cov) Eval(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("gp: Eval dim mismatch %d vs %d", len(x), len(y)))
	}
	return c.EvalR2(c.r2(x, y))
}

// EvalR2 returns the kernel value for a precomputed squared scaled distance
// r² = Σ ((x_i-y_i)/ℓ_i)². It is the scalar-transform half of Eval used by
// the fit workspace, which caches pairwise distances across NLML evaluations.
func (c *Cov) EvalR2(r2 float64) float64 {
	switch c.Kind {
	case RBF:
		return c.Var * math.Exp(-0.5*r2)
	case Matern52:
		s5r := math.Sqrt(5) * math.Sqrt(r2)
		return c.Var * (1 + s5r + 5.0/3.0*r2) * math.Exp(-s5r)
	default:
		panic("gp: unknown covariance kind")
	}
}

// hyper packs the covariance hyper-parameters as log-values for unconstrained
// optimisation: [log Var, log Len...].
func (c *Cov) hyper() []float64 {
	h := make([]float64, 0, 1+len(c.Len))
	h = append(h, math.Log(c.Var))
	for _, l := range c.Len {
		h = append(h, math.Log(l))
	}
	return h
}

// setHyper unpacks hyper(); the inverse of hyper.
func (c *Cov) setHyper(h []float64) {
	if len(h) != 1+len(c.Len) {
		panic(fmt.Sprintf("gp: setHyper got %d values, want %d", len(h), 1+len(c.Len)))
	}
	c.Var = math.Exp(h[0])
	for i := range c.Len {
		c.Len[i] = math.Exp(h[1+i])
	}
}

// TransferFactor returns the cross-task correlation coefficient of Eq. (7):
// E[2e^{-φ} - 1] with φ ~ Γ(shape b, scale a), i.e. 2(1/(1+a))^b − 1.
// It lies in (-1, 1]: a→0 or b→0 gives 1 (identical tasks); large a·b gives
// values approaching −1 (anti-correlated tasks).
func TransferFactor(a, b float64) float64 {
	if a < 0 || b < 0 {
		panic(fmt.Sprintf("gp: TransferFactor(a=%g, b=%g) requires non-negative Gamma parameters", a, b))
	}
	return 2*math.Pow(1/(1+a), b) - 1
}
