package gp

import (
	"errors"
	"fmt"
	"math"

	"ppatuner/internal/mat"
	"ppatuner/internal/par"
)

// GP is an exact Gaussian-process regressor over one QoR metric, optionally
// coupling a fixed source-task dataset with a growing target-task dataset
// through the transfer kernel of Eq. (5)–(7):
//
//	K̃(x_n, x_m) = k(x_n, x_m) · (2(1/(1+a))^b − 1)   across tasks,
//	K̃(x_n, x_m) = k(x_n, x_m)                         within a task,
//
// with heteroscedastic task noise Λ = diag(βs⁻¹ I_N, βt⁻¹ I_M) as in
// Eq. (8). A GP without source data degenerates to a standard GP — that is
// exactly the surrogate of the TCAD'19 baseline.
type GP struct {
	cov            *Cov
	noiseT, noiseS float64 // βt⁻¹ and βs⁻¹ (variances)
	a, b           float64 // Gamma dissimilarity parameters of Eq. (6)

	dim       int
	hasSource bool

	xs [][]float64 // source inputs (fixed after SetSource)
	ys []float64   // raw source outputs
	xt [][]float64 // target inputs (grow during tuning)
	yt []float64   // raw target outputs

	// Per-task output standardisation: a systematic offset or scale gap
	// between the tasks (a larger design burns more power everywhere) would
	// otherwise masquerade as task dissimilarity and destroy the cross-task
	// correlation the transfer kernel needs. Each task is z-scored with its
	// own constants; the kernel then correlates response *shapes*.
	yMeanS, yStdS float64
	yMeanT, yStdT float64

	chol  *mat.Cholesky
	alpha []float64

	pool    [][]float64
	poolK   [][]float64 // poolK[p][i] = k̃(x_i, pool_p)
	poolV   [][]float64 // poolV[p]    = L⁻¹ poolK[p]
	poolKpp []float64   // prior variance k(p,p) + βt⁻¹

	// Reused buffers: the packed Gram workspace and standardised-output /
	// Extend-row scratch. They make Rebuild and AddTarget allocation-free
	// once warm (the pool caches above are persistent state, not scratch).
	gramBuf []float64
	yBuf    []float64
	rowBuf  []float64

	// growth is the expected number of future AddTarget calls; Rebuild and
	// the pool cache size their backing arrays for it so a whole campaign of
	// incremental adds appends without reallocating (ReserveAdds).
	growth int
	// workers bounds the goroutines used for pool-cache rebuilds
	// (SetWorkers); <=1 keeps everything on the calling goroutine.
	workers int
}

// ReserveAdds declares how many future AddTarget observations the posterior
// should make room for. The next Rebuild (and every pool-cache build) then
// preallocates Cholesky and per-candidate cache capacity so the incremental
// updates of a whole tuning campaign append in place.
func (g *GP) ReserveAdds(n int) {
	if n > 0 {
		g.growth = n
	}
}

// SetWorkers bounds the worker goroutines used when rebuilding the pool
// cache. Results are applied per candidate, so any worker count produces
// bit-identical caches; n <= 1 (the default) stays fully sequential.
func (g *GP) SetWorkers(n int) { g.workers = n }

// New returns a GP over dim-dimensional inputs with the given covariance
// family. ard selects per-dimension lengthscales.
func New(kind CovKind, dim int, ard bool) *GP {
	return &GP{
		cov:    NewCov(kind, dim, ard),
		noiseT: 1e-4,
		noiseS: 1e-4,
		a:      0.1,
		b:      1.0,
		dim:    dim,
		yStdS:  1,
		yStdT:  1,
	}
}

// SetSource installs the source-task dataset (historical configurations and
// their QoR values). Must be called before Fit; enables the transfer kernel.
func (g *GP) SetSource(x [][]float64, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("gp: source has %d inputs, %d outputs", len(x), len(y))
	}
	for _, xi := range x {
		if len(xi) != g.dim {
			return fmt.Errorf("gp: source input dim %d, want %d", len(xi), g.dim)
		}
	}
	g.xs = x
	g.ys = y
	g.hasSource = len(x) > 0
	return nil
}

// SetTarget installs the initial target-task observations.
func (g *GP) SetTarget(x [][]float64, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("gp: target has %d inputs, %d outputs", len(x), len(y))
	}
	for _, xi := range x {
		if len(xi) != g.dim {
			return fmt.Errorf("gp: target input dim %d, want %d", len(xi), g.dim)
		}
	}
	g.xt = append([][]float64(nil), x...)
	g.yt = append([]float64(nil), y...)
	return nil
}

// Rho returns the current cross-task correlation factor of Eq. (7).
func (g *GP) Rho() float64 {
	if !g.hasSource {
		return 1
	}
	return TransferFactor(g.a, g.b)
}

// Cov returns the covariance function (for inspection in tests/ablations).
func (g *GP) Cov() *Cov { return g.cov }

// Noise returns the target and source noise variances (βt⁻¹, βs⁻¹).
func (g *GP) Noise() (noiseT, noiseS float64) { return g.noiseT, g.noiseS }

// N returns the current number of training points (source + target).
func (g *GP) N() int { return len(g.xs) + len(g.xt) }

// NTarget returns the number of target-task training points.
func (g *GP) NTarget() int { return len(g.xt) }

// trainX returns training input i in source-then-target order, plus whether
// it belongs to the source task.
func (g *GP) trainX(i int) ([]float64, bool) {
	if i < len(g.xs) {
		return g.xs[i], true
	}
	return g.xt[i-len(g.xs)], false
}

// ktrain evaluates the transfer kernel between training points i and j.
func (g *GP) ktrain(i, j int) float64 {
	xi, si := g.trainX(i)
	xj, sj := g.trainX(j)
	v := g.cov.Eval(xi, xj)
	if si != sj {
		v *= g.Rho()
	}
	return v
}

// kvecTarget evaluates k̃(x, x_i) for a *target-task* test point against all
// training points, writing into dst (len N).
func (g *GP) kvecTarget(x []float64, dst []float64) {
	g.kvecInto(x, dst, g.Rho())
}

// kvecInto is kvecTarget with the cross-task factor hoisted by the caller,
// so sweeps over many test points pay TransferFactor's math.Pow once.
func (g *GP) kvecInto(x []float64, dst []float64, rho float64) {
	for i, xi := range g.xs {
		dst[i] = rho * g.cov.Eval(x, xi)
	}
	off := len(g.xs)
	for i, xi := range g.xt {
		dst[off+i] = g.cov.Eval(x, xi)
	}
}

// standardise recomputes the per-task output normalisation constants.
func (g *GP) standardise() {
	g.yMeanS, g.yStdS = meanStd(g.ys)
	g.yMeanT, g.yStdT = meanStd(g.yt)
	// With very few target observations the target scale estimate is
	// unreliable; borrow the source scale, which describes the same kind of
	// quantity.
	if len(g.yt) < 4 && len(g.ys) >= 4 {
		g.yStdT = g.yStdS
	}
}

func meanStd(y []float64) (mean, std float64) {
	if len(y) == 0 {
		return 0, 1
	}
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(y)))
	if std < 1e-12 {
		std = 1
	}
	return mean, std
}

// yStdAll returns all outputs in training order, standardised per task.
func (g *GP) yStdAll() []float64 {
	return g.yStdInto(nil)
}

// yStdInto is yStdAll writing into buf, which is grown (with ReserveAdds
// headroom) only when too small.
func (g *GP) yStdInto(buf []float64) []float64 {
	n := g.N()
	if cap(buf) < n {
		buf = make([]float64, n, n+g.growth)
	} else {
		buf = buf[:n]
	}
	i := 0
	for _, y := range g.ys {
		buf[i] = (y - g.yMeanS) / g.yStdS
		i++
	}
	for _, y := range g.yt {
		buf[i] = (y - g.yMeanT) / g.yStdT
		i++
	}
	return buf
}

// gram builds the full noisy Gram matrix K̃ + Λ for the current data and
// hyper-parameters.
func (g *GP) gram() *mat.Matrix {
	n := g.N()
	k := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.ktrain(i, j)
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
		if i < len(g.xs) {
			k.Data[i*n+i] += g.noiseS
		} else {
			k.Data[i*n+i] += g.noiseT
		}
		k.Data[i*n+i] += 1e-8 // numerical jitter
	}
	return k
}

// fillGramPacked writes the packed lower triangle of the full noisy Gram
// matrix K̃ + Λ into dst (length mat.PackedLen(N)), with the cross-task
// factor ρ hoisted out of the pair loop.
func (g *GP) fillGramPacked(dst []float64) {
	n := g.N()
	rho := g.Rho()
	idx := 0
	for i := 0; i < n; i++ {
		xi, si := g.trainX(i)
		for j := 0; j <= i; j++ {
			xj, sj := g.trainX(j)
			v := g.cov.Eval(xi, xj)
			if si != sj {
				v *= rho
			}
			dst[idx] = v
			idx++
		}
		if si {
			dst[idx-1] += g.noiseS
		} else {
			dst[idx-1] += g.noiseT
		}
		dst[idx-1] += 1e-8 // numerical jitter
	}
}

// Rebuild refactorises the posterior from scratch for the current data and
// hyper-parameters, and recomputes the pool cache if a pool is attached.
// All posterior buffers (packed Gram, Cholesky, alpha) are reused, with
// ReserveAdds headroom so the incremental updates that follow append in
// place.
func (g *GP) Rebuild() error {
	n := g.N()
	if n == 0 {
		return errors.New("gp: no training data")
	}
	g.standardise()
	np := mat.PackedLen(n)
	if cap(g.gramBuf) < np {
		g.gramBuf = make([]float64, np, mat.PackedLen(n+g.growth))
	}
	g.gramBuf = g.gramBuf[:np]
	g.fillGramPacked(g.gramBuf)
	if g.chol == nil {
		g.chol = &mat.Cholesky{}
	}
	g.chol.Reserve(n + g.growth)
	if err := g.chol.FactorizePacked(g.gramBuf, n, 1e-8, 8); err != nil {
		return fmt.Errorf("gp: posterior factorisation: %w", err)
	}
	g.yBuf = g.yStdInto(g.yBuf)
	if cap(g.alpha) < n {
		g.alpha = make([]float64, n, n+g.growth)
	}
	g.alpha = g.alpha[:n]
	g.chol.SolveInto(g.alpha, g.yBuf)
	if g.pool != nil {
		g.rebuildPool()
	}
	return nil
}

// AddTarget appends one target-task observation and updates the posterior
// and pool cache incrementally.
func (g *GP) AddTarget(x []float64, y float64) error {
	if len(x) != g.dim {
		return fmt.Errorf("gp: AddTarget input dim %d, want %d", len(x), g.dim)
	}
	if g.chol == nil {
		g.xt = append(g.xt, x)
		g.yt = append(g.yt, y)
		return g.Rebuild()
	}
	n := g.N()
	if cap(g.rowBuf) < n+1 {
		g.rowBuf = make([]float64, n+1, n+1+g.growth)
	}
	row := g.rowBuf[:n+1]
	g.kvecInto(x, row[:n], g.Rho())
	row[n] = g.cov.Eval(x, x) + g.noiseT + 1e-8
	if err := g.chol.Extend([][]float64{row}); err != nil {
		// Degenerate extension (e.g. duplicate point): fall back to a full
		// rebuild with stronger jitter.
		g.xt = append(g.xt, x)
		g.yt = append(g.yt, y)
		g.chol = nil
		return g.Rebuild()
	}
	g.xt = append(g.xt, x)
	g.yt = append(g.yt, y)
	g.yBuf = append(g.yBuf, (y-g.yMeanT)/g.yStdT)
	if cap(g.alpha) < n+1 {
		g.alpha = make([]float64, n+1, n+1+g.growth)
	}
	g.alpha = g.alpha[:n+1]
	g.chol.SolveInto(g.alpha, g.yBuf)

	// Extend the pool cache with one entry per candidate. AttachPool sized
	// the per-candidate columns with ReserveAdds headroom, so these appends
	// stay in place for a whole campaign.
	if g.pool != nil {
		ln := g.chol.LRow(n)
		for p, xp := range g.pool {
			kp := g.cov.Eval(x, xp)
			g.poolK[p] = append(g.poolK[p], kp)
			vp := g.poolV[p]
			v := kp - mat.Dot(ln[:n], vp)
			g.poolV[p] = append(vp, v/ln[n])
		}
	}
	return nil
}

// AttachPool installs the candidate pool (target-task points, normalised
// coordinates) whose posterior will be queried repeatedly. Must be called
// after the posterior exists (Fit or Rebuild).
func (g *GP) AttachPool(pool [][]float64) error {
	if g.chol == nil {
		return errors.New("gp: AttachPool before Rebuild/Fit")
	}
	for _, p := range pool {
		if len(p) != g.dim {
			return fmt.Errorf("gp: pool point dim %d, want %d", len(p), g.dim)
		}
	}
	g.pool = pool
	g.rebuildPool()
	return nil
}

// rebuildPool recomputes the per-candidate kernel columns and solve vectors.
// Candidates are sharded across SetWorkers goroutines; every worker writes
// only its own candidates' slots and the per-candidate arithmetic is
// identical in any sharding, so the cache is bit-identical for any worker
// count. Existing per-candidate buffers are reused when the training size
// still fits (a refit at constant N allocates nothing).
func (g *GP) rebuildPool() {
	n := g.N()
	m := len(g.pool)
	if len(g.poolK) != m {
		g.poolK = make([][]float64, m)
		g.poolV = make([][]float64, m)
		g.poolKpp = make([]float64, m)
	}
	rho := g.Rho()
	par.Do(g.workers, m, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			xp := g.pool[p]
			col := g.poolK[p]
			if cap(col) < n {
				col = make([]float64, n, n+g.growth)
			}
			col = col[:n]
			g.kvecInto(xp, col, rho)
			g.poolK[p] = col
			v := g.poolV[p]
			if cap(v) < n {
				v = make([]float64, n, n+g.growth)
			}
			v = v[:n]
			g.chol.SolveLInto(v, col)
			g.poolV[p] = v
			g.poolKpp[p] = g.cov.Eval(xp, xp) + g.noiseT
		}
	})
}

// PredictPool returns the posterior mean and standard deviation (in raw
// output units) for pool candidate p, per Eq. (8).
func (g *GP) PredictPool(p int) (mu, sd float64) {
	kp := g.poolK[p]
	vp := g.poolV[p]
	muStd := mat.Dot(g.alpha, kp)
	varStd := g.poolKpp[p] - mat.Dot(vp, vp)
	if varStd < 1e-12 {
		varStd = 1e-12
	}
	return g.yMeanT + g.yStdT*muStd, g.yStdT * math.Sqrt(varStd)
}

// Predict returns the posterior mean and standard deviation for an arbitrary
// target-task point (raw units).
func (g *GP) Predict(x []float64) (mu, sd float64) {
	if g.chol == nil {
		panic("gp: Predict before Rebuild/Fit")
	}
	n := g.N()
	kv := make([]float64, n)
	g.kvecTarget(x, kv)
	muStd := mat.Dot(g.alpha, kv)
	v := g.chol.SolveL(kv)
	varStd := g.cov.Eval(x, x) + g.noiseT - mat.Dot(v, v)
	if varStd < 1e-12 {
		varStd = 1e-12
	}
	return g.yMeanT + g.yStdT*muStd, g.yStdT * math.Sqrt(varStd)
}

// NLML returns the negative log marginal likelihood of the standardised data
// under the current hyper-parameters (lower is better). Used by Fit and
// exposed for tests and diagnostics.
func (g *GP) NLML() float64 {
	n := g.N()
	if n == 0 {
		return math.Inf(1)
	}
	return newFitWS(g).nlml(g)
}

// FitOptions bounds the hyper-parameter search.
type FitOptions struct {
	// MaxEvals caps Nelder–Mead objective evaluations (default 240).
	MaxEvals int
	// FixTransfer keeps (a, b) at their current values instead of fitting
	// them (ablation hook).
	FixTransfer bool
	// Subsample caps the number of training points entering each marginal-
	// likelihood evaluation (0 = use all). Large active-learning loops use
	// this: each NLML evaluation is O(n³), so fitting on a deterministic
	// stride subsample keeps refits cheap while the full posterior still
	// uses every point.
	Subsample int
}

// subsampled returns a copy of g whose data is a deterministic stride
// subsample of at most n points, split proportionally between tasks.
func (g *GP) subsampled(n int) *GP {
	total := g.N()
	if n <= 0 || total <= n {
		return g
	}
	sub := New(g.cov.Kind, g.dim, len(g.cov.Len) > 1)
	sub.cov = g.cov // share: Fit mutates these in place
	sub.noiseT, sub.noiseS = g.noiseT, g.noiseS
	sub.a, sub.b = g.a, g.b
	take := func(x [][]float64, y []float64, k int) ([][]float64, []float64) {
		if k >= len(x) {
			return x, y
		}
		xs := make([][]float64, 0, k)
		ys := make([]float64, 0, k)
		stride := float64(len(x)) / float64(k)
		for i := 0; i < k; i++ {
			j := int(float64(i) * stride)
			xs = append(xs, x[j])
			ys = append(ys, y[j])
		}
		return xs, ys
	}
	ns := n * len(g.xs) / total
	if g.hasSource && ns < 1 {
		ns = 1 // keep the task structure so the packed hyper layout matches
	}
	nt := n - ns
	sub.xs, sub.ys = take(g.xs, g.ys, ns)
	sub.xt, sub.yt = take(g.xt, g.yt, nt)
	sub.hasSource = len(sub.xs) > 0
	return sub
}

// Fit maximises the marginal likelihood over the covariance hyper-parameters,
// the task noises and (when source data is present) the transfer Gamma
// parameters, then rebuilds the posterior.
func (g *GP) Fit(opts FitOptions) error {
	if g.N() == 0 {
		return errors.New("gp: no training data")
	}
	if opts.MaxEvals <= 0 {
		opts.MaxEvals = 240
	}
	g.standardise()

	fitTransfer := g.hasSource && !opts.FixTransfer
	// NLML is evaluated on a subsample when the training set is large; the
	// winning hyper-parameters are copied back to g before the full rebuild.
	work := g.subsampled(opts.Subsample)
	work.standardise()
	// The workspace caches pairwise distances and standardised outputs once;
	// every Nelder–Mead evaluation below is then a scalar transform plus one
	// packed factorisation into reused buffers.
	ws := newFitWS(work)
	pack := func() []float64 {
		h := g.cov.hyper()
		h = append(h, math.Log(g.noiseT))
		if g.hasSource {
			h = append(h, math.Log(g.noiseS))
		}
		if fitTransfer {
			h = append(h, math.Log(g.a), math.Log(g.b))
		}
		return h
	}
	unpackInto := func(t *GP, h []float64) {
		nc := 1 + len(t.cov.Len)
		t.cov.setHyper(h[:nc])
		i := nc
		// The outputs are standardised, so 1e-4 is a 1%-of-σ noise floor: it
		// keeps the posterior honest when few points make "noise-free" fits
		// look attractive.
		t.noiseT = clampExp(h[i], 1e-4, 1e2)
		i++
		if t.hasSource {
			t.noiseS = clampExp(h[i], 1e-4, 1e2)
			i++
		}
		if fitTransfer {
			t.a = clampExp(h[i], 1e-4, 1e3)
			t.b = clampExp(h[i+1], 1e-4, 1e3)
		}
	}
	obj := func(h []float64) float64 {
		unpackInto(work, h)
		if work.cov.Var > 1e4 || work.cov.Var < 1e-6 {
			return math.Inf(1)
		}
		// Inputs live in the normalised [0,1]^d parameter space, so
		// lengthscales far outside it are degenerate extrapolators.
		for _, l := range work.cov.Len {
			if l > 8 || l < 0.02 {
				return math.Inf(1)
			}
		}
		// Weak log-normal priors guard against the overconfident optima
		// (huge variance, tiny noise) that small active-learning training
		// sets invite; they barely move well-identified fits.
		penalty := 0.0
		for _, l := range work.cov.Len {
			d := (math.Log(l) - math.Log(0.7)) / 1.2
			penalty += 0.5 * d * d
		}
		dv := math.Log(work.cov.Var) / 2.0
		penalty += 0.5 * dv * dv
		return ws.nlml(work) + penalty
	}
	// Multi-start: the marginal-likelihood surface is shallow along the
	// transfer-dissimilarity direction, so a single simplex run can stall
	// with a mediocre rho. Restart from the current parameters and from a
	// "tasks are similar" initialisation, keep the best.
	starts := [][]float64{pack()}
	if fitTransfer {
		saveA, saveB := g.a, g.b
		g.a, g.b = 0.01, 1
		starts = append(starts, pack())
		g.a, g.b = saveA, saveB
	}
	// Reserve part of the budget to re-run the simplex from the best point
	// found: a restart re-inflates the collapsed simplex and reliably walks
	// the remaining shallow directions (noise, dissimilarity).
	per := opts.MaxEvals / (len(starts) + 1)
	bestV := math.Inf(1)
	var best []float64
	for _, s := range starts {
		x, v := NelderMead(obj, s, 0.5, per)
		if v < bestV {
			bestV = v
			best = x
		}
	}
	if x, v := NelderMead(obj, best, 0.25, opts.MaxEvals-per*len(starts)); v < bestV {
		best = x
	}
	unpackInto(g, best)
	return g.Rebuild()
}

func clampExp(logv, lo, hi float64) float64 {
	v := math.Exp(logv)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
