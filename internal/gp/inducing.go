package gp

import "fmt"

// SelectInducing picks m inducing points from x by farthest-point traversal
// on the ARD-scaled metric d²(p, q) = Σ_k ((p_k−q_k)/ℓ_k)²: the walk starts
// at index seed mod len(x) and greedily adds the point farthest from the
// already-selected set (ties broken toward the lowest index). The result is
// the classic 2-approximation of the k-center cover, so the inducing set
// spans the design space under the same geometry the kernel uses.
//
// The returned indices are in selection order. Everything is a pure
// function of (x, lens, m, seed) — no RNG draws beyond the caller-provided
// seed — so sparse posteriors are byte-reproducible; seeds come from the
// campaign PCG stream.
//
// lens must have either one entry (isotropic) or len(x[i]) entries (ARD).
// An error is returned for an empty x, a non-positive or oversized m, or a
// lengthscale vector that matches neither form.
func SelectInducing(x [][]float64, lens []float64, m int, seed uint64) ([]int, error) {
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("gp: SelectInducing on empty point set")
	}
	if m <= 0 || m > n {
		return nil, fmt.Errorf("gp: SelectInducing budget m=%d out of range (have %d points)", m, n)
	}
	d := len(x[0])
	if len(lens) != 1 && len(lens) != d {
		return nil, fmt.Errorf("gp: SelectInducing got %d lengthscales for %d dimensions", len(lens), d)
	}
	inv2 := make([]float64, d)
	for k := range inv2 {
		l := lens[0]
		if len(lens) == d {
			l = lens[k]
		}
		inv2[k] = 1 / (l * l)
	}
	dist2 := func(p, q []float64) float64 {
		var s float64
		for k := 0; k < d; k++ {
			dk := p[k] - q[k]
			s += dk * dk * inv2[k]
		}
		return s
	}

	sel := make([]int, 0, m)
	first := int(seed % uint64(n))
	sel = append(sel, first)
	// d2[i] is the squared distance from x[i] to the selected set; selected
	// points are pinned at -1 so duplicates of a selected point (distance 0)
	// can never be re-picked.
	d2 := make([]float64, n)
	for i := range x {
		d2[i] = dist2(x[i], x[first])
	}
	d2[first] = -1
	for len(sel) < m {
		best, bestD := -1, -1.0
		for i, v := range d2 {
			if v > bestD {
				best, bestD = i, v
			}
		}
		sel = append(sel, best)
		d2[best] = -1
		xb := x[best]
		for i := range x {
			if d2[i] < 0 {
				continue
			}
			if nd := dist2(x[i], xb); nd < d2[i] {
				d2[i] = nd
			}
		}
	}
	return sel, nil
}
