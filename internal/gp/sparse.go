package gp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ppatuner/internal/mat"
	"ppatuner/internal/par"
	"ppatuner/internal/simd"
)

// SparseGP is the subset-of-regressors / DTC approximation of the transfer
// GP: m inducing points U ⊂ training inputs (selected deterministically by
// SelectInducing) replace the full Gram matrix with the Nyström form
// Q_ff = K_fu K_uu⁻¹ K_uf, taking every posterior operation from O(n³) to
// O(n·m²) with m ≪ n. The transfer kernel is untouched — cross-task entries
// carry the same Eq. (6) factor ρ as the exact GP — so a SparseGP is a drop-in
// Model wherever the campaign's observation count outgrows the exact solver.
//
// State kept between rebuilds (Λ = diag of per-task noises, c_i = 1/λ_i,
// y standardised per task):
//
//	Lm  = chol(K_uu)                               — prior factor
//	Σ   = K_uu + Σ_i c_i·k_u(x_i)·k_u(x_i)ᵀ,  LΣ = chol(Σ)
//	b   = Σ_i c_i·y_i·k_u(x_i),                αu = Σ⁻¹ b
//
// giving the DTC posterior for a target-task point x:
//
//	μ(x)  = k_u(x)ᵀ αu
//	σ²(x) = k(x,x) + βt⁻¹ − ‖Lm⁻¹k_u(x)‖² + ‖LΣ⁻¹k_u(x)‖²
//
// AddTarget is incremental: Σ and b absorb one rank-1 term, the cached
// per-candidate variance quadratics update by Sherman–Morrison in O(pool·m),
// and only the m×m factor is redone — no O(n) work at all. The inducing set
// is fixed between Rebuild/Fit calls; while it is still below the budget
// (early iterations, n ≤ m) every add triggers a cheap full rebuild instead,
// which keeps the approximation exact exactly when exactness is affordable.
type SparseGP struct {
	cov            *Cov
	noiseT, noiseS float64
	a, b           float64

	dim       int
	hasSource bool
	m         int    // inducing budget
	seed      uint64 // selection stream (see SelectInducing)

	xs [][]float64
	ys []float64
	xt [][]float64
	yt []float64

	yMeanS, yStdS float64
	yMeanT, yStdT float64

	// Posterior state, valid after Rebuild/Fit.
	u    [][]float64 // inducing inputs (views into xs/xt), source-first
	uIdx []int       // their indices in source-then-target training order
	uSrc int         // how many inducing points come from the source task

	lm     mat.Cholesky // chol(K_uu + jitter)
	sigma  []float64    // packed Σ
	ls     mat.Cholesky // chol(Σ)
	bvec   []float64
	alphaU []float64

	pool    [][]float64
	poolKu  [][]float64 // poolKu[p][r] = k̃(u_r, pool_p) (target-task column)
	poolQk  []float64   // ‖Lm⁻¹ k_u(pool_p)‖²  (fixed per rebuild)
	poolQs  []float64   // ‖LΣ⁻¹ k_u(pool_p)‖²  (updated per AddTarget)
	poolKpp []float64   // prior variance k(p,p) + βt⁻¹

	kuuBuf  []float64 // packed K_uu workspace
	kuBuf   []float64 // one k_u column
	wBuf    []float64 // Σ⁻¹ k_u scratch for the Sherman–Morrison update
	workers int
}

// NewSparse returns a sparse transfer GP over dim-dimensional inputs with an
// inducing budget of m points. seed drives the deterministic inducing-point
// selection; draw it from the run's seeded stream.
func NewSparse(kind CovKind, dim int, ard bool, m int, seed uint64) *SparseGP {
	if m <= 0 {
		m = DefaultSparseM
	}
	return &SparseGP{
		cov:    NewCov(kind, dim, ard),
		noiseT: 1e-4,
		noiseS: 1e-4,
		a:      0.1,
		b:      1.0,
		dim:    dim,
		m:      m,
		seed:   seed,
		yStdS:  1,
		yStdT:  1,
	}
}

// ReserveAdds declares expected future AddTarget observations; target-side
// slices pre-grow so a campaign of adds appends in place. (The m×m posterior
// state is fixed-size, so unlike the exact GP nothing else needs headroom.)
func (s *SparseGP) ReserveAdds(n int) {
	if n <= 0 {
		return
	}
	if cap(s.xt)-len(s.xt) < n {
		nx := make([][]float64, len(s.xt), len(s.xt)+n)
		copy(nx, s.xt)
		s.xt = nx
	}
	if cap(s.yt)-len(s.yt) < n {
		ny := make([]float64, len(s.yt), len(s.yt)+n)
		copy(ny, s.yt)
		s.yt = ny
	}
}

// SetWorkers bounds the goroutines used for pool-cache rebuilds and the
// per-candidate Sherman–Morrison sweeps. Any value produces bit-identical
// results; n <= 1 stays sequential.
func (s *SparseGP) SetWorkers(n int) { s.workers = n }

// SetSource installs the source-task dataset; see (*GP).SetSource.
func (s *SparseGP) SetSource(x [][]float64, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("gp: source has %d inputs, %d outputs", len(x), len(y))
	}
	for _, xi := range x {
		if len(xi) != s.dim {
			return fmt.Errorf("gp: source input dim %d, want %d", len(xi), s.dim)
		}
	}
	s.xs = x
	s.ys = y
	s.hasSource = len(x) > 0
	return nil
}

// SetTarget installs the initial target-task observations.
func (s *SparseGP) SetTarget(x [][]float64, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("gp: target has %d inputs, %d outputs", len(x), len(y))
	}
	for _, xi := range x {
		if len(xi) != s.dim {
			return fmt.Errorf("gp: target input dim %d, want %d", len(xi), s.dim)
		}
	}
	s.xt = append([][]float64(nil), x...)
	s.yt = append([]float64(nil), y...)
	return nil
}

// Rho returns the cross-task correlation factor of Eq. (7).
func (s *SparseGP) Rho() float64 {
	if !s.hasSource {
		return 1
	}
	return TransferFactor(s.a, s.b)
}

// Cov returns the covariance function.
func (s *SparseGP) Cov() *Cov { return s.cov }

// Noise returns the target and source noise variances (βt⁻¹, βs⁻¹).
func (s *SparseGP) Noise() (noiseT, noiseS float64) { return s.noiseT, s.noiseS }

// N returns the number of training points (source + target).
func (s *SparseGP) N() int { return len(s.xs) + len(s.xt) }

// NTarget returns the number of target-task training points.
func (s *SparseGP) NTarget() int { return len(s.xt) }

// NInducing returns the current inducing-set size (≤ the budget m).
func (s *SparseGP) NInducing() int { return len(s.u) }

// InducingIdx returns a copy of the inducing-point indices in
// source-then-target training order (diagnostics and tests).
func (s *SparseGP) InducingIdx() []int { return append([]int(nil), s.uIdx...) }

func (s *SparseGP) trainX(i int) ([]float64, bool) {
	if i < len(s.xs) {
		return s.xs[i], true
	}
	return s.xt[i-len(s.xs)], false
}

func (s *SparseGP) standardise() {
	s.yMeanS, s.yStdS = meanStd(s.ys)
	s.yMeanT, s.yStdT = meanStd(s.yt)
	if len(s.yt) < 4 && len(s.ys) >= 4 {
		s.yStdT = s.yStdS
	}
}

// kuInto writes k̃(u_r, x) into dst for a point belonging to the source task
// (src=true) or target task (src=false), applying ρ to cross-task entries.
func (s *SparseGP) kuInto(dst []float64, x []float64, src bool, rho float64) {
	for r, ur := range s.u {
		v := s.cov.Eval(x, ur)
		if (r < s.uSrc) != src {
			v *= rho
		}
		dst[r] = v
	}
}

// selectInducingSet re-derives the inducing set for the current data and
// lengthscales. Indices are sorted ascending, which in source-then-target
// order means the inducing set is source-first — the same contiguous
// cross-task block structure the exact GP's packed Gram uses.
func (s *SparseGP) selectInducingSet() error {
	n := s.N()
	all := make([][]float64, n)
	for i := range all {
		all[i], _ = s.trainX(i)
	}
	m := s.m
	if m > n {
		m = n
	}
	idx, err := SelectInducing(all, s.cov.Len, m, s.seed)
	if err != nil {
		return fmt.Errorf("gp: inducing selection: %w", err)
	}
	sort.Ints(idx)
	s.uIdx = idx
	s.u = make([][]float64, len(idx))
	s.uSrc = 0
	for r, i := range idx {
		s.u[r] = all[i]
		if i < len(s.xs) {
			s.uSrc++
		}
	}
	return nil
}

// fillKuu writes the packed lower triangle of K_uu (+ jitter) into dst.
func (s *SparseGP) fillKuu(dst []float64) {
	rho := s.Rho()
	idx := 0
	for i, ui := range s.u {
		for j := 0; j <= i; j++ {
			v := s.cov.Eval(ui, s.u[j])
			if (i < s.uSrc) != (j < s.uSrc) {
				v *= rho
			}
			dst[idx] = v
			idx++
		}
		dst[idx-1] += 1e-8 // numerical jitter
	}
}

// Rebuild re-derives the whole sparse posterior for the current data and
// hyper-parameters: inducing selection, prior factor, information matrix
// Σ = K_uu + Σ_i c_i·k_u(x_i)k_u(x_i)ᵀ, weights αu, and (when attached) the
// pool cache. Cost O(n·m·(d+m)).
func (s *SparseGP) Rebuild() error {
	n := s.N()
	if n == 0 {
		return errors.New("gp: no training data")
	}
	s.standardise()
	if err := s.selectInducingSet(); err != nil {
		return err
	}
	m := len(s.u)
	mp := mat.PackedLen(m)
	if cap(s.kuuBuf) < mp {
		s.kuuBuf = make([]float64, mp)
		s.sigma = make([]float64, mp)
		s.bvec = make([]float64, m)
		s.alphaU = make([]float64, m)
		s.kuBuf = make([]float64, m)
		s.wBuf = make([]float64, m)
	}
	s.kuuBuf = s.kuuBuf[:mp]
	s.sigma = s.sigma[:mp]
	s.bvec = s.bvec[:m]
	s.alphaU = s.alphaU[:m]
	s.kuBuf = s.kuBuf[:m]
	s.wBuf = s.wBuf[:m]

	s.fillKuu(s.kuuBuf)
	if err := s.lm.FactorizePacked(s.kuuBuf, m, 1e-8, 8); err != nil {
		return fmt.Errorf("gp: inducing prior factorisation: %w", err)
	}
	copy(s.sigma, s.kuuBuf)
	for r := range s.bvec {
		s.bvec[r] = 0
	}
	rho := s.Rho()
	ku := s.kuBuf
	i := 0
	for _, y := range s.ys {
		s.kuInto(ku, s.xs[i], true, rho)
		c := 1 / s.noiseS
		mat.AddScaledOuterPacked(s.sigma, ku, c)
		simd.Axpy(s.bvec, ku, c*(y-s.yMeanS)/s.yStdS)
		i++
	}
	for j, y := range s.yt {
		s.kuInto(ku, s.xt[j], false, rho)
		c := 1 / s.noiseT
		mat.AddScaledOuterPacked(s.sigma, ku, c)
		simd.Axpy(s.bvec, ku, c*(y-s.yMeanT)/s.yStdT)
	}
	if err := s.ls.FactorizePacked(s.sigma, m, 1e-8, 8); err != nil {
		return fmt.Errorf("gp: sparse posterior factorisation: %w", err)
	}
	s.ls.SolveInto(s.alphaU, s.bvec)
	if s.pool != nil {
		s.rebuildPool()
	}
	return nil
}

// AttachPool installs the candidate pool; must follow Fit or Rebuild.
func (s *SparseGP) AttachPool(pool [][]float64) error {
	if s.ls.Size() == 0 {
		return errors.New("gp: AttachPool before Rebuild/Fit")
	}
	for _, p := range pool {
		if len(p) != s.dim {
			return fmt.Errorf("gp: pool point dim %d, want %d", len(p), s.dim)
		}
	}
	s.pool = pool
	s.rebuildPool()
	return nil
}

// rebuildPool recomputes the per-candidate inducing columns and variance
// quadratics. Candidates are sharded across SetWorkers goroutines; each
// worker writes only its own candidates' slots and uses its own solve
// scratch, so the cache is bit-identical for any worker count.
func (s *SparseGP) rebuildPool() {
	m := len(s.u)
	np := len(s.pool)
	if len(s.poolKu) != np {
		s.poolKu = make([][]float64, np)
		s.poolQk = make([]float64, np)
		s.poolQs = make([]float64, np)
		s.poolKpp = make([]float64, np)
	}
	rho := s.Rho()
	par.Do(s.workers, np, func(lo, hi int) {
		v := make([]float64, m)
		for p := lo; p < hi; p++ {
			xp := s.pool[p]
			col := s.poolKu[p]
			if cap(col) < m {
				col = make([]float64, m)
			}
			col = col[:m]
			s.kuInto(col, xp, false, rho)
			s.poolKu[p] = col
			s.lm.SolveLInto(v, col)
			s.poolQk[p] = mat.Dot(v, v)
			s.ls.SolveLInto(v, col)
			s.poolQs[p] = mat.Dot(v, v)
			s.poolKpp[p] = s.cov.Eval(xp, xp) + s.noiseT
		}
	})
}

// AddTarget appends one target-task observation. While the inducing budget
// is unsaturated the posterior is rebuilt outright (cheap, and the new point
// can join the inducing set); once saturated the update is fully
// incremental: a rank-1 Σ update, a Sherman–Morrison sweep over the cached
// pool variances (O(pool·m)), and an O(m³) refactorisation — independent of
// the training count n.
func (s *SparseGP) AddTarget(x []float64, y float64) error {
	if len(x) != s.dim {
		return fmt.Errorf("gp: AddTarget input dim %d, want %d", len(x), s.dim)
	}
	if s.ls.Size() == 0 || len(s.u) < s.m {
		s.xt = append(s.xt, x)
		s.yt = append(s.yt, y)
		return s.Rebuild()
	}
	ku := s.kuBuf
	s.kuInto(ku, x, false, s.Rho())
	c := 1 / s.noiseT
	w := s.wBuf
	s.ls.SolveInto(w, ku)
	gamma := c / (1 + c*mat.Dot(ku, w))
	if s.pool != nil {
		par.Do(s.workers, len(s.pool), func(lo, hi int) {
			for p := lo; p < hi; p++ {
				d := mat.Dot(s.poolKu[p], w)
				q := s.poolQs[p] - gamma*d*d
				if q < 0 {
					q = 0
				}
				s.poolQs[p] = q
			}
		})
	}
	mat.AddScaledOuterPacked(s.sigma, ku, c)
	simd.Axpy(s.bvec, ku, c*(y-s.yMeanT)/s.yStdT)
	s.xt = append(s.xt, x)
	s.yt = append(s.yt, y)
	if err := s.ls.FactorizePacked(s.sigma, len(s.u), 1e-8, 8); err != nil {
		// Degenerate update: rebuild from scratch with fresh standardisation
		// and inducing selection, mirroring the exact GP's fallback.
		return s.Rebuild()
	}
	s.ls.SolveInto(s.alphaU, s.bvec)
	return nil
}

// PredictPool returns the posterior mean and standard deviation (raw output
// units) for pool candidate p. O(m) per call.
func (s *SparseGP) PredictPool(p int) (mu, sd float64) {
	ku := s.poolKu[p]
	muStd := mat.Dot(s.alphaU, ku)
	varStd := s.poolKpp[p] - s.poolQk[p] + s.poolQs[p]
	if varStd < 1e-12 {
		varStd = 1e-12
	}
	return s.yMeanT + s.yStdT*muStd, s.yStdT * math.Sqrt(varStd)
}

// Predict returns the posterior mean and standard deviation for an arbitrary
// target-task point (raw units).
func (s *SparseGP) Predict(x []float64) (mu, sd float64) {
	if s.ls.Size() == 0 {
		panic("gp: Predict before Rebuild/Fit")
	}
	m := len(s.u)
	ku := make([]float64, m)
	s.kuInto(ku, x, false, s.Rho())
	muStd := mat.Dot(s.alphaU, ku)
	v := s.lm.SolveL(ku)
	qk := mat.Dot(v, v)
	s.ls.SolveLInto(v, ku)
	qs := mat.Dot(v, v)
	varStd := s.cov.Eval(x, x) + s.noiseT - qk + qs
	if varStd < 1e-12 {
		varStd = 1e-12
	}
	return s.yMeanT + s.yStdT*muStd, s.yStdT * math.Sqrt(varStd)
}

// NLML returns the DTC negative log marginal likelihood of the standardised
// data under the current hyper-parameters (lower is better). O(n·m²).
func (s *SparseGP) NLML() float64 {
	if s.N() == 0 {
		return math.Inf(1)
	}
	s.standardise()
	ws, err := newSparseFitWS(s)
	if err != nil {
		return math.Inf(1)
	}
	return ws.nlml(s)
}

// Fit maximises the DTC marginal likelihood over the same hyper-parameters
// as the exact GP (covariance, task noises, transfer Gamma parameters),
// then rebuilds the posterior. The inducing set is frozen for the duration
// of the search (selected under the entry lengthscales) so the objective
// stays continuous in the hypers; Rebuild reselects under the fitted ones.
// FitOptions.Subsample is ignored: each sparse NLML evaluation is already
// O(n·m²), which is what subsampling approximates for the exact solver.
func (s *SparseGP) Fit(opts FitOptions) error {
	if s.N() == 0 {
		return errors.New("gp: no training data")
	}
	if opts.MaxEvals <= 0 {
		opts.MaxEvals = 240
	}
	s.standardise()
	fitTransfer := s.hasSource && !opts.FixTransfer
	ws, err := newSparseFitWS(s)
	if err != nil {
		return err
	}
	pack := func() []float64 {
		h := s.cov.hyper()
		h = append(h, math.Log(s.noiseT))
		if s.hasSource {
			h = append(h, math.Log(s.noiseS))
		}
		if fitTransfer {
			h = append(h, math.Log(s.a), math.Log(s.b))
		}
		return h
	}
	unpack := func(h []float64) {
		nc := 1 + len(s.cov.Len)
		s.cov.setHyper(h[:nc])
		i := nc
		s.noiseT = clampExp(h[i], 1e-4, 1e2)
		i++
		if s.hasSource {
			s.noiseS = clampExp(h[i], 1e-4, 1e2)
			i++
		}
		if fitTransfer {
			s.a = clampExp(h[i], 1e-4, 1e3)
			s.b = clampExp(h[i+1], 1e-4, 1e3)
		}
	}
	obj := func(h []float64) float64 {
		unpack(h)
		if s.cov.Var > 1e4 || s.cov.Var < 1e-6 {
			return math.Inf(1)
		}
		for _, l := range s.cov.Len {
			if l > 8 || l < 0.02 {
				return math.Inf(1)
			}
		}
		// The same weak log-normal priors as the exact GP's Fit; see there.
		penalty := 0.0
		for _, l := range s.cov.Len {
			d := (math.Log(l) - math.Log(0.7)) / 1.2
			penalty += 0.5 * d * d
		}
		dv := math.Log(s.cov.Var) / 2.0
		penalty += 0.5 * dv * dv
		return ws.nlml(s) + penalty
	}
	starts := [][]float64{pack()}
	if fitTransfer {
		saveA, saveB := s.a, s.b
		s.a, s.b = 0.01, 1
		starts = append(starts, pack())
		s.a, s.b = saveA, saveB
	}
	per := opts.MaxEvals / (len(starts) + 1)
	bestV := math.Inf(1)
	var best []float64
	for _, st := range starts {
		x, v := NelderMead(obj, st, 0.5, per)
		if v < bestV {
			bestV = v
			best = x
		}
	}
	if x, v := NelderMead(obj, best, 0.25, opts.MaxEvals-per*len(starts)); v < bestV {
		best = x
	}
	unpack(best)
	return s.Rebuild()
}
