package gp

import (
	"math"
	"sort"

	"ppatuner/internal/mat"
	"ppatuner/internal/simd"
)

// sparseFitWS is the scratch space behind SparseGP's NLML loop. It mirrors
// fitWS for the DTC objective: the inducing set is frozen at construction
// (selected under the entry lengthscales, so the objective is continuous in
// the hyper-parameters) and the hyper-independent squared differences between
// training and inducing inputs are cached once. Each evaluation is then the
// Woodbury form of the DTC marginal likelihood,
//
//	log det(Q_ff + Λ) = log det Λ + log det B,   B = I + Σ_i c_i v_i v_iᵀ
//	yᵀ(Q_ff + Λ)⁻¹ y  = Σ_i c_i y_i² − ‖L_B⁻¹ z‖²,  z = Σ_i c_i y_i v_i
//
// with v_i = L_m⁻¹ k_u(x_i) and c_i = 1/λ_i, at O(n·m²) per evaluation and
// zero allocation in the hot loop. Memory is O(n·m·d) for the distance cache.
type sparseFitWS struct {
	n, ns, d int
	m, uSrc  int
	ard      bool

	// squu: packed inducing-pair squared differences (per-dim when ARD,
	// raw r² otherwise). squf: training×inducing, row-major [i*m+r].
	squu, squf []float64

	y              []float64 // standardised per task, training order
	sumY2S, sumY2T float64   // Σ y² per task (for the Λ⁻¹ quadratic)

	kuu  []float64 // packed K_uu workspace
	kfu  []float64 // n×m covariance workspace
	bmat []float64 // packed B workspace
	zvec []float64
	vbuf []float64
	inv2 []float64
	lm   mat.Cholesky
	lb   mat.Cholesky
}

// newSparseFitWS freezes s's inducing set under the current lengthscales and
// caches every hyper-independent quantity. Call s.standardise() first.
func newSparseFitWS(s *SparseGP) (*sparseFitWS, error) {
	n := s.N()
	all := make([][]float64, n)
	for i := range all {
		all[i], _ = s.trainX(i)
	}
	m := s.m
	if m > n {
		m = n
	}
	idx, err := SelectInducing(all, s.cov.Len, m, s.seed)
	if err != nil {
		return nil, err
	}
	// Ascending order = source-first, giving contiguous ρ blocks.
	sort.Ints(idx)
	u := make([][]float64, m)
	uSrc := 0
	for r, i := range idx {
		u[r] = all[i]
		if i < len(s.xs) {
			uSrc++
		}
	}

	w := &sparseFitWS{
		n: n, ns: len(s.xs), d: s.dim,
		m: m, uSrc: uSrc,
		ard: len(s.cov.Len) > 1,
	}
	mp := mat.PackedLen(m)
	if w.ard {
		w.squu = make([]float64, mp*w.d)
		p := 0
		for i := 0; i < m; i++ {
			for j := 0; j <= i; j++ {
				for k := 0; k < w.d; k++ {
					dk := u[i][k] - u[j][k]
					w.squu[p] = dk * dk
					p++
				}
			}
		}
		w.squf = make([]float64, n*m*w.d)
		p = 0
		for i := 0; i < n; i++ {
			xi := all[i]
			for r := 0; r < m; r++ {
				ur := u[r]
				for k := 0; k < w.d; k++ {
					dk := xi[k] - ur[k]
					w.squf[p] = dk * dk
					p++
				}
			}
		}
	} else {
		w.squu = make([]float64, mp)
		p := 0
		for i := 0; i < m; i++ {
			for j := 0; j <= i; j++ {
				var r2 float64
				for k := range u[i] {
					dk := u[i][k] - u[j][k]
					r2 += dk * dk
				}
				w.squu[p] = r2
				p++
			}
		}
		w.squf = make([]float64, n*m)
		p = 0
		for i := 0; i < n; i++ {
			xi := all[i]
			for r := 0; r < m; r++ {
				var r2 float64
				for k := range xi {
					dk := xi[k] - u[r][k]
					r2 += dk * dk
				}
				w.squf[p] = r2
				p++
			}
		}
	}

	w.y = make([]float64, n)
	for i, yv := range s.ys {
		w.y[i] = (yv - s.yMeanS) / s.yStdS
		w.sumY2S += w.y[i] * w.y[i]
	}
	for j, yv := range s.yt {
		i := len(s.ys) + j
		w.y[i] = (yv - s.yMeanT) / s.yStdT
		w.sumY2T += w.y[i] * w.y[i]
	}

	w.kuu = make([]float64, mp)
	w.kfu = make([]float64, n*m)
	w.bmat = make([]float64, mp)
	w.zvec = make([]float64, m)
	w.vbuf = make([]float64, m)
	w.inv2 = make([]float64, w.d)
	return w, nil
}

// fillCov rewrites the K_uu and K_fu workspaces for s's current
// hyper-parameters from the cached distances, including the ρ factor on
// cross-task entries and the diagonal jitter on K_uu.
//
//ppalint:noalloc
func (w *sparseFitWS) fillCov(s *SparseGP) {
	m := w.m
	mp := mat.PackedLen(m)
	vr := s.cov.Var
	if w.ard {
		for k, l := range s.cov.Len {
			w.inv2[k] = 1 / (l * l)
		}
		switch s.cov.Kind {
		case Matern52:
			simd.Matern52ARD(w.kuu[:mp], w.squu, w.inv2, vr)
			simd.Matern52ARD(w.kfu[:w.n*m], w.squf, w.inv2, vr)
		default:
			evalRows(w.kuu[:mp], w.squu, w.inv2, w.d, s.cov)
			evalRows(w.kfu[:w.n*m], w.squf, w.inv2, w.d, s.cov)
		}
	} else {
		inv2 := 1 / (s.cov.Len[0] * s.cov.Len[0])
		switch s.cov.Kind {
		case Matern52:
			for p, r2 := range w.squu {
				w.kuu[p] = r2 * inv2
			}
			simd.Matern52FromR2(w.kuu[:mp], vr)
			for p, r2 := range w.squf {
				w.kfu[p] = r2 * inv2
			}
			simd.Matern52FromR2(w.kfu[:w.n*m], vr)
		default:
			for p, r2 := range w.squu {
				w.kuu[p] = s.cov.EvalR2(r2 * inv2)
			}
			for p, r2 := range w.squf {
				w.kfu[p] = s.cov.EvalR2(r2 * inv2)
			}
		}
	}
	if s.hasSource {
		if rho := TransferFactor(s.a, s.b); rho != 1 {
			// K_uu: target-inducing rows × source-inducing columns.
			for i := w.uSrc; i < m; i++ {
				off := mat.PackedLen(i)
				seg := w.kuu[off : off+w.uSrc]
				for k := range seg {
					seg[k] *= rho
				}
			}
			// K_fu: source rows cross target-inducing columns; target rows
			// cross source-inducing columns.
			for i := 0; i < w.n; i++ {
				row := w.kfu[i*m : i*m+m]
				if i < w.ns {
					for r := w.uSrc; r < m; r++ {
						row[r] *= rho
					}
				} else {
					for r := 0; r < w.uSrc; r++ {
						row[r] *= rho
					}
				}
			}
		}
	}
	for i := 0; i < m; i++ {
		w.kuu[mat.PackedLen(i)+i] += 1e-8
	}
}

// evalRows applies cov's distance→covariance transform to each d-wide row of
// per-dimension squared differences (generic non-Matérn path).
//
//ppalint:noalloc
func evalRows(dst, sqd, inv2 []float64, d int, cov *Cov) {
	for p := range dst {
		row := sqd[p*d : p*d+d : p*d+d]
		var r2 float64
		for k := 0; k < d; k++ {
			r2 += row[k] * inv2[k]
		}
		dst[p] = cov.EvalR2(r2)
	}
}

// nlml evaluates the DTC negative log marginal likelihood under s's current
// hyper-parameters, reusing all workspace buffers. Returns +Inf when either
// m×m factorisation fails even with jitter.
//
//ppalint:noalloc
func (w *sparseFitWS) nlml(s *SparseGP) float64 {
	w.fillCov(s)
	m := w.m
	if err := w.lm.FactorizePacked(w.kuu, m, 1e-8, 6); err != nil {
		return math.Inf(1)
	}
	// B starts at identity; z at zero.
	for p := range w.bmat {
		w.bmat[p] = 0
	}
	for i := 0; i < m; i++ {
		w.bmat[mat.PackedLen(i)+i] = 1
	}
	for r := range w.zvec {
		w.zvec[r] = 0
	}
	cS := 1 / s.noiseS
	cT := 1 / s.noiseT
	for i := 0; i < w.n; i++ {
		c := cT
		if i < w.ns {
			c = cS
		}
		w.lm.SolveLInto(w.vbuf, w.kfu[i*m:i*m+m])
		mat.AddScaledOuterPacked(w.bmat, w.vbuf, c)
		simd.Axpy(w.zvec, w.vbuf, c*w.y[i])
	}
	if err := w.lb.FactorizePacked(w.bmat, m, 1e-10, 6); err != nil {
		return math.Inf(1)
	}
	w.lb.SolveLInto(w.vbuf, w.zvec)
	quad := cS*w.sumY2S + cT*w.sumY2T - mat.Dot(w.vbuf, w.vbuf)
	logdet := float64(w.ns)*math.Log(s.noiseS) + float64(w.n-w.ns)*math.Log(s.noiseT) + w.lb.LogDet()
	return 0.5*quad + 0.5*logdet + 0.5*float64(w.n)*log2pi
}
